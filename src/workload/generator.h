#ifndef PRODB_WORKLOAD_GENERATOR_H_
#define PRODB_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "db/catalog.h"
#include "lang/rule.h"

namespace prodb {

/// Parameters of a synthetic production-system workload.
///
/// The 1988 paper evaluates no concrete benchmark programs (OPS5-era
/// suites are unavailable), so the benchmarks sweep these knobs to cover
/// the qualitative regimes its claims address: rule-base size, LHS join
/// width, constant selectivity, negation, and condition overlap.
struct WorkloadSpec {
  size_t num_classes = 4;
  size_t attrs_per_class = 4;
  size_t num_rules = 32;
  /// Positive condition elements per rule (join width).
  size_t ces_per_rule = 3;
  /// Attribute-value domain [0, domain); smaller = denser joins.
  int64_t domain = 64;
  /// Probability that a rule carries one extra negated CE.
  double negation_prob = 0.0;
  /// Probability that a CE's constant test on attr 0 is a bounded numeric
  /// range `lo <= a0 <= hi` (a kGe/kLe pair) instead of an equality —
  /// exercises the discrimination index's interval-tree tier.
  double range_test_prob = 0.0;
  /// Probability that it is a `a0 <> c` test instead — unclassifiable,
  /// so the CE lands in the discrimination index's residual tier.
  double residual_test_prob = 0.0;
  /// Chain joins (CE_k ~ CE_{k+1}) when true; star joins (all CEs share
  /// one variable with CE_0) otherwise.
  bool chain_join = true;
  /// Give rules a consuming `(remove 1)` action so engine runs terminate.
  bool consuming_actions = false;
  uint64_t seed = 42;
};

/// Deterministic generator of classes, rules, and WM tuples.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadSpec spec) : spec_(spec) {}

  const WorkloadSpec& spec() const { return spec_; }
  std::string ClassName(size_t i) const { return "C" + std::to_string(i); }

  /// Registers Class relations C0..C{n-1}, each with attributes
  /// a0..a{k-1}, in `catalog`.
  Status CreateClasses(Catalog* catalog) const;
  Status CreateClasses(Catalog* catalog, StorageKind kind) const;

  /// Compiled rules over those classes. Rule j's CE k reads class
  /// (j + k) mod num_classes; attr 0 carries a constant equality test,
  /// attrs 1 and 2 carry the join variables.
  std::vector<Rule> GenerateRules() const;

  /// A random tuple for class `cls` drawn from the value domain.
  Tuple RandomTuple(Rng* rng) const;

  /// A tuple crafted to satisfy rule `rule`'s CE `ce` constant test (join
  /// attrs still random) — drives match-positive workloads.
  Tuple MatchingTuple(const Rule& rule, size_t ce, Rng* rng) const;

 private:
  WorkloadSpec spec_;
};

}  // namespace prodb

#endif  // PRODB_WORKLOAD_GENERATOR_H_
