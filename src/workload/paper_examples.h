#ifndef PRODB_WORKLOAD_PAPER_EXAMPLES_H_
#define PRODB_WORKLOAD_PAPER_EXAMPLES_H_

namespace prodb {

/// The rule programs the paper uses as running examples, in the OPS5-like
/// concrete syntax of src/lang (see README). Load with LoadProgram().

/// Example 2: algebraic simplification. Plus0X rewrites `0 + x` and
/// Time0X rewrites `0 * x` (the paper's modify writes NIL into the Op
/// and Arg2 fields).
inline constexpr char kExpressionSimplification[] = R"(
(literalize Goal type object)
(literalize Expression name arg1 op arg2)

(p Plus0X
  (Goal ^type Simplify ^object <n>)
  (Expression ^name <n> ^arg1 0 ^op + ^arg2 <x>)
  -->
  (modify 2 ^op nil ^arg1 nil))

(p Time0X
  (Goal ^type Simplify ^object <n>)
  (Expression ^name <n> ^arg1 0 ^op |*| ^arg2 <x>)
  -->
  (modify 2 ^op nil ^arg2 nil))
)";

/// Example 3: the Emp/Dept rules. R1 deletes Mike if he makes more than
/// his manager; R2 deletes employees working on the first floor of the
/// Toy department.
inline constexpr char kEmpDept[] = R"(
(literalize Emp name age salary dno manager)
(literalize Dept dno dname floor manager)

(p R1
  (Emp ^name Mike ^salary <s> ^manager <m>)
  (Emp ^name <m> ^salary < <s>)
  -->
  (remove 1))

(p R2
  (Emp ^dno <d>)
  (Dept ^dno <d> ^dname Toy ^floor 1)
  -->
  (remove 1))
)";

/// Example 4: Rule-1, the three-way join over classes A, B, C that the
/// matching-pattern walkthrough of Example 5 traces.
inline constexpr char kThreeWayJoin[] = R"(
(literalize A a1 a2 a3)
(literalize B b1 b2 b3)
(literalize C c1 c2 c3)

(p Rule-1
  (A ^a1 <x> ^a2 a ^a3 <z>)
  (B ^b1 <x> ^b2 <y> ^b3 b)
  (C ^c1 c ^c2 <y> ^c3 <z>)
  -->
  (remove 1))
)";

/// A small manufacturing scheduler in the spirit of the paper's intro
/// ("engineering processes, manufacturing"): pending orders are assigned
/// to idle machines of the right kind; finished assignments free their
/// machine. Used by examples/factory_floor and the integration tests.
inline constexpr char kFactoryFloor[] = R"(
(literalize Order id part qty status)
(literalize Machine id kind status)
(literalize Capability part kind)
(literalize Assignment order machine)

(p AssignOrder
  (Order ^id <o> ^part <p> ^status pending)
  (Capability ^part <p> ^kind <k>)
  (Machine ^id <m> ^kind <k> ^status idle)
  -->
  (modify 1 ^status running)
  (modify 3 ^status busy)
  (make Assignment ^order <o> ^machine <m>))

(p FinishOrder
  (Order ^id <o> ^status done)
  (Assignment ^order <o> ^machine <m>)
  (Machine ^id <m> ^status busy)
  -->
  (remove 2)
  (modify 3 ^status idle))
)";

}  // namespace prodb

#endif  // PRODB_WORKLOAD_PAPER_EXAMPLES_H_
