#include "workload/generator.h"

namespace prodb {

Status WorkloadGenerator::CreateClasses(Catalog* catalog) const {
  return CreateClasses(catalog, StorageKind::kMemory);
}

Status WorkloadGenerator::CreateClasses(Catalog* catalog,
                                        StorageKind kind) const {
  for (size_t c = 0; c < spec_.num_classes; ++c) {
    std::vector<Attribute> attrs;
    for (size_t a = 0; a < spec_.attrs_per_class; ++a) {
      attrs.push_back(Attribute{"a" + std::to_string(a), ValueType::kInt});
    }
    Relation* rel;
    PRODB_RETURN_IF_ERROR(
        catalog->CreateRelation(Schema(ClassName(c), attrs), kind, &rel));
  }
  return Status::OK();
}

std::vector<Rule> WorkloadGenerator::GenerateRules() const {
  Rng rng(spec_.seed);
  std::vector<Rule> rules;
  rules.reserve(spec_.num_rules);
  const int kJoinAttrOut = spec_.attrs_per_class > 2 ? 2 : 0;
  const int kJoinAttrIn = spec_.attrs_per_class > 1 ? 1 : 0;

  for (size_t j = 0; j < spec_.num_rules; ++j) {
    Rule rule;
    rule.name = "R" + std::to_string(j);
    int next_var = 0;

    for (size_t k = 0; k < spec_.ces_per_rule; ++k) {
      ConditionSpec ce;
      ce.relation = ClassName((j + k) % spec_.num_classes);
      // Constant test(s) on attr 0: control how many WM tuples pass the
      // alpha test, and which discrimination-index tier the CE lands in
      // (equality -> hash, bounded range -> interval tree, <> ->
      // residual).
      double kind = rng.NextDouble();
      if (kind < spec_.range_test_prob) {
        int64_t lo = static_cast<int64_t>(
            rng.Uniform(static_cast<uint64_t>(spec_.domain)));
        int64_t width = 1 + static_cast<int64_t>(rng.Uniform(
                                static_cast<uint64_t>(spec_.domain) / 8 + 1));
        ce.constant_tests.push_back(
            ConstantTest{0, CompareOp::kGe, Value(lo)});
        ce.constant_tests.push_back(
            ConstantTest{0, CompareOp::kLe, Value(lo + width)});
      } else if (kind < spec_.range_test_prob + spec_.residual_test_prob) {
        ce.constant_tests.push_back(ConstantTest{
            0, CompareOp::kNe,
            Value(static_cast<int64_t>(
                rng.Uniform(static_cast<uint64_t>(spec_.domain))))});
      } else {
        ce.constant_tests.push_back(ConstantTest{
            0, CompareOp::kEq,
            Value(static_cast<int64_t>(
                rng.Uniform(static_cast<uint64_t>(spec_.domain))))});
      }
      if (spec_.ces_per_rule > 1) {
        if (spec_.chain_join) {
          // Chain: CE_k exports a variable on attr 2, CE_{k+1} imports it
          // on attr 1.
          if (k > 0) {
            ce.var_uses.push_back(
                VarUse{kJoinAttrIn, next_var - 1, CompareOp::kEq});
          }
          if (k + 1 < spec_.ces_per_rule) {
            ce.var_uses.push_back(
                VarUse{kJoinAttrOut, next_var++, CompareOp::kEq});
          }
        } else {
          // Star: every CE shares variable 0 (exported by CE_0).
          if (k == 0) {
            ce.var_uses.push_back(VarUse{kJoinAttrOut, 0, CompareOp::kEq});
            next_var = 1;
          } else {
            ce.var_uses.push_back(VarUse{kJoinAttrIn, 0, CompareOp::kEq});
          }
        }
      }
      rule.lhs.conditions.push_back(std::move(ce));
    }

    if (spec_.negation_prob > 0 && rng.Chance(spec_.negation_prob)) {
      ConditionSpec neg;
      neg.relation =
          ClassName((j + spec_.ces_per_rule) % spec_.num_classes);
      neg.negated = true;
      neg.constant_tests.push_back(ConstantTest{
          0, CompareOp::kEq,
          Value(static_cast<int64_t>(
              rng.Uniform(static_cast<uint64_t>(spec_.domain))))});
      if (next_var > 0) {
        neg.var_uses.push_back(
            VarUse{kJoinAttrIn, next_var - 1, CompareOp::kEq});
      }
      rule.lhs.conditions.push_back(std::move(neg));
    }
    rule.lhs.num_vars = next_var;
    for (int v = 0; v < next_var; ++v) {
      rule.var_names.push_back("v" + std::to_string(v));
    }

    if (spec_.consuming_actions) {
      CompiledAction remove;
      remove.kind = ActionKind::kRemove;
      remove.ce_index = 0;
      rule.actions.push_back(std::move(remove));
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

Tuple WorkloadGenerator::RandomTuple(Rng* rng) const {
  std::vector<Value> vals;
  vals.reserve(spec_.attrs_per_class);
  for (size_t a = 0; a < spec_.attrs_per_class; ++a) {
    vals.emplace_back(static_cast<int64_t>(
        rng->Uniform(static_cast<uint64_t>(spec_.domain))));
  }
  return Tuple(std::move(vals));
}

Tuple WorkloadGenerator::MatchingTuple(const Rule& rule, size_t ce,
                                       Rng* rng) const {
  Tuple t = RandomTuple(rng);
  // Fix up each attribute until the CE's constant tests accept it. The
  // generator emits either one kEq, one kNe, or a kGe/kLe pair (lo <= hi)
  // per attribute, so sequential adjustment converges.
  for (const ConstantTest& ct : rule.lhs.conditions[ce].constant_tests) {
    Value& v = t[static_cast<size_t>(ct.attr)];
    switch (ct.op) {
      case CompareOp::kEq:
        v = ct.constant;
        break;
      case CompareOp::kNe:
        if (v == ct.constant) {
          v = Value(ct.constant.as_int() == 0 ? int64_t{1}
                                              : ct.constant.as_int() - 1);
        }
        break;
      case CompareOp::kGe:
      case CompareOp::kLe:
        if (!EvalCompare(v, ct.op, ct.constant)) v = ct.constant;
        break;
      case CompareOp::kGt:
        if (!EvalCompare(v, ct.op, ct.constant)) {
          v = Value(ct.constant.as_int() + 1);
        }
        break;
      case CompareOp::kLt:
        if (!EvalCompare(v, ct.op, ct.constant)) {
          v = Value(ct.constant.as_int() - 1);
        }
        break;
    }
  }
  return t;
}

}  // namespace prodb
