#include "storage/heap_file.h"

#include <cstring>

namespace prodb {

namespace {

// Page header field offsets (see layout in heap_file.h).
constexpr size_t kNextPageOff = 0;   // u32
constexpr size_t kSlotCountOff = 4;  // u16
constexpr size_t kFreeEndOff = 6;    // u16
constexpr size_t kHeaderSize = 8;
constexpr size_t kSlotSize = 4;  // u16 offset + u16 length
constexpr uint16_t kDeadSlot = 0xFFFF;
constexpr uint32_t kNoPage = UINT32_MAX;

uint16_t GetU16(const char* p, size_t off) {
  uint16_t v;
  std::memcpy(&v, p + off, 2);
  return v;
}
void PutU16(char* p, size_t off, uint16_t v) { std::memcpy(p + off, &v, 2); }
uint32_t GetU32(const char* p, size_t off) {
  uint32_t v;
  std::memcpy(&v, p + off, 4);
  return v;
}
void PutU32(char* p, size_t off, uint32_t v) { std::memcpy(p + off, &v, 4); }

uint16_t SlotOffset(const char* page, uint16_t slot) {
  return GetU16(page, kHeaderSize + slot * kSlotSize);
}
uint16_t SlotLength(const char* page, uint16_t slot) {
  return GetU16(page, kHeaderSize + slot * kSlotSize + 2);
}
void SetSlot(char* page, uint16_t slot, uint16_t offset, uint16_t length) {
  PutU16(page, kHeaderSize + slot * kSlotSize, offset);
  PutU16(page, kHeaderSize + slot * kSlotSize + 2, length);
}

void InitPage(char* page) {
  PutU32(page, kNextPageOff, kNoPage);
  PutU16(page, kSlotCountOff, 0);
  PutU16(page, kFreeEndOff, static_cast<uint16_t>(kPageSize));
}

// Contiguous free bytes between the slot directory and the record area.
size_t ContiguousFree(const char* page) {
  uint16_t slots = GetU16(page, kSlotCountOff);
  uint16_t free_end = GetU16(page, kFreeEndOff);
  size_t dir_end = kHeaderSize + slots * kSlotSize;
  return free_end > dir_end ? free_end - dir_end : 0;
}

// Free bytes counting dead-record space that compaction can recover.
size_t ReclaimableFree(const char* page) {
  uint16_t slots = GetU16(page, kSlotCountOff);
  size_t used = 0;
  for (uint16_t s = 0; s < slots; ++s) {
    if (SlotLength(page, s) != kDeadSlot) used += SlotLength(page, s);
  }
  size_t dir_end = kHeaderSize + slots * kSlotSize;
  return kPageSize - dir_end - used;
}

// Moves all live records to the end of the page, squeezing out holes left
// by deletions. Slot ids are preserved.
void CompactPage(char* page) {
  uint16_t slots = GetU16(page, kSlotCountOff);
  char buf[kPageSize];
  size_t write_end = kPageSize;
  // First copy records out to avoid overlapping-move hazards.
  std::memcpy(buf, page, kPageSize);
  for (uint16_t s = 0; s < slots; ++s) {
    uint16_t len = SlotLength(buf, s);
    if (len == kDeadSlot || len == 0) continue;
    uint16_t off = SlotOffset(buf, s);
    write_end -= len;
    std::memcpy(page + write_end, buf + off, len);
    SetSlot(page, s, static_cast<uint16_t>(write_end), len);
  }
  PutU16(page, kFreeEndOff, static_cast<uint16_t>(write_end));
}

// Inserts an encoded record into the page if it fits. Returns the slot id
// or -1 if there is not enough space even after compaction.
int InsertIntoPage(char* page, const std::string& rec) {
  if (rec.size() > kPageSize - kHeaderSize - kSlotSize) return -1;
  uint16_t slots = GetU16(page, kSlotCountOff);
  // Dead slots are never reused for new records: a TupleId, once
  // assigned, permanently names the tuple that lived there — matcher
  // bookkeeping and abort compensation (Restore) key on id stability.
  // Only the 4-byte directory entry persists; the record bytes are
  // reclaimed by CompactPage.
  size_t need = rec.size() + kSlotSize;
  if (ContiguousFree(page) < need) {
    if (ReclaimableFree(page) < need) return -1;
    CompactPage(page);
    if (ContiguousFree(page) < need) return -1;
  }
  uint16_t free_end = GetU16(page, kFreeEndOff);
  free_end = static_cast<uint16_t>(free_end - rec.size());
  std::memcpy(page + free_end, rec.data(), rec.size());
  PutU16(page, kFreeEndOff, free_end);
  uint16_t slot = slots;
  PutU16(page, kSlotCountOff, static_cast<uint16_t>(slots + 1));
  SetSlot(page, slot, free_end, static_cast<uint16_t>(rec.size()));
  return slot;
}

}  // namespace

Status HeapFile::Create(BufferPool* pool, std::unique_ptr<HeapFile>* out) {
  auto hf = std::unique_ptr<HeapFile>(new HeapFile(pool));
  uint32_t page_id;
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool->NewPage(&page_id, &frame));
  InitPage(frame->data);
  PRODB_RETURN_IF_ERROR(pool->UnpinPage(page_id, /*dirty=*/true));
  hf->pages_.push_back(page_id);
  hf->free_space_[page_id] =
      static_cast<uint16_t>(kPageSize - kHeaderSize);
  *out = std::move(hf);
  return Status::OK();
}

Status HeapFile::Open(BufferPool* pool, uint32_t head_page_id,
                      std::unique_ptr<HeapFile>* out) {
  auto hf = std::unique_ptr<HeapFile>(new HeapFile(pool));
  uint32_t pid = head_page_id;
  while (pid != kNoPage) {
    Frame* frame;
    PRODB_RETURN_IF_ERROR(pool->FetchPage(pid, &frame));
    hf->pages_.push_back(pid);
    hf->free_space_[pid] =
        static_cast<uint16_t>(ReclaimableFree(frame->data));
    uint16_t slots = GetU16(frame->data, kSlotCountOff);
    for (uint16_t s = 0; s < slots; ++s) {
      if (SlotLength(frame->data, s) != kDeadSlot) {
        ++hf->live_tuples_;
      } else {
        ++hf->dead_slots_;
      }
    }
    uint32_t next = GetU32(frame->data, kNextPageOff);
    PRODB_RETURN_IF_ERROR(pool->UnpinPage(pid, /*dirty=*/false));
    pid = next;
  }
  if (hf->pages_.empty()) {
    return Status::InvalidArgument("heap file has no pages");
  }
  *out = std::move(hf);
  return Status::OK();
}

Status HeapFile::AppendPage(uint32_t* page_id) {
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool_->NewPage(page_id, &frame));
  InitPage(frame->data);
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(*page_id, /*dirty=*/true));
  // Link from the current tail.
  uint32_t tail = pages_.back();
  Frame* tail_frame;
  PRODB_RETURN_IF_ERROR(pool_->FetchPage(tail, &tail_frame));
  PutU32(tail_frame->data, kNextPageOff, *page_id);
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(tail, /*dirty=*/true));
  pages_.push_back(*page_id);
  free_space_[*page_id] = static_cast<uint16_t>(kPageSize - kHeaderSize);
  return Status::OK();
}

Status HeapFile::Insert(const Tuple& tuple, TupleId* id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string rec;
  tuple.SerializeTo(&rec);
  if (rec.size() > kPageSize - kHeaderSize - kSlotSize) {
    return Status::InvalidArgument("tuple larger than a page");
  }
  // Try the most recently appended page first (common append workload),
  // then any page the free-space map says could fit the record.
  std::vector<uint32_t> candidates;
  candidates.push_back(pages_.back());
  for (const auto& [pid, free] : free_space_) {
    if (pid != pages_.back() && free >= rec.size() + kSlotSize) {
      candidates.push_back(pid);
    }
  }
  for (uint32_t pid : candidates) {
    Frame* frame;
    PRODB_RETURN_IF_ERROR(pool_->FetchPage(pid, &frame));
    int slot = InsertIntoPage(frame->data, rec);
    if (slot >= 0) {
      free_space_[pid] = static_cast<uint16_t>(ReclaimableFree(frame->data));
      PRODB_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/true));
      id->page_id = pid;
      id->slot_id = static_cast<uint32_t>(slot);
      ++live_tuples_;
      return Status::OK();
    }
    PRODB_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/false));
  }
  uint32_t pid;
  PRODB_RETURN_IF_ERROR(AppendPage(&pid));
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool_->FetchPage(pid, &frame));
  int slot = InsertIntoPage(frame->data, rec);
  free_space_[pid] = static_cast<uint16_t>(ReclaimableFree(frame->data));
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/true));
  if (slot < 0) return Status::Internal("insert failed on fresh page");
  id->page_id = pid;
  id->slot_id = static_cast<uint32_t>(slot);
  ++live_tuples_;
  return Status::OK();
}

Status HeapFile::Get(TupleId id, Tuple* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool_->FetchPage(id.page_id, &frame));
  Status st = Status::OK();
  uint16_t slots = GetU16(frame->data, kSlotCountOff);
  if (id.slot_id >= slots || SlotLength(frame->data, id.slot_id) == kDeadSlot) {
    st = Status::NotFound("tuple " + id.ToString());
  } else {
    size_t off = SlotOffset(frame->data, id.slot_id);
    size_t len = SlotLength(frame->data, id.slot_id);
    size_t pos = 0;
    if (!Tuple::DeserializeFrom(frame->data + off, len, &pos, out)) {
      st = Status::Corruption("bad tuple encoding at " + id.ToString());
    }
  }
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, /*dirty=*/false));
  return st;
}

Status HeapFile::Delete(TupleId id) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool_->FetchPage(id.page_id, &frame));
  Status st = Status::OK();
  bool dirty = false;
  uint16_t slots = GetU16(frame->data, kSlotCountOff);
  if (id.slot_id >= slots || SlotLength(frame->data, id.slot_id) == kDeadSlot) {
    st = Status::NotFound("tuple " + id.ToString());
  } else {
    SetSlot(frame->data, static_cast<uint16_t>(id.slot_id), 0, kDeadSlot);
    free_space_[id.page_id] =
        static_cast<uint16_t>(ReclaimableFree(frame->data));
    --live_tuples_;
    ++dead_slots_;
    dirty = true;
  }
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, dirty));
  return st;
}

Status HeapFile::Restore(TupleId id, const Tuple& tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string rec;
  tuple.SerializeTo(&rec);
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool_->FetchPage(id.page_id, &frame));
  Status st = Status::OK();
  bool dirty = false;
  uint16_t slots = GetU16(frame->data, kSlotCountOff);
  if (id.slot_id >= slots) {
    st = Status::InvalidArgument("no slot " + id.ToString());
  } else if (SlotLength(frame->data, id.slot_id) != kDeadSlot) {
    st = Status::AlreadyExists("slot live " + id.ToString());
  } else if (ReclaimableFree(frame->data) < rec.size()) {
    st = Status::IOError("page full restoring " + id.ToString());
  } else {
    // CompactPage preserves slot ids and leaves dead slots dead, so the
    // directory entry at id.slot_id survives.
    if (ContiguousFree(frame->data) < rec.size()) CompactPage(frame->data);
    uint16_t free_end = GetU16(frame->data, kFreeEndOff);
    free_end = static_cast<uint16_t>(free_end - rec.size());
    std::memcpy(frame->data + free_end, rec.data(), rec.size());
    PutU16(frame->data, kFreeEndOff, free_end);
    SetSlot(frame->data, static_cast<uint16_t>(id.slot_id), free_end,
            static_cast<uint16_t>(rec.size()));
    free_space_[id.page_id] =
        static_cast<uint16_t>(ReclaimableFree(frame->data));
    ++live_tuples_;
    if (dead_slots_ > 0) --dead_slots_;
    dirty = true;
  }
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, dirty));
  return st;
}

Status HeapFile::Update(TupleId id, const Tuple& tuple, TupleId* new_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string rec;
    tuple.SerializeTo(&rec);
    Frame* frame;
    PRODB_RETURN_IF_ERROR(pool_->FetchPage(id.page_id, &frame));
    uint16_t slots = GetU16(frame->data, kSlotCountOff);
    if (id.slot_id >= slots ||
        SlotLength(frame->data, id.slot_id) == kDeadSlot) {
      PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, false));
      return Status::NotFound("tuple " + id.ToString());
    }
    uint16_t old_len = SlotLength(frame->data, id.slot_id);
    if (rec.size() <= old_len) {
      // Overwrite in place; tail of the old record becomes a hole that
      // compaction reclaims later.
      uint16_t off = SlotOffset(frame->data, id.slot_id);
      std::memcpy(frame->data + off, rec.data(), rec.size());
      SetSlot(frame->data, static_cast<uint16_t>(id.slot_id), off,
              static_cast<uint16_t>(rec.size()));
      free_space_[id.page_id] =
          static_cast<uint16_t>(ReclaimableFree(frame->data));
      PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, true));
      *new_id = id;
      return Status::OK();
    }
    PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, false));
  }
  // Record grew: move it (delete + insert), matching the paper's treatment
  // of modify as delete-followed-by-insert.
  PRODB_RETURN_IF_ERROR(Delete(id));
  return Insert(tuple, new_id);
}

size_t HeapFile::TupleCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_tuples_;
}

size_t HeapFile::dead_slot_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_slots_;
}

Status HeapFile::Scan(
    const std::function<Status(TupleId, const Tuple&)>& fn) const {
  std::vector<uint32_t> pages;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pages = pages_;
  }
  for (uint32_t pid : pages) {
    Frame* frame;
    PRODB_RETURN_IF_ERROR(pool_->FetchPage(pid, &frame));
    // Copy out the live tuples, then unpin before invoking callbacks so a
    // callback that re-enters the heap file cannot deadlock on the pin.
    std::vector<std::pair<TupleId, Tuple>> batch;
    Status st = Status::OK();
    uint16_t slots = GetU16(frame->data, kSlotCountOff);
    for (uint16_t s = 0; s < slots && st.ok(); ++s) {
      uint16_t len = SlotLength(frame->data, s);
      if (len == kDeadSlot) continue;
      uint16_t off = SlotOffset(frame->data, s);
      Tuple t;
      size_t pos = 0;
      if (!Tuple::DeserializeFrom(frame->data + off, len, &pos, &t)) {
        st = Status::Corruption("bad tuple encoding in page " +
                                std::to_string(pid));
        break;
      }
      batch.emplace_back(TupleId{pid, s}, std::move(t));
    }
    PRODB_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/false));
    PRODB_RETURN_IF_ERROR(st);
    for (auto& [id, t] : batch) {
      PRODB_RETURN_IF_ERROR(fn(id, t));
    }
  }
  return Status::OK();
}

}  // namespace prodb
