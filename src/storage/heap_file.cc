#include "storage/heap_file.h"

#include <cstring>

#include "storage/page_layout.h"
#include "storage/wal.h"

namespace prodb {

namespace {

// Appends a WAL record for a page mutation and stamps the page LSN. A
// no-op when the pool has no WAL attached. Structural records (page
// format / link) are always attributed to txn 0 — they are redone at
// restart regardless of transaction outcome (an extra formatted empty
// page is harmless). Data records carry the thread's current transaction
// id plus the slot's before-image (`undo_kind` / `undo`), which is what
// lets the pool steal the page later: the WAL rule forces this record —
// undo info included — to disk before the page, so restart undo can
// always roll a loser back. Auto-commit records (txn 0) are never undone
// and skip the before-image to keep the log lean.
void LogAndStamp(BufferPool* pool, Frame* frame, LogRecordType type,
                 uint32_t slot, std::string data,
                 UndoKind undo_kind = UndoKind::kNone, std::string undo = {},
                 bool structural = false) {
  LogManager* wal = pool->wal();
  if (wal == nullptr) return;
  LogRecord rec;
  rec.type = type;
  rec.txn_id = structural ? 0 : CurrentWalTxn();
  rec.page_id = frame->page_id;
  rec.slot = slot;
  rec.data = std::move(data);
  if (rec.txn_id != 0) {
    rec.undo_kind = undo_kind;
    rec.undo = std::move(undo);
  }
  Lsn start = 0;
  Lsn lsn = wal->Append(rec, &start);
  SetPageLsn(frame->data, lsn);
  pool->NoteLoggedUpdate(frame, start);
  if (rec.txn_id != 0) pool->MarkTxnPage(rec.txn_id, rec.page_id);
}

}  // namespace

Status HeapFile::Create(BufferPool* pool, std::unique_ptr<HeapFile>* out) {
  auto hf = std::unique_ptr<HeapFile>(new HeapFile(pool));
  uint32_t page_id;
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool->NewPage(&page_id, &frame));
  InitHeapPage(frame->data);
  LogAndStamp(pool, frame, LogRecordType::kPageFormat, 0, {},
              UndoKind::kNone, {}, /*structural=*/true);
  PRODB_RETURN_IF_ERROR(pool->UnpinPage(page_id, /*dirty=*/true));
  hf->pages_.push_back(page_id);
  hf->free_space_[page_id] =
      static_cast<uint16_t>(kPageSize - kPageHeaderSize);
  *out = std::move(hf);
  return Status::OK();
}

Status HeapFile::Open(BufferPool* pool, uint32_t head_page_id,
                      std::unique_ptr<HeapFile>* out) {
  auto hf = std::unique_ptr<HeapFile>(new HeapFile(pool));
  uint32_t pid = head_page_id;
  while (pid != kNoPage) {
    Frame* frame;
    PRODB_RETURN_IF_ERROR(pool->FetchPage(pid, &frame));
    hf->pages_.push_back(pid);
    hf->free_space_[pid] =
        static_cast<uint16_t>(ReclaimableFree(frame->data));
    uint16_t slots = PageSlotCount(frame->data);
    for (uint16_t s = 0; s < slots; ++s) {
      if (SlotLength(frame->data, s) != kDeadSlot) {
        ++hf->live_tuples_;
      } else {
        ++hf->dead_slots_;
      }
    }
    uint32_t next = PageNext(frame->data);
    PRODB_RETURN_IF_ERROR(pool->UnpinPage(pid, /*dirty=*/false));
    pid = next;
  }
  if (hf->pages_.empty()) {
    return Status::InvalidArgument("heap file has no pages");
  }
  *out = std::move(hf);
  return Status::OK();
}

Status HeapFile::AppendPage(uint32_t* page_id) {
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool_->NewPage(page_id, &frame));
  InitHeapPage(frame->data);
  LogAndStamp(pool_, frame, LogRecordType::kPageFormat, 0, {},
              UndoKind::kNone, {}, /*structural=*/true);
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(*page_id, /*dirty=*/true));
  // Link from the current tail.
  uint32_t tail = pages_.back();
  Frame* tail_frame;
  PRODB_RETURN_IF_ERROR(pool_->FetchPage(tail, &tail_frame));
  SetPageNext(tail_frame->data, *page_id);
  std::string link(4, '\0');
  std::memcpy(link.data(), page_id, 4);
  LogAndStamp(pool_, tail_frame, LogRecordType::kPageLink, 0,
              std::move(link), UndoKind::kNone, {}, /*structural=*/true);
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(tail, /*dirty=*/true));
  pages_.push_back(*page_id);
  free_space_[*page_id] = static_cast<uint16_t>(kPageSize - kPageHeaderSize);
  return Status::OK();
}

Status HeapFile::Insert(const Tuple& tuple, TupleId* id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string rec;
  tuple.SerializeTo(&rec);
  if (rec.size() > kPageSize - kPageHeaderSize - kSlotSize) {
    return Status::InvalidArgument("tuple larger than a page");
  }
  // Try the most recently appended page first (common append workload),
  // then any page the free-space map says could fit the record.
  std::vector<uint32_t> candidates;
  candidates.push_back(pages_.back());
  for (const auto& [pid, free] : free_space_) {
    if (pid != pages_.back() && free >= rec.size() + kSlotSize) {
      candidates.push_back(pid);
    }
  }
  for (uint32_t pid : candidates) {
    Frame* frame;
    PRODB_RETURN_IF_ERROR(pool_->FetchPage(pid, &frame));
    int slot = InsertIntoPage(frame->data, rec);
    if (slot >= 0) {
      // InsertIntoPage never reuses dead slots, so the slot was absent
      // before: undo is "clear it".
      LogAndStamp(pool_, frame, LogRecordType::kSlotPut,
                  static_cast<uint32_t>(slot), rec, UndoKind::kClearSlot);
      free_space_[pid] = static_cast<uint16_t>(ReclaimableFree(frame->data));
      PRODB_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/true));
      id->page_id = pid;
      id->slot_id = static_cast<uint32_t>(slot);
      ++live_tuples_;
      return Status::OK();
    }
    PRODB_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/false));
  }
  uint32_t pid;
  PRODB_RETURN_IF_ERROR(AppendPage(&pid));
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool_->FetchPage(pid, &frame));
  int slot = InsertIntoPage(frame->data, rec);
  if (slot >= 0) {
    LogAndStamp(pool_, frame, LogRecordType::kSlotPut,
                static_cast<uint32_t>(slot), rec, UndoKind::kClearSlot);
  }
  free_space_[pid] = static_cast<uint16_t>(ReclaimableFree(frame->data));
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/true));
  if (slot < 0) return Status::Internal("insert failed on fresh page");
  id->page_id = pid;
  id->slot_id = static_cast<uint32_t>(slot);
  ++live_tuples_;
  return Status::OK();
}

Status HeapFile::Get(TupleId id, Tuple* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool_->FetchPage(id.page_id, &frame));
  Status st = Status::OK();
  uint16_t slots = PageSlotCount(frame->data);
  if (id.slot_id >= slots || SlotLength(frame->data, id.slot_id) == kDeadSlot) {
    st = Status::NotFound("tuple " + id.ToString());
  } else {
    size_t off = SlotOffset(frame->data, id.slot_id);
    size_t len = SlotLength(frame->data, id.slot_id);
    size_t pos = 0;
    if (!Tuple::DeserializeFrom(frame->data + off, len, &pos, out)) {
      st = Status::Corruption("bad tuple encoding at " + id.ToString());
    }
  }
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, /*dirty=*/false));
  return st;
}

Status HeapFile::Delete(TupleId id) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool_->FetchPage(id.page_id, &frame));
  Status st = Status::OK();
  bool dirty = false;
  uint16_t slots = PageSlotCount(frame->data);
  if (id.slot_id >= slots || SlotLength(frame->data, id.slot_id) == kDeadSlot) {
    st = Status::NotFound("tuple " + id.ToString());
  } else {
    // Before-image first: once the slot is tombstoned the bytes are
    // unreachable, and undo must be able to put them back.
    uint16_t off = SlotOffset(frame->data, id.slot_id);
    uint16_t len = SlotLength(frame->data, id.slot_id);
    std::string before(frame->data + off, len);
    SetSlot(frame->data, static_cast<uint16_t>(id.slot_id), 0, kDeadSlot);
    LogAndStamp(pool_, frame, LogRecordType::kSlotDelete, id.slot_id, {},
                UndoKind::kRestore, std::move(before));
    free_space_[id.page_id] =
        static_cast<uint16_t>(ReclaimableFree(frame->data));
    --live_tuples_;
    ++dead_slots_;
    dirty = true;
  }
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, dirty));
  return st;
}

Status HeapFile::Restore(TupleId id, const Tuple& tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string rec;
  tuple.SerializeTo(&rec);
  Frame* frame;
  PRODB_RETURN_IF_ERROR(pool_->FetchPage(id.page_id, &frame));
  Status st = Status::OK();
  bool dirty = false;
  uint16_t slots = PageSlotCount(frame->data);
  if (id.slot_id >= slots) {
    st = Status::InvalidArgument("no slot " + id.ToString());
  } else if (SlotLength(frame->data, id.slot_id) != kDeadSlot) {
    st = Status::AlreadyExists("slot live " + id.ToString());
  } else if (ReclaimableFree(frame->data) < rec.size()) {
    st = Status::IOError("page full restoring " + id.ToString());
  } else {
    // CompactPage preserves slot ids and leaves dead slots dead, so the
    // directory entry at id.slot_id survives.
    if (ContiguousFree(frame->data) < rec.size()) CompactPage(frame->data);
    uint16_t free_end = GetU16(frame->data, kPageFreeEndOff);
    free_end = static_cast<uint16_t>(free_end - rec.size());
    std::memcpy(frame->data + free_end, rec.data(), rec.size());
    PutU16(frame->data, kPageFreeEndOff, free_end);
    SetSlot(frame->data, static_cast<uint16_t>(id.slot_id), free_end,
            static_cast<uint16_t>(rec.size()));
    LogAndStamp(pool_, frame, LogRecordType::kSlotPut, id.slot_id, rec,
                UndoKind::kClearSlot);
    free_space_[id.page_id] =
        static_cast<uint16_t>(ReclaimableFree(frame->data));
    ++live_tuples_;
    if (dead_slots_ > 0) --dead_slots_;
    dirty = true;
  }
  PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, dirty));
  return st;
}

Status HeapFile::Update(TupleId id, const Tuple& tuple, TupleId* new_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string rec;
    tuple.SerializeTo(&rec);
    Frame* frame;
    PRODB_RETURN_IF_ERROR(pool_->FetchPage(id.page_id, &frame));
    uint16_t slots = PageSlotCount(frame->data);
    if (id.slot_id >= slots ||
        SlotLength(frame->data, id.slot_id) == kDeadSlot) {
      PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, false));
      return Status::NotFound("tuple " + id.ToString());
    }
    uint16_t old_len = SlotLength(frame->data, id.slot_id);
    if (rec.size() <= old_len) {
      // Overwrite in place; tail of the old record becomes a hole that
      // compaction reclaims later.
      uint16_t off = SlotOffset(frame->data, id.slot_id);
      std::string before(frame->data + off, old_len);
      std::memcpy(frame->data + off, rec.data(), rec.size());
      SetSlot(frame->data, static_cast<uint16_t>(id.slot_id), off,
              static_cast<uint16_t>(rec.size()));
      LogAndStamp(pool_, frame, LogRecordType::kSlotPut, id.slot_id, rec,
                  UndoKind::kRestore, std::move(before));
      free_space_[id.page_id] =
          static_cast<uint16_t>(ReclaimableFree(frame->data));
      PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, true));
      *new_id = id;
      return Status::OK();
    }
    PRODB_RETURN_IF_ERROR(pool_->UnpinPage(id.page_id, false));
  }
  // Record grew: move it (delete + insert), matching the paper's treatment
  // of modify as delete-followed-by-insert.
  PRODB_RETURN_IF_ERROR(Delete(id));
  return Insert(tuple, new_id);
}

size_t HeapFile::TupleCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_tuples_;
}

size_t HeapFile::dead_slot_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_slots_;
}

Status HeapFile::Scan(
    const std::function<Status(TupleId, const Tuple&)>& fn) const {
  std::vector<uint32_t> pages;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pages = pages_;
  }
  for (uint32_t pid : pages) {
    Frame* frame;
    PRODB_RETURN_IF_ERROR(pool_->FetchPage(pid, &frame));
    // Copy out the live tuples, then unpin before invoking callbacks so a
    // callback that re-enters the heap file cannot deadlock on the pin.
    std::vector<std::pair<TupleId, Tuple>> batch;
    Status st = Status::OK();
    uint16_t slots = PageSlotCount(frame->data);
    for (uint16_t s = 0; s < slots && st.ok(); ++s) {
      uint16_t len = SlotLength(frame->data, s);
      if (len == kDeadSlot) continue;
      uint16_t off = SlotOffset(frame->data, s);
      Tuple t;
      size_t pos = 0;
      if (!Tuple::DeserializeFrom(frame->data + off, len, &pos, &t)) {
        st = Status::Corruption("bad tuple encoding in page " +
                                std::to_string(pid));
        break;
      }
      batch.emplace_back(TupleId{pid, s}, std::move(t));
    }
    PRODB_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/false));
    PRODB_RETURN_IF_ERROR(st);
    for (auto& [id, t] : batch) {
      PRODB_RETURN_IF_ERROR(fn(id, t));
    }
  }
  return Status::OK();
}

}  // namespace prodb
