#include "storage/fault_disk.h"

#include <string>

namespace prodb {

namespace {
const char* KindName(DiskOpKind kind) {
  switch (kind) {
    case DiskOpKind::kRead:
      return "read";
    case DiskOpKind::kWrite:
      return "write";
    case DiskOpKind::kAllocate:
      return "allocate";
  }
  return "?";
}
}  // namespace

void FaultInjectingDiskManager::FailNth(DiskOpKind kind, uint64_t nth,
                                        bool sticky) {
  std::lock_guard<std::mutex> lock(mu_);
  kind_plans_[static_cast<size_t>(kind)] =
      Plan{op_counts_[static_cast<size_t>(kind)] + nth, sticky};
}

void FaultInjectingDiskManager::FailAtOp(uint64_t nth, bool sticky) {
  std::lock_guard<std::mutex> lock(mu_);
  any_plan_ = Plan{total_ops_ + nth, sticky};
}

void FaultInjectingDiskManager::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& p : kind_plans_) p.reset();
  any_plan_.reset();
}

void FaultInjectingDiskManager::set_freeze_on_fault(bool v) {
  std::lock_guard<std::mutex> lock(mu_);
  freeze_on_fault_ = v;
}

bool FaultInjectingDiskManager::has_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_taken_;
}

uint32_t FaultInjectingDiskManager::snapshot_page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(snapshot_.size());
}

Status FaultInjectingDiskManager::ReadSnapshotPage(uint32_t page_id,
                                                   char* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!snapshot_taken_) {
    return Status::Internal("no crash snapshot taken");
  }
  if (page_id >= snapshot_.size()) {
    return Status::OutOfRange("snapshot page " + std::to_string(page_id));
  }
  std::copy(snapshot_[page_id].begin(), snapshot_[page_id].end(), out);
  return Status::OK();
}

uint64_t FaultInjectingDiskManager::ops(DiskOpKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_counts_[static_cast<size_t>(kind)];
}

uint64_t FaultInjectingDiskManager::total_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ops_;
}

uint64_t FaultInjectingDiskManager::injected_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

void FaultInjectingDiskManager::SnapshotLocked() {
  // The snapshot is taken before the failed operation reaches the inner
  // manager, so it is exactly the image a crash at this instant would
  // leave on disk.
  uint32_t pages = inner_->PageCount();
  snapshot_.assign(pages, std::vector<char>(kPageSize));
  for (uint32_t p = 0; p < pages; ++p) {
    // A snapshot read that itself fails leaves the page zeroed; the
    // decorator never injects into its own snapshot reads.
    (void)inner_->ReadPage(p, snapshot_[p].data());
  }
  snapshot_taken_ = true;
}

Status FaultInjectingDiskManager::Account(DiskOpKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t k = static_cast<size_t>(kind);
  uint64_t kind_index = op_counts_[k]++;
  uint64_t global_index = total_ops_++;

  bool fire = false;
  if (auto& plan = kind_plans_[k]) {
    if (kind_index == plan->at) {
      fire = true;
      if (!plan->sticky) plan.reset();
    } else if (plan->sticky && kind_index > plan->at) {
      fire = true;
    }
  }
  if (auto& plan = any_plan_) {
    if (global_index == plan->at) {
      fire = true;
      if (!plan->sticky) plan.reset();
    } else if (plan->sticky && global_index > plan->at) {
      fire = true;
    }
  }
  if (!fire) return Status::OK();
  ++injected_;
  if (freeze_on_fault_ && !snapshot_taken_) SnapshotLocked();
  return Status::IOError("injected fault: " + std::string(KindName(kind)) +
                         " op " + std::to_string(global_index));
}

Status FaultInjectingDiskManager::AllocatePage(uint32_t* page_id) {
  PRODB_RETURN_IF_ERROR(Account(DiskOpKind::kAllocate));
  return inner_->AllocatePage(page_id);
}

Status FaultInjectingDiskManager::ReadPage(uint32_t page_id, char* out) {
  PRODB_RETURN_IF_ERROR(Account(DiskOpKind::kRead));
  return inner_->ReadPage(page_id, out);
}

Status FaultInjectingDiskManager::WritePage(uint32_t page_id,
                                            const char* data) {
  PRODB_RETURN_IF_ERROR(Account(DiskOpKind::kWrite));
  return inner_->WritePage(page_id, data);
}

}  // namespace prodb
