#ifndef PRODB_STORAGE_HEAP_FILE_H_
#define PRODB_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "storage/buffer_pool.h"

namespace prodb {

/// Unordered collection of variable-length tuples stored in slotted pages.
///
/// The page layout (header with next pointer, slot count, free end and
/// page LSN; slot directory growing up; records growing down) lives in
/// storage/page_layout.h, shared with WAL redo. A deleted slot has length
/// kDeadSlot and its record space is reclaimed by CompactPage when an
/// insertion would otherwise not fit. Dead slots are never reused for new
/// inserts — TupleIds are stable for the lifetime of the file (matcher
/// bookkeeping and abort compensation key on them); only Restore may
/// revive a dead slot, under its original id.
///
/// When the buffer pool has a WAL attached, every mutation appends a
/// physical log record and stamps the page LSN before unpinning, so the
/// pool's WAL rule can order log and page writes.
///
/// Pages of one heap file form a singly linked list through next_page_id,
/// so a file can be reopened from its head page id after restart.
class HeapFile {
 public:
  /// Creates a new heap file: allocates the head page.
  static Status Create(BufferPool* pool, std::unique_ptr<HeapFile>* out);

  /// Reopens an existing heap file rooted at `head_page_id`.
  static Status Open(BufferPool* pool, uint32_t head_page_id,
                     std::unique_ptr<HeapFile>* out);

  uint32_t head_page_id() const { return pages_.front(); }

  /// Appends `tuple`; returns its TupleId via *id.
  Status Insert(const Tuple& tuple, TupleId* id);

  /// Reads the tuple at `id` into *out.
  Status Get(TupleId id, Tuple* out) const;

  /// Tombstones the slot at `id`. Space is reclaimed lazily.
  Status Delete(TupleId id);

  /// Revives the tombstoned slot at `id` with `tuple` (abort
  /// compensation). The slot directory entry must still exist and be
  /// dead; the record is rewritten into the page's free space, compacting
  /// first if needed. Fails with AlreadyExists if the slot is live.
  Status Restore(TupleId id, const Tuple& tuple);

  /// Replaces the tuple at `id`. If the new encoding fits in place (after
  /// compaction) the TupleId is preserved; otherwise the record moves and
  /// *new_id receives its new location.
  Status Update(TupleId id, const Tuple& tuple, TupleId* new_id);

  /// Number of live tuples.
  size_t TupleCount() const;
  /// Alias of TupleCount, paired with dead_slot_count for space reports.
  size_t live_tuple_count() const { return TupleCount(); }

  /// Number of tombstoned slot-directory entries. Dead slots are never
  /// reused (see class comment), so a churn-heavy workload accumulates
  /// 4 bytes of directory per deleted tuple even though CompactPage
  /// reclaims the record bytes — the space side of keeping TupleIds
  /// stable for matcher bookkeeping and abort compensation.
  size_t dead_slot_count() const;

  /// Number of pages owned by this file.
  size_t PageCount() const { return pages_.size(); }

  /// Invokes `fn(id, tuple)` for every live tuple; stops early and
  /// propagates if `fn` returns a non-OK status.
  Status Scan(const std::function<Status(TupleId, const Tuple&)>& fn) const;

 private:
  explicit HeapFile(BufferPool* pool) : pool_(pool) {}

  Status AppendPage(uint32_t* page_id);

  BufferPool* pool_;
  mutable std::mutex mu_;
  std::vector<uint32_t> pages_;
  // page id -> approximate free bytes, maintained on insert/delete.
  std::unordered_map<uint32_t, uint16_t> free_space_;
  size_t live_tuples_ = 0;
  size_t dead_slots_ = 0;
};

}  // namespace prodb

#endif  // PRODB_STORAGE_HEAP_FILE_H_
