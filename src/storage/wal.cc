#include "storage/wal.h"

#include <algorithm>
#include <cstring>

#include "storage/page_layout.h"

namespace prodb {

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

thread_local uint64_t g_wal_txn = 0;

void AppendU32(std::string* out, uint32_t v) {
  char scratch[4];
  std::memcpy(scratch, &v, 4);
  out->append(scratch, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char scratch[8];
  std::memcpy(scratch, &v, 8);
  out->append(scratch, 8);
}

// Whether a record registers its transaction in the active-transaction
// table. Commit/abort settle the transaction, checkpoints are not txn
// work, and CLRs belong to recovery — a loser must not re-enter the
// table just because restart undo wrote compensation on its behalf.
bool IsTxnDataRecord(LogRecordType type) {
  switch (type) {
    case LogRecordType::kSlotPut:
    case LogRecordType::kSlotDelete:
    case LogRecordType::kPageFormat:
    case LogRecordType::kPageLink:
    case LogRecordType::kPageImage:
      return true;
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
    case LogRecordType::kCheckpoint:
    case LogRecordType::kClr:
      return false;
  }
  return false;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  static const Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void EncodeLogRecord(const LogRecord& rec, std::string* out) {
  std::string body;
  body.reserve(kLogRecordBodyFixed + rec.data.size() + rec.undo.size());
  body.push_back(static_cast<char>(rec.type));
  AppendU64(&body, rec.txn_id);
  AppendU32(&body, rec.page_id);
  AppendU32(&body, rec.slot);
  AppendU32(&body, static_cast<uint32_t>(rec.data.size()));
  body.push_back(static_cast<char>(rec.undo_kind));
  AppendU32(&body, static_cast<uint32_t>(rec.undo.size()));
  body.append(rec.data);
  body.append(rec.undo);

  uint32_t len = static_cast<uint32_t>(body.size());
  uint32_t crc = Crc32(body.data(), body.size());
  char hdr[kLogRecordHeader];
  std::memcpy(hdr, &len, 4);
  std::memcpy(hdr + 4, &crc, 4);
  out->append(hdr, kLogRecordHeader);
  out->append(body);
}

size_t EncodedLogRecordSize(const LogRecord& rec) {
  return kLogRecordHeader + kLogRecordBodyFixed + rec.data.size() +
         rec.undo.size();
}

bool DecodeLogRecord(const char* buf, size_t len, size_t* pos,
                     LogRecord* out) {
  if (*pos + kLogRecordHeader > len) return false;
  uint32_t blen, crc;
  std::memcpy(&blen, buf + *pos, 4);
  std::memcpy(&crc, buf + *pos + 4, 4);
  if (blen < kLogRecordBodyFixed || blen > kMaxLogRecordBody) return false;
  if (*pos + kLogRecordHeader + blen > len) return false;
  const char* body = buf + *pos + kLogRecordHeader;
  if (Crc32(body, blen) != crc) return false;
  uint8_t type = static_cast<uint8_t>(body[0]);
  if (type < static_cast<uint8_t>(LogRecordType::kSlotPut) ||
      type > static_cast<uint8_t>(LogRecordType::kClr)) {
    return false;
  }
  out->type = static_cast<LogRecordType>(type);
  std::memcpy(&out->txn_id, body + 1, 8);
  std::memcpy(&out->page_id, body + 9, 4);
  std::memcpy(&out->slot, body + 13, 4);
  uint32_t dlen;
  std::memcpy(&dlen, body + 17, 4);
  uint8_t undo_kind = static_cast<uint8_t>(body[21]);
  if (undo_kind > static_cast<uint8_t>(UndoKind::kRestore)) return false;
  out->undo_kind = static_cast<UndoKind>(undo_kind);
  uint32_t ulen;
  std::memcpy(&ulen, body + 22, 4);
  if (static_cast<uint64_t>(dlen) + ulen != blen - kLogRecordBodyFixed) {
    return false;
  }
  out->data.assign(body + kLogRecordBodyFixed, dlen);
  out->undo.assign(body + kLogRecordBodyFixed + dlen, ulen);
  *pos += kLogRecordHeader + blen;
  return true;
}

void EncodeCheckpointData(const CheckpointData& ckpt, std::string* out) {
  out->clear();
  AppendU64(out, ckpt.redo_lsn);
  AppendU32(out, static_cast<uint32_t>(ckpt.active_txns.size()));
  for (const auto& [txn, first_lsn] : ckpt.active_txns) {
    AppendU64(out, txn);
    AppendU64(out, first_lsn);
  }
}

bool DecodeCheckpointData(const std::string& buf, CheckpointData* out) {
  *out = CheckpointData{};
  if (buf.size() < 12) return false;
  std::memcpy(&out->redo_lsn, buf.data(), 8);
  uint32_t n;
  std::memcpy(&n, buf.data() + 8, 4);
  if (buf.size() != 12 + static_cast<size_t>(n) * 16) return false;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t txn, first;
    std::memcpy(&txn, buf.data() + 12 + i * 16, 8);
    std::memcpy(&first, buf.data() + 12 + i * 16 + 8, 8);
    out->active_txns[txn] = first;
  }
  return true;
}

void EncodeClrData(const ClrData& clr, std::string* out) {
  out->clear();
  AppendU64(out, clr.compensated_lsn);
  out->push_back(static_cast<char>(clr.op));
  out->append(clr.bytes);
}

bool DecodeClrData(const std::string& buf, ClrData* out) {
  *out = ClrData{};
  if (buf.size() < 9) return false;
  std::memcpy(&out->compensated_lsn, buf.data(), 8);
  uint8_t op = static_cast<uint8_t>(buf[8]);
  if (op > static_cast<uint8_t>(UndoKind::kRestore)) return false;
  out->op = static_cast<UndoKind>(op);
  out->bytes.assign(buf, 9, buf.size() - 9);
  return true;
}

Status LogManager::Create(DiskManager* disk, LogManagerOptions options,
                          std::unique_ptr<LogManager>* out) {
  auto log = std::unique_ptr<LogManager>(new LogManager(disk, options));
  uint32_t anchor, head;
  PRODB_RETURN_IF_ERROR(disk->AllocatePage(&anchor));
  if (anchor != kWalAnchorPageId) {
    return Status::Internal(
        "WAL anchor landed on page " + std::to_string(anchor) +
        "; the log must be created before any other allocation");
  }
  PRODB_RETURN_IF_ERROR(disk->AllocatePage(&head));
  // Write the empty head first, then the anchor that points at it: the
  // anchor must never reference a page whose log-page header write could
  // still be pending. A crash anywhere in here leaves either no valid
  // anchor (recovery re-creates the empty log) or a valid anchor over a
  // valid empty head.
  char page[kPageSize] = {};
  SetPageNext(page, kNoPage);
  PutU16(page, kLogPageUsedOff, 0);
  PRODB_RETURN_IF_ERROR(disk->WritePage(head, page));
  log->pages_.push_back(head);
  PRODB_RETURN_IF_ERROR(log->WriteAnchorLocked(head, 0, 0, {}));
  *out = std::move(log);
  return Status::OK();
}

Status LogManager::Resume(DiskManager* disk, LogManagerOptions options,
                          std::vector<uint32_t> pages, Lsn base, Lsn end,
                          std::unique_ptr<LogManager>* out) {
  if (pages.empty()) {
    return Status::InvalidArgument("WAL resume needs at least the head page");
  }
  if (end < base || base % kLogPagePayload != 0) {
    return Status::InvalidArgument("WAL resume: end/base mismatch");
  }
  auto log = std::unique_ptr<LogManager>(new LogManager(disk, options));
  log->pages_ = std::move(pages);
  log->base_ = base;
  log->end_ = end;
  log->flushed_ = end;
  // pending_ must hold the whole incomplete tail page (its durable bytes
  // are rewritten alongside new ones on every tail-growth flush).
  Lsn tail_start =
      base + ((end - base) / kLogPagePayload) * kLogPagePayload;
  log->buf_start_ = tail_start;
  if (end > tail_start) {
    size_t tail_index =
        static_cast<size_t>((tail_start - base) / kLogPagePayload);
    if (tail_index >= log->pages_.size()) {
      return Status::InvalidArgument("WAL resume: end past the page chain");
    }
    char page[kPageSize];
    PRODB_RETURN_IF_ERROR(disk->ReadPage(log->pages_[tail_index], page));
    log->pending_.assign(page + kLogPageHeaderSize,
                         static_cast<size_t>(end - tail_start));
  }
  *out = std::move(log);
  return Status::OK();
}

Lsn LogManager::Append(const LogRecord& rec, Lsn* start) {
  Lsn lsn;
  bool flush;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Lsn rec_start = end_;
    EncodeLogRecord(rec, &pending_);
    end_ = buf_start_ + pending_.size();
    lsn = end_;
    if (start != nullptr) *start = rec_start;
    ++stats_.records_appended;
    stats_.bytes_appended += lsn - rec_start;
    if (rec.txn_id != 0 && IsTxnDataRecord(rec.type)) {
      active_txns_.emplace(rec.txn_id, rec_start);  // keep first start LSN
    } else if (rec.type == LogRecordType::kCommit ||
               rec.type == LogRecordType::kAbort) {
      active_txns_.erase(rec.txn_id);
    }
    flush = options_.auto_flush;
  }
  if (flush) {
    // Best-effort: a failed auto-flush leaves the record buffered; the
    // WAL rule re-checks durability before any dependent page writeback.
    Status st = FlushTo(lsn);
    (void)st;
  }
  return lsn;
}

Status LogManager::FlushTo(Lsn lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked(lsn);
}

Status LogManager::FlushLocked(Lsn lsn) {
  if (lsn <= flushed_) return Status::OK();
  if (lsn > end_) lsn = end_;
  bool wrote = false;
  // pending_ holds stream bytes [buf_start_, end_), where buf_start_ is
  // always the start of the first not-completely-written log page. A tail
  // page is rewritten (atomically, in the fault model) every time it
  // grows; its bytes leave pending_ only once the page fills and can
  // never change again. A crash between two rewrites leaves the older
  // version — a clean record-boundary prefix. All chain math is relative
  // to base_: truncation recycles head pages without renumbering LSNs.
  while (flushed_ < lsn) {
    size_t page_index =
        static_cast<size_t>((flushed_ - base_) / kLogPagePayload);
    Lsn page_start = base_ + page_index * kLogPagePayload;
    size_t in_page = static_cast<size_t>(flushed_ - page_start);
    while (page_index >= pages_.size()) {
      uint32_t pid;
      PRODB_RETURN_IF_ERROR(disk_->AllocatePage(&pid));
      pages_.push_back(pid);
    }
    size_t take = std::min(static_cast<size_t>(end_ - flushed_),
                           kLogPagePayload - in_page);
    bool fills_page = in_page + take == kLogPagePayload;
    // Extend the chain before (re)writing the filled page so its next
    // pointer is final; a crash in between leaves a zeroed (used = 0)
    // successor that scans as end-of-log.
    if (fills_page && page_index + 1 >= pages_.size()) {
      uint32_t pid;
      PRODB_RETURN_IF_ERROR(disk_->AllocatePage(&pid));
      pages_.push_back(pid);
    }
    char page[kPageSize] = {};
    SetPageNext(page, fills_page ? pages_[page_index + 1] : kNoPage);
    PutU16(page, kLogPageUsedOff, static_cast<uint16_t>(in_page + take));
    std::memcpy(page + kLogPageHeaderSize,
                pending_.data() + (page_start - buf_start_), in_page + take);
    PRODB_RETURN_IF_ERROR(disk_->WritePage(pages_[page_index], page));
    ++stats_.pages_written;
    wrote = true;
    flushed_ += take;
    if (fills_page) {
      // Pages fill strictly in order, so buf_start_ == page_start here.
      pending_.erase(0, kLogPagePayload);
      buf_start_ = page_start + kLogPagePayload;
    }
  }
  if (wrote) ++stats_.flushes;
  return Status::OK();
}

Status LogManager::Checkpoint(Lsn dirty_low_water) {
  std::lock_guard<std::mutex> lock(mu_);
  // Redo point: every page effect below it is already on disk in the
  // heap. UINT64_MAX from the caller means "no dirty logged page" —
  // redo can start at the current end. Appends racing in after the
  // caller sampled its pool are fine either way: their effects carry
  // LSNs above both candidates (the checkpoint is fuzzy, not a barrier).
  Lsn redo = std::min(dirty_low_water, end_);

  CheckpointData ckpt;
  ckpt.redo_lsn = redo;
  ckpt.active_txns = active_txns_;
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  EncodeCheckpointData(ckpt, &rec.data);
  Lsn rec_start = end_;
  EncodeLogRecord(rec, &pending_);
  end_ = buf_start_ + pending_.size();
  ++stats_.records_appended;
  stats_.bytes_appended += end_ - rec_start;
  // The checkpoint only exists once it is durable; recovery finds the
  // newest intact one by scanning, so a crash mid-flush simply falls
  // back to the previous checkpoint (or log genesis).
  PRODB_RETURN_IF_ERROR(FlushLocked(end_));
  checkpoint_lsn_ = end_;
  ++stats_.checkpoints_taken;

  // Truncation floor: recovery redoes from `redo` and must also be able
  // to undo any still-active transaction from its first record.
  Lsn keep = redo;
  for (const auto& [txn, first_lsn] : ckpt.active_txns) {
    keep = std::min(keep, first_lsn);
  }

  // Chain pages wholly below the floor are dead. The tail page is never
  // freed (the chain must stay non-empty), and `keep <= flushed_` here,
  // so a freed page can never hold unflushed bytes.
  size_t n_free = 0;
  while (n_free + 1 < pages_.size() &&
         base_ + (n_free + 1) * kLogPagePayload <= keep) {
    ++n_free;
  }
  std::vector<uint32_t> freed(pages_.begin(), pages_.begin() + n_free);
  // Rewrite the anchor before releasing any page: once a freed page can
  // be re-allocated (and overwritten), no crash image may exist in which
  // the anchor still routes the scan through it. If the anchor write
  // fails, the chain is simply not advanced — nothing was freed.
  PRODB_RETURN_IF_ERROR(WriteAnchorLocked(
      pages_[n_free], base_ + n_free * kLogPagePayload, keep, freed));
  pages_.erase(pages_.begin(), pages_.begin() + n_free);
  base_ += n_free * kLogPagePayload;
  for (uint32_t pid : freed) {
    disk_->FreePage(pid);
  }
  stats_.pages_recycled += n_free;
  return Status::OK();
}

Status LogManager::WriteAnchorLocked(uint32_t first_page, Lsn base,
                                     Lsn scan_start,
                                     const std::vector<uint32_t>& extra_free) {
  std::vector<uint32_t> free_pages = disk_->FreePages();
  free_pages.insert(free_pages.end(), extra_free.begin(), extra_free.end());
  return WriteWalAnchor(disk_, first_page, base, scan_start, checkpoint_lsn_,
                        free_pages);
}

Status WriteWalAnchor(DiskManager* disk, uint32_t first_page, Lsn base,
                      Lsn scan_start, Lsn checkpoint_lsn,
                      const std::vector<uint32_t>& free_pages) {
  char page[kPageSize] = {};
  PutU32(page, kAnchorMagicOff, kWalAnchorMagic);
  PutU32(page, kAnchorFirstPageOff, first_page);
  PutU64(page, kAnchorBaseOff, base);
  PutU64(page, kAnchorScanStartOff, scan_start);
  PutU64(page, kAnchorCheckpointOff, checkpoint_lsn);
  size_t n = free_pages.size();
  if (n > kAnchorMaxFreePages) {
    // Overflowing entries stay reusable this run but leak at the next
    // restart (recovery only re-seeds what the anchor names). Harmless:
    // ~1000 free pages queued is already a pathological backlog.
    n = kAnchorMaxFreePages;
  }
  PutU32(page, kAnchorFreeCountOff, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    PutU32(page, kAnchorFreeListOff + i * 4, free_pages[i]);
  }
  return disk->WritePage(kWalAnchorPageId, page);
}

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_;
}

Lsn LogManager::flushed_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushed_;
}

Lsn LogManager::base_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_;
}

Lsn LogManager::checkpoint_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_lsn_;
}

size_t LogManager::live_log_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

std::vector<uint32_t> LogManager::PageChain() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_;
}

std::map<uint64_t, Lsn> LogManager::ActiveTxns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_txns_;
}

uint64_t CurrentWalTxn() { return g_wal_txn; }

WalTxnScope::WalTxnScope(uint64_t txn_id) : saved_(g_wal_txn) {
  g_wal_txn = txn_id;
}

WalTxnScope::~WalTxnScope() { g_wal_txn = saved_; }

}  // namespace prodb
