#include "storage/wal.h"

#include <cstring>

#include "storage/page_layout.h"

namespace prodb {

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

thread_local uint64_t g_wal_txn = 0;

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  static const Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void EncodeLogRecord(const LogRecord& rec, std::string* out) {
  std::string body;
  body.reserve(kLogRecordBodyFixed + rec.data.size());
  body.push_back(static_cast<char>(rec.type));
  char scratch[8];
  std::memcpy(scratch, &rec.txn_id, 8);
  body.append(scratch, 8);
  std::memcpy(scratch, &rec.page_id, 4);
  body.append(scratch, 4);
  std::memcpy(scratch, &rec.slot, 4);
  body.append(scratch, 4);
  uint32_t dlen = static_cast<uint32_t>(rec.data.size());
  std::memcpy(scratch, &dlen, 4);
  body.append(scratch, 4);
  body.append(rec.data);

  uint32_t len = static_cast<uint32_t>(body.size());
  uint32_t crc = Crc32(body.data(), body.size());
  char hdr[kLogRecordHeader];
  std::memcpy(hdr, &len, 4);
  std::memcpy(hdr + 4, &crc, 4);
  out->append(hdr, kLogRecordHeader);
  out->append(body);
}

bool DecodeLogRecord(const char* buf, size_t len, size_t* pos,
                     LogRecord* out) {
  if (*pos + kLogRecordHeader > len) return false;
  uint32_t blen, crc;
  std::memcpy(&blen, buf + *pos, 4);
  std::memcpy(&crc, buf + *pos + 4, 4);
  if (blen < kLogRecordBodyFixed || blen > kMaxLogRecordBody) return false;
  if (*pos + kLogRecordHeader + blen > len) return false;
  const char* body = buf + *pos + kLogRecordHeader;
  if (Crc32(body, blen) != crc) return false;
  uint8_t type = static_cast<uint8_t>(body[0]);
  if (type < static_cast<uint8_t>(LogRecordType::kSlotPut) ||
      type > static_cast<uint8_t>(LogRecordType::kAbort)) {
    return false;
  }
  out->type = static_cast<LogRecordType>(type);
  std::memcpy(&out->txn_id, body + 1, 8);
  std::memcpy(&out->page_id, body + 9, 4);
  std::memcpy(&out->slot, body + 13, 4);
  uint32_t dlen;
  std::memcpy(&dlen, body + 17, 4);
  if (dlen != blen - kLogRecordBodyFixed) return false;
  out->data.assign(body + kLogRecordBodyFixed, dlen);
  *pos += kLogRecordHeader + blen;
  return true;
}

Status LogManager::Create(DiskManager* disk, LogManagerOptions options,
                          std::unique_ptr<LogManager>* out) {
  auto log = std::unique_ptr<LogManager>(new LogManager(disk, options));
  uint32_t head;
  PRODB_RETURN_IF_ERROR(disk->AllocatePage(&head));
  if (head != kWalHeadPageId) {
    return Status::Internal(
        "WAL head landed on page " + std::to_string(head) +
        "; the log must be created before any other allocation");
  }
  // Write the empty head (used = 0, no next) so a crash image taken
  // before the first flush still scans as a valid empty log.
  char page[kPageSize] = {};
  SetPageNext(page, kNoPage);
  PutU16(page, kLogPageUsedOff, 0);
  PRODB_RETURN_IF_ERROR(disk->WritePage(head, page));
  log->pages_.push_back(head);
  *out = std::move(log);
  return Status::OK();
}

Status LogManager::Resume(DiskManager* disk, LogManagerOptions options,
                          std::vector<uint32_t> pages, Lsn end,
                          std::unique_ptr<LogManager>* out) {
  if (pages.empty()) {
    return Status::InvalidArgument("WAL resume needs at least the head page");
  }
  auto log = std::unique_ptr<LogManager>(new LogManager(disk, options));
  log->pages_ = std::move(pages);
  log->end_ = end;
  log->flushed_ = end;
  // pending_ must hold the whole incomplete tail page (its durable bytes
  // are rewritten alongside new ones on every tail-growth flush).
  size_t tail_start = static_cast<size_t>(end / kLogPagePayload) *
                      kLogPagePayload;
  log->buf_start_ = tail_start;
  if (end > tail_start) {
    size_t tail_index = tail_start / kLogPagePayload;
    if (tail_index >= log->pages_.size()) {
      return Status::InvalidArgument("WAL resume: end past the page chain");
    }
    char page[kPageSize];
    PRODB_RETURN_IF_ERROR(disk->ReadPage(log->pages_[tail_index], page));
    log->pending_.assign(page + kLogPageHeaderSize,
                         static_cast<size_t>(end - tail_start));
  }
  *out = std::move(log);
  return Status::OK();
}

Lsn LogManager::Append(const LogRecord& rec) {
  Lsn lsn;
  bool flush;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EncodeLogRecord(rec, &pending_);
    end_ = buf_start_ + pending_.size();
    lsn = end_;
    ++stats_.records_appended;
    flush = options_.auto_flush;
  }
  if (flush) {
    // Best-effort: a failed auto-flush leaves the record buffered; the
    // WAL rule re-checks durability before any dependent page writeback.
    Status st = FlushTo(lsn);
    (void)st;
  }
  return lsn;
}

Status LogManager::FlushTo(Lsn lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked(lsn);
}

Status LogManager::FlushLocked(Lsn lsn) {
  if (lsn <= flushed_) return Status::OK();
  if (lsn > end_) lsn = end_;
  bool wrote = false;
  // pending_ holds stream bytes [buf_start_, end_), where buf_start_ is
  // always the start of the first not-completely-written log page. A tail
  // page is rewritten (atomically, in the fault model) every time it
  // grows; its bytes leave pending_ only once the page fills and can
  // never change again. A crash between two rewrites leaves the older
  // version — a clean record-boundary prefix.
  while (flushed_ < lsn) {
    size_t page_index = static_cast<size_t>(flushed_ / kLogPagePayload);
    size_t page_start = page_index * kLogPagePayload;
    size_t in_page = static_cast<size_t>(flushed_ - page_start);
    while (page_index >= pages_.size()) {
      uint32_t pid;
      PRODB_RETURN_IF_ERROR(disk_->AllocatePage(&pid));
      pages_.push_back(pid);
    }
    size_t take = std::min(static_cast<size_t>(end_ - flushed_),
                           kLogPagePayload - in_page);
    bool fills_page = in_page + take == kLogPagePayload;
    // Extend the chain before (re)writing the filled page so its next
    // pointer is final; a crash in between leaves a zeroed (used = 0)
    // successor that scans as end-of-log.
    if (fills_page && page_index + 1 >= pages_.size()) {
      uint32_t pid;
      PRODB_RETURN_IF_ERROR(disk_->AllocatePage(&pid));
      pages_.push_back(pid);
    }
    char page[kPageSize] = {};
    SetPageNext(page, fills_page ? pages_[page_index + 1] : kNoPage);
    PutU16(page, kLogPageUsedOff, static_cast<uint16_t>(in_page + take));
    std::memcpy(page + kLogPageHeaderSize,
                pending_.data() + (page_start - buf_start_), in_page + take);
    PRODB_RETURN_IF_ERROR(disk_->WritePage(pages_[page_index], page));
    ++stats_.pages_written;
    wrote = true;
    flushed_ += take;
    if (fills_page) {
      // Pages fill strictly in order, so buf_start_ == page_start here.
      pending_.erase(0, kLogPagePayload);
      buf_start_ = page_start + kLogPagePayload;
    }
  }
  if (wrote) ++stats_.flushes;
  return Status::OK();
}

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_;
}

Lsn LogManager::flushed_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushed_;
}

uint64_t CurrentWalTxn() { return g_wal_txn; }

WalTxnScope::WalTxnScope(uint64_t txn_id) : saved_(g_wal_txn) {
  g_wal_txn = txn_id;
}

WalTxnScope::~WalTxnScope() { g_wal_txn = saved_; }

}  // namespace prodb
