#include "storage/disk_manager.h"

#include <cstring>
#include <memory>

namespace prodb {

Status FileDiskManager::Open(const std::string& path, bool truncate,
                             std::unique_ptr<FileDiskManager>* out) {
  auto dm = std::unique_ptr<FileDiskManager>(new FileDiskManager());
  dm->path_ = path;
  auto mode = std::ios::binary | std::ios::in | std::ios::out;
  if (truncate) mode |= std::ios::trunc;
  dm->file_.open(path, mode);
  if (!dm->file_.is_open()) {
    // The file may not exist yet; create it, then reopen read/write.
    std::ofstream create(path, std::ios::binary);
    if (!create.is_open()) {
      return Status::IOError("cannot create " + path);
    }
    create.close();
    dm->file_.open(path, std::ios::binary | std::ios::in | std::ios::out);
    if (!dm->file_.is_open()) {
      return Status::IOError("cannot open " + path);
    }
  }
  dm->file_.seekg(0, std::ios::end);
  auto bytes = static_cast<uint64_t>(dm->file_.tellg());
  dm->page_count_ = static_cast<uint32_t>(bytes / kPageSize);
  *out = std::move(dm);
  return Status::OK();
}

FileDiskManager::~FileDiskManager() {
  if (file_.is_open()) file_.close();
}

Status FileDiskManager::AllocatePage(uint32_t* page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  // Recycled or fresh, the page is handed out only after its zero-fill
  // write lands; otherwise a failed allocate would burn a page id (or
  // pop a free-list entry) that ReadPage then accepts as in-range
  // garbage — and a recycled page must read as zero, not as the stale
  // log page it used to be.
  bool reuse = !free_list_.empty();
  uint32_t candidate = reuse ? free_list_.back() : page_count_;
  char zeros[kPageSize] = {};
  file_.seekp(static_cast<std::streamoff>(candidate) * kPageSize);
  file_.write(zeros, kPageSize);
  file_.flush();
  if (!file_.good()) {
    // One failed I/O must not poison the stream for every later call.
    file_.clear();
    return Status::IOError("allocate failed: " + path_);
  }
  if (reuse) {
    free_list_.pop_back();
    ++pages_reused_;
  } else {
    page_count_ = candidate + 1;
  }
  *page_id = candidate;
  ++writes_;
  return Status::OK();
}

void FileDiskManager::FreePage(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id < page_count_) free_list_.push_back(page_id);
}

void FileDiskManager::SeedFreePages(const std::vector<uint32_t>& pages) {
  std::lock_guard<std::mutex> lock(mu_);
  free_list_.clear();
  for (uint32_t pid : pages) {
    if (pid < page_count_) free_list_.push_back(pid);
  }
}

std::vector<uint32_t> FileDiskManager::FreePages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_list_;
}

uint64_t FileDiskManager::pages_reused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_reused_;
}

Status FileDiskManager::ReadPage(uint32_t page_id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_id));
  }
  file_.seekg(static_cast<std::streamoff>(page_id) * kPageSize);
  file_.read(out, kPageSize);
  if (!file_.good()) {
    file_.clear();
    return Status::IOError("read failed: " + path_);
  }
  ++reads_;
  return Status::OK();
}

Status FileDiskManager::WritePage(uint32_t page_id, const char* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_id));
  }
  file_.seekp(static_cast<std::streamoff>(page_id) * kPageSize);
  file_.write(data, kPageSize);
  file_.flush();
  if (!file_.good()) {
    file_.clear();
    return Status::IOError("write failed: " + path_);
  }
  ++writes_;
  return Status::OK();
}

void FileDiskManager::InjectStreamFaultForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  file_.setstate(std::ios::failbit);
}

uint32_t FileDiskManager::PageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_count_;
}

Status MemoryDiskManager::AllocatePage(uint32_t* page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_list_.empty()) {
    uint32_t pid = free_list_.back();
    free_list_.pop_back();
    // Recycled pages must read as zero, same as fresh ones.
    pages_[pid].assign(kPageSize, 0);
    ++pages_reused_;
    *page_id = pid;
    return Status::OK();
  }
  *page_id = static_cast<uint32_t>(pages_.size());
  pages_.emplace_back(kPageSize, 0);
  return Status::OK();
}

void MemoryDiskManager::FreePage(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id < pages_.size()) free_list_.push_back(page_id);
}

void MemoryDiskManager::SeedFreePages(const std::vector<uint32_t>& pages) {
  std::lock_guard<std::mutex> lock(mu_);
  free_list_.clear();
  for (uint32_t pid : pages) {
    if (pid < pages_.size()) free_list_.push_back(pid);
  }
}

std::vector<uint32_t> MemoryDiskManager::FreePages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_list_;
}

uint64_t MemoryDiskManager::pages_reused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_reused_;
}

Status MemoryDiskManager::ReadPage(uint32_t page_id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id >= pages_.size()) {
    return Status::OutOfRange("page " + std::to_string(page_id));
  }
  std::memcpy(out, pages_[page_id].data(), kPageSize);
  ++reads_;
  return Status::OK();
}

Status MemoryDiskManager::WritePage(uint32_t page_id, const char* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id >= pages_.size()) {
    return Status::OutOfRange("page " + std::to_string(page_id));
  }
  std::memcpy(pages_[page_id].data(), data, kPageSize);
  ++writes_;
  return Status::OK();
}

uint32_t MemoryDiskManager::PageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(pages_.size());
}

}  // namespace prodb
