#ifndef PRODB_STORAGE_DISK_MANAGER_H_
#define PRODB_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace prodb {

/// Fixed page size used throughout the storage engine.
inline constexpr size_t kPageSize = 4096;

/// Abstraction over the page-granular backing store.
///
/// The paper's premise is that "large knowledge bases cannot, and perhaps
/// should not, reside in main memory" (§1) — working memory lives on
/// secondary storage. The DiskManager is that secondary storage. Two
/// implementations are provided: a real file (FileDiskManager) and an
/// in-memory store (MemoryDiskManager) so unit tests and benchmarks can
/// run without filesystem effects while exercising identical code paths.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a zeroed page and returns its id via *page_id. Recycled
  /// pages (see FreePage) are preferred over growing the store; either
  /// way the page is zero on disk when the call returns — callers (log
  /// chain scans, page-LSN gating) rely on fresh pages reading as zero.
  virtual Status AllocatePage(uint32_t* page_id) = 0;

  /// Returns `page_id` to the allocator's free list for reuse by a later
  /// AllocatePage. Metadata-only (no I/O, cannot fail); the caller is
  /// responsible for ensuring nothing references the page any more. The
  /// default implementation leaks the page (a store may not support
  /// reuse).
  virtual void FreePage(uint32_t page_id) { (void)page_id; }

  /// Replaces the free list wholesale — restart recovery re-seeds it
  /// from the WAL anchor after subtracting pages the log still
  /// references.
  virtual void SeedFreePages(const std::vector<uint32_t>& pages) {
    (void)pages;
  }

  /// Current free-list contents (unspecified order).
  virtual std::vector<uint32_t> FreePages() const { return {}; }

  /// How many AllocatePage calls were satisfied from the free list.
  virtual uint64_t pages_reused() const { return 0; }

  /// Reads page `page_id` into `out` (exactly kPageSize bytes).
  virtual Status ReadPage(uint32_t page_id, char* out) = 0;

  /// Writes exactly kPageSize bytes from `data` to page `page_id`.
  virtual Status WritePage(uint32_t page_id, const char* data) = 0;

  /// Number of pages ever allocated.
  virtual uint32_t PageCount() const = 0;

  /// Total physical reads / writes, for the I/O-cost benchmarks.
  virtual uint64_t reads() const = 0;
  virtual uint64_t writes() const = 0;
};

/// DiskManager over an ordinary file. Thread-safe.
class FileDiskManager : public DiskManager {
 public:
  /// Creates (truncating) or opens the file at `path`.
  static Status Open(const std::string& path, bool truncate,
                     std::unique_ptr<FileDiskManager>* out);
  ~FileDiskManager() override;

  Status AllocatePage(uint32_t* page_id) override;
  void FreePage(uint32_t page_id) override;
  void SeedFreePages(const std::vector<uint32_t>& pages) override;
  std::vector<uint32_t> FreePages() const override;
  uint64_t pages_reused() const override;
  Status ReadPage(uint32_t page_id, char* out) override;
  Status WritePage(uint32_t page_id, const char* data) override;
  uint32_t PageCount() const override;
  uint64_t reads() const override { return reads_; }
  uint64_t writes() const override { return writes_; }

  /// Puts the stream into a failed state so the next operation fails —
  /// the only deterministic way to exercise real-fstream error paths
  /// (failbit recovery, allocate id rollback) without faulting the OS.
  void InjectStreamFaultForTesting();

 private:
  FileDiskManager() = default;

  mutable std::mutex mu_;
  std::fstream file_;
  std::string path_;
  uint32_t page_count_ = 0;
  std::vector<uint32_t> free_list_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t pages_reused_ = 0;
};

/// DiskManager over a heap-allocated page vector. Thread-safe.
class MemoryDiskManager : public DiskManager {
 public:
  Status AllocatePage(uint32_t* page_id) override;
  void FreePage(uint32_t page_id) override;
  void SeedFreePages(const std::vector<uint32_t>& pages) override;
  std::vector<uint32_t> FreePages() const override;
  uint64_t pages_reused() const override;
  Status ReadPage(uint32_t page_id, char* out) override;
  Status WritePage(uint32_t page_id, const char* data) override;
  uint32_t PageCount() const override;
  uint64_t reads() const override { return reads_; }
  uint64_t writes() const override { return writes_; }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<char>> pages_;
  std::vector<uint32_t> free_list_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t pages_reused_ = 0;
};

}  // namespace prodb

#endif  // PRODB_STORAGE_DISK_MANAGER_H_
