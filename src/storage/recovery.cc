#include "storage/recovery.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <string>

#include "storage/page_layout.h"

namespace prodb {

Status ScanLog(DiskManager* disk, LogScanResult* out) {
  *out = LogScanResult{};
  if (disk->PageCount() == 0) return Status::OK();  // nothing ever written

  // Walk the chain, concatenating payloads into the stream. A zeroed
  // page (used == 0) or a dangling next pointer ends the stream — both
  // are legitimate crash states (page allocated but its first write, or
  // the link's target write, never happened).
  std::string stream;
  uint32_t pid = kWalHeadPageId;
  char page[kPageSize];
  std::set<uint32_t> visited;  // corrupt next pointers must not cycle
  while (true) {
    if (pid >= disk->PageCount() || !visited.insert(pid).second) break;
    PRODB_RETURN_IF_ERROR(disk->ReadPage(pid, page));
    uint16_t used = GetU16(page, kLogPageUsedOff);
    if (used == 0) {
      // An allocated-but-never-written successor; the chain ends before
      // it. Still part of the chain for truncation purposes.
      out->pages.push_back(pid);
      break;
    }
    out->pages.push_back(pid);
    size_t take = std::min<size_t>(used, kLogPagePayload);
    stream.append(page + kLogPageHeaderSize, take);
    if (take < kLogPagePayload) break;  // partial page: stream ends here
    uint32_t next = PageNext(page);
    if (next == kNoPage || next == 0) break;
    pid = next;
  }

  out->stream_end = stream.size();
  size_t pos = 0;
  while (pos < stream.size()) {
    ScannedRecord sr;
    size_t next_pos = pos;
    if (!DecodeLogRecord(stream.data(), stream.size(), &next_pos, &sr.rec)) {
      out->torn_tail = true;
      break;
    }
    pos = next_pos;
    sr.lsn = pos;
    out->records.push_back(std::move(sr));
  }
  out->valid_end = pos;
  return Status::OK();
}

namespace {

// Applies one physical record to the pinned page. The page is in exactly
// the state it had when the record was originally generated (earlier
// records were applied in order, gated by the page LSN), so the physical
// operations below recreate the original effects bit-for-bit at the
// logical level; byte layout may differ across compaction histories,
// which is why verification compares tuples, not raw pages — but replay
// of the *same* image is fully deterministic, giving byte-identical
// double recovery.
Status RedoOnPage(const ScannedRecord& sr, char* data) {
  const LogRecord& rec = sr.rec;
  switch (rec.type) {
    case LogRecordType::kPageFormat:
      InitHeapPage(data);
      break;
    case LogRecordType::kPageLink: {
      if (rec.data.size() != 4) {
        return Status::Corruption("bad page-link record size");
      }
      uint32_t next;
      std::memcpy(&next, rec.data.data(), 4);
      SetPageNext(data, next);
      break;
    }
    case LogRecordType::kPageImage:
      if (rec.data.size() != kPageSize) {
        return Status::Corruption("bad page-image record size");
      }
      std::memcpy(data, rec.data.data(), kPageSize);
      break;
    case LogRecordType::kSlotPut:
      if (!PlaceRecordAtSlot(data, static_cast<uint16_t>(rec.slot),
                             rec.data)) {
        return Status::Corruption(
            "redo: record does not fit in page " +
            std::to_string(rec.page_id) + " slot " +
            std::to_string(rec.slot));
      }
      break;
    case LogRecordType::kSlotDelete: {
      uint16_t slots = PageSlotCount(data);
      if (rec.slot >= slots) {
        return Status::Corruption("redo: delete of missing slot " +
                                  std::to_string(rec.slot) + " in page " +
                                  std::to_string(rec.page_id));
      }
      SetSlot(data, static_cast<uint16_t>(rec.slot), 0, kDeadSlot);
      break;
    }
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
      return Status::Internal("redo of a non-physical record");
  }
  SetPageLsn(data, sr.lsn);
  return Status::OK();
}

// Zeroes the log stream past `scan.valid_end` and normalizes the tail
// page (used count, next = kNoPage), so the next scan — and the resumed
// LogManager — see a clean end. Pages wholly past the tail are rewritten
// as empty. Idempotent: re-truncating an already-clean tail writes the
// same bytes.
Status TruncateLogTail(DiskManager* disk, const LogScanResult& scan) {
  size_t tail_index = static_cast<size_t>(scan.valid_end / kLogPagePayload);
  char page[kPageSize];
  for (size_t i = tail_index; i < scan.pages.size(); ++i) {
    uint32_t pid = scan.pages[i];
    std::memset(page, 0, kPageSize);
    size_t used = 0;
    if (i == tail_index && scan.valid_end > i * kLogPagePayload) {
      used = static_cast<size_t>(scan.valid_end - i * kLogPagePayload);
      char src[kPageSize];
      PRODB_RETURN_IF_ERROR(disk->ReadPage(pid, src));
      std::memcpy(page + kLogPageHeaderSize, src + kLogPageHeaderSize, used);
    }
    SetPageNext(page, kNoPage);
    PutU16(page, kLogPageUsedOff, static_cast<uint16_t>(used));
    PRODB_RETURN_IF_ERROR(disk->WritePage(pid, page));
  }
  return Status::OK();
}

}  // namespace

Status RecoverLog(BufferPool* pool, RecoveryResult* out) {
  *out = RecoveryResult{};
  DiskManager* disk = pool->disk();

  LogScanResult scan;
  PRODB_RETURN_IF_ERROR(ScanLog(disk, &scan));
  out->records_scanned = scan.records.size();
  out->torn_tail = scan.torn_tail;
  out->truncated_bytes = scan.stream_end - scan.valid_end;
  out->log_end = scan.valid_end;
  out->log_pages = scan.pages;

  // Pass 1: the redo cutoff — transactions with an intact commit record.
  std::set<uint64_t> committed;
  for (const ScannedRecord& sr : scan.records) {
    if (sr.rec.type == LogRecordType::kCommit) committed.insert(sr.rec.txn_id);
    if (sr.rec.txn_id > out->max_txn_id) out->max_txn_id = sr.rec.txn_id;
  }
  out->committed.assign(committed.begin(), committed.end());
  out->committed_txns = committed.size();

  // Pass 2: redo, in log order. Structural and auto-commit records
  // (txn 0) are always redone; transactional records only when their
  // transaction committed. The page LSN decides "already applied".
  for (const ScannedRecord& sr : scan.records) {
    const LogRecord& rec = sr.rec;
    if (rec.type == LogRecordType::kCommit ||
        rec.type == LogRecordType::kAbort) {
      continue;
    }
    if (rec.txn_id != 0 && committed.count(rec.txn_id) == 0) continue;
    if (rec.page_id >= disk->PageCount()) {
      // A record can only be flushed after its page's allocation reached
      // the disk, so this is genuine corruption, not a crash artifact.
      return Status::Corruption("redo: record for unallocated page " +
                                std::to_string(rec.page_id));
    }
    Frame* frame;
    PRODB_RETURN_IF_ERROR(pool->FetchPage(rec.page_id, &frame));
    Status st = Status::OK();
    bool applied = false;
    if (sr.lsn > PageLsn(frame->data)) {
      st = RedoOnPage(sr, frame->data);
      applied = st.ok();
    }
    PRODB_RETURN_IF_ERROR(pool->UnpinPage(rec.page_id, applied));
    PRODB_RETURN_IF_ERROR(st);
    if (applied) ++out->records_redone;
  }

  // Everything redone goes to disk now; the log itself is already there,
  // so the WAL rule holds trivially (no LogManager is attached yet).
  PRODB_RETURN_IF_ERROR(pool->FlushAll());

  // Truncate the torn tail so a second recovery (and resumed appends)
  // start from a clean boundary.
  PRODB_RETURN_IF_ERROR(TruncateLogTail(disk, scan));
  return Status::OK();
}

}  // namespace prodb
