#include "storage/recovery.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "storage/page_layout.h"

namespace prodb {

Status ScanLog(DiskManager* disk, LogScanResult* out) {
  *out = LogScanResult{};
  if (disk->PageCount() == 0) return Status::OK();  // nothing ever written

  // The anchor locates the head of the chain. An invalid anchor is only
  // legitimate when a crash pre-empted LogManager::Create — the caller
  // decides whether to repair or reject.
  char page[kPageSize];
  PRODB_RETURN_IF_ERROR(disk->ReadPage(kWalAnchorPageId, page));
  if (GetU32(page, kAnchorMagicOff) != kWalAnchorMagic) return Status::OK();
  out->anchor_valid = true;
  uint32_t first_page = GetU32(page, kAnchorFirstPageOff);
  out->base = GetU64(page, kAnchorBaseOff);
  out->scan_start = GetU64(page, kAnchorScanStartOff);
  out->anchor_checkpoint_lsn = GetU64(page, kAnchorCheckpointOff);
  uint32_t free_count = GetU32(page, kAnchorFreeCountOff);
  if (free_count > kAnchorMaxFreePages) {
    return Status::Corruption("log anchor free-list count out of range");
  }
  for (uint32_t i = 0; i < free_count; ++i) {
    out->anchor_free.push_back(GetU32(page, kAnchorFreeListOff + i * 4));
  }

  // Walk the chain, concatenating payloads into the stream. A zeroed
  // page (used == 0) or a dangling next pointer ends the stream — both
  // are legitimate crash states (page allocated but its first write, or
  // the link's target write, never happened).
  std::string stream;
  uint32_t pid = first_page;
  std::set<uint32_t> visited;  // corrupt next pointers must not cycle
  while (true) {
    if (pid >= disk->PageCount() || !visited.insert(pid).second) break;
    PRODB_RETURN_IF_ERROR(disk->ReadPage(pid, page));
    uint16_t used = GetU16(page, kLogPageUsedOff);
    if (used == 0) {
      // An allocated-but-never-written successor; the chain ends before
      // it. Still part of the chain for truncation purposes.
      out->pages.push_back(pid);
      break;
    }
    out->pages.push_back(pid);
    size_t take = std::min<size_t>(used, kLogPagePayload);
    stream.append(page + kLogPageHeaderSize, take);
    if (take < kLogPagePayload) break;  // partial page: stream ends here
    uint32_t next = PageNext(page);
    if (next == kNoPage || next == kWalAnchorPageId) break;
    pid = next;
  }

  out->stream_end = out->base + stream.size();
  if (out->scan_start < out->base || out->scan_start > out->stream_end) {
    return Status::Corruption("log anchor scan start outside the chain");
  }
  // scan_start is a record boundary at or past base — truncation is
  // page-granular, so the head page may open with the tail of a record
  // that is already dead.
  size_t pos = static_cast<size_t>(out->scan_start - out->base);
  while (pos < stream.size()) {
    ScannedRecord sr;
    size_t next_pos = pos;
    if (!DecodeLogRecord(stream.data(), stream.size(), &next_pos, &sr.rec)) {
      out->torn_tail = true;
      break;
    }
    sr.start = out->base + pos;
    pos = next_pos;
    sr.lsn = out->base + pos;
    out->records.push_back(std::move(sr));
  }
  out->valid_end = out->base + pos;
  return Status::OK();
}

namespace {

bool IsDataRecord(LogRecordType type) {
  switch (type) {
    case LogRecordType::kSlotPut:
    case LogRecordType::kSlotDelete:
    case LogRecordType::kPageFormat:
    case LogRecordType::kPageLink:
    case LogRecordType::kPageImage:
      return true;
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
    case LogRecordType::kCheckpoint:
    case LogRecordType::kClr:
      return false;
  }
  return false;
}

// Applies the physical undo operation shared by CLR replay (redo pass)
// and fresh undo: tombstone the slot, or put the before-image bytes
// back.
Status ApplyUndoOp(UndoKind op, uint32_t page_id, uint32_t slot,
                   const std::string& bytes, char* data) {
  switch (op) {
    case UndoKind::kClearSlot: {
      uint16_t slots = PageSlotCount(data);
      if (slot >= slots) {
        return Status::Corruption("undo: clear of missing slot " +
                                  std::to_string(slot) + " in page " +
                                  std::to_string(page_id));
      }
      SetSlot(data, static_cast<uint16_t>(slot), 0, kDeadSlot);
      return Status::OK();
    }
    case UndoKind::kRestore:
      if (!PlaceRecordAtSlot(data, static_cast<uint16_t>(slot), bytes)) {
        return Status::Corruption("undo: before-image does not fit in page " +
                                  std::to_string(page_id) + " slot " +
                                  std::to_string(slot));
      }
      return Status::OK();
    case UndoKind::kNone:
      break;
  }
  return Status::Internal("undo of a record without undo info");
}

// Applies one physical record to the pinned page. The page is in exactly
// the state it had when the record was originally generated (earlier
// records were applied in order, gated by the page LSN), so the physical
// operations below recreate the original effects bit-for-bit at the
// logical level; byte layout may differ across compaction histories,
// which is why verification compares tuples, not raw pages — but replay
// of the *same* image is fully deterministic, giving byte-identical
// double recovery.
Status RedoOnPage(const ScannedRecord& sr, char* data) {
  const LogRecord& rec = sr.rec;
  switch (rec.type) {
    case LogRecordType::kPageFormat:
      InitHeapPage(data);
      break;
    case LogRecordType::kPageLink: {
      if (rec.data.size() != 4) {
        return Status::Corruption("bad page-link record size");
      }
      uint32_t next;
      std::memcpy(&next, rec.data.data(), 4);
      SetPageNext(data, next);
      break;
    }
    case LogRecordType::kPageImage:
      if (rec.data.size() != kPageSize) {
        return Status::Corruption("bad page-image record size");
      }
      std::memcpy(data, rec.data.data(), kPageSize);
      break;
    case LogRecordType::kSlotPut:
      if (!PlaceRecordAtSlot(data, static_cast<uint16_t>(rec.slot),
                             rec.data)) {
        return Status::Corruption(
            "redo: record does not fit in page " +
            std::to_string(rec.page_id) + " slot " +
            std::to_string(rec.slot));
      }
      break;
    case LogRecordType::kSlotDelete: {
      uint16_t slots = PageSlotCount(data);
      if (rec.slot >= slots) {
        return Status::Corruption("redo: delete of missing slot " +
                                  std::to_string(rec.slot) + " in page " +
                                  std::to_string(rec.page_id));
      }
      SetSlot(data, static_cast<uint16_t>(rec.slot), 0, kDeadSlot);
      break;
    }
    case LogRecordType::kClr: {
      // Repeating history replays completed undo work: the CLR's redo
      // action is the undo it recorded.
      ClrData clr;
      if (!DecodeClrData(rec.data, &clr)) {
        return Status::Corruption("bad CLR record payload");
      }
      PRODB_RETURN_IF_ERROR(
          ApplyUndoOp(clr.op, rec.page_id, rec.slot, clr.bytes, data));
      break;
    }
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
    case LogRecordType::kCheckpoint:
      return Status::Internal("redo of a non-physical record");
  }
  SetPageLsn(data, sr.lsn);
  return Status::OK();
}

// Zeroes the log stream past `scan.valid_end` and normalizes the tail
// page (used count, next = kNoPage), so the next scan — and the resumed
// LogManager — see a clean end. Pages wholly past the tail are rewritten
// as empty. Idempotent: re-truncating an already-clean tail writes the
// same bytes.
Status TruncateLogTail(DiskManager* disk, const LogScanResult& scan) {
  Lsn rel_end = scan.valid_end - scan.base;
  size_t tail_index = static_cast<size_t>(rel_end / kLogPagePayload);
  char page[kPageSize];
  for (size_t i = tail_index; i < scan.pages.size(); ++i) {
    uint32_t pid = scan.pages[i];
    std::memset(page, 0, kPageSize);
    size_t used = 0;
    if (i == tail_index && rel_end > i * kLogPagePayload) {
      used = static_cast<size_t>(rel_end - i * kLogPagePayload);
      char src[kPageSize];
      PRODB_RETURN_IF_ERROR(disk->ReadPage(pid, src));
      std::memcpy(page + kLogPageHeaderSize, src + kLogPageHeaderSize, used);
    }
    SetPageNext(page, kNoPage);
    PutU16(page, kLogPageUsedOff, static_cast<uint16_t>(used));
    PRODB_RETURN_IF_ERROR(disk->WritePage(pid, page));
  }
  return Status::OK();
}

// Rebuilds the empty log in place after a crash pre-empted
// LogManager::Create: at most the anchor and head page allocations (and
// possibly their first writes) had happened, so nothing was ever logged.
Status RepairFreshLog(DiskManager* disk, LogScanResult* scan) {
  if (disk->PageCount() > 2) {
    return Status::Corruption("log anchor missing on a non-empty store");
  }
  while (disk->PageCount() < 2) {
    uint32_t pid;
    PRODB_RETURN_IF_ERROR(disk->AllocatePage(&pid));
  }
  char page[kPageSize] = {};
  SetPageNext(page, kNoPage);
  PutU16(page, kLogPageUsedOff, 0);
  uint32_t head = kWalAnchorPageId + 1;
  PRODB_RETURN_IF_ERROR(disk->WritePage(head, page));
  PRODB_RETURN_IF_ERROR(WriteWalAnchor(disk, head, 0, 0, 0, {}));
  *scan = LogScanResult{};
  scan->anchor_valid = true;
  scan->pages.push_back(head);
  return Status::OK();
}

}  // namespace

Status RecoverLog(BufferPool* pool, RecoveryResult* out) {
  *out = RecoveryResult{};
  DiskManager* disk = pool->disk();

  LogScanResult scan;
  PRODB_RETURN_IF_ERROR(ScanLog(disk, &scan));
  if (!scan.anchor_valid) {
    if (disk->PageCount() == 0) return Status::OK();  // genuinely fresh
    PRODB_RETURN_IF_ERROR(RepairFreshLog(disk, &scan));
  }
  out->records_scanned = scan.records.size();
  out->torn_tail = scan.torn_tail;
  out->truncated_bytes = scan.stream_end - scan.valid_end;
  out->log_base = scan.base;
  out->log_end = scan.valid_end;
  out->log_pages = scan.pages;

  // Re-seed the allocator's free list from the anchor, minus every page
  // the surviving log references (chain membership or a record's target
  // page — such a page was re-allocated after the anchor was written and
  // is live again; the WAL rule guarantees its format record reached the
  // log before the page itself could be written). Seeding happens before
  // any recovery append so CLR flushing can itself recycle pages.
  {
    std::set<uint32_t> referenced;
    referenced.insert(kWalAnchorPageId);
    referenced.insert(scan.pages.begin(), scan.pages.end());
    for (const ScannedRecord& sr : scan.records) {
      referenced.insert(sr.rec.page_id);
    }
    std::vector<uint32_t> seed;
    for (uint32_t pid : scan.anchor_free) {
      if (referenced.count(pid) == 0) seed.push_back(pid);
    }
    disk->SeedFreePages(seed);
  }

  // Pass 1: commit cutoffs, the newest intact checkpoint, and the
  // compensation map (which loser records an interrupted earlier
  // recovery already undid).
  std::set<uint64_t> committed;
  std::set<uint64_t> aborted;
  const ScannedRecord* last_ckpt = nullptr;
  std::map<uint64_t, std::set<Lsn>> compensated;
  for (const ScannedRecord& sr : scan.records) {
    if (sr.rec.type == LogRecordType::kCommit) committed.insert(sr.rec.txn_id);
    if (sr.rec.type == LogRecordType::kAbort) aborted.insert(sr.rec.txn_id);
    if (sr.rec.type == LogRecordType::kCheckpoint) last_ckpt = &sr;
    if (sr.rec.type == LogRecordType::kClr) {
      ClrData clr;
      if (!DecodeClrData(sr.rec.data, &clr)) {
        return Status::Corruption("bad CLR record payload");
      }
      compensated[sr.rec.txn_id].insert(clr.compensated_lsn);
    }
    if (sr.rec.txn_id > out->max_txn_id) out->max_txn_id = sr.rec.txn_id;
  }
  out->committed.assign(committed.begin(), committed.end());
  out->committed_txns = committed.size();

  Lsn redo_lsn = scan.scan_start;
  if (last_ckpt != nullptr) {
    CheckpointData ckpt;
    if (!DecodeCheckpointData(last_ckpt->rec.data, &ckpt)) {
      return Status::Corruption("bad checkpoint record payload");
    }
    redo_lsn = std::max(redo_lsn, ckpt.redo_lsn);
    for (const auto& [txn, first_lsn] : ckpt.active_txns) {
      if (txn > out->max_txn_id) out->max_txn_id = txn;
    }
  }
  out->redo_lsn = redo_lsn;

  // Pass 2: repeat history. Redo EVERY intact physical record — winners,
  // losers and prior CLRs alike — in log order, wherever the record's
  // LSN exceeds the on-disk page LSN. Records at or below the redo point
  // are skipped outright: the checkpoint guarantees their effects are
  // already in the heap (redo_lsn is the minimum rec_lsn over pages that
  // were dirty, and it is always a record boundary).
  for (const ScannedRecord& sr : scan.records) {
    const LogRecord& rec = sr.rec;
    if (!IsDataRecord(rec.type) && rec.type != LogRecordType::kClr) continue;
    if (sr.lsn <= redo_lsn) continue;
    if (rec.page_id >= disk->PageCount()) {
      // A record can only be flushed after its page's allocation reached
      // the disk, so this is genuine corruption, not a crash artifact.
      return Status::Corruption("redo: record for unallocated page " +
                                std::to_string(rec.page_id));
    }
    Frame* frame;
    PRODB_RETURN_IF_ERROR(pool->FetchPage(rec.page_id, &frame));
    Status st = Status::OK();
    bool applied = false;
    if (sr.lsn > PageLsn(frame->data)) {
      st = RedoOnPage(sr, frame->data);
      applied = st.ok();
    }
    PRODB_RETURN_IF_ERROR(pool->UnpinPage(rec.page_id, applied));
    PRODB_RETURN_IF_ERROR(st);
    if (applied) ++out->records_redone;
  }

  // Truncate the torn tail now so the undo pass appends its CLRs onto a
  // clean boundary (and a second recovery starts from one).
  PRODB_RETURN_IF_ERROR(TruncateLogTail(disk, scan));

  // Pass 3: undo losers — transactions with data records and no end
  // record — newest record first, skipping records a surviving CLR
  // already compensated. A durable kAbort is an end record too: it means
  // the runtime rollback finished and every compensation record precedes
  // it in the log, so redo alone reproduces the rolled-back state
  // (re-undoing such a transaction would double-compensate, and its
  // freed space may since have been reused by committed work). Every
  // undo is logged as a CLR and the CLRs are forced *before* any undo
  // touches a page: a crash mid-undo leaves either the CLR and the page
  // effect, the CLR alone (redone next time), or neither — all of which
  // the next recovery converges from.
  std::set<uint64_t> losers;
  std::vector<const ScannedRecord*> to_undo;
  for (auto it = scan.records.rbegin(); it != scan.records.rend(); ++it) {
    const ScannedRecord& sr = *it;
    if (!IsDataRecord(sr.rec.type) || sr.rec.txn_id == 0) continue;
    if (committed.count(sr.rec.txn_id) != 0) continue;
    if (aborted.count(sr.rec.txn_id) != 0) continue;
    losers.insert(sr.rec.txn_id);
    if (sr.rec.undo_kind == UndoKind::kNone) continue;  // e.g. page images
    auto comp = compensated.find(sr.rec.txn_id);
    if (comp != compensated.end() && comp->second.count(sr.lsn) != 0) {
      continue;
    }
    to_undo.push_back(&sr);
  }
  out->loser_txns = losers.size();

  if (!to_undo.empty()) {
    std::unique_ptr<LogManager> log;
    LogManagerOptions lopts;
    lopts.auto_flush = false;
    PRODB_RETURN_IF_ERROR(LogManager::Resume(disk, lopts, scan.pages,
                                             scan.base, scan.valid_end, &log));
    std::vector<Lsn> clr_lsns;
    clr_lsns.reserve(to_undo.size());
    for (const ScannedRecord* sr : to_undo) {
      LogRecord clr_rec;
      clr_rec.type = LogRecordType::kClr;
      clr_rec.txn_id = sr->rec.txn_id;
      clr_rec.page_id = sr->rec.page_id;
      clr_rec.slot = sr->rec.slot;
      ClrData clr;
      clr.compensated_lsn = sr->lsn;
      clr.op = sr->rec.undo_kind;
      clr.bytes = sr->rec.undo;
      EncodeClrData(clr, &clr_rec.data);
      clr_lsns.push_back(log->Append(clr_rec));
    }
    PRODB_RETURN_IF_ERROR(log->Flush());
    for (size_t i = 0; i < to_undo.size(); ++i) {
      const ScannedRecord* sr = to_undo[i];
      Frame* frame;
      PRODB_RETURN_IF_ERROR(pool->FetchPage(sr->rec.page_id, &frame));
      Status st = ApplyUndoOp(sr->rec.undo_kind, sr->rec.page_id,
                              sr->rec.slot, sr->rec.undo, frame->data);
      if (st.ok()) SetPageLsn(frame->data, clr_lsns[i]);
      PRODB_RETURN_IF_ERROR(pool->UnpinPage(sr->rec.page_id, st.ok()));
      PRODB_RETURN_IF_ERROR(st);
      ++out->records_undone;
    }
    out->log_end = log->next_lsn();
    out->log_pages = log->PageChain();
  }

  // Everything redone and undone goes to disk now; the log — CLRs
  // included — is already there, so the WAL rule holds trivially (no
  // LogManager is attached to the pool yet).
  PRODB_RETURN_IF_ERROR(pool->FlushAll());
  return Status::OK();
}

}  // namespace prodb
