#ifndef PRODB_STORAGE_BUFFER_POOL_H_
#define PRODB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"

namespace prodb {

/// A frame in the buffer pool holding one disk page.
struct Frame {
  uint32_t page_id = UINT32_MAX;
  int pin_count = 0;
  bool dirty = false;
  /// Start LSN **plus one** of the first WAL record that dirtied this
  /// page since it was last clean on disk (0 = no logged update pending
  /// writeback; the +1 keeps a record at LSN 0 — the first append of a
  /// fresh database — distinguishable from "clean"). The minimum over
  /// all frames is the checkpoint redo point: restart redo may skip
  /// everything below it.
  uint64_t rec_lsn = 0;
  char data[kPageSize] = {};
};

class LogManager;

/// Counters exposed for the I/O benchmarks (E3, E8).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  /// Evictions abandoned because the dirty page could not be written; the
  /// page stays resident and dirty (fault-tolerance invariant).
  uint64_t writeback_failures = 0;
  /// WAL-rule log flushes forced by a page writeback.
  uint64_t log_forces = 0;
  /// Writebacks of pages dirtied by a still-in-flight transaction
  /// (steal). Safe because the WAL rule forces the log — including the
  /// record's inline before-image — before the page reaches disk, so
  /// restart undo can always roll the transaction back.
  uint64_t pages_stolen = 0;
};

/// Fixed-capacity page cache with LRU replacement and pin counting.
///
/// All access to disk pages by the heap files and disk-backed indexes goes
/// through FetchPage/UnpinPage pairs. A pinned frame is never evicted; an
/// unpinned frame enters the LRU list and may be written back and reused.
/// Thread-safe via a single pool latch — adequate at our scale, and it
/// keeps the eviction logic obviously correct.
class BufferPool {
 public:
  /// `capacity` frames over `disk` (not owned unless passed as unique_ptr
  /// via the owning constructor below).
  BufferPool(size_t capacity, DiskManager* disk);
  BufferPool(size_t capacity, std::unique_ptr<DiskManager> disk);

  /// Pins page `page_id`, faulting it in from disk if needed. On success
  /// *frame points at the pinned frame; caller must UnpinPage it.
  Status FetchPage(uint32_t page_id, Frame** frame);

  /// Allocates a fresh page on disk and returns it pinned.
  Status NewPage(uint32_t* page_id, Frame** frame);

  /// Drops a pin; `dirty` marks the frame as modified.
  Status UnpinPage(uint32_t page_id, bool dirty);

  /// Writes a page back if it is resident and dirty.
  Status FlushPage(uint32_t page_id);

  /// Writes back every dirty resident page.
  Status FlushAll();

  /// Writes back dirty pages whose first dirtying record started below
  /// `lsn` (two-checkpoint rule: called with the previous checkpoint's
  /// LSN, it guarantees the next checkpoint's redo point lands at or
  /// past that checkpoint, so the live log stays bounded even when hot
  /// pages never age out of the LRU). Pages dirtied later stay dirty.
  Status FlushPagesDirtyBefore(uint64_t lsn);

  /// Frame-accounting invariant: every frame is exactly one of free,
  /// resident-unpinned (in the LRU list) or resident-pinned, and the page
  /// table / LRU bookkeeping agree. I/O failures must never leak frames —
  /// the fault sweep calls this after every injected fault.
  Status VerifyFrameAccounting() const;

  /// Checks that every clean resident frame's bytes match the on-disk
  /// image — a frame marked clean without a successful write (a silently
  /// dropped dirty page) shows up as divergence. Call with faults
  /// disarmed and no writer concurrently pinning pages.
  Status VerifyCleanFramesMatchDisk() const;

  size_t capacity() const { return frames_.size(); }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }
  DiskManager* disk() const { return disk_; }

  /// --- Write-ahead logging hooks ---------------------------------------
  /// Attaches the WAL. From then on the pool enforces the WAL rule: every
  /// page carries its LSN at kPageLsnOff (all pooled pages are slotted
  /// heap pages), and no dirty page is written back — by eviction or an
  /// explicit flush — before the log is durable up to that LSN.
  void SetWal(LogManager* wal);
  LogManager* wal() const { return wal_; }

  /// Steal accounting: marks `page_id` as dirtied by in-flight
  /// transaction `txn_id`, until ReleaseTxnPages(txn_id) at commit or
  /// after abort compensation. Unlike the old no-steal rule this no
  /// longer blocks eviction — undo logging made stealing safe, so a
  /// transaction's write set may exceed pool capacity — it only
  /// attributes writebacks of such pages to the pages_stolen counter.
  void MarkTxnPage(uint64_t txn_id, uint32_t page_id);
  void ReleaseTxnPages(uint64_t txn_id);
  size_t TxnDirtyPageCount() const;

  /// Records that the WAL record starting at `rec_start_lsn` dirtied
  /// `f` (caller holds the pin). Keeps the frame's first-dirtier LSN for
  /// MinDirtyRecLsn; cleared whenever the frame's bytes reach disk.
  void NoteLoggedUpdate(Frame* f, uint64_t rec_start_lsn);

  /// Redo low-water mark: the smallest first-dirtier start LSN over
  /// frames with logged updates not yet written back, or UINT64_MAX when
  /// there are none (no constraint). Everything below it is already
  /// durable in the heap, so a checkpoint may tell recovery to start
  /// redo here.
  uint64_t MinDirtyRecLsn() const;

 private:
  /// Finds a frame to (re)use: a free frame if any, else the LRU unpinned
  /// frame (writing it back if dirty). Returns nullptr if all are pinned.
  Frame* Victim(Status* status);

  /// Flushes the WAL up to `page`'s LSN (no-op without a WAL) and then
  /// writes the page. Shared by eviction and the flush entry points.
  Status WritePageWithWalRule(const Frame* f);

  mutable std::mutex mu_;
  DiskManager* disk_;
  LogManager* wal_ = nullptr;
  std::unique_ptr<DiskManager> owned_disk_;
  // page id -> number of in-flight transactions that dirtied it, plus the
  // per-transaction page lists that release those holds.
  std::unordered_map<uint32_t, int> unstealable_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> txn_pages_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::unordered_map<uint32_t, Frame*> page_table_;
  std::list<Frame*> lru_;  // front = least recently used; unpinned only
  std::unordered_map<Frame*, std::list<Frame*>::iterator> lru_pos_;
  std::vector<Frame*> free_frames_;
  BufferPoolStats stats_;
};

/// RAII pin guard: unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Frame* frame, bool dirty = false)
      : pool_(pool), frame_(frame), dirty_(dirty) {}
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.frame_ = nullptr;
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  Frame* frame() const { return frame_; }
  char* data() const { return frame_->data; }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ && frame_) {
      // Unpin of a resident pinned page cannot fail; the guard has no
      // channel to report one from a destructor anyway.
      Status st = pool_->UnpinPage(frame_->page_id, dirty_);
      (void)st;
      pool_ = nullptr;
      frame_ = nullptr;
    }
  }

 private:
  BufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
  bool dirty_ = false;
};

}  // namespace prodb

#endif  // PRODB_STORAGE_BUFFER_POOL_H_
