#ifndef PRODB_STORAGE_WAL_H_
#define PRODB_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"

namespace prodb {

/// Log sequence number: the byte offset just past a record in the log
/// stream. 0 means "before any record" — a page LSN of 0 marks a page no
/// WAL record has ever touched.
using Lsn = uint64_t;

/// By convention the log head occupies the first page a WAL-enabled
/// catalog allocates, so restart recovery knows where to start scanning
/// without any separate metadata store.
inline constexpr uint32_t kWalHeadPageId = 0;

/// Log page layout: [u32 next_page_id][u16 used_bytes][u16 reserved]
/// followed by `used_bytes` of record-stream payload. Records are a byte
/// stream chunked across the page chain, so page i holds stream bytes
/// [i * kLogPagePayload, i * kLogPagePayload + used).
inline constexpr size_t kLogPageNextOff = 0;  // u32
inline constexpr size_t kLogPageUsedOff = 4;  // u16
inline constexpr size_t kLogPageHeaderSize = 8;
inline constexpr size_t kLogPagePayload = kPageSize - kLogPageHeaderSize;

/// Typed physical log records. Slot-level records carry the slot id the
/// original operation used, so redo places bytes at the recorded slot
/// instead of re-deriving it — replay stays exact even though records of
/// uncommitted (loser) transactions are skipped.
enum class LogRecordType : uint8_t {
  kSlotPut = 1,     // slot now holds `data` (insert / restore / in-place update)
  kSlotDelete = 2,  // slot tombstoned
  kPageFormat = 3,  // fresh heap page formatted (always txn 0: structural)
  kPageLink = 4,    // next-page pointer set to u32 in `data` (structural)
  kPageImage = 5,   // full 4 KiB page image in `data`
  kCommit = 6,      // transaction commit — the redo cutoff
  kAbort = 7,       // transaction abort (hygiene; absence of commit suffices)
};

struct LogRecord {
  LogRecordType type = LogRecordType::kCommit;
  uint64_t txn_id = 0;  // 0 = auto-commit (redone whenever intact in the log)
  uint32_t page_id = 0;
  uint32_t slot = 0;
  std::string data;
};

/// On-stream encoding: [u32 body_len][u32 crc32(body)][body], body =
/// [u8 type][u64 txn][u32 page][u32 slot][u32 data_len][data]. Exposed for
/// the torn-tail tests, which surgically damage encoded records on disk.
inline constexpr size_t kLogRecordHeader = 8;   // len + crc
inline constexpr size_t kLogRecordBodyFixed = 21;
/// Body length ceiling used as a corruption sanity check when scanning.
inline constexpr uint32_t kMaxLogRecordBody =
    kLogRecordBodyFixed + static_cast<uint32_t>(kPageSize);

/// CRC32 (reflected, poly 0xEDB88320) over `n` bytes.
uint32_t Crc32(const void* data, size_t n);

void EncodeLogRecord(const LogRecord& rec, std::string* out);
/// Decodes one record at `buf[pos]`; false on truncation or CRC mismatch.
bool DecodeLogRecord(const char* buf, size_t len, size_t* pos,
                     LogRecord* out);

struct LogManagerOptions {
  /// Flush after every append (the crash sweep's knob: every record
  /// boundary becomes a disk-write boundary). Group commit otherwise:
  /// records buffer in memory until an explicit Flush — typically a
  /// transaction commit, whose single flush carries every record buffered
  /// by whoever appended since the last one.
  bool auto_flush = false;
};

struct LogManagerStats {
  uint64_t records_appended = 0;
  uint64_t flushes = 0;        // Flush calls that wrote at least one page
  uint64_t pages_written = 0;  // physical log-page writes
};

/// Append-only write-ahead log over a DiskManager.
///
/// The log shares the data DiskManager: log pages are ordinary allocated
/// pages chained through their headers, beginning at kWalHeadPageId. That
/// is what makes FaultInjectingDiskManager's freeze-on-fault snapshot a
/// complete crash image — one snapshot captures data pages and log in a
/// single consistent cut. Appends go to an in-memory buffer and never
/// touch disk; Flush writes buffered bytes through (allocating log pages
/// as needed) and is the only failure point. Thread-safe.
class LogManager {
 public:
  /// Fresh log: allocates the head page (must end up at kWalHeadPageId —
  /// callers create the log before any other allocation).
  static Status Create(DiskManager* disk, LogManagerOptions options,
                       std::unique_ptr<LogManager>* out);

  /// Resumes an existing log after recovery: appends continue at stream
  /// offset `end` on the already-truncated page chain `pages`.
  static Status Resume(DiskManager* disk, LogManagerOptions options,
                       std::vector<uint32_t> pages, Lsn end,
                       std::unique_ptr<LogManager>* out);

  /// Appends `rec` to the buffer and returns its LSN (stream offset just
  /// past the record). Pure memory operation — cannot fail. Under
  /// auto_flush a flush is attempted immediately, best-effort: a flush
  /// error leaves the record buffered for the next Flush to retry (the
  /// WAL rule re-checks durability before any page writeback anyway).
  Lsn Append(const LogRecord& rec);

  /// Writes every buffered byte through to disk.
  Status Flush() { return FlushTo(next_lsn()); }
  /// Writes buffered bytes through until at least `lsn` is durable.
  Status FlushTo(Lsn lsn);

  Lsn next_lsn() const;
  Lsn flushed_lsn() const;
  const LogManagerStats& stats() const { return stats_; }

 private:
  LogManager(DiskManager* disk, LogManagerOptions options)
      : disk_(disk), options_(options) {}

  Status FlushLocked(Lsn lsn);

  DiskManager* disk_;
  LogManagerOptions options_;

  mutable std::mutex mu_;
  std::vector<uint32_t> pages_;  // log page chain, in stream order
  Lsn end_ = 0;                  // stream offset past the last appended byte
  Lsn flushed_ = 0;              // stream offset past the last durable byte
  Lsn buf_start_ = 0;            // stream offset of pending_[0]: the start
                                 // of the first not-fully-written log page
  std::string pending_;          // bytes [buf_start_, end_)
  LogManagerStats stats_;
};

/// --- Transaction attribution --------------------------------------------
/// HeapFile sits several layers below the Transaction object, so the
/// current transaction id travels in a thread-local set by this RAII
/// scope. 0 (no scope) = auto-commit: the record is redone whenever it is
/// intact in the log. Transaction mutations — forward ops, rollback undo
/// and concurrent-engine compensation alike — run inside a scope carrying
/// the transaction id, so every record of a loser stays attributed to it
/// and is skipped at restart.
uint64_t CurrentWalTxn();

class WalTxnScope {
 public:
  explicit WalTxnScope(uint64_t txn_id);
  ~WalTxnScope();
  WalTxnScope(const WalTxnScope&) = delete;
  WalTxnScope& operator=(const WalTxnScope&) = delete;

 private:
  uint64_t saved_;
};

}  // namespace prodb

#endif  // PRODB_STORAGE_WAL_H_
