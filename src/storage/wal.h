#ifndef PRODB_STORAGE_WAL_H_
#define PRODB_STORAGE_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"

namespace prodb {

/// Log sequence number: the byte offset just past a record in the log
/// stream. 0 means "before any record" — a page LSN of 0 marks a page no
/// WAL record has ever touched. LSNs are offsets from log *genesis* and
/// stay monotone forever: truncation recycles old log pages but never
/// renumbers the stream, so page LSNs stamped before a truncation remain
/// comparable after it.
using Lsn = uint64_t;

/// By convention the log anchor occupies the first page a WAL-enabled
/// catalog allocates, so restart recovery knows where to start without
/// any separate metadata store. The anchor is a one-page superblock
/// (rewritten atomically) that locates the head of the live log-page
/// chain; the chain itself begins on the next allocated page.
inline constexpr uint32_t kWalAnchorPageId = 0;

/// Anchor layout:
///   [u32 magic][u32 first_page][u64 base_offset][u64 scan_start_lsn]
///   [u64 checkpoint_lsn][u32 free_count][u32 free_page_id]...
/// `base_offset` is the stream offset of the first byte of `first_page`
/// (always a multiple of kLogPagePayload); `scan_start_lsn` is the first
/// record boundary at or past it — truncation is page-granular, so the
/// head page may begin with the tail of an already-dead record that the
/// scanner must skip. `checkpoint_lsn` is informational (recovery finds
/// the last checkpoint by scanning; a failed anchor rewrite must not
/// lose it). The free list persists pages recycled out of the log chain;
/// recovery re-seeds the allocator with every listed page that no
/// surviving log record references (a referenced page was re-allocated
/// after the anchor was written and is live again).
inline constexpr uint32_t kWalAnchorMagic = 0x50574C41;  // "PWLA"
inline constexpr size_t kAnchorMagicOff = 0;        // u32
inline constexpr size_t kAnchorFirstPageOff = 4;    // u32
inline constexpr size_t kAnchorBaseOff = 8;         // u64
inline constexpr size_t kAnchorScanStartOff = 16;   // u64
inline constexpr size_t kAnchorCheckpointOff = 24;  // u64
inline constexpr size_t kAnchorFreeCountOff = 32;   // u32
inline constexpr size_t kAnchorFreeListOff = 36;    // u32 each
inline constexpr size_t kAnchorMaxFreePages =
    (kPageSize - kAnchorFreeListOff) / 4;

/// Log page layout: [u32 next_page_id][u16 used_bytes][u16 reserved]
/// followed by `used_bytes` of record-stream payload. Records are a byte
/// stream chunked across the page chain: chain position i holds stream
/// bytes [base + i * kLogPagePayload, base + i * kLogPagePayload + used).
inline constexpr size_t kLogPageNextOff = 0;  // u32
inline constexpr size_t kLogPageUsedOff = 4;  // u16
inline constexpr size_t kLogPageHeaderSize = 8;
inline constexpr size_t kLogPagePayload = kPageSize - kLogPageHeaderSize;

/// Typed physical log records. Slot-level records carry the slot id the
/// original operation used, so redo places bytes at the recorded slot
/// instead of re-deriving it. Restart recovery repeats history — every
/// intact physical record is redone in log order regardless of its
/// transaction's fate — then rolls back losers using the before-image
/// (`undo`) payload each data record carries, writing kClr compensation
/// records so a crash during recovery itself still converges.
enum class LogRecordType : uint8_t {
  kSlotPut = 1,     // slot now holds `data` (insert / restore / update)
  kSlotDelete = 2,  // slot tombstoned
  kPageFormat = 3,  // fresh heap page formatted (always txn 0: structural)
  kPageLink = 4,    // next-page pointer set to u32 in `data` (structural)
  kPageImage = 5,   // full 4 KiB page image in `data`
  kCommit = 6,      // transaction commit — the winner/loser cutoff
  kAbort = 7,       // transaction abort (hygiene; absence of commit suffices)
  kCheckpoint = 8,  // fuzzy checkpoint: redo LSN + active-txn table
  kClr = 9,         // compensation: physical undo applied during recovery
};

/// How to roll a data record back. kNone marks records that are never
/// undone (structural records, commit/abort/checkpoint, and CLRs — undo
/// of an undo would defeat convergence).
enum class UndoKind : uint8_t {
  kNone = 0,
  kClearSlot = 1,   // slot was dead or absent before: tombstone it
  kRestore = 2,     // slot held `undo` bytes before: put them back
};

struct LogRecord {
  LogRecordType type = LogRecordType::kCommit;
  uint64_t txn_id = 0;  // 0 = auto-commit (never undone; redone when intact)
  uint32_t page_id = 0;
  uint32_t slot = 0;
  std::string data;
  UndoKind undo_kind = UndoKind::kNone;
  std::string undo;  // before-image bytes (kRestore only)
};

/// On-stream encoding: [u32 body_len][u32 crc32(body)][body], body =
/// [u8 type][u64 txn][u32 page][u32 slot][u32 data_len][u8 undo_kind]
/// [u32 undo_len][data][undo]. Exposed for the torn-tail tests, which
/// surgically damage encoded records on disk.
inline constexpr size_t kLogRecordHeader = 8;  // len + crc
inline constexpr size_t kLogRecordBodyFixed = 26;
/// Body length ceiling used as a corruption sanity check when scanning:
/// data and undo can each approach a full page image.
inline constexpr uint32_t kMaxLogRecordBody =
    kLogRecordBodyFixed + 2 * static_cast<uint32_t>(kPageSize);

/// CRC32 (reflected, poly 0xEDB88320) over `n` bytes.
uint32_t Crc32(const void* data, size_t n);

void EncodeLogRecord(const LogRecord& rec, std::string* out);
/// Total encoded size of `rec` on the stream (header + body).
size_t EncodedLogRecordSize(const LogRecord& rec);
/// Decodes one record at `buf[pos]`; false on truncation or CRC mismatch.
bool DecodeLogRecord(const char* buf, size_t len, size_t* pos,
                     LogRecord* out);

/// --- Checkpoint / CLR payload codecs ------------------------------------

/// Body of a kCheckpoint record: the redo low-water mark (minimum rec_lsn
/// over dirty buffer-pool pages — restart redo may start here) and the
/// active-transaction table (txn id -> start LSN of its first data
/// record — truncation must preserve everything an eventual undo of a
/// still-running transaction could need).
struct CheckpointData {
  Lsn redo_lsn = 0;
  std::map<uint64_t, Lsn> active_txns;
};

void EncodeCheckpointData(const CheckpointData& ckpt, std::string* out);
bool DecodeCheckpointData(const std::string& buf, CheckpointData* out);

/// Body of a kClr record: which record it compensates (by LSN), the undo
/// operation, and the bytes to restore (kRestore only). The CLR's redo
/// action *is* the undo it recorded, so repeating history replays
/// completed undo work for free.
struct ClrData {
  Lsn compensated_lsn = 0;
  UndoKind op = UndoKind::kNone;
  std::string bytes;
};

void EncodeClrData(const ClrData& clr, std::string* out);
bool DecodeClrData(const std::string& buf, ClrData* out);

/// Composes and writes the anchor page. Shared by LogManager (create /
/// checkpoint-truncate) and restart recovery (re-creating an empty log
/// when a crash pre-empted LogManager::Create). `free_pages` beyond
/// kAnchorMaxFreePages are dropped (they leak at the next restart).
Status WriteWalAnchor(DiskManager* disk, uint32_t first_page, Lsn base,
                      Lsn scan_start, Lsn checkpoint_lsn,
                      const std::vector<uint32_t>& free_pages);

struct LogManagerOptions {
  /// Flush after every append (the crash sweep's knob: every record
  /// boundary becomes a disk-write boundary). Group commit otherwise:
  /// records buffer in memory until an explicit Flush — typically a
  /// transaction commit, whose single flush carries every record buffered
  /// by whoever appended since the last one.
  bool auto_flush = false;
};

struct LogManagerStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;  // encoded stream bytes, before any flush
  uint64_t flushes = 0;         // Flush calls that wrote at least one page
  uint64_t pages_written = 0;   // physical log-page writes
  uint64_t checkpoints_taken = 0;
  uint64_t pages_recycled = 0;  // log pages returned to the free list
};

/// Append-only write-ahead log over a DiskManager.
///
/// The log shares the data DiskManager: log pages are ordinary allocated
/// pages chained through their headers, located by the anchor superblock
/// at kWalAnchorPageId. That is what makes FaultInjectingDiskManager's
/// freeze-on-fault snapshot a complete crash image — one snapshot
/// captures data pages, log and anchor in a single consistent cut.
/// Appends go to an in-memory buffer and never touch disk; Flush writes
/// buffered bytes through (allocating log pages as needed) and is the
/// only failure point. Thread-safe.
///
/// The log also owns the durability metadata the rest of the stack
/// needs: the active-transaction table (first data-record LSN per
/// in-flight transaction, maintained from the append stream itself) and
/// the checkpoint/truncation machinery. `Checkpoint` appends a fuzzy
/// checkpoint record, forces it, then recycles every log page wholly
/// below min(redo LSN, oldest active transaction) into the disk
/// manager's free-page list, where heap-file growth reallocates it —
/// bounding log size under sustained churn without quiescing anything.
class LogManager {
 public:
  /// Fresh log: claims the anchor page (must end up at kWalAnchorPageId —
  /// callers create the log before any other allocation) plus the first
  /// chain page.
  static Status Create(DiskManager* disk, LogManagerOptions options,
                       std::unique_ptr<LogManager>* out);

  /// Resumes an existing log after recovery: appends continue at stream
  /// offset `end` on the already-truncated page chain `pages`, whose
  /// first page begins at stream offset `base`.
  static Status Resume(DiskManager* disk, LogManagerOptions options,
                       std::vector<uint32_t> pages, Lsn base, Lsn end,
                       std::unique_ptr<LogManager>* out);

  /// Appends `rec` to the buffer and returns its LSN (stream offset just
  /// past the record); `*start` (optional) receives the record's start
  /// offset — the buffer pool tracks the first dirtying record per page
  /// by start offset so checkpoints can compute a safe redo point. Pure
  /// memory operation — cannot fail. Under auto_flush a flush is
  /// attempted immediately, best-effort: a flush error leaves the record
  /// buffered for the next Flush to retry (the WAL rule re-checks
  /// durability before any page writeback anyway).
  Lsn Append(const LogRecord& rec, Lsn* start = nullptr);

  /// Writes every buffered byte through to disk.
  Status Flush() { return FlushTo(next_lsn()); }
  /// Writes buffered bytes through until at least `lsn` is durable.
  Status FlushTo(Lsn lsn);

  /// Fuzzy checkpoint + log truncation. `dirty_low_water` is the
  /// caller's redo low-water mark (BufferPool::MinDirtyRecLsn;
  /// UINT64_MAX = no dirty logged page, i.e. everything flushed, no
  /// constraint on the redo point). Appends a kCheckpoint
  /// record carrying the redo point and the active-transaction table,
  /// forces the log through it, rewrites the anchor, and recycles every
  /// chain page wholly below the keep point into the disk free list.
  /// Concurrent appends are safe — the checkpoint is fuzzy: anything
  /// racing in lands after the recorded redo point.
  Status Checkpoint(Lsn dirty_low_water);

  Lsn next_lsn() const;
  Lsn flushed_lsn() const;
  /// Stream offset of the first byte still on the chain (truncation
  /// floor). LSNs below this have been recycled.
  Lsn base_lsn() const;
  /// LSN of the last checkpoint record appended or recovered (0 = none).
  Lsn checkpoint_lsn() const;
  /// Live chain length in pages — the on-disk log footprint.
  size_t live_log_pages() const;
  /// Copy of the live page chain, in stream order (recovery hands the
  /// post-CLR chain back to the catalog for the final Resume).
  std::vector<uint32_t> PageChain() const;
  /// Active-transaction table: id -> start LSN of first data record.
  std::map<uint64_t, Lsn> ActiveTxns() const;
  const LogManagerStats& stats() const { return stats_; }

 private:
  LogManager(DiskManager* disk, LogManagerOptions options)
      : disk_(disk), options_(options) {}

  Status FlushLocked(Lsn lsn);
  Status WriteAnchorLocked(uint32_t first_page, Lsn base, Lsn scan_start,
                           const std::vector<uint32_t>& extra_free);

  DiskManager* disk_;
  LogManagerOptions options_;

  mutable std::mutex mu_;
  std::vector<uint32_t> pages_;  // log page chain, in stream order
  Lsn base_ = 0;                 // stream offset of pages_[0]'s first byte
  Lsn end_ = 0;                  // stream offset past the last appended byte
  Lsn flushed_ = 0;              // stream offset past the last durable byte
  Lsn buf_start_ = 0;            // stream offset of pending_[0]: the start
                                 // of the first not-fully-written log page
  std::string pending_;          // bytes [buf_start_, end_)
  Lsn checkpoint_lsn_ = 0;
  std::map<uint64_t, Lsn> active_txns_;  // txn -> first data-record start
  LogManagerStats stats_;
};

/// --- Transaction attribution --------------------------------------------
/// HeapFile sits several layers below the Transaction object, so the
/// current transaction id travels in a thread-local set by this RAII
/// scope. 0 (no scope) = auto-commit: the record is redone whenever it is
/// intact in the log and never undone. Transaction mutations — forward
/// ops, rollback undo and concurrent-engine compensation alike — run
/// inside a scope carrying the transaction id, so every record of a loser
/// stays attributed to it and restart undo rolls all of it back.
uint64_t CurrentWalTxn();

class WalTxnScope {
 public:
  explicit WalTxnScope(uint64_t txn_id);
  ~WalTxnScope();
  WalTxnScope(const WalTxnScope&) = delete;
  WalTxnScope& operator=(const WalTxnScope&) = delete;

 private:
  uint64_t saved_;
};

}  // namespace prodb

#endif  // PRODB_STORAGE_WAL_H_
