#ifndef PRODB_STORAGE_PAGE_LAYOUT_H_
#define PRODB_STORAGE_PAGE_LAYOUT_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "storage/disk_manager.h"

namespace prodb {

/// Shared slotted-page layout, used by HeapFile for normal operation and
/// by WAL redo (storage/recovery.cc), which must re-apply slot-level log
/// records onto raw pages without a HeapFile in hand.
///
/// Page layout:
///   [u32 next_page_id][u16 slot_count][u16 free_end][u64 page_lsn]
///   [slot 0][slot 1]... free ...            [record k]...[record 0]
/// where each slot is (u16 offset, u16 length). Records grow downward
/// from the end of the page; the slot directory grows upward. The page
/// LSN is the log sequence number of the last WAL record applied to the
/// page (0 = never logged); BufferPool enforces the WAL rule against it
/// before any writeback.

inline constexpr size_t kPageNextOff = 0;      // u32
inline constexpr size_t kPageSlotCountOff = 4; // u16
inline constexpr size_t kPageFreeEndOff = 6;   // u16
inline constexpr size_t kPageLsnOff = 8;       // u64
inline constexpr size_t kPageHeaderSize = 16;
inline constexpr size_t kSlotSize = 4;  // u16 offset + u16 length
inline constexpr uint16_t kDeadSlot = 0xFFFF;
inline constexpr uint32_t kNoPage = UINT32_MAX;

inline uint16_t GetU16(const char* p, size_t off) {
  uint16_t v;
  std::memcpy(&v, p + off, 2);
  return v;
}
inline void PutU16(char* p, size_t off, uint16_t v) {
  std::memcpy(p + off, &v, 2);
}
inline uint32_t GetU32(const char* p, size_t off) {
  uint32_t v;
  std::memcpy(&v, p + off, 4);
  return v;
}
inline void PutU32(char* p, size_t off, uint32_t v) {
  std::memcpy(p + off, &v, 4);
}
inline uint64_t GetU64(const char* p, size_t off) {
  uint64_t v;
  std::memcpy(&v, p + off, 8);
  return v;
}
inline void PutU64(char* p, size_t off, uint64_t v) {
  std::memcpy(p + off, &v, 8);
}

inline uint32_t PageNext(const char* page) { return GetU32(page, kPageNextOff); }
inline void SetPageNext(char* page, uint32_t next) {
  PutU32(page, kPageNextOff, next);
}
inline uint16_t PageSlotCount(const char* page) {
  return GetU16(page, kPageSlotCountOff);
}
inline uint64_t PageLsn(const char* page) { return GetU64(page, kPageLsnOff); }
inline void SetPageLsn(char* page, uint64_t lsn) {
  PutU64(page, kPageLsnOff, lsn);
}

inline uint16_t SlotOffset(const char* page, uint16_t slot) {
  return GetU16(page, kPageHeaderSize + slot * kSlotSize);
}
inline uint16_t SlotLength(const char* page, uint16_t slot) {
  return GetU16(page, kPageHeaderSize + slot * kSlotSize + 2);
}
inline void SetSlot(char* page, uint16_t slot, uint16_t offset,
                    uint16_t length) {
  PutU16(page, kPageHeaderSize + slot * kSlotSize, offset);
  PutU16(page, kPageHeaderSize + slot * kSlotSize + 2, length);
}

inline void InitHeapPage(char* page) {
  SetPageNext(page, kNoPage);
  PutU16(page, kPageSlotCountOff, 0);
  PutU16(page, kPageFreeEndOff, static_cast<uint16_t>(kPageSize));
  SetPageLsn(page, 0);
}

/// True when the header fields are internally consistent — a zero-filled
/// (never formatted) page fails this, which is how crash recovery and
/// restart code distinguish a durable heap page from one whose format
/// record never reached the log.
inline bool HeapPageLooksFormatted(const char* page) {
  uint16_t free_end = GetU16(page, kPageFreeEndOff);
  uint16_t slots = PageSlotCount(page);
  return free_end >= kPageHeaderSize + slots * kSlotSize &&
         free_end <= kPageSize;
}

/// Contiguous free bytes between the slot directory and the record area.
inline size_t ContiguousFree(const char* page) {
  uint16_t slots = PageSlotCount(page);
  uint16_t free_end = GetU16(page, kPageFreeEndOff);
  size_t dir_end = kPageHeaderSize + slots * kSlotSize;
  return free_end > dir_end ? free_end - dir_end : 0;
}

/// Free bytes counting dead-record space that compaction can recover.
inline size_t ReclaimableFree(const char* page) {
  uint16_t slots = PageSlotCount(page);
  size_t used = 0;
  for (uint16_t s = 0; s < slots; ++s) {
    if (SlotLength(page, s) != kDeadSlot) used += SlotLength(page, s);
  }
  size_t dir_end = kPageHeaderSize + slots * kSlotSize;
  return kPageSize - dir_end - used;
}

/// Moves all live records to the end of the page, squeezing out holes left
/// by deletions. Slot ids are preserved.
inline void CompactPage(char* page) {
  uint16_t slots = PageSlotCount(page);
  char buf[kPageSize];
  size_t write_end = kPageSize;
  // First copy records out to avoid overlapping-move hazards.
  std::memcpy(buf, page, kPageSize);
  for (uint16_t s = 0; s < slots; ++s) {
    uint16_t len = SlotLength(buf, s);
    if (len == kDeadSlot || len == 0) continue;
    uint16_t off = SlotOffset(buf, s);
    write_end -= len;
    std::memcpy(page + write_end, buf + off, len);
    SetSlot(page, s, static_cast<uint16_t>(write_end), len);
  }
  PutU16(page, kPageFreeEndOff, static_cast<uint16_t>(write_end));
}

/// Inserts an encoded record into the page if it fits. Returns the slot id
/// or -1 if there is not enough space even after compaction. Dead slots
/// are never reused (TupleId stability; see HeapFile).
inline int InsertIntoPage(char* page, const std::string& rec) {
  if (rec.size() > kPageSize - kPageHeaderSize - kSlotSize) return -1;
  uint16_t slots = PageSlotCount(page);
  size_t need = rec.size() + kSlotSize;
  if (ContiguousFree(page) < need) {
    if (ReclaimableFree(page) < need) return -1;
    CompactPage(page);
    if (ContiguousFree(page) < need) return -1;
  }
  uint16_t free_end = GetU16(page, kPageFreeEndOff);
  free_end = static_cast<uint16_t>(free_end - rec.size());
  std::memcpy(page + free_end, rec.data(), rec.size());
  PutU16(page, kPageFreeEndOff, free_end);
  uint16_t slot = slots;
  PutU16(page, kPageSlotCountOff, static_cast<uint16_t>(slots + 1));
  SetSlot(page, slot, free_end, static_cast<uint16_t>(rec.size()));
  return slot;
}

/// Places `rec` into the directory entry `slot`, creating the entry (and
/// any missing lower entries, as dead slots) if the directory is shorter.
/// This is the redo form of insert/restore/in-place update: the slot id
/// comes from the log record, not from allocation order, so replay stays
/// correct even when records of uncommitted transactions are skipped.
/// A live slot is tombstoned first (update-in-place redo). Returns false
/// when the record cannot fit even after compaction.
inline bool PlaceRecordAtSlot(char* page, uint16_t slot,
                              const std::string& rec) {
  uint16_t slots = PageSlotCount(page);
  if (slot < slots && SlotLength(page, slot) != kDeadSlot) {
    SetSlot(page, slot, 0, kDeadSlot);  // old version dies; space reclaimed
  }
  // Grow the directory up to `slot`, dead entries in between.
  size_t dir_need = slot >= slots
                        ? static_cast<size_t>(slot - slots + 1) * kSlotSize
                        : 0;
  if (ContiguousFree(page) < dir_need + rec.size()) {
    if (ReclaimableFree(page) < dir_need + rec.size()) return false;
    CompactPage(page);
    if (ContiguousFree(page) < dir_need + rec.size()) return false;
  }
  for (uint16_t s = slots; s <= slot && slot >= slots; ++s) {
    SetSlot(page, s, 0, kDeadSlot);
  }
  if (slot >= slots) {
    PutU16(page, kPageSlotCountOff, static_cast<uint16_t>(slot + 1));
  }
  uint16_t free_end = GetU16(page, kPageFreeEndOff);
  free_end = static_cast<uint16_t>(free_end - rec.size());
  std::memcpy(page + free_end, rec.data(), rec.size());
  PutU16(page, kPageFreeEndOff, free_end);
  SetSlot(page, slot, free_end, static_cast<uint16_t>(rec.size()));
  return true;
}

}  // namespace prodb

#endif  // PRODB_STORAGE_PAGE_LAYOUT_H_
