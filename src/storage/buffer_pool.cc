#include "storage/buffer_pool.h"

#include <cstring>

namespace prodb {

BufferPool::BufferPool(size_t capacity, DiskManager* disk) : disk_(disk) {
  frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_.push_back(std::make_unique<Frame>());
    free_frames_.push_back(frames_.back().get());
  }
}

BufferPool::BufferPool(size_t capacity, std::unique_ptr<DiskManager> disk)
    : BufferPool(capacity, disk.get()) {
  owned_disk_ = std::move(disk);
}

Frame* BufferPool::Victim(Status* status) {
  *status = Status::OK();
  if (!free_frames_.empty()) {
    Frame* f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  if (lru_.empty()) {
    *status = Status::Internal("buffer pool exhausted: all frames pinned");
    return nullptr;
  }
  Frame* f = lru_.front();
  lru_.pop_front();
  lru_pos_.erase(f);
  page_table_.erase(f->page_id);
  ++stats_.evictions;
  if (f->dirty) {
    Status st = disk_->WritePage(f->page_id, f->data);
    if (!st.ok()) {
      *status = st;
      return nullptr;
    }
    ++stats_.dirty_writebacks;
    f->dirty = false;
  }
  return f;
}

Status BufferPool::FetchPage(uint32_t page_id, Frame** frame) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame* f = it->second;
    if (f->pin_count == 0) {
      // Remove from LRU: pinned frames are not eviction candidates.
      auto pos = lru_pos_.find(f);
      if (pos != lru_pos_.end()) {
        lru_.erase(pos->second);
        lru_pos_.erase(pos);
      }
    }
    ++f->pin_count;
    ++stats_.hits;
    *frame = f;
    return Status::OK();
  }
  ++stats_.misses;
  Status st;
  Frame* f = Victim(&st);
  if (f == nullptr) return st;
  PRODB_RETURN_IF_ERROR(disk_->ReadPage(page_id, f->data));
  f->page_id = page_id;
  f->pin_count = 1;
  f->dirty = false;
  page_table_[page_id] = f;
  *frame = f;
  return Status::OK();
}

Status BufferPool::NewPage(uint32_t* page_id, Frame** frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Status st;
  Frame* f = Victim(&st);
  if (f == nullptr) return st;
  st = disk_->AllocatePage(page_id);
  if (!st.ok()) {
    free_frames_.push_back(f);
    return st;
  }
  std::memset(f->data, 0, kPageSize);
  f->page_id = *page_id;
  f->pin_count = 1;
  f->dirty = true;
  page_table_[*page_id] = f;
  *frame = f;
  return Status::OK();
}

Status BufferPool::UnpinPage(uint32_t page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of non-resident page " +
                            std::to_string(page_id));
  }
  Frame* f = it->second;
  if (f->pin_count <= 0) {
    return Status::Internal("unpin of unpinned page " +
                            std::to_string(page_id));
  }
  f->dirty = f->dirty || dirty;
  if (--f->pin_count == 0) {
    lru_.push_back(f);
    lru_pos_[f] = std::prev(lru_.end());
  }
  return Status::OK();
}

Status BufferPool::FlushPage(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();
  Frame* f = it->second;
  if (f->dirty) {
    PRODB_RETURN_IF_ERROR(disk_->WritePage(f->page_id, f->data));
    f->dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [pid, f] : page_table_) {
    if (f->dirty) {
      PRODB_RETURN_IF_ERROR(disk_->WritePage(f->page_id, f->data));
      f->dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace prodb
