#include "storage/buffer_pool.h"

#include <cstring>

#include "storage/page_layout.h"
#include "storage/wal.h"

namespace prodb {

BufferPool::BufferPool(size_t capacity, DiskManager* disk) : disk_(disk) {
  frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_.push_back(std::make_unique<Frame>());
    free_frames_.push_back(frames_.back().get());
  }
}

BufferPool::BufferPool(size_t capacity, std::unique_ptr<DiskManager> disk)
    : BufferPool(capacity, disk.get()) {
  owned_disk_ = std::move(disk);
}

Frame* BufferPool::Victim(Status* status) {
  *status = Status::OK();
  if (!free_frames_.empty()) {
    Frame* f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  if (lru_.empty()) {
    *status = Status::Internal("buffer pool exhausted: all frames pinned");
    return nullptr;
  }
  // Walk the LRU candidates oldest-first. A dirty candidate is only
  // evicted once its writeback succeeds; on failure it stays fully
  // resident (frame, page-table and LRU entries intact) so the only copy
  // of its data is preserved, and the next candidate is tried. If every
  // candidate's writeback fails, the first error is surfaced. Pages
  // dirtied by in-flight transactions are fair game (steal): the WAL
  // rule inside WritePageWithWalRule forces the log — and with it the
  // record's inline before-image — before the page hits disk, so restart
  // undo can always roll the transaction back.
  Status first_error;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    Frame* f = *it;
    if (f->dirty) {
      Status st = WritePageWithWalRule(f);
      if (!st.ok()) {
        ++stats_.writeback_failures;
        if (first_error.ok()) first_error = st;
        continue;
      }
      ++stats_.dirty_writebacks;
      if (unstealable_.count(f->page_id) != 0) ++stats_.pages_stolen;
      f->dirty = false;
      f->rec_lsn = 0;
    }
    lru_.erase(it);
    lru_pos_.erase(f);
    page_table_.erase(f->page_id);
    ++stats_.evictions;
    return f;
  }
  if (first_error.ok()) {
    first_error = Status::Internal("buffer pool: no evictable frame");
  }
  *status = first_error;
  return nullptr;
}

Status BufferPool::WritePageWithWalRule(const Frame* f) {
  if (wal_ != nullptr) {
    Lsn lsn = PageLsn(f->data);
    if (lsn > wal_->flushed_lsn()) {
      PRODB_RETURN_IF_ERROR(wal_->FlushTo(lsn));
      ++stats_.log_forces;
    }
  }
  return disk_->WritePage(f->page_id, f->data);
}

void BufferPool::SetWal(LogManager* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_ = wal;
}

void BufferPool::MarkTxnPage(uint64_t txn_id, uint32_t page_id) {
  if (txn_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto& pages = txn_pages_[txn_id];
  for (uint32_t p : pages) {
    if (p == page_id) return;  // this transaction already holds the page
  }
  pages.push_back(page_id);
  ++unstealable_[page_id];
}

void BufferPool::ReleaseTxnPages(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txn_pages_.find(txn_id);
  if (it == txn_pages_.end()) return;
  for (uint32_t p : it->second) {
    auto u = unstealable_.find(p);
    if (u != unstealable_.end() && --u->second <= 0) unstealable_.erase(u);
  }
  txn_pages_.erase(it);
}

size_t BufferPool::TxnDirtyPageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unstealable_.size();
}

void BufferPool::NoteLoggedUpdate(Frame* f, uint64_t rec_start_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (f->rec_lsn == 0) f->rec_lsn = rec_start_lsn + 1;
}

uint64_t BufferPool::MinDirtyRecLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t min_lsn = UINT64_MAX;
  for (const auto& f : frames_) {
    if (f->rec_lsn != 0 && f->rec_lsn - 1 < min_lsn) {
      min_lsn = f->rec_lsn - 1;
    }
  }
  return min_lsn;
}

Status BufferPool::FetchPage(uint32_t page_id, Frame** frame) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame* f = it->second;
    if (f->pin_count == 0) {
      // Remove from LRU: pinned frames are not eviction candidates.
      auto pos = lru_pos_.find(f);
      if (pos != lru_pos_.end()) {
        lru_.erase(pos->second);
        lru_pos_.erase(pos);
      }
    }
    ++f->pin_count;
    ++stats_.hits;
    *frame = f;
    return Status::OK();
  }
  ++stats_.misses;
  Status st;
  Frame* f = Victim(&st);
  if (f == nullptr) return st;
  st = disk_->ReadPage(page_id, f->data);
  if (!st.ok()) {
    // The victim was already detached from the page table / LRU; hand it
    // back to the free list or the pool permanently loses a frame.
    f->page_id = UINT32_MAX;
    f->dirty = false;
    free_frames_.push_back(f);
    return st;
  }
  f->page_id = page_id;
  f->pin_count = 1;
  f->dirty = false;
  f->rec_lsn = 0;
  page_table_[page_id] = f;
  *frame = f;
  return Status::OK();
}

Status BufferPool::NewPage(uint32_t* page_id, Frame** frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Status st;
  Frame* f = Victim(&st);
  if (f == nullptr) return st;
  st = disk_->AllocatePage(page_id);
  if (!st.ok()) {
    free_frames_.push_back(f);
    return st;
  }
  std::memset(f->data, 0, kPageSize);
  f->page_id = *page_id;
  f->pin_count = 1;
  f->dirty = true;
  f->rec_lsn = 0;
  page_table_[*page_id] = f;
  *frame = f;
  return Status::OK();
}

Status BufferPool::UnpinPage(uint32_t page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of non-resident page " +
                            std::to_string(page_id));
  }
  Frame* f = it->second;
  if (f->pin_count <= 0) {
    return Status::Internal("unpin of unpinned page " +
                            std::to_string(page_id));
  }
  f->dirty = f->dirty || dirty;
  if (--f->pin_count == 0) {
    lru_.push_back(f);
    lru_pos_[f] = std::prev(lru_.end());
  }
  return Status::OK();
}

Status BufferPool::FlushPage(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();
  Frame* f = it->second;
  if (f->dirty) {
    PRODB_RETURN_IF_ERROR(WritePageWithWalRule(f));
    if (unstealable_.count(page_id) != 0) ++stats_.pages_stolen;
    f->dirty = false;
    f->rec_lsn = 0;
  }
  return Status::OK();
}

Status BufferPool::VerifyFrameAccounting() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t pinned = 0;
  for (const auto& f : frames_) {
    if (f->pin_count < 0) {
      return Status::Internal("frame accounting: negative pin count on page " +
                              std::to_string(f->page_id));
    }
    if (f->pin_count > 0) ++pinned;
  }
  if (free_frames_.size() + lru_.size() + pinned != frames_.size()) {
    return Status::Internal(
        "frame accounting: free " + std::to_string(free_frames_.size()) +
        " + lru " + std::to_string(lru_.size()) + " + pinned " +
        std::to_string(pinned) + " != capacity " +
        std::to_string(frames_.size()));
  }
  if (page_table_.size() != lru_.size() + pinned) {
    return Status::Internal(
        "frame accounting: page table " + std::to_string(page_table_.size()) +
        " != lru " + std::to_string(lru_.size()) + " + pinned " +
        std::to_string(pinned));
  }
  if (lru_pos_.size() != lru_.size()) {
    return Status::Internal("frame accounting: lru_pos/lru size mismatch");
  }
  for (Frame* f : lru_) {
    if (f->pin_count != 0) {
      return Status::Internal("frame accounting: pinned frame in LRU, page " +
                              std::to_string(f->page_id));
    }
    auto it = page_table_.find(f->page_id);
    if (it == page_table_.end() || it->second != f) {
      return Status::Internal(
          "frame accounting: LRU frame not in page table, page " +
          std::to_string(f->page_id));
    }
  }
  for (Frame* f : free_frames_) {
    auto it = page_table_.find(f->page_id);
    if (it != page_table_.end() && it->second == f) {
      return Status::Internal("frame accounting: free frame resident, page " +
                              std::to_string(f->page_id));
    }
  }
  return Status::OK();
}

Status BufferPool::VerifyCleanFramesMatchDisk() const {
  std::lock_guard<std::mutex> lock(mu_);
  char buf[kPageSize];
  for (const auto& [pid, f] : page_table_) {
    if (f->dirty) continue;
    PRODB_RETURN_IF_ERROR(disk_->ReadPage(pid, buf));
    if (std::memcmp(buf, f->data, kPageSize) != 0) {
      return Status::Corruption("clean frame diverges from disk, page " +
                                std::to_string(pid));
    }
  }
  return Status::OK();
}

Status BufferPool::FlushPagesDirtyBefore(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [pid, f] : page_table_) {
    if (f->dirty && f->rec_lsn != 0 && f->rec_lsn - 1 < lsn) {
      PRODB_RETURN_IF_ERROR(WritePageWithWalRule(f));
      if (unstealable_.count(pid) != 0) ++stats_.pages_stolen;
      f->dirty = false;
      f->rec_lsn = 0;
    }
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [pid, f] : page_table_) {
    if (f->dirty) {
      PRODB_RETURN_IF_ERROR(WritePageWithWalRule(f));
      if (unstealable_.count(pid) != 0) ++stats_.pages_stolen;
      f->dirty = false;
      f->rec_lsn = 0;
    }
  }
  return Status::OK();
}

}  // namespace prodb
