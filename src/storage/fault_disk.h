#ifndef PRODB_STORAGE_FAULT_DISK_H_
#define PRODB_STORAGE_FAULT_DISK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"

namespace prodb {

/// The three injectable operation kinds, indexable as array slots.
enum class DiskOpKind : uint8_t { kRead = 0, kWrite = 1, kAllocate = 2 };
inline constexpr size_t kDiskOpKinds = 3;

/// DiskManager decorator that injects I/O failures on demand.
///
/// The paper's premise is that a DBMS brings recovery "for free" (§1,
/// §3.2) — but only if the storage and transaction layers actually
/// tolerate I/O errors instead of losing state on them. This decorator
/// makes those error paths testable: it counts every operation and can be
/// armed to fail the N-th read / write / allocate (per-op-type), or the
/// N-th operation of any kind (for exhaustive sweeps). A fault is either
/// one-shot (exactly one failure, then pass-through) or sticky (every
/// matching operation from the N-th on fails, like a dead device).
///
/// Optionally the decorator "freezes" a copy of the backing pages at the
/// moment the first fault fires — a crash snapshot taken *before* the
/// failed operation could touch the disk, usable to simulate restart
/// from the surviving on-disk image.
///
/// Injected failures never reach the inner manager: the operation is
/// rejected up front with Status::IOError, exactly as if the device had
/// failed. Thread-safe.
class FaultInjectingDiskManager : public DiskManager {
 public:
  /// Owning wrap.
  explicit FaultInjectingDiskManager(std::unique_ptr<DiskManager> inner)
      : inner_(inner.get()), owned_(std::move(inner)) {}
  /// Non-owning wrap.
  explicit FaultInjectingDiskManager(DiskManager* inner) : inner_(inner) {}

  /// Arms a fault on the `nth` (0-based, counted from now) subsequent
  /// operation of `kind`. Replaces any previously armed fault of that
  /// kind. `sticky` extends the failure to every later op of the kind.
  void FailNth(DiskOpKind kind, uint64_t nth, bool sticky = false);

  /// Arms a fault on the `nth` (0-based, counted from now) subsequent
  /// operation of *any* kind — the sweep harness's knob: one run per
  /// injectable index covers the whole I/O trace.
  void FailAtOp(uint64_t nth, bool sticky = false);

  /// Clears every armed fault; the snapshot (if taken) is kept.
  void Disarm();

  /// When set, the first injected fault snapshots the inner manager's
  /// pages (the crash image) before failing the operation.
  void set_freeze_on_fault(bool v);

  bool has_snapshot() const;
  uint32_t snapshot_page_count() const;
  /// Reads page `page_id` of the crash snapshot into `out`.
  Status ReadSnapshotPage(uint32_t page_id, char* out) const;

  /// Operations seen since construction (injected failures included).
  uint64_t ops(DiskOpKind kind) const;
  uint64_t total_ops() const;
  /// Failures injected so far.
  uint64_t injected_faults() const;

  DiskManager* inner() const { return inner_; }

  Status AllocatePage(uint32_t* page_id) override;
  Status ReadPage(uint32_t page_id, char* out) override;
  Status WritePage(uint32_t page_id, const char* data) override;
  uint32_t PageCount() const override { return inner_->PageCount(); }
  uint64_t reads() const override { return inner_->reads(); }
  uint64_t writes() const override { return inner_->writes(); }
  // Free-list calls are metadata-only (no I/O in the fault model), so
  // they forward without fault accounting; the zero-fill a recycled
  // AllocatePage performs is still injectable as an allocate op.
  void FreePage(uint32_t page_id) override { inner_->FreePage(page_id); }
  void SeedFreePages(const std::vector<uint32_t>& pages) override {
    inner_->SeedFreePages(pages);
  }
  std::vector<uint32_t> FreePages() const override {
    return inner_->FreePages();
  }
  uint64_t pages_reused() const override { return inner_->pages_reused(); }

 private:
  struct Plan {
    uint64_t at;   // absolute op index (per-kind or global) that fails
    bool sticky;
  };

  /// Counts the op, decides whether to inject, and takes the snapshot if
  /// this is the first fault and freezing is on. Returns the injected
  /// error, or OK to pass through.
  Status Account(DiskOpKind kind);
  void SnapshotLocked();

  DiskManager* inner_;
  std::unique_ptr<DiskManager> owned_;

  mutable std::mutex mu_;
  uint64_t op_counts_[kDiskOpKinds] = {};
  uint64_t total_ops_ = 0;
  uint64_t injected_ = 0;
  std::optional<Plan> kind_plans_[kDiskOpKinds];
  std::optional<Plan> any_plan_;
  bool freeze_on_fault_ = false;
  bool snapshot_taken_ = false;
  std::vector<std::vector<char>> snapshot_;
};

}  // namespace prodb

#endif  // PRODB_STORAGE_FAULT_DISK_H_
