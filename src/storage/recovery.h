#ifndef PRODB_STORAGE_RECOVERY_H_
#define PRODB_STORAGE_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/wal.h"

namespace prodb {

/// One decoded record plus its position in the log stream.
struct ScannedRecord {
  LogRecord rec;
  Lsn start = 0;  // stream offset of the record's first byte
  Lsn lsn = 0;    // stream offset just past the record (== its LSN)
};

/// Result of walking the log page chain from the anchor at
/// kWalAnchorPageId.
struct LogScanResult {
  std::vector<ScannedRecord> records;  // every intact record, in order
  std::vector<uint32_t> pages;         // log page chain, in stream order
  Lsn base = 0;            // stream offset of pages.front()'s first byte
  Lsn scan_start = 0;      // first record boundary decoded (>= base)
  Lsn valid_end = 0;       // stream offset past the last intact record
  Lsn stream_end = 0;      // stream offset past the last byte on disk
  bool torn_tail = false;  // bytes past valid_end (torn / corrupt record)
  Lsn anchor_checkpoint_lsn = 0;     // informational (see wal.h)
  std::vector<uint32_t> anchor_free; // free-page list persisted in anchor
  /// False when page 0 is not a valid anchor — only legitimate on a
  /// crash image taken before LogManager::Create finished; recovery
  /// re-creates the empty log in that case.
  bool anchor_valid = false;
};

/// Scans the write-ahead log directly from `disk` (never through a buffer
/// pool: the log is not page-cached). The scan stops cleanly at the first
/// truncated or CRC-failing record; everything before it is intact.
Status ScanLog(DiskManager* disk, LogScanResult* out);

struct RecoveryResult {
  uint64_t records_scanned = 0;
  uint64_t records_redone = 0;
  /// Loser records rolled back this run — equivalently, CLRs appended.
  uint64_t records_undone = 0;
  uint64_t committed_txns = 0;
  uint64_t loser_txns = 0;
  bool torn_tail = false;
  uint64_t truncated_bytes = 0;  // bytes discarded past the last intact record
  /// Redo point actually used (from the newest intact checkpoint;
  /// scan_start when the log has none).
  Lsn redo_lsn = 0;
  Lsn log_base = 0;  // where the surviving chain starts in the stream
  Lsn log_end = 0;   // where appends resume (past any CLRs written here)
  std::vector<uint32_t> log_pages;
  std::vector<uint64_t> committed;  // committed txn ids, ascending
  // Highest transaction id seen anywhere in the log (0 on a fresh log).
  // Post-restart id allocation must start above it, or a reused id would
  // inherit the old transaction's commit record at the next recovery.
  uint64_t max_txn_id = 0;
};

/// Restart recovery, ARIES-style over physical slot records:
///
///  1. Scan from the anchor's start point and locate the newest intact
///     kCheckpoint record; its redo LSN replaces log genesis.
///  2. Repeat history: redo EVERY intact physical record — winners,
///     losers and prior-recovery CLRs alike — wherever the record's LSN
///     exceeds the on-disk page LSN. This reconstructs the exact
///     crash-moment state, including stolen loser pages.
///  3. Truncate the torn tail, then undo losers (transactions without a
///     commit record) in reverse LSN order using each record's inline
///     before-image, appending a kClr per undone record. Records already
///     compensated by a CLR from an interrupted earlier recovery are
///     skipped — that is what makes a crash *during* recovery converge:
///     the third restart redoes the surviving CLRs and only undoes what
///     is still uncompensated.
///  4. Flush everything and re-seed the disk free list from the anchor
///     (minus any page the surviving log still references).
///
/// A transaction's commit record is still the only thing that makes it a
/// winner; undo is what lets its uncommitted effects reach disk early
/// (steal) without corrupting the store. Running recovery on an
/// already-recovered image redoes and undoes nothing and leaves every
/// page byte-identical.
///
/// `pool` must be a fresh pool over the crash image with no WAL attached
/// yet (recovery's own page writes need no WAL rule: CLRs are forced
/// before undo touches any page).
Status RecoverLog(BufferPool* pool, RecoveryResult* out);

}  // namespace prodb

#endif  // PRODB_STORAGE_RECOVERY_H_
