#ifndef PRODB_STORAGE_RECOVERY_H_
#define PRODB_STORAGE_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/wal.h"

namespace prodb {

/// One decoded record plus its position in the log stream.
struct ScannedRecord {
  LogRecord rec;
  Lsn lsn = 0;  // stream offset just past the record (== its LSN)
};

/// Result of walking the log page chain from kWalHeadPageId.
struct LogScanResult {
  std::vector<ScannedRecord> records;  // every intact record, in order
  std::vector<uint32_t> pages;         // log page chain, in stream order
  Lsn valid_end = 0;   // stream offset past the last intact record
  Lsn stream_end = 0;  // stream offset past the last byte present on disk
  bool torn_tail = false;  // bytes past valid_end (torn / corrupt record)
};

/// Scans the write-ahead log directly from `disk` (never through a buffer
/// pool: the log is not page-cached). The scan stops cleanly at the first
/// truncated or CRC-failing record; everything before it is intact.
Status ScanLog(DiskManager* disk, LogScanResult* out);

struct RecoveryResult {
  uint64_t records_scanned = 0;
  uint64_t records_redone = 0;
  uint64_t committed_txns = 0;
  bool torn_tail = false;
  uint64_t truncated_bytes = 0;  // bytes discarded past the last intact record
  Lsn log_end = 0;               // where appends resume
  std::vector<uint32_t> log_pages;
  std::vector<uint64_t> committed;  // committed txn ids, ascending
  // Highest transaction id seen anywhere in the log (0 on a fresh log).
  // Post-restart id allocation must start above it, or a reused id would
  // inherit the old transaction's commit record at the next recovery.
  uint64_t max_txn_id = 0;
};

/// Restart recovery: scan the log, redo the physical records of committed
/// transactions (txn 0 records — auto-commit and structural — are always
/// redone) wherever the record's LSN exceeds the on-disk page LSN, then
/// truncate the log tail at the first torn or CRC-failing record and
/// flush everything. Redo-wins: losers are simply not redone; the commit
/// record is the cutoff. Idempotent — running it twice on the same image
/// leaves every page byte-identical.
///
/// `pool` must be a fresh pool over the crash image with no WAL attached
/// yet (recovery's own page writes need no WAL rule: the entire valid log
/// is already on disk by definition).
Status RecoverLog(BufferPool* pool, RecoveryResult* out);

}  // namespace prodb

#endif  // PRODB_STORAGE_RECOVERY_H_
