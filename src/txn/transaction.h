#ifndef PRODB_TXN_TRANSACTION_H_
#define PRODB_TXN_TRANSACTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "db/catalog.h"
#include "txn/lock_manager.h"

namespace prodb {

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

/// A transaction: lock scope + undo log over catalog relations.
///
/// §5 treats every selected production (matching pattern plus the WM
/// tuples it selects) as a transaction. The RHS actions run through
/// Transaction::{Insert,Delete,Update} so that (a) writes take X locks
/// first, (b) an abort can undo them, and (c) the engine can defer lock
/// release until COND maintenance has finished (strict 2PL with the
/// paper's "commit after maintenance" rule).
class Transaction {
 public:
  Transaction(uint64_t id, Catalog* catalog, LockManager* locks)
      : id_(id), catalog_(catalog), locks_(locks) {}

  uint64_t id() const { return id_; }
  TxnState state() const { return state_; }

  /// --- Locking ---------------------------------------------------------
  /// Tuple read lock (takes relation IS first).
  Status ReadLock(const std::string& rel, TupleId id);
  /// Whole-relation read lock — negative dependence (§5.2).
  Status ReadLockRelation(const std::string& rel);
  /// Tuple write lock (takes relation IX first).
  Status WriteLock(const std::string& rel, TupleId id);
  /// Relation IX lock, needed before inserting new tuples.
  Status WriteIntent(const std::string& rel);

  /// --- Logged mutations -------------------------------------------------
  /// Each takes the required lock, applies the change, and records undo.
  Status Insert(const std::string& rel, const Tuple& t, TupleId* id);
  Status Delete(const std::string& rel, TupleId id);
  Status Update(const std::string& rel, TupleId id, const Tuple& t,
                TupleId* new_id);

  /// Reads a tuple under a read lock.
  Status Read(const std::string& rel, TupleId id, Tuple* out);

  /// Marks committed; the owner (TxnManager / engine) releases locks.
  void MarkCommitted() { state_ = TxnState::kCommitted; }

  /// Rolls back every logged mutation in reverse order and marks aborted.
  Status Rollback();

  /// Changed (relation, tuple, inserted?) triples, in application order —
  /// consumed by the engine to drive COND maintenance before commit.
  struct Change {
    std::string relation;
    bool inserted;  // false = deleted
    TupleId id;
    Tuple tuple;
  };
  const std::vector<Change>& changes() const { return changes_; }

 private:
  uint64_t id_;
  Catalog* catalog_;
  LockManager* locks_;
  TxnState state_ = TxnState::kActive;
  std::vector<Change> changes_;
};

/// Issues transaction ids and finalizes commit/abort.
class TxnManager {
 public:
  TxnManager(Catalog* catalog, LockManager* locks)
      : catalog_(catalog), locks_(locks) {}

  std::unique_ptr<Transaction> Begin();

  /// Commit: force the WAL through a commit record (when the catalog has
  /// one), mark committed and release locks. The caller must have
  /// finished all maintenance before calling (the §5.2 commit point).
  /// On a log-flush failure the transaction is left active with locks
  /// held; the caller should abort it.
  Status Commit(Transaction* txn);

  /// Abort: undo, mark aborted, release locks.
  Status Abort(Transaction* txn);

  LockManager* lock_manager() { return locks_; }
  uint64_t started() const { return next_id_.load(); }

 private:
  Catalog* catalog_;
  LockManager* locks_;
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace prodb

#endif  // PRODB_TXN_TRANSACTION_H_
