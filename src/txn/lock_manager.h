#ifndef PRODB_TXN_LOCK_MANAGER_H_
#define PRODB_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/tuple.h"

namespace prodb {

/// Hierarchical lock modes. Tuple locks use only kS / kX; relation locks
/// use the full set. §5.2 requires exactly this repertoire: tuple read
/// locks on matched WM tuples, tuple/relation write locks for RHS actions,
/// and whole-relation read locks for negatively dependent transactions.
enum class LockMode : uint8_t { kIS, kIX, kS, kX };

const char* LockModeName(LockMode m);

/// True when a holder of `held` and a requester of `wanted` may coexist.
bool LockCompatible(LockMode held, LockMode wanted);

/// Identifies a lockable resource: a relation or one tuple within it.
struct ResourceId {
  std::string relation;
  bool whole_relation = true;
  TupleId tuple;

  static ResourceId Rel(std::string rel) {
    return ResourceId{std::move(rel), true, {}};
  }
  static ResourceId Tup(std::string rel, TupleId id) {
    return ResourceId{std::move(rel), false, id};
  }

  bool operator<(const ResourceId& o) const {
    if (relation != o.relation) return relation < o.relation;
    if (whole_relation != o.whole_relation) return whole_relation;
    return tuple < o.tuple;
  }
  bool operator==(const ResourceId& o) const {
    return relation == o.relation && whole_relation == o.whole_relation &&
           (whole_relation || tuple == o.tuple);
  }
  std::string ToString() const;
};

/// Strict two-phase lock manager with waits-for deadlock detection.
///
/// Acquire blocks until the lock is granted or a deadlock involving the
/// caller is found, in which case Status::Deadlock is returned and the
/// caller is expected to abort (§5.2 anticipates exactly this: mutually
/// deleting transactions "could lead to a deadlock"). Locks are held
/// until ReleaseAll — the paper's commit rule says a production must not
/// release locks until the COND maintenance triggered by its RHS actions
/// has completed, so the engine calls ReleaseAll only after maintenance.
class LockManager {
 public:
  /// Blocks until granted. Upgrades (e.g. S -> X) are performed in place.
  Status Acquire(uint64_t txn, const ResourceId& res, LockMode mode);

  /// Releases every lock `txn` holds and wakes waiters.
  void ReleaseAll(uint64_t txn);

  /// Modes currently held by `txn` on `res` (LockMode count if held).
  bool Holds(uint64_t txn, const ResourceId& res, LockMode at_least) const;

  /// Number of distinct resources currently locked (tests/benchmarks).
  size_t LockedResourceCount() const;

  /// Total deadlocks detected (benchmark counter).
  uint64_t deadlocks_detected() const { return deadlocks_; }

 private:
  struct Request {
    uint64_t txn;
    LockMode mode;
    bool granted;
  };
  struct Queue {
    std::list<Request> requests;
  };

  /// True if `req` can be granted now given other granted requests.
  bool Grantable(const Queue& q, uint64_t txn, LockMode mode) const;

  /// DFS over waits-for edges: does `start` reach itself?
  bool HasCycleFrom(uint64_t start) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<ResourceId, Queue> table_;
  // txn -> set of txns it waits for.
  std::unordered_map<uint64_t, std::set<uint64_t>> waits_for_;
  uint64_t deadlocks_ = 0;
};

/// Combines two held/wanted modes into the single mode that covers both
/// (the lattice join; {S, IX} escalates to X since we do not model SIX).
LockMode LockJoin(LockMode a, LockMode b);

/// True when holding `held` already implies `wanted`.
bool LockCovers(LockMode held, LockMode wanted);

}  // namespace prodb

#endif  // PRODB_TXN_LOCK_MANAGER_H_
