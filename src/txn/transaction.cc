#include "txn/transaction.h"

#include <map>

namespace prodb {

Status Transaction::ReadLock(const std::string& rel, TupleId id) {
  PRODB_RETURN_IF_ERROR(locks_->Acquire(id_, ResourceId::Rel(rel),
                                        LockMode::kIS));
  return locks_->Acquire(id_, ResourceId::Tup(rel, id), LockMode::kS);
}

Status Transaction::ReadLockRelation(const std::string& rel) {
  return locks_->Acquire(id_, ResourceId::Rel(rel), LockMode::kS);
}

Status Transaction::WriteLock(const std::string& rel, TupleId id) {
  PRODB_RETURN_IF_ERROR(locks_->Acquire(id_, ResourceId::Rel(rel),
                                        LockMode::kIX));
  return locks_->Acquire(id_, ResourceId::Tup(rel, id), LockMode::kX);
}

Status Transaction::WriteIntent(const std::string& rel) {
  return locks_->Acquire(id_, ResourceId::Rel(rel), LockMode::kIX);
}

Status Transaction::Insert(const std::string& rel, const Tuple& t,
                           TupleId* id) {
  Relation* r = catalog_->Get(rel);
  if (r == nullptr) return Status::NotFound("relation " + rel);
  PRODB_RETURN_IF_ERROR(WriteIntent(rel));
  // Attribute the WAL records this mutation generates to us; restart
  // recovery redoes them only if our commit record made it to disk.
  WalTxnScope wal_scope(id_);
  PRODB_RETURN_IF_ERROR(r->Insert(t, id));
  // Lock the new tuple so no reader observes it before we commit.
  PRODB_RETURN_IF_ERROR(
      locks_->Acquire(id_, ResourceId::Tup(rel, *id), LockMode::kX));
  changes_.push_back(Change{rel, /*inserted=*/true, *id, t});
  return Status::OK();
}

Status Transaction::Delete(const std::string& rel, TupleId id) {
  Relation* r = catalog_->Get(rel);
  if (r == nullptr) return Status::NotFound("relation " + rel);
  PRODB_RETURN_IF_ERROR(WriteLock(rel, id));
  WalTxnScope wal_scope(id_);
  Tuple old;
  PRODB_RETURN_IF_ERROR(r->Get(id, &old));
  PRODB_RETURN_IF_ERROR(r->Delete(id));
  changes_.push_back(Change{rel, /*inserted=*/false, id, std::move(old)});
  return Status::OK();
}

Status Transaction::Update(const std::string& rel, TupleId id, const Tuple& t,
                           TupleId* new_id) {
  // §3.1 / §5: a modification is a deletion followed by an insertion, and
  // the maintenance algorithms see it exactly that way.
  PRODB_RETURN_IF_ERROR(Delete(rel, id));
  return Insert(rel, t, new_id);
}

Status Transaction::Read(const std::string& rel, TupleId id, Tuple* out) {
  Relation* r = catalog_->Get(rel);
  if (r == nullptr) return Status::NotFound("relation " + rel);
  PRODB_RETURN_IF_ERROR(ReadLock(rel, id));
  return r->Get(id, out);
}

Status Transaction::Rollback() {
  // Undoing a deletion re-inserts the tuple under a fresh id; if the
  // transaction later deleted that same (already re-identified) tuple,
  // the corresponding insert-undo must chase the remapping.
  //
  // Undo is best-effort: a step that fails (an I/O error from a paged
  // relation, a tuple removed behind the transaction's back) must not
  // strand the remaining entries — bailing out mid-loop leaves WM
  // half-rolled-back with the undo log still claiming the changes are
  // live. Every entry is attempted; the transaction always reaches
  // kAborted; the returned Status reports what could not be undone.
  std::map<std::pair<std::string, TupleId>, TupleId> remap;
  // Undo records stay attributed to this (loser) transaction: restart
  // recovery skips them along with the forward records, and no-steal
  // keeps both off disk until the abort completes.
  WalTxnScope wal_scope(id_);
  Status first_error;
  size_t failed = 0;
  for (auto it = changes_.rbegin(); it != changes_.rend(); ++it) {
    Relation* r = catalog_->Get(it->relation);
    Status st;
    if (r == nullptr) {
      st = Status::NotFound("relation " + it->relation);
    } else if (it->inserted) {
      TupleId target = it->id;
      auto rit = remap.find({it->relation, it->id});
      if (rit != remap.end()) target = rit->second;
      st = r->Delete(target);
    } else {
      TupleId id;
      st = r->Insert(it->tuple, &id);
      if (st.ok()) remap[{it->relation, it->id}] = id;
    }
    if (!st.ok()) {
      ++failed;
      if (first_error.ok()) first_error = st;
    }
  }
  size_t total = changes_.size();
  changes_.clear();
  state_ = TxnState::kAborted;
  if (failed == 0) return Status::OK();
  if (failed == 1) return first_error;
  return Status::Internal("rollback incomplete: " + std::to_string(failed) +
                          " of " + std::to_string(total) +
                          " undo steps failed; first: " +
                          first_error.ToString());
}

std::unique_ptr<Transaction> TxnManager::Begin() {
  // Ids must stay above anything recorded in a recovered log: a reused id
  // would inherit the dead transaction's commit record at the next
  // restart and its losers would be redone as winners.
  uint64_t floor = catalog_->recovered_max_txn_id() + 1;
  uint64_t cur = next_id_.load();
  while (cur < floor && !next_id_.compare_exchange_weak(cur, floor)) {
  }
  return std::make_unique<Transaction>(next_id_.fetch_add(1), catalog_,
                                       locks_);
}

Status TxnManager::Commit(Transaction* txn) {
  if (LogManager* wal = catalog_->wal()) {
    // Force the log through the commit record: group commit — this one
    // flush also hardens whatever other transactions buffered since the
    // last flush. A flush failure leaves the transaction active (not
    // committed, locks held) so the caller can abort it like any other
    // failed operation.
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.txn_id = txn->id();
    PRODB_RETURN_IF_ERROR(wal->FlushTo(wal->Append(rec)));
    // Durable now: the pages this transaction dirtied may be stolen.
    catalog_->buffer_pool()->ReleaseTxnPages(txn->id());
  }
  txn->MarkCommitted();
  locks_->ReleaseAll(txn->id());
  return Status::OK();
}

Status TxnManager::Abort(Transaction* txn) {
  Status st = txn->Rollback();
  if (LogManager* wal = catalog_->wal()) {
    // The abort record is hygiene (absence of a commit already dooms the
    // transaction at restart); no flush needed. The undo above restored
    // pre-transaction state, so the pages may reach disk again.
    LogRecord rec;
    rec.type = LogRecordType::kAbort;
    rec.txn_id = txn->id();
    wal->Append(rec);
    catalog_->buffer_pool()->ReleaseTxnPages(txn->id());
  }
  locks_->ReleaseAll(txn->id());
  return st;
}

}  // namespace prodb
