#include "txn/transaction.h"

#include <map>

namespace prodb {

Status Transaction::ReadLock(const std::string& rel, TupleId id) {
  PRODB_RETURN_IF_ERROR(locks_->Acquire(id_, ResourceId::Rel(rel),
                                        LockMode::kIS));
  return locks_->Acquire(id_, ResourceId::Tup(rel, id), LockMode::kS);
}

Status Transaction::ReadLockRelation(const std::string& rel) {
  return locks_->Acquire(id_, ResourceId::Rel(rel), LockMode::kS);
}

Status Transaction::WriteLock(const std::string& rel, TupleId id) {
  PRODB_RETURN_IF_ERROR(locks_->Acquire(id_, ResourceId::Rel(rel),
                                        LockMode::kIX));
  return locks_->Acquire(id_, ResourceId::Tup(rel, id), LockMode::kX);
}

Status Transaction::WriteIntent(const std::string& rel) {
  return locks_->Acquire(id_, ResourceId::Rel(rel), LockMode::kIX);
}

Status Transaction::Insert(const std::string& rel, const Tuple& t,
                           TupleId* id) {
  Relation* r = catalog_->Get(rel);
  if (r == nullptr) return Status::NotFound("relation " + rel);
  PRODB_RETURN_IF_ERROR(WriteIntent(rel));
  PRODB_RETURN_IF_ERROR(r->Insert(t, id));
  // Lock the new tuple so no reader observes it before we commit.
  PRODB_RETURN_IF_ERROR(
      locks_->Acquire(id_, ResourceId::Tup(rel, *id), LockMode::kX));
  changes_.push_back(Change{rel, /*inserted=*/true, *id, t});
  return Status::OK();
}

Status Transaction::Delete(const std::string& rel, TupleId id) {
  Relation* r = catalog_->Get(rel);
  if (r == nullptr) return Status::NotFound("relation " + rel);
  PRODB_RETURN_IF_ERROR(WriteLock(rel, id));
  Tuple old;
  PRODB_RETURN_IF_ERROR(r->Get(id, &old));
  PRODB_RETURN_IF_ERROR(r->Delete(id));
  changes_.push_back(Change{rel, /*inserted=*/false, id, std::move(old)});
  return Status::OK();
}

Status Transaction::Update(const std::string& rel, TupleId id, const Tuple& t,
                           TupleId* new_id) {
  // §3.1 / §5: a modification is a deletion followed by an insertion, and
  // the maintenance algorithms see it exactly that way.
  PRODB_RETURN_IF_ERROR(Delete(rel, id));
  return Insert(rel, t, new_id);
}

Status Transaction::Read(const std::string& rel, TupleId id, Tuple* out) {
  Relation* r = catalog_->Get(rel);
  if (r == nullptr) return Status::NotFound("relation " + rel);
  PRODB_RETURN_IF_ERROR(ReadLock(rel, id));
  return r->Get(id, out);
}

Status Transaction::Rollback() {
  // Undoing a deletion re-inserts the tuple under a fresh id; if the
  // transaction later deleted that same (already re-identified) tuple,
  // the corresponding insert-undo must chase the remapping.
  std::map<std::pair<std::string, TupleId>, TupleId> remap;
  for (auto it = changes_.rbegin(); it != changes_.rend(); ++it) {
    Relation* r = catalog_->Get(it->relation);
    if (r == nullptr) continue;
    if (it->inserted) {
      TupleId target = it->id;
      auto rit = remap.find({it->relation, it->id});
      if (rit != remap.end()) target = rit->second;
      PRODB_RETURN_IF_ERROR(r->Delete(target));
    } else {
      TupleId id;
      PRODB_RETURN_IF_ERROR(r->Insert(it->tuple, &id));
      remap[{it->relation, it->id}] = id;
    }
  }
  changes_.clear();
  state_ = TxnState::kAborted;
  return Status::OK();
}

std::unique_ptr<Transaction> TxnManager::Begin() {
  return std::make_unique<Transaction>(next_id_.fetch_add(1), catalog_,
                                       locks_);
}

void TxnManager::Commit(Transaction* txn) {
  txn->MarkCommitted();
  locks_->ReleaseAll(txn->id());
}

Status TxnManager::Abort(Transaction* txn) {
  Status st = txn->Rollback();
  locks_->ReleaseAll(txn->id());
  return st;
}

}  // namespace prodb
