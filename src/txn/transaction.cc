#include "txn/transaction.h"

#include <map>

namespace prodb {

Status Transaction::ReadLock(const std::string& rel, TupleId id) {
  PRODB_RETURN_IF_ERROR(locks_->Acquire(id_, ResourceId::Rel(rel),
                                        LockMode::kIS));
  return locks_->Acquire(id_, ResourceId::Tup(rel, id), LockMode::kS);
}

Status Transaction::ReadLockRelation(const std::string& rel) {
  return locks_->Acquire(id_, ResourceId::Rel(rel), LockMode::kS);
}

Status Transaction::WriteLock(const std::string& rel, TupleId id) {
  PRODB_RETURN_IF_ERROR(locks_->Acquire(id_, ResourceId::Rel(rel),
                                        LockMode::kIX));
  return locks_->Acquire(id_, ResourceId::Tup(rel, id), LockMode::kX);
}

Status Transaction::WriteIntent(const std::string& rel) {
  return locks_->Acquire(id_, ResourceId::Rel(rel), LockMode::kIX);
}

Status Transaction::Insert(const std::string& rel, const Tuple& t,
                           TupleId* id) {
  Relation* r = catalog_->Get(rel);
  if (r == nullptr) return Status::NotFound("relation " + rel);
  PRODB_RETURN_IF_ERROR(WriteIntent(rel));
  PRODB_RETURN_IF_ERROR(r->Insert(t, id));
  // Lock the new tuple so no reader observes it before we commit.
  PRODB_RETURN_IF_ERROR(
      locks_->Acquire(id_, ResourceId::Tup(rel, *id), LockMode::kX));
  changes_.push_back(Change{rel, /*inserted=*/true, *id, t});
  return Status::OK();
}

Status Transaction::Delete(const std::string& rel, TupleId id) {
  Relation* r = catalog_->Get(rel);
  if (r == nullptr) return Status::NotFound("relation " + rel);
  PRODB_RETURN_IF_ERROR(WriteLock(rel, id));
  Tuple old;
  PRODB_RETURN_IF_ERROR(r->Get(id, &old));
  PRODB_RETURN_IF_ERROR(r->Delete(id));
  changes_.push_back(Change{rel, /*inserted=*/false, id, std::move(old)});
  return Status::OK();
}

Status Transaction::Update(const std::string& rel, TupleId id, const Tuple& t,
                           TupleId* new_id) {
  // §3.1 / §5: a modification is a deletion followed by an insertion, and
  // the maintenance algorithms see it exactly that way.
  PRODB_RETURN_IF_ERROR(Delete(rel, id));
  return Insert(rel, t, new_id);
}

Status Transaction::Read(const std::string& rel, TupleId id, Tuple* out) {
  Relation* r = catalog_->Get(rel);
  if (r == nullptr) return Status::NotFound("relation " + rel);
  PRODB_RETURN_IF_ERROR(ReadLock(rel, id));
  return r->Get(id, out);
}

Status Transaction::Rollback() {
  // Undoing a deletion re-inserts the tuple under a fresh id; if the
  // transaction later deleted that same (already re-identified) tuple,
  // the corresponding insert-undo must chase the remapping.
  //
  // Undo is best-effort: a step that fails (an I/O error from a paged
  // relation, a tuple removed behind the transaction's back) must not
  // strand the remaining entries — bailing out mid-loop leaves WM
  // half-rolled-back with the undo log still claiming the changes are
  // live. Every entry is attempted; the transaction always reaches
  // kAborted; the returned Status reports what could not be undone.
  std::map<std::pair<std::string, TupleId>, TupleId> remap;
  Status first_error;
  size_t failed = 0;
  for (auto it = changes_.rbegin(); it != changes_.rend(); ++it) {
    Relation* r = catalog_->Get(it->relation);
    Status st;
    if (r == nullptr) {
      st = Status::NotFound("relation " + it->relation);
    } else if (it->inserted) {
      TupleId target = it->id;
      auto rit = remap.find({it->relation, it->id});
      if (rit != remap.end()) target = rit->second;
      st = r->Delete(target);
    } else {
      TupleId id;
      st = r->Insert(it->tuple, &id);
      if (st.ok()) remap[{it->relation, it->id}] = id;
    }
    if (!st.ok()) {
      ++failed;
      if (first_error.ok()) first_error = st;
    }
  }
  size_t total = changes_.size();
  changes_.clear();
  state_ = TxnState::kAborted;
  if (failed == 0) return Status::OK();
  if (failed == 1) return first_error;
  return Status::Internal("rollback incomplete: " + std::to_string(failed) +
                          " of " + std::to_string(total) +
                          " undo steps failed; first: " +
                          first_error.ToString());
}

std::unique_ptr<Transaction> TxnManager::Begin() {
  return std::make_unique<Transaction>(next_id_.fetch_add(1), catalog_,
                                       locks_);
}

void TxnManager::Commit(Transaction* txn) {
  txn->MarkCommitted();
  locks_->ReleaseAll(txn->id());
}

Status TxnManager::Abort(Transaction* txn) {
  Status st = txn->Rollback();
  locks_->ReleaseAll(txn->id());
  return st;
}

}  // namespace prodb
