#include "txn/lock_manager.h"

#include <algorithm>

namespace prodb {

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kX: return "X";
  }
  return "?";
}

bool LockCompatible(LockMode held, LockMode wanted) {
  // Standard hierarchical matrix (no SIX):
  //        IS   IX   S    X
  //  IS    y    y    y    n
  //  IX    y    y    n    n
  //  S     y    n    y    n
  //  X     n    n    n    n
  switch (held) {
    case LockMode::kIS:
      return wanted != LockMode::kX;
    case LockMode::kIX:
      return wanted == LockMode::kIS || wanted == LockMode::kIX;
    case LockMode::kS:
      return wanted == LockMode::kIS || wanted == LockMode::kS;
    case LockMode::kX:
      return false;
  }
  return false;
}

bool LockCovers(LockMode held, LockMode wanted) {
  if (held == wanted) return true;
  switch (held) {
    case LockMode::kX:
      return true;
    case LockMode::kS:
      return wanted == LockMode::kIS;
    case LockMode::kIX:
      return wanted == LockMode::kIS;
    case LockMode::kIS:
      return false;
  }
  return false;
}

LockMode LockJoin(LockMode a, LockMode b) {
  if (LockCovers(a, b)) return a;
  if (LockCovers(b, a)) return b;
  // Remaining incomparable pairs: {S, IX} (and symmetric) -> X, since we
  // do not model SIX; {IS, anything} is always comparable.
  return LockMode::kX;
}

std::string ResourceId::ToString() const {
  if (whole_relation) return relation;
  return relation + tuple.ToString();
}

bool LockManager::Grantable(const Queue& q, uint64_t txn,
                            LockMode mode) const {
  for (const Request& r : q.requests) {
    if (!r.granted || r.txn == txn) continue;
    if (!LockCompatible(r.mode, mode)) return false;
  }
  return true;
}

bool LockManager::HasCycleFrom(uint64_t start) const {
  // Iterative DFS from `start`; a path back to `start` is a deadlock.
  std::vector<uint64_t> stack;
  std::set<uint64_t> visited;
  auto it = waits_for_.find(start);
  if (it == waits_for_.end()) return false;
  for (uint64_t t : it->second) stack.push_back(t);
  while (!stack.empty()) {
    uint64_t t = stack.back();
    stack.pop_back();
    if (t == start) return true;
    if (!visited.insert(t).second) continue;
    auto jt = waits_for_.find(t);
    if (jt == waits_for_.end()) continue;
    for (uint64_t n : jt->second) stack.push_back(n);
  }
  return false;
}

Status LockManager::Acquire(uint64_t txn, const ResourceId& res,
                            LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  Queue& q = table_[res];

  // Locate an existing request by this txn.
  auto self = std::find_if(q.requests.begin(), q.requests.end(),
                           [txn](const Request& r) { return r.txn == txn; });
  if (self != q.requests.end() && self->granted) {
    if (LockCovers(self->mode, mode)) return Status::OK();
    mode = LockJoin(self->mode, mode);  // in-place upgrade target
  }

  auto grantable_now = [&]() {
    return Grantable(q, txn, mode);
  };

  if (self != q.requests.end() && self->granted && grantable_now()) {
    self->mode = mode;
    return Status::OK();
  }
  if (self == q.requests.end()) {
    if (grantable_now()) {
      q.requests.push_back(Request{txn, mode, true});
      return Status::OK();
    }
    q.requests.push_back(Request{txn, mode, false});
    self = std::prev(q.requests.end());
  } else {
    // Upgrade that must wait: mark ungranted so others see the conflict
    // only via our still-held old mode; we re-grant with the joined mode.
    // (Keep granted=true for the old mode by leaving the entry, and wait.)
  }

  // Record waits-for edges to the conflicting holders.
  for (;;) {
    waits_for_[txn].clear();
    for (const Request& r : q.requests) {
      if (r.granted && r.txn != txn && !LockCompatible(r.mode, mode)) {
        waits_for_[txn].insert(r.txn);
      }
    }
    if (HasCycleFrom(txn)) {
      ++deadlocks_;
      waits_for_.erase(txn);
      // Remove a pure waiter; keep an existing granted (pre-upgrade) lock.
      if (!self->granted) q.requests.erase(self);
      cv_.notify_all();
      return Status::Deadlock("txn " + std::to_string(txn) + " on " +
                              res.ToString());
    }
    // Re-check grantability with a bounded wait so that releases on other
    // resources (which change the waits-for graph) are observed.
    cv_.wait_for(lock, std::chrono::milliseconds(5));
    if (Grantable(q, txn, mode)) {
      waits_for_.erase(txn);
      self->mode = mode;
      self->granted = true;
      return Status::OK();
    }
  }
}

void LockManager::ReleaseAll(uint64_t txn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = table_.begin(); it != table_.end();) {
    Queue& q = it->second;
    q.requests.remove_if([txn](const Request& r) {
      return r.txn == txn && r.granted;
    });
    if (q.requests.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  waits_for_.erase(txn);
  for (auto& [t, s] : waits_for_) s.erase(txn);
  cv_.notify_all();
}

bool LockManager::Holds(uint64_t txn, const ResourceId& res,
                        LockMode at_least) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(res);
  if (it == table_.end()) return false;
  for (const Request& r : it->second.requests) {
    if (r.txn == txn && r.granted && LockCovers(r.mode, at_least)) {
      return true;
    }
  }
  return false;
}

size_t LockManager::LockedResourceCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [res, q] : table_) {
    for (const Request& r : q.requests) {
      if (r.granted) {
        ++n;
        break;
      }
    }
  }
  return n;
}

}  // namespace prodb
