#ifndef PRODB_MATCH_SHARDING_H_
#define PRODB_MATCH_SHARDING_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/change_set.h"
#include "common/tuple.h"

namespace prodb {

/// Configuration for partitioned (multi-core) match. Working memory is
/// split into shards — whole classes map to a shard by name hash, and
/// declared *hot* classes are additionally spread across every shard by
/// tuple-id hash — and each shard runs its own alpha dispatch and token
/// memories, with conflict-set deltas merged deterministically at a
/// barrier. num_shards <= 1 keeps today's serial path untouched.
struct ShardingOptions {
  /// Number of working-memory partitions. 0 or 1 disables sharding.
  size_t num_shards = 0;
  /// ThreadPool workers driving the shards. 0 means one per shard.
  size_t threads = 0;
  /// Spread `hot_classes` across shards by tuple-id hash (instead of
  /// pinning each class to one shard). Off pins every class.
  bool hash_hot_classes = true;
  /// Classes whose churn dominates the workload — the ones worth
  /// splitting finer than class granularity.
  std::vector<std::string> hot_classes;

  bool enabled() const { return num_shards > 1; }
};

/// Per-shard match counters (satellite view next to the global
/// MatcherStats). Single-writer during a batch: each shard's worker is
/// the only mutator, and the barrier publishes before anyone reads.
struct ShardStats {
  uint64_t deltas_routed = 0;      // deltas this shard dispatched
  uint64_t candidates_visited = 0; // discrimination-index nominations
  uint64_t conflict_ops = 0;       // buffered conflict-set add/removes
  uint64_t merge_wait_ns = 0;      // idle time between shard finish and
                                   // the merge barrier (imbalance cost)
};

/// Mixes a TupleId into a well-distributed 64-bit hash (splitmix64 over
/// the packed page/slot pair). Page-sequential ids must not land on the
/// same shard, which a modulo over raw ids would cause.
inline uint64_t HashId(TupleId id) {
  uint64_t x = (static_cast<uint64_t>(id.page_id) << 32) | id.slot_id;
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a over a class name (stable across runs — shard assignment is
/// part of the deterministic merge order).
inline uint64_t HashName(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Max-over-mean of per-shard routed deltas: 1.0 is a perfect split,
/// num_shards is everything-on-one-shard. Surfaced by the scaling bench.
double ShardImbalance(const std::vector<ShardStats>& stats);

/// Routing of working-memory deltas to shards: cold classes map whole
/// (by name hash), hot classes split by tuple-id hash.
class ShardMap {
 public:
  ShardMap() = default;
  explicit ShardMap(const ShardingOptions& options)
      : num_shards_(options.num_shards < 2 ? 1 : options.num_shards),
        hash_hot_(options.hash_hot_classes),
        hot_(options.hot_classes.begin(), options.hot_classes.end()) {}

  size_t num_shards() const { return num_shards_; }
  bool IsHot(const std::string& cls) const {
    return hash_hot_ && num_shards_ > 1 && hot_.count(cls) > 0;
  }
  size_t ShardOfClass(const std::string& cls) const {
    return static_cast<size_t>(HashName(cls) % num_shards_);
  }
  size_t ShardOfId(TupleId id) const {
    return static_cast<size_t>(HashId(id) % num_shards_);
  }
  /// Shard owning a delta: by tuple id within hot classes, by class
  /// otherwise.
  size_t Route(const Delta& d) const {
    if (num_shards_ == 1) return 0;
    return IsHot(d.relation) ? ShardOfId(d.id) : ShardOfClass(d.relation);
  }

 private:
  size_t num_shards_ = 1;
  bool hash_hot_ = true;
  std::unordered_set<std::string> hot_;
};

}  // namespace prodb

#endif  // PRODB_MATCH_SHARDING_H_
