#ifndef PRODB_MATCH_QUERY_MATCHER_H_
#define PRODB_MATCH_QUERY_MATCHER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "db/executor.h"
#include "db/stats.h"
#include "match/discrimination.h"
#include "match/matcher.h"
#include "plan/planner.h"

namespace prodb {

/// The "simplified algorithm" of §4.1: rule LHSs are queries, and every
/// WM change re-evaluates the affected LHSs against working memory.
///
/// No intermediate join results are stored — the space-optimal end of the
/// paper's space/time trade-off. On insertion of tuple W into class C the
/// matcher finds the condition elements over C (the COND-relation search)
/// and re-runs each affected rule's LHS join seeded with W; "the join
/// degenerates into a selection" when only two CEs exist, and multi-way
/// joins are re-computed — exactly the cost §4.2 sets out to remove.
class QueryMatcher : public Matcher {
 public:
  /// `sharding` (when enabled) partitions a batch's seeded re-evaluations
  /// across WM shards and runs them on a thread pool; conflict-set
  /// commits stay in delta order, so results and recency stamps are
  /// byte-identical to the serial path. Evaluation is read-only against
  /// post-batch WM, which is what makes the fan-out safe.
  /// `planner` (when enabled) plans each rule's join sequence from
  /// catalog statistics at AddRule time and re-plans when cardinalities
  /// drift past planner.replan_drift; off, evaluation order is exactly
  /// the historical PlanOrder path.
  explicit QueryMatcher(Catalog* catalog, ExecutorOptions exec_options = {},
                        ShardingOptions sharding = {},
                        PlannerOptions planner = {})
      : catalog_(catalog),
        executor_(catalog, exec_options),
        planner_(&cat_stats_, planner),
        sharding_(sharding),
        shard_map_(sharding) {
    executor_.set_stats(&stats_);
    if (planner.enable) executor_.set_planner_stats(&cat_stats_);
    plans_.store(std::make_shared<const std::vector<JoinPlan>>());
    if (sharding_.enabled()) {
      shard_stats_.resize(shard_map_.num_shards());
      size_t threads = sharding_.threads == 0 ? shard_map_.num_shards()
                                              : sharding_.threads;
      if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
    }
  }

  Status AddRule(const Rule& rule) override;
  Status OnInsert(const std::string& rel, TupleId id, const Tuple& t) override;
  Status OnDelete(const std::string& rel, TupleId id, const Tuple& t) override;
  /// Set-oriented re-evaluation: one conflict-set pass retires every
  /// instantiation invalidated by the batch's deletions, and each rule
  /// negatively dependent on a churned relation is re-evaluated once per
  /// batch instead of once per deleted tuple (§4.1.2's join
  /// re-computation, amortized over the whole ∆).
  Status OnBatch(const ChangeSet& batch) override;

  ConflictSet& conflict_set() override { return conflict_set_; }
  size_t AuxiliaryFootprintBytes() const override;
  const MatcherStats& stats() const override { return stats_; }
  std::string name() const override {
    std::string base = sharding_.enabled() ? "query-shard" : "query";
    return planner_.options().enable ? base + "-plan" : base;
  }

  /// Current per-rule plans (read-only snapshot; tests/benchmarks).
  std::shared_ptr<const std::vector<JoinPlan>> plans() const {
    return plans_.load();
  }
  const CatalogStats& catalog_stats() const { return cat_stats_; }
  const std::vector<Rule>& rules() const override { return rules_; }
  std::vector<ShardStats> ShardStatsSnapshot() const override;

 protected:
  MatcherStats* mutable_stats() override { return &stats_; }

 private:
  struct CeRef {
    int rule;
    int ce;
  };

  /// Seeded evaluation of (rule, ce) with tuple (id, t) into *out —
  /// read-only against WM, so shards may run it concurrently; the caller
  /// commits the instantiations.
  Status SeedMatches(int rule_index, int ce, TupleId id, const Tuple& t,
                     std::vector<Instantiation>* out);
  /// Seeded evaluation + immediate conflict-set commit (the serial
  /// per-tuple path).
  Status SeedAndAdd(int rule_index, int ce, TupleId id, const Tuple& t);
  /// Full re-evaluation of `rule_index` into *out (step-4 helper).
  Status EvaluateRule(int rule_index, std::vector<Instantiation>* out);

  /// Fills *out with the positions (into the class's CeRef bucket) to
  /// dispatch for `t`: the discrimination-index candidates when enabled
  /// (a superset of the CEs whose constant tests pass — skipping the
  /// rest is exact, constant tests are binding-independent), every
  /// position otherwise. Updates the dispatch counters either way.
  void DispatchTargets(bool negated, const std::string& rel, size_t n,
                       const Tuple& t, std::vector<uint32_t>* out);

  /// Drift check + re-plan, rate-limited and serialized by replan_mu_
  /// (try_lock: concurrent callers skip rather than queue). New plans
  /// publish through the atomic shared_ptr, so readers mid-evaluation
  /// keep a consistent snapshot.
  void MaybeReplan(size_t deltas);

  Catalog* catalog_;
  Executor executor_;
  // Incremental catalog statistics over the rules' LHS relations,
  // registered at AddRule (single-threaded) and updated lock-free from
  // OnInsert/OnDelete/OnBatch — the Seal()-style publication contract
  // documented on CatalogStats.
  CatalogStats cat_stats_;
  JoinPlanner planner_;
  // Per-rule plans (index = rule). Copy-on-write: replans build a fresh
  // vector and swap; the concurrent engine's worker threads load
  // without a lock.
  std::atomic<std::shared_ptr<const std::vector<JoinPlan>>> plans_;
  std::mutex replan_mu_;
  std::atomic<uint64_t> deltas_since_plan_check_{0};
  std::vector<Rule> rules_;
  // Class name -> positive / negated condition elements over it.
  std::unordered_map<std::string, std::vector<CeRef>> positive_by_class_;
  std::unordered_map<std::string, std::vector<CeRef>> negative_by_class_;
  // Class name -> discrimination index over the bucket's CE constant
  // tests (entry id = position in the bucket).
  std::unordered_map<std::string, DiscriminationIndex> positive_disc_;
  std::unordered_map<std::string, DiscriminationIndex> negative_disc_;
  // reserve() hint: previous delta's candidate count (atomic — the
  // concurrent engine dispatches from worker threads).
  std::atomic<uint32_t> last_candidates_{0};
  ShardingOptions sharding_;
  ShardMap shard_map_;
  // Workers for the sharded OnBatch fan-out (absent when serial).
  std::unique_ptr<ThreadPool> pool_;
  // Guards shard_stats_ and the fan-out scratch; taken only when
  // sharding is enabled (the serial matcher is lock-free by design —
  // ConflictSet and the atomic counters carry their own safety).
  mutable std::mutex batch_mu_;
  std::vector<ShardStats> shard_stats_;
  ConflictSet conflict_set_;
  MatcherStats stats_;
};

}  // namespace prodb

#endif  // PRODB_MATCH_QUERY_MATCHER_H_
