#ifndef PRODB_MATCH_QUERY_MATCHER_H_
#define PRODB_MATCH_QUERY_MATCHER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "db/executor.h"
#include "match/discrimination.h"
#include "match/matcher.h"

namespace prodb {

/// The "simplified algorithm" of §4.1: rule LHSs are queries, and every
/// WM change re-evaluates the affected LHSs against working memory.
///
/// No intermediate join results are stored — the space-optimal end of the
/// paper's space/time trade-off. On insertion of tuple W into class C the
/// matcher finds the condition elements over C (the COND-relation search)
/// and re-runs each affected rule's LHS join seeded with W; "the join
/// degenerates into a selection" when only two CEs exist, and multi-way
/// joins are re-computed — exactly the cost §4.2 sets out to remove.
class QueryMatcher : public Matcher {
 public:
  /// `sharding` (when enabled) partitions a batch's seeded re-evaluations
  /// across WM shards and runs them on a thread pool; conflict-set
  /// commits stay in delta order, so results and recency stamps are
  /// byte-identical to the serial path. Evaluation is read-only against
  /// post-batch WM, which is what makes the fan-out safe.
  explicit QueryMatcher(Catalog* catalog, ExecutorOptions exec_options = {},
                        ShardingOptions sharding = {})
      : catalog_(catalog),
        executor_(catalog, exec_options),
        sharding_(sharding),
        shard_map_(sharding) {
    executor_.set_stats(&stats_);
    if (sharding_.enabled()) {
      shard_stats_.resize(shard_map_.num_shards());
      size_t threads = sharding_.threads == 0 ? shard_map_.num_shards()
                                              : sharding_.threads;
      if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
    }
  }

  Status AddRule(const Rule& rule) override;
  Status OnInsert(const std::string& rel, TupleId id, const Tuple& t) override;
  Status OnDelete(const std::string& rel, TupleId id, const Tuple& t) override;
  /// Set-oriented re-evaluation: one conflict-set pass retires every
  /// instantiation invalidated by the batch's deletions, and each rule
  /// negatively dependent on a churned relation is re-evaluated once per
  /// batch instead of once per deleted tuple (§4.1.2's join
  /// re-computation, amortized over the whole ∆).
  Status OnBatch(const ChangeSet& batch) override;

  ConflictSet& conflict_set() override { return conflict_set_; }
  size_t AuxiliaryFootprintBytes() const override;
  const MatcherStats& stats() const override { return stats_; }
  std::string name() const override {
    return sharding_.enabled() ? "query-shard" : "query";
  }
  const std::vector<Rule>& rules() const override { return rules_; }
  std::vector<ShardStats> ShardStatsSnapshot() const override;

 protected:
  MatcherStats* mutable_stats() override { return &stats_; }

 private:
  struct CeRef {
    int rule;
    int ce;
  };

  /// Seeded evaluation of (rule, ce) with tuple (id, t) into *out —
  /// read-only against WM, so shards may run it concurrently; the caller
  /// commits the instantiations.
  Status SeedMatches(int rule_index, int ce, TupleId id, const Tuple& t,
                     std::vector<Instantiation>* out);
  /// Seeded evaluation + immediate conflict-set commit (the serial
  /// per-tuple path).
  Status SeedAndAdd(int rule_index, int ce, TupleId id, const Tuple& t);
  /// Full re-evaluation of `rule_index` into *out (step-4 helper).
  Status EvaluateRule(int rule_index, std::vector<Instantiation>* out);

  /// Fills *out with the positions (into the class's CeRef bucket) to
  /// dispatch for `t`: the discrimination-index candidates when enabled
  /// (a superset of the CEs whose constant tests pass — skipping the
  /// rest is exact, constant tests are binding-independent), every
  /// position otherwise. Updates the dispatch counters either way.
  void DispatchTargets(bool negated, const std::string& rel, size_t n,
                       const Tuple& t, std::vector<uint32_t>* out);

  Catalog* catalog_;
  Executor executor_;
  std::vector<Rule> rules_;
  // Class name -> positive / negated condition elements over it.
  std::unordered_map<std::string, std::vector<CeRef>> positive_by_class_;
  std::unordered_map<std::string, std::vector<CeRef>> negative_by_class_;
  // Class name -> discrimination index over the bucket's CE constant
  // tests (entry id = position in the bucket).
  std::unordered_map<std::string, DiscriminationIndex> positive_disc_;
  std::unordered_map<std::string, DiscriminationIndex> negative_disc_;
  // reserve() hint: previous delta's candidate count (atomic — the
  // concurrent engine dispatches from worker threads).
  std::atomic<uint32_t> last_candidates_{0};
  ShardingOptions sharding_;
  ShardMap shard_map_;
  // Workers for the sharded OnBatch fan-out (absent when serial).
  std::unique_ptr<ThreadPool> pool_;
  // Guards shard_stats_ and the fan-out scratch; taken only when
  // sharding is enabled (the serial matcher is lock-free by design —
  // ConflictSet and the atomic counters carry their own safety).
  mutable std::mutex batch_mu_;
  std::vector<ShardStats> shard_stats_;
  ConflictSet conflict_set_;
  MatcherStats stats_;
};

}  // namespace prodb

#endif  // PRODB_MATCH_QUERY_MATCHER_H_
