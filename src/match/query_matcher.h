#ifndef PRODB_MATCH_QUERY_MATCHER_H_
#define PRODB_MATCH_QUERY_MATCHER_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/executor.h"
#include "match/discrimination.h"
#include "match/matcher.h"

namespace prodb {

/// The "simplified algorithm" of §4.1: rule LHSs are queries, and every
/// WM change re-evaluates the affected LHSs against working memory.
///
/// No intermediate join results are stored — the space-optimal end of the
/// paper's space/time trade-off. On insertion of tuple W into class C the
/// matcher finds the condition elements over C (the COND-relation search)
/// and re-runs each affected rule's LHS join seeded with W; "the join
/// degenerates into a selection" when only two CEs exist, and multi-way
/// joins are re-computed — exactly the cost §4.2 sets out to remove.
class QueryMatcher : public Matcher {
 public:
  explicit QueryMatcher(Catalog* catalog, ExecutorOptions exec_options = {})
      : catalog_(catalog), executor_(catalog, exec_options) {
    executor_.set_stats(&stats_);
  }

  Status AddRule(const Rule& rule) override;
  Status OnInsert(const std::string& rel, TupleId id, const Tuple& t) override;
  Status OnDelete(const std::string& rel, TupleId id, const Tuple& t) override;
  /// Set-oriented re-evaluation: one conflict-set pass retires every
  /// instantiation invalidated by the batch's deletions, and each rule
  /// negatively dependent on a churned relation is re-evaluated once per
  /// batch instead of once per deleted tuple (§4.1.2's join
  /// re-computation, amortized over the whole ∆).
  Status OnBatch(const ChangeSet& batch) override;

  ConflictSet& conflict_set() override { return conflict_set_; }
  size_t AuxiliaryFootprintBytes() const override;
  const MatcherStats& stats() const override { return stats_; }
  std::string name() const override { return "query"; }
  const std::vector<Rule>& rules() const override { return rules_; }

 protected:
  MatcherStats* mutable_stats() override { return &stats_; }

 private:
  struct CeRef {
    int rule;
    int ce;
  };

  /// Seeded evaluation of (rule, ce) with tuple (id, t); conflict-set
  /// additions shared by the per-tuple and batched paths.
  Status SeedAndAdd(int rule_index, int ce, TupleId id, const Tuple& t);

  /// Fills *out with the positions (into the class's CeRef bucket) to
  /// dispatch for `t`: the discrimination-index candidates when enabled
  /// (a superset of the CEs whose constant tests pass — skipping the
  /// rest is exact, constant tests are binding-independent), every
  /// position otherwise. Updates the dispatch counters either way.
  void DispatchTargets(bool negated, const std::string& rel, size_t n,
                       const Tuple& t, std::vector<uint32_t>* out);

  Catalog* catalog_;
  Executor executor_;
  std::vector<Rule> rules_;
  // Class name -> positive / negated condition elements over it.
  std::unordered_map<std::string, std::vector<CeRef>> positive_by_class_;
  std::unordered_map<std::string, std::vector<CeRef>> negative_by_class_;
  // Class name -> discrimination index over the bucket's CE constant
  // tests (entry id = position in the bucket).
  std::unordered_map<std::string, DiscriminationIndex> positive_disc_;
  std::unordered_map<std::string, DiscriminationIndex> negative_disc_;
  // reserve() hint: previous delta's candidate count (atomic — the
  // concurrent engine dispatches from worker threads).
  std::atomic<uint32_t> last_candidates_{0};
  ConflictSet conflict_set_;
  MatcherStats stats_;
};

}  // namespace prodb

#endif  // PRODB_MATCH_QUERY_MATCHER_H_
