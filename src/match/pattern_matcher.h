#ifndef PRODB_MATCH_PATTERN_MATCHER_H_
#define PRODB_MATCH_PATTERN_MATCHER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "db/executor.h"
#include "match/discrimination.h"
#include "match/matcher.h"

namespace prodb {

/// Options for the matching-pattern matcher.
struct PatternMatcherOptions {
  /// Propagate matching patterns to the COND relations of related classes
  /// on `threads` worker threads (§4.2.3/§6: "our scheme can be fully
  /// parallelized"). 0 or 1 = sequential propagation.
  size_t propagation_threads = 0;
  /// Storage for the COND relations (paged exercises the secondary-
  /// storage path the paper assumes).
  StorageKind cond_storage = StorageKind::kMemory;
  /// Declare hash indexes at rule registration on WM attributes appearing
  /// in equality tests, so materialization and seeded re-evaluation probe
  /// the WM relations through Relation::Select's index path (§4.1.2).
  bool declare_wm_indexes = true;
  /// Route per-delta CE dispatch through the constant-test discrimination
  /// index (eq-hash / interval-tree / residual tiers) instead of walking
  /// every condition element registered on the delta's relation. Off
  /// restores the linear walk for the ablation benchmarks.
  bool discriminate_dispatch = true;
};

/// The paper's new approach (§4.2): COND relations with matching
/// patterns.
///
/// For every WM class C a COND-C relation holds one row per condition
/// element over C — the original (all-variable) rows written at rule-
/// registration time plus *matching patterns*: copies whose variable
/// positions have been narrowed to the values of tuples present in
/// related WM relations. Each pattern carries, per Related Condition
/// Element (RCE), a contribution counter (the paper's Mark bits,
/// generalized to counters in §4.2.2 so deletions can decrement).
///
/// Matching an inserted tuple is a single pass over the COND relation of
/// its own class: if some consistent pattern set covers every RCE, the
/// rule is satisfiable and the conflict-set instantiations are selected
/// from the WM relations under the pattern's bindings. Propagation then
/// inserts narrowed patterns into the COND relations of the related
/// classes — independently per class, hence parallelizable, unlike the
/// Rete network's strictly sequential node-by-node token flow.
///
/// Fidelity note (documented in DESIGN.md): patterns here are
/// projections of single contributing tuples onto the variables shared
/// with the target CE, rather than the paper's transitively unified
/// patterns. The literal §4.2.2 unification can both over-approximate
/// (chained joins) and lose insert/delete symmetry; the projection form
/// keeps the data structure, the single-search match, the counter
/// maintenance, and the space/time trade-off, while remaining exact
/// under deletion. Any residual over-approximation is caught at
/// materialization, which the paper prescribes anyway (§5.1).
class PatternMatcher : public Matcher {
 public:
  explicit PatternMatcher(Catalog* catalog,
                          PatternMatcherOptions options = {});
  ~PatternMatcher() override;

  Status AddRule(const Rule& rule) override;
  Status OnInsert(const std::string& rel, TupleId id, const Tuple& t) override;
  Status OnDelete(const std::string& rel, TupleId id, const Tuple& t) override;
  /// Batched maintenance: the conflict-set passes for deletions and for
  /// negated-CE blockers run once per batch, and pattern counter updates
  /// (±1 bumps) accumulate across consecutive deltas, flushing lazily —
  /// only when a later insert must read pattern support — so delete-heavy
  /// batches propagate to the COND relations in one (possibly parallel)
  /// wave (§4.2.3).
  Status OnBatch(const ChangeSet& batch) override;

  ConflictSet& conflict_set() override { return conflict_set_; }
  size_t AuxiliaryFootprintBytes() const override;
  const MatcherStats& stats() const override { return stats_; }
  std::string name() const override { return "pattern"; }
  const std::vector<Rule>& rules() const override { return rules_; }

  /// Number of matching-pattern rows currently stored for class `cls`
  /// (excludes the original condition rows).
  size_t PatternCount(const std::string& cls) const;

  /// The COND relation backing class `cls` (nullptr if the class has no
  /// conditions). Schema: (__rid, __cen, <class attributes>). Useful for
  /// rule-base queries ("all rules that apply on employees older than
  /// 55", §4.2.3) and inspected by tests.
  Relation* CondRelation(const std::string& cls) const;

  /// Recomputes the RULE-DEF relation (__rid, __cen, __check): check=1
  /// iff some current WM tuple satisfies that condition element's own
  /// tests (§4.1.1's per-condition Check bit), set-at-a-time.
  Status SyncRuleDef();
  Relation* rule_def() const { return rule_def_; }

 protected:
  MatcherStats* mutable_stats() override { return &stats_; }

 private:
  /// One queued ±1 pattern-counter update.
  struct PropagationOp {
    int rule, target_ce, contributor_ce, delta;
    Binding projected;
  };

  struct PatternEntry {
    Binding binding;                  // projected values (full-width)
    std::vector<uint32_t> counters;   // per-CE contribution counts
    TupleId cond_row;                 // row in the COND relation
  };

  /// Per-class pattern store: (rule, ce) -> serialized projection ->
  /// entry. Guarded per class so parallel propagation to different
  /// classes never contends.
  struct CondStore {
    mutable std::mutex mu;
    Relation* cond_rel = nullptr;
    std::map<std::pair<int, int>,
             std::unordered_map<std::string, PatternEntry>>
        patterns;
    size_t pattern_rows = 0;
  };

  struct CeRef {
    int rule;
    int ce;
  };

  Status EnsureCondStore(const std::string& cls, CondStore** out);
  static std::string ProjectionKey(const Binding& b);

  /// Fills *out with the positions (into the class's CeRef bucket) to
  /// dispatch for `t`: discrimination-index candidates when enabled (a
  /// superset of the CEs whose constant tests accept `t`; skipping the
  /// rest is exact — BindSingle checks constant tests first), every
  /// position otherwise. Updates the dispatch counters either way.
  void DispatchTargets(bool negated, const std::string& rel, size_t n,
                       const Tuple& t, std::vector<uint32_t>* out);

  /// Projects `full` onto the vars shared between CE `from` and CE `to`
  /// of `rule` (precomputed at AddRule).
  Binding Project(int rule, int from, int to, const Binding& full) const;

  /// Adds delta (+1/-1) to the pattern for (rule, target_ce) derived from
  /// `projected`, crediting `contributor_ce`. Maintains the COND row.
  Status BumpPattern(int rule, int target_ce, const Binding& projected,
                     int contributor_ce, int delta);

  /// Applies queued ops — on the thread pool when they all carry the same
  /// sign (per-class mutexes serialize same-class ops, and same-sign
  /// bumps commute), else sequentially in queue order — and clears them.
  Status FlushOps(std::vector<PropagationOp>* ops);

  /// Single pass over the patterns for (rule, ce): true when for every
  /// positive RCE some pattern consistent with `beta` has support.
  bool Supported(int rule, int ce, const Binding& beta) const;

  Catalog* catalog_;
  PatternMatcherOptions options_;
  Executor executor_;
  std::vector<Rule> rules_;
  std::unordered_map<std::string, std::vector<CeRef>> positive_by_class_;
  std::unordered_map<std::string, std::vector<CeRef>> negative_by_class_;
  // Class name -> discrimination index over the bucket's CE constant
  // tests (entry id = position in the bucket).
  std::unordered_map<std::string, DiscriminationIndex> positive_disc_;
  std::unordered_map<std::string, DiscriminationIndex> negative_disc_;
  // reserve() hint: previous delta's candidate count (atomic — the
  // concurrent engine dispatches from worker threads).
  std::atomic<uint32_t> last_candidates_{0};
  // [rule][from_ce][to_ce] -> shared variable ids (kEq occurrences).
  std::vector<std::vector<std::vector<std::vector<int>>>> shared_vars_;
  std::unordered_map<std::string, std::unique_ptr<CondStore>> cond_stores_;
  Relation* rule_def_ = nullptr;
  ConflictSet conflict_set_;
  MatcherStats stats_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace prodb

#endif  // PRODB_MATCH_PATTERN_MATCHER_H_
