#include "match/discrimination.h"

#include <algorithm>
#include <limits>

namespace prodb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Stab coordinate of a tuple value under the null < numbers < symbols
/// total order of Value::Compare.
double StabCoord(const Value& v) {
  if (v.is_numeric()) return v.numeric();
  return v.is_null() ? -kInf : kInf;
}

}  // namespace

void DiscriminationIndex::Add(uint32_t id,
                              const std::vector<ConstantTest>& tests) {
  ++total_;

  // Tier 1: any equality against a constant pins the entry to one hash
  // bucket — the most selective classifiable discriminator.
  for (const ConstantTest& t : tests) {
    if (t.op == CompareOp::kEq) {
      eq_buckets_[t.attr][t.constant].push_back(id);
      ++eq_count_;
      return;
    }
  }

  // Tier 2: intersect the bounded numeric comparisons per attribute and
  // index the first attribute that has any. Strict bounds stay inclusive
  // (the exact test re-runs on candidates, so widening is safe).
  int best_attr = -1;
  double lo = -kInf, hi = kInf;
  for (const ConstantTest& t : tests) {
    if (!t.constant.is_numeric()) continue;
    if (best_attr != -1 && t.attr != best_attr) continue;
    double c = t.constant.numeric();
    switch (t.op) {
      case CompareOp::kLt:
      case CompareOp::kLe:
        best_attr = t.attr;
        hi = std::min(hi, c);
        break;
      case CompareOp::kGt:
      case CompareOp::kGe:
        best_attr = t.attr;
        lo = std::max(lo, c);
        break;
      default:
        break;  // kNe discriminates nothing; kEq handled above
    }
  }
  if (best_attr != -1) {
    range_trees_[best_attr].Insert(lo, hi, id);
    ++range_count_;
    return;
  }

  // Tier 3: nothing classifiable — always a candidate.
  residual_.push_back(id);
}

void DiscriminationIndex::Seal() const {
  std::vector<uint32_t> scratch;
  for (const auto& [attr, tree] : range_trees_) {
    (void)attr;
    tree.Stab(0.0, &scratch);
    scratch.clear();
  }
}

void DiscriminationIndex::Lookup(const Tuple& t,
                                 std::vector<uint32_t>* out) const {
  out->insert(out->end(), residual_.begin(), residual_.end());
  for (const auto& [attr, buckets] : eq_buckets_) {
    if (static_cast<size_t>(attr) >= t.arity()) continue;
    auto it = buckets.find(t[static_cast<size_t>(attr)]);
    if (it == buckets.end()) continue;
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  for (const auto& [attr, tree] : range_trees_) {
    if (static_cast<size_t>(attr) >= t.arity()) continue;
    tree.Stab(StabCoord(t[static_cast<size_t>(attr)]), out);
  }
  // Each entry lives in exactly one tier under exactly one key, so the
  // union is already duplicate-free; sort restores registration order.
  std::sort(out->begin(), out->end());
}

}  // namespace prodb
