#include "match/pattern_matcher.h"

#include <set>
#include <unordered_set>

namespace prodb {

PatternMatcher::PatternMatcher(Catalog* catalog,
                               PatternMatcherOptions options)
    : catalog_(catalog), options_(options), executor_(catalog) {
  executor_.set_stats(&stats_);
  if (options_.propagation_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.propagation_threads);
  }
}

PatternMatcher::~PatternMatcher() = default;

Status PatternMatcher::EnsureCondStore(const std::string& cls,
                                       CondStore** out) {
  auto it = cond_stores_.find(cls);
  if (it != cond_stores_.end()) {
    *out = it->second.get();
    return Status::OK();
  }
  Relation* wm = catalog_->Get(cls);
  if (wm == nullptr) return Status::NotFound("relation " + cls);
  auto store = std::make_unique<CondStore>();
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"__rid", ValueType::kInt});
  attrs.push_back(Attribute{"__cen", ValueType::kInt});
  for (const Attribute& a : wm->schema().attributes()) attrs.push_back(a);
  PRODB_RETURN_IF_ERROR(catalog_->CreateRelation(
      Schema("COND-" + cls, attrs), options_.cond_storage, &store->cond_rel));
  *out = store.get();
  cond_stores_.emplace(cls, std::move(store));
  return Status::OK();
}

Status PatternMatcher::AddRule(const Rule& rule) {
  int rule_index = static_cast<int>(rules_.size());
  const size_t n = rule.lhs.conditions.size();

  // Precompute shared (kEq) variables between every ordered CE pair.
  std::vector<std::set<int>> eq_vars(n);
  for (size_t ce = 0; ce < n; ++ce) {
    for (const VarUse& u : rule.lhs.conditions[ce].var_uses) {
      if (u.op == CompareOp::kEq) eq_vars[ce].insert(u.var);
    }
  }
  std::vector<std::vector<std::vector<int>>> shared(
      n, std::vector<std::vector<int>>(n));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      for (int v : eq_vars[a]) {
        if (eq_vars[b].count(v)) shared[a][b].push_back(v);
      }
    }
  }
  shared_vars_.push_back(std::move(shared));

  // Register CEs, create COND relations, write the original rows.
  for (size_t ce = 0; ce < n; ++ce) {
    const ConditionSpec& c = rule.lhs.conditions[ce];
    CondStore* store;
    PRODB_RETURN_IF_ERROR(EnsureCondStore(c.relation, &store));
    auto& bucket = c.negated ? negative_by_class_[c.relation]
                             : positive_by_class_[c.relation];
    auto& disc =
        c.negated ? negative_disc_[c.relation] : positive_disc_[c.relation];
    disc.Add(static_cast<uint32_t>(bucket.size()), c.constant_tests);
    disc.Seal();
    bucket.push_back(CeRef{rule_index, static_cast<int>(ce)});

    // Original COND row: constants where the CE tests equality against a
    // constant, null (variable / don't-care) elsewhere.
    Relation* wm = catalog_->Get(c.relation);
    if (options_.declare_wm_indexes) {
      for (const VarUse& u : c.var_uses) {
        if (u.op == CompareOp::kEq && !wm->HasHashIndex(u.attr)) {
          PRODB_RETURN_IF_ERROR(wm->CreateHashIndex(u.attr));
        }
      }
      for (const ConstantTest& ct : c.constant_tests) {
        if (ct.op == CompareOp::kEq && !wm->HasHashIndex(ct.attr)) {
          PRODB_RETURN_IF_ERROR(wm->CreateHashIndex(ct.attr));
        }
      }
    }
    Tuple row;
    auto& vals = row.mutable_values();
    vals.emplace_back(static_cast<int64_t>(rule_index));
    vals.emplace_back(static_cast<int64_t>(ce));
    for (size_t a = 0; a < wm->schema().arity(); ++a) {
      Value v;
      for (const ConstantTest& ct : c.constant_tests) {
        if (ct.attr == static_cast<int>(a) && ct.op == CompareOp::kEq) {
          v = ct.constant;
          break;
        }
      }
      vals.push_back(std::move(v));
    }
    TupleId id;
    PRODB_RETURN_IF_ERROR(store->cond_rel->Insert(row, &id));
  }

  // RULE-DEF rows (one per condition element, §4.1.1).
  if (rule_def_ == nullptr) {
    rule_def_ = catalog_->Get("RULE-DEF");
    if (rule_def_ == nullptr) {
      PRODB_RETURN_IF_ERROR(catalog_->CreateRelation(
          Schema("RULE-DEF", {Attribute{"__rid", ValueType::kInt},
                              Attribute{"__cen", ValueType::kInt},
                              Attribute{"__check", ValueType::kInt}}),
          StorageKind::kMemory, &rule_def_));
    }
  }
  for (size_t ce = 0; ce < n; ++ce) {
    TupleId id;
    PRODB_RETURN_IF_ERROR(rule_def_->Insert(
        Tuple{Value(static_cast<int64_t>(rule_index)),
              Value(static_cast<int64_t>(ce)), Value(int64_t{0})},
        &id));
  }

  rules_.push_back(rule);
  return Status::OK();
}

void PatternMatcher::DispatchTargets(bool negated, const std::string& rel,
                                     size_t n, const Tuple& t,
                                     std::vector<uint32_t>* out) {
  out->clear();
  if (options_.discriminate_dispatch) {
    out->reserve(last_candidates_.load(std::memory_order_relaxed));
    const auto& discs = negated ? negative_disc_ : positive_disc_;
    auto it = discs.find(rel);
    if (it != discs.end()) it->second.Lookup(t, out);
    last_candidates_.store(static_cast<uint32_t>(out->size()),
                           std::memory_order_relaxed);
    stats_.candidates_visited += out->size();
  } else {
    out->reserve(n);
    for (uint32_t i = 0; i < static_cast<uint32_t>(n); ++i) {
      out->push_back(i);
    }
  }
  stats_.alpha_tests_evaluated += out->size();
}

std::string PatternMatcher::ProjectionKey(const Binding& b) {
  std::string key;
  for (size_t i = 0; i < b.size(); ++i) {
    if (!b[i].has_value()) continue;
    key += std::to_string(i) + "=" + b[i]->ToString() + ";";
  }
  return key;
}

Binding PatternMatcher::Project(int rule, int from, int to,
                                const Binding& full) const {
  const auto& shared =
      shared_vars_[static_cast<size_t>(rule)][static_cast<size_t>(from)]
                  [static_cast<size_t>(to)];
  Binding out(full.size());
  for (int v : shared) {
    out[static_cast<size_t>(v)] = full[static_cast<size_t>(v)];
  }
  return out;
}

Status PatternMatcher::BumpPattern(int rule, int target_ce,
                                   const Binding& projected,
                                   int contributor_ce, int delta) {
  const ConditionSpec& target =
      rules_[static_cast<size_t>(rule)].lhs.conditions
          [static_cast<size_t>(target_ce)];
  auto sit = cond_stores_.find(target.relation);
  if (sit == cond_stores_.end()) {
    return Status::Internal("no COND store for " + target.relation);
  }
  CondStore* store = sit->second.get();
  std::lock_guard<std::mutex> lock(store->mu);

  auto& bucket = store->patterns[{rule, target_ce}];
  std::string key = ProjectionKey(projected);
  auto it = bucket.find(key);
  if (delta > 0) {
    if (it == bucket.end()) {
      PatternEntry entry;
      entry.binding = projected;
      entry.counters.assign(
          rules_[static_cast<size_t>(rule)].lhs.conditions.size(), 0);
      entry.counters[static_cast<size_t>(contributor_ce)] = 1;
      // Materialize the pattern as a COND row: narrowed copy of the
      // original condition tuple (variables replaced by values).
      Relation* wm = catalog_->Get(target.relation);
      Tuple row;
      auto& vals = row.mutable_values();
      vals.emplace_back(static_cast<int64_t>(rule));
      vals.emplace_back(static_cast<int64_t>(target_ce));
      for (size_t a = 0; a < wm->schema().arity(); ++a) {
        Value v;
        for (const ConstantTest& ct : target.constant_tests) {
          if (ct.attr == static_cast<int>(a) && ct.op == CompareOp::kEq) {
            v = ct.constant;
            break;
          }
        }
        for (const VarUse& u : target.var_uses) {
          if (u.attr == static_cast<int>(a) && u.op == CompareOp::kEq &&
              projected[static_cast<size_t>(u.var)].has_value()) {
            v = *projected[static_cast<size_t>(u.var)];
            break;
          }
        }
        vals.push_back(std::move(v));
      }
      PRODB_RETURN_IF_ERROR(store->cond_rel->Insert(row, &entry.cond_row));
      ++store->pattern_rows;
      ++stats_.patterns_stored;
      bucket.emplace(std::move(key), std::move(entry));
    } else {
      ++it->second.counters[static_cast<size_t>(contributor_ce)];
    }
  } else {
    if (it == bucket.end()) {
      // Deletion of a tuple whose insertion predated rule registration,
      // or double delete; nothing to decrement.
      return Status::OK();
    }
    uint32_t& c = it->second.counters[static_cast<size_t>(contributor_ce)];
    if (c > 0) --c;
    bool all_zero = true;
    for (uint32_t v : it->second.counters) {
      if (v != 0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) {
      PRODB_RETURN_IF_ERROR(store->cond_rel->Delete(it->second.cond_row));
      bucket.erase(it);
      --store->pattern_rows;
      if (stats_.patterns_stored > 0) --stats_.patterns_stored;
    }
  }
  return Status::OK();
}

bool PatternMatcher::Supported(int rule, int ce, const Binding& beta) const {
  const Rule& r = rules_[static_cast<size_t>(rule)];
  const ConditionSpec& own = r.lhs.conditions[static_cast<size_t>(ce)];
  auto sit = cond_stores_.find(own.relation);
  if (sit == cond_stores_.end()) return false;
  const CondStore* store = sit->second.get();

  // Which positive RCEs need support?
  std::vector<size_t> rces;
  for (size_t k = 0; k < r.lhs.conditions.size(); ++k) {
    if (static_cast<int>(k) != ce && !r.lhs.conditions[k].negated) {
      rces.push_back(k);
    }
  }
  if (rces.empty()) return true;

  std::lock_guard<std::mutex> lock(store->mu);
  auto bit = store->patterns.find({rule, ce});
  if (bit == store->patterns.end()) return false;

  // Single pass over COND-C patterns for this (rule, ce): a pattern is
  // consistent with the inserted tuple's binding when every variable it
  // narrows agrees with beta.
  std::vector<bool> supported(r.lhs.conditions.size(), false);
  size_t need = rces.size();
  for (const auto& [key, entry] : bit->second) {
    ++const_cast<MatcherStats&>(stats_).tuples_examined;
    bool consistent = true;
    for (size_t v = 0; v < entry.binding.size(); ++v) {
      if (!entry.binding[v].has_value()) continue;
      if (!beta[v].has_value() || !(*beta[v] == *entry.binding[v])) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;
    for (size_t k : rces) {
      if (!supported[k] && entry.counters[k] > 0) {
        supported[k] = true;
        if (--need == 0) return true;
      }
    }
  }
  return false;
}

Status PatternMatcher::FlushOps(std::vector<PropagationOp>* ops) {
  if (ops->empty()) return Status::OK();
  stats_.propagations += ops->size();
  Status result;
  if (pool_ != nullptr && ops->size() > 1) {
    // Parallel propagation, one task per target class: ops against
    // different COND relations touch disjoint CondStores, and within a
    // class the task replays its ops in queue order, so mixed-sign
    // queues (a -1 undoing an earlier +1 on the same pattern) stay
    // correctly ordered — the restriction the old per-op fan-out needed
    // a homogeneous-sign gate for.
    std::vector<const std::string*> class_order;
    std::unordered_map<std::string, std::vector<const PropagationOp*>>
        by_class;
    for (const PropagationOp& op : *ops) {
      const std::string& cls =
          rules_[static_cast<size_t>(op.rule)]
              .lhs.conditions[static_cast<size_t>(op.target_ce)]
              .relation;
      auto [it, fresh] = by_class.try_emplace(cls);
      if (fresh) class_order.push_back(&it->first);
      it->second.push_back(&op);
    }
    std::vector<Status> group_status(class_order.size());
    pool_->ParallelFor(class_order.size(), [&](size_t g) {
      for (const PropagationOp* op : by_class.at(*class_order[g])) {
        Status st = BumpPattern(op->rule, op->target_ce, op->projected,
                                op->contributor_ce, op->delta);
        if (!st.ok()) {
          group_status[g] = st;
          return;
        }
      }
    });
    for (const Status& st : group_status) {
      if (!st.ok()) {
        result = st;
        break;
      }
    }
  } else {
    for (const PropagationOp& op : *ops) {
      Status st = BumpPattern(op.rule, op.target_ce, op.projected,
                              op.contributor_ce, op.delta);
      if (!st.ok()) {
        result = st;
        break;
      }
    }
  }
  ops->clear();
  return result;
}

Status PatternMatcher::OnInsert(const std::string& rel, TupleId id,
                                const Tuple& t) {
  std::vector<uint32_t> cands;
  auto pit = positive_by_class_.find(rel);
  if (pit != positive_by_class_.end()) {
    std::vector<PropagationOp> ops;
    DispatchTargets(false, rel, pit->second.size(), t, &cands);
    for (uint32_t pos : cands) {
      const CeRef& ref = pit->second[pos];
      const Rule& rule = rules_[static_cast<size_t>(ref.rule)];
      const ConditionSpec& ce =
          rule.lhs.conditions[static_cast<size_t>(ref.ce)];
      Binding beta;
      if (!BindSingle(ce, t, rule.lhs.num_vars, &beta)) continue;

      // 1. Match: one search over COND-<rel> (the conflict set is
      //    updated *before* maintenance — the ordering §4.2.3 highlights).
      if (Supported(ref.rule, ref.ce, beta)) {
        std::vector<QueryMatch> matches;
        PRODB_RETURN_IF_ERROR(executor_.EvaluateSeeded(
            rule.lhs, static_cast<size_t>(ref.ce), id, t, &matches));
        for (QueryMatch& m : matches) {
          Instantiation inst;
          inst.rule_index = ref.rule;
          inst.rule_name = rule.name;
          inst.tuple_ids = std::move(m.tuple_ids);
          inst.tuples = std::move(m.tuples);
          inst.binding = std::move(m.binding);
          conflict_set_.Add(std::move(inst));
        }
      }

      // 2. Maintenance: queue pattern propagation to related classes.
      for (size_t k = 0; k < rule.lhs.conditions.size(); ++k) {
        if (static_cast<int>(k) == ref.ce ||
            rule.lhs.conditions[k].negated) {
          continue;
        }
        ops.push_back(PropagationOp{
            ref.rule, static_cast<int>(k), ref.ce, +1,
            Project(ref.rule, ref.ce, static_cast<int>(k), beta)});
      }
    }
    PRODB_RETURN_IF_ERROR(FlushOps(&ops));
  }

  // Negated CEs over this class: consistent instantiations die.
  auto nit = negative_by_class_.find(rel);
  if (nit != negative_by_class_.end()) {
    DispatchTargets(true, rel, nit->second.size(), t, &cands);
    for (uint32_t pos : cands) {
      const CeRef& ref = nit->second[pos];
      const ConditionSpec& ce =
          rules_[static_cast<size_t>(ref.rule)].lhs.conditions
              [static_cast<size_t>(ref.ce)];
      conflict_set_.RemoveIf([&](const Instantiation& inst) {
        if (inst.rule_index != ref.rule) return false;
        Binding b = inst.binding;
        return TupleConsistent(ce, t, &b);
      });
    }
  }
  return Status::OK();
}

Status PatternMatcher::OnDelete(const std::string& rel, TupleId id,
                                const Tuple& t) {
  // Drop instantiations that used the tuple.
  conflict_set_.RemoveIf([&](const Instantiation& inst) {
    const Rule& rule = rules_[static_cast<size_t>(inst.rule_index)];
    for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
      if (rule.lhs.conditions[ce].relation == rel &&
          !rule.lhs.conditions[ce].negated && inst.tuple_ids[ce] == id) {
        return true;
      }
    }
    return false;
  });

  // Decrement / remove the matching patterns this tuple contributed
  // (§4.2.2: "instead of setting Mark bits, we reset them ... Mark bits
  // can be easily replaced by counters"). Candidate filtering preserves
  // insert/delete symmetry: a tuple bumps a pattern only if BindSingle
  // accepted it, which requires its constant tests to pass — and the
  // candidate set always contains every CE whose constant tests pass.
  std::vector<uint32_t> cands;
  auto pit = positive_by_class_.find(rel);
  if (pit != positive_by_class_.end()) {
    DispatchTargets(false, rel, pit->second.size(), t, &cands);
    for (uint32_t pos : cands) {
      const CeRef& ref = pit->second[pos];
      const Rule& rule = rules_[static_cast<size_t>(ref.rule)];
      const ConditionSpec& ce =
          rule.lhs.conditions[static_cast<size_t>(ref.ce)];
      Binding beta;
      if (!BindSingle(ce, t, rule.lhs.num_vars, &beta)) continue;
      for (size_t k = 0; k < rule.lhs.conditions.size(); ++k) {
        if (static_cast<int>(k) == ref.ce ||
            rule.lhs.conditions[k].negated) {
          continue;
        }
        PRODB_RETURN_IF_ERROR(BumpPattern(
            ref.rule, static_cast<int>(k),
            Project(ref.rule, ref.ce, static_cast<int>(k), beta), ref.ce,
            -1));
      }
      ++stats_.propagations;
    }
  }

  // Deletion from a negated class may enable instantiations: evaluate
  // the rule under the binding the blocker carried.
  auto nit = negative_by_class_.find(rel);
  if (nit != negative_by_class_.end()) {
    DispatchTargets(true, rel, nit->second.size(), t, &cands);
    for (uint32_t pos : cands) {
      const CeRef& ref = nit->second[pos];
      const Rule& rule = rules_[static_cast<size_t>(ref.rule)];
      const ConditionSpec& ce =
          rule.lhs.conditions[static_cast<size_t>(ref.ce)];
      Binding beta;
      if (!BindSingle(ce, t, rule.lhs.num_vars, &beta)) continue;
      // Keep only the variables the rule binds positively: those are the
      // join points the blocker constrained.
      std::vector<Instantiation> insts;
      PRODB_RETURN_IF_ERROR(MaterializeInstantiations(
          catalog_, rule, ref.rule, beta, &insts, &stats_));
      for (Instantiation& inst : insts) conflict_set_.Add(std::move(inst));
    }
  }
  return Status::OK();
}

Status PatternMatcher::OnBatch(const ChangeSet& batch) {
  ++stats_.batches;
  if (batch.size() == 1) {
    const Delta& d = batch[0];
    return d.is_insert() ? OnInsert(d.relation, d.id, d.tuple)
                         : OnDelete(d.relation, d.id, d.tuple);
  }

  std::vector<uint32_t> cands;

  // One conflict-set pass retiring instantiations that reference any
  // deleted tuple at a positive CE (per-tuple pays one pass per delete).
  std::unordered_map<std::string, std::unordered_set<TupleId, TupleIdHash>>
      deleted;
  for (const Delta& d : batch) {
    if (d.is_delete()) deleted[d.relation].insert(d.id);
  }
  if (!deleted.empty()) {
    conflict_set_.RemoveIf([&](const Instantiation& inst) {
      const Rule& rule = rules_[static_cast<size_t>(inst.rule_index)];
      for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
        if (rule.lhs.conditions[ce].negated) continue;
        auto it = deleted.find(rule.lhs.conditions[ce].relation);
        if (it != deleted.end() && it->second.count(inst.tuple_ids[ce])) {
          return true;
        }
      }
      return false;
    });
  }

  // One pass retiring instantiations blocked by inserted negated-CE
  // witnesses, restricted to the (delta, CE) pairs the discrimination
  // index says can interact; later additions evaluate against post-batch
  // WM, so they are censored by the blockers already.
  std::vector<std::pair<const Delta*, const CeRef*>> blockers;
  for (const Delta& d : batch) {
    if (!d.is_insert()) continue;
    auto nit = negative_by_class_.find(d.relation);
    if (nit == negative_by_class_.end()) continue;
    DispatchTargets(true, d.relation, nit->second.size(), d.tuple, &cands);
    for (uint32_t pos : cands) {
      blockers.emplace_back(&d, &nit->second[pos]);
    }
  }
  if (!blockers.empty()) {
    conflict_set_.RemoveIf([&](const Instantiation& inst) {
      for (const auto& [d, ref] : blockers) {
        if (ref->rule != inst.rule_index) continue;
        const ConditionSpec& ce =
            rules_[static_cast<size_t>(ref->rule)].lhs.conditions
                [static_cast<size_t>(ref->ce)];
        Binding b = inst.binding;
        if (TupleConsistent(ce, d->tuple, &b)) return true;
      }
      return false;
    });
  }

  // Walk the deltas in order, accumulating ±1 pattern bumps; flush only
  // when a later insert needs to read pattern support, so runs of deltas
  // propagate to the COND relations in one wave. Mixed-sign queues flush
  // sequentially, preserving bump order.
  std::vector<PropagationOp> ops;
  auto dead = [&](const Delta& d) {
    auto it = deleted.find(d.relation);
    return it != deleted.end() && it->second.count(d.id) > 0;
  };
  for (const Delta& d : batch) {
    auto pit = positive_by_class_.find(d.relation);
    if (d.is_insert()) {
      if (pit != positive_by_class_.end()) {
        DispatchTargets(false, d.relation, pit->second.size(), d.tuple,
                        &cands);
        for (uint32_t pos : cands) {
          const CeRef& ref = pit->second[pos];
          const Rule& rule = rules_[static_cast<size_t>(ref.rule)];
          const ConditionSpec& ce =
              rule.lhs.conditions[static_cast<size_t>(ref.ce)];
          Binding beta;
          if (!BindSingle(ce, d.tuple, rule.lhs.num_vars, &beta)) continue;
          // Match via one COND search; a tuple also deleted later in the
          // batch is never seeded (the removal pass already ran, and
          // EvaluateSeeded force-includes its seed).
          if (!dead(d)) {
            PRODB_RETURN_IF_ERROR(FlushOps(&ops));
            if (Supported(ref.rule, ref.ce, beta)) {
              std::vector<QueryMatch> matches;
              PRODB_RETURN_IF_ERROR(executor_.EvaluateSeeded(
                  rule.lhs, static_cast<size_t>(ref.ce), d.id, d.tuple,
                  &matches));
              for (QueryMatch& m : matches) {
                Instantiation inst;
                inst.rule_index = ref.rule;
                inst.rule_name = rule.name;
                inst.tuple_ids = std::move(m.tuple_ids);
                inst.tuples = std::move(m.tuples);
                inst.binding = std::move(m.binding);
                conflict_set_.Add(std::move(inst));
              }
            }
          }
          for (size_t k = 0; k < rule.lhs.conditions.size(); ++k) {
            if (static_cast<int>(k) == ref.ce ||
                rule.lhs.conditions[k].negated) {
              continue;
            }
            ops.push_back(PropagationOp{
                ref.rule, static_cast<int>(k), ref.ce, +1,
                Project(ref.rule, ref.ce, static_cast<int>(k), beta)});
          }
        }
      }
      continue;
    }
    // Delete: queue counter decrements (§4.2.2's counters) and re-derive
    // instantiations a negated-CE blocker was suppressing.
    if (pit != positive_by_class_.end()) {
      DispatchTargets(false, d.relation, pit->second.size(), d.tuple,
                      &cands);
      for (uint32_t pos : cands) {
        const CeRef& ref = pit->second[pos];
        const Rule& rule = rules_[static_cast<size_t>(ref.rule)];
        const ConditionSpec& ce =
            rule.lhs.conditions[static_cast<size_t>(ref.ce)];
        Binding beta;
        if (!BindSingle(ce, d.tuple, rule.lhs.num_vars, &beta)) continue;
        for (size_t k = 0; k < rule.lhs.conditions.size(); ++k) {
          if (static_cast<int>(k) == ref.ce ||
              rule.lhs.conditions[k].negated) {
            continue;
          }
          ops.push_back(PropagationOp{
              ref.rule, static_cast<int>(k), ref.ce, -1,
              Project(ref.rule, ref.ce, static_cast<int>(k), beta)});
        }
      }
    }
    auto nit = negative_by_class_.find(d.relation);
    if (nit != negative_by_class_.end()) {
      DispatchTargets(true, d.relation, nit->second.size(), d.tuple, &cands);
      for (uint32_t pos : cands) {
        const CeRef& ref = nit->second[pos];
        const Rule& rule = rules_[static_cast<size_t>(ref.rule)];
        const ConditionSpec& ce =
            rule.lhs.conditions[static_cast<size_t>(ref.ce)];
        Binding beta;
        if (!BindSingle(ce, d.tuple, rule.lhs.num_vars, &beta)) continue;
        std::vector<Instantiation> insts;
        PRODB_RETURN_IF_ERROR(MaterializeInstantiations(
            catalog_, rule, ref.rule, beta, &insts, &stats_));
        for (Instantiation& inst : insts) conflict_set_.Add(std::move(inst));
      }
    }
  }
  return FlushOps(&ops);
}

size_t PatternMatcher::AuxiliaryFootprintBytes() const {
  size_t total = 0;
  for (const auto& [cls, store] : cond_stores_) {
    std::lock_guard<std::mutex> lock(store->mu);
    total += store->cond_rel->FootprintBytes();
    for (const auto& [key, bucket] : store->patterns) {
      (void)key;
      for (const auto& [pk, entry] : bucket) {
        total += pk.size() + entry.binding.size() * sizeof(Value) +
                 entry.counters.size() * sizeof(uint32_t);
      }
    }
  }
  return total;
}

size_t PatternMatcher::PatternCount(const std::string& cls) const {
  auto it = cond_stores_.find(cls);
  if (it == cond_stores_.end()) return 0;
  std::lock_guard<std::mutex> lock(it->second->mu);
  return it->second->pattern_rows;
}

Relation* PatternMatcher::CondRelation(const std::string& cls) const {
  auto it = cond_stores_.find(cls);
  return it == cond_stores_.end() ? nullptr : it->second->cond_rel;
}

Status PatternMatcher::SyncRuleDef() {
  if (rule_def_ == nullptr) return Status::OK();
  // Recompute check bits set-at-a-time: check = 1 iff some WM tuple
  // matches the CE's own constant tests and intra-CE variable structure.
  std::vector<std::pair<TupleId, Tuple>> rows;
  PRODB_RETURN_IF_ERROR(rule_def_->Scan(
      [&](TupleId id, const Tuple& t) {
        rows.emplace_back(id, t);
        return Status::OK();
      }));
  for (auto& [id, row] : rows) {
    int rule = static_cast<int>(row[0].as_int());
    int cen = static_cast<int>(row[1].as_int());
    const Rule& r = rules_[static_cast<size_t>(rule)];
    const ConditionSpec& ce = r.lhs.conditions[static_cast<size_t>(cen)];
    Relation* wm = catalog_->Get(ce.relation);
    bool satisfied = false;
    PRODB_RETURN_IF_ERROR(wm->Scan([&](TupleId, const Tuple& t) {
      if (!satisfied) {
        Binding b;
        if (BindSingle(ce, t, r.lhs.num_vars, &b)) satisfied = true;
      }
      return Status::OK();
    }));
    // Negated CEs are satisfied by *absence* (§4.2.2 inverts defaults).
    if (ce.negated) satisfied = !satisfied;
    TupleId out;
    PRODB_RETURN_IF_ERROR(rule_def_->Update(
        id,
        Tuple{row[0], row[1], Value(static_cast<int64_t>(satisfied ? 1 : 0))},
        &out));
  }
  return Status::OK();
}

}  // namespace prodb
