#ifndef PRODB_MATCH_DISCRIMINATION_H_
#define PRODB_MATCH_DISCRIMINATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "db/predicate.h"
#include "index/interval_tree.h"

namespace prodb {

/// Constant-test discrimination index (§2.3 / [STON86a]): sublinear
/// dispatch from a WM tuple to the registered condition tests that can
/// possibly accept it, replacing the per-delta linear walk over every
/// alpha node / condition element of the tuple's class.
///
/// Entries are conjunctions of ConstantTests registered under a caller-
/// chosen id (an index into the caller's per-class dispatch vector).
/// Each entry is classified once, at registration, into one of three
/// tiers by its most discriminating classifiable test:
///
///  * eq tier — the entry has an `attr == constant` test: it is hashed
///    under (attr, constant). A lookup probes one bucket per indexed
///    attribute with the tuple's value at that attribute.
///  * range tier — the entry has bounded comparison tests against
///    numeric constants on some attribute: the conjunction of those
///    bounds forms one interval [lo, hi] in a per-attribute interval
///    tree, found by an O(log n + k) stab with the tuple's value.
///  * residual tier — nothing classifiable (no tests, only `<>` tests,
///    or only comparisons against non-numeric constants): the entry is
///    a candidate for every tuple.
///
/// Contract: Lookup returns a *superset* of the entries whose tests all
/// pass (sorted ascending, duplicate-free). False positives are fine —
/// callers re-run the exact Matches/TupleConsistent on every candidate —
/// but an entry whose tests pass is never missing. The over-
/// approximations are: strict bounds are widened to inclusive interval
/// endpoints, and only one test per entry discriminates (the rest are
/// re-checked by the caller).
///
/// Cross-type ordering makes the range tier subtle: Value::Compare ranks
/// null < numbers < symbols, so a symbol *does* satisfy `attr > 5`.
/// Lookup therefore stabs with -inf for null values and +inf for
/// symbols, which lands them in exactly the intervals whose tests they
/// could pass under that total order.
class DiscriminationIndex {
 public:
  /// Registers entry `id` (must be unused) with the given conjunction.
  void Add(uint32_t id, const std::vector<ConstantTest>& tests);

  /// Appends the candidate ids for `t` to *out and sorts the result
  /// (duplicate-free by construction: each entry lives in one tier under
  /// one key). Attributes beyond t.arity() never contribute.
  void Lookup(const Tuple& t, std::vector<uint32_t>* out) const;

  /// Forces the lazily-rebuilt range trees into their built state so
  /// subsequent Lookups are pure reads (the concurrent engine drives
  /// matcher maintenance from worker threads). Matchers call this at
  /// rule-registration time, before any WM activity.
  void Seal() const;

  size_t size() const { return total_; }
  size_t eq_entries() const { return eq_count_; }
  size_t range_entries() const { return range_count_; }
  size_t residual_entries() const { return residual_.size(); }

 private:
  // attr -> constant -> entry ids equality-testing that (attr, constant).
  std::unordered_map<int,
                     std::unordered_map<Value, std::vector<uint32_t>,
                                        ValueHash>>
      eq_buckets_;
  // attr -> intervals of entries whose bounds on that attr intersect to
  // [lo, hi] (inclusive; strict bounds widened).
  std::unordered_map<int, IntervalTree> range_trees_;
  std::vector<uint32_t> residual_;
  size_t eq_count_ = 0;
  size_t range_count_ = 0;
  size_t total_ = 0;
};

}  // namespace prodb

#endif  // PRODB_MATCH_DISCRIMINATION_H_
