#ifndef PRODB_MATCH_MATCHER_H_
#define PRODB_MATCH_MATCHER_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/change_set.h"
#include "common/status.h"
#include "db/catalog.h"
#include "lang/rule.h"
#include "match/conflict_set.h"
#include "match/sharding.h"

namespace prodb {

/// Statistics every matcher reports, used by E2/E4 benchmarks.
/// Counters are atomics because the concurrent execution engine (§5)
/// drives matcher maintenance from multiple worker transactions.
struct MatcherStats {
  std::atomic<uint64_t> tuples_examined{0};  // WM/COND tuples touched
  std::atomic<uint64_t> patterns_stored{0};  // tokens / patterns resident
  std::atomic<uint64_t> propagations{0};     // propagation steps
  std::atomic<uint64_t> batches{0};          // OnBatch invocations
  // Memory-probe accounting (§3.2/§4.1.2): a probe is one keyed lookup
  // into a token memory or WM relation; visited counters split tuples
  // touched through a probe from tuples touched by a full scan, so
  // benchmarks can assert the index path is taken rather than inferring
  // it from wall-clock.
  std::atomic<uint64_t> index_probes{0};
  std::atomic<uint64_t> probe_tokens_visited{0};
  std::atomic<uint64_t> scan_tokens_visited{0};
  // Dispatch accounting (§2.3 / [STON86a] predicate indexing): one
  // alpha_tests_evaluated per full constant-test evaluation of an alpha
  // node / condition element against a delta tuple; candidates_visited
  // counts the entries the discrimination index nominated (equal to
  // alpha_tests_evaluated on the indexed path, the full per-class count
  // on the linear-scan path — the ratio is the index's win).
  std::atomic<uint64_t> alpha_tests_evaluated{0};
  std::atomic<uint64_t> candidates_visited{0};
  // Join-planning accounting (src/plan): plans_built counts orders
  // chosen at rule registration, replans counts drift-triggered
  // re-plans. est_card_err_millinats accumulates the estimator's
  // running log-ratio error |ln((1+actual)/(1+estimated))| in
  // milli-nats over est_card_samples observations, so estimator
  // quality is observable rather than guessed (mean error =
  // err_millinats / 1000 / samples; 0 = perfect, ln 2 ≈ 0.69 = off by
  // 2x on average).
  std::atomic<uint64_t> plans_built{0};
  std::atomic<uint64_t> replans{0};
  std::atomic<uint64_t> est_card_err_millinats{0};
  std::atomic<uint64_t> est_card_samples{0};
  // Multi-delta WM batches that *would* have taken the sharded parallel
  // apply but fell back to the serial walk because a WAL is attached
  // (log-record ordering is a serial concern — see DESIGN.md "Sharded
  // match × durability"). Durable server deployments watch this to see
  // they are not getting parallel apply.
  std::atomic<uint64_t> sharded_apply_serialized{0};

  /// Folds one (estimated, actual) cardinality observation into the
  /// running log-ratio error.
  void ObserveCardEstimate(double estimated, double actual);

  MatcherStats() = default;
  MatcherStats(const MatcherStats& o)
      : tuples_examined(o.tuples_examined.load()),
        patterns_stored(o.patterns_stored.load()),
        propagations(o.propagations.load()),
        batches(o.batches.load()),
        index_probes(o.index_probes.load()),
        probe_tokens_visited(o.probe_tokens_visited.load()),
        scan_tokens_visited(o.scan_tokens_visited.load()),
        alpha_tests_evaluated(o.alpha_tests_evaluated.load()),
        candidates_visited(o.candidates_visited.load()),
        plans_built(o.plans_built.load()),
        replans(o.replans.load()),
        est_card_err_millinats(o.est_card_err_millinats.load()),
        est_card_samples(o.est_card_samples.load()),
        sharded_apply_serialized(o.sharded_apply_serialized.load()) {}
};

/// Interface shared by the four matching architectures the paper
/// compares: in-memory Rete (§3.1), DBMS-backed Rete (§3.2), the query
/// ("simplified") matcher (§4.1), and the matching-pattern matcher
/// (§4.2). The execution engine mutates WM relations and notifies the
/// matcher, which maintains the conflict set incrementally.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Registers a rule. Must be called before any WM activity; matchers
  /// may precompute networks or COND relations here.
  virtual Status AddRule(const Rule& rule) = 0;

  /// A tuple was inserted into WM relation `rel` with id `id`.
  virtual Status OnInsert(const std::string& rel, TupleId id,
                          const Tuple& t) = 0;

  /// A tuple was deleted from WM relation `rel`.
  virtual Status OnDelete(const std::string& rel, TupleId id,
                          const Tuple& t) = 0;

  /// A whole set of WM changes arrives at once — a transaction's ∆ins/∆del
  /// (§5.2) or a bulk load. Relations already reflect the entire batch
  /// when this is called. The default walks the deltas in order through
  /// OnInsert/OnDelete; matchers override it to propagate set-at-a-time.
  virtual Status OnBatch(const ChangeSet& batch);

  virtual ConflictSet& conflict_set() = 0;

  /// Bytes of auxiliary matcher state (Rete memories, COND relations,
  /// matching patterns) — the space axis of §4.2.3.
  virtual size_t AuxiliaryFootprintBytes() const = 0;

  virtual const MatcherStats& stats() const = 0;
  virtual std::string name() const = 0;

  /// Per-shard counters for matchers running partitioned match (empty
  /// for serial matchers / serial configurations). Index = shard.
  virtual std::vector<ShardStats> ShardStatsSnapshot() const { return {}; }

  /// Registered rules (shared helper for engines).
  virtual const std::vector<Rule>& rules() const = 0;

  /// WorkingMemory reports a WAL-forced serial fallback of the sharded
  /// batch apply here (the matcher owns the stats the apply path is
  /// accounted under). No-op for matchers without writable stats.
  void NoteShardedApplySerialized() {
    if (MatcherStats* s = mutable_stats()) {
      s->sharded_apply_serialized.fetch_add(1, std::memory_order_relaxed);
    }
  }

 protected:
  /// Writable stats, used by the shared OnBatch bookkeeping. Matchers
  /// that keep a MatcherStats return it here so batch accounting is
  /// uniform across architectures.
  virtual MatcherStats* mutable_stats() { return nullptr; }
};

/// Materializes instantiations from a fully bound rule: per positive CE,
/// selects the WM tuples consistent with the binding (a selection, not a
/// join — §5.1: "attribute values in each matching pattern provide the
/// selection criterion"), then forms all combinations; negated CEs are
/// verified absent. Appends to *out.
Status MaterializeInstantiations(Catalog* catalog, const Rule& rule,
                                 int rule_index, const Binding& binding,
                                 std::vector<Instantiation>* out,
                                 MatcherStats* stats = nullptr);

}  // namespace prodb

#endif  // PRODB_MATCH_MATCHER_H_
