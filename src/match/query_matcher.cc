#include "match/query_matcher.h"

#include <set>
#include <unordered_set>

namespace prodb {

Status QueryMatcher::AddRule(const Rule& rule) {
  int rule_index = static_cast<int>(rules_.size());
  const bool declare = executor_.options().use_indexes &&
                       executor_.options().declare_rule_indexes;
  for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
    const ConditionSpec& c = rule.lhs.conditions[ce];
    Relation* rel = catalog_->Get(c.relation);
    if (rel == nullptr) {
      return Status::NotFound("rule " + rule.name + ": relation " +
                              c.relation);
    }
    if (declare) {
      // Hash indexes on every attribute the executor can probe with a
      // bound equality (§4.1.2): seeded re-evaluation then touches only
      // the joining tuples instead of scanning each WM relation.
      for (const VarUse& u : c.var_uses) {
        if (u.op == CompareOp::kEq && !rel->HasHashIndex(u.attr)) {
          PRODB_RETURN_IF_ERROR(rel->CreateHashIndex(u.attr));
        }
      }
      for (const ConstantTest& t : c.constant_tests) {
        if (t.op == CompareOp::kEq && !rel->HasHashIndex(t.attr)) {
          PRODB_RETURN_IF_ERROR(rel->CreateHashIndex(t.attr));
        }
      }
    }
    auto& bucket =
        c.negated ? negative_by_class_[c.relation]
                  : positive_by_class_[c.relation];
    bucket.push_back(CeRef{rule_index, static_cast<int>(ce)});
  }
  rules_.push_back(rule);
  return Status::OK();
}

Status QueryMatcher::SeedAndAdd(int rule_index, int ce, TupleId id,
                                const Tuple& t) {
  const Rule& rule = rules_[static_cast<size_t>(rule_index)];
  std::vector<QueryMatch> matches;
  PRODB_RETURN_IF_ERROR(executor_.EvaluateSeeded(
      rule.lhs, static_cast<size_t>(ce), id, t, &matches));
  for (QueryMatch& m : matches) {
    ++stats_.tuples_examined;
    Instantiation inst;
    inst.rule_index = rule_index;
    inst.rule_name = rule.name;
    inst.tuple_ids = std::move(m.tuple_ids);
    inst.tuples = std::move(m.tuples);
    inst.binding = std::move(m.binding);
    conflict_set_.Add(std::move(inst));
  }
  return Status::OK();
}

Status QueryMatcher::OnInsert(const std::string& rel, TupleId id,
                              const Tuple& t) {
  // Positive CEs over this class: re-evaluate the LHS seeded with the
  // new tuple (§4.1.2's re-computation of joins).
  auto pit = positive_by_class_.find(rel);
  if (pit != positive_by_class_.end()) {
    for (const CeRef& ref : pit->second) {
      ++stats_.propagations;
      PRODB_RETURN_IF_ERROR(SeedAndAdd(ref.rule, ref.ce, id, t));
    }
  }
  // Negated CEs over this class: the new tuple may invalidate existing
  // instantiations whose binding it is consistent with.
  auto nit = negative_by_class_.find(rel);
  if (nit != negative_by_class_.end()) {
    for (const CeRef& ref : nit->second) {
      const ConditionSpec& ce =
          rules_[static_cast<size_t>(ref.rule)].lhs.conditions
              [static_cast<size_t>(ref.ce)];
      conflict_set_.RemoveIf([&](const Instantiation& inst) {
        if (inst.rule_index != ref.rule) return false;
        Binding b = inst.binding;
        return TupleConsistent(ce, t, &b);
      });
    }
  }
  return Status::OK();
}

Status QueryMatcher::OnDelete(const std::string& rel, TupleId id,
                              const Tuple& t) {
  (void)t;
  // Drop instantiations that referenced the deleted tuple at a CE over
  // this relation.
  conflict_set_.RemoveIf([&](const Instantiation& inst) {
    const Rule& rule = rules_[static_cast<size_t>(inst.rule_index)];
    for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
      if (rule.lhs.conditions[ce].relation == rel &&
          !rule.lhs.conditions[ce].negated && inst.tuple_ids[ce] == id) {
        return true;
      }
    }
    return false;
  });
  // A deletion can enable rules negatively dependent on this relation:
  // re-evaluate them from scratch.
  auto nit = negative_by_class_.find(rel);
  if (nit != negative_by_class_.end()) {
    for (const CeRef& ref : nit->second) {
      const Rule& rule = rules_[static_cast<size_t>(ref.rule)];
      std::vector<QueryMatch> matches;
      PRODB_RETURN_IF_ERROR(executor_.Evaluate(rule.lhs, &matches));
      ++stats_.propagations;
      for (QueryMatch& m : matches) {
        Instantiation inst;
        inst.rule_index = ref.rule;
        inst.rule_name = rule.name;
        inst.tuple_ids = std::move(m.tuple_ids);
        inst.tuples = std::move(m.tuples);
        inst.binding = std::move(m.binding);
        conflict_set_.Add(std::move(inst));
      }
    }
  }
  return Status::OK();
}

Status QueryMatcher::OnBatch(const ChangeSet& batch) {
  ++stats_.batches;
  if (batch.size() == 1) {
    const Delta& d = batch[0];
    return d.is_insert() ? OnInsert(d.relation, d.id, d.tuple)
                         : OnDelete(d.relation, d.id, d.tuple);
  }

  // 1. One conflict-set pass retiring every instantiation that references
  //    a deleted tuple at a positive CE (the per-tuple path pays one full
  //    pass per deletion).
  std::map<std::string, std::unordered_set<TupleId, TupleIdHash>> deleted;
  for (const Delta& d : batch) {
    if (d.is_delete()) deleted[d.relation].insert(d.id);
  }
  if (!deleted.empty()) {
    conflict_set_.RemoveIf([&](const Instantiation& inst) {
      const Rule& rule = rules_[static_cast<size_t>(inst.rule_index)];
      for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
        if (rule.lhs.conditions[ce].negated) continue;
        auto it = deleted.find(rule.lhs.conditions[ce].relation);
        if (it != deleted.end() && it->second.count(inst.tuple_ids[ce])) {
          return true;
        }
      }
      return false;
    });
  }

  // 2. One pass retiring instantiations blocked by inserted tuples via
  //    negated CEs. Additions below evaluate against the post-batch WM,
  //    so a blocker inserted anywhere in the batch censors them already.
  bool negated_inserts = false;
  for (const Delta& d : batch) {
    if (d.is_insert() && negative_by_class_.count(d.relation)) {
      negated_inserts = true;
      break;
    }
  }
  if (negated_inserts) {
    conflict_set_.RemoveIf([&](const Instantiation& inst) {
      for (const Delta& d : batch) {
        if (!d.is_insert()) continue;
        auto nit = negative_by_class_.find(d.relation);
        if (nit == negative_by_class_.end()) continue;
        for (const CeRef& ref : nit->second) {
          if (ref.rule != inst.rule_index) continue;
          const ConditionSpec& ce =
              rules_[static_cast<size_t>(ref.rule)].lhs.conditions
                  [static_cast<size_t>(ref.ce)];
          Binding b = inst.binding;
          if (TupleConsistent(ce, d.tuple, &b)) return true;
        }
      }
      return false;
    });
  }

  // 3. Seeded evaluation per inserted tuple, grouped by (rule, ce) so a
  //    batch counts one propagation step per affected condition element
  //    rather than one per tuple. A tuple both inserted and deleted
  //    within the batch is never seeded: EvaluateSeeded force-includes
  //    its seed, and the removal pass above has already run.
  auto dead = [&](const Delta& d) {
    auto it = deleted.find(d.relation);
    return it != deleted.end() && it->second.count(d.id) > 0;
  };
  for (const auto& [rel, refs] : positive_by_class_) {
    for (const CeRef& ref : refs) {
      bool counted = false;
      for (const Delta& d : batch) {
        if (!d.is_insert() || d.relation != rel || dead(d)) continue;
        if (!counted) {
          ++stats_.propagations;
          counted = true;
        }
        PRODB_RETURN_IF_ERROR(SeedAndAdd(ref.rule, ref.ce, d.id, d.tuple));
      }
    }
  }

  // 4. Each rule negatively dependent on a relation the batch deleted
  //    from is re-evaluated once — not once per deleted tuple, the
  //    amortization §4.1.2's "re-computation of joins" cost begs for.
  std::set<int> reeval;
  for (const auto& [rel, ids] : deleted) {
    (void)ids;
    auto nit = negative_by_class_.find(rel);
    if (nit == negative_by_class_.end()) continue;
    for (const CeRef& ref : nit->second) reeval.insert(ref.rule);
  }
  for (int rule_index : reeval) {
    const Rule& rule = rules_[static_cast<size_t>(rule_index)];
    std::vector<QueryMatch> matches;
    PRODB_RETURN_IF_ERROR(executor_.Evaluate(rule.lhs, &matches));
    ++stats_.propagations;
    for (QueryMatch& m : matches) {
      Instantiation inst;
      inst.rule_index = rule_index;
      inst.rule_name = rule.name;
      inst.tuple_ids = std::move(m.tuple_ids);
      inst.tuples = std::move(m.tuples);
      inst.binding = std::move(m.binding);
      conflict_set_.Add(std::move(inst));
    }
  }
  return Status::OK();
}

size_t QueryMatcher::AuxiliaryFootprintBytes() const {
  // The whole point of §4.1: no intermediate results are stored. Only the
  // per-class CE maps exist, which are O(#rules).
  size_t total = 0;
  for (const auto& [name, refs] : positive_by_class_) {
    total += name.size() + refs.size() * sizeof(CeRef);
  }
  for (const auto& [name, refs] : negative_by_class_) {
    total += name.size() + refs.size() * sizeof(CeRef);
  }
  return total;
}

}  // namespace prodb
