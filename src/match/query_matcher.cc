#include "match/query_matcher.h"

namespace prodb {

Status QueryMatcher::AddRule(const Rule& rule) {
  int rule_index = static_cast<int>(rules_.size());
  for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
    const ConditionSpec& c = rule.lhs.conditions[ce];
    if (catalog_->Get(c.relation) == nullptr) {
      return Status::NotFound("rule " + rule.name + ": relation " +
                              c.relation);
    }
    auto& bucket =
        c.negated ? negative_by_class_[c.relation]
                  : positive_by_class_[c.relation];
    bucket.push_back(CeRef{rule_index, static_cast<int>(ce)});
  }
  rules_.push_back(rule);
  return Status::OK();
}

Status QueryMatcher::OnInsert(const std::string& rel, TupleId id,
                              const Tuple& t) {
  // Positive CEs over this class: re-evaluate the LHS seeded with the
  // new tuple (§4.1.2's re-computation of joins).
  auto pit = positive_by_class_.find(rel);
  if (pit != positive_by_class_.end()) {
    for (const CeRef& ref : pit->second) {
      const Rule& rule = rules_[static_cast<size_t>(ref.rule)];
      std::vector<QueryMatch> matches;
      PRODB_RETURN_IF_ERROR(executor_.EvaluateSeeded(
          rule.lhs, static_cast<size_t>(ref.ce), id, t, &matches));
      ++stats_.propagations;
      for (QueryMatch& m : matches) {
        ++stats_.tuples_examined;
        Instantiation inst;
        inst.rule_index = ref.rule;
        inst.rule_name = rule.name;
        inst.tuple_ids = std::move(m.tuple_ids);
        inst.tuples = std::move(m.tuples);
        inst.binding = std::move(m.binding);
        conflict_set_.Add(std::move(inst));
      }
    }
  }
  // Negated CEs over this class: the new tuple may invalidate existing
  // instantiations whose binding it is consistent with.
  auto nit = negative_by_class_.find(rel);
  if (nit != negative_by_class_.end()) {
    for (const CeRef& ref : nit->second) {
      const ConditionSpec& ce =
          rules_[static_cast<size_t>(ref.rule)].lhs.conditions
              [static_cast<size_t>(ref.ce)];
      conflict_set_.RemoveIf([&](const Instantiation& inst) {
        if (inst.rule_index != ref.rule) return false;
        Binding b = inst.binding;
        return TupleConsistent(ce, t, &b);
      });
    }
  }
  return Status::OK();
}

Status QueryMatcher::OnDelete(const std::string& rel, TupleId id,
                              const Tuple& t) {
  (void)t;
  // Drop instantiations that referenced the deleted tuple at a CE over
  // this relation.
  conflict_set_.RemoveIf([&](const Instantiation& inst) {
    const Rule& rule = rules_[static_cast<size_t>(inst.rule_index)];
    for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
      if (rule.lhs.conditions[ce].relation == rel &&
          !rule.lhs.conditions[ce].negated && inst.tuple_ids[ce] == id) {
        return true;
      }
    }
    return false;
  });
  // A deletion can enable rules negatively dependent on this relation:
  // re-evaluate them from scratch.
  auto nit = negative_by_class_.find(rel);
  if (nit != negative_by_class_.end()) {
    for (const CeRef& ref : nit->second) {
      const Rule& rule = rules_[static_cast<size_t>(ref.rule)];
      std::vector<QueryMatch> matches;
      PRODB_RETURN_IF_ERROR(executor_.Evaluate(rule.lhs, &matches));
      ++stats_.propagations;
      for (QueryMatch& m : matches) {
        Instantiation inst;
        inst.rule_index = ref.rule;
        inst.rule_name = rule.name;
        inst.tuple_ids = std::move(m.tuple_ids);
        inst.tuples = std::move(m.tuples);
        inst.binding = std::move(m.binding);
        conflict_set_.Add(std::move(inst));
      }
    }
  }
  return Status::OK();
}

size_t QueryMatcher::AuxiliaryFootprintBytes() const {
  // The whole point of §4.1: no intermediate results are stored. Only the
  // per-class CE maps exist, which are O(#rules).
  size_t total = 0;
  for (const auto& [name, refs] : positive_by_class_) {
    total += name.size() + refs.size() * sizeof(CeRef);
  }
  for (const auto& [name, refs] : negative_by_class_) {
    total += name.size() + refs.size() * sizeof(CeRef);
  }
  return total;
}

}  // namespace prodb
