#include "match/query_matcher.h"

#include <chrono>
#include <set>
#include <unordered_set>

namespace prodb {

Status QueryMatcher::AddRule(const Rule& rule) {
  int rule_index = static_cast<int>(rules_.size());
  const bool declare = executor_.options().use_indexes &&
                       executor_.options().declare_rule_indexes;
  for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
    const ConditionSpec& c = rule.lhs.conditions[ce];
    Relation* rel = catalog_->Get(c.relation);
    if (rel == nullptr) {
      return Status::NotFound("rule " + rule.name + ": relation " +
                              c.relation);
    }
    // Register statistics for every LHS relation while registration is
    // still single-threaded (seeding from current contents, so rules
    // added after a preload see real cardinalities); the map is then
    // frozen and OnBatch updates it lock-free from engine threads.
    cat_stats_.Register(c.relation, rel);
    if (declare) {
      // Hash indexes on every attribute the executor can probe with a
      // bound equality (§4.1.2): seeded re-evaluation then touches only
      // the joining tuples instead of scanning each WM relation.
      for (const VarUse& u : c.var_uses) {
        if (u.op == CompareOp::kEq && !rel->HasHashIndex(u.attr)) {
          PRODB_RETURN_IF_ERROR(rel->CreateHashIndex(u.attr));
        }
      }
      for (const ConstantTest& t : c.constant_tests) {
        if (t.op == CompareOp::kEq && !rel->HasHashIndex(t.attr)) {
          PRODB_RETURN_IF_ERROR(rel->CreateHashIndex(t.attr));
        }
      }
    }
    auto& bucket =
        c.negated ? negative_by_class_[c.relation]
                  : positive_by_class_[c.relation];
    auto& disc =
        c.negated ? negative_disc_[c.relation] : positive_disc_[c.relation];
    // Always registered (cheap, and the ablation variants keep the
    // structure comparable); the dispatch flag decides whether lookups
    // happen.
    disc.Add(static_cast<uint32_t>(bucket.size()), c.constant_tests);
    disc.Seal();
    bucket.push_back(CeRef{rule_index, static_cast<int>(ce)});
  }
  rules_.push_back(rule);
  // Plan the rule's join sequence (syntactic when stats are empty — the
  // usual case at registration time; the drift check upgrades it once
  // data arrives). Copy-on-write republication keeps readers lock-free.
  auto cur = plans_.load();
  auto next = std::make_shared<std::vector<JoinPlan>>(*cur);
  next->push_back(planner_.Plan(rule.lhs));
  ++stats_.plans_built;
  plans_.store(std::shared_ptr<const std::vector<JoinPlan>>(std::move(next)));
  return Status::OK();
}

void QueryMatcher::MaybeReplan(size_t deltas) {
  if (!planner_.options().enable || rules_.empty()) return;
  const uint64_t pending =
      deltas_since_plan_check_.fetch_add(deltas, std::memory_order_relaxed) +
      deltas;
  if (pending < 64) return;  // rate-limit the drift scan
  std::unique_lock<std::mutex> lock(replan_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // another thread is already checking
  deltas_since_plan_check_.store(0, std::memory_order_relaxed);
  auto cur = plans_.load();
  bool drift = false;
  for (const JoinPlan& p : *cur) {
    if (planner_.NeedsReplan(p)) {
      drift = true;
      break;
    }
  }
  if (!drift) return;
  // Off the batch counter path: re-sketch aged histograms/distinct
  // bitmaps, then recompute every plan against the fresh statistics.
  cat_stats_.RefreshStale(catalog_);
  auto next = std::make_shared<std::vector<JoinPlan>>();
  next->reserve(rules_.size());
  for (const Rule& r : rules_) {
    next->push_back(planner_.Plan(r.lhs));
    ++stats_.plans_built;
  }
  ++stats_.replans;
  plans_.store(std::shared_ptr<const std::vector<JoinPlan>>(std::move(next)));
}

void QueryMatcher::DispatchTargets(bool negated, const std::string& rel,
                                   size_t n, const Tuple& t,
                                   std::vector<uint32_t>* out) {
  out->clear();
  if (executor_.options().discriminate_dispatch) {
    out->reserve(last_candidates_.load(std::memory_order_relaxed));
    const auto& discs = negated ? negative_disc_ : positive_disc_;
    auto it = discs.find(rel);
    if (it != discs.end()) it->second.Lookup(t, out);
    last_candidates_.store(static_cast<uint32_t>(out->size()),
                           std::memory_order_relaxed);
    stats_.candidates_visited += out->size();
  } else {
    out->reserve(n);
    for (uint32_t i = 0; i < static_cast<uint32_t>(n); ++i) {
      out->push_back(i);
    }
  }
  stats_.alpha_tests_evaluated += out->size();
}

Status QueryMatcher::SeedMatches(int rule_index, int ce, TupleId id,
                                 const Tuple& t,
                                 std::vector<Instantiation>* out) {
  const Rule& rule = rules_[static_cast<size_t>(rule_index)];
  // Planned evaluation order (snapshot — replans swap the whole vector).
  std::shared_ptr<const std::vector<JoinPlan>> plans;
  const JoinPlan* plan = nullptr;
  if (planner_.options().enable) {
    plans = plans_.load();
    if (static_cast<size_t>(rule_index) < plans->size()) {
      plan = &(*plans)[static_cast<size_t>(rule_index)];
    }
  }
  std::vector<QueryMatch> matches;
  PRODB_RETURN_IF_ERROR(executor_.EvaluateSeeded(
      rule.lhs, static_cast<size_t>(ce), id, t, &matches,
      plan == nullptr ? nullptr : &plan->order));
  if (plan != nullptr) {
    // Estimator quality: a seed pins one tuple of its relation, so the
    // expected match count is est_final / |seed relation|.
    const RelationStats* rs =
        cat_stats_.Get(rule.lhs.conditions[static_cast<size_t>(ce)].relation);
    const double card =
        rs == nullptr ? 1.0
                      : static_cast<double>(std::max<int64_t>(
                            1, rs->cardinality()));
    stats_.ObserveCardEstimate(plan->est_final / card,
                               static_cast<double>(matches.size()));
  }
  out->reserve(out->size() + matches.size());
  for (QueryMatch& m : matches) {
    ++stats_.tuples_examined;
    Instantiation inst;
    inst.rule_index = rule_index;
    inst.rule_name = rule.name;
    inst.tuple_ids = std::move(m.tuple_ids);
    inst.tuples = std::move(m.tuples);
    inst.binding = std::move(m.binding);
    out->push_back(std::move(inst));
  }
  return Status::OK();
}

Status QueryMatcher::SeedAndAdd(int rule_index, int ce, TupleId id,
                                const Tuple& t) {
  std::vector<Instantiation> insts;
  PRODB_RETURN_IF_ERROR(SeedMatches(rule_index, ce, id, t, &insts));
  for (Instantiation& inst : insts) conflict_set_.Add(std::move(inst));
  return Status::OK();
}

Status QueryMatcher::EvaluateRule(int rule_index,
                                  std::vector<Instantiation>* out) {
  const Rule& rule = rules_[static_cast<size_t>(rule_index)];
  std::shared_ptr<const std::vector<JoinPlan>> plans;
  const JoinPlan* plan = nullptr;
  if (planner_.options().enable) {
    plans = plans_.load();
    if (static_cast<size_t>(rule_index) < plans->size()) {
      plan = &(*plans)[static_cast<size_t>(rule_index)];
    }
  }
  std::vector<QueryMatch> matches;
  PRODB_RETURN_IF_ERROR(executor_.Evaluate(
      rule.lhs, &matches, plan == nullptr ? nullptr : &plan->order));
  if (plan != nullptr) {
    stats_.ObserveCardEstimate(plan->est_final,
                               static_cast<double>(matches.size()));
  }
  out->reserve(out->size() + matches.size());
  for (QueryMatch& m : matches) {
    Instantiation inst;
    inst.rule_index = rule_index;
    inst.rule_name = rule.name;
    inst.tuple_ids = std::move(m.tuple_ids);
    inst.tuples = std::move(m.tuples);
    inst.binding = std::move(m.binding);
    out->push_back(std::move(inst));
  }
  return Status::OK();
}

Status QueryMatcher::OnInsert(const std::string& rel, TupleId id,
                              const Tuple& t) {
  if (planner_.options().enable) cat_stats_.OnDelta(rel, t, +1);
  std::vector<uint32_t> cands;
  // Positive CEs over this class whose constant tests can accept the new
  // tuple: re-evaluate the LHS seeded with it (§4.1.2's re-computation
  // of joins).
  auto pit = positive_by_class_.find(rel);
  if (pit != positive_by_class_.end()) {
    DispatchTargets(false, rel, pit->second.size(), t, &cands);
    for (uint32_t pos : cands) {
      const CeRef& ref = pit->second[pos];
      ++stats_.propagations;
      PRODB_RETURN_IF_ERROR(SeedAndAdd(ref.rule, ref.ce, id, t));
    }
  }
  // Negated CEs over this class: the new tuple may invalidate existing
  // instantiations whose binding it is consistent with.
  auto nit = negative_by_class_.find(rel);
  if (nit != negative_by_class_.end()) {
    DispatchTargets(true, rel, nit->second.size(), t, &cands);
    for (uint32_t pos : cands) {
      const CeRef& ref = nit->second[pos];
      const ConditionSpec& ce =
          rules_[static_cast<size_t>(ref.rule)].lhs.conditions
              [static_cast<size_t>(ref.ce)];
      conflict_set_.RemoveIf([&](const Instantiation& inst) {
        if (inst.rule_index != ref.rule) return false;
        Binding b = inst.binding;
        return TupleConsistent(ce, t, &b);
      });
    }
  }
  MaybeReplan(1);
  return Status::OK();
}

Status QueryMatcher::OnDelete(const std::string& rel, TupleId id,
                              const Tuple& t) {
  if (planner_.options().enable) cat_stats_.OnDelta(rel, t, -1);
  // Drop instantiations that referenced the deleted tuple at a CE over
  // this relation.
  conflict_set_.RemoveIf([&](const Instantiation& inst) {
    const Rule& rule = rules_[static_cast<size_t>(inst.rule_index)];
    for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
      if (rule.lhs.conditions[ce].relation == rel &&
          !rule.lhs.conditions[ce].negated && inst.tuple_ids[ce] == id) {
        return true;
      }
    }
    return false;
  });
  // A deletion can enable rules negatively dependent on this relation:
  // re-evaluate them from scratch. Only CEs whose constant tests accept
  // the dead tuple need it — a tuple failing them never blocked anything.
  auto nit = negative_by_class_.find(rel);
  if (nit != negative_by_class_.end()) {
    std::vector<uint32_t> cands;
    DispatchTargets(true, rel, nit->second.size(), t, &cands);
    for (uint32_t pos : cands) {
      const CeRef& ref = nit->second[pos];
      std::vector<Instantiation> insts;
      PRODB_RETURN_IF_ERROR(EvaluateRule(ref.rule, &insts));
      ++stats_.propagations;
      for (Instantiation& inst : insts) conflict_set_.Add(std::move(inst));
    }
  }
  MaybeReplan(1);
  return Status::OK();
}

Status QueryMatcher::OnBatch(const ChangeSet& batch) {
  ++stats_.batches;
  if (batch.size() == 1) {
    const Delta& d = batch[0];
    return d.is_insert() ? OnInsert(d.relation, d.id, d.tuple)
                         : OnDelete(d.relation, d.id, d.tuple);
  }
  if (planner_.options().enable) cat_stats_.OnBatch(batch);
  const bool sharded = sharding_.enabled();
  std::unique_lock<std::mutex> lock(batch_mu_, std::defer_lock);
  if (sharded) lock.lock();
  std::vector<uint32_t> cands;

  // 1. One conflict-set pass retiring every instantiation that references
  //    a deleted tuple at a positive CE (the per-tuple path pays one full
  //    pass per deletion).
  std::unordered_map<std::string, std::unordered_set<TupleId, TupleIdHash>>
      deleted;
  for (const Delta& d : batch) {
    if (d.is_delete()) deleted[d.relation].insert(d.id);
  }
  if (!deleted.empty()) {
    conflict_set_.RemoveIf([&](const Instantiation& inst) {
      const Rule& rule = rules_[static_cast<size_t>(inst.rule_index)];
      for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
        if (rule.lhs.conditions[ce].negated) continue;
        auto it = deleted.find(rule.lhs.conditions[ce].relation);
        if (it != deleted.end() && it->second.count(inst.tuple_ids[ce])) {
          return true;
        }
      }
      return false;
    });
  }

  // 2. One pass retiring instantiations blocked by inserted tuples via
  //    negated CEs, restricted to the (delta, CE) pairs the
  //    discrimination index says can interact. Additions below evaluate
  //    against the post-batch WM, so a blocker inserted anywhere in the
  //    batch censors them already.
  std::vector<std::pair<const Delta*, const CeRef*>> blockers;
  for (const Delta& d : batch) {
    if (!d.is_insert()) continue;
    auto nit = negative_by_class_.find(d.relation);
    if (nit == negative_by_class_.end()) continue;
    DispatchTargets(true, d.relation, nit->second.size(), d.tuple, &cands);
    for (uint32_t pos : cands) {
      blockers.emplace_back(&d, &nit->second[pos]);
    }
  }
  if (!blockers.empty()) {
    conflict_set_.RemoveIf([&](const Instantiation& inst) {
      for (const auto& [d, ref] : blockers) {
        if (ref->rule != inst.rule_index) continue;
        const ConditionSpec& ce =
            rules_[static_cast<size_t>(ref->rule)].lhs.conditions
                [static_cast<size_t>(ref->ce)];
        Binding b = inst.binding;
        if (TupleConsistent(ce, d->tuple, &b)) return true;
      }
      return false;
    });
  }

  // 3. Seeded evaluation per inserted tuple against its candidate CEs; a
  //    batch still counts one propagation step per affected condition
  //    element rather than one per tuple. A tuple both inserted and
  //    deleted within the batch is never seeded: EvaluateSeeded
  //    force-includes its seed, and the removal pass above has already
  //    run.
  auto dead = [&](const Delta& d) {
    auto it = deleted.find(d.relation);
    return it != deleted.end() && it->second.count(d.id) > 0;
  };
  // One seeded evaluation per (insert, candidate CE). Sharded, the pairs
  // are collected first (dispatch accounting stays serial), partitioned
  // by the seed tuple's shard, evaluated concurrently into per-pair
  // buffers — evaluation is read-only against post-batch WM — and
  // committed in collection order, so conflict-set contents and recency
  // stamps are byte-identical to the serial path.
  struct SeedItem {
    const Delta* d;
    int rule;
    int ce;
    size_t shard;
    std::vector<Instantiation> insts;
    Status st;
  };
  std::vector<SeedItem> seeds;
  std::set<std::pair<const std::string*, uint32_t>> counted;
  for (const Delta& d : batch) {
    if (!d.is_insert() || dead(d)) continue;
    auto pit = positive_by_class_.find(d.relation);
    if (pit == positive_by_class_.end()) continue;
    DispatchTargets(false, d.relation, pit->second.size(), d.tuple, &cands);
    for (uint32_t pos : cands) {
      const CeRef& ref = pit->second[pos];
      if (counted.insert({&pit->first, pos}).second) ++stats_.propagations;
      if (sharded) {
        seeds.push_back(
            SeedItem{&d, ref.rule, ref.ce, shard_map_.Route(d), {}, {}});
      } else {
        PRODB_RETURN_IF_ERROR(SeedAndAdd(ref.rule, ref.ce, d.id, d.tuple));
      }
    }
  }
  if (!seeds.empty()) {
    std::vector<std::vector<size_t>> by_shard(shard_map_.num_shards());
    for (size_t i = 0; i < seeds.size(); ++i) {
      by_shard[seeds[i].shard].push_back(i);
    }
    std::vector<std::chrono::steady_clock::time_point> done_at(
        by_shard.size());
    auto run_shard = [&](size_t s) {
      for (size_t i : by_shard[s]) {
        SeedItem& item = seeds[i];
        ++shard_stats_[s].deltas_routed;
        item.st =
            SeedMatches(item.rule, item.ce, item.d->id, item.d->tuple,
                        &item.insts);
        shard_stats_[s].conflict_ops += item.insts.size();
        if (!item.st.ok()) break;
      }
      done_at[s] = std::chrono::steady_clock::now();
    };
    if (pool_ != nullptr) {
      pool_->ParallelFor(by_shard.size(), run_shard);
    } else {
      for (size_t s = 0; s < by_shard.size(); ++s) run_shard(s);
    }
    const auto barrier = std::chrono::steady_clock::now();
    for (size_t s = 0; s < by_shard.size(); ++s) {
      shard_stats_[s].merge_wait_ns += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(barrier -
                                                               done_at[s])
              .count());
    }
    for (SeedItem& item : seeds) {
      PRODB_RETURN_IF_ERROR(item.st);
      for (Instantiation& inst : item.insts) {
        conflict_set_.Add(std::move(inst));
      }
    }
  }

  // 4. Each rule negatively dependent on a deletion the index deems
  //    relevant is re-evaluated once — not once per deleted tuple, the
  //    amortization §4.1.2's "re-computation of joins" cost begs for.
  std::set<int> reeval;
  for (const Delta& d : batch) {
    if (!d.is_delete()) continue;
    auto nit = negative_by_class_.find(d.relation);
    if (nit == negative_by_class_.end()) continue;
    DispatchTargets(true, d.relation, nit->second.size(), d.tuple, &cands);
    for (uint32_t pos : cands) reeval.insert(nit->second[pos].rule);
  }
  if (!sharded) {
    for (int rule_index : reeval) {
      std::vector<Instantiation> insts;
      PRODB_RETURN_IF_ERROR(EvaluateRule(rule_index, &insts));
      ++stats_.propagations;
      for (Instantiation& inst : insts) conflict_set_.Add(std::move(inst));
    }
    MaybeReplan(batch.size());
    return Status::OK();
  }
  // Sharded step 4: full re-evaluations fan out one rule per task,
  // grouped by `rule % num_shards` (rules have no home shard here — the
  // partition only balances work and keeps per-shard counters
  // single-writer); commits run in ascending rule order, matching the
  // serial std::set walk.
  if (!reeval.empty()) {
    std::vector<int> reeval_rules(reeval.begin(), reeval.end());
    std::vector<std::vector<Instantiation>> results(reeval_rules.size());
    std::vector<Status> sts(reeval_rules.size());
    std::vector<std::vector<size_t>> by_shard(shard_map_.num_shards());
    for (size_t i = 0; i < reeval_rules.size(); ++i) {
      by_shard[static_cast<size_t>(reeval_rules[i]) % by_shard.size()]
          .push_back(i);
    }
    auto run_shard = [&](size_t s) {
      for (size_t i : by_shard[s]) {
        ++shard_stats_[s].deltas_routed;
        sts[i] = EvaluateRule(reeval_rules[i], &results[i]);
        shard_stats_[s].conflict_ops += results[i].size();
        if (!sts[i].ok()) break;
      }
    };
    if (pool_ != nullptr) {
      pool_->ParallelFor(by_shard.size(), run_shard);
    } else {
      for (size_t s = 0; s < by_shard.size(); ++s) run_shard(s);
    }
    for (size_t i = 0; i < reeval_rules.size(); ++i) {
      PRODB_RETURN_IF_ERROR(sts[i]);
      ++stats_.propagations;
      for (Instantiation& inst : results[i]) {
        conflict_set_.Add(std::move(inst));
      }
    }
  }
  MaybeReplan(batch.size());
  return Status::OK();
}

std::vector<ShardStats> QueryMatcher::ShardStatsSnapshot() const {
  if (!sharding_.enabled()) return {};
  std::lock_guard<std::mutex> lock(batch_mu_);
  return shard_stats_;
}

size_t QueryMatcher::AuxiliaryFootprintBytes() const {
  // The whole point of §4.1: no intermediate results are stored. Only the
  // per-class CE maps (and their discrimination indexes, O(#CEs)) exist.
  size_t total = 0;
  for (const auto& [name, refs] : positive_by_class_) {
    total += name.size() + refs.size() * (sizeof(CeRef) + 16);
  }
  for (const auto& [name, refs] : negative_by_class_) {
    total += name.size() + refs.size() * (sizeof(CeRef) + 16);
  }
  return total;
}

}  // namespace prodb
