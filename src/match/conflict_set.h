#ifndef PRODB_MATCH_CONFLICT_SET_H_
#define PRODB_MATCH_CONFLICT_SET_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/tuple.h"
#include "db/predicate.h"

namespace prodb {

/// One satisfied rule instance: a rule plus the WM tuples (one per
/// positive condition element) that satisfy its LHS. This is what Match
/// adds to the conflict set and what Act consumes (§2.1).
struct Instantiation {
  int rule_index = -1;          // index into the engine's rule vector
  std::string rule_name;
  std::vector<TupleId> tuple_ids;  // per CE; kNoTuple for negated CEs
  std::vector<Tuple> tuples;
  Binding binding;
  uint64_t recency = 0;         // stamp assigned on entry to the set

  static constexpr TupleId kNoTuple{UINT32_MAX, UINT32_MAX};

  /// Identity of an instantiation: rule + exact tuple combination.
  /// Bindings are derived, so they do not participate.
  std::string Key() const;
  std::string ToString() const;
};

/// An ordered log of conflict-set mutations produced while the real set
/// is out of reach — each match shard records its adds/removes here and
/// the barrier replays the buffers into the one ConflictSet in fixed
/// shard order, so recency stamps are independent of thread count and
/// completion order. Single-writer; not internally locked.
class ConflictOpBuffer {
 public:
  void Add(Instantiation inst) {
    ops_.push_back(Op{/*add=*/true, std::move(inst), {}});
  }
  void RemoveByKey(std::string key) {
    ops_.push_back(Op{/*add=*/false, {}, std::move(key)});
  }

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  void clear() { ops_.clear(); }

 private:
  friend class ConflictSet;
  struct Op {
    bool add;
    Instantiation inst;  // add
    std::string key;     // remove
  };
  std::vector<Op> ops_;
};

/// The conflict set: satisfied instantiations keyed for O(log n) dedup
/// and removal. All matchers maintain one of these; the execution engine
/// drains it. Thread-safe (concurrent execution mutates it from worker
/// threads during maintenance).
class ConflictSet {
 public:
  /// Observes conflict-set maintenance: called once per effective add
  /// (`inst` non-null) and per effective remove (`inst` null; removes are
  /// identified by key). Invoked with the set's mutex held — the listener
  /// must not call back into the ConflictSet. The serving layer installs
  /// one around a batch's OnBatch to capture the batch's conflict-set
  /// delta for the wire; Take() (engine consumption) is deliberately not
  /// reported — it is execution, not maintenance.
  using DeltaListener =
      std::function<void(bool added, const std::string& key,
                         const Instantiation* inst)>;

  /// Installs (or, with nullptr, removes) the delta listener. At most one
  /// listener at a time; callers serialize install/OnBatch/remove.
  void SetDeltaListener(DeltaListener listener);

  /// Inserts if not already present; stamps recency. Returns true when
  /// the instantiation is new.
  bool Add(Instantiation inst);

  /// Removes the exact instantiation. Returns true if present.
  bool Remove(const Instantiation& inst);
  bool RemoveByKey(const std::string& key);

  /// Replays a buffered op sequence in order under one lock acquisition,
  /// with the same semantics the ops would have had applied directly
  /// (dedup, recency stamping, total_added accounting). Clears `buf`.
  void ApplyOps(ConflictOpBuffer* buf);

  /// Removes every instantiation of rule `rule_index` that references
  /// tuple `id` of relation handled by the caller. The caller supplies
  /// which CE positions could reference the tuple via `positions`
  /// (pass empty to check all positions). Returns the number removed.
  size_t RemoveReferencing(TupleId id, const std::vector<size_t>& positions);

  /// Removes every instantiation for which `pred` returns true; returns
  /// the number removed. Used on WM deletions (tuple ids are unique only
  /// within a relation, so callers match on rule/CE position too).
  size_t RemoveIf(const std::function<bool(const Instantiation&)>& pred);

  bool Contains(const std::string& key) const;
  bool empty() const;
  size_t size() const;

  /// Snapshot of current members (copies; the set may change under a
  /// concurrent engine).
  std::vector<Instantiation> Snapshot() const;

  /// Removes and returns an arbitrary member chosen by `chooser`, which
  /// receives the snapshot and returns an index (or -1 to decline).
  /// Returns false when the set is empty or the chooser declines.
  bool Take(const std::function<int(const std::vector<Instantiation>&)>&
                chooser,
            Instantiation* out);

  void Clear();

  /// Cumulative adds (tests/benchmarks: counts conflict-set churn).
  uint64_t total_added() const;

 private:
  /// Notifies the listener, if any. Caller holds mu_.
  void NotifyLocked(bool added, const std::string& key,
                    const Instantiation* inst) {
    if (listener_) listener_(added, key, inst);
  }

  mutable std::mutex mu_;
  std::map<std::string, Instantiation> items_;
  uint64_t next_recency_ = 1;
  uint64_t total_added_ = 0;
  DeltaListener listener_;
};

}  // namespace prodb

#endif  // PRODB_MATCH_CONFLICT_SET_H_
