#include "match/sharding.h"

namespace prodb {

double ShardImbalance(const std::vector<ShardStats>& stats) {
  if (stats.empty()) return 1.0;
  uint64_t total = 0;
  uint64_t max = 0;
  for (const ShardStats& s : stats) {
    total += s.deltas_routed;
    if (s.deltas_routed > max) max = s.deltas_routed;
  }
  if (total == 0) return 1.0;
  double mean = static_cast<double>(total) / static_cast<double>(stats.size());
  return static_cast<double>(max) / mean;
}

}  // namespace prodb
