#include "match/conflict_set.h"

#include <functional>

namespace prodb {

constexpr TupleId Instantiation::kNoTuple;

std::string Instantiation::Key() const {
  std::string key = std::to_string(rule_index);
  for (const TupleId& id : tuple_ids) {
    key += "|" + std::to_string(id.page_id) + "." + std::to_string(id.slot_id);
  }
  return key;
}

std::string Instantiation::ToString() const {
  std::string out = rule_name + "[";
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i) out += ", ";
    out += tuple_ids[i] == kNoTuple ? "-" : tuples[i].ToString();
  }
  return out + "]";
}

void ConflictSet::SetDeltaListener(DeltaListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listener_ = std::move(listener);
}

bool ConflictSet::Add(Instantiation inst) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = inst.Key();
  if (items_.count(key)) return false;
  inst.recency = next_recency_++;
  auto [it, inserted] = items_.emplace(std::move(key), std::move(inst));
  ++total_added_;
  NotifyLocked(/*added=*/true, it->first, &it->second);
  return true;
}

bool ConflictSet::Remove(const Instantiation& inst) {
  return RemoveByKey(inst.Key());
}

void ConflictSet::ApplyOps(ConflictOpBuffer* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  for (ConflictOpBuffer::Op& op : buf->ops_) {
    if (op.add) {
      std::string key = op.inst.Key();
      if (items_.count(key)) continue;
      op.inst.recency = next_recency_++;
      auto [it, inserted] = items_.emplace(std::move(key), std::move(op.inst));
      ++total_added_;
      NotifyLocked(/*added=*/true, it->first, &it->second);
    } else {
      if (items_.erase(op.key) > 0) {
        NotifyLocked(/*added=*/false, op.key, nullptr);
      }
    }
  }
  buf->clear();
}

bool ConflictSet::RemoveByKey(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.erase(key) == 0) return false;
  NotifyLocked(/*added=*/false, key, nullptr);
  return true;
}

size_t ConflictSet::RemoveReferencing(TupleId id,
                                      const std::vector<size_t>& positions) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  for (auto it = items_.begin(); it != items_.end();) {
    bool hit = false;
    const Instantiation& inst = it->second;
    if (positions.empty()) {
      for (const TupleId& tid : inst.tuple_ids) {
        if (tid == id) {
          hit = true;
          break;
        }
      }
    } else {
      for (size_t p : positions) {
        if (p < inst.tuple_ids.size() && inst.tuple_ids[p] == id) {
          hit = true;
          break;
        }
      }
    }
    if (hit) {
      NotifyLocked(/*added=*/false, it->first, nullptr);
      it = items_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t ConflictSet::RemoveIf(
    const std::function<bool(const Instantiation&)>& pred) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  for (auto it = items_.begin(); it != items_.end();) {
    if (pred(it->second)) {
      NotifyLocked(/*added=*/false, it->first, nullptr);
      it = items_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

bool ConflictSet::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.count(key) > 0;
}

bool ConflictSet::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.empty();
}

size_t ConflictSet::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::vector<Instantiation> ConflictSet::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Instantiation> out;
  out.reserve(items_.size());
  for (const auto& [key, inst] : items_) out.push_back(inst);
  return out;
}

bool ConflictSet::Take(
    const std::function<int(const std::vector<Instantiation>&)>& chooser,
    Instantiation* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) return false;
  std::vector<Instantiation> snapshot;
  snapshot.reserve(items_.size());
  for (const auto& [key, inst] : items_) snapshot.push_back(inst);
  int idx = chooser(snapshot);
  if (idx < 0 || idx >= static_cast<int>(snapshot.size())) return false;
  *out = std::move(snapshot[static_cast<size_t>(idx)]);
  items_.erase(out->Key());
  return true;
}

void ConflictSet::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  items_.clear();
}

uint64_t ConflictSet::total_added() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_added_;
}

}  // namespace prodb
