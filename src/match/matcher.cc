#include "match/matcher.h"

#include <cmath>

#include "db/executor.h"

namespace prodb {

void MatcherStats::ObserveCardEstimate(double estimated, double actual) {
  const double err = std::fabs(std::log((1.0 + actual) / (1.0 + estimated)));
  est_card_err_millinats.fetch_add(static_cast<uint64_t>(err * 1000.0),
                                   std::memory_order_relaxed);
  est_card_samples.fetch_add(1, std::memory_order_relaxed);
}

Status Matcher::OnBatch(const ChangeSet& batch) {
  if (MatcherStats* s = mutable_stats()) ++s->batches;
  for (const Delta& d : batch) {
    if (d.is_insert()) {
      PRODB_RETURN_IF_ERROR(OnInsert(d.relation, d.id, d.tuple));
    } else {
      PRODB_RETURN_IF_ERROR(OnDelete(d.relation, d.id, d.tuple));
    }
  }
  return Status::OK();
}

Status MaterializeInstantiations(Catalog* catalog, const Rule& rule,
                                 int rule_index, const Binding& binding,
                                 std::vector<Instantiation>* out,
                                 MatcherStats* stats) {
  // Evaluate the LHS under the binding: each positive CE degenerates to a
  // selection on the bound variables ("the attribute values in each
  // matching pattern provide the selection criterion", §5.1), and
  // cross-CE consistency for variables the binding leaves open is
  // verified exactly. A matching pattern that over-approximates (possible
  // on chained joins, see DESIGN.md) yields zero instantiations here —
  // a false drop costing only time, per §2.3.
  Executor executor(catalog);
  executor.set_stats(stats);
  std::vector<QueryMatch> matches;
  PRODB_RETURN_IF_ERROR(executor.EvaluateBound(rule.lhs, binding, &matches));
  for (QueryMatch& m : matches) {
    Instantiation inst;
    inst.rule_index = rule_index;
    inst.rule_name = rule.name;
    inst.tuple_ids = std::move(m.tuple_ids);
    inst.tuples = std::move(m.tuples);
    inst.binding = std::move(m.binding);
    out->push_back(std::move(inst));
  }
  return Status::OK();
}

}  // namespace prodb
