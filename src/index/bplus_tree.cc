#include "index/bplus_tree.h"

#include <algorithm>
#include <cassert>

namespace prodb {

struct BPlusTree::LeafEntry {
  Value key;
  std::vector<TupleId> postings;
};

struct BPlusTree::Node {
  bool leaf;
  Node* parent = nullptr;
  // Internal: keys.size() + 1 == children.size().
  std::vector<Value> keys;
  std::vector<Node*> children;
  // Leaf:
  std::vector<LeafEntry> entries;
  Node* next = nullptr;

  explicit Node(bool is_leaf) : leaf(is_leaf) {}
};

BPlusTree::BPlusTree(int order) : order_(order < 4 ? 4 : order) {
  root_ = new Node(/*is_leaf=*/true);
}

BPlusTree::~BPlusTree() {
  std::function<void(Node*)> destroy = [&](Node* n) {
    if (!n->leaf) {
      for (auto* c : n->children) destroy(c);
    }
    delete n;
  };
  destroy(root_);
}

BPlusTree::Node* BPlusTree::FindLeaf(const Value& key) const {
  Node* n = root_;
  while (!n->leaf) {
    // children[i] covers keys < keys[i]; the last child covers the rest.
    size_t i = 0;
    while (i < n->keys.size() && key.Compare(n->keys[i]) >= 0) ++i;
    n = n->children[i];
  }
  return n;
}

void BPlusTree::InsertInParent(Node* left, const Value& key, Node* right) {
  if (left == root_) {
    Node* new_root = new Node(/*is_leaf=*/false);
    new_root->keys.push_back(key);
    new_root->children = {left, right};
    left->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return;
  }
  Node* parent = left->parent;
  auto pos = std::find(parent->children.begin(), parent->children.end(), left);
  size_t idx = static_cast<size_t>(pos - parent->children.begin());
  parent->keys.insert(parent->keys.begin() + idx, key);
  parent->children.insert(parent->children.begin() + idx + 1, right);
  right->parent = parent;

  if (static_cast<int>(parent->children.size()) > order_) {
    // Split the internal node: middle key moves up.
    size_t mid = parent->keys.size() / 2;
    Value up_key = parent->keys[mid];
    Node* sibling = new Node(/*is_leaf=*/false);
    sibling->keys.assign(parent->keys.begin() + mid + 1, parent->keys.end());
    sibling->children.assign(parent->children.begin() + mid + 1,
                             parent->children.end());
    for (auto* c : sibling->children) c->parent = sibling;
    parent->keys.resize(mid);
    parent->children.resize(mid + 1);
    InsertInParent(parent, up_key, sibling);
  }
}

void BPlusTree::Insert(const Value& key, TupleId id) {
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [](const LeafEntry& e, const Value& k) { return e.key.Compare(k) < 0; });
  if (it != leaf->entries.end() && it->key == key) {
    it->postings.push_back(id);
    ++posting_count_;
    return;
  }
  leaf->entries.insert(it, LeafEntry{key, {id}});
  ++key_count_;
  ++posting_count_;

  if (static_cast<int>(leaf->entries.size()) >= order_) {
    size_t mid = leaf->entries.size() / 2;
    Node* sibling = new Node(/*is_leaf=*/true);
    sibling->entries.assign(leaf->entries.begin() + mid, leaf->entries.end());
    leaf->entries.resize(mid);
    sibling->next = leaf->next;
    leaf->next = sibling;
    InsertInParent(leaf, sibling->entries.front().key, sibling);
  }
}

bool BPlusTree::Remove(const Value& key, TupleId id) {
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [](const LeafEntry& e, const Value& k) { return e.key.Compare(k) < 0; });
  if (it == leaf->entries.end() || !(it->key == key)) return false;
  auto pit = std::find(it->postings.begin(), it->postings.end(), id);
  if (pit == it->postings.end()) return false;
  it->postings.erase(pit);
  --posting_count_;
  if (it->postings.empty()) {
    // Lazy structural deletion: the entry goes away but nodes are not
    // rebalanced. Underfull leaves are tolerated; the tree stays correct
    // and search-efficient for our insert-heavy workloads.
    leaf->entries.erase(it);
    --key_count_;
  }
  return true;
}

std::vector<TupleId> BPlusTree::Lookup(const Value& key) const {
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [](const LeafEntry& e, const Value& k) { return e.key.Compare(k) < 0; });
  if (it != leaf->entries.end() && it->key == key) return it->postings;
  return {};
}

void BPlusTree::RangeScan(
    const std::optional<Value>& lo, const std::optional<Value>& hi,
    const std::function<bool(const Value&, TupleId)>& fn) const {
  Node* n = root_;
  if (lo.has_value()) {
    n = FindLeaf(*lo);
  } else {
    while (!n->leaf) n = n->children.front();
  }
  for (; n != nullptr; n = n->next) {
    for (const LeafEntry& e : n->entries) {
      if (lo.has_value() && e.key.Compare(*lo) < 0) continue;
      if (hi.has_value() && e.key.Compare(*hi) > 0) return;
      for (TupleId id : e.postings) {
        if (!fn(e.key, id)) return;
      }
    }
  }
}

int BPlusTree::Height() const {
  int h = 1;
  Node* n = root_;
  while (!n->leaf) {
    n = n->children.front();
    ++h;
  }
  return h;
}

void BPlusTree::MarkInterval(const std::optional<Value>& lo,
                             const std::optional<Value>& hi,
                             uint32_t marker_id) {
  bool lo_numeric = !lo.has_value() || lo->is_numeric();
  bool hi_numeric = !hi.has_value() || hi->is_numeric();
  if (lo_numeric && hi_numeric) {
    // Absent bounds become huge sentinels; a symbolic probe stabs at the
    // high sentinel (symbols order above all numbers).
    double l = lo.has_value() ? lo->numeric() : -1e308;
    double h = hi.has_value() ? hi->numeric() : 1e308;
    numeric_marks_.Insert(l, h, marker_id);
    return;
  }
  interval_marks_.push_back(IntervalMark{lo, hi, marker_id});
}

void BPlusTree::UnmarkInterval(uint32_t marker_id) {
  numeric_marks_.Erase(marker_id);
  interval_marks_.erase(
      std::remove_if(interval_marks_.begin(), interval_marks_.end(),
                     [marker_id](const IntervalMark& m) {
                       return m.marker_id == marker_id;
                     }),
      interval_marks_.end());
}

std::vector<uint32_t> BPlusTree::MarkersCovering(const Value& key) const {
  std::vector<uint32_t> out;
  double x = key.is_numeric() ? key.numeric() : 1e308;
  numeric_marks_.Stab(x, &out);
  for (const IntervalMark& m : interval_marks_) {
    if (m.lo.has_value() && key.Compare(*m.lo) < 0) continue;
    if (m.hi.has_value() && key.Compare(*m.hi) > 0) continue;
    out.push_back(m.marker_id);
  }
  return out;
}

Status BPlusTree::CheckInvariants() const {
  int leaf_depth = -1;
  std::function<Status(Node*, int)> check = [&](Node* n, int depth) -> Status {
    if (n->leaf) {
      if (leaf_depth < 0) {
        leaf_depth = depth;
      } else if (leaf_depth != depth) {
        return Status::Corruption("non-uniform leaf depth");
      }
      for (size_t i = 1; i < n->entries.size(); ++i) {
        if (n->entries[i - 1].key.Compare(n->entries[i].key) >= 0) {
          return Status::Corruption("leaf keys out of order");
        }
      }
      return Status::OK();
    }
    if (n->children.size() != n->keys.size() + 1) {
      return Status::Corruption("internal child/key mismatch");
    }
    if (static_cast<int>(n->children.size()) > order_) {
      return Status::Corruption("internal node overfull");
    }
    for (size_t i = 1; i < n->keys.size(); ++i) {
      if (n->keys[i - 1].Compare(n->keys[i]) >= 0) {
        return Status::Corruption("internal keys out of order");
      }
    }
    for (auto* c : n->children) {
      PRODB_RETURN_IF_ERROR(check(c, depth + 1));
    }
    return Status::OK();
  };
  return check(root_, 0);
}

}  // namespace prodb
