#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace prodb {

namespace {
// Infinities are clamped to this half-span when computing areas so that
// "mostly unbounded" condition boxes still produce usable enlargement
// comparisons.
constexpr double kClamp = 1e9;

double ClampCoord(double v) {
  if (v > kClamp) return kClamp;
  if (v < -kClamp) return -kClamp;
  return v;
}
}  // namespace

Box Box::Infinite(size_t dims) {
  Box b;
  b.lo.assign(dims, -std::numeric_limits<double>::infinity());
  b.hi.assign(dims, std::numeric_limits<double>::infinity());
  return b;
}

Box Box::Point(const std::vector<double>& coords) {
  Box b;
  b.lo = coords;
  b.hi = coords;
  return b;
}

bool Box::Overlaps(const Box& other) const {
  for (size_t d = 0; d < dims(); ++d) {
    if (lo[d] > other.hi[d] || other.lo[d] > hi[d]) return false;
  }
  return true;
}

bool Box::Contains(const std::vector<double>& point) const {
  for (size_t d = 0; d < dims(); ++d) {
    if (point[d] < lo[d] || point[d] > hi[d]) return false;
  }
  return true;
}

double Box::Area() const {
  double a = 1.0;
  for (size_t d = 0; d < dims(); ++d) {
    a *= ClampCoord(hi[d]) - ClampCoord(lo[d]);
  }
  return a;
}

Box Box::Enlarged(const Box& other) const {
  Box b = *this;
  for (size_t d = 0; d < dims(); ++d) {
    b.lo[d] = std::min(b.lo[d], other.lo[d]);
    b.hi[d] = std::max(b.hi[d], other.hi[d]);
  }
  return b;
}

std::string Box::ToString() const {
  std::string out = "[";
  for (size_t d = 0; d < dims(); ++d) {
    if (d) out += " x ";
    out += "(" + std::to_string(lo[d]) + "," + std::to_string(hi[d]) + ")";
  }
  return out + "]";
}

struct RTree::Entry {
  Box box;
  uint64_t id = 0;    // leaf entries
  Node* child = nullptr;  // internal entries
};

struct RTree::Node {
  bool leaf;
  Node* parent = nullptr;
  std::vector<Entry> entries;
  explicit Node(bool is_leaf) : leaf(is_leaf) {}
};

RTree::RTree(size_t dims, size_t max_entries)
    : dims_(dims),
      max_entries_(max_entries < 4 ? 4 : max_entries),
      min_entries_(max_entries_ / 2),
      root_(new Node(/*is_leaf=*/true)) {}

RTree::~RTree() {
  std::function<void(Node*)> destroy = [&](Node* n) {
    if (!n->leaf) {
      for (auto& e : n->entries) destroy(e.child);
    }
    delete n;
  };
  destroy(root_);
}

RTree::Node* RTree::ChooseLeaf(Node* n, const Box& box) const {
  while (!n->leaf) {
    // Guttman: follow the child whose MBR needs least enlargement,
    // breaking ties on smaller area.
    double best_delta = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    Node* best = nullptr;
    for (const Entry& e : n->entries) {
      double area = e.box.Area();
      double delta = e.box.Enlarged(box).Area() - area;
      if (delta < best_delta ||
          (delta == best_delta && area < best_area)) {
        best_delta = delta;
        best_area = area;
        best = e.child;
      }
    }
    n = best;
  }
  return n;
}

void RTree::Recompute(Node* n) {
  // Recomputes the MBR stored for `n` in its parent entry.
  if (n->parent == nullptr) return;
  for (Entry& e : n->parent->entries) {
    if (e.child == n) {
      Box mbr = n->entries.front().box;
      for (size_t i = 1; i < n->entries.size(); ++i) {
        mbr = mbr.Enlarged(n->entries[i].box);
      }
      e.box = mbr;
      return;
    }
  }
}

void RTree::SplitNode(Node* n) {
  // Quadratic split [GUTT84 §3.5.2]: pick the pair of entries that would
  // waste the most area together as seeds, then assign the rest greedily
  // by least enlargement.
  std::vector<Entry> all = std::move(n->entries);
  n->entries.clear();

  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      double waste = all[i].box.Enlarged(all[j].box).Area() -
                     all[i].box.Area() - all[j].box.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Node* sibling = new Node(n->leaf);
  std::vector<Entry> group_a{all[seed_a]};
  std::vector<Entry> group_b{all[seed_b]};
  Box mbr_a = all[seed_a].box;
  Box mbr_b = all[seed_b].box;

  for (size_t i = 0; i < all.size(); ++i) {
    if (i == seed_a || i == seed_b) continue;
    size_t remaining = all.size() - group_a.size() - group_b.size() - 1;
    // Force assignment if one group must take all remaining entries to
    // reach the minimum fill.
    if (group_a.size() + remaining + 1 <= min_entries_) {
      group_a.push_back(all[i]);
      mbr_a = mbr_a.Enlarged(all[i].box);
      continue;
    }
    if (group_b.size() + remaining + 1 <= min_entries_) {
      group_b.push_back(all[i]);
      mbr_b = mbr_b.Enlarged(all[i].box);
      continue;
    }
    double da = mbr_a.Enlarged(all[i].box).Area() - mbr_a.Area();
    double db = mbr_b.Enlarged(all[i].box).Area() - mbr_b.Area();
    if (da < db || (da == db && group_a.size() <= group_b.size())) {
      group_a.push_back(all[i]);
      mbr_a = mbr_a.Enlarged(all[i].box);
    } else {
      group_b.push_back(all[i]);
      mbr_b = mbr_b.Enlarged(all[i].box);
    }
  }

  n->entries = std::move(group_a);
  sibling->entries = std::move(group_b);
  if (!n->leaf) {
    for (Entry& e : n->entries) e.child->parent = n;
    for (Entry& e : sibling->entries) e.child->parent = sibling;
  }

  if (n->parent == nullptr) {
    Node* new_root = new Node(/*is_leaf=*/false);
    new_root->entries.push_back(Entry{mbr_a, 0, n});
    new_root->entries.push_back(Entry{mbr_b, 0, sibling});
    n->parent = new_root;
    sibling->parent = new_root;
    root_ = new_root;
  } else {
    Recompute(n);
    sibling->parent = n->parent;
    n->parent->entries.push_back(Entry{mbr_b, 0, sibling});
    if (n->parent->entries.size() > max_entries_) {
      SplitNode(n->parent);
    } else {
      AdjustUpward(n->parent);
    }
  }
}

void RTree::AdjustUpward(Node* n) {
  while (n != nullptr && n->parent != nullptr) {
    Recompute(n);
    n = n->parent;
  }
}

void RTree::Insert(const Box& box, uint64_t id) {
  Node* leaf = ChooseLeaf(root_, box);
  leaf->entries.push_back(Entry{box, id, nullptr});
  ++size_;
  if (leaf->entries.size() > max_entries_) {
    SplitNode(leaf);
  } else {
    AdjustUpward(leaf);
  }
}

bool RTree::Remove(const Box& box, uint64_t id) {
  // Find the leaf holding (box, id).
  Node* found_leaf = nullptr;
  size_t found_idx = 0;
  std::function<bool(Node*)> find = [&](Node* n) -> bool {
    if (n->leaf) {
      for (size_t i = 0; i < n->entries.size(); ++i) {
        if (n->entries[i].id == id && n->entries[i].box.Overlaps(box) &&
            n->entries[i].box.lo == box.lo && n->entries[i].box.hi == box.hi) {
          found_leaf = n;
          found_idx = i;
          return true;
        }
      }
      return false;
    }
    for (const Entry& e : n->entries) {
      if (e.box.Overlaps(box) && find(e.child)) return true;
    }
    return false;
  };
  if (!find(root_)) return false;

  found_leaf->entries.erase(found_leaf->entries.begin() + found_idx);
  --size_;

  // Condense (leaf level only): if the leaf underflows, dissolve it and
  // reinsert its surviving data entries. Internal underflow is tolerated —
  // the tree stays correct, just possibly less dense after heavy deletes.
  std::vector<Entry> orphans;
  if (found_leaf->parent != nullptr &&
      found_leaf->entries.size() < min_entries_) {
    Node* parent = found_leaf->parent;
    for (size_t i = 0; i < parent->entries.size(); ++i) {
      if (parent->entries[i].child == found_leaf) {
        parent->entries.erase(parent->entries.begin() + i);
        break;
      }
    }
    orphans = std::move(found_leaf->entries);
    delete found_leaf;
    // Prune any ancestors left with no entries.
    Node* n = parent;
    while (n->parent != nullptr && n->entries.empty()) {
      Node* p = n->parent;
      for (size_t i = 0; i < p->entries.size(); ++i) {
        if (p->entries[i].child == n) {
          p->entries.erase(p->entries.begin() + i);
          break;
        }
      }
      delete n;
      n = p;
    }
    if (!n->entries.empty() && n->parent != nullptr) AdjustUpward(n);
  } else if (!found_leaf->entries.empty()) {
    AdjustUpward(found_leaf);
  }

  // Shrink a root that degenerated to a single internal entry, or to an
  // empty internal node.
  while (!root_->leaf && root_->entries.size() == 1) {
    Node* child = root_->entries.front().child;
    child->parent = nullptr;
    delete root_;
    root_ = child;
  }
  if (!root_->leaf && root_->entries.empty()) {
    delete root_;
    root_ = new Node(true);
  }
  for (Entry& e : orphans) {
    --size_;  // Insert() re-increments.
    Insert(e.box, e.id);
  }
  return true;
}

std::vector<uint64_t> RTree::SearchPoint(
    const std::vector<double>& point) const {
  return SearchBox(Box::Point(point));
}

std::vector<uint64_t> RTree::SearchBox(const Box& query) const {
  std::vector<uint64_t> out;
  std::function<void(const Node*)> walk = [&](const Node* n) {
    for (const Entry& e : n->entries) {
      if (!e.box.Overlaps(query)) continue;
      if (n->leaf) {
        out.push_back(e.id);
      } else {
        walk(e.child);
      }
    }
  };
  walk(root_);
  return out;
}

int RTree::Height() const {
  int h = 1;
  const Node* n = root_;
  while (!n->leaf) {
    n = n->entries.front().child;
    ++h;
  }
  return h;
}

Status RTree::CheckInvariants() const {
  int leaf_depth = -1;
  std::function<Status(const Node*, int)> check = [&](const Node* n,
                                                      int depth) -> Status {
    if (n != root_ && n->entries.size() > max_entries_) {
      return Status::Corruption("node overfull");
    }
    if (n->leaf) {
      if (leaf_depth < 0) {
        leaf_depth = depth;
      } else if (leaf_depth != depth) {
        return Status::Corruption("non-uniform leaf depth");
      }
      return Status::OK();
    }
    for (const Entry& e : n->entries) {
      if (e.child->parent != n) {
        return Status::Corruption("broken parent link");
      }
      // Every child box must be covered by the parent entry's MBR.
      for (const Entry& ce : e.child->entries) {
        Box cover = e.box.Enlarged(ce.box);
        for (size_t d = 0; d < dims_; ++d) {
          if (cover.lo[d] != e.box.lo[d] || cover.hi[d] != e.box.hi[d]) {
            return Status::Corruption("MBR does not cover child");
          }
        }
      }
      PRODB_RETURN_IF_ERROR(check(e.child, depth + 1));
    }
    return Status::OK();
  };
  return check(root_, 0);
}

}  // namespace prodb
