#ifndef PRODB_INDEX_BPLUS_TREE_H_
#define PRODB_INDEX_BPLUS_TREE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"
#include "index/interval_tree.h"

namespace prodb {

/// Memory-resident B+-tree multi-map from Value keys to TupleIds.
///
/// Secondary indexes in prodb are memory-resident (rebuilt from the heap
/// file on open) while base tuples are paged — the arrangement the paper
/// assumes when it talks about "using indices, if they exist" (§3.2).
/// The tree supports duplicate keys (a leaf entry carries a posting list),
/// ordered range scans, and key-interval markers used by the Basic
/// Locking rule-indexing scheme of [STON86a] (markers on the key interval
/// inspected during a scan catch future "phantom" insertions).
class BPlusTree {
 public:
  /// `order` = max children of an internal node (>= 4).
  explicit BPlusTree(int order = 64);
  ~BPlusTree();

  void Insert(const Value& key, TupleId id);

  /// Removes one (key, id) posting. Returns false if absent.
  bool Remove(const Value& key, TupleId id);

  /// All postings for `key` (empty if none).
  std::vector<TupleId> Lookup(const Value& key) const;

  /// Visits postings with lo <= key <= hi in key order. Null bounds are
  /// unbounded. `fn` returns false to stop early.
  void RangeScan(const std::optional<Value>& lo, const std::optional<Value>& hi,
                 const std::function<bool(const Value&, TupleId)>& fn) const;

  size_t KeyCount() const { return key_count_; }
  size_t PostingCount() const { return posting_count_; }
  int Height() const;

  /// --- Key-interval markers (Basic Locking support) -------------------
  /// Records that condition `marker_id` read the key interval [lo, hi]
  /// (null = unbounded). A later insertion of `key` reports every marker
  /// whose interval contains `key` — the "index interval lock" of
  /// [STON86a] that handles phantoms.
  /// Numeric (or unbounded) intervals go to a stabbing structure so a
  /// probe costs O(log m + hits) — the cost an index descent would pay;
  /// intervals with symbolic bounds fall back to a checked list.
  void MarkInterval(const std::optional<Value>& lo,
                    const std::optional<Value>& hi, uint32_t marker_id);
  void UnmarkInterval(uint32_t marker_id);
  std::vector<uint32_t> MarkersCovering(const Value& key) const;
  size_t IntervalMarkerCount() const {
    return numeric_marks_.size() + interval_marks_.size();
  }

  /// Validates B+-tree invariants (sorted keys, uniform leaf depth,
  /// fanout bounds). Used by property tests.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct LeafEntry;

  Node* FindLeaf(const Value& key) const;
  void InsertInParent(Node* left, const Value& key, Node* right);

  int order_;
  Node* root_;
  size_t key_count_ = 0;
  size_t posting_count_ = 0;

  struct IntervalMark {
    std::optional<Value> lo, hi;
    uint32_t marker_id;
  };
  IntervalTree numeric_marks_;
  std::vector<IntervalMark> interval_marks_;  // symbol-bounded fallback
};

}  // namespace prodb

#endif  // PRODB_INDEX_BPLUS_TREE_H_
