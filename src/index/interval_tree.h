#ifndef PRODB_INDEX_INTERVAL_TREE_H_
#define PRODB_INDEX_INTERVAL_TREE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace prodb {

/// Dynamic centered interval tree over [lo, hi] double intervals with
/// uint32 payloads. Supports insert, erase-by-id, and stabbing queries
/// ("all intervals containing x") in O(log n + k).
///
/// Used by the Basic Locking rule index (§2.3 / [STON86a]) so that the
/// key-interval marks registered on an index behave like real index
/// interval locks: an insertion discovers the covering marks during a
/// logarithmic descent instead of scanning every registered condition.
///
/// Implementation: a balanced-by-reconstruction centered tree. Nodes
/// partition intervals around center points; each node keeps its
/// intervals sorted by lo and by descending hi for early-exit stabbing.
/// Mutations mark the tree dirty; the structure is (re)built lazily on
/// the next query, giving amortized O(n log n) across any mutation
/// sequence — the right trade for rule bases, which change rarely
/// relative to how often they are probed.
class IntervalTree {
 public:
  struct Interval {
    double lo;
    double hi;
    uint32_t id;
  };

  void Insert(double lo, double hi, uint32_t id) {
    intervals_.push_back(Interval{lo, hi, id});
    dirty_ = true;
  }

  /// Removes every interval with this id. Returns the number removed.
  size_t Erase(uint32_t id) {
    size_t before = intervals_.size();
    intervals_.erase(
        std::remove_if(intervals_.begin(), intervals_.end(),
                       [id](const Interval& iv) { return iv.id == id; }),
        intervals_.end());
    if (intervals_.size() != before) dirty_ = true;
    return before - intervals_.size();
  }

  /// Appends the ids of all intervals containing `x` to *out.
  void Stab(double x, std::vector<uint32_t>* out) const {
    if (dirty_) Rebuild();
    StabNode(root_, x, out);
  }

  size_t size() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }

 private:
  struct Node {
    double center = 0;
    // Intervals containing `center`, sorted two ways for early exit.
    std::vector<Interval> by_lo;         // ascending lo
    std::vector<Interval> by_hi_desc;    // descending hi
    int left = -1;
    int right = -1;
  };

  void Rebuild() const {
    nodes_.clear();
    std::vector<Interval> all = intervals_;
    root_ = Build(&all);
    dirty_ = false;
  }

  int Build(std::vector<Interval>* ivs) const {
    if (ivs->empty()) return -1;
    // Center = median of endpoint midpoints (clamped for infinities).
    std::vector<double> mids;
    mids.reserve(ivs->size());
    auto clamp = [](double v) {
      if (v > 1e12) return 1e12;
      if (v < -1e12) return -1e12;
      return v;
    };
    for (const Interval& iv : *ivs) {
      mids.push_back((clamp(iv.lo) + clamp(iv.hi)) / 2);
    }
    std::nth_element(mids.begin(), mids.begin() + mids.size() / 2,
                     mids.end());
    double center = mids[mids.size() / 2];

    Node node;
    node.center = center;
    std::vector<Interval> left, right;
    for (const Interval& iv : *ivs) {
      if (iv.hi < center) {
        left.push_back(iv);
      } else if (iv.lo > center) {
        right.push_back(iv);
      } else {
        node.by_lo.push_back(iv);
      }
    }
    // Degenerate split (e.g. all intervals identical): keep everything
    // at this node rather than recursing forever.
    if (node.by_lo.empty() && (left.empty() || right.empty())) {
      node.by_lo = left.empty() ? std::move(right) : std::move(left);
      left.clear();
      right.clear();
    }
    node.by_hi_desc = node.by_lo;
    std::sort(node.by_lo.begin(), node.by_lo.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    std::sort(node.by_hi_desc.begin(), node.by_hi_desc.end(),
              [](const Interval& a, const Interval& b) { return a.hi > b.hi; });
    int idx = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    int l = Build(&left);
    int r = Build(&right);
    nodes_[static_cast<size_t>(idx)].left = l;
    nodes_[static_cast<size_t>(idx)].right = r;
    return idx;
  }

  void StabNode(int idx, double x, std::vector<uint32_t>* out) const {
    if (idx < 0) return;
    const Node& node = nodes_[static_cast<size_t>(idx)];
    if (x < node.center) {
      // Only intervals with lo <= x can contain x; by_lo is ascending.
      for (const Interval& iv : node.by_lo) {
        if (iv.lo > x) break;
        if (x <= iv.hi) out->push_back(iv.id);
      }
      StabNode(node.left, x, out);
    } else {
      // Only intervals with hi >= x can contain x; by_hi_desc descends.
      for (const Interval& iv : node.by_hi_desc) {
        if (iv.hi < x) break;
        if (x >= iv.lo) out->push_back(iv.id);
      }
      if (x > node.center) StabNode(node.right, x, out);
    }
  }

  std::vector<Interval> intervals_;
  mutable std::vector<Node> nodes_;
  mutable int root_ = -1;
  mutable bool dirty_ = false;
};

}  // namespace prodb

#endif  // PRODB_INDEX_INTERVAL_TREE_H_
