#ifndef PRODB_INDEX_HASH_INDEX_H_
#define PRODB_INDEX_HASH_INDEX_H_

#include <unordered_map>
#include <vector>

#include "common/tuple.h"
#include "common/value.h"

namespace prodb {

/// Equality index from a single attribute Value to TupleIds.
///
/// Used by the hash-join executor and by the matchers to turn the paper's
/// "selection on the WM relation" (§4.1.2) into an O(1) probe when the
/// join predicate is an equality on a single attribute — the common case
/// for OPS5 variables shared between two condition elements.
class HashIndex {
 public:
  void Insert(const Value& key, TupleId id) {
    map_[key].push_back(id);
    ++postings_;
  }

  bool Remove(const Value& key, TupleId id) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    auto& v = it->second;
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] == id) {
        v[i] = v.back();
        v.pop_back();
        --postings_;
        if (v.empty()) map_.erase(it);
        return true;
      }
    }
    return false;
  }

  const std::vector<TupleId>* Lookup(const Value& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t KeyCount() const { return map_.size(); }
  size_t PostingCount() const { return postings_; }

 private:
  std::unordered_map<Value, std::vector<TupleId>, ValueHash> map_;
  size_t postings_ = 0;
};

}  // namespace prodb

#endif  // PRODB_INDEX_HASH_INDEX_H_
