#ifndef PRODB_INDEX_RTREE_H_
#define PRODB_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/status.h"

namespace prodb {

/// Axis-aligned hyper-rectangle in d dimensions. Conditions over numeric
/// attributes map to boxes: `age > 55` is the box [55+ε, +inf] on the age
/// axis and [-inf, +inf] elsewhere; an inserted tuple is a point box.
struct Box {
  std::vector<double> lo;
  std::vector<double> hi;

  static Box Infinite(size_t dims);
  static Box Point(const std::vector<double>& coords);

  size_t dims() const { return lo.size(); }
  bool Overlaps(const Box& other) const;
  bool Contains(const std::vector<double>& point) const;

  /// Hyper-volume with infinities clamped to a large finite span, so
  /// enlargement comparisons stay meaningful.
  double Area() const;
  /// Smallest box covering both this and `other`.
  Box Enlarged(const Box& other) const;

  std::string ToString() const;
};

/// Guttman R-tree with quadratic split over Box entries.
///
/// This is the "Predicate Indexing" device of [STON86a] that the paper
/// recommends (§2.3, §4.1.2, §4.2.3): rule conditions are stored as boxes
/// in attribute space, and finding the conditions affected by an inserted
/// tuple is a point query. The same structure answers rule-base queries
/// such as "all the rules that apply on employees older than 55" (§4.2.3).
class RTree {
 public:
  /// `dims` = dimensionality of all boxes; `max_entries` = node capacity.
  explicit RTree(size_t dims, size_t max_entries = 8);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Inserts a box tagged with an opaque id (e.g. a (rule, CE) key).
  void Insert(const Box& box, uint64_t id);

  /// Removes the entry with exactly this box and id. Returns false if not
  /// present. Uses condense-by-reinsert on underflow.
  bool Remove(const Box& box, uint64_t id);

  /// Ids of all entries whose box contains `point`.
  std::vector<uint64_t> SearchPoint(const std::vector<double>& point) const;

  /// Ids of all entries whose box overlaps `query`.
  std::vector<uint64_t> SearchBox(const Box& query) const;

  size_t size() const { return size_; }
  size_t dims() const { return dims_; }
  int Height() const;

  /// Structural invariants: MBRs cover children, entry counts within
  /// bounds, uniform leaf depth.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry;

  Node* ChooseLeaf(Node* n, const Box& box) const;
  void SplitNode(Node* n);
  void AdjustUpward(Node* n);
  void Recompute(Node* n);

  size_t dims_;
  size_t max_entries_;
  size_t min_entries_;
  Node* root_;
  size_t size_ = 0;
};

}  // namespace prodb

#endif  // PRODB_INDEX_RTREE_H_
