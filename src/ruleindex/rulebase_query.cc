#include "ruleindex/rulebase_query.h"

#include <algorithm>
#include <limits>

namespace prodb {

namespace {

// Narrows box dimension `attr` by `op value`. A strict bound is nudged
// by epsilon — sufficient for rule retrieval, where over-approximation
// is tolerable and missing is not.
void ApplyBound(Box* box, size_t attr, CompareOp op, double value) {
  constexpr double kEps = 1e-9;
  switch (op) {
    case CompareOp::kEq:
      box->lo[attr] = std::max(box->lo[attr], value);
      box->hi[attr] = std::min(box->hi[attr], value);
      break;
    case CompareOp::kLt:
      box->hi[attr] = std::min(box->hi[attr], value - kEps);
      break;
    case CompareOp::kLe:
      box->hi[attr] = std::min(box->hi[attr], value);
      break;
    case CompareOp::kGt:
      box->lo[attr] = std::max(box->lo[attr], value + kEps);
      break;
    case CompareOp::kGe:
      box->lo[attr] = std::max(box->lo[attr], value);
      break;
    case CompareOp::kNe:
      break;  // not box-encodable; stays unconstrained (over-approximates)
  }
}

}  // namespace

Status RuleBaseQueryIndex::EnsureClass(const std::string& cls,
                                       ClassIndex** out) {
  auto it = classes_.find(cls);
  if (it != classes_.end()) {
    *out = &it->second;
    return Status::OK();
  }
  Relation* rel = catalog_->Get(cls);
  if (rel == nullptr) return Status::NotFound("relation " + cls);
  ClassIndex ci;
  ci.dims = rel->schema().arity();
  ci.tree = std::make_unique<RTree>(ci.dims);
  *out = &classes_.emplace(cls, std::move(ci)).first->second;
  return Status::OK();
}

Status RuleBaseQueryIndex::AddRule(int rule_id, const Rule& rule) {
  for (const ConditionSpec& ce : rule.lhs.conditions) {
    ClassIndex* ci;
    PRODB_RETURN_IF_ERROR(EnsureClass(ce.relation, &ci));
    Box box = Box::Infinite(ci->dims);
    std::vector<ConstantTest> numeric_tests;
    for (const ConstantTest& ct : ce.constant_tests) {
      if (!ct.constant.is_numeric()) continue;  // symbols: unconstrained
      ApplyBound(&box, static_cast<size_t>(ct.attr), ct.op,
                 ct.constant.numeric());
      numeric_tests.push_back(ct);
    }
    ci->tree->Insert(box, static_cast<uint64_t>(ci->entries.size()));
    ci->entries.emplace_back(rule_id, std::move(numeric_tests));
    ++entries_;
  }
  return Status::OK();
}

Status RuleBaseQueryIndex::RulesMatchingTuple(const std::string& cls,
                                              const Tuple& t,
                                              std::vector<int>* out) const {
  out->clear();
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::OK();
  std::vector<double> point(it->second.dims, 0.0);
  for (size_t a = 0; a < point.size() && a < t.arity(); ++a) {
    // Non-numeric values are projected to 0 for the coarse tree probe;
    // the exact verification below rejects them against bounded tests.
    point[a] = t[a].is_numeric() ? t[a].numeric() : 0.0;
  }
  for (uint64_t id : it->second.tree->SearchPoint(point)) {
    const auto& [rule_id, tests] = it->second.entries[id];
    bool ok = true;
    for (const ConstantTest& ct : tests) {
      if (static_cast<size_t>(ct.attr) >= t.arity() ||
          !t[static_cast<size_t>(ct.attr)].is_numeric() ||
          !ct.Matches(t)) {
        ok = false;
        break;
      }
    }
    if (ok) out->push_back(rule_id);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return Status::OK();
}

Status RuleBaseQueryIndex::RulesMatchingConstraint(
    const std::string& cls, int attr, CompareOp op, double value,
    std::vector<int>* out) const {
  out->clear();
  auto it = classes_.find(cls);
  if (it == classes_.end()) return Status::OK();
  Box query = Box::Infinite(it->second.dims);
  ApplyBound(&query, static_cast<size_t>(attr), op, value);
  for (uint64_t id : it->second.tree->SearchBox(query)) {
    out->push_back(it->second.entries[id].first);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return Status::OK();
}

}  // namespace prodb
