#ifndef PRODB_RULEINDEX_PREDICATE_INDEX_H_
#define PRODB_RULEINDEX_PREDICATE_INDEX_H_

#include <map>

#include "index/rtree.h"
#include "ruleindex/rule_index.h"

namespace prodb {

/// Predicate Indexing [STON86a]: conditions live in "a data structure
/// similar to a discrimination network" — an R-tree over the hyper-
/// rectangles the conditions' qualifications describe (§2.3 recommends
/// R-trees [GUTT84] / R+-trees [SELL87]). Insertions need no per-tuple
/// bookkeeping ("no special treatment of insertions"); every update pays
/// a point search of the tree instead.
///
/// The same structure answers rule-base queries — "give me all the rules
/// that apply on employees older than 55" is a box search (§4.2.3).
class PredicateIndex : public RuleIndex {
 public:
  /// One R-tree per relation, `dims` = number of leading attributes the
  /// boxes cover.
  explicit PredicateIndex(size_t dims) : dims_(dims) {}

  Status AddCondition(const IndexedCondition& cond) override;
  Status RemoveCondition(uint32_t id) override;
  Status OnInsert(const std::string& rel, TupleId id, const Tuple& t,
                  std::vector<uint32_t>* affected) override;
  Status OnDelete(const std::string& rel, TupleId id, const Tuple& t,
                  std::vector<uint32_t>* affected) override;
  /// Batched form: one R-tree lookup per relation appearing in the batch;
  /// each delta then pays only its point search.
  Status OnBatch(const ChangeSet& batch,
                 std::vector<uint32_t>* affected) override;
  size_t FootprintBytes() const override;
  std::string name() const override { return "predicate-index"; }

  /// Rule-base query: conditions whose box overlaps `query`.
  std::vector<uint32_t> ConditionsOverlapping(const std::string& rel,
                                              const Box& query) const;

 private:
  Status Affected(const std::string& rel, const Tuple& t,
                  std::vector<uint32_t>* affected) const;
  Box CondBox(const IndexedCondition& cond) const;

  size_t dims_;
  std::map<std::string, std::unique_ptr<RTree>> trees_;
  std::map<uint32_t, IndexedCondition> conditions_;
};

}  // namespace prodb

#endif  // PRODB_RULEINDEX_PREDICATE_INDEX_H_
