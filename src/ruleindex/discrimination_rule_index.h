#ifndef PRODB_RULEINDEX_DISCRIMINATION_RULE_INDEX_H_
#define PRODB_RULEINDEX_DISCRIMINATION_RULE_INDEX_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "match/discrimination.h"
#include "ruleindex/rule_index.h"

namespace prodb {

/// The matchers' constant-test discrimination index re-used as a rule
/// index (§2.3): each IndexedCondition's per-attribute [lo, hi] intervals
/// become kGe/kLe constant tests fed to a per-relation DiscriminationIndex
/// (degenerate lo == hi intervals become kEq tests so point conditions
/// land in the hash tier). The index nominates a candidate superset; the
/// exact IndexedCondition::Matches filter then removes false positives,
/// so — unlike the marker schemes — the affected sets reported here carry
/// no false drops.
///
/// Like PredicateIndex this keeps no per-tuple bookkeeping: an update
/// pays one Lookup, insertions need no special treatment, and removal is
/// handled by tombstoning (with a full rebuild once tombstones dominate).
class DiscriminationRuleIndex : public RuleIndex {
 public:
  Status AddCondition(const IndexedCondition& cond) override;
  Status RemoveCondition(uint32_t id) override;
  Status OnInsert(const std::string& rel, TupleId id, const Tuple& t,
                  std::vector<uint32_t>* affected) override;
  Status OnDelete(const std::string& rel, TupleId id, const Tuple& t,
                  std::vector<uint32_t>* affected) override;
  size_t FootprintBytes() const override;
  std::string name() const override { return "discrimination-index"; }

 private:
  /// Shared by OnInsert/OnDelete (both report the conditions whose
  /// qualification covers `t`; neither keeps per-tuple state).
  Status Affected(const std::string& rel, const Tuple& t,
                  std::vector<uint32_t>* affected);
  static std::vector<ConstantTest> ToTests(const IndexedCondition& cond);
  void RebuildRelation(const std::string& rel);

  std::unordered_map<std::string, DiscriminationIndex> by_relation_;
  // Live entries still present in by_relation_ that Affected must drop.
  std::unordered_map<std::string, size_t> tombstones_;
  std::map<uint32_t, IndexedCondition> conditions_;
  std::vector<uint32_t> scratch_;
};

}  // namespace prodb

#endif  // PRODB_RULEINDEX_DISCRIMINATION_RULE_INDEX_H_
