#ifndef PRODB_RULEINDEX_BASIC_LOCKING_H_
#define PRODB_RULEINDEX_BASIC_LOCKING_H_

#include <map>
#include <unordered_map>

#include "ruleindex/rule_index.h"

namespace prodb {

/// Basic Locking [STON86a]: "all tuples used in processing a given
/// condition are marked with a special kind of marker which uniquely
/// identifies the condition. If an index is used, these markers are set
/// on data records and on the key interval inspected in the index."
///
/// Markers on existing tuples make deletions cheap: the affected
/// conditions are exactly the markers on the deleted tuple. Insertions
/// are the phantom case: the key-interval marks registered on the
/// relation's B+-tree index yield candidate conditions whose intervals
/// cover the new key; each candidate is then verified exactly (false
/// drops possible when only one attribute is indexed but the condition
/// constrains several).
class BasicLockingIndex : public RuleIndex {
 public:
  /// `catalog` supplies the relations; `indexed_attr` is the attribute
  /// whose B+-tree carries the interval marks (the paper's "key interval
  /// inspected in the index").
  BasicLockingIndex(Catalog* catalog, int indexed_attr = 0)
      : catalog_(catalog), indexed_attr_(indexed_attr) {}

  Status AddCondition(const IndexedCondition& cond) override;
  Status RemoveCondition(uint32_t id) override;
  Status OnInsert(const std::string& rel, TupleId id, const Tuple& t,
                  std::vector<uint32_t>* affected) override;
  Status OnDelete(const std::string& rel, TupleId id, const Tuple& t,
                  std::vector<uint32_t>* affected) override;
  /// Batched form: catalog lookups and the unindexed-relation candidate
  /// lists are computed once per relation in the batch, not once per
  /// tuple. Deltas still apply in order (an insert-then-delete of the
  /// same tuple within one batch nets out of the markers).
  Status OnBatch(const ChangeSet& batch,
                 std::vector<uint32_t>* affected) override;
  size_t FootprintBytes() const override;
  std::string name() const override { return "basic-locking"; }

  /// Total tuple markers currently set (space accounting for E7).
  size_t MarkerCount() const;

 private:
  Catalog* catalog_;
  int indexed_attr_;
  std::map<uint32_t, IndexedCondition> conditions_;
  // relation -> tuple -> marker list.
  std::map<std::string,
           std::unordered_map<TupleId, std::vector<uint32_t>, TupleIdHash>>
      markers_;
};

}  // namespace prodb

#endif  // PRODB_RULEINDEX_BASIC_LOCKING_H_
