#include "ruleindex/discrimination_rule_index.h"

#include <algorithm>

namespace prodb {

std::vector<ConstantTest> DiscriminationRuleIndex::ToTests(
    const IndexedCondition& cond) {
  std::vector<ConstantTest> tests;
  for (size_t a = 0; a < cond.ranges.size(); ++a) {
    const IndexedCondition::Range& r = cond.ranges[a];
    if (r.lo && r.hi && *r.lo == *r.hi) {
      // Point condition: land it in the eq-hash tier.
      tests.push_back(
          ConstantTest{static_cast<int>(a), CompareOp::kEq, Value(*r.lo)});
      continue;
    }
    if (r.lo) {
      tests.push_back(
          ConstantTest{static_cast<int>(a), CompareOp::kGe, Value(*r.lo)});
    }
    if (r.hi) {
      tests.push_back(
          ConstantTest{static_cast<int>(a), CompareOp::kLe, Value(*r.hi)});
    }
  }
  return tests;
}

Status DiscriminationRuleIndex::AddCondition(const IndexedCondition& cond) {
  if (conditions_.count(cond.id)) {
    return Status::InvalidArgument("condition id already registered");
  }
  conditions_[cond.id] = cond;
  DiscriminationIndex& disc = by_relation_[cond.relation];
  disc.Add(cond.id, ToTests(cond));
  disc.Seal();
  return Status::OK();
}

Status DiscriminationRuleIndex::RemoveCondition(uint32_t id) {
  auto it = conditions_.find(id);
  if (it == conditions_.end()) return Status::NotFound("condition");
  std::string rel = it->second.relation;
  conditions_.erase(it);
  // The DiscriminationIndex has no per-entry removal; the dead id stays
  // inside it as a tombstone that Affected filters out, until tombstones
  // outnumber live entries and the relation's index is rebuilt.
  size_t& dead = ++tombstones_[rel];
  size_t live = 0;
  for (const auto& [cid, c] : conditions_) {
    if (c.relation == rel) ++live;
  }
  if (dead > live) RebuildRelation(rel);
  return Status::OK();
}

void DiscriminationRuleIndex::RebuildRelation(const std::string& rel) {
  DiscriminationIndex fresh;
  for (const auto& [cid, c] : conditions_) {
    if (c.relation == rel) fresh.Add(cid, ToTests(c));
  }
  fresh.Seal();
  by_relation_[rel] = std::move(fresh);
  tombstones_[rel] = 0;
}

Status DiscriminationRuleIndex::Affected(const std::string& rel,
                                         const Tuple& t,
                                         std::vector<uint32_t>* affected) {
  affected->clear();
  auto it = by_relation_.find(rel);
  if (it == by_relation_.end()) return Status::OK();
  scratch_.clear();
  it->second.Lookup(t, &scratch_);
  for (uint32_t id : scratch_) {
    auto cit = conditions_.find(id);
    if (cit == conditions_.end()) continue;  // tombstone
    if (cit->second.Matches(t)) affected->push_back(id);
  }
  return Status::OK();
}

Status DiscriminationRuleIndex::OnInsert(const std::string& rel, TupleId,
                                         const Tuple& t,
                                         std::vector<uint32_t>* affected) {
  return Affected(rel, t, affected);
}

Status DiscriminationRuleIndex::OnDelete(const std::string& rel, TupleId,
                                         const Tuple& t,
                                         std::vector<uint32_t>* affected) {
  return Affected(rel, t, affected);
}

size_t DiscriminationRuleIndex::FootprintBytes() const {
  size_t total = 0;
  for (const auto& [rel, disc] : by_relation_) {
    total += rel.size() + disc.size() * 2 * sizeof(uint32_t) +
             disc.range_entries() * (2 * sizeof(double) + sizeof(uint32_t));
  }
  for (const auto& [id, cond] : conditions_) {
    total += sizeof(id) + cond.relation.size() +
             cond.ranges.size() * sizeof(IndexedCondition::Range);
  }
  return total;
}

}  // namespace prodb
