#include "ruleindex/predicate_index.h"

namespace prodb {

Box PredicateIndex::CondBox(const IndexedCondition& cond) const {
  Box box = Box::Infinite(dims_);
  for (size_t a = 0; a < dims_ && a < cond.ranges.size(); ++a) {
    if (cond.ranges[a].lo.has_value()) box.lo[a] = *cond.ranges[a].lo;
    if (cond.ranges[a].hi.has_value()) box.hi[a] = *cond.ranges[a].hi;
  }
  return box;
}

Status PredicateIndex::AddCondition(const IndexedCondition& cond) {
  if (conditions_.count(cond.id)) {
    return Status::AlreadyExists("condition " + std::to_string(cond.id));
  }
  auto it = trees_.find(cond.relation);
  if (it == trees_.end()) {
    it = trees_.emplace(cond.relation, std::make_unique<RTree>(dims_)).first;
  }
  it->second->Insert(CondBox(cond), cond.id);
  conditions_[cond.id] = cond;
  return Status::OK();
}

Status PredicateIndex::RemoveCondition(uint32_t id) {
  auto it = conditions_.find(id);
  if (it == conditions_.end()) {
    return Status::NotFound("condition " + std::to_string(id));
  }
  auto tit = trees_.find(it->second.relation);
  if (tit != trees_.end()) {
    tit->second->Remove(CondBox(it->second), id);
  }
  conditions_.erase(it);
  return Status::OK();
}

Status PredicateIndex::Affected(const std::string& rel, const Tuple& t,
                                std::vector<uint32_t>* affected) const {
  affected->clear();
  auto it = trees_.find(rel);
  if (it == trees_.end()) return Status::OK();
  std::vector<double> point(dims_, 0.0);
  for (size_t a = 0; a < dims_ && a < t.arity(); ++a) {
    if (!t[a].is_numeric()) {
      // A non-numeric value cannot fall inside a bounded interval; treat
      // it as matching only fully unbounded dimensions by projecting to
      // an off-scale coordinate.
      point[a] = std::numeric_limits<double>::infinity();
    } else {
      point[a] = t[a].numeric();
    }
  }
  for (uint64_t id : it->second->SearchPoint(point)) {
    affected->push_back(static_cast<uint32_t>(id));
  }
  return Status::OK();
}

Status PredicateIndex::OnInsert(const std::string& rel, TupleId, const Tuple& t,
                                std::vector<uint32_t>* affected) {
  // "Using Predicate Indexing implies no special treatment of insertions
  // to base relations" — the cost is the tree search itself.
  return Affected(rel, t, affected);
}

Status PredicateIndex::OnDelete(const std::string& rel, TupleId, const Tuple& t,
                                std::vector<uint32_t>* affected) {
  return Affected(rel, t, affected);
}

Status PredicateIndex::OnBatch(const ChangeSet& batch,
                               std::vector<uint32_t>* affected) {
  affected->clear();
  std::map<std::string, const RTree*> cache;
  std::vector<double> point(dims_, 0.0);
  for (const Delta& d : batch) {
    auto [cit, fresh] = cache.try_emplace(d.relation, nullptr);
    if (fresh) {
      auto it = trees_.find(d.relation);
      if (it != trees_.end()) cit->second = it->second.get();
    }
    const RTree* tree = cit->second;
    if (tree == nullptr) continue;
    for (size_t a = 0; a < dims_; ++a) {
      point[a] = (a < d.tuple.arity() && d.tuple[a].is_numeric())
                     ? d.tuple[a].numeric()
                     : std::numeric_limits<double>::infinity();
    }
    for (uint64_t id : tree->SearchPoint(point)) {
      affected->push_back(static_cast<uint32_t>(id));
    }
  }
  std::sort(affected->begin(), affected->end());
  affected->erase(std::unique(affected->begin(), affected->end()),
                  affected->end());
  return Status::OK();
}

size_t PredicateIndex::FootprintBytes() const {
  size_t total = 0;
  for (const auto& [rel, tree] : trees_) {
    // Entries dominate: box (2 * dims doubles) + id + node overhead.
    total += tree->size() * (2 * dims_ * sizeof(double) + 24);
  }
  for (const auto& [id, cond] : conditions_) {
    total += sizeof(IndexedCondition) +
             cond.ranges.size() * sizeof(IndexedCondition::Range);
  }
  return total;
}

std::vector<uint32_t> PredicateIndex::ConditionsOverlapping(
    const std::string& rel, const Box& query) const {
  std::vector<uint32_t> out;
  auto it = trees_.find(rel);
  if (it == trees_.end()) return out;
  for (uint64_t id : it->second->SearchBox(query)) {
    out.push_back(static_cast<uint32_t>(id));
  }
  return out;
}

}  // namespace prodb
