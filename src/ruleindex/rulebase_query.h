#ifndef PRODB_RULEINDEX_RULEBASE_QUERY_H_
#define PRODB_RULEINDEX_RULEBASE_QUERY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/catalog.h"
#include "index/rtree.h"
#include "lang/rule.h"

namespace prodb {

/// Queries over the rule base itself (§4.2.3, [LIN87]): "Give me all the
/// rules that apply on employees older than 55".
///
/// Every (rule, CE) pair's constant tests over numeric attributes
/// describe an axis-aligned box in that class's attribute space; an
/// R-tree per class indexes those boxes. A tuple maps to a point query;
/// a constraint like "older than 55" maps to a box query. The paper
/// notes this is only possible because conditions are stored separately
/// from the data — "not possible in systems, such as POSTGRES, where
/// rule information is stored together with the actual data".
///
/// Results may over-approximate (symbolic equality tests and join
/// structure are not box-encodable); they never miss a rule whose
/// numeric constraints admit the probe.
class RuleBaseQueryIndex {
 public:
  /// `catalog` supplies class schemas (box dimensionality per class).
  explicit RuleBaseQueryIndex(const Catalog* catalog) : catalog_(catalog) {}

  /// Indexes every condition element of `rule`.
  Status AddRule(int rule_id, const Rule& rule);

  /// Rule ids with a CE over `cls` whose numeric constraints admit the
  /// tuple (deduplicated, sorted).
  Status RulesMatchingTuple(const std::string& cls, const Tuple& t,
                            std::vector<int>* out) const;

  /// Rule ids with a CE over `cls` whose box overlaps the constraint
  /// `attr op value` (e.g. age > 55). Other attributes are unconstrained.
  Status RulesMatchingConstraint(const std::string& cls, int attr,
                                 CompareOp op, double value,
                                 std::vector<int>* out) const;

  size_t IndexedConditionCount() const { return entries_; }

 private:
  struct ClassIndex {
    std::unique_ptr<RTree> tree;
    size_t dims = 0;
    // R-tree entry id -> (rule id, that CE's numeric constant tests);
    // tuple probes verify candidates exactly against these.
    std::vector<std::pair<int, std::vector<ConstantTest>>> entries;
  };

  Status EnsureClass(const std::string& cls, ClassIndex** out);

  const Catalog* catalog_;
  std::map<std::string, ClassIndex> classes_;
  size_t entries_ = 0;
};

}  // namespace prodb

#endif  // PRODB_RULEINDEX_RULEBASE_QUERY_H_
