#ifndef PRODB_RULEINDEX_RULE_INDEX_H_
#define PRODB_RULEINDEX_RULE_INDEX_H_

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "common/change_set.h"
#include "common/status.h"
#include "db/catalog.h"

namespace prodb {

/// A single-relation condition registered for update monitoring: per
/// (numeric) attribute an interval [lo, hi], unbounded when nullopt.
/// This is the shape of condition [STON86a] analyzes — the read set of a
/// cached query / materialized view / rule LHS restricted to one
/// relation.
struct IndexedCondition {
  uint32_t id = 0;
  std::string relation;
  struct Range {
    std::optional<double> lo, hi;
  };
  std::vector<Range> ranges;  // parallel to the relation's attributes

  /// Exact test: does the tuple satisfy every interval? Non-numeric
  /// attribute values fail bounded intervals.
  bool Matches(const Tuple& t) const;
};

/// Detects which registered conditions are affected by an update — the
/// rule-indexing problem of §2.3. Implementations may report false drops
/// (conditions that on closer inspection are unaffected); they must never
/// miss an affected condition. The benchmark E7 reproduces [STON86a]'s
/// finding that neither implementation dominates: the winner depends on
/// update probability and condition overlap.
class RuleIndex {
 public:
  virtual ~RuleIndex() = default;

  virtual Status AddCondition(const IndexedCondition& cond) = 0;
  virtual Status RemoveCondition(uint32_t id) = 0;

  /// Reports conditions affected by inserting `t` into `rel` and updates
  /// internal bookkeeping (markers). Output may contain false drops.
  virtual Status OnInsert(const std::string& rel, TupleId id, const Tuple& t,
                          std::vector<uint32_t>* affected) = 0;

  /// Reports conditions affected by deleting tuple `id` and clears its
  /// bookkeeping.
  virtual Status OnDelete(const std::string& rel, TupleId id, const Tuple& t,
                          std::vector<uint32_t>* affected) = 0;

  /// Reports the union of conditions affected by an entire ChangeSet
  /// (sorted, deduplicated), updating bookkeeping for every delta in
  /// order. The default processes the batch tuple-at-a-time;
  /// implementations override to amortize per-relation work.
  virtual Status OnBatch(const ChangeSet& batch,
                         std::vector<uint32_t>* affected) {
    affected->clear();
    std::vector<uint32_t> per;
    for (const Delta& d : batch) {
      Status st = d.is_insert() ? OnInsert(d.relation, d.id, d.tuple, &per)
                                : OnDelete(d.relation, d.id, d.tuple, &per);
      if (!st.ok()) return st;
      affected->insert(affected->end(), per.begin(), per.end());
    }
    std::sort(affected->begin(), affected->end());
    affected->erase(std::unique(affected->begin(), affected->end()),
                    affected->end());
    return Status::OK();
  }

  virtual size_t FootprintBytes() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace prodb

#endif  // PRODB_RULEINDEX_RULE_INDEX_H_
