#include "ruleindex/basic_locking.h"

#include <algorithm>

namespace prodb {

bool IndexedCondition::Matches(const Tuple& t) const {
  for (size_t a = 0; a < ranges.size() && a < t.arity(); ++a) {
    const Range& r = ranges[a];
    if (!r.lo.has_value() && !r.hi.has_value()) continue;
    if (!t[a].is_numeric()) return false;
    double v = t[a].numeric();
    if (r.lo.has_value() && v < *r.lo) return false;
    if (r.hi.has_value() && v > *r.hi) return false;
  }
  return true;
}

Status BasicLockingIndex::AddCondition(const IndexedCondition& cond) {
  Relation* rel = catalog_->Get(cond.relation);
  if (rel == nullptr) return Status::NotFound("relation " + cond.relation);
  if (conditions_.count(cond.id)) {
    return Status::AlreadyExists("condition " + std::to_string(cond.id));
  }
  conditions_[cond.id] = cond;

  // Mark every tuple the condition currently reads.
  auto& marks = markers_[cond.relation];
  PRODB_RETURN_IF_ERROR(rel->Scan([&](TupleId id, const Tuple& t) {
    if (cond.Matches(t)) marks[id].push_back(cond.id);
    return Status::OK();
  }));

  // Register the key-interval mark on the B+-tree (create it on first
  // use) so phantom insertions are caught.
  if (!rel->HasBTreeIndex(indexed_attr_)) {
    PRODB_RETURN_IF_ERROR(rel->CreateBTreeIndex(indexed_attr_));
  }
  BPlusTree* tree = rel->btree_index(indexed_attr_);
  const IndexedCondition::Range& r =
      static_cast<size_t>(indexed_attr_) < cond.ranges.size()
          ? cond.ranges[static_cast<size_t>(indexed_attr_)]
          : IndexedCondition::Range{};
  std::optional<Value> lo, hi;
  if (r.lo.has_value()) lo = Value(*r.lo);
  if (r.hi.has_value()) hi = Value(*r.hi);
  tree->MarkInterval(lo, hi, cond.id);
  return Status::OK();
}

Status BasicLockingIndex::RemoveCondition(uint32_t id) {
  auto it = conditions_.find(id);
  if (it == conditions_.end()) {
    return Status::NotFound("condition " + std::to_string(id));
  }
  Relation* rel = catalog_->Get(it->second.relation);
  if (rel != nullptr && rel->HasBTreeIndex(indexed_attr_)) {
    rel->btree_index(indexed_attr_)->UnmarkInterval(id);
  }
  auto& marks = markers_[it->second.relation];
  for (auto mit = marks.begin(); mit != marks.end();) {
    auto& v = mit->second;
    v.erase(std::remove(v.begin(), v.end(), id), v.end());
    if (v.empty()) {
      mit = marks.erase(mit);
    } else {
      ++mit;
    }
  }
  conditions_.erase(it);
  return Status::OK();
}

Status BasicLockingIndex::OnInsert(const std::string& rel_name, TupleId id,
                                   const Tuple& t,
                                   std::vector<uint32_t>* affected) {
  affected->clear();
  Relation* rel = catalog_->Get(rel_name);
  if (rel == nullptr) return Status::NotFound("relation " + rel_name);

  // Candidates from the index interval marks covering the new key; an
  // unindexed relation degenerates to "every condition on the relation".
  std::vector<uint32_t> candidates;
  if (rel->HasBTreeIndex(indexed_attr_) &&
      static_cast<size_t>(indexed_attr_) < t.arity()) {
    candidates = rel->btree_index(indexed_attr_)
                     ->MarkersCovering(t[static_cast<size_t>(indexed_attr_)]);
  } else {
    for (const auto& [cid, cond] : conditions_) {
      if (cond.relation == rel_name) candidates.push_back(cid);
    }
  }
  // Verify candidates exactly; set markers on the new tuple.
  auto& marks = markers_[rel_name];
  for (uint32_t cid : candidates) {
    auto cit = conditions_.find(cid);
    if (cit == conditions_.end()) continue;
    if (cit->second.Matches(t)) {
      affected->push_back(cid);
      marks[id].push_back(cid);
    }
  }
  return Status::OK();
}

Status BasicLockingIndex::OnDelete(const std::string& rel_name, TupleId id,
                                   const Tuple& t,
                                   std::vector<uint32_t>* affected) {
  (void)t;
  affected->clear();
  auto rit = markers_.find(rel_name);
  if (rit == markers_.end()) return Status::OK();
  auto mit = rit->second.find(id);
  if (mit == rit->second.end()) return Status::OK();
  *affected = mit->second;
  rit->second.erase(mit);
  return Status::OK();
}

Status BasicLockingIndex::OnBatch(const ChangeSet& batch,
                                  std::vector<uint32_t>* affected) {
  affected->clear();
  std::map<std::string, Relation*> rels;
  std::map<std::string, std::vector<uint32_t>> fallback;
  for (const Delta& d : batch) {
    if (d.is_insert()) {
      auto [rit, fresh] = rels.try_emplace(d.relation, nullptr);
      if (fresh) rit->second = catalog_->Get(d.relation);
      Relation* rel = rit->second;
      if (rel == nullptr) return Status::NotFound("relation " + d.relation);

      std::vector<uint32_t> candidates;
      if (rel->HasBTreeIndex(indexed_attr_) &&
          static_cast<size_t>(indexed_attr_) < d.tuple.arity()) {
        candidates =
            rel->btree_index(indexed_attr_)
                ->MarkersCovering(d.tuple[static_cast<size_t>(indexed_attr_)]);
      } else {
        auto [fit, first] = fallback.try_emplace(d.relation);
        if (first) {
          for (const auto& [cid, cond] : conditions_) {
            if (cond.relation == d.relation) fit->second.push_back(cid);
          }
        }
        candidates = fit->second;
      }
      auto& marks = markers_[d.relation];
      for (uint32_t cid : candidates) {
        auto cit = conditions_.find(cid);
        if (cit == conditions_.end()) continue;
        if (cit->second.Matches(d.tuple)) {
          affected->push_back(cid);
          marks[d.id].push_back(cid);
        }
      }
    } else {
      auto rit = markers_.find(d.relation);
      if (rit == markers_.end()) continue;
      auto mit = rit->second.find(d.id);
      if (mit == rit->second.end()) continue;
      affected->insert(affected->end(), mit->second.begin(),
                       mit->second.end());
      rit->second.erase(mit);
    }
  }
  std::sort(affected->begin(), affected->end());
  affected->erase(std::unique(affected->begin(), affected->end()),
                  affected->end());
  return Status::OK();
}

size_t BasicLockingIndex::FootprintBytes() const {
  size_t total = 0;
  for (const auto& [rel, marks] : markers_) {
    total += rel.size();
    for (const auto& [id, v] : marks) {
      total += sizeof(TupleId) + v.size() * sizeof(uint32_t) + 16;
    }
  }
  for (const auto& [id, cond] : conditions_) {
    total += sizeof(IndexedCondition) +
             cond.ranges.size() * sizeof(IndexedCondition::Range);
  }
  return total;
}

size_t BasicLockingIndex::MarkerCount() const {
  size_t total = 0;
  for (const auto& [rel, marks] : markers_) {
    for (const auto& [id, v] : marks) total += v.size();
  }
  return total;
}

}  // namespace prodb
