#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/wire.h"

namespace prodb {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

int Socket::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::Close() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc < 0 && errno == EINTR);
    fd_ = -1;
  }
}

Status Socket::RecvAll(void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (rc == 0) {
      if (got == 0) return Status::NotFound("peer closed");
      return Status::IOError("peer closed mid-frame");
    }
    got += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status Socket::SendAll(const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  size_t sent = 0;
  while (sent < n) {
    ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status Socket::SendFrame(MsgType type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds limit");
  }
  std::string buf;
  buf.resize(kFrameHeaderBytes);
  EncodeFrameHeader(type, static_cast<uint32_t>(payload.size()), buf.data());
  buf.append(payload);
  return SendAll(buf.data(), buf.size());
}

Status Socket::RecvFrame(MsgType* type, std::string* payload) {
  char header[kFrameHeaderBytes];
  PRODB_RETURN_IF_ERROR(RecvAll(header, kFrameHeaderBytes));
  uint32_t len;
  if (!DecodeFrameHeader(header, type, &len)) {
    return Status::InvalidArgument("malformed frame header");
  }
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument("declared frame payload of " +
                                   std::to_string(len) + " exceeds limit");
  }
  payload->resize(len);
  if (len > 0) {
    Status st = RecvAll(payload->data(), len);
    // Mid-payload clean close is still a truncated frame.
    if (st.IsNotFound()) return Status::IOError("peer closed mid-frame");
    PRODB_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

Status ListenTcp(const std::string& host, int port, int backlog,
                 Socket* out, int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(fd, backlog) < 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  *out = std::move(sock);
  return Status::OK();
}

Status ListenUnix(const std::string& path, int backlog, Socket* out) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(fd, backlog) < 0) return Errno("listen");
  *out = std::move(sock);
  return Status::OK();
}

Status Accept(const Socket& listener, Socket* out) {
  int fd;
  do {
    fd = ::accept(listener.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  *out = Socket(fd);
  return Status::OK();
}

Status ConnectTcp(const std::string& host, int port, Socket* out) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad connect address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("connect");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = std::move(sock);
  return Status::OK();
}

Status ConnectUnix(const std::string& path, Socket* out) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("connect");
  *out = std::move(sock);
  return Status::OK();
}

}  // namespace net
}  // namespace prodb
