#include "net/server.h"

#include <sys/socket.h>

#include <utility>

#include "storage/wal.h"

namespace prodb {
namespace net {

RuleServer::RuleServer(RuleServerOptions options)
    : options_(std::move(options)) {}

RuleServer::~RuleServer() { Stop(); }

Status RuleServer::Start() {
  if (options_.tcp_port < 0 && options_.unix_path.empty()) {
    return Status::InvalidArgument(
        "server needs a TCP port or a unix socket path");
  }
  system_ = std::make_unique<ProductionSystem>(options_.system);
  if (!options_.preload.empty()) {
    PRODB_RETURN_IF_ERROR(system_->LoadString(options_.preload));
  }
  if (options_.system.open_existing && options_.system.durable_directory) {
    // Reopened durable database: recovery rebuilt the WM relations, the
    // preload reinstalled the rules — replay WM into the matcher so the
    // conflict set matches the pre-crash acked state.
    PRODB_RETURN_IF_ERROR(system_->ReseedMatcher());
  }
  if (options_.tcp_port >= 0) {
    PRODB_RETURN_IF_ERROR(ListenTcp(options_.tcp_host, options_.tcp_port,
                                    options_.backlog, &tcp_listener_,
                                    &tcp_port_));
  }
  if (!options_.unix_path.empty()) {
    PRODB_RETURN_IF_ERROR(
        ListenUnix(options_.unix_path, options_.backlog, &unix_listener_));
  }
  running_.store(true);
  if (tcp_listener_.valid()) {
    accept_threads_.emplace_back([this] { AcceptLoop(&tcp_listener_); });
  }
  if (unix_listener_.valid()) {
    accept_threads_.emplace_back([this] { AcceptLoop(&unix_listener_); });
  }
  return Status::OK();
}

void RuleServer::Stop() {
  if (!running_.exchange(false)) return;
  // Unblock the accept() calls, then the session reads.
  if (tcp_listener_.valid()) ::shutdown(tcp_listener_.fd(), SHUT_RDWR);
  if (unix_listener_.valid()) ::shutdown(unix_listener_.fd(), SHUT_RDWR);
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();
  tcp_listener_.Close();
  unix_listener_.Close();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& s : sessions) {
    if (s->sock.valid()) ::shutdown(s->sock.fd(), SHUT_RDWR);
  }
  for (auto& s : sessions) {
    if (s->thread.joinable()) s->thread.join();
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void RuleServer::AcceptLoop(Socket* listener) {
  while (running_.load()) {
    Socket conn;
    Status st = Accept(*listener, &conn);
    if (!st.ok()) {
      if (!running_.load()) return;
      continue;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    auto session = std::make_unique<Session>();
    session->sock = std::move(conn);
    Session* raw = session.get();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      // Reap finished sessions so a long-lived server with connection
      // churn does not accumulate joinable threads.
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        if ((*it)->done.load()) {
          (*it)->thread.join();
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw] { SessionLoop(raw); });
  }
}

void RuleServer::SendError(Socket* sock, const Status& st) {
  stats_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
  std::string payload;
  EncodeError(st, &payload);
  // A failed send just means the peer is gone; the session loop notices
  // on its next read.
  Status sent = sock->SendFrame(MsgType::kError, payload);
  (void)sent;
}

void RuleServer::SessionLoop(Session* session) {
  stats_.sessions_active.fetch_add(1, std::memory_order_relaxed);
  Socket* sock = &session->sock;

  // Handshake: the first frame must be kHello carrying the magic, so a
  // client that dialed the wrong port fails loudly instead of having its
  // first request misparsed.
  MsgType type;
  std::string payload;
  Status st = sock->RecvFrame(&type, &payload);
  bool handshaken = false;
  if (st.ok() && type == MsgType::kHello) {
    size_t off = 0;
    uint32_t magic = 0;
    if (GetU32(payload.data(), payload.size(), &off, &magic) &&
        magic == kHelloMagic) {
      std::string reply;
      PutU8(&reply, options_.system.enable_wal ? 1 : 0);
      handshaken = sock->SendFrame(MsgType::kHelloOk, reply).ok();
    } else {
      SendError(sock, Status::InvalidArgument("bad hello magic"));
    }
  } else if (st.ok()) {
    SendError(sock, Status::InvalidArgument(
                        "expected hello as the first frame"));
  }

  while (handshaken && running_.load()) {
    st = sock->RecvFrame(&type, &payload);
    if (st.IsNotFound()) break;  // clean close at a frame boundary
    if (!st.ok()) {
      if (st.IsInvalidArgument()) {
        // Oversize or malformed header: the stream cannot be
        // resynchronized — report and hang up.
        SendError(sock, st);
      }
      break;
    }
    Status io = Status::OK();
    switch (type) {
      case MsgType::kBatch:
        io = HandleBatch(sock, payload);
        break;
      case MsgType::kRun:
        io = HandleRun(sock, payload);
        break;
      case MsgType::kLoad:
        io = HandleLoad(sock, payload);
        break;
      case MsgType::kDump:
        io = HandleDump(sock, payload);
        break;
      case MsgType::kStats:
        io = HandleStats(sock);
        break;
      case MsgType::kPing:
        io = sock->SendFrame(MsgType::kPong, "");
        break;
      default:
        // Unknown-but-intact frame: recoverable; the session continues.
        SendError(sock, Status::InvalidArgument(
                            "unexpected frame type " +
                            std::to_string(static_cast<int>(type))));
        break;
    }
    if (!io.ok()) break;  // reply did not reach the peer
  }
  // Shutdown, not Close: Stop() may still address this socket by fd to
  // unblock it. Closing here would race on fd_ and — if the kernel
  // recycled the number for a newly accepted connection — let Stop()
  // shut down an unrelated descriptor. The fd stays owned by the
  // Session and is closed by its destructor, which only runs after
  // this thread is joined (AcceptLoop reap or Stop).
  if (sock->valid()) ::shutdown(sock->fd(), SHUT_RDWR);
  stats_.sessions_active.fetch_sub(1, std::memory_order_relaxed);
  session->done.store(true);
}

Status RuleServer::ApplyBatchOnce(const WireBatch& batch,
                                  WireBatchAck* ack) {
  ConcurrentEngine& engine = system_->concurrent_engine();
  Catalog& catalog = system_->catalog();
  auto txn = engine.txn_manager().Begin();
  ChangeSet delta;
  std::vector<TupleId> insert_ids;

  // Mirrors ConcurrentEngine::RunInstantiation's compensation: the
  // matcher has not been told about this batch yet, so abort is purely
  // relational — inverse ChangeSet with Restore (original ids), abort
  // record under the transaction's WAL scope, drop page holds, release
  // locks.
  auto abort_with = [&](Status st) -> Status {
    ChangeSet inverse = delta.Inverse();
    Status comp_error;
    {
      WalTxnScope wal_scope(txn->id());
      for (size_t i = 0; i < inverse.size(); ++i) {
        Delta& d = inverse[i];
        Relation* rel = catalog.Get(d.relation);
        Status s = rel == nullptr
                       ? Status::NotFound("relation " + d.relation)
                       : (d.is_insert() ? rel->Restore(d.id, d.tuple)
                                        : rel->Delete(d.id));
        if (!s.ok() && comp_error.ok()) comp_error = s;
      }
    }
    if (LogManager* wal = catalog.wal()) {
      LogRecord rec;
      rec.type = LogRecordType::kAbort;
      rec.txn_id = txn->id();
      wal->Append(rec);
      catalog.buffer_pool()->ReleaseTxnPages(txn->id());
    }
    engine.txn_manager().lock_manager()->ReleaseAll(txn->id());
    if (!comp_error.ok()) return comp_error;
    return st;
  };

  // RHS verbs under 2PL write locks, building the batch's whole ∆.
  for (const WireOp& op : batch.ops) {
    switch (op.kind) {
      case kOpMake: {
        TupleId id;
        Status st = txn->Insert(op.cls, op.tuple, &id);
        if (!st.ok()) return abort_with(st);
        delta.AddInsert(op.cls, op.tuple, id);
        insert_ids.push_back(id);
        break;
      }
      case kOpRemove: {
        Tuple old;
        Status st = txn->Read(op.cls, op.id, &old);
        if (st.ok()) st = txn->Delete(op.cls, op.id);
        if (!st.ok()) return abort_with(st);
        delta.AddDelete(op.cls, op.id, old);
        break;
      }
      case kOpModify: {
        Tuple old;
        Status st = txn->Read(op.cls, op.id, &old);
        if (st.ok()) st = txn->Delete(op.cls, op.id);
        if (!st.ok()) return abort_with(st);
        TupleId id;
        st = txn->Insert(op.cls, op.tuple, &id);
        if (!st.ok()) return abort_with(st);
        delta.AddModify(op.cls, op.id, old, op.tuple, id);
        insert_ids.push_back(id);
        break;
      }
      default:
        return abort_with(
            Status::InvalidArgument("unknown batch op kind"));
    }
  }

  // Maintenance under the server's maintenance mutex: the delta-listener
  // bracket must capture exactly this batch's conflict-set mutations,
  // and no other session (or a kRun drain) may interleave an OnBatch.
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    ConflictSet& cs = system_->conflict_set();
    cs.SetDeltaListener([&](bool added, const std::string& key,
                            const Instantiation* inst) {
      WireConflictDelta cd;
      cd.added = added;
      cd.key = key;
      if (inst != nullptr) cd.rule = inst->rule_name;
      ack->conflict.push_back(std::move(cd));
    });
    Status st =
        delta.empty() ? Status::OK() : system_->matcher().OnBatch(delta);
    cs.SetDeltaListener(nullptr);
    if (!st.ok()) {
      // Matcher state cannot be unwound cleanly (same contract as the
      // engine's maintenance-failure path): drop page holds and locks,
      // surface the error.
      ack->conflict.clear();
      if (catalog.wal() != nullptr) {
        catalog.buffer_pool()->ReleaseTxnPages(txn->id());
      }
      engine.txn_manager().lock_manager()->ReleaseAll(txn->id());
      return st;
    }
  }

  // Commit point — outside the maintenance mutex so concurrently acking
  // sessions share one log force (group commit). On failure the
  // transaction is still active: compensate like any abort. The matcher
  // has seen the batch by then, so a commit-force failure after
  // maintenance surfaces as an error ack with the engine-visible state
  // ahead of the relations — the same torn contract the engine has; the
  // client must treat a non-ack as "unknown, reconcile via kDump".
  Status st = engine.txn_manager().Commit(txn.get());
  if (!st.ok()) {
    ack->conflict.clear();
    return abort_with(st);
  }

  ack->txn_id = txn->id();
  if (LogManager* wal = catalog.wal()) {
    ack->durable = true;
    ack->durable_lsn = wal->flushed_lsn();
  }
  ack->insert_ids = std::move(insert_ids);
  return Status::OK();
}

Status RuleServer::HandleBatch(Socket* sock, const std::string& payload) {
  WireBatch batch;
  Status st = DecodeBatch(payload, &batch);
  if (!st.ok()) {
    SendError(sock, st);  // intact but malformed: session continues
    return Status::OK();
  }

  WireBatchAck ack;
  if (batch.ops.empty()) {
    // Empty batch = durability barrier: force everything buffered so
    // far (auto-commit mutations, directory entries) and ack the LSN.
    Lsn lsn = 0;
    st = system_->catalog().ForceDurable(&lsn);
    if (!st.ok()) {
      SendError(sock, st);
      return Status::OK();
    }
    ack.durable = options_.system.enable_wal;
    ack.durable_lsn = lsn;
  } else {
    for (size_t attempt = 0;; ++attempt) {
      ack = WireBatchAck{};
      st = ApplyBatchOnce(batch, &ack);
      if (st.ok()) break;
      if (st.IsDeadlock() && attempt < options_.deadlock_retries) {
        stats_.deadlock_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      SendError(sock, st);
      return Status::OK();
    }
    stats_.batches_applied.fetch_add(1, std::memory_order_relaxed);
    stats_.ops_applied.fetch_add(batch.ops.size(),
                                 std::memory_order_relaxed);
  }
  std::string reply;
  EncodeBatchAck(ack, &reply);
  return sock->SendFrame(MsgType::kBatchAck, reply);
}

Status RuleServer::HandleRun(Socket* sock, const std::string& payload) {
  size_t off = 0;
  uint8_t mode = 0;
  if (!GetU8(payload.data(), payload.size(), &off, &mode) || mode > 1) {
    SendError(sock, Status::InvalidArgument("bad run mode"));
    return Status::OK();
  }
  stats_.runs.fetch_add(1, std::memory_order_relaxed);
  WireRunResult result;
  Status st;
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    if (mode == 1) {
      ConcurrentRunResult r;
      st = system_->RunConcurrent(&r);
      result.firings = r.firings;
      result.halted = r.halted;
      if (st.ok()) result.fired = system_->concurrent_engine().commit_log();
    } else {
      const size_t before =
          system_->sequential_engine().firing_log().size();
      EngineRunResult r;
      st = system_->Run(&r);
      result.firings = r.firings;
      result.halted = r.halted;
      if (st.ok()) {
        const auto& log = system_->sequential_engine().firing_log();
        result.fired.assign(log.begin() + static_cast<ptrdiff_t>(before),
                            log.end());
      }
    }
  }
  if (!st.ok()) {
    SendError(sock, st);
    return Status::OK();
  }
  std::string reply;
  EncodeRunResult(result, &reply);
  return sock->SendFrame(MsgType::kRunResult, reply);
}

Status RuleServer::HandleLoad(Socket* sock, const std::string& payload) {
  if (!options_.allow_load) {
    SendError(sock, Status::NotSupported("kLoad disabled on this server"));
    return Status::OK();
  }
  size_t off = 0;
  std::string source;
  if (!GetString(payload.data(), payload.size(), &off, &source)) {
    SendError(sock, Status::InvalidArgument("truncated load payload"));
    return Status::OK();
  }
  Status st;
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    st = system_->LoadString(source);
  }
  if (st.ok() && options_.system.enable_wal) {
    // New class declarations wrote directory entries; make them durable
    // before telling the client its classes exist.
    st = system_->catalog().ForceDurable();
  }
  if (!st.ok()) {
    SendError(sock, st);
    return Status::OK();
  }
  return sock->SendFrame(MsgType::kOk, "");
}

Status RuleServer::HandleDump(Socket* sock, const std::string& payload) {
  size_t off = 0;
  std::string cls;
  if (!GetString(payload.data(), payload.size(), &off, &cls)) {
    SendError(sock, Status::InvalidArgument("truncated dump payload"));
    return Status::OK();
  }
  WireDumpReply reply;
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    Relation* rel = system_->catalog().Get(cls);
    if (rel == nullptr) {
      SendError(sock, Status::NotFound("class " + cls));
      return Status::OK();
    }
    Status st = rel->Scan([&](TupleId id, const Tuple& t) {
      reply.tuples.emplace_back(id, t);
      return Status::OK();
    });
    if (!st.ok()) {
      SendError(sock, st);
      return Status::OK();
    }
  }
  std::string out;
  EncodeDumpReply(reply, &out);
  return sock->SendFrame(MsgType::kDumpReply, out);
}

Status RuleServer::HandleStats(Socket* sock) {
  WireStatsReply reply;
  auto add = [&](const char* key, uint64_t v) {
    reply.counters.emplace_back(key, v);
  };
  add("connections_accepted", stats_.connections_accepted.load());
  add("sessions_active", stats_.sessions_active.load());
  add("batches_applied", stats_.batches_applied.load());
  add("ops_applied", stats_.ops_applied.load());
  add("deadlock_retries", stats_.deadlock_retries.load());
  add("frames_rejected", stats_.frames_rejected.load());
  add("runs", stats_.runs.load());
  const MatcherStats& ms = system_->matcher().stats();
  add("matcher_batches", ms.batches.load());
  add("matcher_propagations", ms.propagations.load());
  add("matcher_tuples_examined", ms.tuples_examined.load());
  add("sharded_apply_serialized", ms.sharded_apply_serialized.load());
  add("plans_built", ms.plans_built.load());
  std::vector<ShardStats> shards = system_->matcher().ShardStatsSnapshot();
  add("match_shards", shards.size());
  DurabilityStats ds = system_->catalog().GetDurabilityStats();
  add("wal_records_appended", ds.wal_records_appended);
  add("wal_flushes", ds.wal_flushes);
  add("durable_forces", ds.durable_forces);
  add("checkpoints_taken", ds.checkpoints_taken);
  std::string out;
  EncodeStatsReply(reply, &out);
  return sock->SendFrame(MsgType::kStatsReply, out);
}

}  // namespace net
}  // namespace prodb
