#ifndef PRODB_NET_SOCKET_H_
#define PRODB_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/protocol.h"

namespace prodb {
namespace net {

/// Thin RAII wrapper over a stream socket fd with the loop hygiene the
/// serving layer needs everywhere: every syscall retries EINTR, sends use
/// MSG_NOSIGNAL so a client that vanished mid-reply surfaces as EPIPE
/// instead of killing the process, and a clean peer close at a frame
/// boundary is distinguishable (Status::NotFound) from a mid-frame
/// truncation (Status::IOError).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Releases ownership without closing.
  int Release();
  void Close();

  /// Reads exactly n bytes. Status::NotFound when the peer closed before
  /// the first byte (clean EOF), Status::IOError on mid-read EOF or errno.
  Status RecvAll(void* buf, size_t n);
  /// Writes exactly n bytes (MSG_NOSIGNAL; EPIPE -> Status::IOError).
  Status SendAll(const void* buf, size_t n);

  /// --- Frame helpers ------------------------------------------------------

  /// Sends one frame: header + payload in a single buffered write.
  Status SendFrame(MsgType type, const std::string& payload);
  /// Receives one frame. Clean close at a frame boundary -> NotFound.
  /// A declared payload above kMaxFramePayload -> InvalidArgument with
  /// the stream left unsynchronized (caller must close); the out-params
  /// carry the decoded type and length so a server can still report it.
  Status RecvFrame(MsgType* type, std::string* payload);

 private:
  int fd_ = -1;
};

/// --- Connection setup -----------------------------------------------------

/// Binds + listens on host:port (port 0 picks an ephemeral port; the
/// chosen one is returned through *bound_port via getsockname).
Status ListenTcp(const std::string& host, int port, int backlog,
                 Socket* out, int* bound_port);
/// Binds + listens on a Unix-domain path (unlinked first if stale).
Status ListenUnix(const std::string& path, int backlog, Socket* out);
/// Accepts one connection (EINTR-retried).
Status Accept(const Socket& listener, Socket* out);

Status ConnectTcp(const std::string& host, int port, Socket* out);
Status ConnectUnix(const std::string& path, Socket* out);

}  // namespace net
}  // namespace prodb

#endif  // PRODB_NET_SOCKET_H_
