#ifndef PRODB_NET_WIRE_H_
#define PRODB_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "net/protocol.h"

namespace prodb {
namespace net {

/// --- Primitive codecs ----------------------------------------------------
/// Append-style encoders and bounds-checked cursor decoders. Decoders
/// return false on truncation; payload-level Decode* functions wrap that
/// in a Status so the session can reply kError with a reason.

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutString(std::string* out, const std::string& s);
void PutTupleId(std::string* out, TupleId id);
void PutTuple(std::string* out, const Tuple& t);

bool GetU8(const char* d, size_t n, size_t* off, uint8_t* v);
bool GetU16(const char* d, size_t n, size_t* off, uint16_t* v);
bool GetU32(const char* d, size_t n, size_t* off, uint32_t* v);
bool GetU64(const char* d, size_t n, size_t* off, uint64_t* v);
bool GetString(const char* d, size_t n, size_t* off, std::string* s);
bool GetTupleId(const char* d, size_t n, size_t* off, TupleId* id);
bool GetTuple(const char* d, size_t n, size_t* off, Tuple* t);

/// --- Messages ------------------------------------------------------------

/// One client batch op. kOpMake ignores `id`; kOpRemove ignores `tuple`;
/// kOpModify replaces the tuple at `id` (delete + insert, one WM event).
struct WireOp {
  uint8_t kind = kOpMake;
  std::string cls;
  TupleId id{0, 0};
  Tuple tuple;
};

struct WireBatch {
  std::vector<WireOp> ops;
};

/// One conflict-set mutation observed during a batch's maintenance.
/// `key` is the instantiation's identity (rule index + tuple ids) —
/// stable across processes for identical WM histories, which is what the
/// byte-identical server-vs-in-process tests assert. Recency is local
/// execution state and deliberately not serialized.
struct WireConflictDelta {
  bool added = false;
  std::string rule;  // empty for removes (identity is the key)
  std::string key;
};

struct WireBatchAck {
  uint64_t txn_id = 0;
  /// Every record of this batch is durable at or below this LSN (0 when
  /// the server runs without a WAL — `durable` says which).
  uint64_t durable_lsn = 0;
  bool durable = false;
  /// Assigned TupleIds for each kOpMake/kOpModify, in op order — the
  /// client's handles for later removes/modifies.
  std::vector<TupleId> insert_ids;
  std::vector<WireConflictDelta> conflict;
};

struct WireRunResult {
  uint64_t firings = 0;
  bool halted = false;
  std::vector<std::string> fired;  // rule names in firing/commit order
};

struct WireDumpReply {
  std::vector<std::pair<TupleId, Tuple>> tuples;
};

struct WireStatsReply {
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// --- Payload codecs ------------------------------------------------------

void EncodeBatch(const WireBatch& batch, std::string* out);
Status DecodeBatch(const std::string& payload, WireBatch* out);

/// The conflict-delta section alone, exposed so tests can compare the
/// exact bytes a server ack carries against an in-process capture.
void EncodeConflictDeltas(const std::vector<WireConflictDelta>& deltas,
                          std::string* out);
Status DecodeConflictDeltas(const char* d, size_t n, size_t* off,
                            std::vector<WireConflictDelta>* out);

void EncodeBatchAck(const WireBatchAck& ack, std::string* out);
Status DecodeBatchAck(const std::string& payload, WireBatchAck* out);

void EncodeRunResult(const WireRunResult& r, std::string* out);
Status DecodeRunResult(const std::string& payload, WireRunResult* out);

void EncodeDumpReply(const WireDumpReply& r, std::string* out);
Status DecodeDumpReply(const std::string& payload, WireDumpReply* out);

void EncodeStatsReply(const WireStatsReply& r, std::string* out);
Status DecodeStatsReply(const std::string& payload, WireStatsReply* out);

void EncodeError(const Status& st, std::string* out);
/// Reconstructs the Status an kError payload carries (best effort: the
/// code round-trips, the message is the server's).
Status DecodeError(const std::string& payload);

/// --- Frame header --------------------------------------------------------

void EncodeFrameHeader(MsgType type, uint32_t payload_len, char out[8]);
/// False when the header bytes are malformed (bad version).
bool DecodeFrameHeader(const char in[8], MsgType* type,
                       uint32_t* payload_len);

}  // namespace net
}  // namespace prodb

#endif  // PRODB_NET_WIRE_H_
