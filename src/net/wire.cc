#include "net/wire.h"

#include <cstring>

namespace prodb {
namespace net {

namespace {

template <typename T>
void PutLe(std::string* out, T v) {
  char buf[sizeof(T)];
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, sizeof(T));
}

template <typename T>
bool GetLe(const char* d, size_t n, size_t* off, T* v) {
  if (*off + sizeof(T) > n) return false;
  T r = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    r |= static_cast<T>(static_cast<unsigned char>(d[*off + i])) << (8 * i);
  }
  *v = r;
  *off += sizeof(T);
  return true;
}

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated payload: ") + what);
}

}  // namespace

void PutU8(std::string* out, uint8_t v) { PutLe(out, v); }
void PutU16(std::string* out, uint16_t v) { PutLe(out, v); }
void PutU32(std::string* out, uint32_t v) { PutLe(out, v); }
void PutU64(std::string* out, uint64_t v) { PutLe(out, v); }

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutTupleId(std::string* out, TupleId id) {
  PutU32(out, id.page_id);
  PutU32(out, id.slot_id);
}

void PutTuple(std::string* out, const Tuple& t) { t.SerializeTo(out); }

bool GetU8(const char* d, size_t n, size_t* off, uint8_t* v) {
  return GetLe(d, n, off, v);
}
bool GetU16(const char* d, size_t n, size_t* off, uint16_t* v) {
  return GetLe(d, n, off, v);
}
bool GetU32(const char* d, size_t n, size_t* off, uint32_t* v) {
  return GetLe(d, n, off, v);
}
bool GetU64(const char* d, size_t n, size_t* off, uint64_t* v) {
  return GetLe(d, n, off, v);
}

bool GetString(const char* d, size_t n, size_t* off, std::string* s) {
  uint32_t len;
  if (!GetU32(d, n, off, &len)) return false;
  if (*off + len > n) return false;
  s->assign(d + *off, len);
  *off += len;
  return true;
}

bool GetTupleId(const char* d, size_t n, size_t* off, TupleId* id) {
  return GetU32(d, n, off, &id->page_id) && GetU32(d, n, off, &id->slot_id);
}

bool GetTuple(const char* d, size_t n, size_t* off, Tuple* t) {
  return Tuple::DeserializeFrom(d, n, off, t);
}

void EncodeBatch(const WireBatch& batch, std::string* out) {
  PutU32(out, static_cast<uint32_t>(batch.ops.size()));
  for (const WireOp& op : batch.ops) {
    PutU8(out, op.kind);
    PutString(out, op.cls);
    switch (op.kind) {
      case kOpMake:
        PutTuple(out, op.tuple);
        break;
      case kOpRemove:
        PutTupleId(out, op.id);
        break;
      case kOpModify:
        PutTupleId(out, op.id);
        PutTuple(out, op.tuple);
        break;
    }
  }
}

Status DecodeBatch(const std::string& payload, WireBatch* out) {
  const char* d = payload.data();
  size_t n = payload.size(), off = 0;
  uint32_t count;
  if (!GetU32(d, n, &off, &count)) return Truncated("batch op count");
  // An op is at least 1 (kind) + 4 (cls len) + 4 bytes of body.
  if (count > n / 5) {
    return Status::InvalidArgument("batch op count exceeds payload size");
  }
  out->ops.clear();
  out->ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireOp op;
    if (!GetU8(d, n, &off, &op.kind)) return Truncated("op kind");
    if (!GetString(d, n, &off, &op.cls)) return Truncated("op class");
    switch (op.kind) {
      case kOpMake:
        if (!GetTuple(d, n, &off, &op.tuple)) return Truncated("make tuple");
        break;
      case kOpRemove:
        if (!GetTupleId(d, n, &off, &op.id)) return Truncated("remove id");
        break;
      case kOpModify:
        if (!GetTupleId(d, n, &off, &op.id)) return Truncated("modify id");
        if (!GetTuple(d, n, &off, &op.tuple)) {
          return Truncated("modify tuple");
        }
        break;
      default:
        return Status::InvalidArgument("unknown batch op kind " +
                                       std::to_string(op.kind));
    }
    out->ops.push_back(std::move(op));
  }
  if (off != n) {
    return Status::InvalidArgument("trailing bytes after batch ops");
  }
  return Status::OK();
}

void EncodeConflictDeltas(const std::vector<WireConflictDelta>& deltas,
                          std::string* out) {
  PutU32(out, static_cast<uint32_t>(deltas.size()));
  for (const WireConflictDelta& cd : deltas) {
    PutU8(out, cd.added ? 1 : 0);
    PutString(out, cd.rule);
    PutString(out, cd.key);
  }
}

Status DecodeConflictDeltas(const char* d, size_t n, size_t* off,
                            std::vector<WireConflictDelta>* out) {
  uint32_t count;
  if (!GetU32(d, n, off, &count)) return Truncated("conflict delta count");
  if (count > n / 9) {
    return Status::InvalidArgument("conflict delta count exceeds payload");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireConflictDelta cd;
    uint8_t added;
    if (!GetU8(d, n, off, &added)) return Truncated("conflict delta flag");
    cd.added = added != 0;
    if (!GetString(d, n, off, &cd.rule)) return Truncated("conflict rule");
    if (!GetString(d, n, off, &cd.key)) return Truncated("conflict key");
    out->push_back(std::move(cd));
  }
  return Status::OK();
}

void EncodeBatchAck(const WireBatchAck& ack, std::string* out) {
  PutU64(out, ack.txn_id);
  PutU64(out, ack.durable_lsn);
  PutU8(out, ack.durable ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(ack.insert_ids.size()));
  for (TupleId id : ack.insert_ids) PutTupleId(out, id);
  EncodeConflictDeltas(ack.conflict, out);
}

Status DecodeBatchAck(const std::string& payload, WireBatchAck* out) {
  const char* d = payload.data();
  size_t n = payload.size(), off = 0;
  uint8_t durable;
  uint32_t id_count;
  if (!GetU64(d, n, &off, &out->txn_id) ||
      !GetU64(d, n, &off, &out->durable_lsn) ||
      !GetU8(d, n, &off, &durable) || !GetU32(d, n, &off, &id_count)) {
    return Truncated("batch ack header");
  }
  out->durable = durable != 0;
  if (id_count > n / 8) {
    return Status::InvalidArgument("ack id count exceeds payload");
  }
  out->insert_ids.clear();
  out->insert_ids.reserve(id_count);
  for (uint32_t i = 0; i < id_count; ++i) {
    TupleId id;
    if (!GetTupleId(d, n, &off, &id)) return Truncated("ack insert id");
    out->insert_ids.push_back(id);
  }
  return DecodeConflictDeltas(d, n, &off, &out->conflict);
}

void EncodeRunResult(const WireRunResult& r, std::string* out) {
  PutU64(out, r.firings);
  PutU8(out, r.halted ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(r.fired.size()));
  for (const std::string& name : r.fired) PutString(out, name);
}

Status DecodeRunResult(const std::string& payload, WireRunResult* out) {
  const char* d = payload.data();
  size_t n = payload.size(), off = 0;
  uint8_t halted;
  uint32_t count;
  if (!GetU64(d, n, &off, &out->firings) || !GetU8(d, n, &off, &halted) ||
      !GetU32(d, n, &off, &count)) {
    return Truncated("run result header");
  }
  out->halted = halted != 0;
  if (count > n / 4) {
    return Status::InvalidArgument("fired-rule count exceeds payload");
  }
  out->fired.clear();
  out->fired.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!GetString(d, n, &off, &name)) return Truncated("fired rule name");
    out->fired.push_back(std::move(name));
  }
  return Status::OK();
}

void EncodeDumpReply(const WireDumpReply& r, std::string* out) {
  PutU32(out, static_cast<uint32_t>(r.tuples.size()));
  for (const auto& [id, tuple] : r.tuples) {
    PutTupleId(out, id);
    PutTuple(out, tuple);
  }
}

Status DecodeDumpReply(const std::string& payload, WireDumpReply* out) {
  const char* d = payload.data();
  size_t n = payload.size(), off = 0;
  uint32_t count;
  if (!GetU32(d, n, &off, &count)) return Truncated("dump count");
  if (count > n / 8) {
    return Status::InvalidArgument("dump count exceeds payload");
  }
  out->tuples.clear();
  out->tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TupleId id;
    Tuple t;
    if (!GetTupleId(d, n, &off, &id) || !GetTuple(d, n, &off, &t)) {
      return Truncated("dump tuple");
    }
    out->tuples.emplace_back(id, std::move(t));
  }
  return Status::OK();
}

void EncodeStatsReply(const WireStatsReply& r, std::string* out) {
  PutU32(out, static_cast<uint32_t>(r.counters.size()));
  for (const auto& [key, value] : r.counters) {
    PutString(out, key);
    PutU64(out, value);
  }
}

Status DecodeStatsReply(const std::string& payload, WireStatsReply* out) {
  const char* d = payload.data();
  size_t n = payload.size(), off = 0;
  uint32_t count;
  if (!GetU32(d, n, &off, &count)) return Truncated("stats count");
  if (count > n / 12) {
    return Status::InvalidArgument("stats count exceeds payload");
  }
  out->counters.clear();
  out->counters.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    uint64_t value;
    if (!GetString(d, n, &off, &key) || !GetU64(d, n, &off, &value)) {
      return Truncated("stats entry");
    }
    out->counters.emplace_back(std::move(key), value);
  }
  return Status::OK();
}

void EncodeError(const Status& st, std::string* out) {
  PutU8(out, static_cast<uint8_t>(st.code()));
  PutString(out, st.message());
}

Status DecodeError(const std::string& payload) {
  const char* d = payload.data();
  size_t n = payload.size(), off = 0;
  uint8_t code;
  std::string message;
  if (!GetU8(d, n, &off, &code) || !GetString(d, n, &off, &message)) {
    return Status::Corruption("malformed error payload");
  }
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(message);
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(message);
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(message);
    case Status::Code::kCorruption:
      return Status::Corruption(message);
    case Status::Code::kIOError:
      return Status::IOError(message);
    case Status::Code::kNotSupported:
      return Status::NotSupported(message);
    case Status::Code::kAborted:
      return Status::Aborted(message);
    case Status::Code::kDeadlock:
      return Status::Deadlock(message);
    case Status::Code::kConflict:
      return Status::Conflict(message);
    case Status::Code::kOutOfRange:
      return Status::OutOfRange(message);
    case Status::Code::kInternal:
      return Status::Internal(message);
  }
  return Status::Internal("unknown remote status code " +
                          std::to_string(code) + ": " + message);
}

void EncodeFrameHeader(MsgType type, uint32_t payload_len, char out[8]) {
  std::string s;
  s.reserve(kFrameHeaderBytes);
  PutU32(&s, payload_len);
  PutU8(&s, static_cast<uint8_t>(type));
  PutU8(&s, kProtocolVersion);
  PutU16(&s, 0);
  std::memcpy(out, s.data(), kFrameHeaderBytes);
}

bool DecodeFrameHeader(const char in[8], MsgType* type,
                       uint32_t* payload_len) {
  size_t off = 0;
  uint8_t raw_type, version;
  uint16_t reserved;
  if (!GetU32(in, kFrameHeaderBytes, &off, payload_len) ||
      !GetU8(in, kFrameHeaderBytes, &off, &raw_type) ||
      !GetU8(in, kFrameHeaderBytes, &off, &version) ||
      !GetU16(in, kFrameHeaderBytes, &off, &reserved)) {
    return false;
  }
  if (version != kProtocolVersion) return false;
  *type = static_cast<MsgType>(raw_type);
  return true;
}

}  // namespace net
}  // namespace prodb
