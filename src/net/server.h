#ifndef PRODB_NET_SERVER_H_
#define PRODB_NET_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/production_system.h"
#include "net/socket.h"
#include "net/wire.h"

namespace prodb {
namespace net {

struct RuleServerOptions {
  /// TCP listener. port >= 0 enables it; 0 picks an ephemeral port
  /// (readable from RuleServer::tcp_port() after Start).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  /// Unix-domain listener (empty = disabled). Both listeners may be on.
  std::string unix_path;
  int backlog = 64;
  /// A session batch picked as deadlock victim is compensated and
  /// retried this many times before the client gets the error.
  size_t deadlock_retries = 8;
  /// Whether clients may send kLoad (rule/class definitions). Off for
  /// deployments where the rule program is fixed at startup.
  bool allow_load = true;
  /// Rule program installed at Start (before listeners open). On a
  /// reopened durable database the recovered WM is reseeded into the
  /// matcher right after.
  std::string preload;
  /// The engine under the server.
  ProductionSystemOptions system;
};

/// Monotonic counters, readable while the server runs (kStats also
/// reports them on the wire).
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> sessions_active{0};
  std::atomic<uint64_t> batches_applied{0};
  std::atomic<uint64_t> ops_applied{0};
  std::atomic<uint64_t> deadlock_retries{0};
  std::atomic<uint64_t> frames_rejected{0};  // kError replies sent
  std::atomic<uint64_t> runs{0};
};

/// The serving layer: TCP / Unix-domain listeners, persistent framed
/// connections, one session thread per connection.
///
/// Each session maps onto the concurrent engine's transaction machinery:
/// a kBatch becomes one transaction (2PL write locks, undo-logged
/// mutations), its ChangeSet reaches the matcher in a single OnBatch
/// under the server's maintenance mutex (so the conflict-set delta
/// captured for the ack is exactly this batch's), and the positive ack
/// is sent only after TxnManager::Commit has forced the WAL through the
/// commit record — group commit: one force covers every concurrently
/// acking session. A deadlock victim is compensated exactly the way the
/// engine compensates (inverse ChangeSet via Relation::Restore under the
/// transaction's WAL scope) and retried.
class RuleServer {
 public:
  explicit RuleServer(RuleServerOptions options);
  ~RuleServer();

  RuleServer(const RuleServer&) = delete;
  RuleServer& operator=(const RuleServer&) = delete;

  /// Builds the system, installs the preload program (reseeding the
  /// matcher when reopening a durable database), opens the listeners and
  /// starts accepting. InvalidArgument when neither listener is enabled.
  Status Start();

  /// Stops accepting, closes every session socket, joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound TCP port (ephemeral-port resolution), -1 when disabled.
  int tcp_port() const { return tcp_port_; }

  ProductionSystem& system() { return *system_; }
  ServerStats& stats() { return stats_; }

 private:
  struct Session {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop(Socket* listener);
  void SessionLoop(Session* session);

  /// Replies kError and counts it. A failed send is ignored — the
  /// session loop notices the dead socket on its next read.
  void SendError(Socket* sock, const Status& st);

  Status HandleBatch(Socket* sock, const std::string& payload);
  Status HandleRun(Socket* sock, const std::string& payload);
  Status HandleLoad(Socket* sock, const std::string& payload);
  Status HandleDump(Socket* sock, const std::string& payload);
  Status HandleStats(Socket* sock);

  /// Applies one decoded batch as a transaction; fills the ack on
  /// success. Status::Deadlock means the batch was compensated away and
  /// can be retried.
  Status ApplyBatchOnce(const WireBatch& batch, WireBatchAck* ack);

  RuleServerOptions options_;
  std::unique_ptr<ProductionSystem> system_;
  ServerStats stats_;

  /// Serializes matcher maintenance (OnBatch + its delta-listener
  /// bracket), kRun drains and kLoad installs. Commits happen outside it
  /// so sessions group-commit concurrently.
  std::mutex maintenance_mu_;

  Socket tcp_listener_;
  Socket unix_listener_;
  int tcp_port_ = -1;
  std::atomic<bool> running_{false};
  std::vector<std::thread> accept_threads_;

  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace net
}  // namespace prodb

#endif  // PRODB_NET_SERVER_H_
