#ifndef PRODB_NET_PROTOCOL_H_
#define PRODB_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>

namespace prodb {
namespace net {

/// The rule-engine wire protocol: length-prefixed frames over a stream
/// socket (TCP or Unix-domain), persistent connections, one outstanding
/// request per connection (strict request/reply; pipelining is a client
/// choice — replies come back in order).
///
/// Frame layout (all integers little-endian, fixed width):
///   [u32 payload_len][u8 type][u8 version][u16 reserved][payload...]
/// A frame whose declared payload exceeds kMaxFramePayload is
/// unrecoverable (the stream cannot be resynchronized) — the server
/// replies kError and closes. A frame that arrives intact but whose
/// payload fails to decode is recoverable: the server replies kError and
/// the session continues.
inline constexpr size_t kFrameHeaderBytes = 8;
inline constexpr uint32_t kMaxFramePayload = 32u << 20;  // 32 MiB
inline constexpr uint8_t kProtocolVersion = 1;

/// First payload word of a kHello frame, so a client that connects to
/// the wrong port fails fast instead of feeding garbage lengths.
inline constexpr uint32_t kHelloMagic = 0x50444231;  // "PDB1"

enum class MsgType : uint8_t {
  // client -> server
  kHello = 1,  // [u32 magic] — must be the first frame on a connection
  kLoad = 2,   // [string source] — literalize decls + rules
  kBatch = 3,  // make/remove/modify ops (see wire.h) -> kBatchAck
  kRun = 4,    // [u8 mode] 0 = serial recognize-act, 1 = concurrent
  kDump = 5,   // [string class] -> kDumpReply
  kStats = 6,  // -> kStatsReply
  kPing = 7,   // -> kPong

  // server -> client
  kHelloOk = 64,     // [u8 durable] server ack of hello
  kOk = 65,          // generic success (kLoad)
  kError = 66,       // [u8 status_code][string message]
  kBatchAck = 67,    // durable ack + assigned ids + conflict-set delta
  kRunResult = 68,   // firings, halted, fired-rule names
  kDumpReply = 69,   // tuples of one class
  kStatsReply = 70,  // key=value counter list
  kPong = 71,
};

/// Batch op kinds (the OPS5 RHS verbs, §2.1).
inline constexpr uint8_t kOpMake = 0;    // [string cls][tuple]
inline constexpr uint8_t kOpRemove = 1;  // [string cls][u32 page][u32 slot]
inline constexpr uint8_t kOpModify = 2;  // [string cls][id][tuple]

}  // namespace net
}  // namespace prodb

#endif  // PRODB_NET_PROTOCOL_H_
