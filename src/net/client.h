#ifndef PRODB_NET_CLIENT_H_
#define PRODB_NET_CLIENT_H_

#include <string>

#include "net/socket.h"
#include "net/wire.h"

namespace prodb {
namespace net {

/// Blocking client for the rule-engine wire protocol: one persistent
/// connection, strict request/reply. Not thread-safe — one RuleClient
/// per client thread (the server handles any number of them).
class RuleClient {
 public:
  RuleClient() = default;

  /// Dials and performs the hello handshake.
  Status ConnectTcp(const std::string& host, int port);
  Status ConnectUnix(const std::string& path);
  void Close() { sock_.Close(); }
  bool connected() const { return sock_.valid(); }

  /// Whether the server runs with a WAL (from the hello ack): positive
  /// batch acks then mean crash-durable.
  bool server_durable() const { return server_durable_; }

  /// Installs declarations/rules on the server.
  Status Load(const std::string& source);

  /// Applies one batch of make/remove/modify ops as a single server-side
  /// transaction. On OK the ack carries the assigned tuple ids (in
  /// kOpMake/kOpModify op order), the batch's conflict-set delta, and —
  /// on a durable server — the WAL LSN the batch is durable at.
  /// An empty batch is a durability barrier.
  Status Apply(const WireBatch& batch, WireBatchAck* ack);

  /// Drains the conflict set. concurrent=false is the serial
  /// recognize-act cycle, true the transactional multi-worker engine.
  Status Run(bool concurrent, WireRunResult* result);

  /// All tuples of one class.
  Status DumpClass(const std::string& cls, WireDumpReply* reply);

  Status GetStats(WireStatsReply* reply);
  Status Ping();

  /// Escape hatch for protocol tests: sends a raw frame and returns the
  /// reply frame without interpreting it.
  Status RoundTrip(MsgType type, const std::string& payload,
                   MsgType* reply_type, std::string* reply_payload);

  Socket& socket() { return sock_; }

 private:
  Status Handshake();
  /// Sends `type`+payload, receives the reply; a kError reply decodes
  /// into its carried Status, any other unexpected type is an error.
  Status Call(MsgType type, const std::string& payload, MsgType expect,
              std::string* reply);

  Socket sock_;
  bool server_durable_ = false;
};

}  // namespace net
}  // namespace prodb

#endif  // PRODB_NET_CLIENT_H_
