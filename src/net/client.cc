#include "net/client.h"

namespace prodb {
namespace net {

Status RuleClient::ConnectTcp(const std::string& host, int port) {
  PRODB_RETURN_IF_ERROR(prodb::net::ConnectTcp(host, port, &sock_));
  return Handshake();
}

Status RuleClient::ConnectUnix(const std::string& path) {
  PRODB_RETURN_IF_ERROR(prodb::net::ConnectUnix(path, &sock_));
  return Handshake();
}

Status RuleClient::Handshake() {
  std::string hello;
  PutU32(&hello, kHelloMagic);
  std::string reply;
  Status st = Call(MsgType::kHello, hello, MsgType::kHelloOk, &reply);
  if (!st.ok()) {
    sock_.Close();
    return st;
  }
  size_t off = 0;
  uint8_t durable = 0;
  if (!GetU8(reply.data(), reply.size(), &off, &durable)) {
    sock_.Close();
    return Status::Corruption("malformed hello ack");
  }
  server_durable_ = durable != 0;
  return Status::OK();
}

Status RuleClient::Call(MsgType type, const std::string& payload,
                        MsgType expect, std::string* reply) {
  PRODB_RETURN_IF_ERROR(sock_.SendFrame(type, payload));
  MsgType got;
  PRODB_RETURN_IF_ERROR(sock_.RecvFrame(&got, reply));
  if (got == MsgType::kError) return DecodeError(*reply);
  if (got != expect) {
    return Status::Corruption("unexpected reply type " +
                              std::to_string(static_cast<int>(got)));
  }
  return Status::OK();
}

Status RuleClient::RoundTrip(MsgType type, const std::string& payload,
                             MsgType* reply_type,
                             std::string* reply_payload) {
  PRODB_RETURN_IF_ERROR(sock_.SendFrame(type, payload));
  return sock_.RecvFrame(reply_type, reply_payload);
}

Status RuleClient::Load(const std::string& source) {
  std::string payload;
  PutString(&payload, source);
  std::string reply;
  return Call(MsgType::kLoad, payload, MsgType::kOk, &reply);
}

Status RuleClient::Apply(const WireBatch& batch, WireBatchAck* ack) {
  std::string payload;
  EncodeBatch(batch, &payload);
  std::string reply;
  PRODB_RETURN_IF_ERROR(
      Call(MsgType::kBatch, payload, MsgType::kBatchAck, &reply));
  return DecodeBatchAck(reply, ack);
}

Status RuleClient::Run(bool concurrent, WireRunResult* result) {
  std::string payload;
  PutU8(&payload, concurrent ? 1 : 0);
  std::string reply;
  PRODB_RETURN_IF_ERROR(
      Call(MsgType::kRun, payload, MsgType::kRunResult, &reply));
  return DecodeRunResult(reply, result);
}

Status RuleClient::DumpClass(const std::string& cls, WireDumpReply* reply) {
  std::string payload;
  PutString(&payload, cls);
  std::string raw;
  PRODB_RETURN_IF_ERROR(
      Call(MsgType::kDump, payload, MsgType::kDumpReply, &raw));
  return DecodeDumpReply(raw, reply);
}

Status RuleClient::GetStats(WireStatsReply* reply) {
  std::string raw;
  PRODB_RETURN_IF_ERROR(
      Call(MsgType::kStats, "", MsgType::kStatsReply, &raw));
  return DecodeStatsReply(raw, reply);
}

Status RuleClient::Ping() {
  std::string reply;
  return Call(MsgType::kPing, "", MsgType::kPong, &reply);
}

}  // namespace net
}  // namespace prodb
