#ifndef PRODB_LANG_PARSER_H_
#define PRODB_LANG_PARSER_H_

#include <string>

#include "common/status.h"
#include "lang/ast.h"
#include "lang/lexer.h"

namespace prodb {

/// Recursive-descent parser for the OPS5-like rule language.
///
/// Grammar (see README for the full write-up):
///   program    := { "(" ("literalize" lit | "p" rule) ")" }
///   lit        := NAME { NAME }
///   rule       := NAME { ce } "-->" { action }
///   ce         := ["-"] "(" NAME { "^" NAME valspec } ")"
///   valspec    := const | VAR | "*" | "{" { [op] (const | VAR) } "}"
///   action     := "(" ( "make" NAME { "^" NAME rhsval }
///                     | "remove" NUM | "modify" NUM { "^" NAME rhsval }
///                     | "halt" | "call" NAME { rhsval } ) ")"
Status ParseProgram(const std::string& source, ProgramAst* out);

/// Parses a single rule `(p Name ... --> ...)`.
Status ParseRule(const std::string& source, RuleAst* out);

}  // namespace prodb

#endif  // PRODB_LANG_PARSER_H_
