#ifndef PRODB_LANG_AST_H_
#define PRODB_LANG_AST_H_

#include <string>
#include <vector>

#include "common/value.h"
#include "db/predicate.h"

namespace prodb {

/// A value position in a rule: constant, variable, or don't-care.
struct AstValue {
  enum class Kind : uint8_t { kConst, kVar, kDontCare };
  Kind kind = Kind::kDontCare;
  Value constant;    // kConst
  std::string var;   // kVar

  static AstValue Const(Value v) {
    return AstValue{Kind::kConst, std::move(v), ""};
  }
  static AstValue Var(std::string name) {
    return AstValue{Kind::kVar, Value(), std::move(name)};
  }
  static AstValue DontCare() { return AstValue{}; }

  std::string ToString() const;
};

/// One `^attr <valspec>` test inside a condition element. `preds` holds
/// (op, value) pairs; a plain value is the single pair (kEq, value), and
/// a brace group `{ > 10 <> <y> }` contributes one pair per test.
struct AttrTestAst {
  std::string attr;
  std::vector<std::pair<CompareOp, AstValue>> preds;

  std::string ToString() const;
};

/// A condition element: `[-] (Class ^a v ^b {[op] v} ...)`.
struct ConditionAst {
  std::string class_name;
  bool negated = false;
  std::vector<AttrTestAst> tests;
  int line = 0;

  std::string ToString() const;
};

/// RHS action kinds (§3.1 lists make / remove / modify / call; halt is
/// OPS5's explicit stop).
enum class ActionKind : uint8_t { kMake, kRemove, kModify, kHalt, kCall };

struct ActionAst {
  ActionKind kind = ActionKind::kHalt;
  std::string target;  // class name (make) or function name (call)
  int ce_index = 0;    // 1-based condition element number (remove/modify)
  std::vector<std::pair<std::string, AstValue>> assignments;  // ^attr value
  std::vector<AstValue> call_args;  // call arguments
  int line = 0;

  std::string ToString() const;
};

/// `(p Name CE... --> action...)`.
struct RuleAst {
  std::string name;
  std::vector<ConditionAst> conditions;
  std::vector<ActionAst> actions;
  int line = 0;

  std::string ToString() const;
};

/// `(literalize Class attr...)`.
struct LiteralizeAst {
  std::string class_name;
  std::vector<std::string> attrs;
  int line = 0;
};

struct ProgramAst {
  std::vector<LiteralizeAst> classes;
  std::vector<RuleAst> rules;
};

}  // namespace prodb

#endif  // PRODB_LANG_AST_H_
