#include "lang/ast.h"

namespace prodb {

std::string AstValue::ToString() const {
  switch (kind) {
    case Kind::kConst: return constant.ToString();
    case Kind::kVar: return "<" + var + ">";
    case Kind::kDontCare: return "*";
  }
  return "?";
}

std::string AttrTestAst::ToString() const {
  std::string out = "^" + attr + " ";
  if (preds.size() == 1 && preds[0].first == CompareOp::kEq) {
    out += preds[0].second.ToString();
    return out;
  }
  out += "{";
  for (const auto& [op, v] : preds) {
    out += " ";
    out += CompareOpName(op);
    out += " " + v.ToString();
  }
  out += " }";
  return out;
}

std::string ConditionAst::ToString() const {
  std::string out = negated ? "-(" : "(";
  out += class_name;
  for (const AttrTestAst& t : tests) out += " " + t.ToString();
  out += ")";
  return out;
}

std::string ActionAst::ToString() const {
  switch (kind) {
    case ActionKind::kMake: {
      std::string out = "(make " + target;
      for (const auto& [attr, v] : assignments) {
        out += " ^" + attr + " " + v.ToString();
      }
      return out + ")";
    }
    case ActionKind::kRemove:
      return "(remove " + std::to_string(ce_index) + ")";
    case ActionKind::kModify: {
      std::string out = "(modify " + std::to_string(ce_index);
      for (const auto& [attr, v] : assignments) {
        out += " ^" + attr + " " + v.ToString();
      }
      return out + ")";
    }
    case ActionKind::kHalt:
      return "(halt)";
    case ActionKind::kCall: {
      std::string out = "(call " + target;
      for (const AstValue& v : call_args) out += " " + v.ToString();
      return out + ")";
    }
  }
  return "?";
}

std::string RuleAst::ToString() const {
  std::string out = "(p " + name;
  for (const ConditionAst& c : conditions) out += "\n  " + c.ToString();
  out += "\n  -->";
  for (const ActionAst& a : actions) out += "\n  " + a.ToString();
  return out + ")";
}

}  // namespace prodb
