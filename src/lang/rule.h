#ifndef PRODB_LANG_RULE_H_
#define PRODB_LANG_RULE_H_

#include <string>
#include <vector>

#include "common/value.h"
#include "db/predicate.h"
#include "lang/ast.h"

namespace prodb {

/// A value position in a compiled action: a constant or a reference to a
/// variable bound on the LHS.
struct CompiledValue {
  enum class Kind : uint8_t { kConst, kVar };
  Kind kind = Kind::kConst;
  Value constant;
  int var = -1;

  static CompiledValue Const(Value v) {
    return CompiledValue{Kind::kConst, std::move(v), -1};
  }
  static CompiledValue Var(int var_id) {
    return CompiledValue{Kind::kVar, Value(), var_id};
  }

  /// Resolves against a binding (kVar looks up the bound value).
  const Value& Resolve(const Binding& binding) const {
    if (kind == Kind::kConst) return constant;
    return *binding[static_cast<size_t>(var)];
  }
};

/// A compiled RHS action, ready to execute against a binding.
struct CompiledAction {
  ActionKind kind = ActionKind::kHalt;
  /// make: target relation. call: function name.
  std::string target;
  /// remove/modify: index into Rule::lhs.conditions (0-based, positive CE).
  int ce_index = -1;
  /// make: one value per schema attribute (unassigned attrs are null
  /// constants). modify: parallel to set_mask; only masked attrs change.
  std::vector<CompiledValue> values;
  std::vector<bool> set_mask;
  /// call arguments.
  std::vector<CompiledValue> args;
};

/// A fully compiled production rule: name, LHS as a conjunctive query
/// over WM relations, and executable RHS actions.
struct Rule {
  std::string name;
  ConjunctiveQuery lhs;
  std::vector<CompiledAction> actions;
  /// var id -> source-level name (for diagnostics and tests).
  std::vector<std::string> var_names;
  /// Conflict-resolution priority (higher fires first under the priority
  /// strategy). Not part of OPS5 syntax; set programmatically.
  int priority = 0;

  /// Index of the first positive condition element, or -1 if none.
  int FirstPositiveCe() const {
    for (size_t i = 0; i < lhs.conditions.size(); ++i) {
      if (!lhs.conditions[i].negated) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace prodb

#endif  // PRODB_LANG_RULE_H_
