#include "lang/analyzer.h"

#include <map>

#include "lang/parser.h"

namespace prodb {

namespace {

Status RuleError(const RuleAst& ast, const std::string& msg) {
  return Status::InvalidArgument("rule " + ast.name + ": " + msg);
}

}  // namespace

Status Analyzer::Compile(const RuleAst& ast, Rule* out) const {
  *out = Rule{};
  out->name = ast.name;
  if (ast.conditions.empty()) {
    return RuleError(ast, "has no condition elements");
  }

  // Variable table: name -> dense id. `positively_bound` marks variables
  // with an equality occurrence in a positive CE — only those may be used
  // by later CEs' tests and by RHS actions.
  std::map<std::string, int> vars;
  std::vector<bool> positively_bound;
  auto var_id = [&](const std::string& name) {
    auto it = vars.find(name);
    if (it != vars.end()) return it->second;
    int id = static_cast<int>(vars.size());
    vars.emplace(name, id);
    out->var_names.push_back(name);
    positively_bound.push_back(false);
    return id;
  };

  for (const ConditionAst& ce : ast.conditions) {
    Relation* rel = catalog_->Get(ce.class_name);
    if (rel == nullptr) {
      return RuleError(ast, "condition on undeclared class '" +
                                ce.class_name + "'");
    }
    const Schema& schema = rel->schema();
    ConditionSpec spec;
    spec.relation = ce.class_name;
    spec.negated = ce.negated;
    for (const AttrTestAst& test : ce.tests) {
      int attr = schema.IndexOf(test.attr);
      if (attr < 0) {
        return RuleError(ast, "class " + ce.class_name +
                                  " has no attribute '" + test.attr + "'");
      }
      for (const auto& [op, v] : test.preds) {
        switch (v.kind) {
          case AstValue::Kind::kConst:
            spec.constant_tests.push_back(ConstantTest{attr, op, v.constant});
            break;
          case AstValue::Kind::kVar: {
            int id = var_id(v.var);
            bool bound_here_or_before =
                positively_bound[static_cast<size_t>(id)] ||
                // Bound earlier within this same CE?
                [&] {
                  for (const VarUse& u : spec.var_uses) {
                    if (u.var == id && u.op == CompareOp::kEq) return true;
                  }
                  return false;
                }();
            if (op != CompareOp::kEq && !bound_here_or_before) {
              return RuleError(ast, "variable <" + v.var +
                                        "> tested with '" +
                                        CompareOpName(op) +
                                        "' before being bound");
            }
            spec.var_uses.push_back(VarUse{attr, id, op});
            if (op == CompareOp::kEq && !ce.negated) {
              positively_bound[static_cast<size_t>(id)] = true;
            }
            break;
          }
          case AstValue::Kind::kDontCare:
            break;  // matches anything; no test emitted
        }
      }
    }
    out->lhs.conditions.push_back(std::move(spec));
  }
  out->lhs.num_vars = static_cast<int>(vars.size());

  // A rule whose only CEs are negated can never produce an instantiation
  // seeded by an insertion; OPS5 likewise requires a positive CE.
  if (out->FirstPositiveCe() < 0) {
    return RuleError(ast, "needs at least one positive condition element");
  }

  // Compile actions.
  auto resolve_value = [&](const AstValue& v, CompiledValue* cv) -> Status {
    switch (v.kind) {
      case AstValue::Kind::kConst:
        *cv = CompiledValue::Const(v.constant);
        return Status::OK();
      case AstValue::Kind::kVar: {
        auto it = vars.find(v.var);
        if (it == vars.end() ||
            !positively_bound[static_cast<size_t>(it->second)]) {
          return RuleError(ast, "action uses unbound variable <" + v.var +
                                    ">");
        }
        *cv = CompiledValue::Var(it->second);
        return Status::OK();
      }
      case AstValue::Kind::kDontCare:
        return RuleError(ast, "'*' is not a legal action value");
    }
    return Status::Internal("unreachable");
  };

  for (const ActionAst& act : ast.actions) {
    CompiledAction ca;
    ca.kind = act.kind;
    switch (act.kind) {
      case ActionKind::kMake: {
        Relation* rel = catalog_->Get(act.target);
        if (rel == nullptr) {
          return RuleError(ast, "make on undeclared class '" + act.target +
                                    "'");
        }
        const Schema& schema = rel->schema();
        ca.target = act.target;
        ca.values.assign(schema.arity(), CompiledValue::Const(Value()));
        for (const auto& [attr, v] : act.assignments) {
          int idx = schema.IndexOf(attr);
          if (idx < 0) {
            return RuleError(ast, "make: class " + act.target +
                                      " has no attribute '" + attr + "'");
          }
          PRODB_RETURN_IF_ERROR(
              resolve_value(v, &ca.values[static_cast<size_t>(idx)]));
        }
        break;
      }
      case ActionKind::kRemove:
      case ActionKind::kModify: {
        int ce = act.ce_index;  // 1-based over all CEs, like OPS5
        if (ce < 1 || ce > static_cast<int>(ast.conditions.size())) {
          return RuleError(ast, "action references condition element " +
                                    std::to_string(ce) + " of " +
                                    std::to_string(ast.conditions.size()));
        }
        if (ast.conditions[static_cast<size_t>(ce - 1)].negated) {
          return RuleError(ast,
                           "cannot remove/modify a negated condition "
                           "element (no tuple is bound to it)");
        }
        ca.ce_index = ce - 1;
        if (act.kind == ActionKind::kModify) {
          const std::string& cls =
              ast.conditions[static_cast<size_t>(ce - 1)].class_name;
          const Schema& schema = catalog_->Get(cls)->schema();
          ca.values.assign(schema.arity(), CompiledValue::Const(Value()));
          ca.set_mask.assign(schema.arity(), false);
          for (const auto& [attr, v] : act.assignments) {
            int idx = schema.IndexOf(attr);
            if (idx < 0) {
              return RuleError(ast, "modify: class " + cls +
                                        " has no attribute '" + attr + "'");
            }
            PRODB_RETURN_IF_ERROR(
                resolve_value(v, &ca.values[static_cast<size_t>(idx)]));
            ca.set_mask[static_cast<size_t>(idx)] = true;
          }
        }
        break;
      }
      case ActionKind::kHalt:
        break;
      case ActionKind::kCall: {
        ca.target = act.target;
        for (const AstValue& v : act.call_args) {
          CompiledValue cv;
          PRODB_RETURN_IF_ERROR(resolve_value(v, &cv));
          ca.args.push_back(std::move(cv));
        }
        break;
      }
    }
    out->actions.push_back(std::move(ca));
  }
  return Status::OK();
}

Status LoadProgram(const std::string& source, Catalog* catalog,
                   std::vector<Rule>* rules) {
  ProgramAst program;
  PRODB_RETURN_IF_ERROR(ParseProgram(source, &program));
  for (const LiteralizeAst& lit : program.classes) {
    std::vector<Attribute> attrs;
    attrs.reserve(lit.attrs.size());
    for (const std::string& a : lit.attrs) {
      attrs.push_back(Attribute{a, ValueType::kSymbol});
    }
    Schema schema(lit.class_name, attrs);
    // Re-declaring a class is fine when the shape matches (programs are
    // often loaded in pieces that repeat their literalize block); a
    // conflicting shape is an error.
    Relation* existing = catalog->Get(lit.class_name);
    if (existing != nullptr) {
      if (existing->schema() == schema) continue;
      return Status::InvalidArgument(
          "literalize " + lit.class_name + " conflicts with existing " +
          existing->schema().ToString());
    }
    Relation* rel;
    // Durable path: with a class directory enabled this registers the
    // class for restart re-adoption (and adopts it on reopen); without
    // one it is a plain CreateRelation.
    PRODB_RETURN_IF_ERROR(catalog->CreateDurableRelation(schema, &rel));
  }
  Analyzer analyzer(catalog);
  for (const RuleAst& ast : program.rules) {
    Rule rule;
    PRODB_RETURN_IF_ERROR(analyzer.Compile(ast, &rule));
    rules->push_back(std::move(rule));
  }
  return Status::OK();
}

}  // namespace prodb
