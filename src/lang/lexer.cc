#include "lang/lexer.h"

#include <cctype>

namespace prodb {

std::string Token::ToString() const {
  switch (kind) {
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kCaret: return "^";
    case TokenKind::kArrow: return "-->";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kLt: return "<";
    case TokenKind::kGt: return ">";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGe: return ">=";
    case TokenKind::kEq: return "=";
    case TokenKind::kNe: return "<>";
    case TokenKind::kVariable: return "<" + text + ">";
    case TokenKind::kNumber: return text;
    case TokenKind::kSymbol: return text;
    case TokenKind::kEnd: return "<eof>";
  }
  return "?";
}

namespace {

bool IsSymbolChar(char c) {
  // Symbols may contain letters, digits, and common punctuation that is
  // not structural in the grammar.
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '+' || c == '.' || c == '?' || c == '!' ||
         c == '$' || c == ':' || c == '/';
}

bool LooksNumeric(const std::string& s, bool* is_real) {
  size_t i = 0;
  if (s[i] == '-' || s[i] == '+') ++i;
  if (i >= s.size()) return false;
  bool digits = false, dot = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digits = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  *is_real = dot;
  return digits;
}

}  // namespace

Status Lex(const std::string& source, std::vector<Token>* out) {
  out->clear();
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();
  auto peek = [&](size_t k) { return i + k < n ? source[i + k] : '\0'; };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == ';') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    switch (c) {
      case '(':
        out->push_back({TokenKind::kLParen, "", false, line});
        ++i;
        continue;
      case ')':
        out->push_back({TokenKind::kRParen, "", false, line});
        ++i;
        continue;
      case '{':
        out->push_back({TokenKind::kLBrace, "", false, line});
        ++i;
        continue;
      case '}':
        out->push_back({TokenKind::kRBrace, "", false, line});
        ++i;
        continue;
      case '^':
        out->push_back({TokenKind::kCaret, "", false, line});
        ++i;
        continue;
      case '*':
        out->push_back({TokenKind::kStar, "", false, line});
        ++i;
        continue;
      default:
        break;
    }
    if (c == '-') {
      if (peek(1) == '-' && peek(2) == '>') {
        out->push_back({TokenKind::kArrow, "", false, line});
        i += 3;
        continue;
      }
      // Could be a negative number: -12 or -3.5.
      if (std::isdigit(static_cast<unsigned char>(peek(1)))) {
        size_t j = i + 1;
        while (j < n && (std::isdigit(static_cast<unsigned char>(source[j])) ||
                         source[j] == '.')) {
          ++j;
        }
        std::string text = source.substr(i, j - i);
        bool is_real = false;
        if (LooksNumeric(text, &is_real)) {
          out->push_back({TokenKind::kNumber, text, is_real, line});
          i = j;
          continue;
        }
      }
      out->push_back({TokenKind::kMinus, "", false, line});
      ++i;
      continue;
    }
    if (c == '<') {
      if (peek(1) == '>') {
        out->push_back({TokenKind::kNe, "", false, line});
        i += 2;
        continue;
      }
      if (peek(1) == '=') {
        out->push_back({TokenKind::kLe, "", false, line});
        i += 2;
        continue;
      }
      // Variable: <name> where name is identifier-like; anything else
      // (e.g. a bare `<` before whitespace) is the less-than operator.
      size_t j = i + 1;
      std::string name;
      while (j < n && IsSymbolChar(source[j])) {
        name += source[j++];
      }
      if (j < n && source[j] == '>' && !name.empty()) {
        out->push_back({TokenKind::kVariable, name, false, line});
        i = j + 1;
        continue;
      }
      out->push_back({TokenKind::kLt, "", false, line});
      ++i;
      continue;
    }
    if (c == '>') {
      if (peek(1) == '=') {
        out->push_back({TokenKind::kGe, "", false, line});
        i += 2;
        continue;
      }
      out->push_back({TokenKind::kGt, "", false, line});
      ++i;
      continue;
    }
    if (c == '=') {
      out->push_back({TokenKind::kEq, "", false, line});
      ++i;
      continue;
    }
    if (c == '|') {
      // Quoted symbol.
      size_t j = i + 1;
      std::string text;
      while (j < n && source[j] != '|') {
        if (source[j] == '\n') ++line;
        text += source[j++];
      }
      if (j >= n) {
        return Status::InvalidArgument("line " + std::to_string(line) +
                                       ": unterminated |symbol|");
      }
      out->push_back({TokenKind::kSymbol, text, false, line});
      i = j + 1;
      continue;
    }
    if (IsSymbolChar(c)) {
      size_t j = i;
      std::string text;
      while (j < n && IsSymbolChar(source[j])) text += source[j++];
      bool is_real = false;
      if (LooksNumeric(text, &is_real)) {
        out->push_back({TokenKind::kNumber, text, is_real, line});
      } else {
        out->push_back({TokenKind::kSymbol, text, false, line});
      }
      i = j;
      continue;
    }
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": unexpected character '" +
                                   std::string(1, c) + "'");
  }
  out->push_back({TokenKind::kEnd, "", false, line});
  return Status::OK();
}

}  // namespace prodb
