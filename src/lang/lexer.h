#ifndef PRODB_LANG_LEXER_H_
#define PRODB_LANG_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace prodb {

/// Token kinds of the OPS5-like rule language.
enum class TokenKind : uint8_t {
  kLParen,    // (
  kRParen,    // )
  kLBrace,    // {
  kRBrace,    // }
  kCaret,     // ^   (stands in for OPS5's up-arrow attribute marker)
  kArrow,     // -->
  kMinus,     // -   (condition negation)
  kStar,      // *   (don't-care)
  kLt, kGt, kLe, kGe, kEq, kNe,   // predicate operators
  kVariable,  // <name>
  kNumber,    // 42 or 3.5 (payload in text; is_real distinguishes)
  kSymbol,    // bare or |quoted| symbol
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // symbol/variable name or number literal
  bool is_real = false;
  int line = 0;

  std::string ToString() const;
};

/// Splits OPS5-ish source text into tokens.
///
/// Notes on the concrete syntax (documented in README):
///  * `^attr` marks an attribute (OPS5 prints this as an up-arrow).
///  * `<x>` is a variable; `-` before `(` negates a condition element.
///  * `{ > 10 <> <y> }` attaches predicate tests to one attribute.
///  * `;` starts a comment through end of line.
///  * `|quoted symbol|` allows symbols containing spaces or digits.
Status Lex(const std::string& source, std::vector<Token>* out);

}  // namespace prodb

#endif  // PRODB_LANG_LEXER_H_
