#ifndef PRODB_LANG_ANALYZER_H_
#define PRODB_LANG_ANALYZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/catalog.h"
#include "lang/ast.h"
#include "lang/rule.h"

namespace prodb {

/// Compiles parsed rules against the schemas registered in a Catalog.
///
/// Checks performed (errors are InvalidArgument with rule/line context):
///  * every condition's class is a declared relation;
///  * every `^attr` names an attribute of that relation;
///  * a non-equality test on a variable has a prior binding occurrence;
///  * variables used in actions are bound by a positive condition element
///    (negated CEs bind only locally, per §4.2.2's negation semantics);
///  * remove/modify target an existing, positive condition element;
///  * make/modify assignments name real attributes.
class Analyzer {
 public:
  explicit Analyzer(const Catalog* catalog) : catalog_(catalog) {}

  Status Compile(const RuleAst& ast, Rule* out) const;

 private:
  const Catalog* catalog_;
};

/// Convenience: parses `source`, creates a relation for every
/// `literalize` (memory or the catalog's default storage), compiles every
/// rule, and appends them to *rules.
Status LoadProgram(const std::string& source, Catalog* catalog,
                   std::vector<Rule>* rules);

}  // namespace prodb

#endif  // PRODB_LANG_ANALYZER_H_
