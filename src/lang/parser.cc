#include "lang/parser.h"

#include <cstdlib>

namespace prodb {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Status Program(ProgramAst* out) {
    while (!At(TokenKind::kEnd)) {
      PRODB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      Token head = Cur();
      if (head.kind != TokenKind::kSymbol) {
        return Error("expected 'literalize' or 'p'");
      }
      if (head.text == "literalize") {
        Advance();
        LiteralizeAst lit;
        lit.line = head.line;
        PRODB_RETURN_IF_ERROR(Name(&lit.class_name));
        while (At(TokenKind::kSymbol)) {
          lit.attrs.push_back(Cur().text);
          Advance();
        }
        PRODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        out->classes.push_back(std::move(lit));
      } else if (head.text == "p") {
        Advance();
        RuleAst rule;
        PRODB_RETURN_IF_ERROR(RuleBody(&rule));
        PRODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        out->rules.push_back(std::move(rule));
      } else {
        return Error("unknown top-level form '" + head.text + "'");
      }
    }
    return Status::OK();
  }

  Status SingleRule(RuleAst* out) {
    PRODB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    Token head = Cur();
    if (head.kind != TokenKind::kSymbol || head.text != "p") {
      return Error("expected '(p ...'");
    }
    Advance();
    PRODB_RETURN_IF_ERROR(RuleBody(out));
    PRODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (!At(TokenKind::kEnd)) return Error("trailing input after rule");
    return Status::OK();
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind k) const { return Cur().kind == k; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("line " + std::to_string(Cur().line) +
                                   ": " + msg + " (got '" +
                                   Cur().ToString() + "')");
  }

  Status Expect(TokenKind k) {
    if (!At(k)) {
      Token want{k, "", false, 0};
      return Error("expected '" + want.ToString() + "'");
    }
    Advance();
    return Status::OK();
  }

  Status Name(std::string* out) {
    if (!At(TokenKind::kSymbol)) return Error("expected a name");
    *out = Cur().text;
    Advance();
    return Status::OK();
  }

  Status RuleBody(RuleAst* rule) {
    rule->line = Cur().line;
    PRODB_RETURN_IF_ERROR(Name(&rule->name));
    // Condition elements until the arrow.
    while (!At(TokenKind::kArrow)) {
      ConditionAst ce;
      ce.line = Cur().line;
      if (At(TokenKind::kMinus)) {
        ce.negated = true;
        Advance();
      }
      PRODB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      PRODB_RETURN_IF_ERROR(Name(&ce.class_name));
      while (At(TokenKind::kCaret)) {
        Advance();
        AttrTestAst test;
        PRODB_RETURN_IF_ERROR(Name(&test.attr));
        PRODB_RETURN_IF_ERROR(ValSpec(&test.preds));
        ce.tests.push_back(std::move(test));
      }
      PRODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      rule->conditions.push_back(std::move(ce));
    }
    PRODB_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
    while (At(TokenKind::kLParen)) {
      ActionAst action;
      PRODB_RETURN_IF_ERROR(Action(&action));
      rule->actions.push_back(std::move(action));
    }
    return Status::OK();
  }

  bool AtOp() const {
    switch (Cur().kind) {
      case TokenKind::kLt:
      case TokenKind::kGt:
      case TokenKind::kLe:
      case TokenKind::kGe:
      case TokenKind::kEq:
      case TokenKind::kNe:
        return true;
      default:
        return false;
    }
  }

  CompareOp TakeOp() {
    CompareOp op = CompareOp::kEq;
    switch (Cur().kind) {
      case TokenKind::kLt: op = CompareOp::kLt; break;
      case TokenKind::kGt: op = CompareOp::kGt; break;
      case TokenKind::kLe: op = CompareOp::kLe; break;
      case TokenKind::kGe: op = CompareOp::kGe; break;
      case TokenKind::kEq: op = CompareOp::kEq; break;
      case TokenKind::kNe: op = CompareOp::kNe; break;
      default: break;
    }
    Advance();
    return op;
  }

  Status Atom(AstValue* out) {
    if (At(TokenKind::kNumber)) {
      if (Cur().is_real) {
        *out = AstValue::Const(Value(std::strtod(Cur().text.c_str(), nullptr)));
      } else {
        *out = AstValue::Const(
            Value(static_cast<int64_t>(std::strtoll(Cur().text.c_str(),
                                                    nullptr, 10))));
      }
      Advance();
      return Status::OK();
    }
    if (At(TokenKind::kSymbol)) {
      // `nil` denotes the null value (what Example 2's modify writes).
      *out = Cur().text == "nil" ? AstValue::Const(Value())
                                 : AstValue::Const(Value(Cur().text));
      Advance();
      return Status::OK();
    }
    if (At(TokenKind::kVariable)) {
      *out = AstValue::Var(Cur().text);
      Advance();
      return Status::OK();
    }
    if (At(TokenKind::kStar)) {
      *out = AstValue::DontCare();
      Advance();
      return Status::OK();
    }
    return Error("expected a constant, variable, or '*'");
  }

  Status ValSpec(std::vector<std::pair<CompareOp, AstValue>>* preds) {
    if (At(TokenKind::kLBrace)) {
      Advance();
      while (!At(TokenKind::kRBrace)) {
        CompareOp op = AtOp() ? TakeOp() : CompareOp::kEq;
        AstValue v;
        PRODB_RETURN_IF_ERROR(Atom(&v));
        preds->emplace_back(op, std::move(v));
      }
      Advance();  // }
      if (preds->empty()) return Error("empty predicate group");
      return Status::OK();
    }
    // Bare `op value` (e.g. `^salary > 100`) or plain value.
    CompareOp op = AtOp() ? TakeOp() : CompareOp::kEq;
    AstValue v;
    PRODB_RETURN_IF_ERROR(Atom(&v));
    preds->emplace_back(op, std::move(v));
    return Status::OK();
  }

  Status Action(ActionAst* out) {
    PRODB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    out->line = Cur().line;
    std::string verb;
    PRODB_RETURN_IF_ERROR(Name(&verb));
    if (verb == "make") {
      out->kind = ActionKind::kMake;
      PRODB_RETURN_IF_ERROR(Name(&out->target));
      PRODB_RETURN_IF_ERROR(Assignments(out));
    } else if (verb == "remove") {
      out->kind = ActionKind::kRemove;
      PRODB_RETURN_IF_ERROR(CeIndex(out));
    } else if (verb == "modify") {
      out->kind = ActionKind::kModify;
      PRODB_RETURN_IF_ERROR(CeIndex(out));
      PRODB_RETURN_IF_ERROR(Assignments(out));
    } else if (verb == "halt") {
      out->kind = ActionKind::kHalt;
    } else if (verb == "call") {
      out->kind = ActionKind::kCall;
      PRODB_RETURN_IF_ERROR(Name(&out->target));
      while (!At(TokenKind::kRParen)) {
        AstValue v;
        PRODB_RETURN_IF_ERROR(Atom(&v));
        out->call_args.push_back(std::move(v));
      }
    } else {
      return Error("unknown action '" + verb + "'");
    }
    return Expect(TokenKind::kRParen);
  }

  Status CeIndex(ActionAst* out) {
    if (!At(TokenKind::kNumber) || Cur().is_real) {
      return Error("expected a condition element number");
    }
    out->ce_index = std::atoi(Cur().text.c_str());
    Advance();
    return Status::OK();
  }

  Status Assignments(ActionAst* out) {
    while (At(TokenKind::kCaret)) {
      Advance();
      std::string attr;
      PRODB_RETURN_IF_ERROR(Name(&attr));
      AstValue v;
      PRODB_RETURN_IF_ERROR(Atom(&v));
      out->assignments.emplace_back(std::move(attr), std::move(v));
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseProgram(const std::string& source, ProgramAst* out) {
  std::vector<Token> tokens;
  PRODB_RETURN_IF_ERROR(Lex(source, &tokens));
  Parser parser(std::move(tokens));
  return parser.Program(out);
}

Status ParseRule(const std::string& source, RuleAst* out) {
  std::vector<Token> tokens;
  PRODB_RETURN_IF_ERROR(Lex(source, &tokens));
  Parser parser(std::move(tokens));
  return parser.SingleRule(out);
}

}  // namespace prodb
