#ifndef PRODB_DB_EXECUTOR_H_
#define PRODB_DB_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "db/catalog.h"
#include "db/predicate.h"
#include "db/stats.h"

namespace prodb {

struct MatcherStats;

/// Tuning knobs for conjunctive-query evaluation.
struct ExecutorOptions {
  /// Probe hash/B+-tree indexes for bound equality attributes.
  bool use_indexes = true;
  /// Let matchers declare hash indexes at rule registration on the WM
  /// attributes appearing in equality tests of rule LHSs, so seeded
  /// re-evaluation and negated-CE checks probe instead of scanning
  /// (§4.1.2's "indexing can be used to efficiently identify the tuples").
  /// Off preserves an index-free baseline for the ablation benchmarks.
  bool declare_rule_indexes = true;
  /// Reorder positive conditions most-selective-first instead of LHS
  /// order. The paper argues this flexibility is an advantage of the DBMS
  /// approach over the Rete network's fixed plan (§3.2, §4.1.2); the
  /// ablation benchmark compares both settings.
  bool reorder = false;
  /// Consumed by the matchers driving this executor (not the executor
  /// itself): route per-delta rule dispatch through the constant-test
  /// discrimination index instead of walking every condition element
  /// registered on the delta's relation (§2.3 / [STON86a]). Off restores
  /// the linear walk for the ablation benchmarks.
  bool discriminate_dispatch = true;
};

/// One satisfying combination of WM tuples for a conjunctive query.
/// tuple_ids/tuples are indexed by the query's condition position;
/// negated conditions hold kNoTuple / an empty tuple.
struct QueryMatch {
  std::vector<TupleId> tuple_ids;
  std::vector<Tuple> tuples;
  Binding binding;

  static constexpr TupleId kNoTuple{UINT32_MAX, UINT32_MAX};
};

/// Set-at-a-time evaluator for rule LHSs read as conjunctive queries.
///
/// This is the machinery behind the "simplified algorithm" of §4.1: the
/// LHS of each rule is treated as a query against the WM relations and
/// re-evaluated when working memory changes. EvaluateSeeded implements
/// the delta form — one condition element is pinned to the tuple that
/// just arrived, and only the remaining join is computed.
class Executor {
 public:
  explicit Executor(Catalog* catalog, ExecutorOptions options = {})
      : catalog_(catalog), options_(options) {}

  /// All matches of `query` against current WM contents. When
  /// `forced_order` is non-null it fixes the positive-condition
  /// evaluation order (a planner-chosen sequence of positive CE indices;
  /// must cover every positive CE exactly once) instead of PlanOrder.
  Status Evaluate(const ConjunctiveQuery& query, std::vector<QueryMatch>* out,
                  const std::vector<size_t>* forced_order = nullptr) const;

  /// Matches of `query` in which positive condition `seed_idx` is bound
  /// to the given tuple. Returns InvalidArgument if `seed_idx` is negated.
  /// `forced_order` as in Evaluate; the seed's own CE is skipped.
  Status EvaluateSeeded(const ConjunctiveQuery& query, size_t seed_idx,
                        TupleId seed_id, const Tuple& seed,
                        std::vector<QueryMatch>* out,
                        const std::vector<size_t>* forced_order = nullptr)
      const;

  /// Matches of `query` consistent with a partial variable binding
  /// (smaller than `query.num_vars` slots are treated as unbound). This
  /// is how a matching pattern's attribute values become "the selection
  /// criterion applied when selecting tuples from the WM relations"
  /// (§5.1) — and it verifies cross-CE variable consistency exactly.
  Status EvaluateBound(const ConjunctiveQuery& query, const Binding& initial,
                       std::vector<QueryMatch>* out) const;

  /// --- Binary join primitives (benchmarks, DBMS-Rete internals) -------
  static Status NestedLoopJoin(Relation* left, Relation* right,
                               const JoinTest& test,
                               std::vector<std::pair<Tuple, Tuple>>* out);
  static Status HashJoin(Relation* left, Relation* right,
                         const JoinTest& test,
                         std::vector<std::pair<Tuple, Tuple>>* out);

  const ExecutorOptions& options() const { return options_; }

  /// Attaches a stats sink: index probes and per-tuple visit counts of
  /// ExtendPositive/FilterNegative are reported there, so the matchers
  /// driving this executor surface whether the index path was taken.
  void set_stats(MatcherStats* stats) { stats_ = stats; }

  /// Attaches catalog statistics for access-path selection: with stats,
  /// ExtendPositive probes the *most selective* indexed equality
  /// attribute (highest distinct count) instead of the first one found —
  /// the planner's hash-conversion rule applied at the WM index tier.
  /// Callers must guarantee the pointee outlives the executor and is
  /// safely published (see CatalogStats).
  void set_planner_stats(const CatalogStats* stats) {
    planner_stats_ = stats;
  }

 private:
  struct Partial;

  /// Extends each partial match with every tuple of `cond`'s relation
  /// that is consistent with the partial's binding.
  Status ExtendPositive(const ConditionSpec& cond, size_t cond_idx,
                        std::vector<Partial>* partials) const;

  /// Removes partials for which `cond`'s relation contains a consistent
  /// tuple (negation-as-absence, §4.2.2).
  Status FilterNegative(const ConditionSpec& cond,
                        std::vector<Partial>* partials) const;

  /// Evaluation order of positive condition indices.
  std::vector<size_t> PlanOrder(const ConjunctiveQuery& query,
                                int skip_idx) const;

  Catalog* catalog_;
  ExecutorOptions options_;
  MatcherStats* stats_ = nullptr;
  const CatalogStats* planner_stats_ = nullptr;
};

/// A test that could not be evaluated yet because its variable is bound
/// by a condition element not seen so far: `value op binding[var]` must
/// hold once `var` is bound (e.g. R1's `^salary < <s>` when the manager
/// tuple is examined before Mike's).
struct DeferredTest {
  Value value;
  CompareOp op;
  int var;
};

/// Checks a tuple against a condition's constant tests and a binding;
/// extends `binding` with values for newly bound variables on success.
/// A non-equality test on an unbound variable fails the tuple unless
/// `deferred` is non-null, in which case it is recorded there for later
/// settlement. Exposed for reuse by the matchers.
bool TupleConsistent(const ConditionSpec& cond, const Tuple& t,
                     Binding* binding,
                     std::vector<DeferredTest>* deferred = nullptr);

/// Evaluates and removes every deferred test whose variable `binding`
/// now covers; returns false if any fails.
bool SettleDeferred(const Binding& binding,
                    std::vector<DeferredTest>* deferred);

/// Builds the Binding a single tuple induces for `cond` (nullopt slots
/// elsewhere); returns false if the tuple fails the condition's constant
/// tests or intra-condition variable consistency (e.g. `<x> ... <x>`).
/// Cross-CE non-equality tests are deferred (and dropped) unless
/// `deferred` captures them.
bool BindSingle(const ConditionSpec& cond, const Tuple& t, int num_vars,
                Binding* out, std::vector<DeferredTest>* deferred = nullptr);

}  // namespace prodb

#endif  // PRODB_DB_EXECUTOR_H_
