#include "db/executor.h"

#include <algorithm>

#include "match/matcher.h"

namespace prodb {

constexpr TupleId QueryMatch::kNoTuple;

bool TupleConsistent(const ConditionSpec& cond, const Tuple& t,
                     Binding* binding,
                     std::vector<DeferredTest>* deferred) {
  for (const ConstantTest& c : cond.constant_tests) {
    if (!c.Matches(t)) return false;
  }
  // Check every test against already-bound variables, binding equality
  // occurrences as we go (OPS5 semantics: the first occurrence of <x>
  // binds, later occurrences test).
  Binding saved = *binding;
  size_t deferred_mark = deferred != nullptr ? deferred->size() : 0;
  for (const VarUse& u : cond.var_uses) {
    const Value& v = t[static_cast<size_t>(u.attr)];
    std::optional<Value>& slot = (*binding)[static_cast<size_t>(u.var)];
    if (slot.has_value()) {
      if (!EvalCompare(v, u.op, *slot)) {
        *binding = std::move(saved);
        if (deferred != nullptr) deferred->resize(deferred_mark);
        return false;
      }
    } else {
      if (u.op != CompareOp::kEq) {
        // The variable is bound by a condition element not yet examined
        // (e.g. when evaluation is seeded out of LHS order). Defer.
        if (deferred == nullptr) {
          *binding = std::move(saved);
          return false;
        }
        deferred->push_back(DeferredTest{v, u.op, u.var});
        continue;
      }
      slot = v;
    }
  }
  return true;
}

bool SettleDeferred(const Binding& binding,
                    std::vector<DeferredTest>* deferred) {
  for (size_t i = 0; i < deferred->size();) {
    const DeferredTest& d = (*deferred)[i];
    const auto& slot = binding[static_cast<size_t>(d.var)];
    if (!slot.has_value()) {
      ++i;
      continue;
    }
    if (!EvalCompare(d.value, d.op, *slot)) return false;
    (*deferred)[i] = deferred->back();
    deferred->pop_back();
  }
  return true;
}

bool BindSingle(const ConditionSpec& cond, const Tuple& t, int num_vars,
                Binding* out, std::vector<DeferredTest>* deferred) {
  out->assign(static_cast<size_t>(num_vars), std::nullopt);
  std::vector<DeferredTest> local;
  return TupleConsistent(cond, t, out,
                         deferred != nullptr ? deferred : &local);
}

struct Executor::Partial {
  Binding binding;
  std::vector<TupleId> ids;
  std::vector<Tuple> tuples;
  // Non-equality tests awaiting their variable's binder (see
  // DeferredTest); settled as extension proceeds.
  std::vector<DeferredTest> deferred;
};

std::vector<size_t> Executor::PlanOrder(const ConjunctiveQuery& query,
                                        int skip_idx) const {
  std::vector<size_t> positives;
  for (size_t i = 0; i < query.conditions.size(); ++i) {
    if (!query.conditions[i].negated && static_cast<int>(i) != skip_idx) {
      positives.push_back(i);
    }
  }
  if (!options_.reorder) return positives;

  // Greedy most-selective-first: prefer conditions with more constant
  // tests (stronger filters) and more variables already bound by the
  // conditions placed so far — the "optimal plans" freedom of §4.1.2.
  // Non-equality uses of a still-unbound variable force a condition to
  // wait for its binder.
  std::vector<bool> bound(static_cast<size_t>(query.num_vars), false);
  if (skip_idx >= 0) {
    for (const VarUse& u : query.conditions[static_cast<size_t>(skip_idx)].var_uses) {
      if (u.op == CompareOp::kEq) bound[static_cast<size_t>(u.var)] = true;
    }
  }
  std::vector<size_t> order;
  std::vector<bool> used(query.conditions.size(), false);
  while (order.size() < positives.size()) {
    int best = -1;
    long best_score = -1;
    for (size_t i : positives) {
      if (used[i]) continue;
      const ConditionSpec& c = query.conditions[i];
      bool eligible = true;
      long score = static_cast<long>(c.constant_tests.size()) * 10;
      for (const VarUse& u : c.var_uses) {
        if (bound[static_cast<size_t>(u.var)]) {
          score += 25;  // joins on bound vars narrow the search
        } else if (u.op != CompareOp::kEq) {
          eligible = false;
          break;
        }
      }
      if (!eligible) continue;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      // Dependency cycle among non-eq uses; fall back to LHS order for
      // the remainder.
      for (size_t i : positives) {
        if (!used[i]) order.push_back(i);
      }
      break;
    }
    used[static_cast<size_t>(best)] = true;
    order.push_back(static_cast<size_t>(best));
    for (const VarUse& u : query.conditions[static_cast<size_t>(best)].var_uses) {
      if (u.op == CompareOp::kEq) bound[static_cast<size_t>(u.var)] = true;
    }
  }
  return order;
}

Status Executor::ExtendPositive(const ConditionSpec& cond, size_t cond_idx,
                                std::vector<Partial>* partials) const {
  Relation* rel = catalog_->Get(cond.relation);
  if (rel == nullptr) {
    return Status::NotFound("relation " + cond.relation);
  }
  std::vector<Partial> next;
  for (Partial& p : *partials) {
    // Index probe: an equality var-use whose variable is bound, or an
    // equality constant test, on an indexed attribute.
    std::vector<TupleId> candidate_ids;
    bool have_candidates = false;
    if (options_.use_indexes) {
      // With catalog statistics attached, pick the most selective probe
      // (highest distinct count) among all indexed candidates; without
      // them, the historical first-found choice. Bound-variable probes
      // still outrank constant probes — a constant test also filtered
      // the statistics the distinct counts were built over.
      const RelationStats* rstats = planner_stats_ == nullptr
                                        ? nullptr
                                        : planner_stats_->Get(cond.relation);
      int best_attr = -1;
      const Value* best_value = nullptr;
      double best_distinct = 0.0;
      for (const VarUse& u : cond.var_uses) {
        if (u.op != CompareOp::kEq) continue;
        const auto& slot = p.binding[static_cast<size_t>(u.var)];
        if (!slot.has_value()) continue;
        if (!rel->HasHashIndex(u.attr) && !rel->HasBTreeIndex(u.attr)) {
          continue;
        }
        const double d =
            rstats == nullptr ? 1.0 : rstats->DistinctEstimate(u.attr);
        if (best_attr < 0 || d > best_distinct) {
          best_attr = u.attr;
          best_value = &*slot;
          best_distinct = d;
        }
        if (rstats == nullptr) break;  // first found, as before
      }
      if (best_attr < 0) {
        for (const ConstantTest& c : cond.constant_tests) {
          if (c.op != CompareOp::kEq) continue;
          if (!rel->HasHashIndex(c.attr) && !rel->HasBTreeIndex(c.attr)) {
            continue;
          }
          const double d =
              rstats == nullptr ? 1.0 : rstats->DistinctEstimate(c.attr);
          if (best_attr < 0 || d > best_distinct) {
            best_attr = c.attr;
            best_value = &c.constant;
            best_distinct = d;
          }
          if (rstats == nullptr) break;
        }
      }
      if (best_attr >= 0) {
        PRODB_RETURN_IF_ERROR(
            rel->LookupEq(best_attr, *best_value, &candidate_ids));
        have_candidates = true;
      }
    }
    auto try_tuple = [&](TupleId id, const Tuple& t) {
      Binding b = p.binding;
      std::vector<DeferredTest> d = p.deferred;
      if (!TupleConsistent(cond, t, &b, &d)) return;
      if (!SettleDeferred(b, &d)) return;
      Partial np;
      np.binding = std::move(b);
      np.ids = p.ids;
      np.tuples = p.tuples;
      np.deferred = std::move(d);
      np.ids[cond_idx] = id;
      np.tuples[cond_idx] = t;
      next.push_back(std::move(np));
    };
    if (have_candidates) {
      if (stats_ != nullptr) {
        ++stats_->index_probes;
        stats_->probe_tokens_visited += candidate_ids.size();
      }
      for (TupleId id : candidate_ids) {
        Tuple t;
        PRODB_RETURN_IF_ERROR(rel->Get(id, &t));
        try_tuple(id, t);
      }
    } else {
      PRODB_RETURN_IF_ERROR(rel->Scan([&](TupleId id, const Tuple& t) {
        if (stats_ != nullptr) ++stats_->scan_tokens_visited;
        try_tuple(id, t);
        return Status::OK();
      }));
    }
  }
  *partials = std::move(next);
  return Status::OK();
}

Status Executor::FilterNegative(const ConditionSpec& cond,
                                std::vector<Partial>* partials) const {
  Relation* rel = catalog_->Get(cond.relation);
  if (rel == nullptr) {
    return Status::NotFound("relation " + cond.relation);
  }
  std::vector<Partial> next;
  for (Partial& p : *partials) {
    bool exists = false;
    // Index probe mirrors ExtendPositive but stops at the first witness.
    std::vector<TupleId> candidate_ids;
    bool have_candidates = false;
    if (options_.use_indexes) {
      for (const VarUse& u : cond.var_uses) {
        if (u.op != CompareOp::kEq) continue;
        const auto& slot = p.binding[static_cast<size_t>(u.var)];
        if (!slot.has_value()) continue;
        if (rel->HasHashIndex(u.attr) || rel->HasBTreeIndex(u.attr)) {
          PRODB_RETURN_IF_ERROR(rel->LookupEq(u.attr, *slot, &candidate_ids));
          have_candidates = true;
          break;
        }
      }
    }
    if (have_candidates) {
      if (stats_ != nullptr) {
        ++stats_->index_probes;
        stats_->probe_tokens_visited += candidate_ids.size();
      }
      for (TupleId id : candidate_ids) {
        Tuple t;
        PRODB_RETURN_IF_ERROR(rel->Get(id, &t));
        Binding b = p.binding;
        if (TupleConsistent(cond, t, &b)) {
          exists = true;
          break;
        }
      }
    } else {
      PRODB_RETURN_IF_ERROR(rel->Scan([&](TupleId, const Tuple& t) {
        if (stats_ != nullptr) ++stats_->scan_tokens_visited;
        if (!exists) {
          Binding b = p.binding;
          if (TupleConsistent(cond, t, &b)) exists = true;
        }
        return Status::OK();
      }));
    }
    if (!exists) next.push_back(std::move(p));
  }
  *partials = std::move(next);
  return Status::OK();
}

Status Executor::Evaluate(const ConjunctiveQuery& query,
                          std::vector<QueryMatch>* out,
                          const std::vector<size_t>* forced_order) const {
  return EvaluateSeeded(query, SIZE_MAX, QueryMatch::kNoTuple, Tuple(), out,
                        forced_order);
}

Status Executor::EvaluateBound(const ConjunctiveQuery& query,
                               const Binding& initial,
                               std::vector<QueryMatch>* out) const {
  out->clear();
  const size_t n = query.conditions.size();
  Partial init;
  init.binding.assign(static_cast<size_t>(query.num_vars), std::nullopt);
  for (size_t i = 0; i < initial.size() && i < init.binding.size(); ++i) {
    init.binding[i] = initial[i];
  }
  init.ids.assign(n, QueryMatch::kNoTuple);
  init.tuples.assign(n, Tuple());

  std::vector<Partial> partials{std::move(init)};
  for (size_t idx : PlanOrder(query, -1)) {
    PRODB_RETURN_IF_ERROR(
        ExtendPositive(query.conditions[idx], idx, &partials));
    if (partials.empty()) return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    if (!query.conditions[i].negated) continue;
    PRODB_RETURN_IF_ERROR(FilterNegative(query.conditions[i], &partials));
    if (partials.empty()) return Status::OK();
  }
  out->reserve(partials.size());
  for (Partial& p : partials) {
    if (!p.deferred.empty()) continue;  // variable never bound: malformed
    out->push_back(QueryMatch{std::move(p.ids), std::move(p.tuples),
                              std::move(p.binding)});
  }
  return Status::OK();
}

Status Executor::EvaluateSeeded(const ConjunctiveQuery& query,
                                size_t seed_idx, TupleId seed_id,
                                const Tuple& seed,
                                std::vector<QueryMatch>* out,
                                const std::vector<size_t>* forced_order)
    const {
  out->clear();
  const size_t n = query.conditions.size();
  Partial init;
  init.binding.assign(static_cast<size_t>(query.num_vars), std::nullopt);
  init.ids.assign(n, QueryMatch::kNoTuple);
  init.tuples.assign(n, Tuple());

  int skip = -1;
  if (seed_idx != SIZE_MAX) {
    if (seed_idx >= n) {
      return Status::InvalidArgument("seed index out of range");
    }
    const ConditionSpec& sc = query.conditions[seed_idx];
    if (sc.negated) {
      return Status::InvalidArgument("cannot seed a negated condition");
    }
    if (!TupleConsistent(sc, seed, &init.binding, &init.deferred)) {
      return Status::OK();  // the new tuple does not satisfy its own CE
    }
    init.ids[seed_idx] = seed_id;
    init.tuples[seed_idx] = seed;
    skip = static_cast<int>(seed_idx);
  }

  // A planner-supplied order overrides PlanOrder; deferred tests settle
  // ordered comparisons whose binder the plan placed later, so any
  // positive-CE permutation evaluates to the same match set.
  std::vector<size_t> order;
  if (forced_order != nullptr) {
    order.reserve(forced_order->size());
    for (size_t idx : *forced_order) {
      if (static_cast<int>(idx) != skip && idx < n &&
          !query.conditions[idx].negated) {
        order.push_back(idx);
      }
    }
  } else {
    order = PlanOrder(query, skip);
  }

  std::vector<Partial> partials{std::move(init)};
  for (size_t idx : order) {
    PRODB_RETURN_IF_ERROR(
        ExtendPositive(query.conditions[idx], idx, &partials));
    if (partials.empty()) return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    if (!query.conditions[i].negated) continue;
    PRODB_RETURN_IF_ERROR(FilterNegative(query.conditions[i], &partials));
    if (partials.empty()) return Status::OK();
  }
  out->reserve(partials.size());
  for (Partial& p : partials) {
    // A deferred test still pending means its variable was never bound
    // by any positive CE — a malformed rule; treat as unsatisfied.
    if (!p.deferred.empty()) continue;
    out->push_back(QueryMatch{std::move(p.ids), std::move(p.tuples),
                              std::move(p.binding)});
  }
  return Status::OK();
}

Status Executor::NestedLoopJoin(Relation* left, Relation* right,
                                const JoinTest& test,
                                std::vector<std::pair<Tuple, Tuple>>* out) {
  out->clear();
  return left->Scan([&](TupleId, const Tuple& l) {
    return right->Scan([&](TupleId, const Tuple& r) {
      if (test.Matches(l, r)) out->emplace_back(l, r);
      return Status::OK();
    });
  });
}

Status Executor::HashJoin(Relation* left, Relation* right,
                          const JoinTest& test,
                          std::vector<std::pair<Tuple, Tuple>>* out) {
  out->clear();
  if (test.op != CompareOp::kEq) {
    return Status::NotSupported("hash join requires an equality predicate");
  }
  // Build-side selection: hash the smaller input, probe with the larger
  // — the planner's build-side rule grounded in the live cardinalities
  // (the memory-resident table should be the small one). Output pairs
  // stay (left, right) regardless of which side built.
  const bool build_left = left->Count() <= right->Count();
  Relation* build = build_left ? left : right;
  Relation* probe = build_left ? right : left;
  const size_t build_attr =
      static_cast<size_t>(build_left ? test.left_attr : test.right_attr);
  const size_t probe_attr =
      static_cast<size_t>(build_left ? test.right_attr : test.left_attr);
  std::unordered_map<Value, std::vector<Tuple>, ValueHash> table;
  PRODB_RETURN_IF_ERROR(build->Scan([&](TupleId, const Tuple& b) {
    table[b[build_attr]].push_back(b);
    return Status::OK();
  }));
  return probe->Scan([&](TupleId, const Tuple& p) {
    auto it = table.find(p[probe_attr]);
    if (it == table.end()) return Status::OK();
    for (const Tuple& b : it->second) {
      if (build_left) {
        out->emplace_back(b, p);
      } else {
        out->emplace_back(p, b);
      }
    }
    return Status::OK();
  });
}

}  // namespace prodb
