#ifndef PRODB_DB_STATS_H_
#define PRODB_DB_STATS_H_

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/change_set.h"
#include "common/status.h"
#include "db/catalog.h"
#include "db/predicate.h"

namespace prodb {

/// Incrementally maintained statistics for one WM relation: cardinality,
/// per-attribute distinct-count sketches, and small equi-width histograms
/// — the catalog statistics a cost-based planner reads (§3.2/[SELL88]:
/// access planning over the rule base needs what any DBMS optimizer
/// needs).
///
/// The batch path pays only relaxed atomic counter updates (OnDelta);
/// everything that needs a pass over the data — histogram bounds, the
/// distinct-count bitmaps after deletions — is rebuilt off that path by
/// Resketch, which the planner triggers lazily when the counters say the
/// sketch has drifted. All fields are written with atomics, so concurrent
/// readers (plan-time estimation from one engine thread while another
/// commits a batch) are race-free without a lock; estimates read mid-
/// update are approximate, which is all an estimator ever promises.
class RelationStats {
 public:
  static constexpr size_t kHistBuckets = 16;
  /// Linear-counting bitmap size in bits (per attribute). 1024 bits
  /// estimate distinct counts accurately to a few percent up to ~1000
  /// and saturate above — beyond that the estimate is capped by the
  /// cardinality, which is the regime where "many distinct values" is
  /// the only fact the planner needs.
  static constexpr size_t kSketchBits = 1024;
  static constexpr size_t kSketchWords = kSketchBits / 64;
  /// Above this cardinality OnDelta samples sketch/histogram updates
  /// 1-in-4 (counters stay exact); below it every delta is observed.
  static constexpr int64_t kSampleAbove = 256;

  explicit RelationStats(size_t arity);

  /// One tuple entered (+1) or left (-1) the relation. Cheap: a handful
  /// of relaxed atomic ops per attribute.
  void OnDelta(const Tuple& t, int sign);

  /// Rebuilds the per-attribute sketches (distinct bitmaps, histogram
  /// bounds and buckets) from a full scan of `rel`. Called off the batch
  /// path; concurrent OnDelta updates during the scan smear the result
  /// by at most the in-flight deltas.
  Status Resketch(Relation* rel);

  /// True when enough churn has accumulated since the last Resketch that
  /// the sketches may mislead the estimator (deletions age the distinct
  /// bitmaps; out-of-range values age the histogram bounds).
  bool SketchStale() const;

  int64_t cardinality() const {
    int64_t c = cardinality_.load(std::memory_order_relaxed);
    return c < 0 ? 0 : c;
  }

  /// Estimated number of distinct values of attribute `attr` (>= 1 when
  /// the relation is non-empty).
  double DistinctEstimate(int attr) const;

  /// Estimated fraction of tuples whose `attr` value equals `v`.
  double SelectivityEq(int attr, const Value& v) const;

  /// Estimated fraction of tuples whose `attr` satisfies `attr op v` for
  /// an ordered comparison (kLt/kLe/kGt/kGe). Falls back to 1/3 when the
  /// histogram has no signal.
  double SelectivityCmp(int attr, CompareOp op, const Value& v) const;

  size_t arity() const { return attrs_.size(); }
  uint64_t resketches() const {
    return resketches_.load(std::memory_order_relaxed);
  }

 private:
  struct AttrStats {
    // Distinct-count sketch: bit Hash(v) % kSketchBits set for every
    // value ever inserted since the last Resketch (deletions do not
    // clear — the periodic re-sketch does).
    std::array<std::atomic<uint64_t>, kSketchWords> sketch;
    // Equi-width histogram over [lo, hi] (numeric values only). Bounds
    // are fixed at Resketch time; values outside land in out_of_range.
    std::atomic<double> lo{0.0};
    std::atomic<double> hi{0.0};
    std::atomic<bool> bounded{false};
    std::array<std::atomic<int64_t>, kHistBuckets> buckets;
    std::atomic<int64_t> out_of_range{0};
    std::atomic<int64_t> non_numeric{0};

    AttrStats() {
      for (auto& w : sketch) w.store(0, std::memory_order_relaxed);
      for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    }
  };

  void Observe(AttrStats* a, const Value& v, int sign);

  std::atomic<int64_t> cardinality_{0};
  // Deltas applied since the last Resketch; drives SketchStale.
  std::atomic<int64_t> churn_since_sketch_{0};
  std::atomic<int64_t> card_at_sketch_{0};
  std::atomic<uint64_t> resketches_{0};
  std::vector<AttrStats> attrs_;
};

/// Registry of RelationStats, one per WM relation a matcher's rules
/// reference. Registration happens at AddRule time (single-threaded by
/// the Matcher contract: "rules must be added before WM activity");
/// after that the map is read-only and OnBatch may update stats from
/// concurrent engine threads without a lock — the same Seal()-style
/// publication discipline the discrimination index uses.
class CatalogStats {
 public:
  /// Registers `rel` (idempotent). Must not race OnBatch/Get.
  void Register(const std::string& rel, size_t arity);

  /// Registers `rel` and, on first registration of a non-empty relation,
  /// seeds the stats from its current contents (one Resketch scan) — so
  /// rules added after a WM preload plan against real cardinalities, not
  /// zeros. Idempotent; must not race OnBatch/Get.
  void Register(const std::string& name, Relation* rel);

  /// Per-relation stats, or nullptr when `rel` was never registered.
  RelationStats* Get(const std::string& rel) const;

  /// Folds one batch into the counters (insert = +1, delete = -1).
  void OnBatch(const ChangeSet& batch);
  void OnDelta(const std::string& rel, const Tuple& t, int sign);

  /// Re-sketches every registered relation whose sketch is stale.
  /// Returns the number re-sketched.
  size_t RefreshStale(Catalog* catalog);

  size_t size() const { return stats_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<RelationStats>> stats_;
};

}  // namespace prodb

#endif  // PRODB_DB_STATS_H_
