#include "db/predicate.h"

namespace prodb {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs.Compare(rhs) < 0;
    case CompareOp::kLe: return lhs.Compare(rhs) <= 0;
    case CompareOp::kGt: return lhs.Compare(rhs) > 0;
    case CompareOp::kGe: return lhs.Compare(rhs) >= 0;
  }
  return false;
}

std::string ConstantTest::ToString() const {
  return "$" + std::to_string(attr) + " " + CompareOpName(op) + " " +
         constant.ToString();
}

std::string Selection::ToString() const {
  std::string out;
  for (size_t i = 0; i < tests.size(); ++i) {
    if (i) out += " and ";
    out += tests[i].ToString();
  }
  return out.empty() ? "true" : out;
}

std::string JoinTest::ToString() const {
  return "L.$" + std::to_string(left_attr) + " " + CompareOpName(op) +
         " R.$" + std::to_string(right_attr);
}

std::string ConditionSpec::ToString() const {
  std::string out = negated ? "-(" : "(";
  out += relation;
  for (const ConstantTest& c : constant_tests) {
    out += " " + c.ToString();
  }
  for (const VarUse& v : var_uses) {
    out += " $" + std::to_string(v.attr) + " " + CompareOpName(v.op) + " ?" +
           std::to_string(v.var);
  }
  out += ")";
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out;
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (i) out += " & ";
    out += conditions[i].ToString();
  }
  return out;
}

}  // namespace prodb
