#ifndef PRODB_DB_PREDICATE_H_
#define PRODB_DB_PREDICATE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/tuple.h"
#include "common/value.h"

namespace prodb {

/// Comparison operators of OPS5 condition tests: { <, >, <=, >=, =, <> }.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// Applies `lhs op rhs`. Cross-type comparisons follow Value::Compare.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

/// `attribute op constant` — the test performed by a Rete one-input node.
struct ConstantTest {
  int attr = 0;
  CompareOp op = CompareOp::kEq;
  Value constant;

  bool Matches(const Tuple& t) const {
    return EvalCompare(t[static_cast<size_t>(attr)], op, constant);
  }
  std::string ToString() const;
};

/// Conjunction of constant tests over one relation (a selection).
struct Selection {
  std::vector<ConstantTest> tests;

  bool Matches(const Tuple& t) const {
    for (const ConstantTest& c : tests) {
      if (!c.Matches(t)) return false;
    }
    return true;
  }
  std::string ToString() const;
};

/// `left.attr op right.attr` — the test performed by a Rete two-input
/// node. In OPS5 these arise from variables shared between condition
/// elements.
struct JoinTest {
  int left_attr = 0;
  CompareOp op = CompareOp::kEq;
  int right_attr = 0;

  bool Matches(const Tuple& l, const Tuple& r) const {
    return EvalCompare(l[static_cast<size_t>(left_attr)], op,
                       r[static_cast<size_t>(right_attr)]);
  }
  std::string ToString() const;
};

/// Occurrence of a variable in a condition element: the tuple attribute
/// `attr` must stand in relation `op` to the variable's bound value. For
/// the binding occurrence of a variable op is kEq.
struct VarUse {
  int attr = 0;
  int var = 0;  // dense variable id within the rule
  CompareOp op = CompareOp::kEq;
};

/// One condition element of a conjunctive query / rule LHS, resolved
/// against a relation by name.
struct ConditionSpec {
  std::string relation;
  std::vector<ConstantTest> constant_tests;
  std::vector<VarUse> var_uses;
  bool negated = false;

  std::string ToString() const;
};

/// A conjunctive query: the relational reading of a rule LHS (§3.2:
/// "LHS's are equivalent to retrieval operations in a DBMS context").
struct ConjunctiveQuery {
  std::vector<ConditionSpec> conditions;
  int num_vars = 0;

  std::string ToString() const;
};

/// Variable binding during conjunctive-query evaluation; unbound slots
/// are nullopt.
using Binding = std::vector<std::optional<Value>>;

}  // namespace prodb

#endif  // PRODB_DB_PREDICATE_H_
