#include "db/stats.h"

#include <algorithm>
#include <cmath>

namespace prodb {

RelationStats::RelationStats(size_t arity) : attrs_(arity) {}

void RelationStats::Observe(AttrStats* a, const Value& v, int sign) {
  if (sign > 0 && !v.is_null()) {
    const size_t bit = v.Hash() % kSketchBits;
    a->sketch[bit / 64].fetch_or(uint64_t{1} << (bit % 64),
                                 std::memory_order_relaxed);
  }
  if (!v.is_numeric()) {
    a->non_numeric.fetch_add(sign, std::memory_order_relaxed);
    return;
  }
  const double x = v.numeric();
  if (!a->bounded.load(std::memory_order_relaxed)) {
    a->out_of_range.fetch_add(sign, std::memory_order_relaxed);
    return;
  }
  const double lo = a->lo.load(std::memory_order_relaxed);
  const double hi = a->hi.load(std::memory_order_relaxed);
  if (x < lo || x > hi) {
    a->out_of_range.fetch_add(sign, std::memory_order_relaxed);
    return;
  }
  const double width = hi - lo;
  size_t b = width <= 0.0
                 ? 0
                 : static_cast<size_t>((x - lo) / width * kHistBuckets);
  if (b >= kHistBuckets) b = kHistBuckets - 1;
  a->buckets[b].fetch_add(sign, std::memory_order_relaxed);
}

void RelationStats::OnDelta(const Tuple& t, int sign) {
  const int64_t card = cardinality_.fetch_add(sign, std::memory_order_relaxed);
  const int64_t churn =
      churn_since_sketch_.fetch_add(1, std::memory_order_relaxed);
  // The counters above are exact (drift detection depends on them); the
  // sketches and histograms are statistical, so once the relation is past
  // sketch-resolution size, observing 1-in-4 deltas estimates the same
  // distributions at a quarter of the per-delta cost. Small relations
  // stay exact — there the planner's estimates ride on few tuples and
  // sampling error would be visible. Resketch rebuilds from a full scan
  // either way.
  if (card > kSampleAbove && (churn & 3) != 0) return;
  const size_t n = std::min(attrs_.size(), t.arity());
  for (size_t i = 0; i < n; ++i) Observe(&attrs_[i], t[i], sign);
}

Status RelationStats::Resketch(Relation* rel) {
  // Pass 1: numeric ranges per attribute (histogram bounds).
  std::vector<double> lo(attrs_.size(), 0.0), hi(attrs_.size(), 0.0);
  std::vector<bool> seen(attrs_.size(), false);
  PRODB_RETURN_IF_ERROR(rel->Scan([&](TupleId, const Tuple& t) {
    const size_t n = std::min(attrs_.size(), t.arity());
    for (size_t i = 0; i < n; ++i) {
      if (!t[i].is_numeric()) continue;
      const double x = t[i].numeric();
      if (!seen[i]) {
        lo[i] = hi[i] = x;
        seen[i] = true;
      } else {
        lo[i] = std::min(lo[i], x);
        hi[i] = std::max(hi[i], x);
      }
    }
    return Status::OK();
  }));
  // Publish fresh (empty) sketches with the new bounds, then fill them
  // with pass 2. Concurrent OnDelta writers interleave harmlessly: they
  // add to the new counters using the new bounds.
  for (size_t i = 0; i < attrs_.size(); ++i) {
    AttrStats& a = attrs_[i];
    for (auto& w : a.sketch) w.store(0, std::memory_order_relaxed);
    for (auto& b : a.buckets) b.store(0, std::memory_order_relaxed);
    a.out_of_range.store(0, std::memory_order_relaxed);
    a.non_numeric.store(0, std::memory_order_relaxed);
    a.lo.store(seen[i] ? lo[i] : 0.0, std::memory_order_relaxed);
    a.hi.store(seen[i] ? hi[i] : 0.0, std::memory_order_relaxed);
    a.bounded.store(seen[i], std::memory_order_relaxed);
  }
  int64_t scanned = 0;
  PRODB_RETURN_IF_ERROR(rel->Scan([&](TupleId, const Tuple& t) {
    ++scanned;
    const size_t n = std::min(attrs_.size(), t.arity());
    for (size_t i = 0; i < n; ++i) Observe(&attrs_[i], t[i], +1);
    return Status::OK();
  }));
  cardinality_.store(scanned, std::memory_order_relaxed);
  card_at_sketch_.store(scanned, std::memory_order_relaxed);
  churn_since_sketch_.store(0, std::memory_order_relaxed);
  resketches_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool RelationStats::SketchStale() const {
  const int64_t churn = churn_since_sketch_.load(std::memory_order_relaxed);
  const int64_t base = card_at_sketch_.load(std::memory_order_relaxed);
  // Stale once churn exceeds the population the sketch was built over
  // (plus a floor so tiny relations re-sketch only after real movement).
  return churn > 64 + base;
}

double RelationStats::DistinctEstimate(int attr) const {
  const int64_t card = cardinality();
  if (card <= 0) return 1.0;
  if (attr < 0 || static_cast<size_t>(attr) >= attrs_.size()) {
    return static_cast<double>(card);
  }
  const AttrStats& a = attrs_[static_cast<size_t>(attr)];
  size_t set = 0;
  for (const auto& w : a.sketch) {
    set += static_cast<size_t>(
        __builtin_popcountll(w.load(std::memory_order_relaxed)));
  }
  if (set == 0) return 1.0;
  double est;
  if (set >= kSketchBits) {
    est = static_cast<double>(card);
  } else {
    // Linear counting: d ≈ -m ln(unset/m).
    const double m = static_cast<double>(kSketchBits);
    est = -m * std::log((m - static_cast<double>(set)) / m);
  }
  return std::clamp(est, 1.0, static_cast<double>(card));
}

double RelationStats::SelectivityEq(int attr, const Value& v) const {
  const int64_t card = cardinality();
  if (card <= 0) return 0.0;
  if (attr >= 0 && static_cast<size_t>(attr) < attrs_.size() &&
      !v.is_null()) {
    // A value whose sketch bit is clear was never inserted since the
    // last re-sketch — selectivity (near) zero.
    const AttrStats& a = attrs_[static_cast<size_t>(attr)];
    const size_t bit = v.Hash() % kSketchBits;
    const uint64_t word = a.sketch[bit / 64].load(std::memory_order_relaxed);
    if ((word & (uint64_t{1} << (bit % 64))) == 0) {
      return 0.1 / static_cast<double>(card);
    }
  }
  return 1.0 / DistinctEstimate(attr);
}

double RelationStats::SelectivityCmp(int attr, CompareOp op,
                                     const Value& v) const {
  const int64_t card = cardinality();
  if (card <= 0) return 0.0;
  if (op == CompareOp::kEq) return SelectivityEq(attr, v);
  if (op == CompareOp::kNe) return 1.0 - SelectivityEq(attr, v);
  if (attr < 0 || static_cast<size_t>(attr) >= attrs_.size() ||
      !v.is_numeric()) {
    return 1.0 / 3.0;
  }
  const AttrStats& a = attrs_[static_cast<size_t>(attr)];
  if (!a.bounded.load(std::memory_order_relaxed)) return 1.0 / 3.0;
  const double lo = a.lo.load(std::memory_order_relaxed);
  const double hi = a.hi.load(std::memory_order_relaxed);
  const double x = v.numeric();
  int64_t in_range = 0;
  for (const auto& b : a.buckets) {
    in_range += b.load(std::memory_order_relaxed);
  }
  if (in_range <= 0) return 1.0 / 3.0;
  // Fraction of histogram mass strictly below x, interpolating within
  // the bucket x falls in (equi-width, uniform-within-bucket).
  double below;
  if (x <= lo) {
    below = 0.0;
  } else if (x >= hi) {
    below = static_cast<double>(in_range);
  } else {
    const double width = (hi - lo) / kHistBuckets;
    const size_t b = std::min(
        kHistBuckets - 1, static_cast<size_t>((x - lo) / (hi - lo) *
                                              kHistBuckets));
    below = 0.0;
    for (size_t i = 0; i < b; ++i) {
      below += static_cast<double>(
          a.buckets[i].load(std::memory_order_relaxed));
    }
    const double frac = width <= 0.0 ? 0.5 : (x - (lo + b * width)) / width;
    below += frac * static_cast<double>(
                        a.buckets[b].load(std::memory_order_relaxed));
  }
  double sel = below / static_cast<double>(in_range);
  if (op == CompareOp::kGt || op == CompareOp::kGe) sel = 1.0 - sel;
  return std::clamp(sel, 0.0, 1.0);
}

void CatalogStats::Register(const std::string& rel, size_t arity) {
  auto it = stats_.find(rel);
  if (it != stats_.end()) return;
  stats_.emplace(rel, std::make_unique<RelationStats>(arity));
}

void CatalogStats::Register(const std::string& name, Relation* rel) {
  if (stats_.count(name) != 0) return;
  auto s = std::make_unique<RelationStats>(rel->schema().arity());
  if (rel->Count() > 0) (void)s->Resketch(rel);
  stats_.emplace(name, std::move(s));
}

RelationStats* CatalogStats::Get(const std::string& rel) const {
  auto it = stats_.find(rel);
  return it == stats_.end() ? nullptr : it->second.get();
}

void CatalogStats::OnBatch(const ChangeSet& batch) {
  // Batches arrive grouped by relation in practice; resolve the map
  // entry once per run of equal names instead of per delta.
  RelationStats* s = nullptr;
  const std::string* last = nullptr;
  for (const Delta& d : batch) {
    if (last == nullptr || d.relation != *last) {
      s = Get(d.relation);
      last = &d.relation;
    }
    if (s != nullptr) s->OnDelta(d.tuple, d.is_insert() ? +1 : -1);
  }
}

void CatalogStats::OnDelta(const std::string& rel, const Tuple& t,
                           int sign) {
  RelationStats* s = Get(rel);
  if (s != nullptr) s->OnDelta(t, sign);
}

size_t CatalogStats::RefreshStale(Catalog* catalog) {
  size_t refreshed = 0;
  for (auto& [name, s] : stats_) {
    if (!s->SketchStale()) continue;
    Relation* rel = catalog->Get(name);
    if (rel == nullptr) continue;
    if (s->Resketch(rel).ok()) ++refreshed;
  }
  return refreshed;
}

}  // namespace prodb
