#include "db/catalog.h"

#include <algorithm>

#include "storage/disk_manager.h"

namespace prodb {

namespace {

/// The directory's own schema: one row per durable relation.
Schema DirectorySchema() {
  return Schema("__prodb_directory",
                {{"class", ValueType::kSymbol},
                 {"head_page", ValueType::kInt},
                 {"signature", ValueType::kSymbol}});
}

/// "name:T,name:T,..." — enough to catch schema drift across restart.
std::string SchemaSignature(const Schema& schema) {
  std::string sig;
  for (const Attribute& a : schema.attributes()) {
    if (!sig.empty()) sig += ',';
    sig += a.name;
    sig += ':';
    sig += std::to_string(static_cast<int>(a.type));
  }
  return sig;
}

}  // namespace

Catalog::Catalog(CatalogOptions options) : options_(std::move(options)) {}

Status Catalog::EnsurePool() {
  if (pool_ != nullptr) return Status::OK();
  if (options_.disk != nullptr) {
    pool_ = std::make_unique<BufferPool>(options_.buffer_pool_frames,
                                         options_.disk);
  } else {
    std::unique_ptr<DiskManager> disk;
    if (!options_.db_path.empty()) {
      std::unique_ptr<FileDiskManager> fdm;
      PRODB_RETURN_IF_ERROR(FileDiskManager::Open(
          options_.db_path, /*truncate=*/!options_.open_existing, &fdm));
      disk = std::move(fdm);
    } else {
      disk = std::make_unique<MemoryDiskManager>();
    }
    pool_ = std::make_unique<BufferPool>(options_.buffer_pool_frames,
                                         std::move(disk));
  }
  if (options_.enable_wal) {
    LogManagerOptions lopts;
    lopts.auto_flush = options_.wal_auto_flush;
    DiskManager* disk = pool_->disk();
    if (disk->PageCount() == 0) {
      // Fresh database: the log head claims the first page.
      PRODB_RETURN_IF_ERROR(LogManager::Create(disk, lopts, &wal_));
    } else {
      // Restart over an existing image (clean shutdown or crash): redo
      // history from the last checkpoint, roll back losers, truncate the
      // torn tail, resume appends past the recovery-written CLRs.
      PRODB_RETURN_IF_ERROR(RecoverLog(pool_.get(), &recovery_));
      PRODB_RETURN_IF_ERROR(LogManager::Resume(disk, lopts,
                                               recovery_.log_pages,
                                               recovery_.log_base,
                                               recovery_.log_end, &wal_));
    }
    pool_->SetWal(wal_.get());
    if (options_.durable_directory) {
      PRODB_RETURN_IF_ERROR(
          OpenDirectoryLocked(/*fresh_log=*/disk->PageCount() <= 2));
    }
  }
  return Status::OK();
}

Status Catalog::OpenDirectoryLocked(bool fresh_log) {
  if (fresh_log) {
    // Fresh database: the directory claims the page right after the log
    // head, the one page id a restarted process can assume.
    PRODB_RETURN_IF_ERROR(
        Relation::CreatePaged(DirectorySchema(), pool_.get(), &directory_));
    if (directory_->head_page_id() != kDirectoryHeadPageId) {
      return Status::Internal(
          "directory head landed on page " +
          std::to_string(directory_->head_page_id()) +
          "; the durable directory must be created before any other "
          "allocation");
    }
    // Harden the directory's existence immediately: every later restart
    // may assume that a valid log anchor implies an openable directory.
    return wal_->Flush();
  }
  // Restart: reopen the directory at its fixed page and load entries.
  Status st = Relation::OpenPaged(DirectorySchema(), pool_.get(),
                                  kDirectoryHeadPageId, &directory_);
  if (!st.ok()) {
    // A crash between db creation and the directory-creation flush above
    // leaves an image with zero durable state (that flush precedes any
    // ack), so recovering to an empty database is correct — recreate,
    // provided the fixed page is still obtainable. Anything else is real
    // corruption: refusing here beats silently breaking every future
    // restart.
    if (recovery_.records_redone != 0) return st;
    PRODB_RETURN_IF_ERROR(
        Relation::CreatePaged(DirectorySchema(), pool_.get(), &directory_));
    if (directory_->head_page_id() != kDirectoryHeadPageId) {
      return Status::Corruption(
          "directory unreadable at page " +
          std::to_string(kDirectoryHeadPageId) +
          " and the page cannot be re-claimed; recreate the database");
    }
    return wal_->Flush();
  }
  Status scan = directory_->Scan([&](TupleId, const Tuple& t) {
    if (t.arity() != 3 || !t[0].is_symbol() || !t[1].is_int() ||
        !t[2].is_symbol()) {
      return Status::Corruption("malformed directory row");
    }
    DirectoryEntry e;
    e.head_page = static_cast<uint32_t>(t[1].as_int());
    e.signature = t[2].as_symbol();
    directory_entries_[t[0].as_symbol()] = std::move(e);
    return Status::OK();
  });
  return scan;
}

Status Catalog::CreateRelation(const Schema& schema, Relation** out) {
  std::lock_guard<std::mutex> lock(mu_);
  return CreateRelationLocked(schema, options_.default_storage, out);
}

Status Catalog::CreateRelation(const Schema& schema, StorageKind kind,
                               Relation** out) {
  std::lock_guard<std::mutex> lock(mu_);
  return CreateRelationLocked(schema, kind, out);
}

Status Catalog::CreateRelationLocked(const Schema& schema, StorageKind kind,
                                     Relation** out) {
  if (relations_.count(schema.name())) {
    return Status::AlreadyExists("relation " + schema.name());
  }
  std::unique_ptr<Relation> rel;
  if (kind == StorageKind::kPaged) {
    PRODB_RETURN_IF_ERROR(EnsurePool());
    PRODB_RETURN_IF_ERROR(Relation::CreatePaged(schema, pool_.get(), &rel));
  } else {
    rel = std::make_unique<Relation>(schema);
  }
  *out = rel.get();
  relations_.emplace(schema.name(), std::move(rel));
  return Status::OK();
}

Status Catalog::CreateDurableRelation(const Schema& schema, Relation** out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.durable_directory) {
    return CreateRelationLocked(schema, options_.default_storage, out);
  }
  if (!options_.enable_wal) {
    return Status::InvalidArgument(
        "durable_directory requires enable_wal");
  }
  if (relations_.count(schema.name())) {
    return Status::AlreadyExists("relation " + schema.name());
  }
  PRODB_RETURN_IF_ERROR(EnsurePool());
  auto it = directory_entries_.find(schema.name());
  if (it != directory_entries_.end()) {
    // Reopened database: the heap file survived, adopt it — after
    // checking the caller still means the same relation.
    if (it->second.signature != SchemaSignature(schema)) {
      return Status::InvalidArgument(
          "schema drift across restart for " + schema.name() +
          ": stored " + it->second.signature + ", declared " +
          SchemaSignature(schema));
    }
    std::unique_ptr<Relation> rel;
    PRODB_RETURN_IF_ERROR(Relation::OpenPaged(schema, pool_.get(),
                                              it->second.head_page, &rel));
    *out = rel.get();
    relations_.emplace(schema.name(), std::move(rel));
    return Status::OK();
  }
  std::unique_ptr<Relation> rel;
  PRODB_RETURN_IF_ERROR(Relation::CreatePaged(schema, pool_.get(), &rel));
  // Record it in the directory. The row rides the WAL as an auto-commit
  // record; the first durable ack (or ForceDurable) hardens it together
  // with the relation's page formats.
  TupleId row_id;
  PRODB_RETURN_IF_ERROR(directory_->Insert(
      Tuple{Value(schema.name()),
            Value(static_cast<int64_t>(rel->head_page_id())),
            Value(SchemaSignature(schema))},
      &row_id));
  directory_entries_[schema.name()] =
      DirectoryEntry{rel->head_page_id(), SchemaSignature(schema)};
  *out = rel.get();
  relations_.emplace(schema.name(), std::move(rel));
  return Status::OK();
}

std::vector<std::string> Catalog::DurableClasses() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(directory_entries_.size());
  for (const auto& [name, entry] : directory_entries_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status Catalog::AdoptPaged(const Schema& schema, uint32_t head_page_id,
                           Relation** out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (relations_.count(schema.name())) {
    return Status::AlreadyExists("relation " + schema.name());
  }
  PRODB_RETURN_IF_ERROR(EnsurePool());
  std::unique_ptr<Relation> rel;
  PRODB_RETURN_IF_ERROR(
      Relation::OpenPaged(schema, pool_.get(), head_page_id, &rel));
  *out = rel.get();
  relations_.emplace(schema.name(), std::move(rel));
  return Status::OK();
}

Relation* Catalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Status Catalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (relations_.erase(name) == 0) {
    return Status::NotFound("relation " + name);
  }
  return Status::OK();
}

std::vector<std::string> Catalog::RelationNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

size_t Catalog::RelationCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return relations_.size();
}

size_t Catalog::FootprintBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, rel] : relations_) {
    total += rel->FootprintBytes();
  }
  return total;
}

BufferPool* Catalog::buffer_pool() {
  std::lock_guard<std::mutex> lock(mu_);
  // A pool-creation failure surfaces as nullptr here; callers that need
  // the error itself go through Recover().
  Status st = EnsurePool();
  if (!st.ok()) return nullptr;
  return pool_.get();
}

LogManager* Catalog::wal() {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.get();
}

Status Catalog::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  PRODB_RETURN_IF_ERROR(EnsurePool());
  if (wal_ == nullptr) {
    return Status::NotSupported("checkpoint requires enable_wal");
  }
  // Two-checkpoint rule: pages dirtied before the *previous* checkpoint
  // are written back first, so this checkpoint's redo point lands at or
  // past it and the live log stays bounded even when hot pages never
  // leave the pool. The checkpoint stays fuzzy: the engine keeps
  // running, and anything dirtied after the sample lands above the
  // recorded redo point by construction.
  PRODB_RETURN_IF_ERROR(
      pool_->FlushPagesDirtyBefore(wal_->checkpoint_lsn()));
  return wal_->Checkpoint(pool_->MinDirtyRecLsn());
}

DurabilityStats Catalog::GetDurabilityStats() {
  std::lock_guard<std::mutex> lock(mu_);
  DurabilityStats out;
  if (wal_ != nullptr) {
    const LogManagerStats& ws = wal_->stats();
    out.wal_records_appended = ws.records_appended;
    out.wal_bytes_appended = ws.bytes_appended;
    out.wal_flushes = ws.flushes;
    out.wal_pages_written = ws.pages_written;
    out.wal_live_pages = wal_->live_log_pages();
    out.checkpoints_taken = ws.checkpoints_taken;
    out.log_pages_recycled = ws.pages_recycled;
  }
  if (pool_ != nullptr) {
    const BufferPoolStats& ps = pool_->stats();
    out.pages_stolen = ps.pages_stolen;
    out.log_forces = ps.log_forces;
    out.disk_pages_reused = pool_->disk()->pages_reused();
  }
  out.durable_forces = durable_forces_;
  return out;
}

Status Catalog::ForceDurable(Lsn* durable_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_lsn != nullptr) *durable_lsn = 0;
  if (wal_ == nullptr) return Status::OK();
  ++durable_forces_;
  PRODB_RETURN_IF_ERROR(wal_->Flush());
  if (durable_lsn != nullptr) *durable_lsn = wal_->flushed_lsn();
  return Status::OK();
}

uint64_t Catalog::recovered_max_txn_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovery_.max_txn_id;
}

Status Catalog::Recover(RecoveryResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  PRODB_RETURN_IF_ERROR(EnsurePool());
  *out = recovery_;
  return Status::OK();
}

}  // namespace prodb
