#include "db/catalog.h"

#include "storage/disk_manager.h"

namespace prodb {

Catalog::Catalog(CatalogOptions options) : options_(std::move(options)) {}

Status Catalog::EnsurePool() {
  if (pool_ != nullptr) return Status::OK();
  if (options_.disk != nullptr) {
    pool_ = std::make_unique<BufferPool>(options_.buffer_pool_frames,
                                         options_.disk);
  } else {
    std::unique_ptr<DiskManager> disk;
    if (!options_.db_path.empty()) {
      std::unique_ptr<FileDiskManager> fdm;
      PRODB_RETURN_IF_ERROR(FileDiskManager::Open(
          options_.db_path, /*truncate=*/!options_.open_existing, &fdm));
      disk = std::move(fdm);
    } else {
      disk = std::make_unique<MemoryDiskManager>();
    }
    pool_ = std::make_unique<BufferPool>(options_.buffer_pool_frames,
                                         std::move(disk));
  }
  if (options_.enable_wal) {
    LogManagerOptions lopts;
    lopts.auto_flush = options_.wal_auto_flush;
    DiskManager* disk = pool_->disk();
    if (disk->PageCount() == 0) {
      // Fresh database: the log head claims the first page.
      PRODB_RETURN_IF_ERROR(LogManager::Create(disk, lopts, &wal_));
    } else {
      // Restart over an existing image (clean shutdown or crash): redo
      // history from the last checkpoint, roll back losers, truncate the
      // torn tail, resume appends past the recovery-written CLRs.
      PRODB_RETURN_IF_ERROR(RecoverLog(pool_.get(), &recovery_));
      PRODB_RETURN_IF_ERROR(LogManager::Resume(disk, lopts,
                                               recovery_.log_pages,
                                               recovery_.log_base,
                                               recovery_.log_end, &wal_));
    }
    pool_->SetWal(wal_.get());
  }
  return Status::OK();
}

Status Catalog::CreateRelation(const Schema& schema, Relation** out) {
  return CreateRelation(schema, options_.default_storage, out);
}

Status Catalog::CreateRelation(const Schema& schema, StorageKind kind,
                               Relation** out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (relations_.count(schema.name())) {
    return Status::AlreadyExists("relation " + schema.name());
  }
  std::unique_ptr<Relation> rel;
  if (kind == StorageKind::kPaged) {
    PRODB_RETURN_IF_ERROR(EnsurePool());
    PRODB_RETURN_IF_ERROR(Relation::CreatePaged(schema, pool_.get(), &rel));
  } else {
    rel = std::make_unique<Relation>(schema);
  }
  *out = rel.get();
  relations_.emplace(schema.name(), std::move(rel));
  return Status::OK();
}

Status Catalog::AdoptPaged(const Schema& schema, uint32_t head_page_id,
                           Relation** out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (relations_.count(schema.name())) {
    return Status::AlreadyExists("relation " + schema.name());
  }
  PRODB_RETURN_IF_ERROR(EnsurePool());
  std::unique_ptr<Relation> rel;
  PRODB_RETURN_IF_ERROR(
      Relation::OpenPaged(schema, pool_.get(), head_page_id, &rel));
  *out = rel.get();
  relations_.emplace(schema.name(), std::move(rel));
  return Status::OK();
}

Relation* Catalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Status Catalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (relations_.erase(name) == 0) {
    return Status::NotFound("relation " + name);
  }
  return Status::OK();
}

std::vector<std::string> Catalog::RelationNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

size_t Catalog::RelationCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return relations_.size();
}

size_t Catalog::FootprintBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, rel] : relations_) {
    total += rel->FootprintBytes();
  }
  return total;
}

BufferPool* Catalog::buffer_pool() {
  std::lock_guard<std::mutex> lock(mu_);
  // A pool-creation failure surfaces as nullptr here; callers that need
  // the error itself go through Recover().
  Status st = EnsurePool();
  if (!st.ok()) return nullptr;
  return pool_.get();
}

LogManager* Catalog::wal() {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.get();
}

Status Catalog::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  PRODB_RETURN_IF_ERROR(EnsurePool());
  if (wal_ == nullptr) {
    return Status::NotSupported("checkpoint requires enable_wal");
  }
  // Two-checkpoint rule: pages dirtied before the *previous* checkpoint
  // are written back first, so this checkpoint's redo point lands at or
  // past it and the live log stays bounded even when hot pages never
  // leave the pool. The checkpoint stays fuzzy: the engine keeps
  // running, and anything dirtied after the sample lands above the
  // recorded redo point by construction.
  PRODB_RETURN_IF_ERROR(
      pool_->FlushPagesDirtyBefore(wal_->checkpoint_lsn()));
  return wal_->Checkpoint(pool_->MinDirtyRecLsn());
}

DurabilityStats Catalog::GetDurabilityStats() {
  std::lock_guard<std::mutex> lock(mu_);
  DurabilityStats out;
  if (wal_ != nullptr) {
    const LogManagerStats& ws = wal_->stats();
    out.wal_records_appended = ws.records_appended;
    out.wal_bytes_appended = ws.bytes_appended;
    out.wal_flushes = ws.flushes;
    out.wal_pages_written = ws.pages_written;
    out.wal_live_pages = wal_->live_log_pages();
    out.checkpoints_taken = ws.checkpoints_taken;
    out.log_pages_recycled = ws.pages_recycled;
  }
  if (pool_ != nullptr) {
    const BufferPoolStats& ps = pool_->stats();
    out.pages_stolen = ps.pages_stolen;
    out.log_forces = ps.log_forces;
    out.disk_pages_reused = pool_->disk()->pages_reused();
  }
  return out;
}

uint64_t Catalog::recovered_max_txn_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovery_.max_txn_id;
}

Status Catalog::Recover(RecoveryResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  PRODB_RETURN_IF_ERROR(EnsurePool());
  *out = recovery_;
  return Status::OK();
}

}  // namespace prodb
