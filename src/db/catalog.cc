#include "db/catalog.h"

#include "storage/disk_manager.h"

namespace prodb {

Catalog::Catalog(CatalogOptions options) : options_(std::move(options)) {}

Status Catalog::EnsurePool() {
  if (pool_ != nullptr) return Status::OK();
  if (options_.disk != nullptr) {
    pool_ = std::make_unique<BufferPool>(options_.buffer_pool_frames,
                                         options_.disk);
    return Status::OK();
  }
  std::unique_ptr<DiskManager> disk;
  if (!options_.db_path.empty()) {
    std::unique_ptr<FileDiskManager> fdm;
    PRODB_RETURN_IF_ERROR(
        FileDiskManager::Open(options_.db_path, /*truncate=*/true, &fdm));
    disk = std::move(fdm);
  } else {
    disk = std::make_unique<MemoryDiskManager>();
  }
  pool_ = std::make_unique<BufferPool>(options_.buffer_pool_frames,
                                       std::move(disk));
  return Status::OK();
}

Status Catalog::CreateRelation(const Schema& schema, Relation** out) {
  return CreateRelation(schema, options_.default_storage, out);
}

Status Catalog::CreateRelation(const Schema& schema, StorageKind kind,
                               Relation** out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (relations_.count(schema.name())) {
    return Status::AlreadyExists("relation " + schema.name());
  }
  std::unique_ptr<Relation> rel;
  if (kind == StorageKind::kPaged) {
    PRODB_RETURN_IF_ERROR(EnsurePool());
    PRODB_RETURN_IF_ERROR(Relation::CreatePaged(schema, pool_.get(), &rel));
  } else {
    rel = std::make_unique<Relation>(schema);
  }
  *out = rel.get();
  relations_.emplace(schema.name(), std::move(rel));
  return Status::OK();
}

Relation* Catalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Status Catalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (relations_.erase(name) == 0) {
    return Status::NotFound("relation " + name);
  }
  return Status::OK();
}

std::vector<std::string> Catalog::RelationNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

size_t Catalog::RelationCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return relations_.size();
}

size_t Catalog::FootprintBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, rel] : relations_) {
    total += rel->FootprintBytes();
  }
  return total;
}

BufferPool* Catalog::buffer_pool() {
  std::lock_guard<std::mutex> lock(mu_);
  EnsurePool();
  return pool_.get();
}

}  // namespace prodb
