#ifndef PRODB_DB_RELATION_H_
#define PRODB_DB_RELATION_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"
#include "db/predicate.h"
#include "index/bplus_tree.h"
#include "index/hash_index.h"
#include "storage/heap_file.h"

namespace prodb {

/// Storage backend of a relation.
enum class StorageKind {
  kMemory,  // std::map keyed by TupleId; fastest, volatile
  kPaged,   // slotted pages behind the buffer pool ("secondary storage")
};

/// A named relation: schema + tuple store + optional secondary indexes.
///
/// Relations back both working-memory classes (WM relations, §3.2) and the
/// bookkeeping structures of the matchers (COND, RULE-DEF, LEFT/RIGHT).
/// Secondary indexes are memory-resident and maintained synchronously on
/// every mutation. All operations are thread-safe; tuple-level isolation
/// across transactions is the lock manager's job, not the relation's.
class Relation {
 public:
  /// Memory-backed relation.
  explicit Relation(Schema schema);

  /// Paged relation over `pool`.
  static Status CreatePaged(Schema schema, BufferPool* pool,
                            std::unique_ptr<Relation>* out);

  /// Paged relation over an existing heap file rooted at `head_page_id`
  /// (restart: reattach to pages that survived recovery). Indexes are
  /// memory-resident, so any needed index must be re-created after open.
  static Status OpenPaged(Schema schema, BufferPool* pool,
                          uint32_t head_page_id,
                          std::unique_ptr<Relation>* out);

  /// First page of the paged backend (kNoPage sentinel for kMemory); the
  /// durable name a relation can be reopened by after restart.
  uint32_t head_page_id() const;

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  StorageKind storage_kind() const { return kind_; }

  Status Insert(const Tuple& tuple, TupleId* id);
  Status Get(TupleId id, Tuple* out) const;
  Status Delete(TupleId id);
  /// Re-inserts a previously deleted tuple under its original id.
  /// Deadlock compensation needs this: maintenance is deferred to the
  /// commit point, so matcher state recorded before the aborted
  /// transaction still references the old id — restoring by value alone
  /// would leave those references permanently stale. Fails with
  /// AlreadyExists if the id is live.
  Status Restore(TupleId id, const Tuple& tuple);
  /// Update keeps or changes the TupleId depending on the backend; the
  /// resulting id is returned via *new_id.
  Status Update(TupleId id, const Tuple& tuple, TupleId* new_id);

  size_t Count() const;
  /// Live tuples (== Count; named for symmetry with dead_slot_count).
  size_t live_tuple_count() const { return Count(); }
  /// Tombstoned heap-file slots that can never be reused (0 for kMemory,
  /// whose backing map erases rows outright). Page space leaks at 4
  /// directory bytes per deleted tuple — the price of TupleId stability;
  /// surfaced by bench_space.
  size_t dead_slot_count() const;

  /// Full scan. `fn` returning non-OK aborts and propagates.
  Status Scan(const std::function<Status(TupleId, const Tuple&)>& fn) const;

  /// Tuples satisfying `sel` (uses an index for a leading equality test
  /// when one exists on that attribute).
  Status Select(const Selection& sel,
                std::vector<std::pair<TupleId, Tuple>>* out) const;

  /// ids with tuple[attr] == value, via hash index if present, B+-tree if
  /// present, else scan.
  Status LookupEq(int attr, const Value& value,
                  std::vector<TupleId>* out) const;

  /// --- Index management ------------------------------------------------
  Status CreateHashIndex(int attr);
  Status CreateBTreeIndex(int attr);
  bool HasHashIndex(int attr) const;
  bool HasBTreeIndex(int attr) const;
  BPlusTree* btree_index(int attr);

  /// Approximate total memory/disk footprint of tuples (space benchmarks).
  size_t FootprintBytes() const;

 private:
  Relation(Schema schema, StorageKind kind)
      : schema_(std::move(schema)), kind_(kind) {}

  Status InsertUnlocked(const Tuple& tuple, TupleId* id);
  Status DeleteUnlocked(TupleId id);
  void IndexInsert(const Tuple& t, TupleId id);
  void IndexRemove(const Tuple& t, TupleId id);

  Schema schema_;
  StorageKind kind_;

  mutable std::recursive_mutex mu_;

  // kMemory backend.
  std::map<TupleId, Tuple> rows_;
  uint32_t next_row_ = 0;
  size_t mem_bytes_ = 0;

  // kPaged backend.
  std::unique_ptr<HeapFile> heap_;

  // attr -> index.
  std::map<int, std::unique_ptr<HashIndex>> hash_indexes_;
  std::map<int, std::unique_ptr<BPlusTree>> btree_indexes_;
};

}  // namespace prodb

#endif  // PRODB_DB_RELATION_H_
