#ifndef PRODB_DB_CATALOG_H_
#define PRODB_DB_CATALOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/relation.h"
#include "storage/buffer_pool.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace prodb {

/// Options controlling how a Catalog stores its relations.
struct CatalogOptions {
  /// Default backend for new relations. Paged relations require a buffer
  /// pool, which the catalog creates lazily over a MemoryDiskManager (or
  /// a FileDiskManager when `db_path` is set).
  StorageKind default_storage = StorageKind::kMemory;
  /// Buffer pool capacity in frames (only used for paged storage).
  size_t buffer_pool_frames = 256;
  /// When non-empty, paged relations persist to this file.
  std::string db_path;
  /// Open `db_path` without truncating (reopen / restart). Ignored when
  /// `db_path` is empty.
  bool open_existing = false;
  /// When set, the buffer pool runs over this externally owned manager
  /// instead of creating one (takes precedence over db_path). The fault
  /// sweep uses this to put a whole catalog behind an injecting disk.
  DiskManager* disk = nullptr;
  /// Write-ahead logging for the paged store. On an empty disk a fresh
  /// log is created (its head takes the first page); on a non-empty disk
  /// restart recovery runs first — scan the log, redo committed work,
  /// truncate the torn tail — and the log resumes where the intact
  /// prefix ended.
  bool enable_wal = false;
  /// Flush the log after every append instead of waiting for commits
  /// (the crash sweep's knob: every record boundary becomes a disk-write
  /// boundary).
  bool wal_auto_flush = false;
};

/// Durability counters rolled up across the WAL, buffer pool and disk
/// manager (zeros for components that are absent or not yet created).
struct DurabilityStats {
  uint64_t wal_records_appended = 0;
  uint64_t wal_bytes_appended = 0;
  uint64_t wal_flushes = 0;
  uint64_t wal_pages_written = 0;
  uint64_t wal_live_pages = 0;      // current on-disk log footprint
  uint64_t checkpoints_taken = 0;
  uint64_t log_pages_recycled = 0;  // log pages returned for reuse
  uint64_t pages_stolen = 0;        // in-flight txn pages written back
  uint64_t log_forces = 0;          // WAL-rule flushes forced by writeback
  uint64_t disk_pages_reused = 0;   // allocations served from the free list
};

/// Name -> Relation registry; the database.
///
/// Working-memory classes (declared with `literalize`), the matchers'
/// COND / RULE-DEF relations and the DBMS-Rete LEFT/RIGHT memories all
/// live here, which is precisely the paper's point: every piece of the
/// production system is an ordinary relation the DBMS can manage.
class Catalog {
 public:
  explicit Catalog(CatalogOptions options = {});

  /// Creates a relation with the default storage kind.
  Status CreateRelation(const Schema& schema, Relation** out);
  /// Creates a relation with an explicit storage kind.
  Status CreateRelation(const Schema& schema, StorageKind kind,
                        Relation** out);

  /// Registers a paged relation over an existing heap file (restart after
  /// recovery: heap pages survived, the registry did not). Secondary
  /// indexes are memory-resident and must be re-created by the caller.
  Status AdoptPaged(const Schema& schema, uint32_t head_page_id,
                    Relation** out);

  /// nullptr when absent.
  Relation* Get(const std::string& name) const;

  Status Drop(const std::string& name);

  std::vector<std::string> RelationNames() const;
  size_t RelationCount() const;

  /// Total footprint across relations (space benchmarks, E4).
  size_t FootprintBytes() const;

  BufferPool* buffer_pool();

  /// The write-ahead log, or nullptr when WAL is disabled (or the pool
  /// has not been created yet).
  LogManager* wal();

  /// Fuzzy checkpoint + log truncation: records the active-transaction
  /// table and the buffer pool's dirty-page low-water LSN in the log,
  /// forces it, and recycles log pages wholly behind the low-water mark
  /// into the allocator's free list — all without quiescing the engine.
  /// Restart recovery then scans from the checkpoint's redo point
  /// instead of log genesis. NotSupported when WAL is disabled.
  Status Checkpoint();

  /// Snapshot of the durability counters.
  DurabilityStats GetDurabilityStats();

  /// Forces pool (and, with enable_wal on a non-empty disk, restart
  /// recovery) to run now, and reports what recovery did. On a fresh
  /// disk *out is all-zero. Recovery otherwise happens implicitly the
  /// first time the pool is needed.
  Status Recover(RecoveryResult* out);

  /// Highest transaction id restart recovery saw in the log (0 when WAL
  /// is off, the disk was fresh, or recovery has not run yet). TxnManager
  /// allocates above this so recovered commit records never alias new
  /// transactions.
  uint64_t recovered_max_txn_id() const;

 private:
  Status EnsurePool();

  CatalogOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Relation>> relations_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LogManager> wal_;
  RecoveryResult recovery_;
};

}  // namespace prodb

#endif  // PRODB_DB_CATALOG_H_
