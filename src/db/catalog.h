#ifndef PRODB_DB_CATALOG_H_
#define PRODB_DB_CATALOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/relation.h"
#include "storage/buffer_pool.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace prodb {

/// Options controlling how a Catalog stores its relations.
struct CatalogOptions {
  /// Default backend for new relations. Paged relations require a buffer
  /// pool, which the catalog creates lazily over a MemoryDiskManager (or
  /// a FileDiskManager when `db_path` is set).
  StorageKind default_storage = StorageKind::kMemory;
  /// Buffer pool capacity in frames (only used for paged storage).
  size_t buffer_pool_frames = 256;
  /// When non-empty, paged relations persist to this file.
  std::string db_path;
  /// Open `db_path` without truncating (reopen / restart). Ignored when
  /// `db_path` is empty.
  bool open_existing = false;
  /// When set, the buffer pool runs over this externally owned manager
  /// instead of creating one (takes precedence over db_path). The fault
  /// sweep uses this to put a whole catalog behind an injecting disk.
  DiskManager* disk = nullptr;
  /// Write-ahead logging for the paged store. On an empty disk a fresh
  /// log is created (its head takes the first page); on a non-empty disk
  /// restart recovery runs first — scan the log, redo committed work,
  /// truncate the torn tail — and the log resumes where the intact
  /// prefix ended.
  bool enable_wal = false;
  /// Flush the log after every append instead of waiting for commits
  /// (the crash sweep's knob: every record boundary becomes a disk-write
  /// boundary).
  bool wal_auto_flush = false;
  /// Maintain a durable class directory: a hidden paged relation mapping
  /// relation name -> heap-file head page + schema signature, created at
  /// a fixed page right after the log head so a restarted process can
  /// find it without out-of-band metadata. Relations registered through
  /// CreateDurableRelation() are recorded in it, and on reopen the same
  /// call re-adopts the surviving heap file instead of creating a fresh
  /// one. Requires enable_wal (the directory is only trustworthy when
  /// the WAL makes its entries recoverable).
  bool durable_directory = false;
};

/// Durability counters rolled up across the WAL, buffer pool and disk
/// manager (zeros for components that are absent or not yet created).
struct DurabilityStats {
  uint64_t wal_records_appended = 0;
  uint64_t wal_bytes_appended = 0;
  uint64_t wal_flushes = 0;
  uint64_t wal_pages_written = 0;
  uint64_t wal_live_pages = 0;      // current on-disk log footprint
  uint64_t checkpoints_taken = 0;
  uint64_t log_pages_recycled = 0;  // log pages returned for reuse
  uint64_t pages_stolen = 0;        // in-flight txn pages written back
  uint64_t log_forces = 0;          // WAL-rule flushes forced by writeback
  uint64_t disk_pages_reused = 0;   // allocations served from the free list
  uint64_t durable_forces = 0;      // ForceDurable calls that hit the WAL
};

/// The durable class directory's fixed home. A WAL-enabled catalog
/// allocates the anchor page (0) and the first log-chain page (1) before
/// anything else, so the directory's heap file deterministically roots at
/// page 2 — the one page id a restarted process can assume.
inline constexpr uint32_t kDirectoryHeadPageId = 2;

/// Name -> Relation registry; the database.
///
/// Working-memory classes (declared with `literalize`), the matchers'
/// COND / RULE-DEF relations and the DBMS-Rete LEFT/RIGHT memories all
/// live here, which is precisely the paper's point: every piece of the
/// production system is an ordinary relation the DBMS can manage.
class Catalog {
 public:
  explicit Catalog(CatalogOptions options = {});

  /// Creates a relation with the default storage kind.
  Status CreateRelation(const Schema& schema, Relation** out);
  /// Creates a relation with an explicit storage kind.
  Status CreateRelation(const Schema& schema, StorageKind kind,
                        Relation** out);

  /// Creates a relation that survives restart by name. Without
  /// `durable_directory` this is exactly CreateRelation (default
  /// storage). With it, the relation is paged and registered in the
  /// directory; when the directory already has the name (a reopened
  /// database), the surviving heap file is adopted instead — after the
  /// stored schema signature is checked against `schema` (mismatch is
  /// InvalidArgument: schema drift across restart is an error, not a
  /// silent reinterpretation). Working-memory classes go through here;
  /// matcher bookkeeping (token memories, COND relations) must NOT —
  /// matchers rebuild that state from scratch after restart.
  Status CreateDurableRelation(const Schema& schema, Relation** out);

  /// Names recorded in the durable directory, sorted (empty when the
  /// directory is disabled or nothing durable was created). After
  /// restart this is the list of WM classes that can be re-adopted.
  std::vector<std::string> DurableClasses();

  /// Registers a paged relation over an existing heap file (restart after
  /// recovery: heap pages survived, the registry did not). Secondary
  /// indexes are memory-resident and must be re-created by the caller.
  Status AdoptPaged(const Schema& schema, uint32_t head_page_id,
                    Relation** out);

  /// nullptr when absent.
  Relation* Get(const std::string& name) const;

  Status Drop(const std::string& name);

  std::vector<std::string> RelationNames() const;
  size_t RelationCount() const;

  /// Total footprint across relations (space benchmarks, E4).
  size_t FootprintBytes() const;

  BufferPool* buffer_pool();

  /// The write-ahead log, or nullptr when WAL is disabled (or the pool
  /// has not been created yet).
  LogManager* wal();

  /// Fuzzy checkpoint + log truncation: records the active-transaction
  /// table and the buffer pool's dirty-page low-water LSN in the log,
  /// forces it, and recycles log pages wholly behind the low-water mark
  /// into the allocator's free list — all without quiescing the engine.
  /// Restart recovery then scans from the checkpoint's redo point
  /// instead of log genesis. NotSupported when WAL is disabled.
  Status Checkpoint();

  /// Snapshot of the durability counters.
  DurabilityStats GetDurabilityStats();

  /// The durable-ack hook: forces every buffered WAL byte to disk and
  /// (optionally) reports the durable LSN. After an OK return, all state
  /// whose log records were appended before the call — auto-commit WM
  /// mutations, matcher bookkeeping, directory entries — survives a
  /// crash. Group commit applies: one force covers every record buffered
  /// by concurrently acking sessions since the last one. No-op (LSN 0)
  /// when WAL is disabled or the pool does not exist yet.
  Status ForceDurable(Lsn* durable_lsn = nullptr);

  /// Forces pool (and, with enable_wal on a non-empty disk, restart
  /// recovery) to run now, and reports what recovery did. On a fresh
  /// disk *out is all-zero. Recovery otherwise happens implicitly the
  /// first time the pool is needed.
  Status Recover(RecoveryResult* out);

  /// Highest transaction id restart recovery saw in the log (0 when WAL
  /// is off, the disk was fresh, or recovery has not run yet). TxnManager
  /// allocates above this so recovered commit records never alias new
  /// transactions.
  uint64_t recovered_max_txn_id() const;

 private:
  Status EnsurePool();
  Status CreateRelationLocked(const Schema& schema, StorageKind kind,
                              Relation** out);
  /// Creates (fresh disk) or reopens (restart) the directory relation;
  /// loads surviving entries into directory_entries_. Called from
  /// EnsurePool with mu_ held.
  Status OpenDirectoryLocked(bool fresh_log);

  struct DirectoryEntry {
    uint32_t head_page = 0;
    std::string signature;  // "name:T,name:T,..." (T = ValueType digit)
  };

  CatalogOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Relation>> relations_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LogManager> wal_;
  RecoveryResult recovery_;
  // The durable class directory (hidden: not in relations_, so it never
  // appears in RelationNames/FootprintBytes).
  std::unique_ptr<Relation> directory_;
  std::unordered_map<std::string, DirectoryEntry> directory_entries_;
  uint64_t durable_forces_ = 0;
};

}  // namespace prodb

#endif  // PRODB_DB_CATALOG_H_
