#ifndef PRODB_DB_CATALOG_H_
#define PRODB_DB_CATALOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/relation.h"
#include "storage/buffer_pool.h"

namespace prodb {

/// Options controlling how a Catalog stores its relations.
struct CatalogOptions {
  /// Default backend for new relations. Paged relations require a buffer
  /// pool, which the catalog creates lazily over a MemoryDiskManager (or
  /// a FileDiskManager when `db_path` is set).
  StorageKind default_storage = StorageKind::kMemory;
  /// Buffer pool capacity in frames (only used for paged storage).
  size_t buffer_pool_frames = 256;
  /// When non-empty, paged relations persist to this file.
  std::string db_path;
  /// When set, the buffer pool runs over this externally owned manager
  /// instead of creating one (takes precedence over db_path). The fault
  /// sweep uses this to put a whole catalog behind an injecting disk.
  DiskManager* disk = nullptr;
};

/// Name -> Relation registry; the database.
///
/// Working-memory classes (declared with `literalize`), the matchers'
/// COND / RULE-DEF relations and the DBMS-Rete LEFT/RIGHT memories all
/// live here, which is precisely the paper's point: every piece of the
/// production system is an ordinary relation the DBMS can manage.
class Catalog {
 public:
  explicit Catalog(CatalogOptions options = {});

  /// Creates a relation with the default storage kind.
  Status CreateRelation(const Schema& schema, Relation** out);
  /// Creates a relation with an explicit storage kind.
  Status CreateRelation(const Schema& schema, StorageKind kind,
                        Relation** out);

  /// nullptr when absent.
  Relation* Get(const std::string& name) const;

  Status Drop(const std::string& name);

  std::vector<std::string> RelationNames() const;
  size_t RelationCount() const;

  /// Total footprint across relations (space benchmarks, E4).
  size_t FootprintBytes() const;

  BufferPool* buffer_pool();

 private:
  Status EnsurePool();

  CatalogOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Relation>> relations_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace prodb

#endif  // PRODB_DB_CATALOG_H_
