#include "db/relation.h"

namespace prodb {

Relation::Relation(Schema schema)
    : schema_(std::move(schema)), kind_(StorageKind::kMemory) {}

Status Relation::CreatePaged(Schema schema, BufferPool* pool,
                             std::unique_ptr<Relation>* out) {
  auto rel = std::unique_ptr<Relation>(
      new Relation(std::move(schema), StorageKind::kPaged));
  PRODB_RETURN_IF_ERROR(HeapFile::Create(pool, &rel->heap_));
  *out = std::move(rel);
  return Status::OK();
}

Status Relation::OpenPaged(Schema schema, BufferPool* pool,
                           uint32_t head_page_id,
                           std::unique_ptr<Relation>* out) {
  auto rel = std::unique_ptr<Relation>(
      new Relation(std::move(schema), StorageKind::kPaged));
  PRODB_RETURN_IF_ERROR(HeapFile::Open(pool, head_page_id, &rel->heap_));
  *out = std::move(rel);
  return Status::OK();
}

uint32_t Relation::head_page_id() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return heap_ != nullptr ? heap_->head_page_id() : UINT32_MAX;
}

void Relation::IndexInsert(const Tuple& t, TupleId id) {
  for (auto& [attr, idx] : hash_indexes_) {
    idx->Insert(t[static_cast<size_t>(attr)], id);
  }
  for (auto& [attr, idx] : btree_indexes_) {
    idx->Insert(t[static_cast<size_t>(attr)], id);
  }
}

void Relation::IndexRemove(const Tuple& t, TupleId id) {
  for (auto& [attr, idx] : hash_indexes_) {
    idx->Remove(t[static_cast<size_t>(attr)], id);
  }
  for (auto& [attr, idx] : btree_indexes_) {
    idx->Remove(t[static_cast<size_t>(attr)], id);
  }
}

Status Relation::InsertUnlocked(const Tuple& tuple, TupleId* id) {
  if (tuple.arity() != schema_.arity()) {
    return Status::InvalidArgument(
        name() + ": arity mismatch, got " + std::to_string(tuple.arity()) +
        " want " + std::to_string(schema_.arity()));
  }
  if (kind_ == StorageKind::kMemory) {
    id->page_id = next_row_++;
    id->slot_id = 0;
    // Measure the stored copy, not the argument: FootprintBytes is
    // capacity-dependent and Delete subtracts the stored copy's value —
    // measuring the argument lets mem_bytes_ drift under churn.
    auto it = rows_.emplace(*id, tuple).first;
    mem_bytes_ += it->second.FootprintBytes();
  } else {
    PRODB_RETURN_IF_ERROR(heap_->Insert(tuple, id));
  }
  IndexInsert(tuple, *id);
  return Status::OK();
}

Status Relation::Insert(const Tuple& tuple, TupleId* id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return InsertUnlocked(tuple, id);
}

Status Relation::Get(TupleId id, Tuple* out) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (kind_ == StorageKind::kMemory) {
    auto it = rows_.find(id);
    if (it == rows_.end()) return Status::NotFound("tuple " + id.ToString());
    *out = it->second;
    return Status::OK();
  }
  return heap_->Get(id, out);
}

Status Relation::DeleteUnlocked(TupleId id) {
  Tuple old;
  if (kind_ == StorageKind::kMemory) {
    auto it = rows_.find(id);
    if (it == rows_.end()) return Status::NotFound("tuple " + id.ToString());
    old = std::move(it->second);
    mem_bytes_ -= old.FootprintBytes();
    rows_.erase(it);
  } else {
    PRODB_RETURN_IF_ERROR(heap_->Get(id, &old));
    PRODB_RETURN_IF_ERROR(heap_->Delete(id));
  }
  IndexRemove(old, id);
  return Status::OK();
}

Status Relation::Delete(TupleId id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return DeleteUnlocked(id);
}

Status Relation::Restore(TupleId id, const Tuple& tuple) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (tuple.arity() != schema_.arity()) {
    return Status::InvalidArgument(name() + ": arity mismatch on restore");
  }
  if (kind_ == StorageKind::kMemory) {
    auto [it, inserted] = rows_.emplace(id, tuple);
    if (!inserted) return Status::AlreadyExists("tuple " + id.ToString());
    mem_bytes_ += it->second.FootprintBytes();
    if (id.page_id >= next_row_) next_row_ = id.page_id + 1;
  } else {
    PRODB_RETURN_IF_ERROR(heap_->Restore(id, tuple));
  }
  IndexInsert(tuple, id);
  return Status::OK();
}

Status Relation::Update(TupleId id, const Tuple& tuple, TupleId* new_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (tuple.arity() != schema_.arity()) {
    return Status::InvalidArgument(name() + ": arity mismatch on update");
  }
  if (kind_ == StorageKind::kMemory) {
    auto it = rows_.find(id);
    if (it == rows_.end()) return Status::NotFound("tuple " + id.ToString());
    IndexRemove(it->second, id);
    mem_bytes_ -= it->second.FootprintBytes();
    it->second = tuple;
    mem_bytes_ += it->second.FootprintBytes();
    IndexInsert(tuple, id);
    *new_id = id;
    return Status::OK();
  }
  Tuple old;
  PRODB_RETURN_IF_ERROR(heap_->Get(id, &old));
  PRODB_RETURN_IF_ERROR(heap_->Update(id, tuple, new_id));
  IndexRemove(old, id);
  IndexInsert(tuple, *new_id);
  return Status::OK();
}

size_t Relation::Count() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return kind_ == StorageKind::kMemory ? rows_.size() : heap_->TupleCount();
}

size_t Relation::dead_slot_count() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return kind_ == StorageKind::kMemory ? 0 : heap_->dead_slot_count();
}

Status Relation::Scan(
    const std::function<Status(TupleId, const Tuple&)>& fn) const {
  if (kind_ == StorageKind::kMemory) {
    // Copy out under the lock, then invoke callbacks lock-free so they may
    // re-enter the relation.
    std::vector<std::pair<TupleId, Tuple>> snapshot;
    {
      std::lock_guard<std::recursive_mutex> lock(mu_);
      snapshot.reserve(rows_.size());
      for (const auto& [id, t] : rows_) snapshot.emplace_back(id, t);
    }
    for (const auto& [id, t] : snapshot) {
      PRODB_RETURN_IF_ERROR(fn(id, t));
    }
    return Status::OK();
  }
  return heap_->Scan(fn);
}

Status Relation::Select(const Selection& sel,
                        std::vector<std::pair<TupleId, Tuple>>* out) const {
  out->clear();
  // Index fast path: any equality test on an indexed attribute narrows
  // the candidates to a probe.
  for (const ConstantTest& c : sel.tests) {
    if (c.op != CompareOp::kEq) continue;
    std::lock_guard<std::recursive_mutex> lock(mu_);
    auto hit = hash_indexes_.find(c.attr);
    const std::vector<TupleId>* ids = nullptr;
    std::vector<TupleId> btree_ids;
    if (hit != hash_indexes_.end()) {
      ids = hit->second->Lookup(c.constant);
      if (ids == nullptr) return Status::OK();
    } else {
      auto bit = btree_indexes_.find(c.attr);
      if (bit == btree_indexes_.end()) continue;
      btree_ids = bit->second->Lookup(c.constant);
      ids = &btree_ids;
    }
    for (TupleId id : *ids) {
      Tuple t;
      PRODB_RETURN_IF_ERROR(Get(id, &t));
      if (sel.Matches(t)) out->emplace_back(id, std::move(t));
    }
    return Status::OK();
  }
  return Scan([&](TupleId id, const Tuple& t) {
    if (sel.Matches(t)) out->emplace_back(id, t);
    return Status::OK();
  });
}

Status Relation::LookupEq(int attr, const Value& value,
                          std::vector<TupleId>* out) const {
  out->clear();
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    auto hit = hash_indexes_.find(attr);
    if (hit != hash_indexes_.end()) {
      const std::vector<TupleId>* ids = hit->second->Lookup(value);
      if (ids != nullptr) *out = *ids;
      return Status::OK();
    }
    auto bit = btree_indexes_.find(attr);
    if (bit != btree_indexes_.end()) {
      *out = bit->second->Lookup(value);
      return Status::OK();
    }
  }
  return Scan([&](TupleId id, const Tuple& t) {
    if (t[static_cast<size_t>(attr)] == value) out->push_back(id);
    return Status::OK();
  });
}

Status Relation::CreateHashIndex(int attr) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (attr < 0 || attr >= static_cast<int>(schema_.arity())) {
    return Status::InvalidArgument("no attribute " + std::to_string(attr));
  }
  if (hash_indexes_.count(attr)) {
    return Status::AlreadyExists("hash index on attr " + std::to_string(attr));
  }
  auto idx = std::make_unique<HashIndex>();
  PRODB_RETURN_IF_ERROR(Scan([&](TupleId id, const Tuple& t) {
    idx->Insert(t[static_cast<size_t>(attr)], id);
    return Status::OK();
  }));
  hash_indexes_[attr] = std::move(idx);
  return Status::OK();
}

Status Relation::CreateBTreeIndex(int attr) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (attr < 0 || attr >= static_cast<int>(schema_.arity())) {
    return Status::InvalidArgument("no attribute " + std::to_string(attr));
  }
  if (btree_indexes_.count(attr)) {
    return Status::AlreadyExists("btree index on attr " +
                                 std::to_string(attr));
  }
  auto idx = std::make_unique<BPlusTree>();
  PRODB_RETURN_IF_ERROR(Scan([&](TupleId id, const Tuple& t) {
    idx->Insert(t[static_cast<size_t>(attr)], id);
    return Status::OK();
  }));
  btree_indexes_[attr] = std::move(idx);
  return Status::OK();
}

bool Relation::HasHashIndex(int attr) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return hash_indexes_.count(attr) > 0;
}

bool Relation::HasBTreeIndex(int attr) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return btree_indexes_.count(attr) > 0;
}

BPlusTree* Relation::btree_index(int attr) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = btree_indexes_.find(attr);
  return it == btree_indexes_.end() ? nullptr : it->second.get();
}

size_t Relation::FootprintBytes() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (kind_ == StorageKind::kMemory) return mem_bytes_;
  return heap_->PageCount() * kPageSize;
}

}  // namespace prodb
