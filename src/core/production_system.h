#ifndef PRODB_CORE_PRODUCTION_SYSTEM_H_
#define PRODB_CORE_PRODUCTION_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/concurrent_engine.h"
#include "engine/sequential_engine.h"
#include "lang/analyzer.h"
#include "match/matcher.h"
#include "plan/planner.h"
#include "ruleindex/rulebase_query.h"
#include "txn/lock_manager.h"

namespace prodb {

/// Which matching architecture backs the system (see README table).
enum class MatcherKind {
  kRete,         // in-memory Rete network (§3.1)
  kReteDbms,     // Rete with LEFT/RIGHT memories as relations (§3.2)
  kQuery,        // re-evaluation / simplified algorithm (§4.1)
  kPattern,      // matching patterns in COND relations (§4.2)
};

/// Top-level configuration.
struct ProductionSystemOptions {
  MatcherKind matcher = MatcherKind::kPattern;
  /// Storage for WM relations: kPaged places working memory on
  /// "secondary storage" behind the buffer pool, the paper's setting.
  StorageKind wm_storage = StorageKind::kMemory;
  /// Buffer-pool frames and optional database file (paged storage only).
  size_t buffer_pool_frames = 256;
  std::string db_path;
  /// Reopen `db_path` without truncating (restart over a surviving
  /// image). Ignored when `db_path` is empty.
  bool open_existing = false;
  /// Write-ahead logging for the paged store (see CatalogOptions): with
  /// this on, a positively acknowledged/committed mutation survives a
  /// crash, and reopening with `open_existing` runs restart recovery.
  bool enable_wal = false;
  bool wal_auto_flush = false;
  /// Durable class directory (requires enable_wal): WM classes declared
  /// via `literalize`/DeclareClass are recorded by name and re-adopted on
  /// reopen, so a restarted process recovers its working memory by
  /// re-loading the same rules file and calling ReseedMatcher(). The
  /// serving layer's restart story.
  bool durable_directory = false;
  /// Threads for parallel pattern propagation (kPattern only).
  size_t propagation_threads = 0;
  /// Partitioned multi-core match: shard working memory by class (and by
  /// tuple hash within declared hot classes) and run delta propagation
  /// across shards on a thread pool — the Rete sub-networks, the query
  /// matcher's seeded re-evaluations, and WM batch apply all fan out,
  /// merging deterministically (results are byte-identical to serial at
  /// any thread count). Default-constructed = off, the serial path.
  /// kPattern translates the option into propagation_threads (its §4.2.3
  /// per-class fan-out is the paper's own sharding).
  ShardingOptions sharding;
  /// Cost-based join planning from incremental catalog statistics
  /// (kRete/kReteDbms: beta-chain order + drift-triggered rebuilds;
  /// kQuery: seeded-evaluation order + lock-free re-plans). Off keeps
  /// the syntactic textual order — the equivalence baseline.
  PlannerOptions planner;
  /// Conflict-resolution strategy for Run().
  StrategyKind strategy = StrategyKind::kFifo;
  uint64_t seed = 42;
  size_t max_firings = 1u << 20;
  /// Workers for RunConcurrent().
  size_t workers = 4;
  /// Maintain the rule-base query index (RulesForTuple / RulesFor).
  bool enable_rulebase_queries = true;
};

/// The library's front door: one object owning the catalog, matcher,
/// engines, and rule-base query index.
///
///   ProductionSystem ps;
///   ps.LoadString("(literalize E v) (p r (E ^v <x>) --> (remove 1))");
///   ps.Insert("E", Tuple{Value(1)});
///   ps.Run();
class ProductionSystem {
 public:
  explicit ProductionSystem(ProductionSystemOptions options = {});
  ~ProductionSystem();

  /// Parses and installs `literalize` declarations and rules. May be
  /// called repeatedly; classes persist across calls. Rules must be
  /// installed before the WM tuples they should match.
  Status LoadString(const std::string& source);

  /// Declares a class programmatically (alternative to `literalize`).
  Status DeclareClass(const Schema& schema);

  /// Installs an already-compiled rule.
  Status AddRule(const Rule& rule);

  /// --- Working memory ---------------------------------------------------
  Status Insert(const std::string& cls, const Tuple& t,
                TupleId* id = nullptr);
  Status Delete(const std::string& cls, TupleId id);
  Status Modify(const std::string& cls, TupleId id, const Tuple& t,
                TupleId* new_id = nullptr);

  /// --- Execution ---------------------------------------------------------
  /// Serial recognize-act cycle to quiescence (§2.1).
  Status Run(EngineRunResult* result = nullptr);
  /// Fires at most one instantiation.
  Status Step(bool* fired);
  /// Concurrent transactional execution (§5).
  Status RunConcurrent(ConcurrentRunResult* result = nullptr);

  /// Host functions callable from `(call name args...)` actions.
  void RegisterFunction(const std::string& name, ExternalFn fn);

  /// --- Restart -----------------------------------------------------------
  /// Replays the recovered working memory into the matcher: scans every
  /// class in the catalog's durable directory (in name order) into one
  /// ChangeSet and hands it to the matcher as a single batch, rebuilding
  /// token memories and the conflict set to exactly the state an
  /// in-process run with the same WM contents would have. Call after
  /// rules are installed (matchers require rules before WM activity) on a
  /// reopened database; a no-op when the directory is empty or disabled.
  Status ReseedMatcher();

  /// --- Introspection ------------------------------------------------------
  Catalog& catalog() { return *catalog_; }
  Matcher& matcher() { return *matcher_; }
  ConflictSet& conflict_set() { return matcher_->conflict_set(); }
  const std::vector<Rule>& rules() const { return matcher_->rules(); }
  /// The concurrent engine (serving layer: session transactions run on
  /// its TxnManager so they serialize with RunConcurrent firings).
  ConcurrentEngine& concurrent_engine() { return *concurrent_engine_; }
  /// The sequential engine's WM facade (firing log, bulk Apply).
  WorkingMemory& working_memory() { return engine_->working_memory(); }
  SequentialEngine& sequential_engine() { return *engine_; }
  const ProductionSystemOptions& options() const { return options_; }

  /// Rule names whose numeric condition envelopes admit this tuple
  /// (§4.2.3's rule-base queries; empty when disabled).
  Status RulesForTuple(const std::string& cls, const Tuple& t,
                       std::vector<std::string>* names) const;
  /// ... and for a single-attribute constraint such as age > 55.
  Status RulesFor(const std::string& cls, const std::string& attr,
                  CompareOp op, double value,
                  std::vector<std::string>* names) const;

 private:
  ProductionSystemOptions options_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Matcher> matcher_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<SequentialEngine> engine_;
  std::unique_ptr<ConcurrentEngine> concurrent_engine_;
  std::unique_ptr<RuleBaseQueryIndex> rulebase_index_;
  FunctionRegistry functions_;
};

}  // namespace prodb

#endif  // PRODB_CORE_PRODUCTION_SYSTEM_H_
