#include "core/production_system.h"

#include "match/pattern_matcher.h"
#include "match/query_matcher.h"
#include "rete/network.h"

namespace prodb {

ProductionSystem::ProductionSystem(ProductionSystemOptions options)
    : options_(options) {
  CatalogOptions copts;
  copts.default_storage = options_.wm_storage;
  copts.buffer_pool_frames = options_.buffer_pool_frames;
  copts.db_path = options_.db_path;
  copts.open_existing = options_.open_existing;
  copts.enable_wal = options_.enable_wal;
  copts.wal_auto_flush = options_.wal_auto_flush;
  copts.durable_directory = options_.durable_directory;
  catalog_ = std::make_unique<Catalog>(copts);

  switch (options_.matcher) {
    case MatcherKind::kRete: {
      ReteOptions ropts;
      ropts.sharding = options_.sharding;
      ropts.planner = options_.planner;
      matcher_ = std::make_unique<ReteNetwork>(catalog_.get(), ropts);
      break;
    }
    case MatcherKind::kReteDbms: {
      ReteOptions ropts;
      ropts.dbms_backed = true;
      ropts.memory_storage = options_.wm_storage;
      ropts.sharding = options_.sharding;
      ropts.planner = options_.planner;
      matcher_ = std::make_unique<ReteNetwork>(catalog_.get(), ropts);
      break;
    }
    case MatcherKind::kQuery:
      matcher_ = std::make_unique<QueryMatcher>(catalog_.get(),
                                                ExecutorOptions{},
                                                options_.sharding,
                                                options_.planner);
      break;
    case MatcherKind::kPattern: {
      PatternMatcherOptions popts;
      popts.propagation_threads = options_.propagation_threads;
      // The pattern matcher's per-class COND propagation is already the
      // sharded fan-out (§4.2.3); the sharding option just sizes it.
      if (options_.sharding.enabled() && popts.propagation_threads <= 1) {
        popts.propagation_threads = options_.sharding.threads == 0
                                        ? options_.sharding.num_shards
                                        : options_.sharding.threads;
      }
      popts.cond_storage = options_.wm_storage;
      matcher_ = std::make_unique<PatternMatcher>(catalog_.get(), popts);
      break;
    }
  }

  SequentialEngineOptions sopts;
  sopts.strategy = options_.strategy;
  sopts.seed = options_.seed;
  sopts.max_firings = options_.max_firings;
  engine_ = std::make_unique<SequentialEngine>(catalog_.get(), matcher_.get(),
                                               sopts);
  // Pre-load by construction — nothing has flowed through this WM yet,
  // so the mid-stream guard cannot fire.
  Status sharding_st =
      engine_->working_memory().ConfigureSharding(options_.sharding);
  (void)sharding_st;

  locks_ = std::make_unique<LockManager>();
  ConcurrentEngineOptions ccopts;
  ccopts.workers = options_.workers;
  ccopts.strategy = options_.strategy;
  ccopts.seed = options_.seed;
  ccopts.max_firings = options_.max_firings;
  concurrent_engine_ = std::make_unique<ConcurrentEngine>(
      catalog_.get(), matcher_.get(), locks_.get(), ccopts);

  if (options_.enable_rulebase_queries) {
    rulebase_index_ = std::make_unique<RuleBaseQueryIndex>(catalog_.get());
  }
}

ProductionSystem::~ProductionSystem() = default;

Status ProductionSystem::LoadString(const std::string& source) {
  std::vector<Rule> rules;
  PRODB_RETURN_IF_ERROR(LoadProgram(source, catalog_.get(), &rules));
  for (Rule& rule : rules) {
    PRODB_RETURN_IF_ERROR(AddRule(rule));
  }
  return Status::OK();
}

Status ProductionSystem::DeclareClass(const Schema& schema) {
  Relation* rel;
  return catalog_->CreateDurableRelation(schema, &rel);
}

Status ProductionSystem::ReseedMatcher() {
  // One batch over every durable class, classes in name order, tuples in
  // scan (= id) order — deterministic, so two processes recovering the
  // same image reseed to identical matcher state.
  ChangeSet batch;
  for (const std::string& cls : catalog_->DurableClasses()) {
    Relation* rel = catalog_->Get(cls);
    if (rel == nullptr) continue;  // declared by a rules file not yet loaded
    PRODB_RETURN_IF_ERROR(rel->Scan([&](TupleId id, const Tuple& t) {
      batch.AddInsert(cls, t, id);
      return Status::OK();
    }));
  }
  if (batch.empty()) return Status::OK();
  return matcher_->OnBatch(batch);
}

Status ProductionSystem::AddRule(const Rule& rule) {
  int rule_id = static_cast<int>(matcher_->rules().size());
  PRODB_RETURN_IF_ERROR(matcher_->AddRule(rule));
  if (rulebase_index_ != nullptr) {
    PRODB_RETURN_IF_ERROR(rulebase_index_->AddRule(rule_id, rule));
  }
  return Status::OK();
}

Status ProductionSystem::Insert(const std::string& cls, const Tuple& t,
                                TupleId* id) {
  return engine_->working_memory().Insert(cls, t, id);
}

Status ProductionSystem::Delete(const std::string& cls, TupleId id) {
  return engine_->working_memory().Delete(cls, id);
}

Status ProductionSystem::Modify(const std::string& cls, TupleId id,
                                const Tuple& t, TupleId* new_id) {
  return engine_->working_memory().Modify(cls, id, t, new_id);
}

Status ProductionSystem::Run(EngineRunResult* result) {
  EngineRunResult local;
  return engine_->Run(result == nullptr ? &local : result);
}

Status ProductionSystem::Step(bool* fired) {
  EngineRunResult result;
  return engine_->Step(fired, &result);
}

Status ProductionSystem::RunConcurrent(ConcurrentRunResult* result) {
  ConcurrentRunResult local;
  return concurrent_engine_->Run(result == nullptr ? &local : result);
}

void ProductionSystem::RegisterFunction(const std::string& name,
                                        ExternalFn fn) {
  engine_->functions().Register(name, fn);
  concurrent_engine_->functions().Register(name, std::move(fn));
}

Status ProductionSystem::RulesForTuple(const std::string& cls, const Tuple& t,
                                       std::vector<std::string>* names) const {
  names->clear();
  if (rulebase_index_ == nullptr) {
    return Status::NotSupported("rule-base queries disabled");
  }
  std::vector<int> ids;
  PRODB_RETURN_IF_ERROR(rulebase_index_->RulesMatchingTuple(cls, t, &ids));
  for (int id : ids) {
    names->push_back(matcher_->rules()[static_cast<size_t>(id)].name);
  }
  return Status::OK();
}

Status ProductionSystem::RulesFor(const std::string& cls,
                                  const std::string& attr, CompareOp op,
                                  double value,
                                  std::vector<std::string>* names) const {
  names->clear();
  if (rulebase_index_ == nullptr) {
    return Status::NotSupported("rule-base queries disabled");
  }
  Relation* rel = catalog_->Get(cls);
  if (rel == nullptr) return Status::NotFound("relation " + cls);
  int attr_idx = rel->schema().IndexOf(attr);
  if (attr_idx < 0) {
    return Status::InvalidArgument(cls + " has no attribute " + attr);
  }
  std::vector<int> ids;
  PRODB_RETURN_IF_ERROR(
      rulebase_index_->RulesMatchingConstraint(cls, attr_idx, op, value, &ids));
  for (int id : ids) {
    names->push_back(matcher_->rules()[static_cast<size_t>(id)].name);
  }
  return Status::OK();
}

}  // namespace prodb
