#ifndef PRODB_RETE_NETWORK_H_
#define PRODB_RETE_NETWORK_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "db/stats.h"
#include "match/discrimination.h"
#include "match/matcher.h"
#include "match/sharding.h"
#include "plan/planner.h"
#include "rete/token_store.h"

namespace prodb {

/// Configuration of a Rete network build.
struct ReteOptions {
  /// Store LEFT/RIGHT two-input-node memories in catalog relations (the
  /// straightforward DBMS implementation of §3.2) instead of process
  /// memory (the OPS5 situation of §3.1).
  bool dbms_backed = false;
  /// Share one-input (alpha) test chains across rules with identical
  /// class + constant tests — the multiple-query-optimization idea the
  /// paper cites ([SELL86]); toggled off for the ablation benchmark.
  bool share_alpha = true;
  /// Share two-input join-chain *prefixes* across rules whose leading
  /// positive condition elements are structurally identical — the
  /// "global compiled plan that avoids multiple relation accesses" the
  /// paper asks multiple-query processing to provide (§3.2, [SELL88],
  /// §6 future work). Rules must be added before WM activity for shared
  /// chains to be populated consistently.
  bool share_beta = true;
  /// Storage backend for LEFT/RIGHT relations when dbms_backed.
  StorageKind memory_storage = StorageKind::kMemory;
  /// Cost-based beta-chain ordering from incremental catalog statistics:
  /// each rule's positive CEs compile in the planner's order instead of
  /// LHS order — lifting the "fixed access plan" limitation the paper
  /// pins on Rete (§3.2). Cardinality drift past planner.replan_drift
  /// triggers a rebuild of the join network under fresh plans, with token
  /// memories reseeded from WM (conflict set untouched). Off preserves
  /// the syntactic textual order exactly.
  PlannerOptions planner;
  /// Maintain equality-join-key indexes on LEFT/RIGHT memories and probe
  /// them instead of scanning — §4.1.2's indexing idea applied to the
  /// token memories. Off reproduces the "access of the opposite memory"
  /// full scan the paper complains about (§3.2); the ablation benchmark
  /// compares both.
  bool index_memories = true;
  /// Dispatch each WM delta through a per-class constant-test
  /// discrimination index (eq-hash / interval-tree / residual tiers, §2.3
  /// / [STON86a]) instead of testing it against every alpha node of its
  /// class — the remaining linear walk on the §3.2 hot path. Off restores
  /// the full per-class walk for the ablation benchmarks.
  bool discriminate_alpha = true;
  /// Partitioned multi-core match (§4.2.3's parallel-propagation claim
  /// taken to the whole network): the network is replicated into
  /// `sharding.num_shards` independent sub-networks — a rule compiles
  /// into the shard owning its head class, or into *every* shard with a
  /// head-tuple partition filter when the head class is hot — and
  /// OnBatch runs the shards on a ThreadPool, merging buffered
  /// conflict-set deltas at a barrier in fixed shard order so the merged
  /// set is byte-identical at any thread count. Disabled (or
  /// dbms_backed, where shards run serially) preserves the serial path.
  ShardingOptions sharding;
};

/// Structural counters (Figure 1/3 analyses, E1).
struct ReteTopology {
  size_t alpha_nodes = 0;
  size_t beta_nodes = 0;      // two-input join nodes
  size_t negative_nodes = 0;
  size_t production_nodes = 0;
};

/// The Rete match network of Forgy's OPS5 (§3), as a Matcher.
///
/// Rules compile into a discrimination network: a root that dispatches on
/// class, one-input nodes checking `attribute op constant`, and a
/// left-deep chain of two-input nodes joining condition elements in LHS
/// order — the "fixed access plan" the paper criticizes (§3.2). Tokens
/// (tuples tagged +/−) enter at the root and propagate sequentially;
/// two-input nodes store unmatched arrivals in their LEFT/RIGHT memories
/// awaiting future partners; tokens reaching a production node update the
/// conflict set. Negated CEs become negative nodes that count consistent
/// right-side matches and pass left tokens only while the count is zero.
///
/// With sharding enabled the network is a vector of such sub-networks,
/// one per working-memory partition (see ReteOptions::sharding).
class ReteNetwork : public Matcher {
 public:
  /// `catalog` supplies the WM relations and, when dbms_backed, hosts the
  /// LEFT/RIGHT memory relations.
  explicit ReteNetwork(Catalog* catalog, ReteOptions options = {});
  ~ReteNetwork() override;

  Status AddRule(const Rule& rule) override;
  Status OnInsert(const std::string& rel, TupleId id, const Tuple& t) override;
  Status OnDelete(const std::string& rel, TupleId id, const Tuple& t) override;
  /// Set-oriented propagation: groups same-relation deltas (preserving
  /// their order) and pushes each group through the alpha network in one
  /// pass, so two-input nodes scan their LEFT memories once per group
  /// instead of once per tuple — the set-at-a-time access the DBMS
  /// setting exists to provide (§3.2). When sharded, every shard consumes
  /// the grouped deltas concurrently (each filters to its own classes /
  /// head-tuple partition) and the per-shard conflict-set deltas merge at
  /// the barrier in shard order.
  Status OnBatch(const ChangeSet& batch) override;

  ConflictSet& conflict_set() override { return conflict_set_; }
  size_t AuxiliaryFootprintBytes() const override;
  const MatcherStats& stats() const override { return stats_; }
  std::string name() const override {
    std::string base = options_.dbms_backed ? "rete-dbms" : "rete";
    if (options_.planner.enable) base += "-plan";
    return options_.sharding.enabled() ? base + "-shard" : base;
  }
  const std::vector<Rule>& rules() const override { return rules_; }
  std::vector<ShardStats> ShardStatsSnapshot() const override;

  ReteTopology Topology() const;
  /// Total tokens resident in LEFT+RIGHT memories (summed over shards).
  size_t TokenCount() const;

  /// Current per-rule plans (index = rule; tests/benchmarks).
  const std::vector<JoinPlan>& plans() const { return plans_; }
  const CatalogStats& catalog_stats() const { return cat_stats_; }
  /// Re-plans every rule against refreshed statistics immediately and
  /// rebuilds + reseeds the join network if any order changed
  /// (tests/benchmarks; the production trigger is cardinality drift,
  /// checked after each batch).
  Status ForceReplan();

 protected:
  MatcherStats* mutable_stats() override { return &stats_; }

 private:
  struct AlphaNode;
  struct JoinNode;
  struct Shard;

  /// One signed right-input arrival, batched per group.
  struct RightActivation {
    TupleId id;
    const Tuple* tuple;
    bool positive;
  };

  Status BuildRule(const Rule& rule, int rule_index);
  /// Compiles `rule` into one shard's sub-network. `hot` adds the
  /// level-0 head-tuple partition filter (and segregates beta-prefix
  /// sharing from unfiltered chains).
  Status BuildRuleInShard(const Rule& rule, int rule_index,
                          const std::vector<size_t>& order,
                          size_t num_positive,
                          const std::vector<size_t>& class_arity,
                          Shard* shard, bool hot);

  /// Recomputes the binding of a token over join positions [0, upto) of
  /// `rule` (needed for relation-backed stores, which persist tuples but
  /// not bindings).
  bool RecomputeBinding(int rule, ReteToken* token, size_t upto) const;

  /// Derives the key for probing `node`'s RIGHT memory from a left-side
  /// token (values of the binder columns). False when a column is not
  /// derivable — the caller falls back to a full scan.
  static bool ProbeKeyFromToken(const JoinNode& node, const ReteToken& token,
                                std::vector<Value>* key);
  /// Derives the key for probing `node`'s LEFT memory from a right-input
  /// WM tuple (values of the CE's own equality attributes).
  static bool ProbeKeyFromTuple(const JoinNode& node, const Tuple& tuple,
                                std::vector<Value>* key);

  /// Token arrives on the left input of `node` with the given sign.
  Status ActivateLeft(Shard* shard, JoinNode* node, const ReteToken& token,
                      bool positive);
  /// Forwards a token past `node`: fires its productions, then feeds its
  /// children (several when chain prefixes are shared).
  Status Descend(Shard* shard, JoinNode* node, const ReteToken& token,
                 bool positive);
  /// A group of WM tuples arrives on the right input of `node` as one
  /// atomic activation: every store mutation is applied, then the LEFT
  /// memory is scanned once, pairing each stored token with every
  /// activation in delta order.
  Status ActivateRightBatch(Shard* shard, JoinNode* node,
                            const std::vector<RightActivation>& acts);
  /// Feeds a group of same-relation deltas through one shard's alpha
  /// network.
  Status PropagateGroup(Shard* shard, const std::string& rel,
                        const std::vector<RightActivation>& group);
  /// Token passed all joins of a rule: update the conflict set (directly
  /// on the serial path, via the shard's op buffer inside a parallel
  /// batch; suppressed during reseeds — the set is already correct).
  Status Produce(Shard* shard, int rule, const ReteToken& token,
                 bool positive);

  /// Drift check + re-plan, rate-limited to every kReplanCheckInterval
  /// deltas. Called at the end of OnInsert/OnDelete/OnBatch under
  /// batch_mu_, when WM relations and token memories agree.
  Status MaybeReplan(size_t deltas);
  /// Re-plans all rules against fresh stats; rebuilds when an order
  /// changed. Observes est-vs-actual accuracy of the outgoing plans.
  Status ReplanAll();
  /// Tears down the compiled network (dropping DBMS-backed token
  /// relations), recompiles every rule under plans_, and replays WM
  /// through the fresh network with Produce suppressed.
  Status RebuildAndReseed();
  Status ReseedFromRelations();

  Catalog* catalog_;
  ReteOptions options_;
  ShardMap shard_map_;
  // Incremental catalog statistics over the rules' LHS relations,
  // registered at AddRule (single-threaded per the Matcher contract) and
  // updated from the propagation entry points under batch_mu_.
  CatalogStats cat_stats_;
  JoinPlanner planner_;
  std::vector<Rule> rules_;
  // Per rule, the current JoinPlan (order + estimates + drift snapshot).
  std::vector<JoinPlan> plans_;
  // Per rule, the positive-then-negated CE order the join chain uses
  // (== plans_[i].order; kept separate for hot-path access).
  std::vector<std::vector<size_t>> join_order_;
  // Deltas since the last drift check (guarded by batch_mu_).
  uint64_t deltas_since_plan_check_ = 0;
  // True while ReseedFromRelations replays WM: Produce becomes a no-op.
  bool reseeding_ = false;
  // Sub-networks; exactly one when sharding is off.
  std::vector<std::unique_ptr<Shard>> shards_;
  // Workers for the sharded OnBatch fan-out (absent when serial or
  // dbms_backed).
  std::unique_ptr<ThreadPool> pool_;
  // Serializes matcher maintenance: the concurrent engine (§5) commits
  // batches from worker threads with no external lock, and the token
  // memories / alpha scratch state are single-writer by design.
  mutable std::mutex batch_mu_;
  // Reused one-element activation group for the per-tuple OnInsert /
  // OnDelete path (guarded by batch_mu_) — keeps that hot path free of
  // a per-call vector allocation.
  std::vector<RightActivation> one_act_;
  ConflictSet conflict_set_;
  MatcherStats stats_;
  size_t store_counter_ = 0;
};

}  // namespace prodb

#endif  // PRODB_RETE_NETWORK_H_
