#ifndef PRODB_RETE_TOKEN_STORE_H_
#define PRODB_RETE_TOKEN_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/catalog.h"
#include "rete/token.h"

namespace prodb {

/// Storage for the LEFT (or RIGHT) memory of a two-input Rete node.
///
/// Two implementations realize the paper's comparison: MemoryTokenStore
/// keeps tokens in process memory (the OPS5 situation, §3.1), while
/// RelationTokenStore keeps them in catalog relations — "the two
/// relations used to store the tokens that correspond to the left and
/// right input of a two-input merge node, LEFT and RIGHT" (§3.2). The
/// relation-backed store pays DBMS costs on every token movement, which
/// benchmark E8 measures.
class TokenStore {
 public:
  virtual ~TokenStore() = default;

  virtual Status Add(const ReteToken& token) = 0;

  /// Removes the token whose CE position `pos` carries tuple `id`.
  /// Multiple tokens can reference the same tuple; all are removed and
  /// reported to `removed` (may be null).
  virtual Status RemoveByTuple(size_t pos, TupleId id,
                               std::vector<ReteToken>* removed) = 0;

  /// Removes one token with exactly `token`'s tuple-id combination.
  /// Returns OK whether or not a match existed; *found reports it.
  virtual Status RemoveExact(const ReteToken& token, bool* found) = 0;

  /// Visits every stored token.
  virtual Status Scan(
      const std::function<Status(const ReteToken&)>& fn) const = 0;

  virtual size_t size() const = 0;
  virtual size_t FootprintBytes() const = 0;
};

/// Tokens in a std::vector (the in-memory Rete of OPS5).
class MemoryTokenStore : public TokenStore {
 public:
  Status Add(const ReteToken& token) override;
  Status RemoveByTuple(size_t pos, TupleId id,
                       std::vector<ReteToken>* removed) override;
  Status RemoveExact(const ReteToken& token, bool* found) override;
  Status Scan(
      const std::function<Status(const ReteToken&)>& fn) const override;
  size_t size() const override { return tokens_.size(); }
  size_t FootprintBytes() const override;

 private:
  std::vector<ReteToken> tokens_;
};

/// Tokens serialized into a catalog relation.
///
/// Row layout: [pos0_page, pos0_slot, pos1_page, pos1_slot, ...] followed
/// by the concatenated attribute values of each position's tuple. The
/// binding is not stored; it is recomputed on scan by the owning node
/// (it is derivable from the tuples).
class RelationTokenStore : public TokenStore {
 public:
  /// Creates the backing relation `name` in `catalog`. `positions` gives,
  /// per CE slot of the rule, the arity of that slot's class (0 for
  /// negated slots, which never carry tuples).
  static Status Create(Catalog* catalog, const std::string& name,
                       std::vector<size_t> arities, StorageKind storage,
                       std::unique_ptr<RelationTokenStore>* out);

  Status Add(const ReteToken& token) override;
  Status RemoveByTuple(size_t pos, TupleId id,
                       std::vector<ReteToken>* removed) override;
  Status RemoveExact(const ReteToken& token, bool* found) override;
  Status Scan(
      const std::function<Status(const ReteToken&)>& fn) const override;
  size_t size() const override;
  size_t FootprintBytes() const override;

  Relation* relation() const { return rel_; }

 private:
  RelationTokenStore(Relation* rel, std::vector<size_t> arities)
      : rel_(rel), arities_(std::move(arities)) {}

  Tuple Encode(const ReteToken& token) const;
  ReteToken Decode(const Tuple& row) const;

  Relation* rel_;
  std::vector<size_t> arities_;
};

}  // namespace prodb

#endif  // PRODB_RETE_TOKEN_STORE_H_
