#ifndef PRODB_RETE_TOKEN_STORE_H_
#define PRODB_RETE_TOKEN_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/catalog.h"
#include "rete/token.h"

namespace prodb {

/// One column of a token-memory equality-join key: the value lives at
/// `tuples[pos][attr]` of a stored token. The schema is fixed when the
/// store is built — computed once per node by ReteNetwork::BuildRule from
/// the rule's equality variable occurrences (§3.2's "access of the
/// opposite memory" becomes a keyed probe, §4.1.2's indexing idea).
struct TokenKeyCol {
  size_t pos = 0;  // CE slot whose tuple supplies the value
  int attr = 0;    // attribute within that tuple
};

/// Storage for the LEFT (or RIGHT) memory of a two-input Rete node.
///
/// Two implementations realize the paper's comparison: MemoryTokenStore
/// keeps tokens in process memory (the OPS5 situation, §3.1), while
/// RelationTokenStore keeps them in catalog relations — "the two
/// relations used to store the tokens that correspond to the left and
/// right input of a two-input merge node, LEFT and RIGHT" (§3.2). The
/// relation-backed store pays DBMS costs on every token movement, which
/// benchmark E8 measures.
class TokenStore {
 public:
  virtual ~TokenStore() = default;

  virtual Status Add(const ReteToken& token) = 0;

  /// Removes the token whose CE position `pos` carries tuple `id`.
  /// Multiple tokens can reference the same tuple; all are removed and
  /// reported to `removed` (may be null).
  virtual Status RemoveByTuple(size_t pos, TupleId id,
                               std::vector<ReteToken>* removed) = 0;

  /// Removes one token with exactly `token`'s tuple-id combination.
  /// Returns OK whether or not a match existed; *found reports it.
  virtual Status RemoveExact(const ReteToken& token, bool* found) = 0;

  /// Visits every stored token.
  virtual Status Scan(
      const std::function<Status(const ReteToken&)>& fn) const = 0;

  /// Visits the tokens whose key columns equal `key` (one Value per key
  /// column, compared with the semantics of EvalCompare(kEq) — int 3
  /// matches real 3.0). This is a necessary-condition filter: every
  /// token that could join on the key columns is visited, plus any token
  /// whose key could not be derived (defensive fallback); callers still
  /// run the full consistency test on visited tokens. Stores built
  /// without a key schema degrade to Scan.
  virtual Status ScanMatching(
      const std::vector<Value>& key,
      const std::function<Status(const ReteToken&)>& fn) const = 0;

  /// True when the store maintains a key index (ScanMatching is a probe,
  /// not a scan).
  virtual bool keyed() const = 0;

  /// Hint that ~n more tokens are about to be added (one per right
  /// activation of a batch). Stores may pre-size; correctness never
  /// depends on it.
  virtual void ReserveAdditional(size_t n) { (void)n; }

  virtual size_t size() const = 0;
  virtual size_t FootprintBytes() const = 0;
};

/// Tokens in a std::vector (the in-memory Rete of OPS5), with an optional
/// hash map from encoded key to token indices maintained on every
/// add/remove.
class MemoryTokenStore : public TokenStore {
 public:
  MemoryTokenStore() = default;
  explicit MemoryTokenStore(std::vector<TokenKeyCol> key_cols)
      : key_cols_(std::move(key_cols)) {}

  Status Add(const ReteToken& token) override;
  Status RemoveByTuple(size_t pos, TupleId id,
                       std::vector<ReteToken>* removed) override;
  Status RemoveExact(const ReteToken& token, bool* found) override;
  Status Scan(
      const std::function<Status(const ReteToken&)>& fn) const override;
  Status ScanMatching(
      const std::vector<Value>& key,
      const std::function<Status(const ReteToken&)>& fn) const override;
  bool keyed() const override { return !key_cols_.empty(); }
  void ReserveAdditional(size_t n) override {
    const size_t want = tokens_.size() + n;
    if (want <= tokens_.capacity()) return;
    // Never reserve below double the current capacity: an exact
    // `reserve(size + 1)` per one-element batch would defeat the
    // vector's geometric growth and turn token adds quadratic.
    const size_t doubled = tokens_.capacity() * 2;
    tokens_.reserve(want > doubled ? want : doubled);
  }
  size_t size() const override { return tokens_.size(); }
  size_t FootprintBytes() const override;

 private:
  /// Encodes `token`'s key columns; false when a column is not derivable
  /// (missing position / narrow tuple), in which case the token lives in
  /// the unkeyed list that every probe also visits.
  bool KeyOf(const ReteToken& token, std::string* out) const;
  void IndexAdd(size_t i);
  void IndexErase(size_t i);
  /// Swap-erase of tokens_[i], fixing up the moved element's index entry.
  void EraseAt(size_t i);

  std::vector<ReteToken> tokens_;
  std::vector<TokenKeyCol> key_cols_;
  // encoded key -> indices into tokens_ (only when keyed).
  std::unordered_map<std::string, std::vector<size_t>> buckets_;
  // indices of tokens whose key could not be derived.
  std::vector<size_t> unkeyed_;
};

/// Tokens serialized into a catalog relation.
///
/// Row layout: [pos0_page, pos0_slot, pos1_page, pos1_slot, ...] followed
/// by the concatenated attribute values of each position's tuple. The
/// binding is not stored; it is recomputed on scan by the owning node
/// (it is derivable from the tuples). When a key schema is given, the
/// backing relation carries hash indexes on the encoded key columns —
/// §4.1.2's "index the COND relations" applied to LEFT/RIGHT — and
/// ScanMatching routes through Relation::Select's index fast path.
class RelationTokenStore : public TokenStore {
 public:
  /// Creates the backing relation `name` in `catalog`. `positions` gives,
  /// per CE slot of the rule, the arity of that slot's class (0 for
  /// negated slots, which never carry tuples). `key_cols` (may be empty)
  /// selects the token columns to index.
  static Status Create(Catalog* catalog, const std::string& name,
                       std::vector<size_t> arities, StorageKind storage,
                       std::unique_ptr<RelationTokenStore>* out,
                       std::vector<TokenKeyCol> key_cols = {});

  Status Add(const ReteToken& token) override;
  Status RemoveByTuple(size_t pos, TupleId id,
                       std::vector<ReteToken>* removed) override;
  Status RemoveExact(const ReteToken& token, bool* found) override;
  Status Scan(
      const std::function<Status(const ReteToken&)>& fn) const override;
  Status ScanMatching(
      const std::vector<Value>& key,
      const std::function<Status(const ReteToken&)>& fn) const override;
  bool keyed() const override { return !key_attr_cols_.empty(); }
  size_t size() const override;
  size_t FootprintBytes() const override;

  Relation* relation() const { return rel_; }

 private:
  RelationTokenStore(Relation* rel, std::vector<size_t> arities,
                     std::vector<int> key_attr_cols)
      : rel_(rel),
        arities_(std::move(arities)),
        key_attr_cols_(std::move(key_attr_cols)) {}

  Tuple Encode(const ReteToken& token) const;
  ReteToken Decode(const Tuple& row) const;

  Relation* rel_;
  std::vector<size_t> arities_;
  // Encoded-row column index of each key column (indexed in rel_).
  std::vector<int> key_attr_cols_;
};

}  // namespace prodb

#endif  // PRODB_RETE_TOKEN_STORE_H_
