#ifndef PRODB_RETE_TOKEN_H_
#define PRODB_RETE_TOKEN_H_

#include <string>
#include <vector>

#include "common/tuple.h"
#include "db/predicate.h"

namespace prodb {

/// A Rete token: a sequence of WM tuples that together satisfy a prefix
/// of a rule's condition elements, plus the variable binding they induce.
/// Tuples are tagged "+" or "−" when flowing through the network (§3.1);
/// the sign travels alongside the token rather than inside it.
///
/// Vectors are indexed by join-order *level* (slot k = the CE the chain
/// joins k-th), not by textual CE position — so a chain compiled under a
/// planner-chosen order stores the same tokens as the identically-ordered
/// prefix of any other rule, which is what makes beta-prefix sharing
/// independent of LHS slot numbering. Width grows with depth: a token
/// that has joined k positive CEs has width k (negated levels never
/// widen it); unfilled slots of right-input singles hold kNoTuple /
/// empty tuples. The production node remaps levels back to textual CE
/// slots when instantiations are emitted.
struct ReteToken {
  std::vector<TupleId> ids;
  std::vector<Tuple> tuples;
  Binding binding;

  static constexpr TupleId kNoTuple{UINT32_MAX, UINT32_MAX};

  /// Identity = the exact tuple combination (binding is derived).
  std::string Key() const {
    std::string key;
    for (const TupleId& id : ids) {
      key += std::to_string(id.page_id) + "." + std::to_string(id.slot_id) +
             "|";
    }
    return key;
  }
};

}  // namespace prodb

#endif  // PRODB_RETE_TOKEN_H_
