#ifndef PRODB_RETE_TOKEN_H_
#define PRODB_RETE_TOKEN_H_

#include <string>
#include <vector>

#include "common/tuple.h"
#include "db/predicate.h"

namespace prodb {

/// A Rete token: a sequence of WM tuples that together satisfy a prefix
/// of a rule's condition elements, plus the variable binding they induce.
/// Tuples are tagged "+" or "−" when flowing through the network (§3.1);
/// the sign travels alongside the token rather than inside it.
///
/// Vectors are full-width (one slot per CE of the rule); positions not
/// yet joined — and negated positions — hold kNoTuple / empty tuples.
struct ReteToken {
  std::vector<TupleId> ids;
  std::vector<Tuple> tuples;
  Binding binding;

  static constexpr TupleId kNoTuple{UINT32_MAX, UINT32_MAX};

  /// Identity = the exact tuple combination (binding is derived).
  std::string Key() const {
    std::string key;
    for (const TupleId& id : ids) {
      key += std::to_string(id.page_id) + "." + std::to_string(id.slot_id) +
             "|";
    }
    return key;
  }
};

}  // namespace prodb

#endif  // PRODB_RETE_TOKEN_H_
