#include "rete/token_store.h"

#include <algorithm>

#include "rete/join_keys.h"

namespace prodb {

constexpr TupleId ReteToken::kNoTuple;

bool MemoryTokenStore::KeyOf(const ReteToken& token, std::string* out) const {
  out->clear();
  for (const TokenKeyCol& c : key_cols_) {
    if (c.pos >= token.tuples.size() ||
        static_cast<size_t>(c.attr) >= token.tuples[c.pos].arity()) {
      return false;
    }
    AppendKeyValue(token.tuples[c.pos][static_cast<size_t>(c.attr)], out);
  }
  return true;
}

void MemoryTokenStore::IndexAdd(size_t i) {
  std::string key;
  if (KeyOf(tokens_[i], &key)) {
    buckets_[key].push_back(i);
  } else {
    unkeyed_.push_back(i);
  }
}

void MemoryTokenStore::IndexErase(size_t i) {
  std::string key;
  std::vector<size_t>* list;
  std::unordered_map<std::string, std::vector<size_t>>::iterator it;
  if (KeyOf(tokens_[i], &key)) {
    it = buckets_.find(key);
    list = &it->second;
  } else {
    it = buckets_.end();
    list = &unkeyed_;
  }
  auto pos = std::find(list->begin(), list->end(), i);
  if (pos != list->end()) {
    *pos = list->back();
    list->pop_back();
  }
  if (it != buckets_.end() && list->empty()) buckets_.erase(it);
}

void MemoryTokenStore::EraseAt(size_t i) {
  if (keyed()) {
    IndexErase(i);
    size_t last = tokens_.size() - 1;
    if (i != last) {
      IndexErase(last);
      tokens_[i] = std::move(tokens_[last]);
      IndexAdd(i);
    }
    tokens_.pop_back();
    return;
  }
  tokens_[i] = std::move(tokens_.back());
  tokens_.pop_back();
}

Status MemoryTokenStore::Add(const ReteToken& token) {
  tokens_.push_back(token);
  if (keyed()) IndexAdd(tokens_.size() - 1);
  return Status::OK();
}

Status MemoryTokenStore::RemoveByTuple(size_t pos, TupleId id,
                                       std::vector<ReteToken>* removed) {
  for (size_t i = tokens_.size(); i-- > 0;) {
    if (pos < tokens_[i].ids.size() && tokens_[i].ids[pos] == id) {
      if (removed != nullptr) removed->push_back(tokens_[i]);
      EraseAt(i);
    }
  }
  return Status::OK();
}

Status MemoryTokenStore::RemoveExact(const ReteToken& token, bool* found) {
  *found = false;
  std::string key;
  if (keyed() && KeyOf(token, &key)) {
    // A tuple id never changes value (ids are not reused), so tokens with
    // equal id combinations carry equal tuples and land in the same
    // bucket — the probe is complete, no scan fallback needed.
    auto it = buckets_.find(key);
    if (it != buckets_.end()) {
      for (size_t i : it->second) {
        if (tokens_[i].ids == token.ids) {
          EraseAt(i);
          *found = true;
          return Status::OK();
        }
      }
    }
    for (size_t i : unkeyed_) {
      if (tokens_[i].ids == token.ids) {
        EraseAt(i);
        *found = true;
        return Status::OK();
      }
    }
    return Status::OK();
  }
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i].ids == token.ids) {
      EraseAt(i);
      *found = true;
      return Status::OK();
    }
  }
  return Status::OK();
}

Status MemoryTokenStore::Scan(
    const std::function<Status(const ReteToken&)>& fn) const {
  for (const ReteToken& t : tokens_) {
    PRODB_RETURN_IF_ERROR(fn(t));
  }
  return Status::OK();
}

Status MemoryTokenStore::ScanMatching(
    const std::vector<Value>& key,
    const std::function<Status(const ReteToken&)>& fn) const {
  if (!keyed() || key.size() != key_cols_.size()) return Scan(fn);
  auto it = buckets_.find(EncodeJoinKey(key));
  if (it != buckets_.end()) {
    for (size_t i : it->second) {
      PRODB_RETURN_IF_ERROR(fn(tokens_[i]));
    }
  }
  for (size_t i : unkeyed_) {
    PRODB_RETURN_IF_ERROR(fn(tokens_[i]));
  }
  return Status::OK();
}

size_t MemoryTokenStore::FootprintBytes() const {
  size_t total = sizeof(*this) + tokens_.capacity() * sizeof(ReteToken);
  for (const ReteToken& t : tokens_) {
    total += t.ids.capacity() * sizeof(TupleId);
    for (const Tuple& tup : t.tuples) total += tup.FootprintBytes();
    total += t.binding.capacity() * sizeof(Binding::value_type);
  }
  for (const auto& [key, list] : buckets_) {
    total += key.capacity() + list.capacity() * sizeof(size_t) + 48;
  }
  total += unkeyed_.capacity() * sizeof(size_t);
  return total;
}

Status RelationTokenStore::Create(
    Catalog* catalog, const std::string& name, std::vector<size_t> arities,
    StorageKind storage, std::unique_ptr<RelationTokenStore>* out,
    std::vector<TokenKeyCol> key_cols) {
  std::vector<Attribute> attrs;
  for (size_t p = 0; p < arities.size(); ++p) {
    attrs.push_back(
        Attribute{"p" + std::to_string(p) + "_page", ValueType::kInt});
    attrs.push_back(
        Attribute{"p" + std::to_string(p) + "_slot", ValueType::kInt});
  }
  for (size_t p = 0; p < arities.size(); ++p) {
    for (size_t a = 0; a < arities[p]; ++a) {
      attrs.push_back(Attribute{
          "p" + std::to_string(p) + "_a" + std::to_string(a),
          ValueType::kSymbol});
    }
  }
  // Map each key column to its encoded-row column index; an out-of-range
  // column voids the whole schema (the store stays scannable).
  std::vector<int> key_attr_cols;
  for (const TokenKeyCol& c : key_cols) {
    if (c.pos >= arities.size() ||
        static_cast<size_t>(c.attr) >= arities[c.pos]) {
      key_attr_cols.clear();
      break;
    }
    size_t col = 2 * arities.size();
    for (size_t p = 0; p < c.pos; ++p) col += arities[p];
    key_attr_cols.push_back(static_cast<int>(col) + c.attr);
  }
  Relation* rel;
  PRODB_RETURN_IF_ERROR(
      catalog->CreateRelation(Schema(name, attrs), storage, &rel));
  for (int col : key_attr_cols) {
    if (!rel->HasHashIndex(col)) {
      PRODB_RETURN_IF_ERROR(rel->CreateHashIndex(col));
    }
  }
  out->reset(new RelationTokenStore(rel, std::move(arities),
                                    std::move(key_attr_cols)));
  return Status::OK();
}

Tuple RelationTokenStore::Encode(const ReteToken& token) const {
  Tuple row;
  auto& vals = row.mutable_values();
  for (size_t p = 0; p < arities_.size(); ++p) {
    TupleId id = p < token.ids.size() ? token.ids[p] : ReteToken::kNoTuple;
    vals.emplace_back(static_cast<int64_t>(id.page_id));
    vals.emplace_back(static_cast<int64_t>(id.slot_id));
  }
  for (size_t p = 0; p < arities_.size(); ++p) {
    for (size_t a = 0; a < arities_[p]; ++a) {
      if (p < token.tuples.size() && a < token.tuples[p].arity()) {
        vals.push_back(token.tuples[p][a]);
      } else {
        vals.emplace_back();
      }
    }
  }
  return row;
}

ReteToken RelationTokenStore::Decode(const Tuple& row) const {
  ReteToken token;
  const size_t n = arities_.size();
  token.ids.assign(n, ReteToken::kNoTuple);
  token.tuples.assign(n, Tuple());
  size_t off = 0;
  for (size_t p = 0; p < n; ++p) {
    token.ids[p].page_id = static_cast<uint32_t>(row[off++].as_int());
    token.ids[p].slot_id = static_cast<uint32_t>(row[off++].as_int());
  }
  for (size_t p = 0; p < n; ++p) {
    std::vector<Value> vals;
    vals.reserve(arities_[p]);
    for (size_t a = 0; a < arities_[p]; ++a) {
      vals.push_back(row[off++]);
    }
    token.tuples[p] = Tuple(std::move(vals));
  }
  return token;
}

Status RelationTokenStore::Add(const ReteToken& token) {
  TupleId id;
  return rel_->Insert(Encode(token), &id);
}

Status RelationTokenStore::RemoveByTuple(size_t pos, TupleId id,
                                         std::vector<ReteToken>* removed) {
  // Find rows whose position `pos` carries the tuple id, then delete.
  std::vector<TupleId> victims;
  const size_t page_col = pos * 2;
  PRODB_RETURN_IF_ERROR(rel_->Scan([&](TupleId row_id, const Tuple& row) {
    if (static_cast<uint32_t>(row[page_col].as_int()) == id.page_id &&
        static_cast<uint32_t>(row[page_col + 1].as_int()) == id.slot_id) {
      victims.push_back(row_id);
      if (removed != nullptr) removed->push_back(Decode(row));
    }
    return Status::OK();
  }));
  for (TupleId v : victims) {
    PRODB_RETURN_IF_ERROR(rel_->Delete(v));
  }
  return Status::OK();
}

Status RelationTokenStore::RemoveExact(const ReteToken& token, bool* found) {
  *found = false;
  TupleId victim;
  bool have = false;
  auto check = [&](TupleId row_id, const Tuple& row) {
    if (have) return Status::OK();
    size_t off = 0;
    for (size_t p = 0; p < arities_.size(); ++p) {
      TupleId id = p < token.ids.size() ? token.ids[p] : ReteToken::kNoTuple;
      if (static_cast<uint32_t>(row[off].as_int()) != id.page_id ||
          static_cast<uint32_t>(row[off + 1].as_int()) != id.slot_id) {
        return Status::OK();
      }
      off += 2;
    }
    victim = row_id;
    have = true;
    return Status::OK();
  };
  if (keyed()) {
    // Narrow the search with the key index: tokens with equal ids carry
    // equal tuples, so the victim (if present) is in the probed set.
    Selection sel;
    Tuple enc = Encode(token);
    for (int col : key_attr_cols_) {
      sel.tests.push_back(
          ConstantTest{col, CompareOp::kEq, enc[static_cast<size_t>(col)]});
    }
    std::vector<std::pair<TupleId, Tuple>> rows;
    PRODB_RETURN_IF_ERROR(rel_->Select(sel, &rows));
    for (const auto& [row_id, row] : rows) {
      PRODB_RETURN_IF_ERROR(check(row_id, row));
    }
  } else {
    PRODB_RETURN_IF_ERROR(rel_->Scan(check));
  }
  if (have) {
    PRODB_RETURN_IF_ERROR(rel_->Delete(victim));
    *found = true;
  }
  return Status::OK();
}

Status RelationTokenStore::Scan(
    const std::function<Status(const ReteToken&)>& fn) const {
  return rel_->Scan([&](TupleId, const Tuple& row) { return fn(Decode(row)); });
}

Status RelationTokenStore::ScanMatching(
    const std::vector<Value>& key,
    const std::function<Status(const ReteToken&)>& fn) const {
  if (!keyed() || key.size() != key_attr_cols_.size()) return Scan(fn);
  // The equality selection hits the hash index on the first key column
  // (Relation::Select's fast path); remaining columns filter the probe
  // result. Cross-type numeric equality (int 3 vs real 3.0) is honored by
  // Value::Hash / EvalCompare, matching the join semantics.
  Selection sel;
  for (size_t i = 0; i < key.size(); ++i) {
    sel.tests.push_back(
        ConstantTest{key_attr_cols_[i], CompareOp::kEq, key[i]});
  }
  std::vector<std::pair<TupleId, Tuple>> rows;
  PRODB_RETURN_IF_ERROR(rel_->Select(sel, &rows));
  for (const auto& [row_id, row] : rows) {
    (void)row_id;
    PRODB_RETURN_IF_ERROR(fn(Decode(row)));
  }
  return Status::OK();
}

size_t RelationTokenStore::size() const { return rel_->Count(); }

size_t RelationTokenStore::FootprintBytes() const {
  return rel_->FootprintBytes();
}

}  // namespace prodb
