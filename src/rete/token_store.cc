#include "rete/token_store.h"

namespace prodb {

constexpr TupleId ReteToken::kNoTuple;

Status MemoryTokenStore::Add(const ReteToken& token) {
  tokens_.push_back(token);
  return Status::OK();
}

Status MemoryTokenStore::RemoveByTuple(size_t pos, TupleId id,
                                       std::vector<ReteToken>* removed) {
  for (size_t i = 0; i < tokens_.size();) {
    if (pos < tokens_[i].ids.size() && tokens_[i].ids[pos] == id) {
      if (removed != nullptr) removed->push_back(tokens_[i]);
      tokens_[i] = std::move(tokens_.back());
      tokens_.pop_back();
    } else {
      ++i;
    }
  }
  return Status::OK();
}

Status MemoryTokenStore::RemoveExact(const ReteToken& token, bool* found) {
  *found = false;
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i].ids == token.ids) {
      tokens_[i] = std::move(tokens_.back());
      tokens_.pop_back();
      *found = true;
      return Status::OK();
    }
  }
  return Status::OK();
}

Status MemoryTokenStore::Scan(
    const std::function<Status(const ReteToken&)>& fn) const {
  for (const ReteToken& t : tokens_) {
    PRODB_RETURN_IF_ERROR(fn(t));
  }
  return Status::OK();
}

size_t MemoryTokenStore::FootprintBytes() const {
  size_t total = sizeof(*this) + tokens_.capacity() * sizeof(ReteToken);
  for (const ReteToken& t : tokens_) {
    total += t.ids.capacity() * sizeof(TupleId);
    for (const Tuple& tup : t.tuples) total += tup.FootprintBytes();
    total += t.binding.capacity() * sizeof(Binding::value_type);
  }
  return total;
}

Status RelationTokenStore::Create(
    Catalog* catalog, const std::string& name, std::vector<size_t> arities,
    StorageKind storage, std::unique_ptr<RelationTokenStore>* out) {
  std::vector<Attribute> attrs;
  for (size_t p = 0; p < arities.size(); ++p) {
    attrs.push_back(
        Attribute{"p" + std::to_string(p) + "_page", ValueType::kInt});
    attrs.push_back(
        Attribute{"p" + std::to_string(p) + "_slot", ValueType::kInt});
  }
  for (size_t p = 0; p < arities.size(); ++p) {
    for (size_t a = 0; a < arities[p]; ++a) {
      attrs.push_back(Attribute{
          "p" + std::to_string(p) + "_a" + std::to_string(a),
          ValueType::kSymbol});
    }
  }
  Relation* rel;
  PRODB_RETURN_IF_ERROR(
      catalog->CreateRelation(Schema(name, attrs), storage, &rel));
  out->reset(new RelationTokenStore(rel, std::move(arities)));
  return Status::OK();
}

Tuple RelationTokenStore::Encode(const ReteToken& token) const {
  Tuple row;
  auto& vals = row.mutable_values();
  for (size_t p = 0; p < arities_.size(); ++p) {
    TupleId id = p < token.ids.size() ? token.ids[p] : ReteToken::kNoTuple;
    vals.emplace_back(static_cast<int64_t>(id.page_id));
    vals.emplace_back(static_cast<int64_t>(id.slot_id));
  }
  for (size_t p = 0; p < arities_.size(); ++p) {
    for (size_t a = 0; a < arities_[p]; ++a) {
      if (p < token.tuples.size() && a < token.tuples[p].arity()) {
        vals.push_back(token.tuples[p][a]);
      } else {
        vals.emplace_back();
      }
    }
  }
  return row;
}

ReteToken RelationTokenStore::Decode(const Tuple& row) const {
  ReteToken token;
  const size_t n = arities_.size();
  token.ids.assign(n, ReteToken::kNoTuple);
  token.tuples.assign(n, Tuple());
  size_t off = 0;
  for (size_t p = 0; p < n; ++p) {
    token.ids[p].page_id = static_cast<uint32_t>(row[off++].as_int());
    token.ids[p].slot_id = static_cast<uint32_t>(row[off++].as_int());
  }
  for (size_t p = 0; p < n; ++p) {
    std::vector<Value> vals;
    vals.reserve(arities_[p]);
    for (size_t a = 0; a < arities_[p]; ++a) {
      vals.push_back(row[off++]);
    }
    token.tuples[p] = Tuple(std::move(vals));
  }
  return token;
}

Status RelationTokenStore::Add(const ReteToken& token) {
  TupleId id;
  return rel_->Insert(Encode(token), &id);
}

Status RelationTokenStore::RemoveByTuple(size_t pos, TupleId id,
                                         std::vector<ReteToken>* removed) {
  // Find rows whose position `pos` carries the tuple id, then delete.
  std::vector<TupleId> victims;
  const size_t page_col = pos * 2;
  PRODB_RETURN_IF_ERROR(rel_->Scan([&](TupleId row_id, const Tuple& row) {
    if (static_cast<uint32_t>(row[page_col].as_int()) == id.page_id &&
        static_cast<uint32_t>(row[page_col + 1].as_int()) == id.slot_id) {
      victims.push_back(row_id);
      if (removed != nullptr) removed->push_back(Decode(row));
    }
    return Status::OK();
  }));
  for (TupleId v : victims) {
    PRODB_RETURN_IF_ERROR(rel_->Delete(v));
  }
  return Status::OK();
}

Status RelationTokenStore::RemoveExact(const ReteToken& token, bool* found) {
  *found = false;
  TupleId victim;
  bool have = false;
  PRODB_RETURN_IF_ERROR(rel_->Scan([&](TupleId row_id, const Tuple& row) {
    if (have) return Status::OK();
    size_t off = 0;
    for (size_t p = 0; p < arities_.size(); ++p) {
      TupleId id = p < token.ids.size() ? token.ids[p] : ReteToken::kNoTuple;
      if (static_cast<uint32_t>(row[off].as_int()) != id.page_id ||
          static_cast<uint32_t>(row[off + 1].as_int()) != id.slot_id) {
        return Status::OK();
      }
      off += 2;
    }
    victim = row_id;
    have = true;
    return Status::OK();
  }));
  if (have) {
    PRODB_RETURN_IF_ERROR(rel_->Delete(victim));
    *found = true;
  }
  return Status::OK();
}

Status RelationTokenStore::Scan(
    const std::function<Status(const ReteToken&)>& fn) const {
  return rel_->Scan([&](TupleId, const Tuple& row) { return fn(Decode(row)); });
}

size_t RelationTokenStore::size() const { return rel_->Count(); }

size_t RelationTokenStore::FootprintBytes() const {
  return rel_->FootprintBytes();
}

}  // namespace prodb
