#include "rete/network.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <unordered_map>

#include "db/executor.h"
#include "rete/join_keys.h"

namespace prodb {

namespace {

/// Widens a token's position vectors so index `pos` is addressable.
void EnsureWidth(ReteToken* token, size_t pos) {
  if (token->ids.size() <= pos) {
    token->ids.resize(pos + 1, ReteToken::kNoTuple);
    token->tuples.resize(pos + 1, Tuple());
  }
}

}  // namespace

/// One-input node chain, collapsed: class test plus every constant test
/// of a condition element, plus intra-CE attribute constraints induced by
/// a variable appearing twice in the same CE.
struct ReteNetwork::AlphaNode {
  std::string cls;
  std::vector<ConstantTest> tests;
  // (left attr, op, right attr): tuple[l] op tuple[r] must hold.
  struct AttrPair {
    int left;
    CompareOp op;
    int right;
  };
  std::vector<AttrPair> pairs;
  std::vector<JoinNode*> successors;

  bool Matches(const Tuple& t) const {
    for (const ConstantTest& c : tests) {
      if (!c.Matches(t)) return false;
    }
    for (const AttrPair& p : pairs) {
      if (!EvalCompare(t[static_cast<size_t>(p.left)], p.op,
                       t[static_cast<size_t>(p.right)])) {
        return false;
      }
    }
    return true;
  }

  std::string Signature() const {
    std::string sig = cls + "#";
    std::vector<std::string> parts;
    for (const ConstantTest& c : tests) parts.push_back(c.ToString());
    std::sort(parts.begin(), parts.end());
    for (const std::string& p : parts) sig += p + ";";
    sig += "#";
    parts.clear();
    for (const AttrPair& p : pairs) {
      parts.push_back(std::to_string(p.left) + CompareOpName(p.op) +
                      std::to_string(p.right));
    }
    std::sort(parts.begin(), parts.end());
    for (const std::string& p : parts) sig += p + ";";
    return sig;
  }
};

/// Two-input node. `level` 0 is the head of a chain (no LEFT memory —
/// its single input feeds successors directly); negated nodes
/// additionally keep per-left-token match counts. A node may have
/// several children (chain-prefix sharing) and may terminate one or
/// more productions.
struct ReteNetwork::JoinNode {
  int rule = -1;  // rule whose compilation created the node (structure
                  // is identical for every rule sharing it)
  size_t level = 0;
  size_t ce = 0;  // textual CE slot (of `rule`) this node's right input
                  // covers; tokens are indexed by `level`, not by this
  bool negated = false;
  // Head-tuple partition filter (hot-rule replicas only): a level-0
  // activation enters this chain iff HashId(id) % part_mod == part_idx,
  // so the replicas across shards partition a hot rule's instantiations
  // by head tuple while staying disjoint.
  uint32_t part_mod = 1;
  uint32_t part_idx = 0;
  std::unique_ptr<TokenStore> left;
  std::unique_ptr<TokenStore> right;
  // Equality-join key schema, fixed at compile time (parallel vectors):
  // the LEFT token value at left_key[i] must equal the right tuple value
  // at right_key[i].attr for a pair to join. Empty when the node has no
  // equality join test (or indexing is off) — memories are scanned.
  std::vector<TokenKeyCol> left_key;
  std::vector<TokenKeyCol> right_key;  // pos == level for every entry
  std::unordered_map<std::string, int> neg_counts;
  std::vector<JoinNode*> children;
  std::vector<int> productions;  // rule indices satisfied at this node
};

/// One working-memory partition's sub-network: its own alpha nodes and
/// dispatch indexes, join nodes with token memories, and — during a
/// parallel batch — a buffer of conflict-set ops the barrier merges in
/// shard order. Everything here is touched by exactly one worker at a
/// time (OnBatch hands each shard to one task; the serial paths run
/// under batch_mu_).
struct ReteNetwork::Shard {
  size_t index = 0;
  std::vector<std::unique_ptr<AlphaNode>> alpha_nodes;
  std::vector<std::unique_ptr<JoinNode>> join_nodes;
  // Class name -> alpha nodes testing that class.
  std::unordered_map<std::string, std::vector<AlphaNode*>> alpha_by_class;
  // Class name -> discrimination index over that class's alpha nodes
  // (entry id = position in the alpha_by_class vector). Shared alpha
  // nodes are indexed once, when first created.
  std::unordered_map<std::string, DiscriminationIndex> alpha_disc;
  // Size of the previous delta's candidate set — reserve() hint for the
  // dispatch scratch vector.
  uint32_t last_candidates = 0;
  // Alpha sharing: signature -> node.
  std::unordered_map<std::string, AlphaNode*> alpha_index;
  // Beta sharing: join-chain prefix signature -> last node of the chain.
  std::unordered_map<std::string, JoinNode*> beta_index;
  // Conflict-set ops recorded while `buffered` (parallel batches); the
  // barrier replays them into the one ConflictSet in shard order.
  ConflictOpBuffer ops;
  bool buffered = false;
  ShardStats sstats;
};

namespace {
/// Deltas between drift checks: cheap enough to keep replans timely,
/// coarse enough that the check never shows on the per-delta path.
constexpr uint64_t kReplanCheckInterval = 64;
}  // namespace

ReteNetwork::ReteNetwork(Catalog* catalog, ReteOptions options)
    : catalog_(catalog),
      options_(options),
      shard_map_(options.sharding),
      planner_(&cat_stats_, options.planner) {
  const size_t n = shard_map_.num_shards();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shards_.push_back(std::move(shard));
  }
  // DBMS-backed memories route every token movement through the shared
  // catalog/buffer-pool/WAL stack; shards still partition the work (and
  // merge deterministically) but execute serially — the conservative
  // gate until that stack is certified for intra-batch parallelism.
  if (n > 1 && !options_.dbms_backed) {
    size_t threads = options_.sharding.threads == 0 ? n
                                                    : options_.sharding.threads;
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  }
}

ReteNetwork::~ReteNetwork() = default;

Status ReteNetwork::AddRule(const Rule& rule) {
  int rule_index = static_cast<int>(rules_.size());
  // Register LHS relations with the stats catalog (seeding from current
  // contents) before planning, so an AddRule after a WM preload already
  // plans against real cardinalities.
  for (const ConditionSpec& c : rule.lhs.conditions) {
    Relation* rel = catalog_->Get(c.relation);
    if (rel == nullptr) {
      return Status::NotFound("rule " + rule.name + ": relation " +
                              c.relation);
    }
    cat_stats_.Register(c.relation, rel);
  }
  rules_.push_back(rule);
  plans_.push_back(planner_.Plan(rule.lhs));
  ++stats_.plans_built;
  Status st = BuildRule(rule, rule_index);
  if (!st.ok()) {
    rules_.pop_back();
    plans_.pop_back();
    if (join_order_.size() > rules_.size()) join_order_.pop_back();
  }
  return st;
}

Status ReteNetwork::BuildRule(const Rule& rule, int rule_index) {
  const size_t n = rule.lhs.conditions.size();

  // Join order from the rule's current plan: the planner's cost-based
  // positive order when enabled (§3.2's "fixed access plan" lifted), the
  // syntactic positive-then-negated order otherwise.
  const std::vector<size_t>& order = plans_[static_cast<size_t>(rule_index)].order;
  const size_t num_positive =
      plans_[static_cast<size_t>(rule_index)].num_positive;

  // Per-CE class arities (for relation-backed token rows).
  std::vector<size_t> class_arity(n, 0);
  for (size_t i = 0; i < n; ++i) {
    Relation* rel = catalog_->Get(rule.lhs.conditions[i].relation);
    if (rel == nullptr) {
      return Status::NotFound("rule " + rule.name + ": relation " +
                              rule.lhs.conditions[i].relation);
    }
    class_arity[i] = rel->schema().arity();
  }
  if (num_positive == 0) {
    return Status::InvalidArgument("rule " + rule.name +
                                   ": no positive condition element");
  }
  if (join_order_.size() <= static_cast<size_t>(rule_index)) {
    join_order_.resize(static_cast<size_t>(rule_index) + 1);
  }
  join_order_[static_cast<size_t>(rule_index)] = order;

  // Shard placement: a rule compiles into the shard owning its head
  // class (the first positive CE — the chain's level-0 input). A *hot*
  // head class instead replicates the rule into every shard behind a
  // head-tuple partition filter, so its instantiations split across
  // cores by hash while remaining disjoint.
  const std::string& head_cls =
      rule.lhs.conditions[order[0]].relation;
  if (shards_.size() == 1) {
    return BuildRuleInShard(rule, rule_index, order, num_positive,
                            class_arity, shards_[0].get(), /*hot=*/false);
  }
  if (shard_map_.IsHot(head_cls)) {
    for (auto& shard : shards_) {
      PRODB_RETURN_IF_ERROR(BuildRuleInShard(rule, rule_index, order,
                                             num_positive, class_arity,
                                             shard.get(), /*hot=*/true));
    }
    return Status::OK();
  }
  return BuildRuleInShard(rule, rule_index, order, num_positive, class_arity,
                          shards_[shard_map_.ShardOfClass(head_cls)].get(),
                          /*hot=*/false);
}

Status ReteNetwork::BuildRuleInShard(const Rule& rule, int rule_index,
                                     const std::vector<size_t>& order,
                                     size_t num_positive,
                                     const std::vector<size_t>& class_arity,
                                     Shard* shard, bool hot) {
  const size_t n = rule.lhs.conditions.size();

  auto make_store = [&](const std::string& kind, size_t level,
                        const std::vector<size_t>& arities,
                        const std::vector<TokenKeyCol>& key_cols,
                        std::unique_ptr<TokenStore>* out) -> Status {
    if (!options_.dbms_backed) {
      *out = std::make_unique<MemoryTokenStore>(key_cols);
      return Status::OK();
    }
    std::unique_ptr<RelationTokenStore> store;
    std::string name = kind + std::to_string(store_counter_++) + "-" +
                       rule.name + "-L" + std::to_string(level);
    PRODB_RETURN_IF_ERROR(RelationTokenStore::Create(
        catalog_, name, arities, options_.memory_storage, &store, key_cols));
    *out = std::move(store);
    return Status::OK();
  };

  // Per-CE binding attributes (var -> first kEq occurrence), shared by
  // the alpha intra-CE pair builder and the join-key schema below.
  std::vector<std::map<int, int>> binder(n);
  for (size_t i = 0; i < n; ++i) {
    binder[i] = FirstEqAttrByVar(rule.lhs.conditions[i]);
  }

  // Equality-join key schema of the node at join-order level `k` covering
  // CE `ce`: one column pair per variable that has an equality occurrence
  // in `ce` and is bound by an earlier positive CE of the chain. Key
  // positions are join-order *levels* (tokens are level-indexed), so the
  // schema — like the whole chain — is independent of textual CE slots.
  // The probe is a necessary condition — TupleConsistent still runs on
  // every visited pair — so extra non-equality tests only make the probe
  // conservative, never wrong.
  auto compute_keys = [&](size_t k, size_t ce, JoinNode* node) {
    if (!options_.index_memories) return;
    for (const auto& [var, attr] : binder[ce]) {
      for (size_t j = 0; j < k && j < num_positive; ++j) {
        size_t p = order[j];
        auto it = binder[p].find(var);
        if (it == binder[p].end()) continue;
        node->left_key.push_back(TokenKeyCol{j, it->second});
        node->right_key.push_back(TokenKeyCol{k, attr});
        break;
      }
    }
  };

  auto hook_alpha = [&](size_t ce_index, JoinNode* node) {
    const ConditionSpec& cond = rule.lhs.conditions[ce_index];
    AlphaNode probe;
    probe.cls = cond.relation;
    probe.tests = cond.constant_tests;
    // Intra-CE constraints: every occurrence after a variable's binding
    // (first kEq) occurrence tests against the binding attribute.
    const std::map<int, int>& first_eq_attr = binder[ce_index];
    std::set<int> bound;
    for (const VarUse& u : cond.var_uses) {
      auto it = first_eq_attr.find(u.var);
      if (it == first_eq_attr.end()) continue;  // never eq-bound in this CE
      if (!bound.count(u.var)) {
        // Occurrences before the binding one are join/deferred tests.
        if (u.op == CompareOp::kEq) bound.insert(u.var);
        continue;
      }
      if (u.attr != it->second) {
        probe.pairs.push_back(AlphaNode::AttrPair{u.attr, u.op, it->second});
      }
    }
    AlphaNode* alpha = nullptr;
    std::string sig = probe.Signature();
    if (options_.share_alpha) {
      auto it = shard->alpha_index.find(sig);
      if (it != shard->alpha_index.end()) alpha = it->second;
    }
    if (alpha == nullptr) {
      auto owned = std::make_unique<AlphaNode>(std::move(probe));
      alpha = owned.get();
      shard->alpha_nodes.push_back(std::move(owned));
      std::vector<AlphaNode*>& cls_nodes = shard->alpha_by_class[cond.relation];
      // Index the node by its constant tests at the position it occupies
      // in the class vector; intra-CE attr pairs are unclassifiable and
      // re-checked by Matches on candidates. A shared node (found above)
      // is already indexed — once.
      shard->alpha_disc[cond.relation].Add(
          static_cast<uint32_t>(cls_nodes.size()), alpha->tests);
      cls_nodes.push_back(alpha);
      if (options_.share_alpha) shard->alpha_index[sig] = alpha;
    }
    alpha->successors.push_back(node);
  };

  // Build the positive chain front to back, reusing shared prefixes.
  // A prefix is shareable when the leading condition specs are textually
  // identical *in join order* — the analyzer's first-occurrence variable
  // numbering makes structurally identical prefixes compile identically,
  // and level-indexed tokens make the compiled chain independent of the
  // CEs' textual slots (two rules whose planned prefixes agree share
  // even when the shared CEs sit at different LHS positions; Produce
  // remaps levels to each rule's own slots). Hot (partition-filtered)
  // chains carry a distinct sig prefix so they can never share a level-0
  // node with an unfiltered cold chain.
  JoinNode* tail = nullptr;
  std::string prefix_sig = hot ? "H|" : "";
  for (size_t k = 0; k < num_positive; ++k) {
    size_t ce = order[k];
    prefix_sig += "@" + rule.lhs.conditions[ce].ToString() + "|";
    if (options_.share_beta) {
      auto it = shard->beta_index.find(prefix_sig);
      if (it != shard->beta_index.end()) {
        tail = it->second;
        continue;  // the whole prefix up to k is already compiled
      }
    }
    auto node = std::make_unique<JoinNode>();
    node->rule = rule_index;
    node->level = k;
    node->ce = ce;
    node->negated = false;
    if (k == 0 && hot) {
      node->part_mod = static_cast<uint32_t>(shards_.size());
      node->part_idx = static_cast<uint32_t>(shard->index);
    }
    if (k > 0) {
      compute_keys(k, ce, node.get());
      // LEFT tokens carry one tuple per positive level [0, k); RIGHT
      // singles carry width k+1 with only slot k filled.
      std::vector<size_t> arities(k, 0);
      for (size_t p = 0; p < k; ++p) arities[p] = class_arity[order[p]];
      PRODB_RETURN_IF_ERROR(
          make_store("LEFT", k, arities, node->left_key, &node->left));
      std::vector<size_t> right_arities(k + 1, 0);
      right_arities[k] = class_arity[ce];
      PRODB_RETURN_IF_ERROR(make_store("RIGHT", k, right_arities,
                                       node->right_key, &node->right));
      tail->children.push_back(node.get());
    }
    hook_alpha(ce, node.get());
    tail = node.get();
    if (options_.share_beta) shard->beta_index[prefix_sig] = tail;
    shard->join_nodes.push_back(std::move(node));
  }

  // Negated suffix: never shared (per-rule match counts). Left tokens
  // pass through negated nodes unwidened, so they stay at the positive
  // chain's width.
  for (size_t k = num_positive; k < order.size(); ++k) {
    size_t ce = order[k];
    auto node = std::make_unique<JoinNode>();
    node->rule = rule_index;
    node->level = k;
    node->ce = ce;
    node->negated = true;
    compute_keys(k, ce, node.get());
    std::vector<size_t> arities(num_positive, 0);
    for (size_t p = 0; p < num_positive; ++p) {
      arities[p] = class_arity[order[p]];
    }
    PRODB_RETURN_IF_ERROR(
        make_store("LEFT", k, arities, node->left_key, &node->left));
    std::vector<size_t> right_arities(k + 1, 0);
    right_arities[k] = class_arity[ce];
    PRODB_RETURN_IF_ERROR(make_store("RIGHT", k, right_arities,
                                     node->right_key, &node->right));
    hook_alpha(ce, node.get());
    tail->children.push_back(node.get());
    tail = node.get();
    shard->join_nodes.push_back(std::move(node));
  }

  tail->productions.push_back(rule_index);
  // Rebuild any range-tier interval trees now, while registration is
  // still single-threaded; dispatch-time Lookups are then pure reads.
  for (const auto& [cls, disc] : shard->alpha_disc) {
    (void)cls;
    disc.Seal();
  }
  return Status::OK();
}

bool ReteNetwork::RecomputeBinding(int rule, ReteToken* token,
                                   size_t upto) const {
  const Rule& r = rules_[static_cast<size_t>(rule)];
  const auto& order = join_order_[static_cast<size_t>(rule)];
  token->binding.assign(static_cast<size_t>(r.lhs.num_vars), std::nullopt);
  for (size_t k = 0; k < upto && k < order.size(); ++k) {
    if (k >= token->ids.size() || token->ids[k] == ReteToken::kNoTuple) {
      continue;
    }
    if (!TupleConsistent(r.lhs.conditions[order[k]], token->tuples[k],
                         &token->binding)) {
      return false;
    }
  }
  return true;
}

Status ReteNetwork::Produce(Shard* shard, int rule, const ReteToken& token,
                            bool positive) {
  // Reseed replays rebuild the token memories only; the conflict set was
  // never torn down and is already correct.
  if (reseeding_) return Status::OK();
  const Rule& r = rules_[static_cast<size_t>(rule)];
  const auto& order = join_order_[static_cast<size_t>(rule)];
  const size_t n = r.lhs.conditions.size();
  Instantiation inst;
  inst.rule_index = rule;
  inst.rule_name = r.name;
  // Tokens are level-indexed in join order; instantiations are slotted
  // by textual CE position — remap through the rule's order.
  inst.tuple_ids.assign(n, Instantiation::kNoTuple);
  inst.tuples.assign(n, Tuple());
  const size_t width = std::min(order.size(), token.ids.size());
  for (size_t k = 0; k < width; ++k) {
    if (token.ids[k] == ReteToken::kNoTuple) continue;
    inst.tuple_ids[order[k]] = token.ids[k];
    inst.tuples[order[k]] = token.tuples[k];
  }
  inst.binding = token.binding;
  inst.binding.resize(static_cast<size_t>(r.lhs.num_vars), std::nullopt);
  ++shard->sstats.conflict_ops;
  if (positive) {
    if (shard->buffered) {
      shard->ops.Add(std::move(inst));
    } else {
      conflict_set_.Add(std::move(inst));
    }
  } else {
    if (shard->buffered) {
      shard->ops.RemoveByKey(inst.Key());
    } else {
      conflict_set_.RemoveByKey(inst.Key());
    }
  }
  return Status::OK();
}

Status ReteNetwork::Descend(Shard* shard, JoinNode* node,
                            const ReteToken& token, bool positive) {
  for (int rule : node->productions) {
    PRODB_RETURN_IF_ERROR(Produce(shard, rule, token, positive));
  }
  for (JoinNode* child : node->children) {
    PRODB_RETURN_IF_ERROR(ActivateLeft(shard, child, token, positive));
  }
  return Status::OK();
}

bool ReteNetwork::ProbeKeyFromToken(const JoinNode& node,
                                    const ReteToken& token,
                                    std::vector<Value>* key) {
  key->clear();
  key->reserve(node.left_key.size());
  for (const TokenKeyCol& c : node.left_key) {
    if (c.pos >= token.tuples.size() ||
        static_cast<size_t>(c.attr) >= token.tuples[c.pos].arity()) {
      return false;
    }
    key->push_back(token.tuples[c.pos][static_cast<size_t>(c.attr)]);
  }
  return !key->empty();
}

bool ReteNetwork::ProbeKeyFromTuple(const JoinNode& node, const Tuple& tuple,
                                    std::vector<Value>* key) {
  key->clear();
  key->reserve(node.right_key.size());
  for (const TokenKeyCol& c : node.right_key) {
    if (static_cast<size_t>(c.attr) >= tuple.arity()) return false;
    key->push_back(tuple[static_cast<size_t>(c.attr)]);
  }
  return !key->empty();
}

Status ReteNetwork::ActivateLeft(Shard* shard, JoinNode* node,
                                 const ReteToken& token, bool positive) {
  ++stats_.propagations;
  const Rule& rule = rules_[static_cast<size_t>(node->rule)];
  const ConditionSpec& cond = rule.lhs.conditions[node->ce];
  // A token produced in a shared prefix carries the binding width of the
  // prefix's first compiler; this rule's suffix may use higher var ids.
  const size_t want_vars = static_cast<size_t>(rule.lhs.num_vars);

  // Visits the RIGHT-memory tokens that can join with `token`: a keyed
  // probe when the node has an equality key derivable from the token,
  // else the §3.2 full scan.
  auto for_each_right =
      [&](const std::function<Status(const ReteToken&)>& fn) -> Status {
    std::vector<Value> key;
    if (ProbeKeyFromToken(*node, token, &key)) {
      ++stats_.index_probes;
      return node->right->ScanMatching(key, [&](const ReteToken& r) {
        ++stats_.probe_tokens_visited;
        return fn(r);
      });
    }
    return node->right->Scan([&](const ReteToken& r) {
      ++stats_.scan_tokens_visited;
      return fn(r);
    });
  };

  if (positive) {
    PRODB_RETURN_IF_ERROR(node->left->Add(token));
    ++stats_.patterns_stored;
    if (node->negated) {
      int count = 0;
      PRODB_RETURN_IF_ERROR(for_each_right([&](const ReteToken& r) {
        ++stats_.tuples_examined;
        Binding b = token.binding;
        if (b.size() < want_vars) b.resize(want_vars, std::nullopt);
        if (TupleConsistent(cond, r.tuples[node->level], &b)) ++count;
        return Status::OK();
      }));
      node->neg_counts[token.Key()] = count;
      if (count == 0) return Descend(shard, node, token, true);
      return Status::OK();
    }
    return for_each_right([&](const ReteToken& r) {
      ++stats_.tuples_examined;
      ReteToken merged = token;
      if (merged.binding.size() < want_vars) {
        merged.binding.resize(want_vars, std::nullopt);
      }
      if (!TupleConsistent(cond, r.tuples[node->level], &merged.binding)) {
        return Status::OK();
      }
      EnsureWidth(&merged, node->level);
      merged.ids[node->level] = r.ids[node->level];
      merged.tuples[node->level] = r.tuples[node->level];
      return Descend(shard, node, merged, true);
    });
  }

  // Negative (−) token: retract.
  bool found = false;
  PRODB_RETURN_IF_ERROR(node->left->RemoveExact(token, &found));
  if (!found) return Status::OK();
  if (stats_.patterns_stored > 0) --stats_.patterns_stored;
  if (node->negated) {
    auto it = node->neg_counts.find(token.Key());
    int count = it == node->neg_counts.end() ? 0 : it->second;
    if (it != node->neg_counts.end()) node->neg_counts.erase(it);
    if (count == 0) return Descend(shard, node, token, false);
    return Status::OK();
  }
  return for_each_right([&](const ReteToken& r) {
    ++stats_.tuples_examined;
    ReteToken merged = token;
    if (merged.binding.size() < want_vars) {
      merged.binding.resize(want_vars, std::nullopt);
    }
    if (!TupleConsistent(cond, r.tuples[node->level], &merged.binding)) {
      return Status::OK();
    }
    EnsureWidth(&merged, node->level);
    merged.ids[node->level] = r.ids[node->level];
    merged.tuples[node->level] = r.tuples[node->level];
    return Descend(shard, node, merged, false);
  });
}

Status ReteNetwork::ActivateRightBatch(
    Shard* shard, JoinNode* node, const std::vector<RightActivation>& acts) {
  ++stats_.propagations;
  const Rule& rule = rules_[static_cast<size_t>(node->rule)];
  const ConditionSpec& cond = rule.lhs.conditions[node->ce];

  // Head node: no LEFT memory; each tuple becomes a width-1 token (slot
  // = level 0 of the chain) on its own. Hot-rule replicas accept only
  // their head-tuple partition here — the single filter that keeps
  // replicated chains disjoint across shards.
  if (node->level == 0) {
    for (const RightActivation& a : acts) {
      if (node->part_mod > 1 &&
          HashId(a.id) % node->part_mod != node->part_idx) {
        continue;
      }
      ReteToken token;
      token.binding.assign(static_cast<size_t>(rule.lhs.num_vars),
                           std::nullopt);
      if (!TupleConsistent(cond, *a.tuple, &token.binding)) continue;
      token.ids.assign(1, a.id);
      token.tuples.assign(1, *a.tuple);
      PRODB_RETURN_IF_ERROR(Descend(shard, node, token, a.positive));
    }
    return Status::OK();
  }

  // Each tuple must pass the CE's own tests before entering the memory.
  // Tests against variables bound by earlier CEs cannot be evaluated here
  // (they are join tests); defer-and-discard — the join enforces them.
  // Store mutations happen up front so the whole group is one atomic
  // activation; `effective` keeps the activations that actually entered
  // or left the memory.
  std::vector<RightActivation> effective;
  effective.reserve(acts.size());
  node->right->ReserveAdditional(acts.size());
  for (const RightActivation& a : acts) {
    {
      Binding b(static_cast<size_t>(rule.lhs.num_vars), std::nullopt);
      std::vector<DeferredTest> deferred;
      if (!TupleConsistent(cond, *a.tuple, &b, &deferred)) continue;
    }
    ReteToken single;
    single.ids.assign(node->level + 1, ReteToken::kNoTuple);
    single.tuples.assign(node->level + 1, Tuple());
    single.ids[node->level] = a.id;
    single.tuples[node->level] = *a.tuple;
    if (a.positive) {
      PRODB_RETURN_IF_ERROR(node->right->Add(single));
      ++stats_.patterns_stored;
    } else {
      bool found = false;
      PRODB_RETURN_IF_ERROR(node->right->RemoveExact(single, &found));
      if (!found) continue;
      if (stats_.patterns_stored > 0) --stats_.patterns_stored;
    }
    effective.push_back(a);
  }
  if (effective.empty()) return Status::OK();

  // Pairs one LEFT token (binding already recomputed/widened) with one
  // activation; shared by the probe and scan paths below.
  auto pair_one = [&](ReteToken& l, const RightActivation& a) -> Status {
    Binding b = l.binding;
    if (!TupleConsistent(cond, *a.tuple, &b)) return Status::OK();
    if (node->negated) {
      int& count = node->neg_counts[l.Key()];
      if (a.positive) {
        if (++count == 1) {
          PRODB_RETURN_IF_ERROR(Descend(shard, node, l, false));
        }
      } else {
        if (--count == 0) {
          PRODB_RETURN_IF_ERROR(Descend(shard, node, l, true));
        }
      }
      return Status::OK();
    }
    ReteToken merged = l;
    merged.binding = std::move(b);
    EnsureWidth(&merged, node->level);
    merged.ids[node->level] = a.id;
    merged.tuples[node->level] = *a.tuple;
    return Descend(shard, node, merged, a.positive);
  };

  auto prepare = [&](ReteToken* l) -> bool {
    if (l->binding.empty()) {
      // Relation-backed stores persist tuples, not bindings.
      if (!RecomputeBinding(node->rule, l, node->level)) return false;
    }
    // Tokens stored by a shared prefix carry the first compiler's
    // binding width; widen to this rule's variable space.
    if (l->binding.size() < static_cast<size_t>(rule.lhs.num_vars)) {
      l->binding.resize(static_cast<size_t>(rule.lhs.num_vars),
                        std::nullopt);
    }
    return true;
  };

  if (!node->left_key.empty()) {
    // Indexed path: each activation probes the LEFT memory for its
    // join-compatible tokens only — per-delta cost O(matches), not
    // O(|memory|). Activation-major order equals the per-tuple
    // propagation order.
    for (const RightActivation& a : effective) {
      std::vector<Value> key;
      std::vector<ReteToken> lefts;
      if (ProbeKeyFromTuple(*node, *a.tuple, &key)) {
        ++stats_.index_probes;
        PRODB_RETURN_IF_ERROR(node->left->ScanMatching(
            key, [&](const ReteToken& l) {
              ++stats_.probe_tokens_visited;
              lefts.push_back(l);
              return Status::OK();
            }));
      } else {
        PRODB_RETURN_IF_ERROR(node->left->Scan([&](const ReteToken& l) {
          ++stats_.scan_tokens_visited;
          lefts.push_back(l);
          return Status::OK();
        }));
      }
      for (ReteToken& l : lefts) {
        ++stats_.tuples_examined;
        if (!prepare(&l)) continue;
        PRODB_RETURN_IF_ERROR(pair_one(l, a));
      }
    }
    return Status::OK();
  }

  // Walk the LEFT memory once, pairing every stored token with every
  // activation of the group in delta order — the per-tuple path re-scans
  // this memory for each arrival; the batch pays the scan once.
  std::vector<ReteToken> lefts;
  PRODB_RETURN_IF_ERROR(node->left->Scan([&](const ReteToken& l) {
    ++stats_.scan_tokens_visited;
    lefts.push_back(l);
    return Status::OK();
  }));
  for (ReteToken& l : lefts) {
    ++stats_.tuples_examined;
    if (!prepare(&l)) continue;
    for (const RightActivation& a : effective) {
      PRODB_RETURN_IF_ERROR(pair_one(l, a));
    }
  }
  return Status::OK();
}

Status ReteNetwork::PropagateGroup(Shard* shard, const std::string& rel,
                                   const std::vector<RightActivation>& group) {
  auto it = shard->alpha_by_class.find(rel);
  if (it == shard->alpha_by_class.end()) return Status::OK();
  const std::vector<AlphaNode*>& nodes = it->second;
  shard->sstats.deltas_routed += group.size();

  if (options_.discriminate_alpha) {
    auto dit = shard->alpha_disc.find(rel);
    if (dit == shard->alpha_disc.end()) return Status::OK();
    const DiscriminationIndex& disc = dit->second;
    // Tuple-major candidate collection into sparse per-alpha passed
    // lists, so each surviving alpha still sees the group's deltas in
    // order while the class's other alpha nodes are never touched.
    std::vector<uint32_t> cands;
    cands.reserve(shard->last_candidates);
    std::unordered_map<uint32_t, std::vector<RightActivation>> passed;
    std::vector<uint32_t> touched;
    for (const RightActivation& a : group) {
      cands.clear();
      disc.Lookup(*a.tuple, &cands);
      stats_.candidates_visited += cands.size();
      shard->sstats.candidates_visited += cands.size();
      for (uint32_t pos : cands) {
        ++stats_.alpha_tests_evaluated;
        if (!nodes[pos]->Matches(*a.tuple)) continue;
        auto [pit, fresh] = passed.try_emplace(pos);
        if (fresh) {
          pit->second.reserve(group.size());
          touched.push_back(pos);
        }
        pit->second.push_back(a);
      }
    }
    shard->last_candidates = static_cast<uint32_t>(cands.size());
    // Registration order within the class, as the linear walk visits.
    std::sort(touched.begin(), touched.end());
    for (uint32_t pos : touched) {
      ++stats_.propagations;
      for (JoinNode* node : nodes[pos]->successors) {
        PRODB_RETURN_IF_ERROR(ActivateRightBatch(shard, node, passed[pos]));
      }
    }
    return Status::OK();
  }

  // Linear-scan ablation: every alpha node of the class tests every
  // delta — the §3.2 full walk the discrimination index replaces.
  for (AlphaNode* alpha : nodes) {
    ++stats_.propagations;
    std::vector<RightActivation> passed;
    passed.reserve(group.size());
    for (const RightActivation& a : group) {
      ++stats_.alpha_tests_evaluated;
      if (alpha->Matches(*a.tuple)) passed.push_back(a);
    }
    if (passed.empty()) continue;
    for (JoinNode* node : alpha->successors) {
      PRODB_RETURN_IF_ERROR(ActivateRightBatch(shard, node, passed));
    }
  }
  return Status::OK();
}

Status ReteNetwork::OnInsert(const std::string& rel, TupleId id,
                             const Tuple& t) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  if (options_.planner.enable) cat_stats_.OnDelta(rel, t, +1);
  one_act_.assign(1, RightActivation{id, &t, /*positive=*/true});
  for (auto& shard : shards_) {
    PRODB_RETURN_IF_ERROR(PropagateGroup(shard.get(), rel, one_act_));
  }
  return MaybeReplan(1);
}

Status ReteNetwork::OnDelete(const std::string& rel, TupleId id,
                             const Tuple& t) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  if (options_.planner.enable) cat_stats_.OnDelta(rel, t, -1);
  one_act_.assign(1, RightActivation{id, &t, /*positive=*/false});
  for (auto& shard : shards_) {
    PRODB_RETURN_IF_ERROR(PropagateGroup(shard.get(), rel, one_act_));
  }
  return MaybeReplan(1);
}

Status ReteNetwork::OnBatch(const ChangeSet& batch) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  ++stats_.batches;
  if (options_.planner.enable) cat_stats_.OnBatch(batch);
  // Group same-relation deltas, preserving their relative order (ids are
  // never reused, so cross-relation reordering cannot invert an
  // insert/delete pair of the same tuple). Groups run in first-appearance
  // order; the conflict set reconciles by instantiation key, so the net
  // result matches per-tuple propagation.
  std::vector<const std::string*> order;
  std::unordered_map<std::string, std::vector<RightActivation>> groups;
  for (const Delta& d : batch) {
    auto [it, inserted] = groups.try_emplace(d.relation);
    if (inserted) order.push_back(&it->first);
    it->second.push_back(RightActivation{d.id, &d.tuple, d.is_insert()});
  }

  if (shards_.size() == 1) {
    for (const std::string* rel : order) {
      PRODB_RETURN_IF_ERROR(
          PropagateGroup(shards_[0].get(), *rel, groups.at(*rel)));
    }
    return MaybeReplan(batch.size());
  }

  // Sharded propagation: every shard walks the grouped deltas (its
  // per-class alpha maps and head-partition filters select its slice),
  // buffering conflict-set ops. The barrier then replays the buffers in
  // shard order 0..N-1 — each shard is single-threaded and
  // deterministic, so the merged conflict set (recency stamps included)
  // is byte-identical regardless of thread count or completion order.
  std::vector<Status> shard_status(shards_.size());
  std::vector<std::chrono::steady_clock::time_point> done_at(shards_.size());
  for (auto& shard : shards_) shard->buffered = true;
  auto run_shard = [&](size_t i) {
    Shard* shard = shards_[i].get();
    for (const std::string* rel : order) {
      Status st = PropagateGroup(shard, *rel, groups.at(*rel));
      if (!st.ok()) {
        shard_status[i] = st;
        break;
      }
    }
    done_at[i] = std::chrono::steady_clock::now();
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(shards_.size(), run_shard);
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) run_shard(i);
  }
  const auto barrier = std::chrono::steady_clock::now();

  Status first;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    shard->buffered = false;
    shard->sstats.merge_wait_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(barrier -
                                                             done_at[i])
            .count());
    if (first.ok() && !shard_status[i].ok()) first = shard_status[i];
    if (first.ok()) {
      conflict_set_.ApplyOps(&shard->ops);
    } else {
      // A failed batch leaves the serial prefix applied, like the serial
      // path would; later shards' ops are dropped.
      shard->ops.clear();
    }
  }
  if (!first.ok()) return first;
  return MaybeReplan(batch.size());
}

Status ReteNetwork::MaybeReplan(size_t deltas) {
  if (!options_.planner.enable || rules_.empty()) return Status::OK();
  deltas_since_plan_check_ += deltas;
  if (deltas_since_plan_check_ < kReplanCheckInterval) return Status::OK();
  deltas_since_plan_check_ = 0;
  bool drift = false;
  for (const JoinPlan& p : plans_) {
    if (planner_.NeedsReplan(p)) {
      drift = true;
      break;
    }
  }
  if (!drift) return Status::OK();
  return ReplanAll();
}

Status ReteNetwork::ForceReplan() {
  std::lock_guard<std::mutex> lock(batch_mu_);
  if (rules_.empty()) return Status::OK();
  return ReplanAll();
}

Status ReteNetwork::ReplanAll() {
  // Off the per-delta counter path: re-sketch aged histograms / distinct
  // bitmaps, then recompute every plan against the fresh statistics.
  cat_stats_.RefreshStale(catalog_);
  // Estimator accounting: compare each rule's live instantiation count
  // against the fresh estimate (same stats either way, so the sample
  // measures the estimator, not plan staleness).
  std::vector<uint64_t> actual(rules_.size(), 0);
  for (const Instantiation& inst : conflict_set_.Snapshot()) {
    if (inst.rule_index >= 0 &&
        static_cast<size_t>(inst.rule_index) < actual.size()) {
      ++actual[static_cast<size_t>(inst.rule_index)];
    }
  }
  bool changed = false;
  std::vector<JoinPlan> next;
  next.reserve(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) {
    next.push_back(planner_.Plan(rules_[i].lhs));
    ++stats_.plans_built;
    stats_.ObserveCardEstimate(next[i].est_final,
                               static_cast<double>(actual[i]));
    if (next[i].order != plans_[i].order) changed = true;
  }
  plans_ = std::move(next);
  ++stats_.replans;
  // Unchanged orders only refresh the drift snapshots — the compiled
  // network is still the cheapest known, keep its token memories.
  if (!changed) return Status::OK();
  return RebuildAndReseed();
}

Status ReteNetwork::RebuildAndReseed() {
  // Tear down the compiled network, keeping per-shard counters. The
  // DBMS-backed token relations must be dropped from the catalog before
  // the stores that own them go away.
  for (auto& shard : shards_) {
    if (options_.dbms_backed) {
      for (const auto& node : shard->join_nodes) {
        for (TokenStore* s : {node->left.get(), node->right.get()}) {
          auto* rs = dynamic_cast<RelationTokenStore*>(s);
          if (rs != nullptr) {
            PRODB_RETURN_IF_ERROR(
                catalog_->Drop(rs->relation()->schema().name()));
          }
        }
      }
    }
    auto fresh = std::make_unique<Shard>();
    fresh->index = shard->index;
    fresh->sstats = shard->sstats;
    shard = std::move(fresh);
  }
  // Recompile every rule under its new plan.
  for (size_t i = 0; i < rules_.size(); ++i) {
    PRODB_RETURN_IF_ERROR(BuildRule(rules_[i], static_cast<int>(i)));
  }
  // Reseed token memories by replaying WM through the fresh network with
  // Produce suppressed (the conflict set was never torn down). Replay
  // order across classes is irrelevant: all activations are inserts, and
  // negated-node bookkeeping nets out the same whichever side arrives
  // first.
  reseeding_ = true;
  Status st = ReseedFromRelations();
  reseeding_ = false;
  // patterns_stored is a resident-token gauge; the rebuild dropped the
  // old stores without decrementing it, so recompute from the survivors.
  stats_.patterns_stored.store(TokenCount(), std::memory_order_relaxed);
  return st;
}

Status ReteNetwork::ReseedFromRelations() {
  // Sorted class set: deterministic replay regardless of rule order.
  std::set<std::string> classes;
  for (const Rule& r : rules_) {
    for (const ConditionSpec& c : r.lhs.conditions) classes.insert(c.relation);
  }
  for (const std::string& cls : classes) {
    Relation* rel = catalog_->Get(cls);
    if (rel == nullptr) continue;
    std::vector<std::pair<TupleId, Tuple>> rows;
    rows.reserve(rel->Count());
    PRODB_RETURN_IF_ERROR(rel->Scan([&](TupleId id, const Tuple& t) {
      rows.emplace_back(id, t);
      return Status::OK();
    }));
    std::vector<RightActivation> group;
    group.reserve(rows.size());
    for (const auto& [id, t] : rows) {
      group.push_back(RightActivation{id, &t, /*positive=*/true});
    }
    for (auto& shard : shards_) {
      PRODB_RETURN_IF_ERROR(PropagateGroup(shard.get(), cls, group));
    }
  }
  return Status::OK();
}

std::vector<ShardStats> ReteNetwork::ShardStatsSnapshot() const {
  std::lock_guard<std::mutex> lock(batch_mu_);
  std::vector<ShardStats> out;
  if (shards_.size() == 1) return out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->sstats);
  return out;
}

size_t ReteNetwork::AuxiliaryFootprintBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& node : shard->join_nodes) {
      if (node->left != nullptr) total += node->left->FootprintBytes();
      if (node->right != nullptr) total += node->right->FootprintBytes();
      total += node->neg_counts.size() * 48;  // approximate map overhead
    }
  }
  return total;
}

ReteTopology ReteNetwork::Topology() const {
  ReteTopology topo;
  topo.production_nodes = rules_.size();
  for (const auto& shard : shards_) {
    topo.alpha_nodes += shard->alpha_nodes.size();
    for (const auto& node : shard->join_nodes) {
      if (node->negated) {
        ++topo.negative_nodes;
      } else if (node->level > 0) {
        ++topo.beta_nodes;
      }
    }
  }
  return topo;
}

size_t ReteNetwork::TokenCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& node : shard->join_nodes) {
      if (node->left != nullptr) total += node->left->size();
      if (node->right != nullptr) total += node->right->size();
    }
  }
  return total;
}

}  // namespace prodb
