#include "rete/join_keys.h"

#include <cstring>

namespace prodb {

std::map<int, int> FirstEqAttrByVar(const ConditionSpec& cond) {
  std::map<int, int> first_eq_attr;
  for (const VarUse& u : cond.var_uses) {
    if (u.op != CompareOp::kEq) continue;
    first_eq_attr.emplace(u.var, u.attr);
  }
  return first_eq_attr;
}

void AppendKeyValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->push_back('z');
      break;
    case ValueType::kInt:
    case ValueType::kReal: {
      // Numeric canonical form: the double view, so 3 and 3.0 collide as
      // operator== demands.
      out->push_back('n');
      double d = v.numeric();
      char buf[sizeof(double)];
      std::memcpy(buf, &d, sizeof(double));
      out->append(buf, sizeof(double));
      break;
    }
    case ValueType::kSymbol: {
      const std::string& s = v.as_symbol();
      out->push_back('s');
      out->append(std::to_string(s.size()));
      out->push_back(':');
      out->append(s);
      break;
    }
  }
}

std::string EncodeJoinKey(const std::vector<Value>& key) {
  std::string out;
  out.reserve(key.size() * 10);
  for (const Value& v : key) AppendKeyValue(v, &out);
  return out;
}

}  // namespace prodb
