#ifndef PRODB_RETE_JOIN_KEYS_H_
#define PRODB_RETE_JOIN_KEYS_H_

#include <map>
#include <string>
#include <vector>

#include "common/value.h"
#include "db/predicate.h"

namespace prodb {

/// For each variable with an equality occurrence in `cond`, the attribute
/// of its first kEq occurrence — the occurrence that binds the variable
/// under OPS5 first-occurrence semantics (later occurrences test).
/// Shared by the alpha-network intra-CE pair builder and the join-key
/// schema computation of the token-memory indexes.
std::map<int, int> FirstEqAttrByVar(const ConditionSpec& cond);

/// Canonical byte encoding of an equality-join key component. Two values
/// equal under EvalCompare(kEq) encode identically — in particular int 3
/// and real 3.0 share an encoding, matching OPS5's cross-type numeric
/// equality — and distinct values encode distinctly.
void AppendKeyValue(const Value& v, std::string* out);

/// Encoding of a whole key (one component per key column).
std::string EncodeJoinKey(const std::vector<Value>& key);

}  // namespace prodb

#endif  // PRODB_RETE_JOIN_KEYS_H_
