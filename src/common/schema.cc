#include "common/schema.h"

namespace prodb {

Schema::Schema(std::string name, std::vector<Attribute> attrs)
    : name_(std::move(name)), attrs_(std::move(attrs)) {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    index_.emplace(attrs_[i].name, static_cast<int>(i));
  }
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

std::string Schema::ToString() const {
  std::string out = name_;
  out += "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i) out += ", ";
    out += attrs_[i].name;
  }
  out += ")";
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (name_ != other.name_ || attrs_.size() != other.attrs_.size()) {
    return false;
  }
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name != other.attrs_[i].name ||
        attrs_[i].type != other.attrs_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace prodb
