#ifndef PRODB_COMMON_CHANGE_SET_H_
#define PRODB_COMMON_CHANGE_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/tuple.h"

namespace prodb {

/// Kind of a working-memory delta.
enum class DeltaKind : uint8_t { kInsert, kDelete };

/// One working-memory change. For inserts recorded before application the
/// id is `kUnassigned` until the relation assigns one.
struct Delta {
  DeltaKind kind = DeltaKind::kInsert;
  std::string relation;
  TupleId id = kUnassigned;
  Tuple tuple;
  /// Index (within the owning ChangeSet) of the partner delta when this
  /// delta is one half of a logical modify (§3.1: a modification is a
  /// deletion followed by an insertion, but the pair is *one* WM event);
  /// kNoPartner otherwise.
  int32_t modify_partner = kNoPartner;

  static constexpr int32_t kNoPartner = -1;
  static constexpr TupleId kUnassigned{UINT32_MAX, UINT32_MAX};

  bool is_insert() const { return kind == DeltaKind::kInsert; }
  bool is_delete() const { return kind == DeltaKind::kDelete; }
  bool is_modify_half() const { return modify_partner != kNoPartner; }
};

/// An ordered set of working-memory deltas — the unit the mutation path
/// moves around: engines buffer an instantiation's whole RHS (the ∆ins/∆del
/// of §5.2) into one ChangeSet, working memory applies it atomically, and
/// matchers receive it in a single OnBatch call so they can propagate
/// set-at-a-time instead of tuple-at-a-time (§3.2's complaint about the
/// fixed per-tuple access plan).
class ChangeSet {
 public:
  ChangeSet() = default;

  /// Records an insertion. `id` may be kUnassigned when the tuple has not
  /// been applied to its relation yet; Apply fills it in.
  size_t AddInsert(std::string relation, const Tuple& tuple,
                   TupleId id = Delta::kUnassigned) {
    deltas_.push_back(
        Delta{DeltaKind::kInsert, std::move(relation), id, tuple});
    return deltas_.size() - 1;
  }

  /// Records a deletion of an existing tuple.
  size_t AddDelete(std::string relation, TupleId id,
                   const Tuple& tuple = Tuple()) {
    deltas_.push_back(
        Delta{DeltaKind::kDelete, std::move(relation), id, tuple});
    return deltas_.size() - 1;
  }

  /// Records a modify as its delete-before-insert pair, cross-linked so
  /// consumers can recognize the two halves as one logical event.
  /// Returns the index of the insert half.
  size_t AddModify(const std::string& relation, TupleId old_id,
                   const Tuple& old_tuple, const Tuple& new_tuple,
                   TupleId new_id = Delta::kUnassigned);

  /// The compensating set: same deltas with kinds flipped, in reverse
  /// order. Applying a set and then its inverse restores the original
  /// relation contents *and ids* (deadlock compensation, §5): the insert
  /// that undoes a delete carries the deleted tuple's original id so it
  /// can be restored via Relation::Restore — any matcher state recorded
  /// before the aborted transaction still references that id.
  ChangeSet Inverse() const;

  const std::vector<Delta>& deltas() const { return deltas_; }
  Delta& operator[](size_t i) { return deltas_[i]; }
  const Delta& operator[](size_t i) const { return deltas_[i]; }
  size_t size() const { return deltas_.size(); }
  bool empty() const { return deltas_.empty(); }
  void clear() { deltas_.clear(); }

  std::vector<Delta>::const_iterator begin() const { return deltas_.begin(); }
  std::vector<Delta>::const_iterator end() const { return deltas_.end(); }

  size_t InsertCount() const;
  size_t DeleteCount() const;

  std::string ToString() const;

 private:
  std::vector<Delta> deltas_;
};

}  // namespace prodb

#endif  // PRODB_COMMON_CHANGE_SET_H_
