#include "common/tuple.h"

#include <cstring>

namespace prodb {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadU32(const char* data, size_t size, size_t* off, uint32_t* v) {
  if (*off + 4 > size) return false;
  std::memcpy(v, data + *off, 4);
  *off += 4;
  return true;
}

bool ReadU64(const char* data, size_t size, size_t* off, uint64_t* v) {
  if (*off + 8 > size) return false;
  std::memcpy(v, data + *off, 8);
  *off += 8;
  return true;
}

}  // namespace

size_t Tuple::Hash() const {
  size_t h = 0x811c9dc5;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

void Tuple::SerializeTo(std::string* out) const {
  AppendU32(out, static_cast<uint32_t>(values_.size()));
  for (const Value& v : values_) {
    out->push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
        AppendU64(out, static_cast<uint64_t>(v.as_int()));
        break;
      case ValueType::kReal: {
        uint64_t bits;
        double d = v.as_real();
        std::memcpy(&bits, &d, 8);
        AppendU64(out, bits);
        break;
      }
      case ValueType::kSymbol: {
        const std::string& s = v.as_symbol();
        AppendU32(out, static_cast<uint32_t>(s.size()));
        out->append(s);
        break;
      }
    }
  }
}

bool Tuple::DeserializeFrom(const char* data, size_t size, size_t* offset,
                            Tuple* out) {
  uint32_t arity;
  if (!ReadU32(data, size, offset, &arity)) return false;
  // Every value costs at least its type byte; an arity beyond the bytes
  // remaining is corrupt input (and must not drive a huge reserve).
  if (arity > size - *offset) return false;
  std::vector<Value> values;
  values.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    if (*offset >= size) return false;
    auto type = static_cast<ValueType>(data[(*offset)++]);
    switch (type) {
      case ValueType::kNull:
        values.emplace_back();
        break;
      case ValueType::kInt: {
        uint64_t v;
        if (!ReadU64(data, size, offset, &v)) return false;
        values.emplace_back(static_cast<int64_t>(v));
        break;
      }
      case ValueType::kReal: {
        uint64_t bits;
        if (!ReadU64(data, size, offset, &bits)) return false;
        double d;
        std::memcpy(&d, &bits, 8);
        values.emplace_back(d);
        break;
      }
      case ValueType::kSymbol: {
        uint32_t len;
        if (!ReadU32(data, size, offset, &len)) return false;
        if (*offset + len > size) return false;
        values.emplace_back(std::string(data + *offset, len));
        *offset += len;
        break;
      }
      default:
        return false;
    }
  }
  *out = Tuple(std::move(values));
  return true;
}

size_t Tuple::FootprintBytes() const {
  size_t total = sizeof(Tuple) + values_.capacity() * sizeof(Value);
  for (const Value& v : values_) {
    total += v.FootprintBytes() - sizeof(Value);
  }
  return total;
}

std::string TupleId::ToString() const {
  return "(" + std::to_string(page_id) + "," + std::to_string(slot_id) + ")";
}

}  // namespace prodb
