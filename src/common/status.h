#ifndef PRODB_COMMON_STATUS_H_
#define PRODB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace prodb {

/// Outcome of an operation that can fail without throwing.
///
/// Modeled after the Status idiom used by storage engines (RocksDB,
/// LevelDB): cheap to copy in the OK case, carries a code plus a
/// human-readable message otherwise. Functions that can fail return a
/// Status (or a StatusOr<T>, see below) instead of throwing; callers are
/// expected to check `ok()` before using any out-parameters.
///
/// [[nodiscard]]: silently dropping a Status is how durability bugs hide
/// (an unchecked commit or flush failure looks like success). Call sites
/// that genuinely cannot act on a failure — destructors, best-effort
/// compensation — must say so with an explicit `(void)`-cast or a named
/// local.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kAlreadyExists,
    kInvalidArgument,
    kCorruption,
    kIOError,
    kNotSupported,
    kAborted,        // transaction aborted (deadlock victim, user abort)
    kDeadlock,       // deadlock detected; caller should abort and retry
    kConflict,       // lock conflict in no-wait mode
    kOutOfRange,
    kInternal,
  };

  /// Default-constructed Status is success.
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(Code::kConflict, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsConflict() const { return code_ == Code::kConflict; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string msg_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK. The classic early-return macro.
#define PRODB_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::prodb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace prodb

#endif  // PRODB_COMMON_STATUS_H_
