#ifndef PRODB_COMMON_VALUE_H_
#define PRODB_COMMON_VALUE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>

namespace prodb {

/// Type tag of a Value. OPS5 working-memory elements carry symbols and
/// numbers; we additionally distinguish integers from reals so predicate
/// tests (`<`, `>=`, ...) behave the way a relational type system expects.
enum class ValueType : uint8_t {
  kNull = 0,    // absent / don't-care placeholder
  kInt = 1,
  kReal = 2,
  kSymbol = 3,  // interned-style string; OPS5 symbols and DB strings
};

const char* ValueTypeName(ValueType t);

/// A single attribute value: null, 64-bit integer, double, or symbol
/// (string). Values are ordered within a type; across numeric types
/// (int vs real) comparison is by numeric value, matching OPS5 semantics
/// where `3` matches `3.0`. Symbols compare lexicographically and never
/// compare equal to numbers.
class Value {
 public:
  /// Null value (used for don't-care attributes in condition tuples).
  Value() : rep_(std::monostate{}) {}
  Value(int64_t v) : rep_(v) {}          // NOLINT: implicit by design
  Value(int v) : rep_(int64_t{v}) {}     // NOLINT
  Value(double v) : rep_(v) {}           // NOLINT
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT

  ValueType type() const {
    switch (rep_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kReal;
      default: return ValueType::kSymbol;
    }
  }

  bool is_null() const { return rep_.index() == 0; }
  bool is_int() const { return rep_.index() == 1; }
  bool is_real() const { return rep_.index() == 2; }
  bool is_symbol() const { return rep_.index() == 3; }
  bool is_numeric() const { return is_int() || is_real(); }

  /// Accessors. Precondition: the value holds the requested type.
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_real() const { return std::get<double>(rep_); }
  const std::string& as_symbol() const { return std::get<std::string>(rep_); }

  /// Numeric view: int promoted to double. Precondition: is_numeric().
  double numeric() const {
    return is_int() ? static_cast<double>(as_int()) : as_real();
  }

  /// Total equality. Numbers compare by value across int/real; null equals
  /// only null; symbols never equal numbers.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way comparison used for ordering (indexes, sort-merge).
  /// Cross-type order: null < numbers < symbols. Returns -1, 0, or 1.
  int Compare(const Value& other) const;
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Stable hash consistent with operator== (ints and reals holding the
  /// same number hash identically).
  size_t Hash() const;

  /// Human-readable rendering: `nil`, `42`, `3.5`, `Toy`.
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes, used by the space
  /// accounting benchmarks (E4).
  size_t FootprintBytes() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace prodb

#endif  // PRODB_COMMON_VALUE_H_
