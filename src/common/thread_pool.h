#ifndef PRODB_COMMON_THREAD_POOL_H_
#define PRODB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace prodb {

/// Minimal fixed-size thread pool.
///
/// Used for the paper's parallel propagation of matching patterns to the
/// COND relations (§4.2.3: "propagation of changes can be performed in
/// parallel to all the COND relations") and for the concurrent execution
/// engine's workers (§5).
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { Run(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  size_t size() const { return workers_.size(); }

 private:
  void Run() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace prodb

#endif  // PRODB_COMMON_THREAD_POOL_H_
