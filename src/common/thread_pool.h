#ifndef PRODB_COMMON_THREAD_POOL_H_
#define PRODB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace prodb {

/// Minimal fixed-size thread pool.
///
/// Used for the paper's parallel propagation of matching patterns to the
/// COND relations (§4.2.3: "propagation of changes can be performed in
/// parallel to all the COND relations") and for the concurrent execution
/// engine's workers (§5).
///
/// A task that throws does not take the process down: the first exception
/// is captured and rethrown from the next Wait(), and `pending_` stays
/// balanced so Wait() cannot hang on the lost decrement.
///
/// Re-entrancy: ParallelFor() called from one of this pool's own worker
/// threads (a task that fans out again, or a server session handler that
/// is itself pool-hosted) runs the loop inline instead of enqueueing.
/// Enqueueing would let every worker block inside the latch wait on tasks
/// queued behind the very tasks doing the waiting — with one worker that
/// is a guaranteed deadlock, with several it is starvation under load.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { Run(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished. If any task threw
  /// since the last Wait(), rethrows the first such exception here (on
  /// the submitting thread) after the drain completes.
  void Wait() {
    std::exception_ptr failure;
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return pending_ == 0; });
      failure = std::exchange(first_failure_, nullptr);
    }
    if (failure) std::rethrow_exception(failure);
  }

  size_t size() const { return workers_.size(); }

  /// Runs fn(0), ..., fn(n-1) across the pool and blocks until every call
  /// has finished — a reusable fork/join barrier, so callers stop hand-
  /// rolling Submit loops with ad-hoc error plumbing. The barrier is a
  /// private latch rather than the pool-wide Wait(), so concurrent
  /// Submit()/ParallelFor() calls from other threads neither extend nor
  /// truncate this join. Exception semantics match Wait(): the first
  /// exception any index throws is rethrown here, on the calling thread,
  /// after all n calls have completed. n <= 1 runs inline.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) return;
    if (n == 1 || current_pool_ == this) {
      // Inline path: trivial fan-out, or a re-entrant call from one of
      // our own workers (see class comment) — blocking on the latch from
      // inside the pool could wait on tasks this thread must itself run.
      std::exception_ptr failure;
      for (size_t i = 0; i < n; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (failure == nullptr) failure = std::current_exception();
        }
      }
      if (failure) std::rethrow_exception(failure);
      return;
    }
    struct Latch {
      std::mutex mu;
      std::condition_variable cv;
      size_t remaining;
      std::exception_ptr failure;
    } latch;
    latch.remaining = n;
    for (size_t i = 0; i < n; ++i) {
      Submit([&latch, &fn, i] {
        std::exception_ptr failure;
        try {
          fn(i);
        } catch (...) {
          failure = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(latch.mu);
        if (failure && latch.failure == nullptr) {
          latch.failure = std::move(failure);
        }
        if (--latch.remaining == 0) latch.cv.notify_all();
      });
    }
    std::exception_ptr failure;
    {
      std::unique_lock<std::mutex> lock(latch.mu);
      latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
      failure = std::exchange(latch.failure, nullptr);
    }
    if (failure) std::rethrow_exception(failure);
  }

 private:
  void Run() {
    current_pool_ = this;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      std::exception_ptr failure;
      try {
        task();
      } catch (...) {
        // Letting the exception escape would std::terminate the worker;
        // skipping the decrement below would wedge Wait() forever.
        failure = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (failure && first_failure_ == nullptr) {
          first_failure_ = std::move(failure);
        }
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  // Which pool, if any, the current thread is a worker of. Lets
  // ParallelFor detect re-entrant calls; a C++17 inline variable so the
  // header stays self-contained.
  static inline thread_local const ThreadPool* current_pool_ = nullptr;

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  size_t pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_failure_;
};

}  // namespace prodb

#endif  // PRODB_COMMON_THREAD_POOL_H_
