#ifndef PRODB_COMMON_RNG_H_
#define PRODB_COMMON_RNG_H_

#include <cstdint>

namespace prodb {

/// Deterministic xorshift128+ generator for workload synthesis and
/// property tests. We deliberately avoid std::mt19937 so that benchmark
/// workloads are bit-identical across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    s0_ = seed ? seed : 1;
    s1_ = SplitMix(&s0_);
    s0_ = SplitMix(&s1_);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_, s1_;
};

}  // namespace prodb

#endif  // PRODB_COMMON_RNG_H_
