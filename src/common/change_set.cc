#include "common/change_set.h"

namespace prodb {

size_t ChangeSet::AddModify(const std::string& relation, TupleId old_id,
                            const Tuple& old_tuple, const Tuple& new_tuple,
                            TupleId new_id) {
  size_t del = AddDelete(relation, old_id, old_tuple);
  size_t ins = AddInsert(relation, new_tuple, new_id);
  deltas_[del].modify_partner = static_cast<int32_t>(ins);
  deltas_[ins].modify_partner = static_cast<int32_t>(del);
  return ins;
}

ChangeSet ChangeSet::Inverse() const {
  ChangeSet inv;
  inv.deltas_.reserve(deltas_.size());
  for (auto it = deltas_.rbegin(); it != deltas_.rend(); ++it) {
    Delta d = *it;
    d.kind = d.is_insert() ? DeltaKind::kDelete : DeltaKind::kInsert;
    // The flipped insert keeps the deleted tuple's original id: with
    // maintenance deferred to the commit point, the matcher's stored
    // state still references that id, so compensation must restore the
    // tuple's identity, not just its value (Relation::Restore).
    d.modify_partner = Delta::kNoPartner;
    inv.deltas_.push_back(std::move(d));
  }
  // Re-link modify pairs at their mirrored positions.
  const int32_t n = static_cast<int32_t>(deltas_.size());
  for (int32_t i = 0; i < n; ++i) {
    if (deltas_[static_cast<size_t>(i)].modify_partner != Delta::kNoPartner) {
      int32_t partner = deltas_[static_cast<size_t>(i)].modify_partner;
      inv.deltas_[static_cast<size_t>(n - 1 - i)].modify_partner =
          n - 1 - partner;
    }
  }
  return inv;
}

size_t ChangeSet::InsertCount() const {
  size_t n = 0;
  for (const Delta& d : deltas_) n += d.is_insert() ? 1 : 0;
  return n;
}

size_t ChangeSet::DeleteCount() const {
  size_t n = 0;
  for (const Delta& d : deltas_) n += d.is_delete() ? 1 : 0;
  return n;
}

std::string ChangeSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < deltas_.size(); ++i) {
    const Delta& d = deltas_[i];
    if (i > 0) out += ", ";
    out += d.is_insert() ? "+" : "-";
    out += d.relation + "/" + d.id.ToString();
    if (d.is_modify_half()) out += "*";
  }
  out += "}";
  return out;
}

}  // namespace prodb
