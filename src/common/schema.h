#ifndef PRODB_COMMON_SCHEMA_H_
#define PRODB_COMMON_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace prodb {

/// One attribute of a relation schema.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kSymbol;
};

/// Ordered attribute list of a working-memory class / relation.
///
/// Mirrors the OPS5 `literalize` declaration: `(literalize Emp name age
/// salary dno)` becomes a Schema named "Emp" with four attributes. Types
/// are optional in OPS5; we default untyped attributes to kSymbol and let
/// Value's cross-numeric comparison absorb the difference.
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::vector<Attribute> attrs);

  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attrs_; }
  size_t arity() const { return attrs_.size(); }

  const Attribute& attribute(size_t i) const { return attrs_[i]; }

  /// Index of the attribute called `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;
  bool Has(const std::string& name) const { return IndexOf(name) >= 0; }

  /// `Emp(name, age, salary, dno)`.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::string name_;
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace prodb

#endif  // PRODB_COMMON_SCHEMA_H_
