#ifndef PRODB_COMMON_TUPLE_H_
#define PRODB_COMMON_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/value.h"

namespace prodb {

/// A tuple (working-memory element): an ordered list of Values.
///
/// Tuples are schema-agnostic; interpretation of positions is supplied by
/// the Schema of the relation that holds them. This keeps the storage and
/// matching layers free to build tuples positionally (the hot path).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t arity() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& at(size_t i) const { return values_[i]; }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& mutable_values() { return values_; }

  bool operator==(const Tuple& other) const {
    return values_ == other.values_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  size_t Hash() const;

  /// `(Mike, 32, 50000, 7)`.
  std::string ToString() const;

  /// Serialize into `out` (appends). Format: u32 arity, then per value a
  /// type byte and the payload (varint-free fixed encodings; symbols are
  /// u32 length + bytes). Used by the paged heap files.
  void SerializeTo(std::string* out) const;

  /// Parse a tuple previously produced by SerializeTo from data[*offset];
  /// advances *offset past the encoding. Returns false on malformed input.
  static bool DeserializeFrom(const char* data, size_t size, size_t* offset,
                              Tuple* out);

  /// Approximate in-memory footprint, for the space benchmarks.
  size_t FootprintBytes() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

/// Identifies a tuple slot inside a paged heap file: (page id, slot id).
/// Also used as a stable tuple identity by in-memory relations (page_id
/// then plays the role of a monotonic counter).
struct TupleId {
  uint32_t page_id = 0;
  uint32_t slot_id = 0;

  bool operator==(const TupleId& o) const {
    return page_id == o.page_id && slot_id == o.slot_id;
  }
  bool operator!=(const TupleId& o) const { return !(*this == o); }
  bool operator<(const TupleId& o) const {
    return page_id != o.page_id ? page_id < o.page_id : slot_id < o.slot_id;
  }
  uint64_t AsU64() const {
    return (static_cast<uint64_t>(page_id) << 32) | slot_id;
  }
  std::string ToString() const;
};

struct TupleIdHash {
  size_t operator()(const TupleId& id) const {
    return std::hash<uint64_t>{}(id.AsU64());
  }
};

}  // namespace prodb

#endif  // PRODB_COMMON_TUPLE_H_
