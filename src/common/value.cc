#include "common/value.h"

#include <cmath>
#include <functional>
#include <ostream>
#include <sstream>

namespace prodb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kReal: return "real";
    case ValueType::kSymbol: return "symbol";
  }
  return "unknown";
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    return numeric() == other.numeric();
  }
  return rep_ == other.rep_;
}

int Value::Compare(const Value& other) const {
  // Cross-type rank: null(0) < numeric(1) < symbol(2).
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;
  if (ra == 1) {
    if (is_int() && other.is_int()) {
      int64_t a = as_int(), b = other.as_int();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = numeric(), b = other.numeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  int c = as_symbol().compare(other.as_symbol());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt: {
      // Hash ints through their double representation when the value is
      // exactly representable, so 3 and 3.0 land in the same bucket.
      int64_t v = as_int();
      double d = static_cast<double>(v);
      if (static_cast<int64_t>(d) == v) {
        return std::hash<double>{}(d);
      }
      return std::hash<int64_t>{}(v);
    }
    case ValueType::kReal:
      return std::hash<double>{}(as_real());
    case ValueType::kSymbol:
      return std::hash<std::string>{}(as_symbol());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "nil";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kReal: {
      std::ostringstream os;
      os << as_real();
      return os.str();
    }
    case ValueType::kSymbol:
      return as_symbol();
  }
  return "?";
}

size_t Value::FootprintBytes() const {
  size_t base = sizeof(Value);
  if (is_symbol()) {
    const std::string& s = as_symbol();
    // Count heap allocation beyond the SSO buffer.
    if (s.capacity() > sizeof(std::string) - 1) base += s.capacity();
  }
  return base;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace prodb
