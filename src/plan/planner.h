#ifndef PRODB_PLAN_PLANNER_H_
#define PRODB_PLAN_PLANNER_H_

#include <string>
#include <utility>
#include <vector>

#include "plan/card_est.h"
#include "plan/cost_model.h"

namespace prodb {

/// Knobs for statistics-driven join planning, plumbed from
/// ProductionSystemOptions into both planning consumers (the Rete
/// network's beta-chain compiler and the query matcher's seeded
/// evaluation). Off (the default) preserves the syntactic textual-order
/// plans exactly — the equivalence baseline and the ablation switch.
struct PlannerOptions {
  bool enable = false;
  /// Re-plan a rule when some LHS relation's cardinality has drifted by
  /// this multiplicative factor since the rule was last planned. The
  /// geometric spacing amortizes Rete's rebuild-and-reseed: over a load
  /// of N tuples the reseeds replay ~N·d/(d-1) tuples total.
  double replan_drift = 4.0;
  /// Below this many total tuples across the LHS relations the planner
  /// keeps the syntactic order (no evidence to beat it with).
  double min_card = 2.0;
  /// Exhaustive left-deep DP below this many positive CEs; greedy above.
  size_t dp_max_conditions = 9;
};

/// One rule's planned join order and the estimates it was derived from.
struct JoinPlan {
  /// Positive CEs in execution order, then negated CEs (textual order).
  std::vector<size_t> order;
  size_t num_positive = 0;
  /// Estimated rows after joining the first k+1 positive CEs.
  std::vector<double> level_cards;
  double est_final = 0.0;  // estimated instantiations of the rule
  double cost = 0.0;       // CostModel::ChainCost of level_cards
  /// True when the order came from the cost model (false: syntactic
  /// fallback — planning off, no stats, or below min_card).
  bool planned = false;
  /// Per-LHS-relation cardinality at plan time; NeedsReplan compares
  /// against live values.
  std::vector<std::pair<std::string, double>> card_snapshot;
};

/// Chooses per-rule join orders from catalog statistics: a left-deep
/// order over the positive CEs minimizing the token-visits cost model,
/// negated CEs appended after all positives (their Rete placement and
/// the executor's FilterNegative both require the positives bound
/// first). Orders respect binding eligibility — a CE with an ordered
/// comparison against a variable is never placed before that variable's
/// binder — so the planned order is evaluable by every consumer,
/// including the Rete join chain which has no deferred-test machinery.
class JoinPlanner {
 public:
  JoinPlanner(const CatalogStats* stats, PlannerOptions options = {})
      : est_(stats), options_(options) {}

  /// Plans `q`. Returns the syntactic order (planned=false) when
  /// planning is disabled or the stats carry no usable evidence.
  JoinPlan Plan(const ConjunctiveQuery& q) const;

  /// True when the cardinalities snapshotted in `plan` have drifted past
  /// options().replan_drift. Syntactic fallback plans re-check too, so a
  /// rule planned before any load picks up a cost-based order once data
  /// arrives.
  bool NeedsReplan(const JoinPlan& plan) const;

  /// The textual fallback order: positives in LHS order, then negated.
  static JoinPlan Syntactic(const ConjunctiveQuery& q);

  const PlannerOptions& options() const { return options_; }
  const CardinalityEstimator& estimator() const { return est_; }

 private:
  /// True when `c` can be evaluated with only the variables in `bound`
  /// pre-bound (ordered-comparison uses need their binder first; an eq
  /// occurrence earlier in the same CE also binds).
  static bool Eligible(const ConditionSpec& c, const std::vector<bool>& bound);
  static void BindVars(const ConditionSpec& c, std::vector<bool>* bound);

  JoinPlan PlanDp(const ConjunctiveQuery& q,
                  const std::vector<size_t>& positives) const;
  JoinPlan PlanGreedy(const ConjunctiveQuery& q,
                      const std::vector<size_t>& positives) const;
  void Finish(const ConjunctiveQuery& q, JoinPlan* plan) const;

  CardinalityEstimator est_;
  CostModel cost_model_;
  PlannerOptions options_;
};

}  // namespace prodb

#endif  // PRODB_PLAN_PLANNER_H_
