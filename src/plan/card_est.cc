#include "plan/card_est.h"

#include <algorithm>
#include <map>

namespace prodb {

double CardinalityEstimator::RelationCard(const ConditionSpec& cond) const {
  const RelationStats* r = Rel(cond);
  return r == nullptr ? 0.0 : static_cast<double>(r->cardinality());
}

double CardinalityEstimator::SelectionCard(const ConditionSpec& cond) const {
  const RelationStats* r = Rel(cond);
  if (r == nullptr) return 0.0;
  double card = static_cast<double>(r->cardinality());
  for (const ConstantTest& t : cond.constant_tests) {
    card *= r->SelectivityCmp(t.attr, t.op, t.constant);
  }
  return card;
}

double CardinalityEstimator::JoinFanout(const ConditionSpec& cond,
                                        const std::vector<bool>& bound) const {
  const RelationStats* r = Rel(cond);
  double fanout = SelectionCard(cond);
  if (r == nullptr) return fanout;
  // Per variable, the most selective join factor among its occurrences
  // (several occurrences of one variable are not independent filters).
  std::map<int, double> per_var;
  for (const VarUse& u : cond.var_uses) {
    if (static_cast<size_t>(u.var) >= bound.size() ||
        !bound[static_cast<size_t>(u.var)]) {
      continue;
    }
    double factor;
    if (u.op == CompareOp::kEq || u.op == CompareOp::kNe) {
      factor = u.op == CompareOp::kEq
                   ? 1.0 / std::max(1.0, r->DistinctEstimate(u.attr))
                   : 1.0;
    } else {
      factor = 1.0 / 3.0;  // ordered comparison against a bound value
    }
    auto [it, fresh] = per_var.emplace(u.var, factor);
    if (!fresh) it->second = std::min(it->second, factor);
  }
  for (const auto& [var, factor] : per_var) {
    (void)var;
    fanout *= factor;
  }
  return fanout;
}

}  // namespace prodb
