#ifndef PRODB_PLAN_CARD_EST_H_
#define PRODB_PLAN_CARD_EST_H_

#include <vector>

#include "db/predicate.h"
#include "db/stats.h"

namespace prodb {

/// Cardinality estimation over the incrementally maintained catalog
/// statistics (src/db/stats.h) — System-R style independence assumptions
/// over per-attribute distinct counts and equi-width histograms.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const CatalogStats* stats)
      : stats_(stats) {}

  /// Estimated tuples of `cond`'s relation passing its constant tests
  /// (filter pushdown: the selection is applied before the CE joins).
  double SelectionCard(const ConditionSpec& cond) const;

  /// Expected matches of `cond` per intermediate row whose eq-bound
  /// variables are marked in `bound` (size >= the rule's num_vars):
  ///   SelectionCard(cond) x prod over joining vars of their most
  ///   selective factor (1/distinct for an equality occurrence, 1/3 for
  ///   an ordered comparison against a bound variable).
  /// A CE sharing no bound variable degenerates to a cross product.
  double JoinFanout(const ConditionSpec& cond,
                    const std::vector<bool>& bound) const;

  /// Raw cardinality of `cond`'s relation (0 when unregistered).
  double RelationCard(const ConditionSpec& cond) const;

  const CatalogStats* stats() const { return stats_; }

 private:
  const RelationStats* Rel(const ConditionSpec& cond) const {
    return stats_ == nullptr ? nullptr : stats_->Get(cond.relation);
  }

  const CatalogStats* stats_;
};

}  // namespace prodb

#endif  // PRODB_PLAN_CARD_EST_H_
