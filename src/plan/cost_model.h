#ifndef PRODB_PLAN_COST_MODEL_H_
#define PRODB_PLAN_COST_MODEL_H_

#include <vector>

namespace prodb {

/// Token-visits cost model for a left-deep join chain.
///
/// The unit is "tokens visited", the quantity the matchers already count
/// (`probe_tokens_visited` for keyed lookups, `scan_tokens_visited` /
/// `candidates_visited` for the unkeyed paths): maintaining a chain whose
/// intermediate result after level k holds C_k rows costs, per unit of
/// input churn, work proportional to the C_k that the deltas flow
/// through. A keyed probe at level k visits the joining tokens — in
/// expectation C_k per left arrival over the chain's lifetime — and each
/// surviving intermediate token is materialized into a memory
/// (`patterns_stored`). Both are linear in C_k, so the chain cost
/// collapses to a weighted sum of the intermediate cardinalities; the
/// weights below were calibrated by regressing the counters from
/// `bench_join_planning` against the estimates (probe visits and token
/// builds cost within ~2x of each other on the memory store, so 1:1 is
/// the honest default — the *ordering* of plans is insensitive to the
/// exact ratio).
struct CostModel {
  double probe_visit_weight = 1.0;
  double token_build_weight = 1.0;

  /// `level_cards[k]` = estimated rows after joining the first k+1
  /// positive CEs. level 0 feeds the chain (alpha output — paid under
  /// any order), levels >= 1 are the planner's to minimize.
  double ChainCost(const std::vector<double>& level_cards) const {
    double cost = 0.0;
    for (size_t k = 1; k < level_cards.size(); ++k) {
      cost += (probe_visit_weight + token_build_weight) * level_cards[k];
    }
    return cost;
  }
};

}  // namespace prodb

#endif  // PRODB_PLAN_COST_MODEL_H_
