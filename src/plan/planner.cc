#include "plan/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace prodb {

bool JoinPlanner::Eligible(const ConditionSpec& c,
                           const std::vector<bool>& bound) {
  // Mirror TupleConsistent's sequential semantics: occurrences are
  // checked in order, eq occurrences bind, and an ordered comparison on
  // a still-unbound variable cannot be evaluated (the Rete join chain
  // has no deferral — such a pair is simply dropped).
  std::vector<bool> local = bound;
  for (const VarUse& u : c.var_uses) {
    const size_t var = static_cast<size_t>(u.var);
    if (var >= local.size()) local.resize(var + 1, false);
    if (u.op == CompareOp::kEq) {
      local[var] = true;
    } else if (!local[var]) {
      return false;
    }
  }
  return true;
}

void JoinPlanner::BindVars(const ConditionSpec& c, std::vector<bool>* bound) {
  for (const VarUse& u : c.var_uses) {
    const size_t var = static_cast<size_t>(u.var);
    if (var >= bound->size()) bound->resize(var + 1, false);
    if (u.op == CompareOp::kEq) (*bound)[var] = true;
  }
}

JoinPlan JoinPlanner::Syntactic(const ConjunctiveQuery& q) {
  JoinPlan plan;
  for (size_t i = 0; i < q.conditions.size(); ++i) {
    if (!q.conditions[i].negated) plan.order.push_back(i);
  }
  plan.num_positive = plan.order.size();
  for (size_t i = 0; i < q.conditions.size(); ++i) {
    if (q.conditions[i].negated) plan.order.push_back(i);
  }
  return plan;
}

void JoinPlanner::Finish(const ConjunctiveQuery& q, JoinPlan* plan) const {
  // Estimates along the chosen order (also fills them for syntactic
  // fallbacks, so est-vs-actual accounting works either way), the cost,
  // and the drift snapshot.
  plan->level_cards.clear();
  std::vector<bool> bound(static_cast<size_t>(q.num_vars), false);
  double card = 0.0;
  for (size_t k = 0; k < plan->num_positive; ++k) {
    const ConditionSpec& c = q.conditions[plan->order[k]];
    card = k == 0 ? est_.SelectionCard(c) : card * est_.JoinFanout(c, bound);
    plan->level_cards.push_back(card);
    BindVars(c, &bound);
  }
  plan->est_final = card;
  plan->cost = cost_model_.ChainCost(plan->level_cards);
  plan->card_snapshot.clear();
  for (const ConditionSpec& c : q.conditions) {
    plan->card_snapshot.emplace_back(c.relation, est_.RelationCard(c));
  }
}

JoinPlan JoinPlanner::PlanGreedy(const ConjunctiveQuery& q,
                                 const std::vector<size_t>& positives) const {
  JoinPlan plan;
  std::vector<bool> used(q.conditions.size(), false);
  std::vector<bool> bound(static_cast<size_t>(q.num_vars), false);
  double card = 0.0;
  while (plan.order.size() < positives.size()) {
    int best = -1;
    double best_card = std::numeric_limits<double>::infinity();
    for (size_t i : positives) {
      if (used[i]) continue;
      const ConditionSpec& c = q.conditions[i];
      if (!Eligible(c, bound)) continue;
      const double next = plan.order.empty()
                              ? est_.SelectionCard(c)
                              : card * est_.JoinFanout(c, bound);
      if (next < best_card) {  // strict: ties keep the lowest index
        best_card = next;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return Syntactic(q);  // eligibility dead end
    used[static_cast<size_t>(best)] = true;
    plan.order.push_back(static_cast<size_t>(best));
    card = best_card;
    BindVars(q.conditions[static_cast<size_t>(best)], &bound);
  }
  plan.num_positive = plan.order.size();
  plan.planned = true;
  return plan;
}

JoinPlan JoinPlanner::PlanDp(const ConjunctiveQuery& q,
                             const std::vector<size_t>& positives) const {
  // Selinger-style DP over subsets restricted to left-deep chains. State
  // = subset of positives joined so far; we keep the cheapest order per
  // subset (cost = weighted sum of intermediate cardinalities, so prefix
  // optimality holds and the DP is exact for this cost model).
  const size_t m = positives.size();
  const size_t full = (size_t{1} << m) - 1;
  struct State {
    double cost = std::numeric_limits<double>::infinity();
    double card = 0.0;
    std::vector<size_t> order;  // indices into `positives`
  };
  std::vector<State> states(full + 1);
  states[0].cost = 0.0;

  auto bound_of = [&](const std::vector<size_t>& order) {
    std::vector<bool> bound(static_cast<size_t>(q.num_vars), false);
    for (size_t pi : order) BindVars(q.conditions[positives[pi]], &bound);
    return bound;
  };

  for (size_t mask = 0; mask <= full; ++mask) {
    State& s = states[mask];
    if (!std::isfinite(s.cost)) continue;
    const std::vector<bool> bound = bound_of(s.order);
    for (size_t pi = 0; pi < m; ++pi) {
      if (mask & (size_t{1} << pi)) continue;
      const ConditionSpec& c = q.conditions[positives[pi]];
      if (!Eligible(c, bound)) continue;
      const double card = mask == 0 ? est_.SelectionCard(c)
                                    : s.card * est_.JoinFanout(c, bound);
      // Levels >= 1 contribute to ChainCost; level 0 is free (alpha
      // output is paid under any order).
      const double cost = s.cost + (mask == 0 ? 0.0 : card);
      State& t = states[mask | (size_t{1} << pi)];
      if (cost < t.cost ||
          (cost == t.cost && !t.order.empty() &&
           std::lexicographical_compare(s.order.begin(), s.order.end(),
                                        t.order.begin(), t.order.end()))) {
        t.cost = cost;
        t.card = card;
        t.order = s.order;
        t.order.push_back(pi);
      }
    }
  }
  if (!std::isfinite(states[full].cost)) return Syntactic(q);
  JoinPlan plan;
  for (size_t pi : states[full].order) plan.order.push_back(positives[pi]);
  plan.num_positive = plan.order.size();
  plan.planned = true;
  return plan;
}

JoinPlan JoinPlanner::Plan(const ConjunctiveQuery& q) const {
  std::vector<size_t> positives;
  double total_card = 0.0;
  for (size_t i = 0; i < q.conditions.size(); ++i) {
    if (!q.conditions[i].negated) positives.push_back(i);
    total_card += est_.RelationCard(q.conditions[i]);
  }
  JoinPlan plan;
  if (!options_.enable || positives.size() < 2 ||
      total_card < options_.min_card) {
    plan = Syntactic(q);
  } else {
    plan = positives.size() <= options_.dp_max_conditions
               ? PlanDp(q, positives)
               : PlanGreedy(q, positives);
    if (plan.planned) {
      // Negated CEs run after all positives, in textual order (their
      // relative order is semantically free; textual keeps the network
      // shape stable). The eligibility dead-end fallback is already a
      // complete syntactic order.
      for (size_t i = 0; i < q.conditions.size(); ++i) {
        if (q.conditions[i].negated) plan.order.push_back(i);
      }
    }
  }
  Finish(q, &plan);
  return plan;
}

bool JoinPlanner::NeedsReplan(const JoinPlan& plan) const {
  if (!options_.enable) return false;
  for (const auto& [rel, snap] : plan.card_snapshot) {
    const RelationStats* r =
        est_.stats() == nullptr ? nullptr : est_.stats()->Get(rel);
    if (r == nullptr) continue;
    const double now = static_cast<double>(r->cardinality()) + 1.0;
    const double then = snap + 1.0;
    const double ratio = now > then ? now / then : then / now;
    if (ratio >= options_.replan_drift) return true;
  }
  return false;
}

}  // namespace prodb
