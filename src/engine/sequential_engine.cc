#include "engine/sequential_engine.h"

namespace prodb {

SequentialEngine::SequentialEngine(Catalog* catalog, Matcher* matcher,
                                   SequentialEngineOptions options)
    : wm_(catalog, matcher),
      matcher_(matcher),
      options_(options),
      chooser_(MakeStrategy(options.strategy, &matcher->rules(),
                            options.seed)) {}

Status SequentialEngine::ExecuteActions(const Instantiation& inst,
                                        bool* halted) {
  wm_.BeginBatch();
  Status st = ExecuteActionsBuffered(inst, halted);
  Status commit = wm_.CommitBatch();
  return st.ok() ? commit : st;
}

Status SequentialEngine::ExecuteActionsBuffered(const Instantiation& inst,
                                                bool* halted) {
  const Rule& rule =
      matcher_->rules()[static_cast<size_t>(inst.rule_index)];
  // `modify` may move a matched tuple; later actions referring to the
  // same CE must see the current id.
  std::vector<TupleId> current = inst.tuple_ids;
  std::vector<Tuple> current_tuples = inst.tuples;

  for (const CompiledAction& action : rule.actions) {
    switch (action.kind) {
      case ActionKind::kMake: {
        PRODB_RETURN_IF_ERROR(
            wm_.Insert(action.target,
                       BuildMakeTuple(action, inst.binding)));
        break;
      }
      case ActionKind::kRemove: {
        size_t ce = static_cast<size_t>(action.ce_index);
        const std::string& cls = rule.lhs.conditions[ce].relation;
        PRODB_RETURN_IF_ERROR(wm_.Delete(cls, current[ce]));
        break;
      }
      case ActionKind::kModify: {
        size_t ce = static_cast<size_t>(action.ce_index);
        const std::string& cls = rule.lhs.conditions[ce].relation;
        Tuple next =
            BuildModifyTuple(action, current_tuples[ce], inst.binding);
        TupleId new_id;
        PRODB_RETURN_IF_ERROR(wm_.Modify(cls, current[ce], next, &new_id));
        current[ce] = new_id;
        current_tuples[ce] = std::move(next);
        break;
      }
      case ActionKind::kHalt:
        *halted = true;
        return Status::OK();
      case ActionKind::kCall: {
        std::vector<Value> args;
        args.reserve(action.args.size());
        for (const CompiledValue& cv : action.args) {
          args.push_back(cv.Resolve(inst.binding));
        }
        PRODB_RETURN_IF_ERROR(functions_.Invoke(action.target, args));
        break;
      }
    }
  }
  return Status::OK();
}

Status SequentialEngine::Step(bool* fired, EngineRunResult* result) {
  *fired = false;
  Instantiation inst;
  while (matcher_->conflict_set().Take(chooser_, &inst)) {
    // Validate: the matcher keeps the set consistent, but a caller could
    // have mutated relations behind our back; be defensive.
    bool stale = false;
    const Rule& rule =
        matcher_->rules()[static_cast<size_t>(inst.rule_index)];
    for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
      if (rule.lhs.conditions[ce].negated) continue;
      Relation* rel = wm_.catalog()->Get(rule.lhs.conditions[ce].relation);
      Tuple t;
      Status st = rel == nullptr ? Status::NotFound("relation dropped")
                                 : rel->Get(inst.tuple_ids[ce], &t);
      if (!st.ok() || t != inst.tuples[ce]) {
        stale = true;
        break;
      }
    }
    if (stale) {
      ++result->stale_skipped;
      continue;
    }
    bool halted = false;
    PRODB_RETURN_IF_ERROR(ExecuteActions(inst, &halted));
    firing_log_.push_back(inst.rule_name);
    ++result->firings;
    *fired = true;
    if (halted) result->halted = true;
    return Status::OK();
  }
  return Status::OK();
}

Status SequentialEngine::Run(EngineRunResult* result) {
  *result = EngineRunResult{};
  for (;;) {
    if (result->firings >= options_.max_firings) {
      result->exhausted = true;
      return Status::OK();
    }
    bool fired = false;
    PRODB_RETURN_IF_ERROR(Step(&fired, result));
    if (!fired || result->halted) return Status::OK();
  }
}

}  // namespace prodb
