#ifndef PRODB_ENGINE_ACTIONS_H_
#define PRODB_ENGINE_ACTIONS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "lang/rule.h"

namespace prodb {

/// Builds the tuple a `make` action produces under a binding.
Tuple BuildMakeTuple(const CompiledAction& action, const Binding& binding);

/// Builds the post-image of a `modify` action: `old` with masked
/// attributes replaced by the action's values resolved under `binding`.
Tuple BuildModifyTuple(const CompiledAction& action, const Tuple& old,
                       const Binding& binding);

/// Host function invoked by `call` actions (§3.1 lists call among the
/// possible statements; OPS5 uses it for I/O and external procedures).
using ExternalFn = std::function<Status(const std::vector<Value>& args)>;

/// Name -> ExternalFn registry shared by the engines.
class FunctionRegistry {
 public:
  void Register(const std::string& name, ExternalFn fn) {
    fns_[name] = std::move(fn);
  }
  Status Invoke(const std::string& name,
                const std::vector<Value>& args) const {
    auto it = fns_.find(name);
    if (it == fns_.end()) {
      return Status::NotFound("no function '" + name + "' registered");
    }
    return it->second(args);
  }
  bool Has(const std::string& name) const { return fns_.count(name) > 0; }

 private:
  std::map<std::string, ExternalFn> fns_;
};

}  // namespace prodb

#endif  // PRODB_ENGINE_ACTIONS_H_
