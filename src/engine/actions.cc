#include "engine/actions.h"

namespace prodb {

Tuple BuildMakeTuple(const CompiledAction& action, const Binding& binding) {
  std::vector<Value> values;
  values.reserve(action.values.size());
  for (const CompiledValue& cv : action.values) {
    values.push_back(cv.Resolve(binding));
  }
  return Tuple(std::move(values));
}

Tuple BuildModifyTuple(const CompiledAction& action, const Tuple& old,
                       const Binding& binding) {
  std::vector<Value> values = old.values();
  for (size_t i = 0; i < action.set_mask.size() && i < values.size(); ++i) {
    if (action.set_mask[i]) {
      values[i] = action.values[i].Resolve(binding);
    }
  }
  return Tuple(std::move(values));
}

}  // namespace prodb
