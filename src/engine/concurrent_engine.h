#ifndef PRODB_ENGINE_CONCURRENT_ENGINE_H_
#define PRODB_ENGINE_CONCURRENT_ENGINE_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "engine/actions.h"
#include "engine/strategy.h"
#include "engine/working_memory.h"
#include "txn/transaction.h"

namespace prodb {

struct ConcurrentEngineOptions {
  size_t workers = 4;
  StrategyKind strategy = StrategyKind::kFifo;
  uint64_t seed = 42;
  size_t max_firings = 1u << 20;
  /// Retries before an instantiation repeatedly chosen as deadlock
  /// victim is parked back for another worker.
  size_t max_retries = 64;
};

struct ConcurrentRunResult {
  size_t firings = 0;
  size_t stale_skipped = 0;
  size_t deadlock_aborts = 0;
  bool halted = false;
  bool exhausted = false;
};

/// Concurrent transactional execution of the conflict set (§5).
///
/// Each instantiation runs as a transaction on worker threads:
///   1. acquire read locks on the matched WM tuples; relation-level read
///      locks for negated CEs (negative dependence, §5.2);
///   2. validate the instantiation against current WM (a concurrently
///      committed transaction may have deleted or changed its tuples —
///      the ∆del of §5.2); stale instantiations are discarded;
///   3. execute the RHS under write locks, buffering the transaction's
///      whole ∆ins/∆del into a ChangeSet (relations mutate eagerly, the
///      matcher sees nothing yet);
///   4. hand the ChangeSet to the matcher in one OnBatch, then commit and
///      release locks — the paper's rule that "a production should not
///      commit its RHS actions and release its locks until the triggered
///      maintenance process updates the affected COND relations as well"
///      is structural: maintenance sits between the last RHS action and
///      the commit point, and sees the entire ∆ at once;
///   5. on deadlock (Status::Deadlock from the lock manager), apply the
///      *inverse* ChangeSet to the relations (the matcher was never
///      notified, so compensation is purely relational), release, and
///      retry the instantiation.
///
/// The resulting schedule is serializable by strict 2PL; tests verify
/// that the committed firing sequence replayed serially reproduces the
/// same final WM state.
class ConcurrentEngine {
 public:
  ConcurrentEngine(Catalog* catalog, Matcher* matcher, LockManager* locks,
                   ConcurrentEngineOptions options = {});

  /// Loads a WM element outside any transaction (initial state).
  Status Insert(const std::string& cls, const Tuple& t,
                TupleId* id = nullptr) {
    return wm_.Insert(cls, t, id);
  }

  /// Drains the conflict set to quiescence with `workers` threads.
  Status Run(ConcurrentRunResult* result);

  FunctionRegistry& functions() { return functions_; }
  WorkingMemory& working_memory() { return wm_; }

  /// The transaction manager the engine's instantiations run under.
  /// Exposed so the serving layer can map client sessions onto the same
  /// transaction machinery (2PL locks + WAL commit records) the engine
  /// uses — server batches and engine firings interleave serializably.
  TxnManager& txn_manager() { return txn_manager_; }

  /// Rule names in commit order (the equivalent serial schedule).
  std::vector<std::string> commit_log() const;

 private:
  /// Runs one instantiation as a transaction. Outcomes:
  ///   *fired    — committed;
  ///   *stale    — validation failed, discarded;
  ///   *halted   — a (halt) action committed;
  /// Status::Deadlock — aborted and compensated; caller retries.
  Status RunInstantiation(const Instantiation& inst, bool* fired,
                          bool* stale, bool* halted);

  Status Worker(ConcurrentRunResult* result);

  WorkingMemory wm_;
  Matcher* matcher_;
  TxnManager txn_manager_;
  ConcurrentEngineOptions options_;
  FunctionRegistry functions_;

  mutable std::mutex mu_;
  std::vector<std::string> commit_log_;
  std::atomic<size_t> firings_{0};
  std::atomic<bool> halted_{false};
  std::atomic<int> active_workers_{0};
};

}  // namespace prodb

#endif  // PRODB_ENGINE_CONCURRENT_ENGINE_H_
