#ifndef PRODB_ENGINE_SEQUENTIAL_ENGINE_H_
#define PRODB_ENGINE_SEQUENTIAL_ENGINE_H_

#include <string>
#include <vector>

#include "engine/actions.h"
#include "engine/strategy.h"
#include "engine/working_memory.h"

namespace prodb {

struct SequentialEngineOptions {
  StrategyKind strategy = StrategyKind::kFifo;
  uint64_t seed = 42;
  /// Safety valve against non-terminating programs.
  size_t max_firings = 1u << 20;
};

struct EngineRunResult {
  size_t firings = 0;
  size_t stale_skipped = 0;   // instantiations invalidated before firing
  bool halted = false;        // a (halt) action fired
  bool exhausted = false;     // hit max_firings
};

/// The serial OPS5 recognize-act cycle (§2.1, §5.1): repeatedly Select
/// one instantiation from the conflict set, Act (run its RHS), let the
/// triggered maintenance update the conflict set, and loop until the set
/// empties, a (halt) fires, or max_firings is reached.
///
/// Fired instantiations are removed from the conflict set, which gives
/// OPS5-style refraction: the same rule re-fires only when new matching
/// WM activity re-derives an instantiation.
class SequentialEngine {
 public:
  /// `matcher` must already hold the program's rules.
  SequentialEngine(Catalog* catalog, Matcher* matcher,
                   SequentialEngineOptions options = {});

  /// Loads a WM element (outside any cycle; triggers matching).
  Status Insert(const std::string& cls, const Tuple& t,
                TupleId* id = nullptr) {
    return wm_.Insert(cls, t, id);
  }

  /// Runs recognize-act to quiescence.
  Status Run(EngineRunResult* result);

  /// Fires exactly one instantiation if available; *fired reports it.
  Status Step(bool* fired, EngineRunResult* result);

  FunctionRegistry& functions() { return functions_; }
  WorkingMemory& working_memory() { return wm_; }

  /// Names of rules in firing order (tests & the equivalence checks).
  const std::vector<std::string>& firing_log() const { return firing_log_; }

 private:
  /// Runs the RHS inside a WM batch: relation mutations apply eagerly,
  /// and the matcher receives the firing's whole ∆ in one OnBatch at the
  /// end (the atomic-RHS view §5.2's commit rule requires).
  Status ExecuteActions(const Instantiation& inst, bool* halted);
  Status ExecuteActionsBuffered(const Instantiation& inst, bool* halted);

  WorkingMemory wm_;
  Matcher* matcher_;
  SequentialEngineOptions options_;
  std::function<int(const std::vector<Instantiation>&)> chooser_;
  FunctionRegistry functions_;
  std::vector<std::string> firing_log_;
};

}  // namespace prodb

#endif  // PRODB_ENGINE_SEQUENTIAL_ENGINE_H_
