#include "engine/working_memory.h"

namespace prodb {

Status WorkingMemory::Insert(const std::string& cls, const Tuple& t,
                             TupleId* id) {
  Relation* rel = catalog_->Get(cls);
  if (rel == nullptr) return Status::NotFound("class " + cls);
  TupleId local;
  if (id == nullptr) id = &local;
  PRODB_RETURN_IF_ERROR(rel->Insert(t, id));
  return matcher_->OnInsert(cls, *id, t);
}

Status WorkingMemory::Delete(const std::string& cls, TupleId id) {
  Relation* rel = catalog_->Get(cls);
  if (rel == nullptr) return Status::NotFound("class " + cls);
  Tuple old;
  PRODB_RETURN_IF_ERROR(rel->Get(id, &old));
  PRODB_RETURN_IF_ERROR(rel->Delete(id));
  return matcher_->OnDelete(cls, id, old);
}

Status WorkingMemory::Modify(const std::string& cls, TupleId id,
                             const Tuple& t, TupleId* new_id) {
  // Delete-then-insert, per §3.1 ("modifications are treated as
  // deletions followed by insertions").
  PRODB_RETURN_IF_ERROR(Delete(cls, id));
  TupleId local;
  return Insert(cls, t, new_id == nullptr ? &local : new_id);
}

}  // namespace prodb
