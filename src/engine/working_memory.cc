#include "engine/working_memory.h"

namespace prodb {

Status WorkingMemory::ForceLog() {
  // Auto-commit durability point for the sequential path: WM mutations
  // outside a Transaction carry txn id 0 and are redone at restart
  // whenever they are intact in the log, so "committed" means "flushed".
  // Called after matcher maintenance so the same flush also hardens any
  // paged matcher bookkeeping (DBMS-Rete token memories) the batch
  // touched; group commit makes this one flush per batch, not per record.
  if (LogManager* wal = catalog_->wal()) {
    return wal->Flush();
  }
  return Status::OK();
}

Status WorkingMemory::ApplyToRelation(Delta* d) {
  Relation* rel = catalog_->Get(d->relation);
  if (rel == nullptr) return Status::NotFound("class " + d->relation);
  if (d->is_insert()) {
    // An insert that already carries an id is a restore (e.g. the
    // compensating half of an Inverse()): the tuple must come back under
    // its original identity, not a fresh one.
    if (d->id == Delta::kUnassigned) return rel->Insert(d->tuple, &d->id);
    return rel->Restore(d->id, d->tuple);
  }
  // Fetch the old value so the matcher sees what was deleted; callers may
  // record deletes by id alone.
  PRODB_RETURN_IF_ERROR(rel->Get(d->id, &d->tuple));
  return rel->Delete(d->id);
}

Status WorkingMemory::Insert(const std::string& cls, const Tuple& t,
                             TupleId* id) {
  mutated_ = true;
  Delta d;
  d.kind = DeltaKind::kInsert;
  d.relation = cls;
  d.tuple = t;
  PRODB_RETURN_IF_ERROR(ApplyToRelation(&d));
  if (id != nullptr) *id = d.id;
  if (in_batch_) {
    pending_.AddInsert(cls, d.tuple, d.id);
    return Status::OK();
  }
  ChangeSet one;
  one.AddInsert(cls, d.tuple, d.id);
  PRODB_RETURN_IF_ERROR(matcher_->OnBatch(one));
  return ForceLog();
}

Status WorkingMemory::Delete(const std::string& cls, TupleId id) {
  mutated_ = true;
  Delta d;
  d.kind = DeltaKind::kDelete;
  d.relation = cls;
  d.id = id;
  PRODB_RETURN_IF_ERROR(ApplyToRelation(&d));
  if (in_batch_) {
    pending_.AddDelete(cls, id, d.tuple);
    return Status::OK();
  }
  ChangeSet one;
  one.AddDelete(cls, id, d.tuple);
  PRODB_RETURN_IF_ERROR(matcher_->OnBatch(one));
  return ForceLog();
}

Status WorkingMemory::Modify(const std::string& cls, TupleId id,
                             const Tuple& t, TupleId* new_id) {
  mutated_ = true;
  // Delete-then-insert, per §3.1 ("modifications are treated as
  // deletions followed by insertions"). The pair is tagged as one logical
  // modify, and it propagates even when the new tuple equals the old one:
  // OPS5 refraction counts the modify as fresh WM activity.
  Relation* rel = catalog_->Get(cls);
  if (rel == nullptr) return Status::NotFound("class " + cls);
  Tuple old;
  PRODB_RETURN_IF_ERROR(rel->Get(id, &old));
  PRODB_RETURN_IF_ERROR(rel->Delete(id));
  TupleId nid;
  Status st = rel->Insert(t, &nid);
  if (!st.ok()) {
    // The delete already landed but the matcher was never told about it.
    // Put the tuple back under its original id so relation and matcher
    // agree again; if even the restore fails, the insert error still
    // wins — it is what the caller can act on.
    (void)rel->Restore(id, old);
    return st;
  }
  if (new_id != nullptr) *new_id = nid;
  if (in_batch_) {
    pending_.AddModify(cls, id, old, t, nid);
    return Status::OK();
  }
  ChangeSet pair;
  pair.AddModify(cls, id, old, t, nid);
  PRODB_RETURN_IF_ERROR(matcher_->OnBatch(pair));
  return ForceLog();
}

void WorkingMemory::BeginBatch() {
  in_batch_ = true;
  pending_.clear();
}

Status WorkingMemory::CommitBatch() {
  in_batch_ = false;
  if (pending_.empty()) return Status::OK();
  ChangeSet batch;
  std::swap(batch, pending_);
  PRODB_RETURN_IF_ERROR(matcher_->OnBatch(batch));
  return ForceLog();
}

Status WorkingMemory::ConfigureSharding(const ShardingOptions& options) {
  if (mutated_) {
    // The shard map fixes delta routing, and the matcher partitioned its
    // own state under the options it was built with; re-routing after
    // mutations have flowed would silently diverge the two halves.
    return Status::InvalidArgument(
        "ConfigureSharding must be called before any WM mutation, "
        "not mid-stream");
  }
  shard_map_ = ShardMap(options);
  pool_.reset();
  if (options.enabled()) {
    size_t threads =
        options.threads == 0 ? options.num_shards : options.threads;
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  }
  return Status::OK();
}

Status WorkingMemory::Apply(ChangeSet* cs) {
  mutated_ = true;
  // Relations first — the matcher is entitled to see the post-batch WM
  // state (§5.2: maintenance runs on the transaction's whole ∆).
  if (pool_ != nullptr && catalog_->wal() != nullptr && cs->size() > 1) {
    // Sharding is configured but a WAL is attached: the parallel path is
    // gated off (log-record ordering is a serial concern), and that must
    // be observable rather than silent.
    matcher_->NoteShardedApplySerialized();
  }
  if (pool_ != nullptr && catalog_->wal() == nullptr && cs->size() > 1) {
    // Class-sharded parallel apply: one relation lives in one shard, so
    // within-relation delta order (which fixes insert-id assignment) is
    // the serial order; cross-relation operations touch disjoint
    // relations and commute.
    std::vector<std::vector<size_t>> by_shard(shard_map_.num_shards());
    for (size_t i = 0; i < cs->size(); ++i) {
      by_shard[shard_map_.ShardOfClass((*cs)[i].relation)].push_back(i);
    }
    std::vector<Status> shard_status(by_shard.size());
    pool_->ParallelFor(by_shard.size(), [&](size_t s) {
      for (size_t i : by_shard[s]) {
        Status st = ApplyToRelation(&(*cs)[i]);
        if (!st.ok()) {
          shard_status[s] = st;
          return;
        }
      }
    });
    for (const Status& st : shard_status) {
      PRODB_RETURN_IF_ERROR(st);
    }
  } else {
    for (size_t i = 0; i < cs->size(); ++i) {
      PRODB_RETURN_IF_ERROR(ApplyToRelation(&(*cs)[i]));
    }
  }
  PRODB_RETURN_IF_ERROR(matcher_->OnBatch(*cs));
  return ForceLog();
}

}  // namespace prodb
