#include "engine/strategy.h"

#include <memory>

#include "common/rng.h"

namespace prodb {

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFifo: return "fifo";
    case StrategyKind::kRecency: return "recency";
    case StrategyKind::kPriority: return "priority";
    case StrategyKind::kRandom: return "random";
  }
  return "?";
}

std::function<int(const std::vector<Instantiation>&)> MakeStrategy(
    StrategyKind kind, const std::vector<Rule>* rules, uint64_t seed) {
  switch (kind) {
    case StrategyKind::kFifo:
      return [](const std::vector<Instantiation>& items) {
        int best = 0;
        for (size_t i = 1; i < items.size(); ++i) {
          if (items[i].recency <
              items[static_cast<size_t>(best)].recency) {
            best = static_cast<int>(i);
          }
        }
        return items.empty() ? -1 : best;
      };
    case StrategyKind::kRecency:
      return [](const std::vector<Instantiation>& items) {
        int best = 0;
        for (size_t i = 1; i < items.size(); ++i) {
          if (items[i].recency >
              items[static_cast<size_t>(best)].recency) {
            best = static_cast<int>(i);
          }
        }
        return items.empty() ? -1 : best;
      };
    case StrategyKind::kPriority:
      return [rules](const std::vector<Instantiation>& items) {
        if (items.empty()) return -1;
        int best = 0;
        auto prio = [&](const Instantiation& inst) {
          return (*rules)[static_cast<size_t>(inst.rule_index)].priority;
        };
        for (size_t i = 1; i < items.size(); ++i) {
          const Instantiation& a = items[i];
          const Instantiation& b = items[static_cast<size_t>(best)];
          if (prio(a) > prio(b) ||
              (prio(a) == prio(b) && a.recency > b.recency)) {
            best = static_cast<int>(i);
          }
        }
        return best;
      };
    case StrategyKind::kRandom: {
      auto rng = std::make_shared<Rng>(seed);
      return [rng](const std::vector<Instantiation>& items) {
        if (items.empty()) return -1;
        return static_cast<int>(rng->Uniform(items.size()));
      };
    }
  }
  return [](const std::vector<Instantiation>&) { return -1; };
}

}  // namespace prodb
