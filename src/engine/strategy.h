#ifndef PRODB_ENGINE_STRATEGY_H_
#define PRODB_ENGINE_STRATEGY_H_

#include <functional>
#include <vector>

#include "lang/rule.h"
#include "match/conflict_set.h"

namespace prodb {

/// Conflict-resolution strategies for the Select step (§2.1: "one may
/// use user-defined priorities or, in general, order rules according to
/// some static or dynamic criteria").
enum class StrategyKind {
  kFifo,      // oldest instantiation first
  kRecency,   // newest instantiation first (OPS5's LEX leans this way)
  kPriority,  // highest rule priority, recency as tie-break
  kRandom,    // seeded uniform choice (models the paper's "arbitrary"
              // selection in §5.2)
};

const char* StrategyName(StrategyKind kind);

/// Builds a chooser usable with ConflictSet::Take. `rules` backs the
/// priority strategy; `seed` feeds the random strategy (deterministic).
std::function<int(const std::vector<Instantiation>&)> MakeStrategy(
    StrategyKind kind, const std::vector<Rule>* rules, uint64_t seed = 42);

}  // namespace prodb

#endif  // PRODB_ENGINE_STRATEGY_H_
