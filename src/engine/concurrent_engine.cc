#include "engine/concurrent_engine.h"

#include <chrono>
#include <thread>

#include "common/rng.h"
#include "db/executor.h"

namespace prodb {

ConcurrentEngine::ConcurrentEngine(Catalog* catalog, Matcher* matcher,
                                   LockManager* locks,
                                   ConcurrentEngineOptions options)
    : wm_(catalog, matcher),
      matcher_(matcher),
      txn_manager_(catalog, locks),
      options_(options) {}

Status ConcurrentEngine::RunInstantiation(const Instantiation& inst,
                                          bool* fired, bool* stale,
                                          bool* halted) {
  *fired = false;
  *stale = false;
  const Rule& rule =
      matcher_->rules()[static_cast<size_t>(inst.rule_index)];
  auto txn = txn_manager_.Begin();

  // The transaction's whole ∆ins/∆del, built up as the RHS executes.
  // Relations are mutated eagerly (under write locks); the matcher sees
  // nothing until the single OnBatch at the commit point.
  ChangeSet delta;

  // Compensate-and-release on abort. The matcher was never told about
  // this transaction's changes (maintenance is deferred to the commit
  // point), so compensation is purely relational: apply the inverse
  // ChangeSet, then release the locks. Undone deletes go through Restore
  // so tuples come back under their original ids — conflict-set entries
  // recorded before this transaction still reference those ids, and a
  // value-only re-insert would strand them on ids that no longer exist.
  // Compensation is best-effort: one failed step (e.g. an I/O error on a
  // paged relation) must not abandon the remaining steps, and the locks
  // are released no matter what — a transaction that can neither commit
  // nor fully compensate must not also wedge every other transaction.
  auto abort_with = [&](Status st) -> Status {
    ChangeSet inverse = delta.Inverse();
    Status comp_error;
    {
      // Compensation records stay attributed to the aborting transaction
      // so restart recovery skips them together with the forward records
      // (no commit record will ever exist for this id).
      WalTxnScope wal_scope(txn->id());
      for (size_t i = 0; i < inverse.size(); ++i) {
        Delta& d = inverse[i];
        Relation* rel = wm_.catalog()->Get(d.relation);
        Status s = rel == nullptr
                       ? Status::NotFound("relation " + d.relation)
                       : (d.is_insert() ? rel->Restore(d.id, d.tuple)
                                        : rel->Delete(d.id));
        if (!s.ok() && comp_error.ok()) comp_error = s;
      }
    }
    if (LogManager* wal = wm_.catalog()->wal()) {
      LogRecord rec;
      rec.type = LogRecordType::kAbort;
      rec.txn_id = txn->id();
      wal->Append(rec);
      // Compensation restored pre-transaction state; the dirtied pages
      // may reach disk again.
      wm_.catalog()->buffer_pool()->ReleaseTxnPages(txn->id());
    }
    txn_manager_.lock_manager()->ReleaseAll(txn->id());
    if (!comp_error.ok()) return comp_error;
    return st;
  };

  // 1. Read locks: tuple-level for positive CEs, relation-level for
  //    negated CEs (negative dependence must block inserters, §5.2).
  for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
    const ConditionSpec& cond = rule.lhs.conditions[ce];
    Status st = cond.negated
                    ? txn->ReadLockRelation(cond.relation)
                    : txn->ReadLock(cond.relation, inst.tuple_ids[ce]);
    if (!st.ok()) return abort_with(st);
  }

  // 2. Validate against current WM: tuples must still exist unchanged,
  //    negated CEs must still have no witness.
  for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
    const ConditionSpec& cond = rule.lhs.conditions[ce];
    Relation* rel = wm_.catalog()->Get(cond.relation);
    if (rel == nullptr) {
      *stale = true;
      return abort_with(Status::OK());
    }
    if (cond.negated) {
      bool exists = false;
      Status st = rel->Scan([&](TupleId, const Tuple& t) {
        if (!exists) {
          Binding b = inst.binding;
          if (TupleConsistent(cond, t, &b)) exists = true;
        }
        return Status::OK();
      });
      if (!st.ok()) return abort_with(st);
      if (exists) {
        *stale = true;
        return abort_with(Status::OK());
      }
    } else {
      Tuple t;
      Status st = rel->Get(inst.tuple_ids[ce], &t);
      if (!st.ok() || t != inst.tuples[ce]) {
        *stale = true;
        return abort_with(Status::OK());
      }
    }
  }

  // 3. RHS actions under write locks, recorded into the ChangeSet.
  std::vector<TupleId> current = inst.tuple_ids;
  std::vector<Tuple> current_tuples = inst.tuples;
  bool halt_requested = false;
  for (const CompiledAction& action : rule.actions) {
    switch (action.kind) {
      case ActionKind::kMake: {
        Tuple t = BuildMakeTuple(action, inst.binding);
        TupleId id;
        Status st = txn->Insert(action.target, t, &id);
        if (!st.ok()) return abort_with(st);
        delta.AddInsert(action.target, t, id);
        break;
      }
      case ActionKind::kRemove: {
        size_t ce = static_cast<size_t>(action.ce_index);
        const std::string& cls = rule.lhs.conditions[ce].relation;
        Status st = txn->Delete(cls, current[ce]);
        if (!st.ok()) return abort_with(st);
        delta.AddDelete(cls, current[ce], current_tuples[ce]);
        break;
      }
      case ActionKind::kModify: {
        size_t ce = static_cast<size_t>(action.ce_index);
        const std::string& cls = rule.lhs.conditions[ce].relation;
        Tuple next =
            BuildModifyTuple(action, current_tuples[ce], inst.binding);
        Status st = txn->Delete(cls, current[ce]);
        if (!st.ok()) return abort_with(st);
        TupleId id;
        st = txn->Insert(cls, next, &id);
        if (!st.ok()) return abort_with(st);
        delta.AddModify(cls, current[ce], current_tuples[ce], next, id);
        current[ce] = id;
        current_tuples[ce] = std::move(next);
        break;
      }
      case ActionKind::kHalt:
        halt_requested = true;
        break;
      case ActionKind::kCall: {
        std::vector<Value> args;
        for (const CompiledValue& cv : action.args) {
          args.push_back(cv.Resolve(inst.binding));
        }
        Status st = functions_.Invoke(action.target, args);
        if (!st.ok()) return abort_with(st);
        break;
      }
    }
  }

  // 4. Maintenance, then commit: the matcher receives the transaction's
  //    whole ∆ in one OnBatch *before* locks release — the paper's rule
  //    that "a production should not commit its RHS actions and release
  //    its locks until the triggered maintenance process updates the
  //    affected COND relations as well" (§5.2), made structural.
  if (!delta.empty()) {
    Status st = matcher_->OnBatch(delta);
    if (!st.ok()) {
      // Maintenance failed mid-batch: matcher state cannot be unwound
      // cleanly, so surface the error (relations keep the committed ∆).
      // The page holds must still drop or the pool wedges permanently.
      if (wm_.catalog()->wal() != nullptr) {
        wm_.catalog()->buffer_pool()->ReleaseTxnPages(txn->id());
      }
      txn_manager_.lock_manager()->ReleaseAll(txn->id());
      return st;
    }
  }
  {
    // Commit point: force the log through our commit record. On failure
    // the transaction is still active — compensate like any other abort.
    Status st = txn_manager_.Commit(txn.get());
    if (!st.ok()) return abort_with(st);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    commit_log_.push_back(inst.rule_name);
  }
  *fired = true;
  if (halt_requested) *halted = true;
  return Status::OK();
}

Status ConcurrentEngine::Worker(ConcurrentRunResult* result) {
  auto chooser =
      MakeStrategy(options_.strategy, &matcher_->rules(), options_.seed);
  Rng backoff(options_.seed ^ 0x9e3779b97f4a7c15ULL);
  for (;;) {
    if (halted_.load() || firings_.load() >= options_.max_firings) {
      return Status::OK();
    }
    Instantiation inst;
    bool got = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      got = matcher_->conflict_set().Take(chooser, &inst);
      if (got) {
        active_workers_.fetch_add(1);
      } else if (active_workers_.load() == 0) {
        return Status::OK();  // quiescent: nothing queued, nobody working
      }
    }
    if (!got) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    bool fired = false, stale = false, halted = false;
    Status st = RunInstantiation(inst, &fired, &stale, &halted);
    if (st.IsDeadlock()) {
      // Victim: changes were compensated; requeue, then stop counting as
      // active (requeue-before-decrement keeps idle workers from
      // observing a spuriously quiescent system).
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++result->deadlock_aborts;
      }
      matcher_->conflict_set().Add(inst);
      active_workers_.fetch_sub(1);
      std::this_thread::sleep_for(
          std::chrono::microseconds(50 + backoff.Uniform(500)));
      continue;
    }
    if (!st.ok()) {
      active_workers_.fetch_sub(1);
      return st;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stale) ++result->stale_skipped;
      if (fired) {
        ++result->firings;
        firings_.fetch_add(1);
      }
      if (halted) {
        result->halted = true;
        halted_.store(true);
      }
    }
    active_workers_.fetch_sub(1);
  }
}

Status ConcurrentEngine::Run(ConcurrentRunResult* result) {
  *result = ConcurrentRunResult{};
  halted_.store(false);
  firings_.store(0);
  active_workers_.store(0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    commit_log_.clear();
  }

  std::vector<std::thread> threads;
  std::vector<Status> statuses(options_.workers, Status::OK());
  threads.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    threads.emplace_back(
        [this, result, &statuses, i] { statuses[i] = Worker(result); });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& st : statuses) {
    PRODB_RETURN_IF_ERROR(st);
  }
  if (firings_.load() >= options_.max_firings) result->exhausted = true;
  return Status::OK();
}

std::vector<std::string> ConcurrentEngine::commit_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return commit_log_;
}

}  // namespace prodb
