#ifndef PRODB_ENGINE_WORKING_MEMORY_H_
#define PRODB_ENGINE_WORKING_MEMORY_H_

#include <string>

#include "common/status.h"
#include "db/catalog.h"
#include "match/matcher.h"

namespace prodb {

/// Facade coupling WM relations to a matcher: every mutation of working
/// memory goes through here so the matcher sees each insertion and
/// deletion exactly once ("changes will trigger the maintenance
/// process", §5). Modifications are a deletion followed by an insertion,
/// as the paper (and OPS5) prescribe.
class WorkingMemory {
 public:
  WorkingMemory(Catalog* catalog, Matcher* matcher)
      : catalog_(catalog), matcher_(matcher) {}

  Status Insert(const std::string& cls, const Tuple& t,
                TupleId* id = nullptr);
  Status Delete(const std::string& cls, TupleId id);
  Status Modify(const std::string& cls, TupleId id, const Tuple& t,
                TupleId* new_id = nullptr);

  Catalog* catalog() const { return catalog_; }
  Matcher* matcher() const { return matcher_; }

 private:
  Catalog* catalog_;
  Matcher* matcher_;
};

}  // namespace prodb

#endif  // PRODB_ENGINE_WORKING_MEMORY_H_
