#ifndef PRODB_ENGINE_WORKING_MEMORY_H_
#define PRODB_ENGINE_WORKING_MEMORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/change_set.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "db/catalog.h"
#include "match/matcher.h"
#include "match/sharding.h"

namespace prodb {

/// Facade coupling WM relations to a matcher: every mutation of working
/// memory goes through here so the matcher sees each insertion and
/// deletion exactly once ("changes will trigger the maintenance
/// process", §5). Modifications are a deletion followed by an insertion,
/// as the paper (and OPS5) prescribe.
///
/// All mutations flow through ChangeSets. The single-tuple calls are
/// one-element batches; BeginBatch/CommitBatch let a caller (an engine
/// executing a whole RHS, or a bulk loader) accumulate deltas so the
/// matcher receives the entire set in one OnBatch — the §5.2 requirement
/// that maintenance sees a transaction's whole ∆ins/∆del before commit.
/// Relations are mutated eagerly even inside a batch (tuple ids must be
/// assigned and reads must see the writes); only the matcher notification
/// is deferred to CommitBatch.
class WorkingMemory {
 public:
  WorkingMemory(Catalog* catalog, Matcher* matcher)
      : catalog_(catalog), matcher_(matcher) {}

  Status Insert(const std::string& cls, const Tuple& t,
                TupleId* id = nullptr);
  Status Delete(const std::string& cls, TupleId id);
  Status Modify(const std::string& cls, TupleId id, const Tuple& t,
                TupleId* new_id = nullptr);

  /// Starts buffering: subsequent Insert/Delete/Modify apply to relations
  /// immediately but defer matcher notification until CommitBatch.
  /// Batches do not nest.
  void BeginBatch();

  /// Flushes the buffered deltas to the matcher in one OnBatch call and
  /// leaves batch mode. No-op (still leaves batch mode) when empty.
  Status CommitBatch();

  /// Applies an externally built ChangeSet: every delta is applied to its
  /// relation (inserts get their assigned ids written back into *cs,
  /// deletes get the old tuple value filled in), then the matcher is
  /// notified once via OnBatch. Used for bulk loads and for deadlock
  /// compensation (apply the inverse ChangeSet, §5).
  Status Apply(ChangeSet* cs);

  /// Enables sharded batch application: Apply() partitions a multi-delta
  /// ChangeSet by the class shard of each delta and applies the
  /// partitions on a thread pool. Routing is by class only — one
  /// relation maps to exactly one shard, so per-relation apply order
  /// (and insert-id assignment) matches the serial walk. Parallel apply
  /// engages only when no WAL is attached (log-record ordering stays a
  /// serial concern; each such fallback is counted in
  /// MatcherStats::sharded_apply_serialized) and is off by default.
  ///
  /// Must be called before any WM mutation flows through this object:
  /// the shard map fixes how deltas route, and matchers configured with
  /// the same options partition their own state to match — re-routing
  /// mid-stream would silently diverge the two. A call after the first
  /// mutation returns InvalidArgument and changes nothing.
  Status ConfigureSharding(const ShardingOptions& options);

  bool in_batch() const { return in_batch_; }
  /// Deltas buffered since BeginBatch (engines inspect this to build
  /// compensation sets).
  const ChangeSet& pending() const { return pending_; }

  Catalog* catalog() const { return catalog_; }
  Matcher* matcher() const { return matcher_; }

 private:
  /// Applies one delta to its relation, resolving insert ids and delete
  /// tuple values in place.
  Status ApplyToRelation(Delta* d);

  /// Flushes the catalog's WAL, if any — the auto-commit durability
  /// point for mutations made outside a Transaction.
  Status ForceLog();

  Catalog* catalog_;
  Matcher* matcher_;
  bool in_batch_ = false;
  // Any mutation has flowed through — ConfigureSharding is now an error.
  bool mutated_ = false;
  ChangeSet pending_;
  ShardMap shard_map_;
  // Workers for sharded Apply (absent when sharding is off or
  // single-threaded).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace prodb

#endif  // PRODB_ENGINE_WORKING_MEMORY_H_
