file(REMOVE_RECURSE
  "CMakeFiles/bench_dbms_rete.dir/bench_dbms_rete.cc.o"
  "CMakeFiles/bench_dbms_rete.dir/bench_dbms_rete.cc.o.d"
  "bench_dbms_rete"
  "bench_dbms_rete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dbms_rete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
