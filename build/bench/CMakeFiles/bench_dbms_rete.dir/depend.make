# Empty dependencies file for bench_dbms_rete.
# This may be replaced when dependencies are built.
