# Empty compiler generated dependencies file for bench_join_recompute.
# This may be replaced when dependencies are built.
