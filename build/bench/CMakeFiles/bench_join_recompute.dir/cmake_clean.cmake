file(REMOVE_RECURSE
  "CMakeFiles/bench_join_recompute.dir/bench_join_recompute.cc.o"
  "CMakeFiles/bench_join_recompute.dir/bench_join_recompute.cc.o.d"
  "bench_join_recompute"
  "bench_join_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
