# Empty compiler generated dependencies file for bench_propagation_depth.
# This may be replaced when dependencies are built.
