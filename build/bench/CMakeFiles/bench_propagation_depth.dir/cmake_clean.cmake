file(REMOVE_RECURSE
  "CMakeFiles/bench_propagation_depth.dir/bench_propagation_depth.cc.o"
  "CMakeFiles/bench_propagation_depth.dir/bench_propagation_depth.cc.o.d"
  "bench_propagation_depth"
  "bench_propagation_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_propagation_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
