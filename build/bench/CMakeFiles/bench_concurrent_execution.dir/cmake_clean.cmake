file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_execution.dir/bench_concurrent_execution.cc.o"
  "CMakeFiles/bench_concurrent_execution.dir/bench_concurrent_execution.cc.o.d"
  "bench_concurrent_execution"
  "bench_concurrent_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
