# Empty dependencies file for bench_concurrent_execution.
# This may be replaced when dependencies are built.
