file(REMOVE_RECURSE
  "CMakeFiles/bench_match_latency.dir/bench_match_latency.cc.o"
  "CMakeFiles/bench_match_latency.dir/bench_match_latency.cc.o.d"
  "bench_match_latency"
  "bench_match_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_match_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
