file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_propagation.dir/bench_parallel_propagation.cc.o"
  "CMakeFiles/bench_parallel_propagation.dir/bench_parallel_propagation.cc.o.d"
  "bench_parallel_propagation"
  "bench_parallel_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
