# Empty compiler generated dependencies file for bench_parallel_propagation.
# This may be replaced when dependencies are built.
