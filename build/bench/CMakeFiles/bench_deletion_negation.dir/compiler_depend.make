# Empty compiler generated dependencies file for bench_deletion_negation.
# This may be replaced when dependencies are built.
