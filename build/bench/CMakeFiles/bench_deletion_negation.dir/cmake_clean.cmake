file(REMOVE_RECURSE
  "CMakeFiles/bench_deletion_negation.dir/bench_deletion_negation.cc.o"
  "CMakeFiles/bench_deletion_negation.dir/bench_deletion_negation.cc.o.d"
  "bench_deletion_negation"
  "bench_deletion_negation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deletion_negation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
