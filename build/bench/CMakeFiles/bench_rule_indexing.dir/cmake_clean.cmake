file(REMOVE_RECURSE
  "CMakeFiles/bench_rule_indexing.dir/bench_rule_indexing.cc.o"
  "CMakeFiles/bench_rule_indexing.dir/bench_rule_indexing.cc.o.d"
  "bench_rule_indexing"
  "bench_rule_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
