
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/prodb.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/prodb.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/prodb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/prodb.dir/common/status.cc.o.d"
  "/root/repo/src/common/tuple.cc" "src/CMakeFiles/prodb.dir/common/tuple.cc.o" "gcc" "src/CMakeFiles/prodb.dir/common/tuple.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/prodb.dir/common/value.cc.o" "gcc" "src/CMakeFiles/prodb.dir/common/value.cc.o.d"
  "/root/repo/src/core/production_system.cc" "src/CMakeFiles/prodb.dir/core/production_system.cc.o" "gcc" "src/CMakeFiles/prodb.dir/core/production_system.cc.o.d"
  "/root/repo/src/db/catalog.cc" "src/CMakeFiles/prodb.dir/db/catalog.cc.o" "gcc" "src/CMakeFiles/prodb.dir/db/catalog.cc.o.d"
  "/root/repo/src/db/executor.cc" "src/CMakeFiles/prodb.dir/db/executor.cc.o" "gcc" "src/CMakeFiles/prodb.dir/db/executor.cc.o.d"
  "/root/repo/src/db/predicate.cc" "src/CMakeFiles/prodb.dir/db/predicate.cc.o" "gcc" "src/CMakeFiles/prodb.dir/db/predicate.cc.o.d"
  "/root/repo/src/db/relation.cc" "src/CMakeFiles/prodb.dir/db/relation.cc.o" "gcc" "src/CMakeFiles/prodb.dir/db/relation.cc.o.d"
  "/root/repo/src/engine/actions.cc" "src/CMakeFiles/prodb.dir/engine/actions.cc.o" "gcc" "src/CMakeFiles/prodb.dir/engine/actions.cc.o.d"
  "/root/repo/src/engine/concurrent_engine.cc" "src/CMakeFiles/prodb.dir/engine/concurrent_engine.cc.o" "gcc" "src/CMakeFiles/prodb.dir/engine/concurrent_engine.cc.o.d"
  "/root/repo/src/engine/sequential_engine.cc" "src/CMakeFiles/prodb.dir/engine/sequential_engine.cc.o" "gcc" "src/CMakeFiles/prodb.dir/engine/sequential_engine.cc.o.d"
  "/root/repo/src/engine/strategy.cc" "src/CMakeFiles/prodb.dir/engine/strategy.cc.o" "gcc" "src/CMakeFiles/prodb.dir/engine/strategy.cc.o.d"
  "/root/repo/src/engine/working_memory.cc" "src/CMakeFiles/prodb.dir/engine/working_memory.cc.o" "gcc" "src/CMakeFiles/prodb.dir/engine/working_memory.cc.o.d"
  "/root/repo/src/index/bplus_tree.cc" "src/CMakeFiles/prodb.dir/index/bplus_tree.cc.o" "gcc" "src/CMakeFiles/prodb.dir/index/bplus_tree.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/CMakeFiles/prodb.dir/index/rtree.cc.o" "gcc" "src/CMakeFiles/prodb.dir/index/rtree.cc.o.d"
  "/root/repo/src/lang/analyzer.cc" "src/CMakeFiles/prodb.dir/lang/analyzer.cc.o" "gcc" "src/CMakeFiles/prodb.dir/lang/analyzer.cc.o.d"
  "/root/repo/src/lang/ast.cc" "src/CMakeFiles/prodb.dir/lang/ast.cc.o" "gcc" "src/CMakeFiles/prodb.dir/lang/ast.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/CMakeFiles/prodb.dir/lang/lexer.cc.o" "gcc" "src/CMakeFiles/prodb.dir/lang/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/prodb.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/prodb.dir/lang/parser.cc.o.d"
  "/root/repo/src/match/conflict_set.cc" "src/CMakeFiles/prodb.dir/match/conflict_set.cc.o" "gcc" "src/CMakeFiles/prodb.dir/match/conflict_set.cc.o.d"
  "/root/repo/src/match/matcher.cc" "src/CMakeFiles/prodb.dir/match/matcher.cc.o" "gcc" "src/CMakeFiles/prodb.dir/match/matcher.cc.o.d"
  "/root/repo/src/match/pattern_matcher.cc" "src/CMakeFiles/prodb.dir/match/pattern_matcher.cc.o" "gcc" "src/CMakeFiles/prodb.dir/match/pattern_matcher.cc.o.d"
  "/root/repo/src/match/query_matcher.cc" "src/CMakeFiles/prodb.dir/match/query_matcher.cc.o" "gcc" "src/CMakeFiles/prodb.dir/match/query_matcher.cc.o.d"
  "/root/repo/src/rete/network.cc" "src/CMakeFiles/prodb.dir/rete/network.cc.o" "gcc" "src/CMakeFiles/prodb.dir/rete/network.cc.o.d"
  "/root/repo/src/rete/token_store.cc" "src/CMakeFiles/prodb.dir/rete/token_store.cc.o" "gcc" "src/CMakeFiles/prodb.dir/rete/token_store.cc.o.d"
  "/root/repo/src/ruleindex/basic_locking.cc" "src/CMakeFiles/prodb.dir/ruleindex/basic_locking.cc.o" "gcc" "src/CMakeFiles/prodb.dir/ruleindex/basic_locking.cc.o.d"
  "/root/repo/src/ruleindex/predicate_index.cc" "src/CMakeFiles/prodb.dir/ruleindex/predicate_index.cc.o" "gcc" "src/CMakeFiles/prodb.dir/ruleindex/predicate_index.cc.o.d"
  "/root/repo/src/ruleindex/rulebase_query.cc" "src/CMakeFiles/prodb.dir/ruleindex/rulebase_query.cc.o" "gcc" "src/CMakeFiles/prodb.dir/ruleindex/rulebase_query.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/prodb.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/prodb.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/prodb.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/prodb.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/prodb.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/prodb.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/CMakeFiles/prodb.dir/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/prodb.dir/txn/lock_manager.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/CMakeFiles/prodb.dir/txn/transaction.cc.o" "gcc" "src/CMakeFiles/prodb.dir/txn/transaction.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/prodb.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/prodb.dir/workload/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
