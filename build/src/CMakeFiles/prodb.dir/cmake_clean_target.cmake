file(REMOVE_RECURSE
  "libprodb.a"
)
