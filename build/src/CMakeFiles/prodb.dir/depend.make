# Empty dependencies file for prodb.
# This may be replaced when dependencies are built.
