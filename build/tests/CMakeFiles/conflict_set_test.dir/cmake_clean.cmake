file(REMOVE_RECURSE
  "CMakeFiles/conflict_set_test.dir/conflict_set_test.cc.o"
  "CMakeFiles/conflict_set_test.dir/conflict_set_test.cc.o.d"
  "conflict_set_test"
  "conflict_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
