file(REMOVE_RECURSE
  "CMakeFiles/matcher_equivalence_test.dir/matcher_equivalence_test.cc.o"
  "CMakeFiles/matcher_equivalence_test.dir/matcher_equivalence_test.cc.o.d"
  "matcher_equivalence_test"
  "matcher_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcher_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
