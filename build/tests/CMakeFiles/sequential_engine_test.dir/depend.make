# Empty dependencies file for sequential_engine_test.
# This may be replaced when dependencies are built.
