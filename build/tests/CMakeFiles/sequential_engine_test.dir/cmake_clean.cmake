file(REMOVE_RECURSE
  "CMakeFiles/sequential_engine_test.dir/sequential_engine_test.cc.o"
  "CMakeFiles/sequential_engine_test.dir/sequential_engine_test.cc.o.d"
  "sequential_engine_test"
  "sequential_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
