file(REMOVE_RECURSE
  "CMakeFiles/pattern_matcher_edge_test.dir/pattern_matcher_edge_test.cc.o"
  "CMakeFiles/pattern_matcher_edge_test.dir/pattern_matcher_edge_test.cc.o.d"
  "pattern_matcher_edge_test"
  "pattern_matcher_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_matcher_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
