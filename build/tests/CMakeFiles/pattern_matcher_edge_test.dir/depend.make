# Empty dependencies file for pattern_matcher_edge_test.
# This may be replaced when dependencies are built.
