# Empty dependencies file for paged_system_test.
# This may be replaced when dependencies are built.
