file(REMOVE_RECURSE
  "CMakeFiles/paged_system_test.dir/paged_system_test.cc.o"
  "CMakeFiles/paged_system_test.dir/paged_system_test.cc.o.d"
  "paged_system_test"
  "paged_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paged_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
