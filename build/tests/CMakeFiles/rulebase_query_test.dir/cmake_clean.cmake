file(REMOVE_RECURSE
  "CMakeFiles/rulebase_query_test.dir/rulebase_query_test.cc.o"
  "CMakeFiles/rulebase_query_test.dir/rulebase_query_test.cc.o.d"
  "rulebase_query_test"
  "rulebase_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulebase_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
