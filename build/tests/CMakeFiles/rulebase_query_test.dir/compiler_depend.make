# Empty compiler generated dependencies file for rulebase_query_test.
# This may be replaced when dependencies are built.
