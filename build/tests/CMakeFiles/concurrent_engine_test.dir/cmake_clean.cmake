file(REMOVE_RECURSE
  "CMakeFiles/concurrent_engine_test.dir/concurrent_engine_test.cc.o"
  "CMakeFiles/concurrent_engine_test.dir/concurrent_engine_test.cc.o.d"
  "concurrent_engine_test"
  "concurrent_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
