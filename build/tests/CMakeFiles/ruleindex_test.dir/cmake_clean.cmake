file(REMOVE_RECURSE
  "CMakeFiles/ruleindex_test.dir/ruleindex_test.cc.o"
  "CMakeFiles/ruleindex_test.dir/ruleindex_test.cc.o.d"
  "ruleindex_test"
  "ruleindex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruleindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
