# Empty compiler generated dependencies file for ruleindex_test.
# This may be replaced when dependencies are built.
