file(REMOVE_RECURSE
  "CMakeFiles/token_store_test.dir/token_store_test.cc.o"
  "CMakeFiles/token_store_test.dir/token_store_test.cc.o.d"
  "token_store_test"
  "token_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
