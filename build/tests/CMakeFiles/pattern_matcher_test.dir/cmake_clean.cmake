file(REMOVE_RECURSE
  "CMakeFiles/pattern_matcher_test.dir/pattern_matcher_test.cc.o"
  "CMakeFiles/pattern_matcher_test.dir/pattern_matcher_test.cc.o.d"
  "pattern_matcher_test"
  "pattern_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
