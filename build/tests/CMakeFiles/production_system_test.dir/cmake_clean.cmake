file(REMOVE_RECURSE
  "CMakeFiles/production_system_test.dir/production_system_test.cc.o"
  "CMakeFiles/production_system_test.dir/production_system_test.cc.o.d"
  "production_system_test"
  "production_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
