# Empty dependencies file for production_system_test.
# This may be replaced when dependencies are built.
