# Empty dependencies file for example_rulebase_explorer.
# This may be replaced when dependencies are built.
