file(REMOVE_RECURSE
  "CMakeFiles/example_rulebase_explorer.dir/rulebase_explorer.cpp.o"
  "CMakeFiles/example_rulebase_explorer.dir/rulebase_explorer.cpp.o.d"
  "example_rulebase_explorer"
  "example_rulebase_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rulebase_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
