file(REMOVE_RECURSE
  "CMakeFiles/example_factory_floor.dir/factory_floor.cpp.o"
  "CMakeFiles/example_factory_floor.dir/factory_floor.cpp.o.d"
  "example_factory_floor"
  "example_factory_floor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_factory_floor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
