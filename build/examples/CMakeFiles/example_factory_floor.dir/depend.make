# Empty dependencies file for example_factory_floor.
# This may be replaced when dependencies are built.
