file(REMOVE_RECURSE
  "CMakeFiles/example_expr_simplify.dir/expr_simplify.cpp.o"
  "CMakeFiles/example_expr_simplify.dir/expr_simplify.cpp.o.d"
  "example_expr_simplify"
  "example_expr_simplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_expr_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
