file(REMOVE_RECURSE
  "CMakeFiles/example_view_maintenance.dir/view_maintenance.cpp.o"
  "CMakeFiles/example_view_maintenance.dir/view_maintenance.cpp.o.d"
  "example_view_maintenance"
  "example_view_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_view_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
