# Empty dependencies file for example_view_maintenance.
# This may be replaced when dependencies are built.
