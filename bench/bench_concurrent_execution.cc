// E6 — Concurrent versus sequential execution of the conflict set (§5).
//
// Paper claim: "concurrent execution strategies which surpass, in terms
// of performance, the sequential OPS5 execution algorithm"; "in the best
// case ... proportional to the maximum number of updates to any WM
// relation" (§5.2). Each instantiation here carries a small CPU cost (a
// registered `call`), which is where worker parallelism pays off.

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "engine/concurrent_engine.h"
#include "engine/sequential_engine.h"
#include "lang/analyzer.h"
#include "match/query_matcher.h"

namespace prodb {
namespace {

constexpr char kProgram[] = R"(
(literalize Work id payload)
(literalize Done id)
(p consume (Work ^id <x> ^payload <p>) -->
  (remove 1) (call crunch <p>) (make Done ^id <x>))
)";

// Simulated per-instantiation RHS work. The dominant cost the paper's
// setting implies is I/O: selecting the matched tuples from secondary
// storage and writing the RHS changes back. We model it as a short
// blocking wait (a page-fetch latency), which concurrent transactions
// overlap — the §5 win — even on a single CPU; plus a pinch of CPU work.
Status Crunch(const std::vector<Value>& args) {
  std::this_thread::sleep_for(std::chrono::microseconds(300));
  volatile uint64_t acc = static_cast<uint64_t>(args[0].as_int());
  for (int i = 0; i < 2000; ++i) acc = acc * 6364136223846793005ULL + 1;
  benchmark::DoNotOptimize(acc);
  return Status::OK();
}

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", st.ToString().c_str());
    std::abort();
  }
}

void BM_Sequential(benchmark::State& state) {
  const int items = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Catalog catalog;
    std::vector<Rule> rules;
    Check(LoadProgram(kProgram, &catalog, &rules));
    QueryMatcher matcher(&catalog);
    for (const Rule& r : rules) Check(matcher.AddRule(r));
    SequentialEngine engine(&catalog, &matcher);
    engine.functions().Register("crunch", Crunch);
    for (int i = 0; i < items; ++i) {
      Check(engine.Insert("Work", Tuple{Value(i), Value(i * 7)}));
    }
    state.ResumeTiming();
    EngineRunResult result;
    Check(engine.Run(&result));
    if (result.firings != static_cast<size_t>(items)) std::abort();
  }
  state.counters["items"] = static_cast<double>(items);
}

void BM_Concurrent(benchmark::State& state) {
  const int items = static_cast<int>(state.range(0));
  const size_t workers = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    Catalog catalog;
    std::vector<Rule> rules;
    Check(LoadProgram(kProgram, &catalog, &rules));
    QueryMatcher matcher(&catalog);
    for (const Rule& r : rules) Check(matcher.AddRule(r));
    LockManager locks;
    ConcurrentEngineOptions opts;
    opts.workers = workers;
    ConcurrentEngine engine(&catalog, &matcher, &locks, opts);
    engine.functions().Register("crunch", Crunch);
    for (int i = 0; i < items; ++i) {
      Check(engine.Insert("Work", Tuple{Value(i), Value(i * 7)}));
    }
    state.ResumeTiming();
    ConcurrentRunResult result;
    Check(engine.Run(&result));
    if (result.firings != static_cast<size_t>(items)) std::abort();
    state.counters["deadlock_aborts"] +=
        static_cast<double>(result.deadlock_aborts);
  }
  state.counters["items"] = static_cast<double>(items);
  state.counters["workers"] = static_cast<double>(workers);
}

BENCHMARK(BM_Sequential)->Arg(128)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Concurrent)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({128, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Worst case of §5.2: every instantiation updates the same WM tuples —
// concurrency degenerates to serial plus locking overhead.
void BM_ConcurrentContended(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));
  const char* program = R"(
(literalize Counter id n)
(p bump (Counter ^id hot ^n <x>) -(Counter ^id stop) --> (remove 1))
)";
  for (auto _ : state) {
    state.PauseTiming();
    Catalog catalog;
    std::vector<Rule> rules;
    Check(LoadProgram(program, &catalog, &rules));
    QueryMatcher matcher(&catalog);
    for (const Rule& r : rules) Check(matcher.AddRule(r));
    LockManager locks;
    ConcurrentEngineOptions opts;
    opts.workers = workers;
    ConcurrentEngine engine(&catalog, &matcher, &locks, opts);
    for (int i = 0; i < 64; ++i) {
      Check(engine.Insert("Counter", Tuple{Value("hot"), Value(i)}));
    }
    state.ResumeTiming();
    ConcurrentRunResult result;
    Check(engine.Run(&result));
  }
  state.counters["workers"] = static_cast<double>(workers);
}

BENCHMARK(BM_ConcurrentContended)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
