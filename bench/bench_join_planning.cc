// E17 — Cost-based join planning from incremental catalog statistics
// (src/plan; [SELL88]'s access-planning premise: a production system in
// a DBMS should plan its joins like any other query).
//
// Workload: a three-way star whose *textual* CE order is pessimal. The
// fat class leads the rule, so the syntactic Rete chain materializes
// fan-out × bridge tokens at level 1 and every bridge-class delta walks
// a fat token memory; the planned order leads with the selective class
// and touches almost nothing. The uniform control keeps all classes the
// same size — there the planner must not cost measurable wall time
// (its order is no better, just not worse).
//
//   A (fat):    N tuples, 32 distinct join keys  -> fan-out N/32
//   B (bridge): 256 tuples, keyed into A and C
//   C (thin):   8 tuples over a 4096-value domain -> B⋈C nearly empty
//   rule:       (A ^k <x>) (B ^k <x> ^m <y>) (C ^m <y>)
//
// Reported per variant: probe_tokens_visited per churn delta, plans
// built, drift-triggered replans, and the estimator's mean log-ratio
// error. BM_SkewedProbeRatio runs the same trace through syntactic and
// planned Rete side by side and reports the probe reduction directly —
// the ≥5x acceptance number for this PR.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "lang/analyzer.h"

namespace prodb {
namespace {

constexpr char kStarProgram[] = R"(
(literalize A k v)
(literalize B k m)
(literalize C m)
(p star
  (A ^k <x>)
  (B ^k <x> ^m <y>)
  (C ^m <y>)
  -->
  (remove 1))
)";

constexpr uint64_t kFatKeys = 32;
constexpr uint64_t kThinDomain = 4096;

/// Catalog + matcher + WM loaded from an OPS5 program (the generator in
/// bench_util drives synthetic rule sets; this experiment needs exact
/// control of the skew).
struct ProgramSetup {
  std::unique_ptr<Catalog> catalog;
  std::vector<Rule> rules;
  std::unique_ptr<Matcher> matcher;
  std::unique_ptr<WorkingMemory> wm;

  ProgramSetup(const char* program, const std::string& matcher_name) {
    catalog = std::make_unique<Catalog>();
    bench::Abort(LoadProgram(program, catalog.get(), &rules), "program");
    matcher = bench::MakeMatcherByName(matcher_name, catalog.get());
    for (const Rule& r : rules) bench::Abort(matcher->AddRule(r), "rule");
    wm = std::make_unique<WorkingMemory>(catalog.get(), matcher.get());
  }
};

Tuple FatRow(Rng* rng) {
  return Tuple{Value(static_cast<int64_t>(rng->Uniform(kFatKeys))),
               Value(static_cast<int64_t>(rng->Uniform(1u << 20)))};
}
Tuple BridgeRow(Rng* rng) {
  return Tuple{Value(static_cast<int64_t>(rng->Uniform(kFatKeys))),
               Value(static_cast<int64_t>(rng->Uniform(kThinDomain)))};
}
Tuple ThinRow(Rng* rng) {
  return Tuple{Value(static_cast<int64_t>(rng->Uniform(kThinDomain)))};
}

/// Loads the skewed star: thin and bridge classes first, then the fat
/// class in chunks so the drift check sees the cardinality grow and a
/// planning matcher converges onto the good order *during* the load
/// instead of paying the syntactic token explosion for the whole of it.
void PreloadSkewed(ProgramSetup& s, size_t fat_n, uint64_t seed = 17) {
  Rng rng(seed);
  TupleId id;
  for (int i = 0; i < 8; ++i) {
    bench::Abort(s.wm->Insert("C", ThinRow(&rng), &id), "C");
  }
  for (int i = 0; i < 256; ++i) {
    bench::Abort(s.wm->Insert("B", BridgeRow(&rng), &id), "B");
  }
  size_t loaded = 0;
  while (loaded < fat_n) {
    const size_t chunk = std::min<size_t>(4096, fat_n - loaded);
    s.wm->BeginBatch();
    for (size_t i = 0; i < chunk; ++i) {
      bench::Abort(s.wm->Insert("A", FatRow(&rng), &id), "A");
    }
    bench::Abort(s.wm->CommitBatch(), "commit");
    loaded += chunk;
  }
}

/// One churn step: insert + delete, cycling through the classes with the
/// bridge class hit most often — the delta that is pessimal under the
/// textual order (it probes the fat side's token memory).
void ChurnStep(ProgramSetup& s, Rng* rng, uint64_t step) {
  const char* cls;
  Tuple t;
  switch (step % 4) {
    case 0:
    case 1:
      cls = "B";
      t = BridgeRow(rng);
      break;
    case 2:
      cls = "A";
      t = FatRow(rng);
      break;
    default:
      cls = "C";
      t = ThinRow(rng);
      break;
  }
  TupleId id;
  bench::Abort(s.wm->Insert(cls, t, &id), "churn insert");
  bench::Abort(s.wm->Delete(cls, id), "churn delete");
}

void ReportPlanCounters(benchmark::State& state, const Matcher& m,
                        uint64_t probes, uint64_t deltas) {
  const MatcherStats& st = m.stats();
  state.counters["probe_visits_per_delta"] =
      deltas == 0 ? 0.0
                  : static_cast<double>(probes) / static_cast<double>(deltas);
  state.counters["plans_built"] =
      static_cast<double>(st.plans_built.load(std::memory_order_relaxed));
  state.counters["replans"] =
      static_cast<double>(st.replans.load(std::memory_order_relaxed));
  const uint64_t samples =
      st.est_card_samples.load(std::memory_order_relaxed);
  state.counters["est_err_nats"] =
      samples == 0
          ? 0.0
          : static_cast<double>(
                st.est_card_err_millinats.load(std::memory_order_relaxed)) /
                1000.0 / static_cast<double>(samples);
}

void RunSkewedChurn(benchmark::State& state,
                    const std::string& matcher_name) {
  const size_t fat_n = static_cast<size_t>(state.range(0));
  ProgramSetup setup(kStarProgram, matcher_name);
  PreloadSkewed(setup, fat_n);
  const uint64_t probes_before =
      setup.matcher->stats().probe_tokens_visited.load();
  Rng rng(5);
  uint64_t steps = 0;
  for (auto _ : state) {
    ChurnStep(setup, &rng, steps++);
  }
  ReportPlanCounters(
      state, *setup.matcher,
      setup.matcher->stats().probe_tokens_visited.load() - probes_before,
      2 * steps);
  state.counters["fat_n"] = static_cast<double>(fat_n);
}

void BM_SkewedChurn_Rete(benchmark::State& state) {
  RunSkewedChurn(state, "rete");
}
void BM_SkewedChurn_RetePlan(benchmark::State& state) {
  RunSkewedChurn(state, "rete-plan");
}
void BM_SkewedChurn_Query(benchmark::State& state) {
  RunSkewedChurn(state, "query");
}
void BM_SkewedChurn_QueryPlan(benchmark::State& state) {
  RunSkewedChurn(state, "query-plan");
}

// The syntactic Rete chain materializes fan-out x bridge tokens (8N at
// N fat tuples), so its sweep stops at 1e5; the planned variant carries
// the thin-first memories and extends to the 1e6 top of the range.
BENCHMARK(BM_SkewedChurn_Rete)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SkewedChurn_RetePlan)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SkewedChurn_Query)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SkewedChurn_QueryPlan)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// Planned and syntactic Rete driven through the identical preload +
// churn trace; the counter is the probe reduction the planner buys
// (acceptance: >= 5x on this workload).
void BM_SkewedProbeRatio(benchmark::State& state) {
  const size_t fat_n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    ProgramSetup syntactic(kStarProgram, "rete");
    ProgramSetup planned(kStarProgram, "rete-plan");
    PreloadSkewed(syntactic, fat_n);
    PreloadSkewed(planned, fat_n);
    const uint64_t syn0 =
        syntactic.matcher->stats().probe_tokens_visited.load();
    const uint64_t pln0 = planned.matcher->stats().probe_tokens_visited.load();
    Rng rng_a(5), rng_b(5);
    for (uint64_t i = 0; i < 2000; ++i) {
      ChurnStep(syntactic, &rng_a, i);
      ChurnStep(planned, &rng_b, i);
    }
    const double syn =
        static_cast<double>(
            syntactic.matcher->stats().probe_tokens_visited.load() - syn0);
    const double pln = static_cast<double>(
        planned.matcher->stats().probe_tokens_visited.load() - pln0);
    state.counters["syntactic_probe_visits"] = syn;
    state.counters["planned_probe_visits"] = pln;
    state.counters["probe_reduction"] = pln == 0.0 ? syn : syn / pln;
  }
}

BENCHMARK(BM_SkewedProbeRatio)->Arg(10000)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Uniform control: equal class sizes, uniform keys — no order is better
// than another, so planning must be within noise of syntactic (<5%).
// Same generator-driven workload family the other experiments use.
void RunUniformChurn(benchmark::State& state,
                     const std::string& matcher_name) {
  WorkloadSpec spec;
  spec.num_classes = 3;
  spec.attrs_per_class = 3;
  spec.num_rules = 8;
  spec.ces_per_rule = 3;
  spec.domain = 64;
  spec.chain_join = true;
  spec.seed = 23;
  auto setup = bench::MakeSetup(spec, [&](Catalog* c) {
    return bench::MakeMatcherByName(matcher_name, c);
  });
  bench::Preload(*setup, static_cast<size_t>(state.range(0)), 3);
  Rng rng(42);
  uint64_t steps = 0;
  for (auto _ : state) {
    size_t cls = rng.Uniform(setup->gen.spec().num_classes);
    Tuple t = setup->gen.RandomTuple(&rng);
    TupleId id;
    bench::Abort(setup->wm->Insert(setup->gen.ClassName(cls), t, &id),
                 "insert");
    bench::Abort(setup->wm->Delete(setup->gen.ClassName(cls), id), "delete");
    ++steps;
  }
  ReportPlanCounters(state, *setup->matcher, 0, 2 * steps);
}

void BM_UniformChurn_Rete(benchmark::State& state) {
  RunUniformChurn(state, "rete");
}
void BM_UniformChurn_RetePlan(benchmark::State& state) {
  RunUniformChurn(state, "rete-plan");
}

BENCHMARK(BM_UniformChurn_Rete)->Arg(2000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_UniformChurn_RetePlan)->Arg(2000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
