// E10 — Deletion maintenance and negated conditions (§4.2.2).
//
// Paper claims: deletion "is very similar to the insertion algorithm ...
// Mark bits can be easily replaced by counters"; negated conditions are
// supported by inverting defaults. Measure per-operation cost across
// insert/delete mixes, with and without negated CEs in the rule base.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace prodb {
namespace {

WorkloadSpec MixSpec(double negation_prob) {
  WorkloadSpec spec;
  spec.num_classes = 4;
  spec.attrs_per_class = 4;
  spec.num_rules = 32;
  spec.ces_per_rule = 3;
  spec.domain = 16;
  spec.chain_join = true;
  spec.negation_prob = negation_prob;
  spec.seed = 37;
  return spec;
}

void RunMix(benchmark::State& state, const std::string& matcher_name) {
  const int delete_pct = static_cast<int>(state.range(0));
  const bool with_negation = state.range(1) != 0;
  auto setup =
      bench::MakeSetup(MixSpec(with_negation ? 0.5 : 0.0), [&](Catalog* c) {
        return bench::MakeMatcherByName(matcher_name, c);
      });
  bench::Preload(*setup, 32, 3);

  Rng rng(42);
  std::vector<std::pair<std::string, TupleId>> live;
  for (auto _ : state) {
    bool do_delete = !live.empty() &&
                     static_cast<int>(rng.Uniform(100)) < delete_pct;
    if (do_delete) {
      size_t pick = rng.Uniform(live.size());
      bench::Abort(setup->wm->Delete(live[pick].first, live[pick].second),
                   "delete");
      live[pick] = live.back();
      live.pop_back();
    } else {
      std::string cls =
          setup->gen.ClassName(rng.Uniform(setup->gen.spec().num_classes));
      TupleId id;
      bench::Abort(setup->wm->Insert(cls, setup->gen.RandomTuple(&rng), &id),
                   "insert");
      live.emplace_back(std::move(cls), id);
    }
  }
  state.counters["delete_pct"] = delete_pct;
  state.counters["negation"] = with_negation ? 1 : 0;
  state.counters["patterns"] =
      static_cast<double>(setup->matcher->stats().patterns_stored.load());
}

void BM_Mix_Pattern(benchmark::State& state) { RunMix(state, "pattern"); }
void BM_Mix_Rete(benchmark::State& state) { RunMix(state, "rete"); }
void BM_Mix_Query(benchmark::State& state) { RunMix(state, "query"); }

// {delete%, negation?}
#define MIX_ARGS \
  Args({0, 0})->Args({25, 0})->Args({50, 0})->Args({25, 1})->Args({50, 1})

BENCHMARK(BM_Mix_Pattern)->MIX_ARGS;
BENCHMARK(BM_Mix_Rete)->MIX_ARGS;
BENCHMARK(BM_Mix_Query)->MIX_ARGS;

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
