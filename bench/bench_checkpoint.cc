// Checkpoint economics (E15).
//
// Three claims the fuzzy-checkpoint + log-truncation work must support:
// (1) restart time after a crash is bounded by the checkpoint interval,
// not by total history — without checkpoints recovery replays the whole
// log, with them it replays a constant-size suffix; (2) a checkpoint
// itself is cheap (a bounded page write-back, one record, one anchor
// rewrite) so it can run frequently; (3) steal lets one transaction's
// write set exceed the buffer pool, which the old no-steal design
// rejected outright.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "storage/recovery.h"
#include "txn/transaction.h"

namespace prodb {
namespace {

CatalogOptions CkptOptions(DiskManager* disk, size_t frames = 16) {
  CatalogOptions copts;
  copts.default_storage = StorageKind::kPaged;
  copts.buffer_pool_frames = frames;
  copts.disk = disk;
  copts.enable_wal = true;
  return copts;
}

Schema CkptSchema() {
  return Schema("C", {{"a", ValueType::kInt}, {"b", ValueType::kSymbol}});
}

// Runs `rounds` update-churn transactions over a small row set,
// checkpointing every 8 commits when `checkpoint` is set. Returns the
// disk so the caller can measure what a restart over it costs.
void Churn(Catalog* catalog, size_t rounds, bool checkpoint) {
  LockManager locks;
  Relation* rel = nullptr;
  bench::Abort(
      catalog->CreateRelation(CkptSchema(), StorageKind::kPaged, &rel),
      "relation");
  TxnManager tm(catalog, &locks);
  std::vector<TupleId> ids;
  {
    auto txn = tm.Begin();
    for (int i = 0; i < 16; ++i) {
      TupleId id;
      bench::Abort(txn->Insert("C",
                               Tuple{Value(static_cast<int64_t>(i)),
                                     Value(std::string(64, 's'))},
                               &id),
                   "seed");
      ids.push_back(id);
    }
    bench::Abort(tm.Commit(txn.get()), "commit");
  }
  for (size_t r = 0; r < rounds; ++r) {
    auto txn = tm.Begin();
    for (size_t i = 0; i < ids.size(); ++i) {
      TupleId moved;
      bench::Abort(txn->Update("C", ids[i],
                               Tuple{Value(static_cast<int64_t>(r)),
                                     Value(std::string(64, 'u'))},
                               &moved),
                   "update");
      ids[i] = moved;
    }
    bench::Abort(tm.Commit(txn.get()), "commit");
    if (checkpoint && r % 8 == 7) {
      bench::Abort(catalog->Checkpoint(), "checkpoint");
    }
  }
}

// Restart recovery over a crash image after `rounds` of churn, with and
// without periodic checkpoints. Without them, time/op grows linearly in
// `rounds`; with them it stays flat — the E15 headline.
void BM_RestartAfterChurn(benchmark::State& state) {
  size_t rounds = static_cast<size_t>(state.range(0));
  bool checkpoint = state.range(1) != 0;

  MemoryDiskManager master;
  {
    Catalog catalog(CkptOptions(&master));
    Churn(&catalog, rounds, checkpoint);
    // Catalog (and dirty pool) die here: the crash image is the disk.
  }

  char buf[kPageSize];
  uint64_t redone = 0;
  uint64_t log_pages = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MemoryDiskManager img;
    for (uint32_t p = 0; p < master.PageCount(); ++p) {
      uint32_t pid;
      bench::Abort(img.AllocatePage(&pid), "alloc");
      bench::Abort(master.ReadPage(p, buf), "read");
      bench::Abort(img.WritePage(p, buf), "write");
    }
    BufferPool pool(16, &img);
    state.ResumeTiming();
    RecoveryResult rr;
    bench::Abort(RecoverLog(&pool, &rr), "recover");
    benchmark::DoNotOptimize(rr.records_redone);
    redone = rr.records_redone;
    log_pages = rr.log_pages.size();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rounds));
  state.SetLabel(checkpoint ? "ckpt" : "no-ckpt");
  state.counters["records_redone"] =
      benchmark::Counter(static_cast<double>(redone));
  state.counters["live_log_pages"] =
      benchmark::Counter(static_cast<double>(log_pages));
}
BENCHMARK(BM_RestartAfterChurn)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// Cost of one Checkpoint() call while the engine churns: write back the
// aged dirty pages, append + force one record, rewrite the anchor,
// recycle dead log pages.
void BM_CheckpointCall(benchmark::State& state) {
  MemoryDiskManager disk;
  Catalog catalog(CkptOptions(&disk));
  LockManager locks;
  Relation* rel = nullptr;
  bench::Abort(
      catalog.CreateRelation(CkptSchema(), StorageKind::kPaged, &rel),
      "relation");
  TxnManager tm(&catalog, &locks);
  std::vector<TupleId> ids;
  {
    auto txn = tm.Begin();
    for (int i = 0; i < 16; ++i) {
      TupleId id;
      bench::Abort(txn->Insert("C",
                               Tuple{Value(static_cast<int64_t>(i)),
                                     Value(std::string(64, 's'))},
                               &id),
                   "seed");
      ids.push_back(id);
    }
    bench::Abort(tm.Commit(txn.get()), "commit");
  }
  int64_t r = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto txn = tm.Begin();
    for (size_t i = 0; i < ids.size(); ++i) {
      TupleId moved;
      bench::Abort(txn->Update("C", ids[i],
                               Tuple{Value(r), Value(std::string(64, 'u'))},
                               &moved),
                   "update");
      ids[i] = moved;
    }
    bench::Abort(tm.Commit(txn.get()), "commit");
    ++r;
    state.ResumeTiming();
    bench::Abort(catalog.Checkpoint(), "checkpoint");
  }
  DurabilityStats ds = catalog.GetDurabilityStats();
  state.counters["log_pages_recycled"] =
      benchmark::Counter(static_cast<double>(ds.log_pages_recycled));
  state.counters["live_log_pages"] =
      benchmark::Counter(static_cast<double>(ds.wal_live_pages));
}
BENCHMARK(BM_CheckpointCall);

// One transaction inserting `n` tuples through a 16-frame pool: past a
// few dozen tuples the write set exceeds the pool and commits only
// because eviction steals dirty pages (the no-steal design aborted
// here). Cost should stay linear in `n` across the capacity boundary.
void BM_BigTxnCommit(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  uint64_t stolen = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MemoryDiskManager disk;
    Catalog catalog(CkptOptions(&disk));
    LockManager locks;
    Relation* rel = nullptr;
    bench::Abort(
        catalog.CreateRelation(CkptSchema(), StorageKind::kPaged, &rel),
        "relation");
    TxnManager tm(&catalog, &locks);
    state.ResumeTiming();
    auto txn = tm.Begin();
    for (size_t i = 0; i < n; ++i) {
      TupleId id;
      bench::Abort(txn->Insert("C",
                               Tuple{Value(static_cast<int64_t>(i)),
                                     Value(std::string(120, 'b'))},
                               &id),
                   "insert");
    }
    bench::Abort(tm.Commit(txn.get()), "commit");
    state.PauseTiming();
    stolen = catalog.GetDurabilityStats().pages_stolen;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.counters["pages_stolen"] =
      benchmark::Counter(static_cast<double>(stolen));
}
BENCHMARK(BM_BigTxnCommit)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
