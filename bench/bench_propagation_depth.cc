// E1 — Propagation depth (the Figure 1/3 concern).
//
// Paper claim (§3.2/§4): "the propagation delay of inserting a token
// will be significant if the number of single input nodes is large ...
// no speed-up by parallel processing is possible because all operations
// must be done sequentially"; the flattened COND scheme replaces the
// chain walk by a single search of one COND relation.
//
// A single chain-join rule of width N (CE_k joins CE_{k+1}). WM is
// preloaded so every level has partners; the benchmark measures the cost
// of inserting a tuple for the *last* CE, which in Rete must join its way
// through the whole left chain, and reports propagation steps.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace prodb {
namespace {

WorkloadSpec ChainSpec(size_t width) {
  WorkloadSpec spec;
  spec.num_classes = width;  // one class per CE: the chain is explicit
  spec.attrs_per_class = 4;
  spec.num_rules = 1;
  spec.ces_per_rule = width;
  spec.domain = 4;  // dense joins: deep partial matches accumulate
  spec.chain_join = true;
  spec.seed = 7;
  return spec;
}

// The measured operation is a *near-miss* insert at the last CE's class:
// the tuple passes the class's own (one-input) tests but its join value
// matches nothing. The Rete network must still test it against every
// token queued in the final node's LEFT memory — work that grows with
// chain depth and density — whereas the COND scheme answers with one
// search of the class's own COND relation.
void RunDepth(benchmark::State& state, const std::string& matcher_name) {
  const size_t width = static_cast<size_t>(state.range(0));
  auto setup = bench::MakeSetup(ChainSpec(width), [&](Catalog* c) {
    return bench::MakeMatcherByName(matcher_name, c);
  });
  bench::Preload(*setup, 24, 5);
  // The class of the last CE of the single rule.
  const std::string last_class =
      setup->rules[0].lhs.conditions.back().relation;
  const size_t last_ce = setup->rules[0].lhs.conditions.size() - 1;

  Rng rng(1234);
  uint64_t examined_before = setup->matcher->stats().tuples_examined.load();
  uint64_t inserts = 0;
  for (auto _ : state) {
    Tuple t = setup->gen.MatchingTuple(setup->rules[0], last_ce, &rng);
    t[1] = Value(int64_t{999});  // join import attr: matches nothing
    TupleId id;
    bench::Abort(setup->wm->Insert(last_class, t, &id), "insert");
    bench::Abort(setup->wm->Delete(last_class, id), "delete");
    ++inserts;
  }
  state.counters["chain_width"] = static_cast<double>(width);
  state.counters["examined_per_op"] =
      static_cast<double>(setup->matcher->stats().tuples_examined.load() -
                          examined_before) /
      static_cast<double>(inserts * 2);
}

void BM_Depth_Rete(benchmark::State& state) { RunDepth(state, "rete"); }
void BM_Depth_Pattern(benchmark::State& state) { RunDepth(state, "pattern"); }
void BM_Depth_Query(benchmark::State& state) { RunDepth(state, "query"); }

BENCHMARK(BM_Depth_Rete)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Depth_Pattern)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Depth_Query)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
