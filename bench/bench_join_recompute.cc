// E3 — Join re-computation cost of the simplified algorithm (§4.1.2).
//
// Paper claim: "the speed may be slower in some cases since
// re-computation of joins is necessary whenever a change is made to the
// working memory" — the cost grows with WM size, while the matching-
// pattern scheme's per-change work tracks the number of *patterns*, not
// the base relations.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace prodb {
namespace {

WorkloadSpec JoinSpec() {
  WorkloadSpec spec;
  spec.num_classes = 3;
  spec.attrs_per_class = 4;
  spec.num_rules = 8;
  spec.ces_per_rule = 3;
  spec.domain = 64;
  spec.chain_join = true;
  spec.seed = 29;
  return spec;
}

void RunWmSweep(benchmark::State& state, const std::string& matcher_name) {
  const size_t wm_size = static_cast<size_t>(state.range(0));
  auto setup = bench::MakeSetup(JoinSpec(), [&](Catalog* c) {
    return bench::MakeMatcherByName(matcher_name, c);
  });
  bench::Preload(*setup, wm_size, 3);

  Rng rng(42);
  for (auto _ : state) {
    size_t cls = rng.Uniform(setup->gen.spec().num_classes);
    Tuple t = setup->gen.RandomTuple(&rng);
    TupleId id;
    bench::Abort(setup->wm->Insert(setup->gen.ClassName(cls), t, &id),
                 "insert");
    bench::Abort(setup->wm->Delete(setup->gen.ClassName(cls), id), "delete");
  }
  state.counters["wm_per_class"] = static_cast<double>(wm_size);
}

// The unindexed baselines run the "-scan" variants: the default matchers
// now auto-declare hash indexes on equality-test attributes at AddRule
// (and Rete carries join-key token-memory indexes), which would hide the
// re-computation growth this experiment measures.
void BM_WmSweep_Query(benchmark::State& state) {
  RunWmSweep(state, "query-scan");
}
void BM_WmSweep_Pattern(benchmark::State& state) {
  RunWmSweep(state, "pattern-scan");
}
void BM_WmSweep_Rete(benchmark::State& state) {
  RunWmSweep(state, "rete-scan");
}

BENCHMARK(BM_WmSweep_Query)->Arg(100)->Arg(1000)->Arg(5000);
BENCHMARK(BM_WmSweep_Pattern)->Arg(100)->Arg(1000)->Arg(5000);
BENCHMARK(BM_WmSweep_Rete)->Arg(100)->Arg(1000)->Arg(5000);

// With hash indexes on the join attributes the query matcher's
// re-computation turns into probes — the "use indices, if they exist"
// remark of §3.2. The default QueryMatcher declares them itself at rule
// registration, so this is just the plain matcher.
void BM_WmSweep_QueryIndexed(benchmark::State& state) {
  RunWmSweep(state, "query");
}

BENCHMARK(BM_WmSweep_QueryIndexed)->Arg(100)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
