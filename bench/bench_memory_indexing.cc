// E12 — Join-key indexed token memories (§3.2, §4.1.2).
//
// The LEFT/RIGHT token memories of the Rete network are relations; §3.2
// observes that the interpreter "can use indices, if they exist" when an
// incoming token is paired against the opposite memory, and §4.1.2 makes
// the same point for the query matcher's re-evaluation scans. This
// measures exactly that: one two-way join rule, a LEFT memory preloaded
// with N tokens of which a constant few share the probed join key, and
// an insert+delete of the matching right tuple as the measured delta.
// Indexed memories probe the hot bucket (flat cost in N); scan-mode
// memories walk all N tokens per delta. The probe/scan visit counters
// expose the mechanism directly.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "lang/analyzer.h"

namespace prodb {
namespace {

constexpr char kProgram[] = R"(
(literalize Fact key payload)
(literalize Probe key tag)
(p Joined
  (Fact ^key <k>)
  (Probe ^key <k> ^tag go)
  -->
  (remove 2))
)";

// LEFT-memory tokens matching the probed key — constant across N so the
// indexed cost stays flat while the scan cost grows linearly.
constexpr size_t kHotMatches = 4;

void RunMemorySweep(benchmark::State& state,
                    const std::string& matcher_name) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto catalog = std::make_unique<Catalog>();
  std::vector<Rule> rules;
  bench::Abort(LoadProgram(kProgram, catalog.get(), &rules), "program");
  auto matcher = bench::MakeMatcherByName(matcher_name, catalog.get());
  for (const Rule& r : rules) {
    bench::Abort(matcher->AddRule(r), "rule");
  }
  WorkingMemory wm(catalog.get(), matcher.get());

  for (size_t i = 0; i < n; ++i) {
    int64_t key = i < kHotMatches ? 0 : static_cast<int64_t>(i);
    bench::Abort(wm.Insert("Fact", Tuple{Value(key), Value("p")}),
                 "preload");
  }

  for (auto _ : state) {
    TupleId id;
    bench::Abort(
        wm.Insert("Probe", Tuple{Value(static_cast<int64_t>(0)), Value("go")},
                  &id),
        "insert");
    bench::Abort(wm.Delete("Probe", id), "delete");
  }

  const MatcherStats& st = matcher->stats();
  state.counters["memory_tokens"] = static_cast<double>(n);
  state.counters["index_probes"] =
      static_cast<double>(st.index_probes.load());
  state.counters["probe_tokens_visited"] =
      static_cast<double>(st.probe_tokens_visited.load());
  state.counters["scan_tokens_visited"] =
      static_cast<double>(st.scan_tokens_visited.load());
}

void BM_MemoryIndexing_Rete(benchmark::State& state) {
  RunMemorySweep(state, "rete");
}
void BM_MemoryIndexing_ReteScan(benchmark::State& state) {
  RunMemorySweep(state, "rete-scan");
}
void BM_MemoryIndexing_ReteDbms(benchmark::State& state) {
  RunMemorySweep(state, "rete-dbms");
}
void BM_MemoryIndexing_ReteDbmsScan(benchmark::State& state) {
  RunMemorySweep(state, "rete-dbms-scan");
}

// Scan variants carry explicit iteration counts: at N = 10^5 every delta
// walks the full LEFT memory, and letting the framework auto-size the run
// would take minutes per data point.
BENCHMARK(BM_MemoryIndexing_Rete)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);
BENCHMARK(BM_MemoryIndexing_ReteScan)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Iterations(200);
BENCHMARK(BM_MemoryIndexing_ReteDbms)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);
BENCHMARK(BM_MemoryIndexing_ReteDbmsScan)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Iterations(200);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
