// E7 — Basic Locking vs Predicate Indexing ([STON86a], recounted in
// §2.3).
//
// Paper claim: "it is not possible to choose one implementation to
// efficiently support any rule-based environment. Depending on the
// probability of updating base relations and the number of conditions
// that overlap ... the first or the second approach becomes more
// efficient." Sweep condition count, overlap (range width), and the
// insert/delete mix. Basic Locking makes deletions O(markers-on-tuple)
// but pays candidate verification on inserts; Predicate Indexing pays a
// tree search on every update.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ruleindex/basic_locking.h"
#include "ruleindex/predicate_index.h"

namespace prodb {
namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", st.ToString().c_str());
    std::abort();
  }
}

struct Env {
  Catalog catalog;
  Relation* rel = nullptr;
  std::unique_ptr<RuleIndex> index;

  Env(const std::string& which, size_t conditions, double width_frac,
      uint64_t seed) {
    Check(catalog.CreateRelation(Schema("Emp", {{"age", ValueType::kInt},
                                                {"salary", ValueType::kInt}}),
                                 &rel));
    if (which == "basic") {
      index = std::make_unique<BasicLockingIndex>(&catalog);
    } else {
      index = std::make_unique<PredicateIndex>(2);
    }
    Rng rng(seed);
    const double domain = 1000.0;
    const double width = domain * width_frac;  // wider = more overlap
    for (uint32_t i = 0; i < conditions; ++i) {
      IndexedCondition cond;
      cond.id = i;
      cond.relation = "Emp";
      double lo0 = rng.NextDouble() * (domain - width);
      double lo1 = rng.NextDouble() * (domain - width);
      cond.ranges.push_back({lo0, lo0 + width});
      cond.ranges.push_back({lo1, lo1 + width});
      Check(index->AddCondition(cond));
    }
  }
};

// delete_pct is the update mix: 0 = pure inserts (phantom-heavy, bad for
// Basic Locking), 50 = churn (marker lookups shine).
void RunMix(benchmark::State& state, const std::string& which) {
  const size_t conditions = static_cast<size_t>(state.range(0));
  const int overlap_pct = static_cast<int>(state.range(1));
  const int delete_pct = static_cast<int>(state.range(2));
  Env env(which, conditions, overlap_pct / 100.0, 5);

  Rng rng(77);
  std::vector<std::pair<TupleId, Tuple>> live;
  uint64_t affected_total = 0, ops = 0;
  for (auto _ : state) {
    bool do_delete = !live.empty() &&
                     static_cast<int>(rng.Uniform(100)) < delete_pct;
    std::vector<uint32_t> affected;
    if (do_delete) {
      size_t pick = rng.Uniform(live.size());
      Check(env.index->OnDelete("Emp", live[pick].first, live[pick].second,
                                &affected));
      Check(env.rel->Delete(live[pick].first));
      live[pick] = live.back();
      live.pop_back();
    } else {
      Tuple t{Value(static_cast<int64_t>(rng.Uniform(1000))),
              Value(static_cast<int64_t>(rng.Uniform(1000)))};
      TupleId id;
      Check(env.rel->Insert(t, &id));
      Check(env.index->OnInsert("Emp", id, t, &affected));
      live.emplace_back(id, t);
    }
    affected_total += affected.size();
    ++ops;
  }
  state.counters["conditions"] = static_cast<double>(conditions);
  state.counters["overlap_pct"] = overlap_pct;
  state.counters["delete_pct"] = delete_pct;
  state.counters["avg_affected"] =
      static_cast<double>(affected_total) / static_cast<double>(ops);
  state.counters["index_bytes"] =
      static_cast<double>(env.index->FootprintBytes());
}

void BM_BasicLocking(benchmark::State& state) { RunMix(state, "basic"); }
void BM_PredicateIndex(benchmark::State& state) { RunMix(state, "pred"); }

// {conditions, overlap%, delete%}
#define MIX_ARGS                                                        \
  Args({100, 5, 0})->Args({100, 5, 50})->Args({100, 5, 90})            \
      ->Args({100, 40, 0})->Args({100, 40, 50})->Args({1000, 5, 0})    \
      ->Args({1000, 5, 50})->Args({1000, 5, 90})->Args({1000, 40, 0})  \
      ->Args({1000, 40, 50})

BENCHMARK(BM_BasicLocking)->MIX_ARGS;
BENCHMARK(BM_PredicateIndex)->MIX_ARGS;

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
