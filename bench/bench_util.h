#ifndef PRODB_BENCH_BENCH_UTIL_H_
#define PRODB_BENCH_BENCH_UTIL_H_

#include <memory>
#include <thread>

#include "common/rng.h"
#include "engine/working_memory.h"
#include "match/pattern_matcher.h"
#include "match/query_matcher.h"
#include "rete/network.h"
#include "workload/generator.h"

namespace prodb {
namespace bench {

/// A catalog + matcher + WM facade assembled from a WorkloadSpec.
/// Aborts on error (benchmarks have no error channel worth wiring).
struct Setup {
  std::unique_ptr<Catalog> catalog;
  std::vector<Rule> rules;
  std::unique_ptr<Matcher> matcher;
  std::unique_ptr<WorkingMemory> wm;
  WorkloadGenerator gen;

  explicit Setup(WorkloadSpec spec) : gen(spec) {}
};

inline void Abort(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 st.ToString().c_str());
    std::abort();
  }
}

template <typename MatcherFactory>
std::unique_ptr<Setup> MakeSetup(WorkloadSpec spec,
                                 MatcherFactory&& factory) {
  auto setup = std::make_unique<Setup>(spec);
  setup->catalog = std::make_unique<Catalog>();
  Abort(setup->gen.CreateClasses(setup->catalog.get()), "classes");
  setup->rules = setup->gen.GenerateRules();
  setup->matcher = factory(setup->catalog.get());
  for (const Rule& r : setup->rules) {
    Abort(setup->matcher->AddRule(r), "rule");
  }
  setup->wm = std::make_unique<WorkingMemory>(setup->catalog.get(),
                                              setup->matcher.get());
  return setup;
}

/// Default sharding configuration for the "-shard" matcher family:
/// 8 shards, pool sized to the hardware (`threads` overrides when > 0).
inline ShardingOptions DefaultSharding(size_t threads = 0) {
  ShardingOptions so;
  so.num_shards = 8;
  so.threads = threads != 0 ? threads
                            : static_cast<size_t>(
                                  std::thread::hardware_concurrency());
  if (so.threads == 0) so.threads = so.num_shards;
  return so;
}

/// The four architectures by name, plus three ablation families:
///  * "-scan": all indexing forced off — join-key token memories,
///    auto-declared WM hash indexes, AND constant-test discrimination —
///    the full linear-walk baseline for the indexing benchmarks.
///  * "-nodisc": only the constant-test discrimination index off (other
///    indexing at defaults), isolating the dispatch-tier contribution.
///  * "-shard": partitioned multi-core match (DefaultSharding), the
///    parallel OnBatch fan-out at defaults otherwise.
///  * "-plan": cost-based join planning on (src/plan) — beta chains /
///    evaluation orders chosen from catalog statistics, drift-triggered
///    re-plans at defaults otherwise.
inline std::unique_ptr<Matcher> MakeMatcherByName(const std::string& name,
                                                  Catalog* catalog) {
  if (name == "query") return std::make_unique<QueryMatcher>(catalog);
  if (name == "pattern") return std::make_unique<PatternMatcher>(catalog);
  if (name == "rete") return std::make_unique<ReteNetwork>(catalog);
  if (name == "rete-dbms") {
    ReteOptions opts;
    opts.dbms_backed = true;
    return std::make_unique<ReteNetwork>(catalog, opts);
  }
  if (name == "query-scan") {
    ExecutorOptions eo;
    eo.use_indexes = false;
    eo.declare_rule_indexes = false;
    eo.discriminate_dispatch = false;
    return std::make_unique<QueryMatcher>(catalog, eo);
  }
  if (name == "pattern-scan") {
    PatternMatcherOptions po;
    po.declare_wm_indexes = false;
    po.discriminate_dispatch = false;
    return std::make_unique<PatternMatcher>(catalog, po);
  }
  if (name == "rete-scan") {
    ReteOptions opts;
    opts.index_memories = false;
    opts.discriminate_alpha = false;
    return std::make_unique<ReteNetwork>(catalog, opts);
  }
  if (name == "rete-dbms-scan") {
    ReteOptions opts;
    opts.dbms_backed = true;
    opts.index_memories = false;
    opts.discriminate_alpha = false;
    return std::make_unique<ReteNetwork>(catalog, opts);
  }
  if (name == "query-nodisc") {
    ExecutorOptions eo;
    eo.discriminate_dispatch = false;
    return std::make_unique<QueryMatcher>(catalog, eo);
  }
  if (name == "pattern-nodisc") {
    PatternMatcherOptions po;
    po.discriminate_dispatch = false;
    return std::make_unique<PatternMatcher>(catalog, po);
  }
  if (name == "rete-nodisc") {
    ReteOptions opts;
    opts.discriminate_alpha = false;
    return std::make_unique<ReteNetwork>(catalog, opts);
  }
  if (name == "rete-dbms-nodisc") {
    ReteOptions opts;
    opts.dbms_backed = true;
    opts.discriminate_alpha = false;
    return std::make_unique<ReteNetwork>(catalog, opts);
  }
  if (name == "rete-shard") {
    ReteOptions opts;
    opts.sharding = DefaultSharding();
    return std::make_unique<ReteNetwork>(catalog, opts);
  }
  if (name == "rete-dbms-shard") {
    ReteOptions opts;
    opts.dbms_backed = true;
    opts.sharding = DefaultSharding();
    return std::make_unique<ReteNetwork>(catalog, opts);
  }
  if (name == "query-shard") {
    return std::make_unique<QueryMatcher>(catalog, ExecutorOptions{},
                                          DefaultSharding());
  }
  if (name == "pattern-shard") {
    PatternMatcherOptions po;
    po.propagation_threads = DefaultSharding().threads;
    return std::make_unique<PatternMatcher>(catalog, po);
  }
  if (name == "rete-plan") {
    ReteOptions opts;
    opts.planner.enable = true;
    return std::make_unique<ReteNetwork>(catalog, opts);
  }
  if (name == "rete-dbms-plan") {
    ReteOptions opts;
    opts.dbms_backed = true;
    opts.planner.enable = true;
    return std::make_unique<ReteNetwork>(catalog, opts);
  }
  if (name == "query-plan") {
    PlannerOptions po;
    po.enable = true;
    return std::make_unique<QueryMatcher>(catalog, ExecutorOptions{},
                                          ShardingOptions{}, po);
  }
  std::fprintf(stderr, "unknown matcher %s\n", name.c_str());
  std::abort();
}

/// Preloads `n` random tuples per class.
inline void Preload(Setup& setup, size_t n, uint64_t seed = 99) {
  Rng rng(seed);
  for (size_t c = 0; c < setup.gen.spec().num_classes; ++c) {
    for (size_t i = 0; i < n; ++i) {
      Abort(setup.wm->Insert(setup.gen.ClassName(c),
                             setup.gen.RandomTuple(&rng)),
            "preload");
    }
  }
}

}  // namespace bench
}  // namespace prodb

#endif  // PRODB_BENCH_BENCH_UTIL_H_
