// E4 — Space accounting (§4.2.3 Space).
//
// Paper claims: the Rete network "is an inherently redundant storage
// structure"; the simplified algorithm stores nothing; "our approach
// consumes a lot of space for storing matching patterns ... a trade-off
// between matching time and space". After an identical WM load, report
// the auxiliary bytes and resident pattern/token counts of each matcher.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace prodb {
namespace {

WorkloadSpec SpaceSpec(size_t rules) {
  WorkloadSpec spec;
  spec.num_classes = 6;
  spec.attrs_per_class = 4;
  spec.num_rules = rules;
  spec.ces_per_rule = 3;
  spec.domain = 64;
  spec.chain_join = true;
  spec.seed = 11;
  return spec;
}

void RunSpace(benchmark::State& state, const std::string& matcher_name) {
  const size_t rules = static_cast<size_t>(state.range(0));
  const size_t wm_per_class = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    auto setup = bench::MakeSetup(SpaceSpec(rules), [&](Catalog* c) {
      return bench::MakeMatcherByName(matcher_name, c);
    });
    state.ResumeTiming();
    bench::Preload(*setup, wm_per_class, 3);
    state.counters["aux_bytes"] =
        static_cast<double>(setup->matcher->AuxiliaryFootprintBytes());
    state.counters["stored_patterns"] = static_cast<double>(
        setup->matcher->stats().patterns_stored.load());
    state.counters["rules"] = static_cast<double>(rules);
    state.counters["wm_per_class"] = static_cast<double>(wm_per_class);
  }
}

void BM_Space_Rete(benchmark::State& state) { RunSpace(state, "rete"); }
void BM_Space_Pattern(benchmark::State& state) { RunSpace(state, "pattern"); }
void BM_Space_Query(benchmark::State& state) { RunSpace(state, "query"); }

BENCHMARK(BM_Space_Rete)
    ->Args({16, 200})
    ->Args({64, 200})
    ->Args({64, 500})
    ->Iterations(1);
BENCHMARK(BM_Space_Pattern)
    ->Args({16, 200})
    ->Args({64, 200})
    ->Args({64, 500})
    ->Iterations(1);
BENCHMARK(BM_Space_Query)
    ->Args({16, 200})
    ->Args({64, 200})
    ->Args({64, 500})
    ->Iterations(1);

// Tombstone accumulation under churn on paged storage. Heap-file slots
// are never reused — TupleIds must stay stable for matcher bookkeeping
// and abort compensation — so every delete leaks a 4-byte slot-directory
// entry even though CompactPage reclaims the record bytes. This reports
// the leak directly: dead slots and page footprint against live tuples
// after `churn` insert+delete pairs over a fixed-size working set.
void BM_Space_PagedChurn(benchmark::State& state) {
  const size_t live = 256;
  const size_t churn = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Catalog catalog;
    Relation* rel = nullptr;
    bench::Abort(
        catalog.CreateRelation(
            Schema("Churn", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}),
            StorageKind::kPaged, &rel),
        "relation");
    Rng rng(7);
    std::vector<TupleId> ids;
    for (size_t i = 0; i < live; ++i) {
      TupleId id;
      bench::Abort(rel->Insert(Tuple{Value(static_cast<int64_t>(i)),
                                     Value(static_cast<int64_t>(i))},
                               &id),
                   "insert");
      ids.push_back(id);
    }
    for (size_t i = 0; i < churn; ++i) {
      size_t pick = rng.Uniform(ids.size());
      bench::Abort(rel->Delete(ids[pick]), "delete");
      TupleId id;
      bench::Abort(rel->Insert(Tuple{Value(static_cast<int64_t>(i)),
                                     Value(static_cast<int64_t>(i))},
                               &id),
                   "insert");
      ids[pick] = id;
    }
    state.counters["live_tuples"] =
        static_cast<double>(rel->live_tuple_count());
    state.counters["dead_slots"] = static_cast<double>(rel->dead_slot_count());
    state.counters["footprint_bytes"] =
        static_cast<double>(rel->FootprintBytes());
    state.counters["churn"] = static_cast<double>(churn);
  }
}

BENCHMARK(BM_Space_PagedChurn)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Iterations(1);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
