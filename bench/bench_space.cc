// E4 — Space accounting (§4.2.3 Space).
//
// Paper claims: the Rete network "is an inherently redundant storage
// structure"; the simplified algorithm stores nothing; "our approach
// consumes a lot of space for storing matching patterns ... a trade-off
// between matching time and space". After an identical WM load, report
// the auxiliary bytes and resident pattern/token counts of each matcher.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace prodb {
namespace {

WorkloadSpec SpaceSpec(size_t rules) {
  WorkloadSpec spec;
  spec.num_classes = 6;
  spec.attrs_per_class = 4;
  spec.num_rules = rules;
  spec.ces_per_rule = 3;
  spec.domain = 64;
  spec.chain_join = true;
  spec.seed = 11;
  return spec;
}

void RunSpace(benchmark::State& state, const std::string& matcher_name) {
  const size_t rules = static_cast<size_t>(state.range(0));
  const size_t wm_per_class = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    auto setup = bench::MakeSetup(SpaceSpec(rules), [&](Catalog* c) {
      return bench::MakeMatcherByName(matcher_name, c);
    });
    state.ResumeTiming();
    bench::Preload(*setup, wm_per_class, 3);
    state.counters["aux_bytes"] =
        static_cast<double>(setup->matcher->AuxiliaryFootprintBytes());
    state.counters["stored_patterns"] = static_cast<double>(
        setup->matcher->stats().patterns_stored.load());
    state.counters["rules"] = static_cast<double>(rules);
    state.counters["wm_per_class"] = static_cast<double>(wm_per_class);
  }
}

void BM_Space_Rete(benchmark::State& state) { RunSpace(state, "rete"); }
void BM_Space_Pattern(benchmark::State& state) { RunSpace(state, "pattern"); }
void BM_Space_Query(benchmark::State& state) { RunSpace(state, "query"); }

BENCHMARK(BM_Space_Rete)
    ->Args({16, 200})
    ->Args({64, 200})
    ->Args({64, 500})
    ->Iterations(1);
BENCHMARK(BM_Space_Pattern)
    ->Args({16, 200})
    ->Args({64, 200})
    ->Args({64, 500})
    ->Iterations(1);
BENCHMARK(BM_Space_Query)
    ->Args({16, 200})
    ->Args({64, 200})
    ->Args({64, 500})
    ->Iterations(1);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
