// E18 — Serving layer: multi-client batched-op throughput and latency
// over the framed wire protocol (TCP loopback and unix-domain sockets),
// with and without durable acks.
//
// Each benchmark starts one in-process RuleServer, connects K persistent
// client connections (one thread each), and measures rounds of batched
// applies: every client sends kBatchesPerRound batches of kOpsPerBatch
// make ops and waits for each ack before sending the next (strict
// request/reply — the server's group commit is what keeps durable-ack
// throughput above one batch per fsync). Per-request latencies are
// recorded and reported as p50_us / p99_us counters; `qps` is acked
// batches per second and items_per_second is acked *ops* per second —
// the ISSUE gate (>= 10k batched ops/sec on loopback) reads the latter.
//
// Clients use disjoint classes so match maintenance runs real rule work
// without cross-client lock conflicts; the durable variant exercises the
// full WAL commit path (group commit across concurrently acking
// sessions).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"

namespace prodb {
namespace net {
namespace {

constexpr size_t kBatchesPerRound = 32;
constexpr size_t kOpsPerBatch = 16;

std::string Program(size_t classes) {
  std::string src;
  for (size_t c = 0; c < classes; ++c) {
    std::string cls = "C" + std::to_string(c);
    src += "(literalize " + cls + " v tag)\n";
    src += "(p r" + std::to_string(c) + " (" + cls +
           " ^v <x> ^tag 1) --> (make " + cls + " ^v <x> ^tag 0))\n";
  }
  return src;
}

void Abort(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench_server: %s: %s\n", what,
                 st.ToString().c_str());
    std::abort();
  }
}

enum class Transport { kTcp, kUnix };

void RunServerBench(benchmark::State& state, Transport transport,
                    bool durable) {
  const size_t clients = static_cast<size_t>(state.range(0));
  std::string db, unix_path;

  RuleServerOptions opts;
  if (transport == Transport::kTcp) {
    opts.tcp_port = 0;
  } else {
    unix_path = (std::filesystem::temp_directory_path() /
                 ("prodb_bench_sock_" + std::to_string(::getpid())))
                    .string();
    opts.unix_path = unix_path;
  }
  if (durable) {
    db = (std::filesystem::temp_directory_path() /
          ("prodb_bench_db_" + std::to_string(::getpid())))
             .string();
    std::filesystem::remove(db);
    opts.system.wm_storage = StorageKind::kPaged;
    opts.system.db_path = db;
    opts.system.enable_wal = true;
    opts.system.durable_directory = true;
    opts.system.buffer_pool_frames = 4096;
  }
  RuleServer server(opts);
  Abort(server.Start(), "server start");

  auto connect = [&](RuleClient* c) {
    if (transport == Transport::kTcp) {
      Abort(c->ConnectTcp("127.0.0.1", server.tcp_port()), "connect");
    } else {
      Abort(c->ConnectUnix(unix_path), "connect");
    }
  };

  {
    RuleClient admin;
    connect(&admin);
    Abort(admin.Load(Program(clients)), "load");
  }

  std::vector<RuleClient> conns(clients);
  for (size_t c = 0; c < clients; ++c) connect(&conns[c]);

  // Per-request latencies in microseconds, merged across rounds.
  std::vector<double> latencies;
  std::vector<std::vector<double>> per_client(clients);
  size_t batches_total = 0;
  std::atomic<uint64_t> value{0};

  for (auto _ : state) {
    for (auto& v : per_client) v.clear();
    auto round_start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        RuleClient& client = conns[c];
        const std::string cls = "C" + std::to_string(c);
        for (size_t b = 0; b < kBatchesPerRound; ++b) {
          WireBatch batch;
          for (size_t k = 0; k < kOpsPerBatch; ++k) {
            WireOp op;
            op.kind = kOpMake;
            op.cls = cls;
            op.tuple =
                Tuple{Value(static_cast<int64_t>(value.fetch_add(1))),
                      Value(static_cast<int64_t>(k == 0 ? 1 : 0))};
            batch.ops.push_back(std::move(op));
          }
          auto t0 = std::chrono::steady_clock::now();
          WireBatchAck ack;
          Abort(client.Apply(batch, &ack), "apply");
          auto t1 = std::chrono::steady_clock::now();
          per_client[c].push_back(
              std::chrono::duration<double, std::micro>(t1 - t0)
                  .count());
          if (durable && !ack.durable) {
            Abort(Status::Internal("ack not durable"), "durable ack");
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    auto round_end = std::chrono::steady_clock::now();
    state.SetIterationTime(
        std::chrono::duration<double>(round_end - round_start).count());
    for (auto& v : per_client) {
      latencies.insert(latencies.end(), v.begin(), v.end());
    }
    batches_total += clients * kBatchesPerRound;
  }

  server.Stop();
  if (!db.empty()) std::filesystem::remove(db);
  if (!unix_path.empty()) std::filesystem::remove(unix_path);

  state.SetItemsProcessed(
      static_cast<int64_t>(batches_total * kOpsPerBatch));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(batches_total), benchmark::Counter::kIsRate);
  state.counters["clients"] = static_cast<double>(clients);
  state.counters["ops_per_batch"] = static_cast<double>(kOpsPerBatch);
  if (!latencies.empty()) {
    auto pct = [&](double p) {
      size_t idx = static_cast<size_t>(p * (latencies.size() - 1));
      std::nth_element(latencies.begin(), latencies.begin() + idx,
                       latencies.end());
      return latencies[idx];
    };
    state.counters["p50_us"] = pct(0.50);
    state.counters["p99_us"] = pct(0.99);
  }
}

void BM_ServerTcp(benchmark::State& state) {
  RunServerBench(state, Transport::kTcp, /*durable=*/false);
}
BENCHMARK(BM_ServerTcp)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServerUnix(benchmark::State& state) {
  RunServerBench(state, Transport::kUnix, /*durable=*/false);
}
BENCHMARK(BM_ServerUnix)
    ->Arg(4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Durable acks: every positive ack is preceded by a WAL force; group
// commit across the concurrently acking sessions is what keeps this
// within sight of the volatile numbers.
void BM_ServerDurableTcp(benchmark::State& state) {
  RunServerBench(state, Transport::kTcp, /*durable=*/true);
}
BENCHMARK(BM_ServerDurableTcp)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace net
}  // namespace prodb

BENCHMARK_MAIN();
