// Ablations for the optimization claims of §3.2 / §6.
//
//  * "since multiple conditions ... may share simpler conditions, it
//    would be advantageous to build a global compiled plan" — alpha and
//    beta-prefix sharing in the Rete compiler ([SELL86]/[SELL88]).
//  * "the Rete Network implements only one possible way of processing a
//    set of conditions ... Database technology provides more efficient
//    ways of generating access plans" — the executor's most-selective-
//    first reordering versus fixed LHS order.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "db/executor.h"

namespace prodb {
namespace {

// Rules generated with the same seed share identical leading CEs in
// round-robin classes, so prefix sharing has real material to merge.
WorkloadSpec SharedPrefixSpec(size_t rules) {
  WorkloadSpec spec;
  spec.num_classes = 4;
  spec.attrs_per_class = 4;
  spec.num_rules = rules;
  spec.ces_per_rule = 3;
  spec.domain = 4;  // few distinct constants: prefixes collide often
  spec.chain_join = true;
  spec.seed = 3;
  return spec;
}

void RunSharing(benchmark::State& state, bool share) {
  const size_t rules = static_cast<size_t>(state.range(0));
  ReteOptions opts;
  opts.share_alpha = share;
  opts.share_beta = share;
  auto setup = bench::MakeSetup(SharedPrefixSpec(rules), [&](Catalog* c) {
    return std::make_unique<ReteNetwork>(c, opts);
  });
  bench::Preload(*setup, 32, 3);
  auto* rete = static_cast<ReteNetwork*>(setup->matcher.get());

  Rng rng(42);
  for (auto _ : state) {
    size_t cls = rng.Uniform(setup->gen.spec().num_classes);
    Tuple t = setup->gen.RandomTuple(&rng);
    TupleId id;
    bench::Abort(setup->wm->Insert(setup->gen.ClassName(cls), t, &id),
                 "insert");
    bench::Abort(setup->wm->Delete(setup->gen.ClassName(cls), id), "delete");
  }
  ReteTopology topo = rete->Topology();
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["alpha_nodes"] = static_cast<double>(topo.alpha_nodes);
  state.counters["beta_nodes"] = static_cast<double>(topo.beta_nodes);
  state.counters["tokens"] = static_cast<double>(rete->TokenCount());
  state.counters["aux_bytes"] =
      static_cast<double>(rete->AuxiliaryFootprintBytes());
}

void BM_Rete_Shared(benchmark::State& state) { RunSharing(state, true); }
void BM_Rete_Unshared(benchmark::State& state) { RunSharing(state, false); }

BENCHMARK(BM_Rete_Shared)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Rete_Unshared)->Arg(16)->Arg(64)->Arg(256);

// Plan reordering: a query whose LHS order is pessimal (unselective CE
// first). The reordering evaluator starts from the constant-bound CE.
void RunReorder(benchmark::State& state, bool reorder) {
  Catalog catalog;
  Relation* rel;
  bench::Abort(catalog.CreateRelation(
                   Schema("Big", {{"k", ValueType::kInt},
                                  {"v", ValueType::kInt}}),
                   &rel),
               "create");
  bench::Abort(catalog.CreateRelation(
                   Schema("Small", {{"k", ValueType::kInt},
                                    {"tag", ValueType::kInt}}),
                   &rel),
               "create");
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    TupleId id;
    bench::Abort(catalog.Get("Big")->Insert(
                     Tuple{Value(static_cast<int64_t>(rng.Uniform(1000))),
                           Value(i)},
                     &id),
                 "insert");
  }
  for (int i = 0; i < 50; ++i) {
    TupleId id;
    bench::Abort(catalog.Get("Small")->Insert(
                     Tuple{Value(static_cast<int64_t>(rng.Uniform(1000))),
                           Value(7)},
                     &id),
                 "insert");
  }
  // An index on the join attribute: the reordered plan binds the join
  // variable from the selective CE first and probes; the fixed LHS plan
  // enumerates Big before anything is bound.
  bench::Abort(catalog.Get("Big")->CreateHashIndex(0), "index");
  // LHS order: Big first (pessimal), then the selective Small CE.
  ConjunctiveQuery q;
  ConditionSpec big;
  big.relation = "Big";
  big.var_uses.push_back(VarUse{0, 0, CompareOp::kEq});
  ConditionSpec small;
  small.relation = "Small";
  small.constant_tests.push_back(ConstantTest{1, CompareOp::kEq, Value(7)});
  small.var_uses.push_back(VarUse{0, 0, CompareOp::kEq});
  q.conditions = {big, small};
  q.num_vars = 1;

  ExecutorOptions opts;
  opts.reorder = reorder;
  Executor exec(&catalog, opts);
  for (auto _ : state) {
    std::vector<QueryMatch> matches;
    bench::Abort(exec.Evaluate(q, &matches), "evaluate");
    benchmark::DoNotOptimize(matches.size());
  }
}

void BM_Plan_LhsOrder(benchmark::State& state) { RunReorder(state, false); }
void BM_Plan_Reordered(benchmark::State& state) { RunReorder(state, true); }

BENCHMARK(BM_Plan_LhsOrder);
BENCHMARK(BM_Plan_Reordered);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
