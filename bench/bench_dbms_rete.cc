// E8 — The straightforward DBMS implementation of the Rete network
// (§3.2): LEFT/RIGHT memories as catalog relations.
//
// Paper claims: it offers "simplicity and re-usability of existing
// technology" but "the large number of intermediate relations is not
// realistic" and the storage is redundant. Compare insertion cost and
// memory-relation growth: in-memory Rete vs relation-backed (volatile)
// vs relation-backed on paged secondary storage.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace prodb {
namespace {

WorkloadSpec ReteSpec() {
  WorkloadSpec spec;
  spec.num_classes = 4;
  spec.attrs_per_class = 4;
  spec.num_rules = 16;
  spec.ces_per_rule = 3;
  spec.domain = 32;
  spec.chain_join = true;
  spec.seed = 21;
  return spec;
}

void RunRete(benchmark::State& state, bool dbms_backed, bool paged) {
  ReteOptions opts;
  opts.dbms_backed = dbms_backed;
  opts.memory_storage = paged ? StorageKind::kPaged : StorageKind::kMemory;
  auto setup = bench::MakeSetup(ReteSpec(), [&](Catalog* c) {
    return std::make_unique<ReteNetwork>(c, opts);
  });
  bench::Preload(*setup, 64, 3);
  auto* rete = static_cast<ReteNetwork*>(setup->matcher.get());

  Rng rng(42);
  for (auto _ : state) {
    size_t cls = rng.Uniform(setup->gen.spec().num_classes);
    Tuple t = setup->gen.RandomTuple(&rng);
    TupleId id;
    bench::Abort(setup->wm->Insert(setup->gen.ClassName(cls), t, &id),
                 "insert");
    bench::Abort(setup->wm->Delete(setup->gen.ClassName(cls), id), "delete");
  }
  state.counters["tokens_resident"] = static_cast<double>(rete->TokenCount());
  state.counters["aux_bytes"] =
      static_cast<double>(rete->AuxiliaryFootprintBytes());
  // Count the LEFT/RIGHT relations the network created (0 when
  // in-memory) — the "large number of intermediate relations" of §4.
  double memory_rels = 0;
  for (const std::string& name : setup->catalog->RelationNames()) {
    if (name.rfind("LEFT", 0) == 0 || name.rfind("RIGHT", 0) == 0) {
      ++memory_rels;
    }
  }
  state.counters["memory_relations"] = memory_rels;
}

void BM_Rete_InMemory(benchmark::State& state) {
  RunRete(state, false, false);
}
void BM_Rete_Relations(benchmark::State& state) {
  RunRete(state, true, false);
}
void BM_Rete_RelationsPaged(benchmark::State& state) {
  RunRete(state, true, true);
}

BENCHMARK(BM_Rete_InMemory);
BENCHMARK(BM_Rete_Relations);
BENCHMARK(BM_Rete_RelationsPaged);

// Growth of the LEFT/RIGHT relations with WM volume (§3.2: tuples "can
// never be deleted ... unless there is an explicit deletion").
void BM_Rete_MemoryGrowth(benchmark::State& state) {
  const size_t volume = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ReteOptions opts;
    opts.dbms_backed = true;
    auto setup = bench::MakeSetup(ReteSpec(), [&](Catalog* c) {
      return std::make_unique<ReteNetwork>(c, opts);
    });
    state.ResumeTiming();
    Rng rng(9);
    for (size_t i = 0; i < volume; ++i) {
      size_t cls = rng.Uniform(setup->gen.spec().num_classes);
      bench::Abort(setup->wm->Insert(setup->gen.ClassName(cls),
                                     setup->gen.RandomTuple(&rng)),
                   "insert");
    }
    auto* rete = static_cast<ReteNetwork*>(setup->matcher.get());
    state.counters["wm_tuples"] = static_cast<double>(volume);
    state.counters["tokens_resident"] =
        static_cast<double>(rete->TokenCount());
  }
}

BENCHMARK(BM_Rete_MemoryGrowth)->Arg(500)->Arg(2000)->Iterations(1);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
