// WAL cost accounting (E14).
//
// Three questions the durability work raises for the performance story:
// (1) what a commit costs as a function of how much work it carries —
// group commit amortizes the log force, so batch size is the lever;
// (2) what write-ahead logging costs a paged transactional churn
// workload end-to-end versus the same workload with WAL off; (3) what
// restart recovery costs as a function of log length, since recovery
// runs on every open of an existing image.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "storage/recovery.h"
#include "txn/transaction.h"

namespace prodb {
namespace {

CatalogOptions WalOptions(DiskManager* disk, bool wal) {
  CatalogOptions copts;
  copts.default_storage = StorageKind::kPaged;
  copts.buffer_pool_frames = 64;
  copts.disk = disk;
  copts.enable_wal = wal;
  return copts;
}

// Attaches the catalog's durability counters to the benchmark row, so
// the report shows *why* a configuration costs what it costs (bytes
// logged, forces taken, pages stolen, checkpoint work).
void ReportDurability(benchmark::State& state, Catalog* catalog) {
  DurabilityStats ds = catalog->GetDurabilityStats();
  state.counters["wal_bytes_appended"] =
      benchmark::Counter(static_cast<double>(ds.wal_bytes_appended));
  state.counters["wal_flushes"] =
      benchmark::Counter(static_cast<double>(ds.wal_flushes));
  state.counters["pages_stolen"] =
      benchmark::Counter(static_cast<double>(ds.pages_stolen));
  state.counters["checkpoints_taken"] =
      benchmark::Counter(static_cast<double>(ds.checkpoints_taken));
  state.counters["log_pages_recycled"] =
      benchmark::Counter(static_cast<double>(ds.log_pages_recycled));
}

Schema WalSchema() {
  return Schema("W", {{"a", ValueType::kInt}, {"b", ValueType::kSymbol}});
}

// One transaction of `batch` inserts per iteration, committed through
// the group-commit path: the commit's single log force carries the whole
// batch, so time/op should fall as the batch widens.
void BM_CommitBatch(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  MemoryDiskManager disk;
  Catalog catalog(WalOptions(&disk, /*wal=*/true));
  LockManager locks;
  Relation* rel = nullptr;
  bench::Abort(catalog.CreateRelation(WalSchema(), StorageKind::kPaged, &rel),
               "relation");
  TxnManager tm(&catalog, &locks);
  int64_t n = 0;
  for (auto _ : state) {
    auto txn = tm.Begin();
    for (size_t i = 0; i < batch; ++i) {
      TupleId id;
      bench::Abort(txn->Insert("W", Tuple{Value(n++), Value("payload")}, &id),
                   "insert");
    }
    bench::Abort(tm.Commit(txn.get()), "commit");
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  ReportDurability(state, &catalog);
}
BENCHMARK(BM_CommitBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Transactional insert/delete churn, WAL off (arg 0) vs on (arg 1): the
// difference is the whole durability tax — record encoding, page LSN
// stamping, no-steal bookkeeping, and one log force per commit.
void BM_TxnChurn(benchmark::State& state) {
  bool wal = state.range(0) != 0;
  constexpr size_t kTxns = 64;
  constexpr size_t kOpsPerTxn = 8;
  DurabilityStats last;
  for (auto _ : state) {
    state.PauseTiming();
    MemoryDiskManager disk;
    Catalog catalog(WalOptions(&disk, wal));
    LockManager locks;
    Relation* rel = nullptr;
    bench::Abort(
        catalog.CreateRelation(WalSchema(), StorageKind::kPaged, &rel),
        "relation");
    TxnManager tm(&catalog, &locks);
    Rng rng(17);
    std::vector<TupleId> ids;
    state.ResumeTiming();
    int64_t n = 0;
    for (size_t t = 0; t < kTxns; ++t) {
      auto txn = tm.Begin();
      for (size_t i = 0; i < kOpsPerTxn; ++i) {
        if (ids.size() > 32 && rng.Chance(0.4)) {
          size_t pick = rng.Uniform(ids.size());
          bench::Abort(txn->Delete("W", ids[pick]), "delete");
          ids.erase(ids.begin() + static_cast<long>(pick));
        } else {
          TupleId id;
          bench::Abort(
              txn->Insert("W", Tuple{Value(n++), Value("payload")}, &id),
              "insert");
          ids.push_back(id);
        }
      }
      bench::Abort(tm.Commit(txn.get()), "commit");
    }
    last = catalog.GetDurabilityStats();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kTxns * kOpsPerTxn));
  state.SetLabel(wal ? "wal" : "no-wal");
  state.counters["wal_bytes_appended"] =
      benchmark::Counter(static_cast<double>(last.wal_bytes_appended));
  state.counters["wal_flushes"] =
      benchmark::Counter(static_cast<double>(last.wal_flushes));
  state.counters["pages_stolen"] =
      benchmark::Counter(static_cast<double>(last.pages_stolen));
}
BENCHMARK(BM_TxnChurn)->Arg(0)->Arg(1);

// Restart recovery over a crash image whose log holds `commits`
// committed transactions. The timed region is exactly what Catalog runs
// on open: scan, redo, truncate, flush.
void BM_Recovery(benchmark::State& state) {
  size_t commits = static_cast<size_t>(state.range(0));

  // Build the image once: commit `commits` transactions, then drop the
  // catalog (and its dirty pool) so only disk + log survive.
  MemoryDiskManager master;
  {
    Catalog catalog(WalOptions(&master, /*wal=*/true));
    LockManager locks;
    Relation* rel = nullptr;
    bench::Abort(
        catalog.CreateRelation(WalSchema(), StorageKind::kPaged, &rel),
        "relation");
    TxnManager tm(&catalog, &locks);
    int64_t n = 0;
    for (size_t t = 0; t < commits; ++t) {
      auto txn = tm.Begin();
      for (size_t i = 0; i < 4; ++i) {
        TupleId id;
        bench::Abort(
            txn->Insert("W", Tuple{Value(n++), Value("payload")}, &id),
            "insert");
      }
      bench::Abort(tm.Commit(txn.get()), "commit");
    }
  }

  char buf[kPageSize];
  for (auto _ : state) {
    state.PauseTiming();
    MemoryDiskManager img;
    for (uint32_t p = 0; p < master.PageCount(); ++p) {
      uint32_t pid;
      bench::Abort(img.AllocatePage(&pid), "alloc");
      bench::Abort(master.ReadPage(p, buf), "read");
      bench::Abort(img.WritePage(p, buf), "write");
    }
    BufferPool pool(64, &img);
    state.ResumeTiming();
    RecoveryResult rr;
    bench::Abort(RecoverLog(&pool, &rr), "recover");
    benchmark::DoNotOptimize(rr.records_redone);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(commits));
}
BENCHMARK(BM_Recovery)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
