// E5 — Parallel propagation of matching patterns (§4.2.3, §6).
//
// Paper claim: "our approach is easily parallelizable, since propagation
// of changes can be performed in parallel to all the COND relations. In
// contrast to that, the Rete Network method is highly sequential."
//
// A star rule of width W touches W-1 other COND relations per insertion;
// the pattern matcher propagates to them on a thread pool. Sweep thread
// counts at fixed width and widths at fixed threads.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace prodb {
namespace {

WorkloadSpec StarSpec(size_t width) {
  WorkloadSpec spec;
  spec.num_classes = width;
  spec.attrs_per_class = 4;
  spec.num_rules = 16;  // 16 star rules over the same classes
  spec.ces_per_rule = width;
  spec.domain = 32;
  spec.chain_join = false;
  spec.seed = 13;
  return spec;
}

void RunParallel(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  PatternMatcherOptions opts;
  opts.propagation_threads = threads;
  auto setup = bench::MakeSetup(StarSpec(width), [&](Catalog* c) {
    return std::make_unique<PatternMatcher>(c, opts);
  });
  bench::Preload(*setup, 16, 3);

  Rng rng(42);
  for (auto _ : state) {
    size_t cls = rng.Uniform(width);
    Tuple t = setup->gen.RandomTuple(&rng);
    TupleId id;
    bench::Abort(setup->wm->Insert(setup->gen.ClassName(cls), t, &id),
                 "insert");
    bench::Abort(setup->wm->Delete(setup->gen.ClassName(cls), id), "delete");
  }
  state.counters["width"] = static_cast<double>(width);
  state.counters["threads"] = static_cast<double>(threads);
}

BENCHMARK(RunParallel)
    ->Args({6, 1})
    ->Args({6, 2})
    ->Args({6, 4})
    ->Args({6, 8})
    ->Args({3, 4})
    ->Args({8, 4})
    ->UseRealTime();

// The contrast case: Rete on the same star workload is one sequential
// chain walk regardless of available cores.
void RunReteBaseline(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  auto setup = bench::MakeSetup(StarSpec(width), [&](Catalog* c) {
    return bench::MakeMatcherByName("rete", c);
  });
  bench::Preload(*setup, 16, 3);
  Rng rng(42);
  for (auto _ : state) {
    size_t cls = rng.Uniform(width);
    Tuple t = setup->gen.RandomTuple(&rng);
    TupleId id;
    bench::Abort(setup->wm->Insert(setup->gen.ClassName(cls), t, &id),
                 "insert");
    bench::Abort(setup->wm->Delete(setup->gen.ClassName(cls), id), "delete");
  }
  state.counters["width"] = static_cast<double>(width);
}

BENCHMARK(RunReteBaseline)->Arg(3)->Arg(6)->Arg(8);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
