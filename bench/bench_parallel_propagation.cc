// E16 — Sharded multi-core match: core-count scaling sweep (replaces the
// E5 pattern-matcher-only fan-out bench).
//
// Working memory is partitioned into 8 shards; each benchmark preloads a
// star workload (1e5 or 1e6 WMEs) through batched Apply, then measures
// batched churn (1024 mixed deltas per iteration, half of them crafted
// to match) at 1, 2, 4, and 8 worker threads. Serial baselines run the same
// churn on the unsharded matchers. Per-shard routing counters and the
// shard-imbalance ratio are emitted as benchmark counters.
//
// Thread counts above the machine's core count oversubscribe — results
// are still byte-identical (the ordered merge guarantees it); only the
// wall-clock is then meaningless as a scaling signal. CI runners have a
// handful of vCPUs; see EXPERIMENTS.md E16 for interpretation.
//
// The DBMS-backed Rete is absent by design: its shards execute serially
// (token movements share the catalog/WAL stack), so a thread sweep does
// not apply.

#include <benchmark/benchmark.h>

#include <deque>

#include "bench_util.h"

namespace prodb {
namespace {

constexpr size_t kShards = 8;
// Churn deltas per timed iteration. Sized so one batch's per-shard slice
// is a few hundred µs at 8 threads — enough to amortize the pool's
// dispatch + latch overhead; engine-realistic RHS-sized batches are far
// smaller, but this bench measures the scaling curve, not batch latency.
constexpr size_t kBatch = 1024;

WorkloadSpec StarSpec(size_t wmes) {
  WorkloadSpec spec;
  spec.num_classes = 8;  // head classes spread across all shards
  spec.attrs_per_class = 4;
  spec.num_rules = 16;
  spec.ces_per_rule = 6;  // star width 6
  spec.chain_join = false;
  // Keep per-alpha survivor counts roughly constant as WM grows, so the
  // churn measures propagation cost, not a degenerating join.
  spec.domain = static_cast<int64_t>(
      std::max<size_t>(32, wmes / 512));
  spec.seed = 13;
  return spec;
}

ShardingOptions Sharding(size_t threads,
                         std::vector<std::string> hot = {}) {
  ShardingOptions so;
  so.num_shards = kShards;
  so.threads = threads;
  so.hot_classes = std::move(hot);
  return so;
}

/// Bulk load `wmes` tuples (spread over the classes) through batched
/// Apply — chunked so each OnBatch sees a large but bounded ∆.
void PreloadBatched(bench::Setup& setup, size_t wmes, uint64_t seed) {
  Rng rng(seed);
  const size_t classes = setup.gen.spec().num_classes;
  ChangeSet cs;
  for (size_t i = 0; i < wmes; ++i) {
    cs.AddInsert(setup.gen.ClassName(i % classes),
                 setup.gen.RandomTuple(&rng));
    if (cs.size() == 65536) {
      bench::Abort(setup.wm->Apply(&cs), "preload");
      cs.clear();
    }
  }
  if (!cs.empty()) bench::Abort(setup.wm->Apply(&cs), "preload");
}

/// Batched churn: per iteration one BeginBatch/CommitBatch of kBatch
/// deltas — alternating inserts (half crafted to pass a random rule CE's
/// constant test, so real join work flows) and deletes of earlier churn
/// tuples, keeping WM size steady.
void Churn(benchmark::State& state, bench::Setup& setup, size_t skew_class) {
  const size_t classes = setup.gen.spec().num_classes;
  const bool skew = skew_class < classes;
  const std::string skew_name = setup.gen.ClassName(skew ? skew_class : 0);
  // (rule, ce) pairs the matched-insert half draws from; under skew only
  // CEs over the skew class qualify so every delta lands on one class.
  std::vector<std::pair<size_t, size_t>> targets;
  for (size_t r = 0; r < setup.rules.size(); ++r) {
    const auto& conds = setup.rules[r].lhs.conditions;
    for (size_t c = 0; c < conds.size(); ++c) {
      if (!skew || conds[c].relation == skew_name) targets.emplace_back(r, c);
    }
  }
  Rng rng(4242);
  std::deque<std::pair<std::string, TupleId>> live;
  size_t items = 0;
  for (auto _ : state) {
    setup.wm->BeginBatch();
    for (size_t k = 0; k < kBatch; ++k) {
      if (k % 2 == 1 && live.size() > kBatch) {
        auto [cls, id] = live.front();
        live.pop_front();
        bench::Abort(setup.wm->Delete(cls, id), "churn delete");
      } else {
        std::string cls;
        Tuple t;
        if (rng.Chance(0.5) && !targets.empty()) {
          auto [r, ce] = targets[rng.Uniform(targets.size())];
          cls = setup.rules[r].lhs.conditions[ce].relation;
          t = setup.gen.MatchingTuple(setup.rules[r], ce, &rng);
        } else {
          cls = skew ? skew_name
                     : setup.gen.ClassName(rng.Uniform(classes));
          t = setup.gen.RandomTuple(&rng);
        }
        TupleId id;
        bench::Abort(setup.wm->Insert(cls, t, &id), "churn insert");
        live.emplace_back(std::move(cls), id);
      }
      ++items;
    }
    bench::Abort(setup.wm->CommitBatch(), "churn commit");
  }
  state.SetItemsProcessed(static_cast<int64_t>(items));

  std::vector<ShardStats> shard_stats = setup.matcher->ShardStatsSnapshot();
  if (!shard_stats.empty()) {
    uint64_t routed = 0, merge_wait = 0;
    for (const ShardStats& s : shard_stats) {
      routed += s.deltas_routed;
      merge_wait += s.merge_wait_ns;
    }
    state.counters["shards"] = static_cast<double>(shard_stats.size());
    state.counters["deltas_routed"] = static_cast<double>(routed);
    state.counters["imbalance"] = ShardImbalance(shard_stats);
    state.counters["merge_wait_ms"] =
        static_cast<double>(merge_wait) / 1e6;
  }
}

void RunSweep(benchmark::State& state, const std::string& matcher_kind,
              size_t wmes, size_t threads, bool skew) {
  auto setup = bench::MakeSetup(StarSpec(wmes), [&](Catalog* c)
                                    -> std::unique_ptr<Matcher> {
    if (matcher_kind == "rete-shard") {
      ReteOptions opts;
      opts.sharding =
          Sharding(threads, skew ? std::vector<std::string>{"C0"}
                                 : std::vector<std::string>{});
      return std::make_unique<ReteNetwork>(c, opts);
    }
    if (matcher_kind == "rete") {
      return std::make_unique<ReteNetwork>(c);
    }
    if (matcher_kind == "query-shard") {
      return std::make_unique<QueryMatcher>(c, ExecutorOptions{},
                                            Sharding(threads));
    }
    if (matcher_kind == "query") {
      return std::make_unique<QueryMatcher>(c);
    }
    // pattern: per-class COND propagation on its own pool.
    PatternMatcherOptions po;
    po.propagation_threads = threads;
    return std::make_unique<PatternMatcher>(c, po);
  });
  Status sharding_st = setup->wm->ConfigureSharding(
      matcher_kind == "rete-shard" || matcher_kind == "query-shard"
          ? Sharding(threads)
          : ShardingOptions{});
  (void)sharding_st;
  PreloadBatched(*setup, wmes, 3);
  Churn(state, *setup,
        skew ? 0 : setup->gen.spec().num_classes /* no skew */);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["wmes"] = static_cast<double>(wmes);
}

// --- Sharded Rete: the headline sweep ---------------------------------
void BM_ShardScalingRete(benchmark::State& state) {
  RunSweep(state, "rete-shard", static_cast<size_t>(state.range(0)),
           static_cast<size_t>(state.range(1)), /*skew=*/false);
}
BENCHMARK(BM_ShardScalingRete)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8})
    ->Args({1000000, 1})
    ->Args({1000000, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SerialRete(benchmark::State& state) {
  RunSweep(state, "rete", static_cast<size_t>(state.range(0)), 1,
           /*skew=*/false);
}
BENCHMARK(BM_SerialRete)
    ->Arg(100000)
    ->Arg(1000000)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Skewed churn (every delta on class C0, declared hot): head-tuple hash
// partitioning spreads one class's deltas across all shards.
void BM_HotSkewRete(benchmark::State& state) {
  RunSweep(state, "rete-shard", 100000,
           static_cast<size_t>(state.range(0)), /*skew=*/true);
}
BENCHMARK(BM_HotSkewRete)
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- Sharded query matcher --------------------------------------------
void BM_ShardScalingQuery(benchmark::State& state) {
  RunSweep(state, "query-shard", 100000,
           static_cast<size_t>(state.range(0)), /*skew=*/false);
}
BENCHMARK(BM_ShardScalingQuery)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SerialQuery(benchmark::State& state) {
  RunSweep(state, "query", 100000, 1, /*skew=*/false);
}
BENCHMARK(BM_SerialQuery)->UseRealTime()->Unit(benchmark::kMillisecond);

// --- Pattern matcher (its §4.2.3 per-class fan-out) -------------------
void BM_ShardScalingPattern(benchmark::State& state) {
  RunSweep(state, "pattern", 100000,
           static_cast<size_t>(state.range(0)), /*skew=*/false);
}
BENCHMARK(BM_ShardScalingPattern)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
