// E2 — Match latency per WM change across rule-base sizes (§4.2.3 Time).
//
// Paper claim: "Matching is very fast with our approach because only a
// single search over a COND relation is necessary", versus the Rete
// network's propagation and the simplified algorithm's join
// re-computation. Sweeps the number of rules; each iteration inserts a
// tuple that passes some alpha tests, then removes it.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace prodb {
namespace {

WorkloadSpec RuleSweepSpec(size_t rules) {
  WorkloadSpec spec;
  spec.num_classes = 8;
  spec.attrs_per_class = 4;
  spec.num_rules = rules;
  spec.ces_per_rule = 3;
  spec.domain = 32;
  spec.chain_join = true;
  spec.seed = 17;
  return spec;
}

void RunLatency(benchmark::State& state, const std::string& matcher_name) {
  const size_t rules = static_cast<size_t>(state.range(0));
  auto setup = bench::MakeSetup(RuleSweepSpec(rules), [&](Catalog* c) {
    return bench::MakeMatcherByName(matcher_name, c);
  });
  bench::Preload(*setup, 64, 3);

  Rng rng(42);
  for (auto _ : state) {
    size_t cls = rng.Uniform(setup->gen.spec().num_classes);
    Tuple t = setup->gen.RandomTuple(&rng);
    TupleId id;
    bench::Abort(setup->wm->Insert(setup->gen.ClassName(cls), t, &id),
                 "insert");
    bench::Abort(setup->wm->Delete(setup->gen.ClassName(cls), id), "delete");
  }
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["aux_bytes"] =
      static_cast<double>(setup->matcher->AuxiliaryFootprintBytes());
}

void BM_Match_Rete(benchmark::State& state) { RunLatency(state, "rete"); }
void BM_Match_Pattern(benchmark::State& state) {
  RunLatency(state, "pattern");
}
void BM_Match_Query(benchmark::State& state) { RunLatency(state, "query"); }

BENCHMARK(BM_Match_Rete)->Arg(10)->Arg(100)->Arg(500);
BENCHMARK(BM_Match_Pattern)->Arg(10)->Arg(100)->Arg(500);
BENCHMARK(BM_Match_Query)->Arg(10)->Arg(100)->Arg(500);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
