// E13 — Constant-test discrimination index: rule dispatch vs rule count
// (§2.3 / [STON86a]).
//
// Every matcher must route each WM delta to the condition elements /
// alpha nodes that could accept it. The seed implementation walked every
// entry registered on the delta's class — per-delta cost linear in the
// rule count, the classic OPS5 scaling wall. The discrimination index
// buckets entries by their `attr == constant` test (hash), bounded
// numeric ranges (interval tree stab), or neither (residual list), so
// dispatch cost tracks the number of *candidates*, not the number of
// rules.
//
// This sweep grows the rule base 16 -> 4096 over a fixed class count
// with a mixed test population (70% equality, 25% bounded range, 5%
// residual `<>`) and measures the per-delta insert+delete cost. With the
// index on, alpha_tests_evaluated per delta stays near the expected
// candidate count (rules/domain for the eq tier plus the range/residual
// overlap); with the "-scan" ablation it equals the full per-class entry
// count — the counters expose the asymptotic gap directly, independent
// of wall-clock noise.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace prodb {
namespace {

void RunRuleSweep(benchmark::State& state, const std::string& matcher_name,
                  bool eq_only = false) {
  WorkloadSpec spec;
  spec.num_classes = 4;
  spec.attrs_per_class = 4;
  spec.num_rules = static_cast<size_t>(state.range(0));
  spec.ces_per_rule = 2;
  // Domain scales the eq-bucket occupancy: at 1024 values, even 4096
  // rules leave ~1 equality candidate per (class, value) bucket.
  spec.domain = 1024;
  // The mixed population keeps a 5% residual tier whose entries are
  // candidates for every delta; the eq-only variant isolates the hash
  // tier, where the candidate count is flat in the rule count.
  spec.range_test_prob = eq_only ? 0.0 : 0.25;
  spec.residual_test_prob = eq_only ? 0.0 : 0.05;
  spec.seed = 7;

  auto setup = bench::MakeSetup(spec, [&](Catalog* c) {
    return bench::MakeMatcherByName(matcher_name, c);
  });
  bench::Preload(*setup, 32);

  Rng rng(1234);
  for (auto _ : state) {
    const std::string cls =
        setup->gen.ClassName(rng.Uniform(spec.num_classes));
    TupleId id;
    bench::Abort(setup->wm->Insert(cls, setup->gen.RandomTuple(&rng), &id),
                 "insert");
    bench::Abort(setup->wm->Delete(cls, id), "delete");
  }

  const MatcherStats& st = setup->matcher->stats();
  const double iters = static_cast<double>(state.iterations());
  state.counters["rules"] = static_cast<double>(spec.num_rules);
  state.counters["alpha_tests_per_delta"] =
      static_cast<double>(st.alpha_tests_evaluated.load()) / (2 * iters);
  state.counters["candidates_per_delta"] =
      static_cast<double>(st.candidates_visited.load()) / (2 * iters);
}

void BM_RuleScaling_Rete(benchmark::State& state) {
  RunRuleSweep(state, "rete");
}
void BM_RuleScaling_ReteScan(benchmark::State& state) {
  RunRuleSweep(state, "rete-scan");
}
void BM_RuleScaling_ReteDbms(benchmark::State& state) {
  RunRuleSweep(state, "rete-dbms");
}
void BM_RuleScaling_ReteDbmsScan(benchmark::State& state) {
  RunRuleSweep(state, "rete-dbms-scan");
}
void BM_RuleScaling_Query(benchmark::State& state) {
  RunRuleSweep(state, "query");
}
void BM_RuleScaling_QueryScan(benchmark::State& state) {
  RunRuleSweep(state, "query-scan");
}
void BM_RuleScaling_Pattern(benchmark::State& state) {
  RunRuleSweep(state, "pattern");
}
void BM_RuleScaling_PatternScan(benchmark::State& state) {
  RunRuleSweep(state, "pattern-scan");
}
void BM_RuleScaling_ReteEqOnly(benchmark::State& state) {
  RunRuleSweep(state, "rete", /*eq_only=*/true);
}
void BM_RuleScaling_QueryEqOnly(benchmark::State& state) {
  RunRuleSweep(state, "query", /*eq_only=*/true);
}

// Scan variants carry explicit iteration counts: at 4096 rules every
// delta tests ~1000 entries on its class, and auto-sizing the run would
// take minutes per data point.
#define RULE_ARGS ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
BENCHMARK(BM_RuleScaling_Rete) RULE_ARGS;
BENCHMARK(BM_RuleScaling_ReteScan) RULE_ARGS->Iterations(500);
BENCHMARK(BM_RuleScaling_ReteDbms) RULE_ARGS;
BENCHMARK(BM_RuleScaling_ReteDbmsScan) RULE_ARGS->Iterations(500);
BENCHMARK(BM_RuleScaling_Query) RULE_ARGS;
BENCHMARK(BM_RuleScaling_QueryScan) RULE_ARGS->Iterations(500);
BENCHMARK(BM_RuleScaling_Pattern) RULE_ARGS;
BENCHMARK(BM_RuleScaling_PatternScan) RULE_ARGS->Iterations(500);
BENCHMARK(BM_RuleScaling_ReteEqOnly) RULE_ARGS;
BENCHMARK(BM_RuleScaling_QueryEqOnly) RULE_ARGS;
#undef RULE_ARGS

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
