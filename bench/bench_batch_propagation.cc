// E8 — Batched delta propagation through the ChangeSet pipeline.
//
// The §5.2 commit rule makes a transaction's whole ∆ins/∆del visible to
// the maintenance process at once; this sweep measures what the matchers
// do with that: per-delta propagation steps and tuples examined as the
// batch grows {1, 8, 64, 512}. Batch size 1 is the per-tuple baseline
// (OnBatch delegates to OnInsert/OnDelete), so its cost must not regress;
// at larger sizes the Rete network amortizes alpha passes per relation
// group and the query matcher amortizes conflict-set passes and negated
// re-evaluations across the whole batch.
//
// Run with --benchmark_format=json for machine-readable output.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace prodb {
namespace {

WorkloadSpec BatchSpec() {
  // E2-style shape: chained joins over a few classes, dense enough that
  // deltas actually reach the join layers.
  WorkloadSpec spec;
  spec.num_classes = 3;
  spec.attrs_per_class = 4;
  spec.num_rules = 8;
  spec.ces_per_rule = 3;
  spec.domain = 32;
  spec.chain_join = true;
  spec.seed = 71;
  return spec;
}

void RunBatchSweep(benchmark::State& state, const std::string& matcher_name) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  auto setup = bench::MakeSetup(BatchSpec(), [&](Catalog* c) {
    return bench::MakeMatcherByName(matcher_name, c);
  });
  bench::Preload(*setup, 200, 5);

  const MatcherStats& stats = setup->matcher->stats();
  const uint64_t prop0 = stats.propagations.load();
  const uint64_t tup0 = stats.tuples_examined.load();
  const uint64_t batch0 = stats.batches.load();

  Rng rng(42);
  std::vector<std::pair<std::string, TupleId>> live;
  uint64_t deltas = 0;
  for (auto _ : state) {
    setup->wm->BeginBatch();
    for (size_t k = 0; k < batch_size; ++k) {
      // Steady-state churn: favor deletes once the backlog builds so WM
      // size stays roughly constant across batch sizes.
      if (!live.empty() && rng.Chance(live.size() > 256 ? 0.7 : 0.4)) {
        size_t pick = rng.Uniform(live.size());
        bench::Abort(setup->wm->Delete(live[pick].first, live[pick].second),
                     "delete");
        live[pick] = live.back();
        live.pop_back();
      } else {
        std::string cls =
            setup->gen.ClassName(rng.Uniform(setup->gen.spec().num_classes));
        TupleId id;
        bench::Abort(setup->wm->Insert(cls, setup->gen.RandomTuple(&rng), &id),
                     "insert");
        live.emplace_back(std::move(cls), id);
      }
      ++deltas;
    }
    bench::Abort(setup->wm->CommitBatch(), "commit");
  }

  const double n = deltas > 0 ? static_cast<double>(deltas) : 1.0;
  state.counters["batch_size"] = static_cast<double>(batch_size);
  state.counters["propagations_per_delta"] =
      static_cast<double>(stats.propagations.load() - prop0) / n;
  state.counters["tuples_examined_per_delta"] =
      static_cast<double>(stats.tuples_examined.load() - tup0) / n;
  state.counters["batches"] =
      static_cast<double>(stats.batches.load() - batch0);
  state.SetItemsProcessed(static_cast<int64_t>(deltas));
}

void BM_BatchSweep_Rete(benchmark::State& state) {
  RunBatchSweep(state, "rete");
}
void BM_BatchSweep_ReteDbms(benchmark::State& state) {
  RunBatchSweep(state, "rete-dbms");
}
void BM_BatchSweep_Query(benchmark::State& state) {
  RunBatchSweep(state, "query");
}
void BM_BatchSweep_Pattern(benchmark::State& state) {
  RunBatchSweep(state, "pattern");
}

BENCHMARK(BM_BatchSweep_Rete)->Arg(1)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_BatchSweep_ReteDbms)->Arg(1)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_BatchSweep_Query)->Arg(1)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_BatchSweep_Pattern)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
