// Fault-tolerance cost accounting.
//
// Two questions the fault-injection work raises for the performance
// story: (1) what does wrapping every disk op in the injecting
// decorator cost when no fault is armed — i.e. can the sweep harness's
// instrumentation be left on in stress builds; (2) what does one
// injected mid-workload fault cost end-to-end once the error has
// propagated, the pool re-balanced, and the workload resumed. Both run
// the same paged churn workload the sweep uses, so the numbers line up
// with tests/fault_sweep_test.cc.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "storage/fault_disk.h"

namespace prodb {
namespace {

// Paged insert/delete churn over a pool small enough to evict: every
// step does real ReadPage/WritePage traffic through the disk manager.
void RunPagedChurn(Catalog* catalog, size_t steps) {
  Relation* rel = nullptr;
  bench::Abort(
      catalog->CreateRelation(
          Schema("Churn", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}),
          StorageKind::kPaged, &rel),
      "relation");
  Rng rng(17);
  std::vector<TupleId> ids;
  for (size_t i = 0; i < steps; ++i) {
    if (ids.size() > 64 && rng.Chance(0.5)) {
      size_t pick = rng.Uniform(ids.size());
      bench::Abort(rel->Delete(ids[pick]), "delete");
      ids.erase(ids.begin() + static_cast<long>(pick));
    } else {
      TupleId id;
      bench::Abort(rel->Insert(Tuple{Value(static_cast<int64_t>(i)),
                                     Value(static_cast<int64_t>(i * 3))},
                               &id),
                   "insert");
      ids.push_back(id);
    }
  }
  bench::Abort(catalog->buffer_pool()->FlushAll(), "flush");
}

CatalogOptions ChurnOptions(DiskManager* disk) {
  CatalogOptions copts;
  copts.default_storage = StorageKind::kPaged;
  copts.buffer_pool_frames = 8;  // tiny: force eviction traffic
  copts.disk = disk;
  return copts;
}

// Baseline: the pool talks straight to a MemoryDiskManager.
void BM_FaultDisk_RawDisk(benchmark::State& state) {
  const size_t steps = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    MemoryDiskManager disk;
    Catalog catalog(ChurnOptions(&disk));
    RunPagedChurn(&catalog, steps);
    benchmark::DoNotOptimize(disk.PageCount());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(steps));
}

// Same workload through a disarmed FaultInjectingDiskManager: the cost
// of the decorator's op accounting (a mutex + counters per disk op).
void BM_FaultDisk_DisarmedWrapper(benchmark::State& state) {
  const size_t steps = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    FaultInjectingDiskManager fault(std::make_unique<MemoryDiskManager>());
    Catalog catalog(ChurnOptions(&fault));
    RunPagedChurn(&catalog, steps);
    benchmark::DoNotOptimize(fault.total_ops());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(steps));
}

BENCHMARK(BM_FaultDisk_RawDisk)->Arg(2000)->Arg(20000);
BENCHMARK(BM_FaultDisk_DisarmedWrapper)->Arg(2000)->Arg(20000);

// One-shot fault at the workload's midpoint (by global op index from a
// dry run), then recovery: disarm, flush everything, verify the books.
// Measures the full fail-propagate-rebalance-resume path, not just the
// error return. The workload tolerates the failed step by skipping it —
// the same contract the sweep asserts (clean Status, no torn state).
void BM_FaultDisk_MidworkloadFaultAndRecover(benchmark::State& state) {
  const size_t steps = static_cast<size_t>(state.range(0));
  // Dry run to learn the op count so the fault lands mid-workload.
  uint64_t total_ops = 0;
  {
    FaultInjectingDiskManager fault(std::make_unique<MemoryDiskManager>());
    Catalog catalog(ChurnOptions(&fault));
    RunPagedChurn(&catalog, steps);
    total_ops = fault.total_ops();
  }
  uint64_t faults_seen = 0;
  for (auto _ : state) {
    FaultInjectingDiskManager fault(std::make_unique<MemoryDiskManager>());
    fault.FailAtOp(total_ops / 2);
    Catalog catalog(ChurnOptions(&fault));
    Relation* rel = nullptr;
    bench::Abort(
        catalog.CreateRelation(
            Schema("Churn", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}),
            StorageKind::kPaged, &rel),
        "relation");
    Rng rng(17);
    for (size_t i = 0; i < steps; ++i) {
      TupleId id;
      (void)rel->Insert(Tuple{Value(static_cast<int64_t>(i)),
                              Value(static_cast<int64_t>(i * 3))},
                        &id);
    }
    faults_seen += fault.injected_faults();
    fault.Disarm();
    bench::Abort(catalog.buffer_pool()->FlushAll(), "flush");
    bench::Abort(catalog.buffer_pool()->VerifyFrameAccounting(), "balance");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(steps));
  state.counters["faults_injected"] =
      static_cast<double>(faults_seen) / static_cast<double>(state.iterations());
}

BENCHMARK(BM_FaultDisk_MidworkloadFaultAndRecover)->Arg(2000);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
