// E9 — Trigger / materialized-view maintenance (§2.2, §2.3, §6).
//
// Paper claim: the matching machinery solves view maintenance; Buneman &
// Clemons' triggering "requires recomputing the view after each update
// [which] is very expensive". Compare a full-recompute strategy (run the
// view query after every base update) with incremental maintenance by
// each matcher, as base size grows.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "db/executor.h"

namespace prodb {
namespace {

// View: Emp(dno) ⋈ Dept(dno) restricted to dname = Toy.
ConjunctiveQuery ViewQuery() {
  ConjunctiveQuery q;
  ConditionSpec emp;
  emp.relation = "Emp";
  emp.var_uses.push_back(VarUse{1, 0, CompareOp::kEq});
  ConditionSpec dept;
  dept.relation = "Dept";
  dept.var_uses.push_back(VarUse{0, 0, CompareOp::kEq});
  dept.constant_tests.push_back(ConstantTest{1, CompareOp::kEq, Value("Toy")});
  q.conditions = {emp, dept};
  q.num_vars = 1;
  return q;
}

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", st.ToString().c_str());
    std::abort();
  }
}

void SetupBase(Catalog* catalog, size_t base_size, Rng* rng) {
  Relation* rel;
  Check(catalog->CreateRelation(Schema("Emp", {{"name", ValueType::kSymbol},
                                               {"dno", ValueType::kInt}}),
                                &rel));
  Check(catalog->CreateRelation(Schema("Dept", {{"dno", ValueType::kInt},
                                                {"dname", ValueType::kSymbol}}),
                                &rel));
  for (size_t i = 0; i < base_size; ++i) {
    TupleId id;
    Check(catalog->Get("Emp")->Insert(
        Tuple{Value("E" + std::to_string(i)),
              Value(static_cast<int64_t>(rng->Uniform(64)))},
        &id));
  }
  for (int d = 0; d < 64; ++d) {
    TupleId id;
    Check(catalog->Get("Dept")->Insert(
        Tuple{Value(d), Value(rng->Chance(0.3) ? "Toy" : "Other")}, &id));
  }
}

// Baseline: recompute the view after every update (Buneman/Clemons
// without RIU filtering).
void BM_View_Recompute(benchmark::State& state) {
  const size_t base = static_cast<size_t>(state.range(0));
  Catalog catalog;
  Rng rng(3);
  SetupBase(&catalog, base, &rng);
  Executor exec(&catalog);
  ConjunctiveQuery view = ViewQuery();
  for (auto _ : state) {
    TupleId id;
    Check(catalog.Get("Emp")->Insert(
        Tuple{Value("new"), Value(static_cast<int64_t>(rng.Uniform(64)))},
        &id));
    std::vector<QueryMatch> rows;
    Check(exec.Evaluate(view, &rows));
    benchmark::DoNotOptimize(rows.size());
    Check(catalog.Get("Emp")->Delete(id));
  }
  state.counters["base_emps"] = static_cast<double>(base);
}

// Incremental: the matcher reports exactly the affected view rows.
void RunIncremental(benchmark::State& state, const std::string& matcher) {
  const size_t base = static_cast<size_t>(state.range(0));
  Catalog catalog;
  Rng rng(3);
  SetupBase(&catalog, base, &rng);

  Rule rule;
  rule.name = "view";
  rule.lhs = ViewQuery();
  auto m = bench::MakeMatcherByName(matcher, &catalog);
  Check(m->AddRule(rule));
  // Register pre-existing contents with the matcher (view population).
  Check(catalog.Get("Emp")->Scan([&](TupleId id, const Tuple& t) {
    return m->OnInsert("Emp", id, t);
  }));
  Check(catalog.Get("Dept")->Scan([&](TupleId id, const Tuple& t) {
    return m->OnInsert("Dept", id, t);
  }));
  WorkingMemory wm(&catalog, m.get());

  for (auto _ : state) {
    TupleId id;
    Check(wm.Insert(
        "Emp",
        Tuple{Value("new"), Value(static_cast<int64_t>(rng.Uniform(64)))},
        &id));
    benchmark::DoNotOptimize(m->conflict_set().size());
    Check(wm.Delete("Emp", id));
  }
  state.counters["base_emps"] = static_cast<double>(base);
}

void BM_View_IncrementalPattern(benchmark::State& state) {
  RunIncremental(state, "pattern");
}
void BM_View_IncrementalRete(benchmark::State& state) {
  RunIncremental(state, "rete");
}

BENCHMARK(BM_View_Recompute)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_View_IncrementalPattern)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_View_IncrementalRete)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace prodb

BENCHMARK_MAIN();
