// Rule-base queries (§4.2.3, [LIN87]): because conditions live in their
// own relations — not scattered over the data as in POSTGRES — the rule
// base itself is queryable: "Give me all the rules that apply on
// employees older than 55", even before any matching data exists.
//
//   ./build/examples/example_rulebase_explorer

#include <cstdio>

#include "core/production_system.h"

using namespace prodb;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::prodb::Status _st = (expr);                                   \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                         \
      return 1;                                                     \
    }                                                               \
  } while (0)

int main() {
  ProductionSystem ps;  // pattern matcher + rule-base queries by default
  CHECK_OK(ps.LoadString(R"(
(literalize Emp name age salary dno)

; HR policy rules with numeric envelopes over age and salary.
(p early-retirement-offer
  (Emp ^age > 55 ^salary > 90000)
  -->
  (remove 1))

(p mandatory-training
  (Emp ^age < 30)
  -->
  (remove 1))

(p salary-band-review
  (Emp ^salary { >= 50000 <= 80000 })
  -->
  (remove 1))

(p anniversary-check
  (Emp ^age <a>)
  -->
  (remove 1))
)"));

  std::printf("Loaded %zu rules. No working memory needed — the rule\n",
              ps.rules().size());
  std::printf("base itself is indexed (R-tree over condition boxes).\n\n");

  struct Probe {
    const char* label;
    const char* attr;
    CompareOp op;
    double value;
  };
  const Probe probes[] = {
      {"employees older than 55 (the paper's query)", "age", CompareOp::kGt,
       55},
      {"employees younger than 25", "age", CompareOp::kLt, 25},
      {"salaries above 100k", "salary", CompareOp::kGt, 100000},
      {"salaries below 60k", "salary", CompareOp::kLt, 60000},
  };
  for (const Probe& p : probes) {
    std::vector<std::string> names;
    CHECK_OK(ps.RulesFor("Emp", p.attr, p.op, p.value, &names));
    std::printf("rules applying to %s:\n", p.label);
    for (const std::string& n : names) std::printf("  - %s\n", n.c_str());
    if (names.empty()) std::printf("  (none)\n");
  }

  // Point probe: which rules could this concrete employee trigger?
  Tuple veteran{Value("Pat"), Value(58), Value(120000), Value(3)};
  std::vector<std::string> names;
  CHECK_OK(ps.RulesForTuple("Emp", veteran, &names));
  std::printf("\nrules whose numeric envelope admits %s:\n",
              veteran.ToString().c_str());
  for (const std::string& n : names) std::printf("  - %s\n", n.c_str());
  return 0;
}
