// Quickstart: the paper's Example 3 end to end.
//
// Defines the Emp/Dept rule base in the OPS5-like language, loads working
// memory, and runs the recognize-act cycle with the matching-pattern
// matcher (§4.2). Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "engine/sequential_engine.h"
#include "lang/analyzer.h"
#include "match/pattern_matcher.h"
#include "workload/paper_examples.h"

using namespace prodb;

namespace {

void PrintRelation(Catalog& catalog, const char* name) {
  std::printf("  %s:\n", name);
  Status st = catalog.Get(name)->Scan([](TupleId, const Tuple& t) {
    std::printf("    %s\n", t.ToString().c_str());
    return Status::OK();
  });
  if (!st.ok()) std::printf("    <scan failed: %s>\n", st.ToString().c_str());
}

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::prodb::Status _st = (expr);                                   \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                         \
      return 1;                                                     \
    }                                                               \
  } while (0)

}  // namespace

int main() {
  // 1. A catalog holds the WM relations; LoadProgram creates them from
  //    the `literalize` declarations and compiles the rules.
  Catalog catalog;
  std::vector<Rule> rules;
  CHECK_OK(LoadProgram(kEmpDept, &catalog, &rules));
  std::printf("Loaded %zu rules over %zu relations\n", rules.size(),
              catalog.RelationCount());

  // 2. Pick a matcher — here the paper's matching-pattern scheme — and
  //    register the rules (this creates the COND-* relations).
  PatternMatcher matcher(&catalog);
  for (const Rule& rule : rules) {
    CHECK_OK(matcher.AddRule(rule));
  }

  // 3. Load working memory through the engine so every insertion is
  //    matched incrementally.
  SequentialEngine engine(&catalog, &matcher);
  CHECK_OK(engine.Insert("Emp", Tuple{Value("Mike"), Value(32), Value(90000),
                                      Value(1), Value("Sam")}));
  CHECK_OK(engine.Insert("Emp", Tuple{Value("Sam"), Value(55), Value(70000),
                                      Value(2), Value("Board")}));
  CHECK_OK(engine.Insert("Emp", Tuple{Value("Ann"), Value(41), Value(80000),
                                      Value(3), Value("Sam")}));
  CHECK_OK(engine.Insert("Emp", Tuple{Value("Bob"), Value(28), Value(40000),
                                      Value(3), Value("Ann")}));
  CHECK_OK(engine.Insert("Dept", Tuple{Value(3), Value("Toy"), Value(1),
                                       Value("Ann")}));

  std::printf("\nBefore firing (conflict set holds %zu instantiations):\n",
              matcher.conflict_set().size());
  PrintRelation(catalog, "Emp");

  // 4. Run to quiescence: R1 deletes Mike (earns more than Sam); R2
  //    deletes the Toy-department floor-1 employees (Ann, Bob).
  EngineRunResult result;
  CHECK_OK(engine.Run(&result));
  std::printf("\nFired %zu rules:", result.firings);
  for (const std::string& name : engine.firing_log()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\nAfter firing:\n");
  PrintRelation(catalog, "Emp");

  // 5. The COND relations are ordinary relations — inspect one.
  std::printf("\nCOND-Emp (conditions + matching patterns):\n");
  PrintRelation(catalog, "COND-Emp");
  return 0;
}
