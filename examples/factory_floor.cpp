// Factory-floor scheduling with concurrent transactional rule execution
// (§5): pending orders are matched to idle machines; completed orders
// free their machines. The conflict set is drained by a pool of worker
// transactions under two-phase locking; the commit log is the equivalent
// serial schedule.
//
//   ./build/examples/example_factory_floor

#include <cstdio>

#include "engine/concurrent_engine.h"
#include "lang/analyzer.h"
#include "match/query_matcher.h"
#include "workload/paper_examples.h"

using namespace prodb;

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::prodb::Status _st = (expr);                                   \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                         \
      return 1;                                                     \
    }                                                               \
  } while (0)

int main() {
  Catalog catalog;
  std::vector<Rule> rules;
  CHECK_OK(LoadProgram(kFactoryFloor, &catalog, &rules));

  QueryMatcher matcher(&catalog);
  for (const Rule& rule : rules) {
    CHECK_OK(matcher.AddRule(rule));
  }

  LockManager locks;
  ConcurrentEngineOptions opts;
  opts.workers = 4;
  ConcurrentEngine engine(&catalog, &matcher, &locks, opts);

  // The plant: three machine kinds, two machines each.
  const char* kinds[] = {"lathe", "mill", "press"};
  int machine_id = 0;
  for (const char* kind : kinds) {
    for (int i = 0; i < 2; ++i) {
      CHECK_OK(engine.Insert(
          "Machine", Tuple{Value(++machine_id), Value(kind), Value("idle")}));
    }
  }
  // Part routing: which machine kind makes which part.
  CHECK_OK(engine.Insert("Capability", Tuple{Value("gear"), Value("lathe")}));
  CHECK_OK(engine.Insert("Capability", Tuple{Value("plate"), Value("press")}));
  CHECK_OK(engine.Insert("Capability", Tuple{Value("frame"), Value("mill")}));

  // A burst of orders (more than the machines can take at once).
  const char* parts[] = {"gear", "plate", "frame", "gear", "plate",
                         "frame", "gear", "plate", "frame", "gear"};
  for (int i = 0; i < 10; ++i) {
    CHECK_OK(engine.Insert("Order", Tuple{Value(100 + i), Value(parts[i]),
                                          Value(1 + i % 3),
                                          Value("pending")}));
  }

  std::printf("Dispatching %zu queued instantiations on %zu workers...\n",
              matcher.conflict_set().size(), opts.workers);
  ConcurrentRunResult result;
  CHECK_OK(engine.Run(&result));
  std::printf(
      "round 1: fired=%zu stale=%zu deadlock-aborts=%zu (6 machines -> 6 "
      "assignments)\n",
      result.firings, result.stale_skipped, result.deadlock_aborts);

  auto count = [&](const char* rel) { return catalog.Get(rel)->Count(); };
  std::printf("assignments=%zu, orders still pending=...\n",
              count("Assignment"));

  // Complete every running order, then re-run: machines free up and the
  // remaining orders are scheduled.
  for (int round = 2; count("Assignment") > 0 || round == 2; ++round) {
    std::vector<std::pair<TupleId, Tuple>> running;
    CHECK_OK(catalog.Get("Order")->Scan([&](TupleId id, const Tuple& t) {
      if (t[3] == Value("running")) running.emplace_back(id, t);
      return Status::OK();
    }));
    if (running.empty()) break;
    for (auto& [id, t] : running) {
      Tuple done = t;
      done[3] = Value("done");
      CHECK_OK(engine.working_memory().Modify("Order", id, done));
    }
    CHECK_OK(engine.Run(&result));
    std::printf("round %d: fired=%zu (finish + reassign)\n", round,
                result.firings);
  }

  std::printf("\nFinal machine states:\n");
  CHECK_OK(catalog.Get("Machine")->Scan([](TupleId, const Tuple& t) {
    std::printf("  machine %s (%s): %s\n", t[0].ToString().c_str(),
                t[1].ToString().c_str(), t[2].ToString().c_str());
    return Status::OK();
  }));
  std::printf("\nEquivalent serial schedule of the final round (%zu commits):",
              engine.commit_log().size());
  for (const std::string& name : engine.commit_log()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  return 0;
}
