// Algebraic simplification — the paper's Example 2 (Plus0X / Time0X),
// extended with identity rules, run over a batch of expressions.
//
//   ./build/examples/example_expr_simplify

#include <cstdio>

#include "engine/sequential_engine.h"
#include "lang/analyzer.h"
#include "rete/network.h"

using namespace prodb;

namespace {

// Example 2's two rules plus two more classic identities, to show a rule
// base growing without touching engine code.
constexpr char kRules[] = R"(
(literalize Goal type object)
(literalize Expression name arg1 op arg2)

; 0 + x  ==>  x
(p Plus0X
  (Goal ^type Simplify ^object <n>)
  (Expression ^name <n> ^arg1 0 ^op + ^arg2 <x>)
  -->
  (modify 2 ^op nil ^arg1 nil))

; 0 * x  ==>  0
(p Time0X
  (Goal ^type Simplify ^object <n>)
  (Expression ^name <n> ^arg1 0 ^op |*| ^arg2 <x>)
  -->
  (modify 2 ^op nil ^arg2 nil))

; 1 * x  ==>  x
(p Time1X
  (Goal ^type Simplify ^object <n>)
  (Expression ^name <n> ^arg1 1 ^op |*| ^arg2 <x>)
  -->
  (modify 2 ^op nil ^arg1 nil))

; x - 0  ==>  x   (|-| quotes the minus symbol, which is otherwise
; structural syntax, like |*| in Time0X)
(p MinusX0
  (Goal ^type Simplify ^object <n>)
  (Expression ^name <n> ^arg1 <x> ^op |-| ^arg2 0)
  -->
  (modify 2 ^op nil ^arg2 nil))
)";

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::prodb::Status _st = (expr);                                   \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                         \
      return 1;                                                     \
    }                                                               \
  } while (0)

void Dump(Catalog& catalog, const char* header) {
  std::printf("%s\n", header);
  Status st = catalog.Get("Expression")->Scan([](TupleId, const Tuple& t) {
    std::printf("  %-4s : %4s %2s %-4s\n", t[0].ToString().c_str(),
                t[1].ToString().c_str(), t[2].ToString().c_str(),
                t[3].ToString().c_str());
    return Status::OK();
  });
  if (!st.ok()) std::printf("  <scan failed>\n");
}

}  // namespace

int main() {
  Catalog catalog;
  std::vector<Rule> rules;
  CHECK_OK(LoadProgram(kRules, &catalog, &rules));

  // This example drives the classic in-memory Rete network (§3.1).
  ReteNetwork matcher(&catalog);
  for (const Rule& rule : rules) {
    CHECK_OK(matcher.AddRule(rule));
  }
  ReteTopology topo = matcher.Topology();
  std::printf(
      "Compiled %zu rules into a Rete network: %zu alpha, %zu two-input, "
      "%zu production nodes\n\n",
      rules.size(), topo.alpha_nodes, topo.beta_nodes, topo.production_nodes);

  SequentialEngine engine(&catalog, &matcher);
  struct Expr {
    const char* name;
    Value arg1, op, arg2;
  };
  const Expr exprs[] = {
      {"e1", Value(0), Value("+"), Value("x")},   // 0 + x
      {"e2", Value(0), Value("*"), Value("y")},   // 0 * y
      {"e3", Value(1), Value("*"), Value("z")},   // 1 * z
      {"e4", Value("w"), Value("-"), Value(0)},   // w - 0
      {"e5", Value(2), Value("+"), Value(3)},     // 2 + 3 (no rule applies)
  };
  for (const Expr& e : exprs) {
    CHECK_OK(engine.Insert("Expression",
                           Tuple{Value(e.name), e.arg1, e.op, e.arg2}));
    CHECK_OK(engine.Insert("Goal", Tuple{Value("Simplify"), Value(e.name)}));
  }

  Dump(catalog, "Expressions before simplification:");
  EngineRunResult result;
  CHECK_OK(engine.Run(&result));
  std::printf("\nFired %zu simplification rules\n\n", result.firings);
  Dump(catalog, "Expressions after simplification (nil = slot cleared):");
  return 0;
}
