// Materialized-view maintenance via production rules (§2.2, §6): "the
// problem of maintaining a set of condition-action rules is the same as
// the problem of maintaining materialized views and triggers".
//
// The view  ToyEmp = { (name, salary) : Emp ⋈ Dept, dname = 'Toy' }  is
// kept up to date by two add/delete trigger rules in the style of
// Buneman & Clemons [BUNE79]: the matcher detects exactly the affected
// combinations on each base update (no view recomputation).
//
//   ./build/examples/example_view_maintenance

#include <cstdio>

#include "engine/sequential_engine.h"
#include "lang/analyzer.h"
#include "match/pattern_matcher.h"

using namespace prodb;

namespace {

constexpr char kViewRules[] = R"(
(literalize Emp name salary dno)
(literalize Dept dno dname)
(literalize ToyEmp name salary)

; Add trigger: a new Emp/Dept combination in Toy materializes a view row
; (the negated CE makes the rule idempotent).
(p view-add
  (Emp ^name <n> ^salary <s> ^dno <d>)
  (Dept ^dno <d> ^dname Toy)
  -(ToyEmp ^name <n> ^salary <s>)
  -->
  (make ToyEmp ^name <n> ^salary <s>))

; Delete trigger: a view row whose base combination vanished is removed.
(p view-del
  (ToyEmp ^name <n> ^salary <s>)
  -(Emp ^name <n> ^salary <s>)
  -->
  (remove 1))
)";

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::prodb::Status _st = (expr);                                   \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                         \
      return 1;                                                     \
    }                                                               \
  } while (0)

void ShowView(Catalog& catalog) {
  std::printf("  ToyEmp view:");
  Status st = catalog.Get("ToyEmp")->Scan([](TupleId, const Tuple& t) {
    std::printf("  (%s, %s)", t[0].ToString().c_str(),
                t[1].ToString().c_str());
    return Status::OK();
  });
  (void)st;
  std::printf("\n");
}

}  // namespace

int main() {
  Catalog catalog;
  std::vector<Rule> rules;
  CHECK_OK(LoadProgram(kViewRules, &catalog, &rules));
  PatternMatcher matcher(&catalog);
  for (const Rule& rule : rules) {
    CHECK_OK(matcher.AddRule(rule));
  }
  SequentialEngine engine(&catalog, &matcher);

  std::printf("Base inserts:\n");
  CHECK_OK(engine.Insert("Dept", Tuple{Value(1), Value("Toy")}));
  CHECK_OK(engine.Insert("Dept", Tuple{Value(2), Value("Shoe")}));
  TupleId mike, ann;
  CHECK_OK(engine.Insert("Emp",
                         Tuple{Value("Mike"), Value(100), Value(1)}, &mike));
  CHECK_OK(engine.Insert("Emp",
                         Tuple{Value("Ann"), Value(120), Value(2)}, &ann));
  EngineRunResult result;
  CHECK_OK(engine.Run(&result));
  ShowView(catalog);  // only Mike: Ann is in Shoe

  std::printf("Move Ann into Toy (update = delete + insert):\n");
  CHECK_OK(engine.working_memory().Modify(
      "Emp", ann, Tuple{Value("Ann"), Value(120), Value(1)}, &ann));
  CHECK_OK(engine.Run(&result));
  ShowView(catalog);  // Mike and Ann

  std::printf("Delete Mike from Emp:\n");
  CHECK_OK(engine.working_memory().Delete("Emp", mike));
  CHECK_OK(engine.Run(&result));
  ShowView(catalog);  // only Ann — delete trigger cleaned the view

  std::printf(
      "\nThe maintenance was fully incremental: %llu matcher propagation "
      "steps, no view recomputation.\n",
      static_cast<unsigned long long>(matcher.stats().propagations.load()));
  return 0;
}
