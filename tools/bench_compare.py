#!/usr/bin/env python3
"""Benchmark regression gate.

Compares two combined benchmark JSON files (the format the CI bench job
emits: {"bench_<suite>": <google-benchmark --benchmark_format=json
output>, ...}) and fails if any benchmark present in BOTH files slowed
down by more than the allowed ratio in real time.

Only shared (suite, benchmark-name) pairs are compared: new benchmarks
have no baseline and removed ones have no measurement, so both are
reported but never gate. Wall-clock noise on shared runners is real;
the default threshold (+25%) is deliberately loose — this gate exists
to catch algorithmic regressions, not scheduler jitter.

A row whose measured real time is zero (a benchmark that crashed or was
interrupted leaves such stubs) is skipped with a note instead of gating:
a zero denominator used to turn into an infinite ratio and a spurious
FAIL on an otherwise healthy run.

Usage: bench_compare.py BASELINE.json FRESH.json [--threshold 1.25]
                        [--summary-out FILE]
       bench_compare.py --self-test
Exit status: 0 = within threshold, 1 = regression, 2 = usage/IO error.

--summary-out writes the comparison as a GitHub-flavored markdown table;
CI appends it to $GITHUB_STEP_SUMMARY so the delta is readable from the
job page without digging through the log.
"""

import argparse
import json
import sys

# Everything is normalized to nanoseconds before comparison.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_suites(path):
    """Returns {suite: {bench_name: real_time_ns}} from a combined file."""
    with open(path) as f:
        combined = json.load(f)
    suites = {}
    for suite, report in combined.items():
        if not isinstance(report, dict) or "benchmarks" not in report:
            continue
        rows = {}
        for b in report["benchmarks"]:
            # Aggregate rows (mean/median/stddev from --benchmark_repetitions)
            # would double-count; gate on plain iteration rows only.
            if b.get("run_type") == "aggregate":
                continue
            unit = _UNIT_NS.get(b.get("time_unit", "ns"))
            if unit is None or "real_time" not in b:
                continue
            rows[b["name"]] = b["real_time"] * unit
        suites[suite] = rows
    return suites


def self_test():
    """End-to-end check of the gate against synthetic fixtures; returns 0
    on success. CI runs this before trusting the real comparison, so a
    broken gate fails loudly instead of silently passing regressions."""
    import tempfile

    def bench(name, ns):
        return {"name": name, "run_type": "iteration",
                "time_unit": "ns", "real_time": ns}

    def run(base_rows, fresh_rows, threshold=1.25):
        with tempfile.TemporaryDirectory() as d:
            bp, fp = f"{d}/base.json", f"{d}/fresh.json"
            with open(bp, "w") as f:
                json.dump({"bench_x": {"benchmarks": base_rows}}, f)
            with open(fp, "w") as f:
                json.dump({"bench_x": {"benchmarks": fresh_rows}}, f)
            return main([bp, fp, "--threshold", str(threshold)])

    cases = [
        # (description, expected exit, baseline rows, fresh rows)
        ("identical runs pass", 0, [bench("a", 100)], [bench("a", 100)]),
        ("real regression fails", 1, [bench("a", 100)], [bench("a", 200)]),
        ("improvement passes", 0, [bench("a", 200)], [bench("a", 100)]),
        ("baseline-only benchmark is skipped", 0, [bench("a", 100)], []),
        ("fresh-only benchmark is skipped", 0, [], [bench("a", 100)]),
        ("zero-time baseline is skipped, not an inf-ratio FAIL", 0,
         [bench("a", 0), bench("b", 100)],
         [bench("a", 100), bench("b", 100)]),
        ("zero-time fresh row is skipped", 0,
         [bench("a", 100)], [bench("a", 0)]),
    ]
    for desc, expected, base_rows, fresh_rows in cases:
        got = run(base_rows, fresh_rows)
        if got != expected:
            print(f"bench_compare --self-test: FAIL: {desc}: "
                  f"exit {got}, expected {expected}", file=sys.stderr)
            return 1
    print(f"bench_compare --self-test: PASS ({len(cases)} cases)")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("fresh", nargs="?")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run the gate against built-in fixtures and exit",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when fresh/baseline real time exceeds this (default 1.25)",
    )
    ap.add_argument(
        "--summary-out",
        metavar="FILE",
        help="also write the comparison as a markdown table to FILE",
    )
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.baseline is None or args.fresh is None:
        ap.error("baseline and fresh files are required (or --self-test)")

    try:
        base = load_suites(args.baseline)
        fresh = load_suites(args.fresh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    regressions = []
    compared = 0
    md = ["| benchmark | baseline | fresh | ratio | verdict |",
          "|---|---:|---:|---:|---|"]
    for suite in sorted(set(base) | set(fresh)):
        b_rows = base.get(suite, {})
        f_rows = fresh.get(suite, {})
        only_base = sorted(set(b_rows) - set(f_rows))
        only_fresh = sorted(set(f_rows) - set(b_rows))
        for name in only_base:
            print(f"  [gone ] {suite}/{name} (baseline only, not gated)")
            md.append(f"| {suite}/{name} | {b_rows[name]:.0f}ns | — | — | gone |")
        for name in only_fresh:
            print(f"  [new  ] {suite}/{name} (no baseline, not gated)")
            md.append(f"| {suite}/{name} | — | {f_rows[name]:.0f}ns | — | new |")
        for name in sorted(set(b_rows) & set(f_rows)):
            b_ns, f_ns = b_rows[name], f_rows[name]
            if b_ns <= 0 or f_ns <= 0:
                # A zero measurement is a broken row (crashed or
                # interrupted run), not a result — comparing against it
                # would gate on an infinite or zero ratio.
                print(
                    f"  [skip ] {suite}/{name}: zero-time measurement "
                    f"({b_ns:.0f}ns -> {f_ns:.0f}ns), not gated"
                )
                md.append(
                    f"| {suite}/{name} | {b_ns:.0f}ns | {f_ns:.0f}ns "
                    f"| — | skipped (zero time) |"
                )
                continue
            compared += 1
            ratio = f_ns / b_ns
            # FASTER is informational symmetry with SLOWER: a win beyond
            # the same margin the gate allows for losses.
            if ratio > args.threshold:
                verdict = "SLOWER"
            elif ratio < 1.0 / args.threshold:
                verdict = "FASTER"
            else:
                verdict = "ok"
            print(
                f"  [{verdict:>6}] {suite}/{name}: "
                f"{b_ns:.0f}ns -> {f_ns:.0f}ns ({ratio:.2f}x baseline)"
            )
            md.append(
                f"| {suite}/{name} | {b_ns:.0f}ns | {f_ns:.0f}ns "
                f"| {ratio:.2f}x | {verdict} |"
            )
            if ratio > args.threshold:
                regressions.append((suite, name, ratio))

    if args.summary_out:
        try:
            with open(args.summary_out, "w") as f:
                f.write("\n".join(md) + "\n")
        except OSError as e:
            print(f"bench_compare: {e}", file=sys.stderr)
            return 2

    print(f"bench_compare: {compared} shared benchmarks compared")
    if regressions:
        print(
            f"bench_compare: FAIL — {len(regressions)} benchmark(s) regressed "
            f"beyond {args.threshold:.2f}x:",
            file=sys.stderr,
        )
        for suite, name, ratio in regressions:
            print(f"  {suite}/{name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"bench_compare: PASS (threshold {args.threshold:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
