// prodb_server — the rule-engine server binary.
//
//   prodb_server --tcp_port=0 --db=/tmp/wm.db --wal --durable \
//                --rules=program.ops --matcher=rete
//
// Prints one "LISTENING tcp=<port> unix=<path>" line on stdout once the
// listeners are open (test harnesses and the bench driver parse it),
// then serves until SIGINT/SIGTERM. --tcp_port=0 binds an ephemeral
// port; the printed line carries the resolved one.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "net/server.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

bool ParseBoolFlag(const char* arg, const char* name) {
  return std::string(arg) == std::string("--") + name;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--tcp_port=N] [--tcp_host=H] [--unix=PATH]\n"
      "          [--db=PATH] [--open_existing] [--wal] [--durable]\n"
      "          [--rules=FILE] [--matcher=rete|rete-dbms|query|pattern]\n"
      "          [--shards=N] [--shard_threads=N] [--planner]\n"
      "          [--workers=N] [--frames=N] [--no_load]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  prodb::net::RuleServerOptions opts;
  std::string rules_path;
  std::string v;
  size_t shards = 0, shard_threads = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (ParseFlag(a, "tcp_port", &v)) {
      opts.tcp_port = std::atoi(v.c_str());
    } else if (ParseFlag(a, "tcp_host", &v)) {
      opts.tcp_host = v;
    } else if (ParseFlag(a, "unix", &v)) {
      opts.unix_path = v;
    } else if (ParseFlag(a, "db", &v)) {
      opts.system.db_path = v;
      opts.system.wm_storage = prodb::StorageKind::kPaged;
    } else if (ParseBoolFlag(a, "open_existing")) {
      opts.system.open_existing = true;
    } else if (ParseBoolFlag(a, "wal")) {
      opts.system.enable_wal = true;
    } else if (ParseBoolFlag(a, "durable")) {
      opts.system.enable_wal = true;
      opts.system.durable_directory = true;
    } else if (ParseFlag(a, "rules", &v)) {
      rules_path = v;
    } else if (ParseFlag(a, "matcher", &v)) {
      if (v == "rete") {
        opts.system.matcher = prodb::MatcherKind::kRete;
      } else if (v == "rete-dbms") {
        opts.system.matcher = prodb::MatcherKind::kReteDbms;
      } else if (v == "query") {
        opts.system.matcher = prodb::MatcherKind::kQuery;
      } else if (v == "pattern") {
        opts.system.matcher = prodb::MatcherKind::kPattern;
      } else {
        return Usage(argv[0]);
      }
    } else if (ParseFlag(a, "shards", &v)) {
      shards = static_cast<size_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(a, "shard_threads", &v)) {
      shard_threads = static_cast<size_t>(std::atoi(v.c_str()));
    } else if (ParseBoolFlag(a, "planner")) {
      opts.system.planner.enable = true;
    } else if (ParseFlag(a, "workers", &v)) {
      opts.system.workers = static_cast<size_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(a, "frames", &v)) {
      opts.system.buffer_pool_frames =
          static_cast<size_t>(std::atoi(v.c_str()));
    } else if (ParseBoolFlag(a, "no_load")) {
      opts.allow_load = false;
    } else {
      return Usage(argv[0]);
    }
  }
  if (shards > 0) {
    opts.system.sharding.num_shards = shards;
    opts.system.sharding.threads =
        shard_threads > 0 ? shard_threads : shards;
  }
  if (!rules_path.empty()) {
    std::ifstream in(rules_path);
    if (!in) {
      std::fprintf(stderr, "cannot read rules file %s\n",
                   rules_path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    opts.preload = ss.str();
  }

  const std::string unix_path = opts.unix_path;
  prodb::net::RuleServer server(std::move(opts));
  prodb::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING tcp=%d unix=%s\n", server.tcp_port(),
              unix_path.c_str());
  std::fflush(stdout);

  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int sig = 0;
  sigwait(&set, &sig);
  server.Stop();
  return 0;
}
