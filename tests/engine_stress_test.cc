// Stress tests for the concurrent engine: deadlock-prone lock orders,
// long modify chains, and mixed matchers under many workers.

#include <gtest/gtest.h>

#include "engine/concurrent_engine.h"
#include "engine/sequential_engine.h"
#include "match/pattern_matcher.h"
#include "match/query_matcher.h"
#include "matcher_test_util.h"

namespace prodb {
namespace {

TEST(EngineStressTest, OppositeLockOrdersResolveViaDeadlockHandling) {
  // Rule `ab` reads (A, B); rule `ba` reads (B, A). Their transactions
  // acquire tuple read locks in opposite orders, then upgrade to writes —
  // the §5.2 scenario that "could lead to a deadlock of the two
  // transactions". The engine must abort a victim, compensate, retry,
  // and drain.
  MatcherHarness h;
  ASSERT_TRUE(h.Init(R"(
(literalize A id n)
(literalize B id n)
(p ab (A ^id <i> ^n <x>) (B ^id <i> ^n <y>) --> (remove 1) (remove 2))
(p ba (B ^id <i> ^n <x>) (A ^id <i> ^n <y>) --> (remove 1) (remove 2))
)",
                     [](Catalog* c) {
                       return std::make_unique<QueryMatcher>(c);
                     })
                  .ok());
  LockManager locks;
  ConcurrentEngineOptions opts;
  opts.workers = 4;
  ConcurrentEngine engine(h.catalog.get(), h.matcher.get(), &locks, opts);
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(engine.Insert("A", Tuple{Value(i), Value(i)}).ok());
    ASSERT_TRUE(engine.Insert("B", Tuple{Value(i), Value(i)}).ok());
  }
  ConcurrentRunResult result;
  ASSERT_TRUE(engine.Run(&result).ok());
  // Each (A,B) pair consumed exactly once, by ab or ba.
  EXPECT_EQ(result.firings, 24u);
  EXPECT_EQ(h.catalog->Get("A")->Count(), 0u);
  EXPECT_EQ(h.catalog->Get("B")->Count(), 0u);
  EXPECT_EQ(locks.LockedResourceCount(), 0u);
}

TEST(EngineStressTest, LongModifyChainsTerminate) {
  // Each item is modified through 8 stages by a single rule; firings
  // must total items × stages under any worker count.
  for (size_t workers : {1u, 4u}) {
    MatcherHarness h;
    ASSERT_TRUE(h.Init(R"(
(literalize Item id stage)
(p advance (Item ^id <i> ^stage { >= 0 < 8 }) --> (modify 1 ^stage 8))
)",
                       [](Catalog* c) {
                         return std::make_unique<QueryMatcher>(c);
                       })
                    .ok());
    LockManager locks;
    ConcurrentEngineOptions opts;
    opts.workers = workers;
    ConcurrentEngine engine(h.catalog.get(), h.matcher.get(), &locks, opts);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(engine.Insert("Item", Tuple{Value(i), Value(0)}).ok());
    }
    ConcurrentRunResult result;
    ASSERT_TRUE(engine.Run(&result).ok());
    EXPECT_EQ(result.firings, 30u) << workers << " workers";
    size_t done = 0;
    ASSERT_TRUE(h.catalog->Get("Item")
                    ->Scan([&](TupleId, const Tuple& t) {
                      if (t[1] == Value(8)) ++done;
                      return Status::OK();
                    })
                    .ok());
    EXPECT_EQ(done, 30u);
  }
}

TEST(EngineStressTest, CascadingMakesUnderConcurrency) {
  // Stage-1 consumption produces stage-2 work produced *during* the run;
  // quiescence detection must not exit while maintenance keeps feeding
  // the conflict set.
  MatcherHarness h;
  ASSERT_TRUE(h.Init(R"(
(literalize S1 id)
(literalize S2 id)
(literalize S3 id)
(p one (S1 ^id <x>) --> (remove 1) (make S2 ^id <x>))
(p two (S2 ^id <x>) --> (remove 1) (make S3 ^id <x>))
)",
                     [](Catalog* c) {
                       return std::make_unique<PatternMatcher>(c);
                     })
                  .ok());
  LockManager locks;
  ConcurrentEngineOptions opts;
  opts.workers = 4;
  ConcurrentEngine engine(h.catalog.get(), h.matcher.get(), &locks, opts);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(engine.Insert("S1", Tuple{Value(i)}).ok());
  }
  ConcurrentRunResult result;
  ASSERT_TRUE(engine.Run(&result).ok());
  EXPECT_EQ(result.firings, 80u);
  EXPECT_EQ(h.catalog->Get("S1")->Count(), 0u);
  EXPECT_EQ(h.catalog->Get("S2")->Count(), 0u);
  EXPECT_EQ(h.catalog->Get("S3")->Count(), 40u);
}

TEST(EngineStressTest, SequentialRandomStrategyIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    MatcherHarness h;
    EXPECT_TRUE(h.Init(R"(
(literalize E v)
(p a (E ^v <x>) --> (remove 1))
)",
                       [](Catalog* c) {
                         return std::make_unique<QueryMatcher>(c);
                       })
                    .ok());
    SequentialEngineOptions opts;
    opts.strategy = StrategyKind::kRandom;
    opts.seed = seed;
    SequentialEngine engine(h.catalog.get(), h.matcher.get(), opts);
    std::vector<int64_t> order;
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(engine.Insert("E", Tuple{Value(i)}).ok());
    }
    // Drain one step at a time, recording which tuple went first.
    bool fired = true;
    EngineRunResult result;
    while (fired) {
      size_t before = h.catalog->Get("E")->Count();
      EXPECT_TRUE(engine.Step(&fired, &result).ok());
      if (fired) EXPECT_EQ(h.catalog->Get("E")->Count(), before - 1);
    }
    return result.firings;
  };
  EXPECT_EQ(run(5), 10u);
  EXPECT_EQ(run(6), 10u);
}

}  // namespace
}  // namespace prodb
