// ChangeSet semantics and the WorkingMemory batch pipeline: delta
// ordering, modify pairing, Inverse round-trips (the §5 deadlock
// compensation primitive), and deferred matcher notification.

#include "common/change_set.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "engine/working_memory.h"

namespace prodb {
namespace {

// Records every notification it receives, in order, as "+rel:values" /
// "-rel:values" strings. Uses the default Matcher::OnBatch, so it also
// exercises the shared per-delta fallback and batch accounting.
class RecordingMatcher : public Matcher {
 public:
  Status AddRule(const Rule& rule) override {
    rules_.push_back(rule);
    return Status::OK();
  }
  Status OnInsert(const std::string& rel, TupleId, const Tuple& t) override {
    events.push_back("+" + rel + ":" + t.ToString());
    return Status::OK();
  }
  Status OnDelete(const std::string& rel, TupleId, const Tuple& t) override {
    events.push_back("-" + rel + ":" + t.ToString());
    return Status::OK();
  }
  ConflictSet& conflict_set() override { return conflict_set_; }
  size_t AuxiliaryFootprintBytes() const override { return 0; }
  const MatcherStats& stats() const override { return stats_; }
  std::string name() const override { return "recording"; }
  const std::vector<Rule>& rules() const override { return rules_; }

  std::vector<std::string> events;

 protected:
  MatcherStats* mutable_stats() override { return &stats_; }

 private:
  ConflictSet conflict_set_;
  MatcherStats stats_;
  std::vector<Rule> rules_;
};

std::multiset<std::string> Fingerprint(Relation* rel) {
  std::multiset<std::string> out;
  EXPECT_TRUE(rel->Scan([&](TupleId, const Tuple& t) {
                   out.insert(t.ToString());
                   return Status::OK();
                 })
                  .ok());
  return out;
}

class ChangeSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .CreateRelation(Schema("R", {{"a", ValueType::kInt},
                                                 {"b", ValueType::kInt}}),
                                    &rel_)
                    .ok());
    wm_ = std::make_unique<WorkingMemory>(&catalog_, &matcher_);
  }

  Catalog catalog_;
  Relation* rel_ = nullptr;
  RecordingMatcher matcher_;
  std::unique_ptr<WorkingMemory> wm_;
};

TEST_F(ChangeSetTest, RecordsDeltasInOrder) {
  ChangeSet cs;
  cs.AddInsert("R", Tuple{Value(1), Value(2)});
  cs.AddDelete("R", TupleId{0, 7}, Tuple{Value(3), Value(4)});
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_TRUE(cs[0].is_insert());
  EXPECT_TRUE(cs[1].is_delete());
  EXPECT_EQ(cs[0].id, Delta::kUnassigned);
  EXPECT_EQ(cs.InsertCount(), 1u);
  EXPECT_EQ(cs.DeleteCount(), 1u);
  EXPECT_FALSE(cs[0].is_modify_half());
}

TEST_F(ChangeSetTest, ModifyIsDeleteThenInsertPair) {
  ChangeSet cs;
  size_t ins = cs.AddModify("R", TupleId{0, 3}, Tuple{Value(1), Value(2)},
                            Tuple{Value(1), Value(9)});
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(ins, 1u);
  // Delete strictly precedes insert — OPS5 modify semantics (§3.1).
  EXPECT_TRUE(cs[0].is_delete());
  EXPECT_TRUE(cs[1].is_insert());
  // The halves are cross-linked as one logical event.
  EXPECT_EQ(cs[0].modify_partner, 1);
  EXPECT_EQ(cs[1].modify_partner, 0);
}

TEST_F(ChangeSetTest, InverseFlipsKindsAndReversesOrder) {
  ChangeSet cs;
  cs.AddInsert("R", Tuple{Value(1), Value(1)}, TupleId{0, 0});
  cs.AddModify("R", TupleId{0, 1}, Tuple{Value(2), Value(2)},
               Tuple{Value(2), Value(3)}, TupleId{0, 2});
  ChangeSet inv = cs.Inverse();
  ASSERT_EQ(inv.size(), 3u);
  // Reversed: [delete new, insert old, delete first-insert].
  EXPECT_TRUE(inv[0].is_delete());
  EXPECT_EQ(inv[0].id, (TupleId{0, 2}));
  EXPECT_TRUE(inv[1].is_insert());
  EXPECT_EQ(inv[1].id, (TupleId{0, 1}));  // re-insert restores the old id
  EXPECT_TRUE(inv[2].is_delete());
  EXPECT_EQ(inv[2].id, (TupleId{0, 0}));
  // Modify pairing survives mirrored.
  EXPECT_EQ(inv[0].modify_partner, 1);
  EXPECT_EQ(inv[1].modify_partner, 0);
  EXPECT_EQ(inv[2].modify_partner, Delta::kNoPartner);
}

TEST_F(ChangeSetTest, ApplyThenInverseRestoresRelations) {
  TupleId keep, doomed;
  ASSERT_TRUE(wm_->Insert("R", Tuple{Value(1), Value(1)}, &keep).ok());
  ASSERT_TRUE(wm_->Insert("R", Tuple{Value(2), Value(2)}, &doomed).ok());
  auto before = Fingerprint(rel_);

  ChangeSet cs;
  cs.AddInsert("R", Tuple{Value(3), Value(3)});
  cs.AddDelete("R", doomed);
  ASSERT_TRUE(wm_->Apply(&cs).ok());
  // Apply resolved ids and old-tuple values in place.
  EXPECT_NE(cs[0].id, Delta::kUnassigned);
  EXPECT_EQ(cs[1].tuple, (Tuple{Value(2), Value(2)}));
  EXPECT_NE(Fingerprint(rel_), before);

  ChangeSet inv = cs.Inverse();
  ASSERT_TRUE(wm_->Apply(&inv).ok());
  EXPECT_EQ(Fingerprint(rel_), before);
  // The undone delete restored the tuple under its original id, not a
  // fresh one — references recorded before the round-trip stay valid.
  Tuple back;
  ASSERT_TRUE(rel_->Get(doomed, &back).ok());
  EXPECT_EQ(back, (Tuple{Value(2), Value(2)}));
}

TEST_F(ChangeSetTest, RelationOnlyCompensationLeavesMatcherUntouched) {
  // The concurrent engine's deadlock path: the matcher never saw the
  // transaction's delta, so compensation applies the inverse straight to
  // the relations and the matcher's event log stays empty.
  ChangeSet delta;
  TupleId id;
  ASSERT_TRUE(rel_->Insert(Tuple{Value(5), Value(5)}, &id).ok());
  auto before = Fingerprint(rel_);
  size_t events_before = matcher_.events.size();

  // Forward: a make + a remove, relations only (as txn->Insert/Delete do).
  TupleId made;
  ASSERT_TRUE(rel_->Insert(Tuple{Value(6), Value(6)}, &made).ok());
  delta.AddInsert("R", Tuple{Value(6), Value(6)}, made);
  Tuple old;
  ASSERT_TRUE(rel_->Get(id, &old).ok());
  ASSERT_TRUE(rel_->Delete(id).ok());
  delta.AddDelete("R", id, old);

  ChangeSet inv = delta.Inverse();
  for (size_t i = 0; i < inv.size(); ++i) {
    Delta& d = inv[i];
    if (d.is_insert()) {
      ASSERT_TRUE(rel_->Restore(d.id, d.tuple).ok());
    } else {
      ASSERT_TRUE(rel_->Delete(d.id).ok());
    }
  }
  EXPECT_EQ(Fingerprint(rel_), before);
  EXPECT_EQ(matcher_.events.size(), events_before);
  // Identity, not just value, is restored: the deleted tuple is live
  // again under the id the matcher knew it by before the transaction.
  Tuple back;
  EXPECT_TRUE(rel_->Get(id, &back).ok());
}

TEST_F(ChangeSetTest, ModifyWithEqualTupleStillPropagates) {
  // Regression: a modify that rewrites a tuple to its identical value is
  // still a WM event (refraction depends on it) and must reach the
  // matcher as delete-before-insert.
  TupleId id;
  ASSERT_TRUE(wm_->Insert("R", Tuple{Value(1), Value(2)}, &id).ok());
  matcher_.events.clear();
  TupleId nid;
  ASSERT_TRUE(wm_->Modify("R", id, Tuple{Value(1), Value(2)}, &nid).ok());
  ASSERT_EQ(matcher_.events.size(), 2u);
  EXPECT_EQ(matcher_.events[0][0], '-');
  EXPECT_EQ(matcher_.events[1][0], '+');
  EXPECT_EQ(matcher_.events[0].substr(1), matcher_.events[1].substr(1));
}

TEST_F(ChangeSetTest, BatchDefersNotificationUntilCommit) {
  uint64_t batches_before = matcher_.stats().batches.load();
  wm_->BeginBatch();
  EXPECT_TRUE(wm_->in_batch());
  TupleId a, b;
  ASSERT_TRUE(wm_->Insert("R", Tuple{Value(1), Value(1)}, &a).ok());
  ASSERT_TRUE(wm_->Insert("R", Tuple{Value(2), Value(2)}, &b).ok());
  ASSERT_TRUE(wm_->Delete("R", a).ok());
  // Relations are mutated eagerly; the matcher has heard nothing.
  EXPECT_EQ(rel_->Count(), 1u);
  EXPECT_TRUE(matcher_.events.empty());
  EXPECT_EQ(wm_->pending().size(), 3u);

  ASSERT_TRUE(wm_->CommitBatch().ok());
  EXPECT_FALSE(wm_->in_batch());
  // One batch, all three deltas, original order preserved.
  EXPECT_EQ(matcher_.stats().batches.load(), batches_before + 1);
  ASSERT_EQ(matcher_.events.size(), 3u);
  EXPECT_EQ(matcher_.events[0][0], '+');
  EXPECT_EQ(matcher_.events[1][0], '+');
  EXPECT_EQ(matcher_.events[2][0], '-');
}

TEST_F(ChangeSetTest, BatchedModifyKeepsDeleteBeforeInsert) {
  TupleId id;
  ASSERT_TRUE(wm_->Insert("R", Tuple{Value(1), Value(1)}, &id).ok());
  matcher_.events.clear();
  wm_->BeginBatch();
  TupleId nid;
  ASSERT_TRUE(wm_->Modify("R", id, Tuple{Value(1), Value(9)}, &nid).ok());
  const ChangeSet& pending = wm_->pending();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_TRUE(pending[0].is_delete());
  EXPECT_TRUE(pending[1].is_insert());
  EXPECT_TRUE(pending[0].is_modify_half());
  ASSERT_TRUE(wm_->CommitBatch().ok());
  ASSERT_EQ(matcher_.events.size(), 2u);
  EXPECT_EQ(matcher_.events[0], "-R:" + Tuple({Value(1), Value(1)}).ToString());
  EXPECT_EQ(matcher_.events[1], "+R:" + Tuple({Value(1), Value(9)}).ToString());
}

TEST_F(ChangeSetTest, ToStringShowsSignsAndModifyMarks) {
  ChangeSet cs;
  cs.AddInsert("R", Tuple{Value(1), Value(1)}, TupleId{0, 0});
  cs.AddModify("R", TupleId{0, 1}, Tuple{Value(2), Value(2)},
               Tuple{Value(2), Value(3)});
  std::string s = cs.ToString();
  EXPECT_NE(s.find("+R"), std::string::npos);
  EXPECT_NE(s.find("-R"), std::string::npos);
}

}  // namespace
}  // namespace prodb
