#ifndef PRODB_TESTS_MATCHER_TEST_UTIL_H_
#define PRODB_TESTS_MATCHER_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "engine/working_memory.h"
#include "lang/analyzer.h"
#include "match/matcher.h"

namespace prodb {

/// Canonical view of a conflict set for cross-matcher comparison: the set
/// of (rule name, matched tuple *values* per positive CE). Tuple ids are
/// matcher-independent only within one catalog, so value-level comparison
/// is used when comparing matchers running on separate catalogs.
inline std::multiset<std::string> CanonicalConflictSet(Matcher& m) {
  std::multiset<std::string> out;
  for (const Instantiation& inst : m.conflict_set().Snapshot()) {
    std::string key = inst.rule_name + ":";
    const Rule& rule = m.rules()[static_cast<size_t>(inst.rule_index)];
    for (size_t ce = 0; ce < rule.lhs.conditions.size(); ++ce) {
      key += rule.lhs.conditions[ce].negated ? "[-]"
                                             : inst.tuples[ce].ToString();
    }
    out.insert(std::move(key));
  }
  return out;
}

/// A matcher plus its own catalog and WM facade, loaded from an OPS5-like
/// program source.
struct MatcherHarness {
  std::unique_ptr<Catalog> catalog;
  std::vector<Rule> rules;
  std::unique_ptr<Matcher> matcher;
  std::unique_ptr<WorkingMemory> wm;

  Status Init(const std::string& source,
              std::function<std::unique_ptr<Matcher>(Catalog*)> factory) {
    catalog = std::make_unique<Catalog>();
    PRODB_RETURN_IF_ERROR(LoadProgram(source, catalog.get(), &rules));
    matcher = factory(catalog.get());
    for (const Rule& r : rules) {
      PRODB_RETURN_IF_ERROR(matcher->AddRule(r));
    }
    wm = std::make_unique<WorkingMemory>(catalog.get(), matcher.get());
    return Status::OK();
  }
};

}  // namespace prodb

#endif  // PRODB_TESTS_MATCHER_TEST_UTIL_H_
