// Serving-layer integration tests: framed wire protocol, durable-ack
// sessions, crash-path hygiene (SIGPIPE-safe writes, EINTR-retried
// syscalls, malformed-frame handling). The kill-after-ack durability
// proof lives in server_crash_test.cc (it needs the real binary).

#include "net/server.h"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "net/client.h"

namespace prodb {
namespace net {
namespace {

std::string TempPath(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + std::to_string(::getpid())))
      .string();
}

// One class per client so concurrent sessions tell deterministic
// stories: relation-local tuple ids + per-class rules means each
// client's conflict-delta stream is independent of interleaving.
std::string Program(size_t classes) {
  std::string src;
  for (size_t c = 0; c < classes; ++c) {
    std::string cls = "C" + std::to_string(c);
    src += "(literalize " + cls + " v tag)\n";
    src += "(p r" + std::to_string(c) + " (" + cls +
           " ^v <x> ^tag 1) --> (make " + cls + " ^v <x> ^tag 0))\n";
  }
  return src;
}

RuleServerOptions TcpOptions() {
  RuleServerOptions opts;
  opts.tcp_port = 0;  // ephemeral
  return opts;
}

WireOp Make(const std::string& cls, int64_t v, int64_t tag) {
  WireOp op;
  op.kind = kOpMake;
  op.cls = cls;
  op.tuple = Tuple{Value(v), Value(tag)};
  return op;
}

TEST(ServerTest, StartStopAndPing) {
  RuleServerOptions opts = TcpOptions();
  opts.unix_path = TempPath("prodb_srv_ping_");
  RuleServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.tcp_port(), 0);

  RuleClient tcp;
  ASSERT_TRUE(tcp.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  EXPECT_TRUE(tcp.Ping().ok());
  EXPECT_FALSE(tcp.server_durable());

  RuleClient uds;
  ASSERT_TRUE(uds.ConnectUnix(opts.unix_path).ok());
  EXPECT_TRUE(uds.Ping().ok());

  server.Stop();
  server.Stop();  // idempotent
}

TEST(ServerTest, WrongHelloMagicRejected) {
  RuleServer server(TcpOptions());
  ASSERT_TRUE(server.Start().ok());
  Socket sock;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server.tcp_port(), &sock).ok());
  std::string hello;
  PutU32(&hello, 0xdeadbeef);
  ASSERT_TRUE(sock.SendFrame(MsgType::kHello, hello).ok());
  MsgType type;
  std::string payload;
  ASSERT_TRUE(sock.RecvFrame(&type, &payload).ok());
  EXPECT_EQ(type, MsgType::kError);
  server.Stop();
}

TEST(ServerTest, LoadBatchRunDump) {
  RuleServer server(TcpOptions());
  ASSERT_TRUE(server.Start().ok());
  RuleClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  ASSERT_TRUE(client.Load(Program(1)).ok());

  WireBatch batch;
  batch.ops.push_back(Make("C0", 7, 1));
  batch.ops.push_back(Make("C0", 8, 0));
  WireBatchAck ack;
  ASSERT_TRUE(client.Apply(batch, &ack).ok());
  EXPECT_FALSE(ack.durable);
  ASSERT_EQ(ack.insert_ids.size(), 2u);
  // The ^tag 1 make satisfied r0 — its instantiation must be in the
  // ack's conflict delta.
  ASSERT_EQ(ack.conflict.size(), 1u);
  EXPECT_TRUE(ack.conflict[0].added);
  EXPECT_EQ(ack.conflict[0].rule, "r0");

  // Modify the non-matching tuple into a matching one.
  WireBatch modify;
  WireOp op;
  op.kind = kOpModify;
  op.cls = "C0";
  op.id = ack.insert_ids[1];
  op.tuple = Tuple{Value(int64_t{8}), Value(int64_t{1})};
  modify.ops.push_back(op);
  WireBatchAck ack2;
  ASSERT_TRUE(client.Apply(modify, &ack2).ok());
  ASSERT_EQ(ack2.insert_ids.size(), 1u);
  ASSERT_EQ(ack2.conflict.size(), 1u);
  EXPECT_TRUE(ack2.conflict[0].added);

  WireRunResult run;
  ASSERT_TRUE(client.Run(/*concurrent=*/false, &run).ok());
  EXPECT_EQ(run.firings, 2u);
  EXPECT_EQ(run.fired.size(), 2u);

  WireDumpReply dump;
  ASSERT_TRUE(client.DumpClass("C0", &dump).ok());
  // 2 makes + 1 modify-insert + 2 rule makes.
  EXPECT_EQ(dump.tuples.size(), 4u);  // modify removed one of the five

  // Remove one tuple and confirm the retraction reaches the dump.
  WireBatch remove;
  WireOp rm;
  rm.kind = kOpRemove;
  rm.cls = "C0";
  rm.id = ack.insert_ids[0];
  remove.ops.push_back(rm);
  WireBatchAck ack3;
  ASSERT_TRUE(client.Apply(remove, &ack3).ok());
  WireDumpReply dump2;
  ASSERT_TRUE(client.DumpClass("C0", &dump2).ok());
  EXPECT_EQ(dump2.tuples.size(), dump.tuples.size() - 1);

  EXPECT_FALSE(client.DumpClass("NoSuch", &dump).ok());
  server.Stop();
}

TEST(ServerTest, ConcurrentRunOverWire) {
  RuleServer server(TcpOptions());
  ASSERT_TRUE(server.Start().ok());
  RuleClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  ASSERT_TRUE(client.Load(Program(2)).ok());
  WireBatch batch;
  for (int i = 0; i < 8; ++i) batch.ops.push_back(Make("C1", i, 1));
  WireBatchAck ack;
  ASSERT_TRUE(client.Apply(batch, &ack).ok());
  EXPECT_EQ(ack.conflict.size(), 8u);
  WireRunResult run;
  ASSERT_TRUE(client.Run(/*concurrent=*/true, &run).ok());
  EXPECT_EQ(run.firings, 8u);
  EXPECT_EQ(run.fired.size(), 8u);
  server.Stop();
}

// The tentpole correctness claim: the conflict-set delta a server ack
// carries is byte-identical to what an in-process system produces for
// the same batches — even with concurrent clients, as long as their
// classes are disjoint (per-class determinism; cross-class interleaving
// is inherently racy and carries no ordering promise).
TEST(ServerTest, ConflictDeltasByteIdenticalToInProcess) {
  constexpr size_t kClients = 4;
  constexpr size_t kBatches = 16;
  constexpr size_t kOpsPerBatch = 8;

  RuleServer server(TcpOptions());
  ASSERT_TRUE(server.Start().ok());
  {
    RuleClient admin;
    ASSERT_TRUE(admin.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
    ASSERT_TRUE(admin.Load(Program(kClients)).ok());
  }

  auto batch_for = [](size_t client, size_t b) {
    WireBatch batch;
    std::string cls = "C" + std::to_string(client);
    for (size_t k = 0; k < kOpsPerBatch; ++k) {
      batch.ops.push_back(
          Make(cls, static_cast<int64_t>(b * kOpsPerBatch + k),
               static_cast<int64_t>(k % 2)));
    }
    return batch;
  };

  // Each client records the encoded conflict-delta bytes of every ack.
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      RuleClient client;
      if (!client.ConnectTcp("127.0.0.1", server.tcp_port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t b = 0; b < kBatches; ++b) {
        WireBatchAck ack;
        if (!client.Apply(batch_for(c, b), &ack).ok()) {
          failures.fetch_add(1);
          return;
        }
        std::string bytes;
        EncodeConflictDeltas(ack.conflict, &bytes);
        got[c].push_back(std::move(bytes));
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  server.Stop();

  // In-process reference: same program, clients replayed sequentially,
  // deltas captured around each batch's OnBatch.
  ProductionSystem ref;
  ASSERT_TRUE(ref.LoadString(Program(kClients)).ok());
  WorkingMemory& wm = ref.working_memory();
  for (size_t c = 0; c < kClients; ++c) {
    for (size_t b = 0; b < kBatches; ++b) {
      std::vector<WireConflictDelta> deltas;
      ref.conflict_set().SetDeltaListener(
          [&](bool added, const std::string& key,
              const Instantiation* inst) {
            WireConflictDelta cd;
            cd.added = added;
            cd.key = key;
            if (inst != nullptr) cd.rule = inst->rule_name;
            deltas.push_back(std::move(cd));
          });
      wm.BeginBatch();
      for (const WireOp& op : batch_for(c, b).ops) {
        ASSERT_TRUE(wm.Insert(op.cls, op.tuple).ok());
      }
      ASSERT_TRUE(wm.CommitBatch().ok());
      ref.conflict_set().SetDeltaListener(nullptr);
      std::string bytes;
      EncodeConflictDeltas(deltas, &bytes);
      ASSERT_EQ(bytes, got[c][b])
          << "client " << c << " batch " << b << " delta bytes diverged";
    }
  }
}

TEST(ServerTest, MalformedFrameRejectedWithoutSessionTeardown) {
  RuleServer server(TcpOptions());
  ASSERT_TRUE(server.Start().ok());
  RuleClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());

  // Intact frame, garbage batch payload: kError, session survives.
  MsgType type;
  std::string reply;
  ASSERT_TRUE(
      client.RoundTrip(MsgType::kBatch, "\xff\xff\xff\xff", &type, &reply)
          .ok());
  EXPECT_EQ(type, MsgType::kError);
  EXPECT_FALSE(DecodeError(reply).ok());

  // Truncated batch (op count says 3, zero ops follow): same story.
  std::string truncated;
  PutU32(&truncated, 3);
  ASSERT_TRUE(
      client.RoundTrip(MsgType::kBatch, truncated, &type, &reply).ok());
  EXPECT_EQ(type, MsgType::kError);

  // Unknown frame type: still recoverable.
  ASSERT_TRUE(
      client.RoundTrip(static_cast<MsgType>(200), "", &type, &reply).ok());
  EXPECT_EQ(type, MsgType::kError);

  // The session is alive and fully functional after all three.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Load(Program(1)).ok());
  server.Stop();
}

TEST(ServerTest, OversizeFrameClosesConnection) {
  RuleServer server(TcpOptions());
  ASSERT_TRUE(server.Start().ok());
  RuleClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());

  // Forge a header declaring a payload beyond the limit. The stream
  // cannot be resynchronized, so the server must error and hang up.
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(MsgType::kBatch, kMaxFramePayload + 1, header);
  ASSERT_TRUE(client.socket().SendAll(header, sizeof(header)).ok());
  MsgType type;
  std::string payload;
  ASSERT_TRUE(client.socket().RecvFrame(&type, &payload).ok());
  EXPECT_EQ(type, MsgType::kError);
  // Next read sees the close.
  Status st = client.socket().RecvFrame(&type, &payload);
  EXPECT_TRUE(st.IsNotFound());

  // The server itself is unharmed.
  RuleClient again;
  ASSERT_TRUE(again.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  EXPECT_TRUE(again.Ping().ok());
  server.Stop();
}

// A client that vanishes right after a request must not kill the server
// with SIGPIPE when the reply is written into the dead socket (sends use
// MSG_NOSIGNAL). The test process shares the signal disposition, so an
// unprotected write would abort the whole test run.
TEST(ServerTest, SigpipeSafeWrites) {
  RuleServer server(TcpOptions());
  ASSERT_TRUE(server.Start().ok());
  {
    RuleClient admin;
    ASSERT_TRUE(admin.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
    ASSERT_TRUE(admin.Load(Program(1)).ok());
  }
  for (int i = 0; i < 8; ++i) {
    RuleClient client;
    ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
    // Large dump reply gives the server a multi-packet write to trip
    // over; close without reading.
    WireBatch batch;
    for (int k = 0; k < 256; ++k) batch.ops.push_back(Make("C0", k, 0));
    WireBatchAck ack;
    ASSERT_TRUE(client.Apply(batch, &ack).ok());
    std::string payload;
    PutString(&payload, "C0");
    ASSERT_TRUE(
        client.socket().SendFrame(MsgType::kDump, payload).ok());
    client.Close();
  }
  RuleClient check;
  ASSERT_TRUE(check.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  EXPECT_TRUE(check.Ping().ok());
  server.Stop();
}

// RecvAll/SendAll retry EINTR: dribble bytes through a socketpair while
// peppering the reading thread with a no-op signal installed *without*
// SA_RESTART, so every slow recv is interrupted at least once.
TEST(ServerTest, EintrRetriedSyscalls) {
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old{};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket reader(fds[0]);
  Socket writer(fds[1]);

  constexpr size_t kBytes = 64 * 1024;
  std::string received(kBytes, '\0');
  std::atomic<bool> done{false};
  Status recv_st;
  std::thread t([&] {
    recv_st = reader.RecvAll(received.data(), kBytes);
    done.store(true);
  });
  pthread_t handle = t.native_handle();

  std::string sent(kBytes, '\0');
  for (size_t i = 0; i < kBytes; ++i) {
    sent[i] = static_cast<char>(i * 131);
  }
  size_t off = 0;
  while (off < kBytes) {
    pthread_kill(handle, SIGUSR1);
    size_t chunk = std::min<size_t>(977, kBytes - off);
    ASSERT_TRUE(writer.SendAll(sent.data() + off, chunk).ok());
    off += chunk;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    pthread_kill(handle, SIGUSR1);
  }
  for (int i = 0; i < 100 && !done.load(); ++i) {
    pthread_kill(handle, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  t.join();
  EXPECT_TRUE(recv_st.ok());
  EXPECT_EQ(received, sent);
  ASSERT_EQ(sigaction(SIGUSR1, &old, nullptr), 0);
}

TEST(ServerTest, DurableAckAndEmptyBatchBarrier) {
  std::string db = TempPath("prodb_srv_durable_");
  std::filesystem::remove(db);
  RuleServerOptions opts = TcpOptions();
  opts.system.wm_storage = StorageKind::kPaged;
  opts.system.db_path = db;
  opts.system.enable_wal = true;
  opts.system.durable_directory = true;
  RuleServer server(opts);
  ASSERT_TRUE(server.Start().ok());

  RuleClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  EXPECT_TRUE(client.server_durable());
  ASSERT_TRUE(client.Load(Program(1)).ok());

  WireBatch batch;
  batch.ops.push_back(Make("C0", 1, 1));
  WireBatchAck ack;
  ASSERT_TRUE(client.Apply(batch, &ack).ok());
  EXPECT_TRUE(ack.durable);
  EXPECT_GT(ack.durable_lsn, 0u);
  EXPECT_GT(ack.txn_id, 0u);

  // Empty batch = durability barrier; LSN does not regress.
  WireBatchAck barrier;
  ASSERT_TRUE(client.Apply(WireBatch{}, &barrier).ok());
  EXPECT_TRUE(barrier.durable);
  EXPECT_GE(barrier.durable_lsn, ack.durable_lsn);

  WireStatsReply stats;
  ASSERT_TRUE(client.GetStats(&stats).ok());
  auto find = [&](const std::string& key) -> uint64_t {
    for (const auto& [k, v] : stats.counters) {
      if (k == key) return v;
    }
    return UINT64_MAX;
  };
  EXPECT_GE(find("durable_forces"), 1u);
  EXPECT_EQ(find("batches_applied"), 1u);
  server.Stop();
  std::filesystem::remove(db);
}

TEST(ServerTest, ShardingAndPlannerPlumbedThrough) {
  RuleServerOptions opts = TcpOptions();
  opts.system.matcher = MatcherKind::kRete;
  opts.system.sharding.num_shards = 4;
  opts.system.sharding.threads = 2;
  opts.system.planner.enable = true;
  opts.system.planner.min_card = 0.0;
  RuleServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  RuleClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  ASSERT_TRUE(client.Load(Program(2)).ok());
  WireBatch batch;
  batch.ops.push_back(Make("C0", 1, 1));
  WireBatchAck ack;
  ASSERT_TRUE(client.Apply(batch, &ack).ok());
  WireStatsReply stats;
  ASSERT_TRUE(client.GetStats(&stats).ok());
  auto find = [&](const std::string& key) -> uint64_t {
    for (const auto& [k, v] : stats.counters) {
      if (k == key) return v;
    }
    return UINT64_MAX;
  };
  EXPECT_EQ(find("match_shards"), 4u);
  EXPECT_GE(find("plans_built"), 2u);
  EXPECT_EQ(find("matcher_batches"), 1u);
  server.Stop();
}

TEST(ServerTest, LoadCanBeDisabled) {
  RuleServerOptions opts = TcpOptions();
  opts.allow_load = false;
  opts.preload = Program(1);
  RuleServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  RuleClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  EXPECT_FALSE(client.Load("(literalize X a)").ok());
  // The preloaded program still serves.
  WireBatch batch;
  batch.ops.push_back(Make("C0", 1, 1));
  WireBatchAck ack;
  EXPECT_TRUE(client.Apply(batch, &ack).ok());
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace prodb
