#include "common/status.h"

#include <gtest/gtest.h>

namespace prodb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, CodesAndPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Deadlock("x").IsDeadlock());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_FALSE(Status::NotFound("x").ok());
  EXPECT_FALSE(Status::NotFound("x").IsDeadlock());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status st = Status::Corruption("bad page 7");
  EXPECT_EQ(st.ToString(), "Corruption: bad page 7");
  EXPECT_EQ(st.message(), "bad page 7");
  EXPECT_EQ(Status::IOError("").ToString(), "IOError");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    PRODB_RETURN_IF_ERROR(fails());
    return Status::OK();  // unreachable
  };
  EXPECT_EQ(wrapper().code(), Status::Code::kInternal);
  auto passes = []() -> Status {
    PRODB_RETURN_IF_ERROR(Status::OK());
    return Status::NotSupported("reached");
  };
  EXPECT_EQ(passes().code(), Status::Code::kNotSupported);
}

}  // namespace
}  // namespace prodb
