#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

namespace prodb {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesInWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Submit([] { throw std::runtime_error("task boom"); });
  pool.Submit([&count] { ++count; });
  // Without the catch in Run() the throw terminates the process; without
  // the balanced decrement this Wait() hangs.
  try {
    pool.Wait();
    FAIL() << "Wait() should rethrow the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task boom");
  }
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, OnlyFirstFailureRethrownAndStateResets) {
  ThreadPool pool(1);  // single worker => deterministic task order
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::runtime_error("second"); });
  try {
    pool.Wait();
    FAIL() << "Wait() should rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "first");
  }
  // The failure slot was consumed: the pool is reusable and a clean
  // round of work waits without throwing.
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count] { ++count; });
  }
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, WaitWithNothingPendingReturnsImmediately) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.Wait());
}

}  // namespace
}  // namespace prodb
