#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>

namespace prodb {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesInWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Submit([] { throw std::runtime_error("task boom"); });
  pool.Submit([&count] { ++count; });
  // Without the catch in Run() the throw terminates the process; without
  // the balanced decrement this Wait() hangs.
  try {
    pool.Wait();
    FAIL() << "Wait() should rethrow the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task boom");
  }
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, OnlyFirstFailureRethrownAndStateResets) {
  ThreadPool pool(1);  // single worker => deterministic task order
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::runtime_error("second"); });
  try {
    pool.Wait();
    FAIL() << "Wait() should rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "first");
  }
  // The failure slot was consumed: the pool is reusable and a clean
  // round of work waits without throwing.
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count] { ++count; });
  }
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, WaitWithNothingPendingReturnsImmediately) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.Wait());
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(97);
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // n == 0 and n == 1 (inline fast path) degenerate cleanly.
  pool.ParallelFor(0, [&](size_t) { FAIL() << "n=0 must not invoke fn"; });
  std::atomic<int> once{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++once;
  });
  EXPECT_EQ(once.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsAfterDrainingAllIndices) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  try {
    pool.ParallelFor(16, [&](size_t i) {
      ++ran;
      if (i == 3) throw std::runtime_error("index boom");
    });
    FAIL() << "ParallelFor should rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "index boom");
  }
  // The barrier waits for every index before rethrowing — no task is
  // abandoned mid-flight.
  EXPECT_EQ(ran.load(), 16);
  // The pool remains usable for both ParallelFor and plain Submit.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t) { ++count; });
  pool.Submit([&count] { ++count; });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPoolTest, ParallelForFromWorkerThreadDoesNotDeadlock) {
  // Regression: ParallelFor called from a task running ON the pool used
  // to enqueue its indices behind the caller and block on the latch —
  // with a single worker that worker waits on tasks only it can run, a
  // guaranteed deadlock. The fix runs the loop inline when the calling
  // thread is one of the pool's own workers. Deadline-guarded so a
  // regression fails the test instead of hanging the suite.
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  std::promise<void> done;
  pool.Submit([&] {
    pool.ParallelFor(4, [&](size_t) { ++inner; });
    done.set_value();
  });
  auto status = done.get_future().wait_for(std::chrono::seconds(10));
  ASSERT_EQ(status, std::future_status::ready)
      << "re-entrant ParallelFor deadlocked the pool";
  pool.Wait();
  EXPECT_EQ(inner.load(), 4);

  // Nested fan-out on a multi-worker pool: outer ParallelFor indices run
  // on workers, each fans out again. Inline execution keeps every index
  // accounted for exactly once.
  ThreadPool big(4);
  std::vector<std::atomic<int>> hits(64);
  big.ParallelFor(8, [&](size_t outer) {
    big.ParallelFor(8, [&](size_t j) { ++hits[outer * 8 + j]; });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }

  // The exception contract survives the inline path.
  ThreadPool one(1);
  std::promise<std::string> caught;
  one.Submit([&] {
    try {
      one.ParallelFor(4, [&](size_t i) {
        if (i == 2) throw std::runtime_error("inline boom");
      });
      caught.set_value("no throw");
    } catch (const std::runtime_error& e) {
      caught.set_value(e.what());
    }
  });
  auto fut = caught.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(fut.get(), "inline boom");
  one.Wait();
}

TEST(ThreadPoolTest, ParallelForComposesWithConcurrentSubmit) {
  // A ParallelFor barrier must only cover its own indices: plain tasks
  // submitted around it still run, and the barrier does not wait on
  // them (it returns while the slow Submit task may still be pending).
  ThreadPool pool(4);
  std::atomic<int> plain{0};
  std::atomic<int> indexed{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&plain] { ++plain; });
  }
  pool.ParallelFor(32, [&](size_t) { ++indexed; });
  EXPECT_EQ(indexed.load(), 32);
  pool.Wait();
  EXPECT_EQ(plain.load(), 8);
}

}  // namespace
}  // namespace prodb
