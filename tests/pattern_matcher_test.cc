#include "match/pattern_matcher.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matcher_test_util.h"
#include "workload/paper_examples.h"

namespace prodb {
namespace {

class PatternMatcherTest : public ::testing::Test {
 protected:
  void Load(const std::string& source, PatternMatcherOptions opts = {}) {
    ASSERT_TRUE(harness_
                    .Init(source,
                          [opts](Catalog* c) {
                            return std::make_unique<PatternMatcher>(c, opts);
                          })
                    .ok());
    pm_ = static_cast<PatternMatcher*>(harness_.matcher.get());
  }
  WorkingMemory& wm() { return *harness_.wm; }
  ConflictSet& cs() { return harness_.matcher->conflict_set(); }
  MatcherHarness harness_;
  PatternMatcher* pm_ = nullptr;
};

// The paper's Example 5: insert B(4,5,b), C(c,7,8), A(4,a,8), B(4,7,b);
// Rule-1 must enter the conflict set exactly at the last insertion.
TEST_F(PatternMatcherTest, ExampleFiveTrace) {
  Load(kThreeWayJoin);
  ASSERT_TRUE(wm().Insert("B", Tuple{Value(4), Value(5), Value("b")}).ok());
  EXPECT_TRUE(cs().empty());
  // B's arrival propagated a matching pattern into COND-A (x=4) and
  // COND-C (y=5).
  EXPECT_EQ(pm_->PatternCount("A"), 1u);
  EXPECT_EQ(pm_->PatternCount("C"), 1u);

  ASSERT_TRUE(wm().Insert("C", Tuple{Value("c"), Value(7), Value(8)}).ok());
  EXPECT_TRUE(cs().empty());
  // C contributes to COND-A (z=8) and COND-B (y=7).
  EXPECT_EQ(pm_->PatternCount("A"), 2u);
  EXPECT_EQ(pm_->PatternCount("B"), 1u);

  ASSERT_TRUE(wm().Insert("A", Tuple{Value(4), Value("a"), Value(8)}).ok());
  EXPECT_TRUE(cs().empty());  // B(4,5,b) has y=5, C needs y=7: no match yet

  ASSERT_TRUE(wm().Insert("B", Tuple{Value(4), Value(7), Value("b")}).ok());
  ASSERT_EQ(cs().size(), 1u);
  const Instantiation inst = cs().Snapshot()[0];
  EXPECT_EQ(inst.rule_name, "Rule-1");
  EXPECT_EQ(inst.tuples[0], (Tuple{Value(4), Value("a"), Value(8)}));
  EXPECT_EQ(inst.tuples[1], (Tuple{Value(4), Value(7), Value("b")}));
  EXPECT_EQ(inst.tuples[2], (Tuple{Value("c"), Value(7), Value(8)}));
}

TEST_F(PatternMatcherTest, CondRelationsExistWithOriginalRows) {
  Load(kThreeWayJoin);
  for (const char* cls : {"A", "B", "C"}) {
    Relation* cond = pm_->CondRelation(cls);
    ASSERT_NE(cond, nullptr) << cls;
    // One original condition row before any WM activity.
    EXPECT_EQ(cond->Count(), 1u) << cls;
    EXPECT_EQ(cond->schema().name(), std::string("COND-") + cls);
  }
  // Inserting a B adds narrowed pattern rows to COND-A and COND-C.
  ASSERT_TRUE(wm().Insert("B", Tuple{Value(4), Value(5), Value("b")}).ok());
  EXPECT_EQ(pm_->CondRelation("A")->Count(), 2u);
  EXPECT_EQ(pm_->CondRelation("C")->Count(), 2u);
  EXPECT_EQ(pm_->CondRelation("B")->Count(), 1u);
}

TEST_F(PatternMatcherTest, DeletionDecrementsCounters) {
  Load(kThreeWayJoin);
  TupleId b1, b2;
  // Two identical-join B tuples: the x=4 pattern in COND-A has counter 2.
  ASSERT_TRUE(
      wm().Insert("B", Tuple{Value(4), Value(5), Value("b")}, &b1).ok());
  ASSERT_TRUE(
      wm().Insert("B", Tuple{Value(4), Value(9), Value("b")}, &b2).ok());
  EXPECT_EQ(pm_->PatternCount("A"), 1u);  // same projection x=4
  ASSERT_TRUE(wm().Delete("B", b1).ok());
  EXPECT_EQ(pm_->PatternCount("A"), 1u);  // still supported by b2
  ASSERT_TRUE(wm().Delete("B", b2).ok());
  EXPECT_EQ(pm_->PatternCount("A"), 0u);  // counter hit zero: row removed
  EXPECT_EQ(pm_->CondRelation("A")->Count(), 1u);  // original row remains
}

TEST_F(PatternMatcherTest, DeleteRetractsInstantiation) {
  Load(kThreeWayJoin);
  TupleId a;
  ASSERT_TRUE(wm().Insert("B", Tuple{Value(4), Value(7), Value("b")}).ok());
  ASSERT_TRUE(wm().Insert("C", Tuple{Value("c"), Value(7), Value(8)}).ok());
  ASSERT_TRUE(
      wm().Insert("A", Tuple{Value(4), Value("a"), Value(8)}, &a).ok());
  ASSERT_EQ(cs().size(), 1u);
  ASSERT_TRUE(wm().Delete("A", a).ok());
  EXPECT_TRUE(cs().empty());
}

TEST_F(PatternMatcherTest, NegatedConditionLifecycle) {
  Load(R"(
(literalize Order id status)
(literalize Assignment order machine)
(p Idle
  (Order ^id <o> ^status pending)
  -(Assignment ^order <o>)
  -->
  (remove 1))
)");
  ASSERT_TRUE(wm().Insert("Order", Tuple{Value(1), Value("pending")}).ok());
  ASSERT_EQ(cs().size(), 1u);
  TupleId blocker;
  ASSERT_TRUE(
      wm().Insert("Assignment", Tuple{Value(1), Value(7)}, &blocker).ok());
  EXPECT_TRUE(cs().empty());
  ASSERT_TRUE(wm().Delete("Assignment", blocker).ok());
  ASSERT_EQ(cs().size(), 1u);
}

TEST_F(PatternMatcherTest, SingleSearchDoesNotScanWm) {
  // §4.2.3: matching consults COND-<class>, not the other WM relations,
  // until support exists. Filling B with non-matching tuples must not
  // make an A insertion more expensive in WM terms.
  Load(kThreeWayJoin);
  for (int i = 0; i < 100; ++i) {
    // b3 != 'b': fails B's own alpha test, never reaches patterns.
    ASSERT_TRUE(
        wm().Insert("B", Tuple{Value(i), Value(i), Value("z")}).ok());
  }
  EXPECT_EQ(pm_->PatternCount("A"), 0u);
  uint64_t examined_before = pm_->stats().tuples_examined.load();
  ASSERT_TRUE(wm().Insert("A", Tuple{Value(4), Value("a"), Value(8)}).ok());
  // The A insertion examined no patterns (COND-A holds none).
  EXPECT_EQ(pm_->stats().tuples_examined.load(), examined_before);
}

TEST_F(PatternMatcherTest, RuleDefSyncReflectsSatisfaction) {
  Load(kThreeWayJoin);
  ASSERT_NE(pm_->rule_def(), nullptr);
  EXPECT_EQ(pm_->rule_def()->Count(), 3u);  // one row per CE
  ASSERT_TRUE(pm_->SyncRuleDef().ok());
  // Nothing satisfied yet.
  ASSERT_TRUE(pm_->rule_def()
                  ->Scan([](TupleId, const Tuple& t) {
                    EXPECT_EQ(t[2], Value(int64_t{0}));
                    return Status::OK();
                  })
                  .ok());
  ASSERT_TRUE(wm().Insert("A", Tuple{Value(4), Value("a"), Value(8)}).ok());
  ASSERT_TRUE(pm_->SyncRuleDef().ok());
  int set_bits = 0;
  ASSERT_TRUE(pm_->rule_def()
                  ->Scan([&](TupleId, const Tuple& t) {
                    if (t[2] == Value(int64_t{1})) ++set_bits;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(set_bits, 1);  // only CE 1 (class A) satisfied
}

TEST_F(PatternMatcherTest, ParallelPropagationMatchesSequential) {
  PatternMatcherOptions par;
  par.propagation_threads = 4;
  Load(kThreeWayJoin, par);
  MatcherHarness seq;
  ASSERT_TRUE(seq.Init(kThreeWayJoin,
                       [](Catalog* c) {
                         return std::make_unique<PatternMatcher>(c);
                       })
                  .ok());
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const char* classes[] = {"A", "B", "C"};
    size_t c = rng.Uniform(3);
    Tuple t;
    if (c == 0) {
      t = Tuple{Value(static_cast<int64_t>(rng.Uniform(5))), Value("a"),
                Value(static_cast<int64_t>(rng.Uniform(5)))};
    } else if (c == 1) {
      t = Tuple{Value(static_cast<int64_t>(rng.Uniform(5))),
                Value(static_cast<int64_t>(rng.Uniform(5))), Value("b")};
    } else {
      t = Tuple{Value("c"), Value(static_cast<int64_t>(rng.Uniform(5))),
                Value(static_cast<int64_t>(rng.Uniform(5)))};
    }
    ASSERT_TRUE(wm().Insert(classes[c], t).ok());
    ASSERT_TRUE(seq.wm->Insert(classes[c], t).ok());
  }
  EXPECT_EQ(CanonicalConflictSet(*harness_.matcher),
            CanonicalConflictSet(*seq.matcher));
}

TEST_F(PatternMatcherTest, PagedCondStorageWorks) {
  PatternMatcherOptions opts;
  opts.cond_storage = StorageKind::kPaged;
  Load(kThreeWayJoin, opts);
  ASSERT_TRUE(wm().Insert("B", Tuple{Value(4), Value(7), Value("b")}).ok());
  ASSERT_TRUE(wm().Insert("C", Tuple{Value("c"), Value(7), Value(8)}).ok());
  ASSERT_TRUE(wm().Insert("A", Tuple{Value(4), Value("a"), Value(8)}).ok());
  EXPECT_EQ(cs().size(), 1u);
  EXPECT_EQ(pm_->CondRelation("A")->storage_kind(), StorageKind::kPaged);
}

TEST_F(PatternMatcherTest, FootprintGrowsWithPatterns) {
  Load(kThreeWayJoin);
  size_t before = pm_->AuxiliaryFootprintBytes();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        wm().Insert("B", Tuple{Value(i), Value(i), Value("b")}).ok());
  }
  EXPECT_GT(pm_->AuxiliaryFootprintBytes(), before);
}

}  // namespace
}  // namespace prodb
