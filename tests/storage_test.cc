#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

namespace prodb {
namespace {

// Frame-accounting invariant, checked after every buffer-pool-touching
// test: no test may leave the pool with leaked frames or inconsistent
// page-table/LRU bookkeeping.
void ExpectPoolBalanced(const BufferPool& pool) {
  Status st = pool.VerifyFrameAccounting();
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(MemoryDiskManagerTest, AllocateReadWrite) {
  MemoryDiskManager dm;
  uint32_t p0, p1;
  ASSERT_TRUE(dm.AllocatePage(&p0).ok());
  ASSERT_TRUE(dm.AllocatePage(&p1).ok());
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  char buf[kPageSize];
  std::fill(buf, buf + kPageSize, 'x');
  ASSERT_TRUE(dm.WritePage(p1, buf).ok());
  char out[kPageSize];
  ASSERT_TRUE(dm.ReadPage(p1, out).ok());
  EXPECT_EQ(out[0], 'x');
  EXPECT_EQ(out[kPageSize - 1], 'x');
  // Fresh pages are zeroed.
  ASSERT_TRUE(dm.ReadPage(p0, out).ok());
  EXPECT_EQ(out[0], 0);
}

TEST(MemoryDiskManagerTest, OutOfRangeRejected) {
  MemoryDiskManager dm;
  char buf[kPageSize];
  EXPECT_FALSE(dm.ReadPage(5, buf).ok());
  EXPECT_FALSE(dm.WritePage(5, buf).ok());
}

TEST(FileDiskManagerTest, PersistsAcrossReopen) {
  std::string path = testing::TempDir() + "/prodb_dm_test.db";
  {
    std::unique_ptr<FileDiskManager> dm;
    ASSERT_TRUE(FileDiskManager::Open(path, /*truncate=*/true, &dm).ok());
    uint32_t pid;
    ASSERT_TRUE(dm->AllocatePage(&pid).ok());
    char buf[kPageSize] = {};
    buf[17] = 'z';
    ASSERT_TRUE(dm->WritePage(pid, buf).ok());
  }
  {
    std::unique_ptr<FileDiskManager> dm;
    ASSERT_TRUE(FileDiskManager::Open(path, /*truncate=*/false, &dm).ok());
    EXPECT_EQ(dm->PageCount(), 1u);
    char out[kPageSize];
    ASSERT_TRUE(dm->ReadPage(0, out).ok());
    EXPECT_EQ(out[17], 'z');
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, StreamFailureIsNotSticky) {
  std::string path = testing::TempDir() + "/prodb_dm_failbit.db";
  std::unique_ptr<FileDiskManager> dm;
  ASSERT_TRUE(FileDiskManager::Open(path, /*truncate=*/true, &dm).ok());
  uint32_t pid;
  ASSERT_TRUE(dm->AllocatePage(&pid).ok());
  char buf[kPageSize] = {};
  ASSERT_TRUE(dm->WritePage(pid, buf).ok());
  // One failed operation must not make every later operation fail: the
  // stream's failbit has to be cleared after the error.
  dm->InjectStreamFaultForTesting();
  EXPECT_FALSE(dm->ReadPage(pid, buf).ok());
  EXPECT_TRUE(dm->ReadPage(pid, buf).ok());
  dm->InjectStreamFaultForTesting();
  EXPECT_FALSE(dm->WritePage(pid, buf).ok());
  EXPECT_TRUE(dm->WritePage(pid, buf).ok());
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, FailedAllocateDoesNotBurnPageId) {
  std::string path = testing::TempDir() + "/prodb_dm_alloc.db";
  std::unique_ptr<FileDiskManager> dm;
  ASSERT_TRUE(FileDiskManager::Open(path, /*truncate=*/true, &dm).ok());
  uint32_t pid;
  ASSERT_TRUE(dm->AllocatePage(&pid).ok());
  EXPECT_EQ(pid, 0u);
  // A failed allocate must not consume a page id: the id would be
  // in-range for ReadPage but its page was never zero-filled.
  dm->InjectStreamFaultForTesting();
  EXPECT_FALSE(dm->AllocatePage(&pid).ok());
  EXPECT_EQ(dm->PageCount(), 1u);
  char buf[kPageSize];
  EXPECT_EQ(dm->ReadPage(1, buf).code(), Status::Code::kOutOfRange);
  ASSERT_TRUE(dm->AllocatePage(&pid).ok());
  EXPECT_EQ(pid, 1u);  // the failed attempt's id is reissued
  EXPECT_TRUE(dm->ReadPage(1, buf).ok());
  std::remove(path.c_str());
}

TEST(BufferPoolTest, FetchHitsCache) {
  auto disk = std::make_unique<MemoryDiskManager>();
  MemoryDiskManager* raw = disk.get();
  BufferPool pool(4, std::move(disk));
  uint32_t pid;
  Frame* f;
  ASSERT_TRUE(pool.NewPage(&pid, &f).ok());
  f->data[0] = 'a';
  ASSERT_TRUE(pool.UnpinPage(pid, true).ok());
  uint64_t reads_before = raw->reads();
  ASSERT_TRUE(pool.FetchPage(pid, &f).ok());
  EXPECT_EQ(f->data[0], 'a');
  EXPECT_EQ(raw->reads(), reads_before);  // served from cache
  EXPECT_EQ(pool.stats().hits, 1u);
  ASSERT_TRUE(pool.UnpinPage(pid, false).ok());
  ExpectPoolBalanced(pool);
}

TEST(BufferPoolTest, EvictsLruAndWritesBackDirty) {
  auto disk = std::make_unique<MemoryDiskManager>();
  MemoryDiskManager* raw = disk.get();
  BufferPool pool(2, std::move(disk));
  uint32_t pids[3];
  for (int i = 0; i < 3; ++i) {
    Frame* f;
    ASSERT_TRUE(pool.NewPage(&pids[i], &f).ok());
    f->data[0] = static_cast<char>('a' + i);
    ASSERT_TRUE(pool.UnpinPage(pids[i], true).ok());
  }
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_GE(pool.stats().dirty_writebacks, 1u);
  // The evicted first page must reload with its data intact.
  Frame* f;
  ASSERT_TRUE(pool.FetchPage(pids[0], &f).ok());
  EXPECT_EQ(f->data[0], 'a');
  ASSERT_TRUE(pool.UnpinPage(pids[0], false).ok());
  EXPECT_GT(raw->writes(), 0u);
  ExpectPoolBalanced(pool);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(2, std::make_unique<MemoryDiskManager>());
  uint32_t p0, p1, p2;
  Frame *f0, *f1, *f2;
  ASSERT_TRUE(pool.NewPage(&p0, &f0).ok());
  ASSERT_TRUE(pool.NewPage(&p1, &f1).ok());
  // Both frames pinned: a third page cannot be materialized.
  EXPECT_FALSE(pool.NewPage(&p2, &f2).ok());
  ASSERT_TRUE(pool.UnpinPage(p0, false).ok());
  EXPECT_TRUE(pool.NewPage(&p2, &f2).ok());
  ASSERT_TRUE(pool.UnpinPage(p1, false).ok());
  ASSERT_TRUE(pool.UnpinPage(p2, false).ok());
  ExpectPoolBalanced(pool);
}

TEST(BufferPoolTest, UnpinErrorsOnBadCalls) {
  BufferPool pool(2, std::make_unique<MemoryDiskManager>());
  EXPECT_FALSE(pool.UnpinPage(99, false).ok());
  uint32_t pid;
  Frame* f;
  ASSERT_TRUE(pool.NewPage(&pid, &f).ok());
  ASSERT_TRUE(pool.UnpinPage(pid, false).ok());
  EXPECT_FALSE(pool.UnpinPage(pid, false).ok());  // already unpinned
  ExpectPoolBalanced(pool);
}

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pool_ = std::make_unique<BufferPool>(
        16, std::make_unique<MemoryDiskManager>());
    ASSERT_TRUE(HeapFile::Create(pool_.get(), &hf_).ok());
  }
  void TearDown() override { ExpectPoolBalanced(*pool_); }
  Tuple MakeTuple(int i) {
    return Tuple{Value(i), Value("name" + std::to_string(i)), Value(i * 1.5)};
  }
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapFile> hf_;
};

TEST_F(HeapFileTest, InsertAndGet) {
  TupleId id;
  ASSERT_TRUE(hf_->Insert(MakeTuple(1), &id).ok());
  Tuple out;
  ASSERT_TRUE(hf_->Get(id, &out).ok());
  EXPECT_EQ(out, MakeTuple(1));
  EXPECT_EQ(hf_->TupleCount(), 1u);
}

TEST_F(HeapFileTest, GetMissingFails) {
  Tuple out;
  EXPECT_TRUE(hf_->Get(TupleId{0, 5}, &out).IsNotFound());
}

TEST_F(HeapFileTest, DeleteRemovesTuple) {
  TupleId id;
  ASSERT_TRUE(hf_->Insert(MakeTuple(1), &id).ok());
  ASSERT_TRUE(hf_->Delete(id).ok());
  Tuple out;
  EXPECT_TRUE(hf_->Get(id, &out).IsNotFound());
  EXPECT_TRUE(hf_->Delete(id).IsNotFound());  // double delete
  EXPECT_EQ(hf_->TupleCount(), 0u);
}

TEST_F(HeapFileTest, UpdateInPlaceKeepsId) {
  TupleId id, nid;
  ASSERT_TRUE(hf_->Insert(MakeTuple(123456), &id).ok());
  Tuple smaller{Value(1), Value("x"), Value(0.5)};
  ASSERT_TRUE(hf_->Update(id, smaller, &nid).ok());
  EXPECT_EQ(id, nid);
  Tuple out;
  ASSERT_TRUE(hf_->Get(nid, &out).ok());
  EXPECT_EQ(out, smaller);
}

TEST_F(HeapFileTest, UpdateGrowingTupleMayMove) {
  TupleId id, nid;
  ASSERT_TRUE(hf_->Insert(Tuple{Value(1)}, &id).ok());
  Tuple bigger{Value(std::string(500, 'q'))};
  ASSERT_TRUE(hf_->Update(id, bigger, &nid).ok());
  Tuple out;
  ASSERT_TRUE(hf_->Get(nid, &out).ok());
  EXPECT_EQ(out, bigger);
  EXPECT_EQ(hf_->TupleCount(), 1u);
}

TEST_F(HeapFileTest, ScanVisitsAllLiveTuples) {
  std::vector<TupleId> ids(10);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(hf_->Insert(MakeTuple(i), &ids[static_cast<size_t>(i)]).ok());
  }
  ASSERT_TRUE(hf_->Delete(ids[3]).ok());
  ASSERT_TRUE(hf_->Delete(ids[7]).ok());
  int count = 0;
  ASSERT_TRUE(hf_->Scan([&](TupleId id, const Tuple&) {
                 EXPECT_NE(id, ids[3]);
                 EXPECT_NE(id, ids[7]);
                 ++count;
                 return Status::OK();
               }).ok());
  EXPECT_EQ(count, 8);
}

TEST_F(HeapFileTest, SpillsAcrossPagesAndScans) {
  // Each tuple ~120 bytes; hundreds force multiple pages.
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    TupleId id;
    ASSERT_TRUE(
        hf_->Insert(Tuple{Value(i), Value(std::string(100, 'a'))}, &id).ok());
  }
  EXPECT_GT(hf_->PageCount(), 3u);
  size_t count = 0;
  ASSERT_TRUE(hf_->Scan([&](TupleId, const Tuple&) {
                 ++count;
                 return Status::OK();
               }).ok());
  EXPECT_EQ(count, static_cast<size_t>(n));
}

TEST_F(HeapFileTest, CompactionReclaimsDeletedSpace) {
  // Fill one page, delete everything, re-fill: should not grow by much.
  std::vector<TupleId> ids;
  for (int i = 0; i < 30; ++i) {
    TupleId id;
    ASSERT_TRUE(hf_->Insert(Tuple{Value(std::string(100, 'b'))}, &id).ok());
    ids.push_back(id);
  }
  size_t pages_before = hf_->PageCount();
  for (TupleId id : ids) ASSERT_TRUE(hf_->Delete(id).ok());
  for (int i = 0; i < 30; ++i) {
    TupleId id;
    ASSERT_TRUE(hf_->Insert(Tuple{Value(std::string(100, 'c'))}, &id).ok());
  }
  EXPECT_EQ(hf_->PageCount(), pages_before);
}

TEST_F(HeapFileTest, RejectsOversizedTuple) {
  TupleId id;
  Tuple huge{Value(std::string(kPageSize, 'x'))};
  EXPECT_TRUE(hf_->Insert(huge, &id).IsInvalidArgument());
}

TEST_F(HeapFileTest, ReopenFindsSameTuples) {
  std::vector<std::pair<TupleId, Tuple>> written;
  for (int i = 0; i < 100; ++i) {
    TupleId id;
    Tuple t = MakeTuple(i);
    ASSERT_TRUE(hf_->Insert(t, &id).ok());
    written.emplace_back(id, t);
  }
  uint32_t head = hf_->head_page_id();
  std::unique_ptr<HeapFile> reopened;
  ASSERT_TRUE(HeapFile::Open(pool_.get(), head, &reopened).ok());
  EXPECT_EQ(reopened->TupleCount(), 100u);
  for (const auto& [id, t] : written) {
    Tuple out;
    ASSERT_TRUE(reopened->Get(id, &out).ok());
    EXPECT_EQ(out, t);
  }
}

// Property: random insert/delete/update churn matches a reference map.
TEST(HeapFileProperty, RandomChurnMatchesReference) {
  BufferPool pool(8, std::make_unique<MemoryDiskManager>());
  std::unique_ptr<HeapFile> hf;
  ASSERT_TRUE(HeapFile::Create(&pool, &hf).ok());
  Rng rng(99);
  std::map<TupleId, Tuple> reference;
  for (int step = 0; step < 2000; ++step) {
    int op = static_cast<int>(rng.Uniform(10));
    if (op < 6 || reference.empty()) {
      Tuple t{Value(static_cast<int64_t>(rng.Uniform(1000))),
              Value(std::string(rng.Uniform(60), 's'))};
      TupleId id;
      ASSERT_TRUE(hf->Insert(t, &id).ok());
      reference[id] = t;
    } else if (op < 8) {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      ASSERT_TRUE(hf->Delete(it->first).ok());
      reference.erase(it);
    } else {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      Tuple t{Value(static_cast<int64_t>(rng.Uniform(1000))),
              Value(std::string(rng.Uniform(80), 'u'))};
      TupleId nid;
      ASSERT_TRUE(hf->Update(it->first, t, &nid).ok());
      reference.erase(it);
      reference[nid] = t;
    }
  }
  EXPECT_EQ(hf->TupleCount(), reference.size());
  size_t seen = 0;
  ASSERT_TRUE(hf->Scan([&](TupleId id, const Tuple& t) {
                 auto it = reference.find(id);
                 EXPECT_NE(it, reference.end());
                 if (it != reference.end()) EXPECT_EQ(it->second, t);
                 ++seen;
                 return Status::OK();
               }).ok());
  EXPECT_EQ(seen, reference.size());
  ExpectPoolBalanced(pool);
}

}  // namespace
}  // namespace prodb
