// Robustness: fuzzed inputs must produce errors, never crashes or
// corruption; buffer-pool flush paths; malformed-encoding handling.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lang/analyzer.h"
#include "lang/parser.h"
#include "storage/buffer_pool.h"

namespace prodb {
namespace {

TEST(FuzzTest, LexerSurvivesRandomBytes) {
  Rng rng(1);
  for (int iter = 0; iter < 300; ++iter) {
    std::string input;
    size_t len = rng.Uniform(120);
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(32 + rng.Uniform(95));
    }
    std::vector<Token> tokens;
    (void)Lex(input, &tokens);  // must not crash; status may be error
  }
}

TEST(FuzzTest, ParserSurvivesRandomTokenSoup) {
  Rng rng(2);
  const char* atoms[] = {"(", ")", "p", "literalize", "^", "-->", "-",
                         "<x>", "{", "}", "42", "foo", "*", "<", ">=",
                         "make", "remove", "modify", "halt", "call", "1"};
  for (int iter = 0; iter < 500; ++iter) {
    std::string input;
    size_t len = rng.Uniform(40);
    for (size_t i = 0; i < len; ++i) {
      input += atoms[rng.Uniform(sizeof(atoms) / sizeof(atoms[0]))];
      input += " ";
    }
    ProgramAst program;
    (void)ParseProgram(input, &program);  // error or success, no crash
  }
}

TEST(FuzzTest, AnalyzerSurvivesRandomValidParses) {
  // Generate syntactically valid but semantically random rules.
  Catalog catalog;
  Relation* rel;
  ASSERT_TRUE(catalog
                  .CreateRelation(Schema("E", {{"a", ValueType::kInt},
                                               {"b", ValueType::kInt}}),
                                  &rel)
                  .ok());
  Rng rng(3);
  const char* attrs[] = {"a", "b", "zz"};
  const char* vals[] = {"1", "<x>", "<y>", "*", "q"};
  const char* acts[] = {"(remove 1)", "(remove 9)", "(modify 1 ^a 2)",
                        "(make E ^a <x>)", "(make E ^zz 1)", "(halt)"};
  Analyzer analyzer(&catalog);
  for (int iter = 0; iter < 300; ++iter) {
    std::string src = "(p r";
    size_t ces = 1 + rng.Uniform(3);
    for (size_t c = 0; c < ces; ++c) {
      if (rng.Chance(0.2)) src += " -";
      src += " (E";
      size_t tests = rng.Uniform(3);
      for (size_t t = 0; t < tests; ++t) {
        src += " ^";
        src += attrs[rng.Uniform(3)];
        src += " ";
        src += vals[rng.Uniform(5)];
      }
      src += ")";
    }
    src += " --> ";
    src += acts[rng.Uniform(6)];
    src += ")";
    RuleAst ast;
    if (!ParseRule(src, &ast).ok()) continue;
    Rule rule;
    (void)analyzer.Compile(ast, &rule);  // error or success, no crash
  }
}

TEST(BufferPoolFlushTest, FlushPageAndFlushAllPersist) {
  auto disk = std::make_unique<MemoryDiskManager>();
  MemoryDiskManager* raw = disk.get();
  BufferPool pool(4, std::move(disk));
  uint32_t p0, p1;
  Frame *f0, *f1;
  ASSERT_TRUE(pool.NewPage(&p0, &f0).ok());
  f0->data[0] = 'x';
  ASSERT_TRUE(pool.UnpinPage(p0, true).ok());
  ASSERT_TRUE(pool.NewPage(&p1, &f1).ok());
  f1->data[0] = 'y';
  ASSERT_TRUE(pool.UnpinPage(p1, true).ok());

  ASSERT_TRUE(pool.FlushPage(p0).ok());
  char buf[kPageSize];
  ASSERT_TRUE(raw->ReadPage(p0, buf).ok());
  EXPECT_EQ(buf[0], 'x');
  // p1 not yet flushed to disk.
  ASSERT_TRUE(raw->ReadPage(p1, buf).ok());
  EXPECT_EQ(buf[0], 0);
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(raw->ReadPage(p1, buf).ok());
  EXPECT_EQ(buf[0], 'y');
  // Flushing a non-resident page is a no-op.
  EXPECT_TRUE(pool.FlushPage(777).ok());
}

TEST(TupleRobustnessTest, GarbageBytesRejected) {
  Rng rng(4);
  for (int iter = 0; iter < 500; ++iter) {
    std::string garbage;
    size_t len = rng.Uniform(64);
    for (size_t i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.Uniform(256));
    }
    Tuple t;
    size_t off = 0;
    (void)Tuple::DeserializeFrom(garbage.data(), garbage.size(), &off, &t);
  }
}

}  // namespace
}  // namespace prodb
