#include "db/relation.h"

#include <gtest/gtest.h>

#include "db/catalog.h"

namespace prodb {
namespace {

Schema EmpSchema() {
  return Schema("Emp", {{"name", ValueType::kSymbol},
                        {"age", ValueType::kInt},
                        {"salary", ValueType::kInt},
                        {"dno", ValueType::kInt}});
}

class RelationTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  void SetUp() override {
    catalog_ = std::make_unique<Catalog>();
    ASSERT_TRUE(catalog_->CreateRelation(EmpSchema(), GetParam(), &rel_).ok());
  }
  Tuple Emp(const std::string& name, int age, int salary, int dno) {
    return Tuple{Value(name), Value(age), Value(salary), Value(dno)};
  }
  std::unique_ptr<Catalog> catalog_;
  Relation* rel_ = nullptr;
};

TEST_P(RelationTest, InsertGetDelete) {
  TupleId id;
  ASSERT_TRUE(rel_->Insert(Emp("Mike", 32, 50000, 1), &id).ok());
  Tuple out;
  ASSERT_TRUE(rel_->Get(id, &out).ok());
  EXPECT_EQ(out[0], Value("Mike"));
  EXPECT_EQ(rel_->Count(), 1u);
  ASSERT_TRUE(rel_->Delete(id).ok());
  EXPECT_TRUE(rel_->Get(id, &out).IsNotFound());
  EXPECT_EQ(rel_->Count(), 0u);
}

TEST_P(RelationTest, ArityMismatchRejected) {
  TupleId id;
  EXPECT_TRUE(rel_->Insert(Tuple{Value(1)}, &id).IsInvalidArgument());
}

TEST_P(RelationTest, SelectWithConstantTests) {
  TupleId id;
  ASSERT_TRUE(rel_->Insert(Emp("Mike", 32, 50000, 1), &id).ok());
  ASSERT_TRUE(rel_->Insert(Emp("Sam", 45, 60000, 1), &id).ok());
  ASSERT_TRUE(rel_->Insert(Emp("Ann", 29, 55000, 2), &id).ok());
  Selection sel;
  sel.tests.push_back(ConstantTest{3, CompareOp::kEq, Value(1)});
  sel.tests.push_back(ConstantTest{2, CompareOp::kGt, Value(52000)});
  std::vector<std::pair<TupleId, Tuple>> out;
  ASSERT_TRUE(rel_->Select(sel, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second[0], Value("Sam"));
}

TEST_P(RelationTest, HashIndexMaintainedOnMutations) {
  ASSERT_TRUE(rel_->CreateHashIndex(3).ok());
  TupleId a, b;
  ASSERT_TRUE(rel_->Insert(Emp("Mike", 32, 50000, 7), &a).ok());
  ASSERT_TRUE(rel_->Insert(Emp("Sam", 45, 60000, 7), &b).ok());
  std::vector<TupleId> ids;
  ASSERT_TRUE(rel_->LookupEq(3, Value(7), &ids).ok());
  EXPECT_EQ(ids.size(), 2u);
  ASSERT_TRUE(rel_->Delete(a).ok());
  ASSERT_TRUE(rel_->LookupEq(3, Value(7), &ids).ok());
  EXPECT_EQ(ids.size(), 1u);
  // Update moves the key.
  TupleId b2;
  ASSERT_TRUE(rel_->Update(b, Emp("Sam", 45, 60000, 9), &b2).ok());
  ASSERT_TRUE(rel_->LookupEq(3, Value(7), &ids).ok());
  EXPECT_TRUE(ids.empty());
  ASSERT_TRUE(rel_->LookupEq(3, Value(9), &ids).ok());
  EXPECT_EQ(ids.size(), 1u);
}

TEST_P(RelationTest, IndexBuiltOverExistingData) {
  TupleId id;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rel_->Insert(Emp("E" + std::to_string(i), i, 0, i % 3), &id).ok());
  }
  ASSERT_TRUE(rel_->CreateBTreeIndex(3).ok());
  std::vector<TupleId> ids;
  ASSERT_TRUE(rel_->LookupEq(3, Value(1), &ids).ok());
  EXPECT_EQ(ids.size(), 7u);  // i % 3 == 1 for 7 of 20
  EXPECT_TRUE(rel_->CreateBTreeIndex(3).IsAlreadyExists());
  EXPECT_TRUE(rel_->CreateBTreeIndex(99).IsInvalidArgument());
}

TEST_P(RelationTest, SelectUsesIndexProbe) {
  ASSERT_TRUE(rel_->CreateHashIndex(0).ok());
  TupleId id;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        rel_->Insert(Emp("E" + std::to_string(i), i, i * 100, 0), &id).ok());
  }
  Selection sel;
  sel.tests.push_back(ConstantTest{0, CompareOp::kEq, Value("E7")});
  std::vector<std::pair<TupleId, Tuple>> out;
  ASSERT_TRUE(rel_->Select(sel, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second[1], Value(7));
}

TEST_P(RelationTest, RestoreRevivesOriginalId) {
  ASSERT_TRUE(rel_->CreateHashIndex(3).ok());
  TupleId doomed, other;
  ASSERT_TRUE(rel_->Insert(Emp("Mike", 32, 50000, 1), &doomed).ok());
  ASSERT_TRUE(rel_->Insert(Emp("Sam", 45, 60000, 2), &other).ok());
  ASSERT_TRUE(rel_->Delete(doomed).ok());
  // Churn after the delete so the restore is not just an append-undo.
  TupleId tmp;
  ASSERT_TRUE(rel_->Insert(Emp("Ann", 29, 55000, 3), &tmp).ok());

  ASSERT_TRUE(rel_->Restore(doomed, Emp("Mike", 32, 50000, 1)).ok());
  Tuple out;
  ASSERT_TRUE(rel_->Get(doomed, &out).ok());
  EXPECT_EQ(out[0], Value("Mike"));
  EXPECT_EQ(rel_->Count(), 3u);
  // Secondary indexes were maintained through the delete/restore cycle.
  std::vector<TupleId> ids;
  ASSERT_TRUE(rel_->LookupEq(3, Value(1), &ids).ok());
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], doomed);
  // A live id cannot be restored over.
  EXPECT_TRUE(
      rel_->Restore(doomed, Emp("Mike", 32, 50000, 1)).IsAlreadyExists());
}

INSTANTIATE_TEST_SUITE_P(Backends, RelationTest,
                         ::testing::Values(StorageKind::kMemory,
                                           StorageKind::kPaged),
                         [](const auto& info) {
                           return info.param == StorageKind::kMemory
                                      ? "Memory"
                                      : "Paged";
                         });

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  Relation* rel;
  ASSERT_TRUE(catalog.CreateRelation(EmpSchema(), &rel).ok());
  EXPECT_TRUE(catalog.CreateRelation(EmpSchema(), &rel).IsAlreadyExists());
  EXPECT_NE(catalog.Get("Emp"), nullptr);
  EXPECT_EQ(catalog.Get("Nope"), nullptr);
  EXPECT_EQ(catalog.RelationCount(), 1u);
  ASSERT_TRUE(catalog.Drop("Emp").ok());
  EXPECT_TRUE(catalog.Drop("Emp").IsNotFound());
}

TEST(CatalogTest, PagedDefaultStorage) {
  CatalogOptions opts;
  opts.default_storage = StorageKind::kPaged;
  opts.buffer_pool_frames = 8;
  Catalog catalog(opts);
  Relation* rel;
  ASSERT_TRUE(catalog.CreateRelation(EmpSchema(), &rel).ok());
  EXPECT_EQ(rel->storage_kind(), StorageKind::kPaged);
  TupleId id;
  ASSERT_TRUE(rel->Insert(Tuple{Value("A"), Value(1), Value(2), Value(3)}, &id).ok());
  EXPECT_EQ(rel->Count(), 1u);
  EXPECT_GT(catalog.FootprintBytes(), 0u);
}

}  // namespace
}  // namespace prodb
